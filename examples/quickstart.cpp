// Quickstart: simulate a busy Counter-Strike server for one hour, run the
// full paper analysis on the resulting packet stream, and print the
// headline numbers.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [seconds]
#include <iostream>
#include <string>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/report.h"
#include "game/config.h"
#include "net/units.h"

int main(int argc, char** argv) {
  using namespace gametrace;

  double duration = 3600.0;
  if (argc > 1) duration = std::stod(argv[1]);

  // 1. Configure the workload: the defaults reproduce the paper's server
  //    (22 slots, 50 ms ticks, ~30 min maps, modem-dominated population).
  game::GameConfig config = game::GameConfig::ScaledDefaults(duration);

  // 2. Attach the analysis pipeline as a capture sink and run.
  core::Characterizer characterizer;
  const core::ServerTraceResult run = core::RunServerTrace(config, characterizer);
  core::CharacterizationReport report = characterizer.Finish(duration);

  // 3. Report.
  const auto& s = report.summary;
  core::TableReport table("Quickstart: " + core::FormatDuration(duration) +
                          " of simulated Counter-Strike traffic");
  table.AddCount("Total packets", s.total_packets());
  table.AddCount("Packets in / out",
                 s.packets_in());
  table.AddRow("Mean packet load", core::FormatDouble(s.mean_packet_load(), 1) + " pkts/sec");
  table.AddRow("Mean bandwidth",
               core::FormatDouble(net::Kbps(s.mean_bandwidth_bps()), 0) + " kbps");
  table.AddRow("Mean app packet size (in/out)",
               core::FormatDouble(s.mean_packet_size_in(), 1) + " / " +
                   core::FormatDouble(s.mean_packet_size_out(), 1) + " bytes");
  table.AddCount("Sessions established", run.stats.established);
  table.AddCount("Connections refused", run.stats.refused);
  table.AddRow("Maps played", std::to_string(run.stats.maps_played));
  table.AddRow("Mean players", core::FormatDouble(run.players.Mean(), 1));
  table.AddRow("Hurst (50ms-30min region)", core::FormatDouble(report.hurst.mid_scale, 2));
  table.AddRow("Hurst (<50ms region)", core::FormatDouble(report.hurst.small_scale, 2));
  table.Print(std::cout);

  std::cout << "\nPer-player bandwidth: "
            << core::FormatDouble(net::Kbps(s.mean_bandwidth_bps()) / config.max_players, 1)
            << " kbps across " << config.max_players
            << " slots - the narrowest-last-mile saturation the paper describes.\n";
  return 0;
}
