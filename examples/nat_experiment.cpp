// The paper's NAT experiment (section IV-A): put a COTS NAT device rated at
// 1000-1500 pps between a busy game server and its players, trace one
// 30-minute map, and watch ~850 kbps of tiny packets overwhelm it.
//
//   ./build/examples/nat_experiment [seconds] [capacity_pps]
#include <iostream>
#include <string>

#include "core/experiment.h"
#include "core/report.h"

int main(int argc, char** argv) {
  using namespace gametrace;

  core::NatExperimentConfig config = core::NatExperimentConfig::Defaults();
  if (argc > 1) {
    config.duration = std::stod(argv[1]);
    config.game.trace_duration = config.duration;
    config.game.maps.map_duration = config.duration + 60.0;
  }
  if (argc > 2) config.device.mean_capacity_pps = std::stod(argv[2]);

  const core::NatExperimentResult result = core::RunNatExperiment(config);
  const auto& d = result.device;

  core::TableReport table("NAT experiment: " + core::FormatDuration(config.duration) +
                          " behind a " + core::FormatDouble(config.device.mean_capacity_pps, 0) +
                          " pps device");
  table.AddRow("-- Outgoing traffic --", "");
  table.AddCount("Packets from server to NAT", d.packets(router::Segment::kServerToNat));
  table.AddCount("Packets from NAT to clients", d.packets(router::Segment::kNatToClients));
  table.AddValue("Loss rate", d.loss_rate_outgoing() * 100.0, "%", 3);
  table.AddRow("-- Incoming traffic --", "");
  table.AddCount("Packets from clients to NAT", d.packets(router::Segment::kClientsToNat));
  table.AddCount("Packets from NAT to server", d.packets(router::Segment::kNatToServer));
  table.AddValue("Loss rate", d.loss_rate_incoming() * 100.0, "%", 2);
  table.AddRow("-- Device internals --", "");
  table.AddValue("Mean forwarding delay", d.delay().mean() * 1e3, "ms", 2);
  table.AddValue("p99 forwarding delay", d.delay_p99() * 1e3, "ms", 2);
  table.AddRow("Livelock episodes", std::to_string(result.livelock_episodes));
  table.AddRow("Server freezes (feedback)", std::to_string(result.server_freezes));
  table.AddCount("NAT table entries", result.nat_table_size);
  table.Print(std::cout);

  std::cout << "\nPlayers \"complained about a significant degradation in performance\"\n"
               "at ~1% loss; the device was nominally rated for far more than the\n"
               "~850 pps offered. The bottleneck is per-packet route lookup against\n"
               "50 ms bursts of tiny packets.\n";
  return 0;
}
