// Route-cache study (the paper's section IV-B future work): feed a mix of
// game traffic and web-like cross traffic through an LPM FIB fronted by a
// route cache, and measure how much lookup work each caching policy saves.
//
//   ./build/examples/route_cache_study [seconds]
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "core/experiment.h"
#include "core/report.h"
#include "game/config.h"
#include "router/route_cache.h"
#include "router/routing_table.h"
#include "sim/random.h"
#include "trace/capture.h"

int main(int argc, char** argv) {
  using namespace gametrace;
  const double duration = argc > 1 ? std::stod(argv[1]) : 300.0;

  // Build the access stream: outbound game packets to the 22 client routes,
  // interleaved with web-like flows (many destinations, few packets each).
  std::vector<std::pair<std::uint32_t, std::uint16_t>> stream;
  sim::Rng web(1234);
  {
    auto cfg = game::GameConfig::ScaledDefaults(duration);
    trace::CallbackSink sink([&](const net::PacketRecord& r) {
      if (r.direction != net::Direction::kServerToClient) return;
      stream.emplace_back(r.client_ip.value(), r.app_bytes);
      if (web.NextDouble() < 0.3) {
        const auto dst = static_cast<std::uint32_t>(0xC0000000u | web.NextBelow(1 << 22));
        const auto n = 1 + web.NextBelow(10);
        for (std::uint64_t i = 0; i < n; ++i) {
          stream.emplace_back(dst, static_cast<std::uint16_t>(400 + web.NextBelow(1000)));
        }
      }
    });
    core::RunServerTrace(cfg, sink);
  }

  // A realistic FIB: 50k random prefixes plus a default route.
  router::RoutingTable fib;
  sim::Rng fib_rng(5);
  for (int i = 0; i < 50000; ++i) {
    fib.Insert(net::Ipv4Prefix(net::Ipv4Address(static_cast<std::uint32_t>(fib_rng())),
                               8 + static_cast<int>(fib_rng.NextBelow(17))),
               static_cast<std::uint32_t>(i));
  }
  fib.Insert(net::Ipv4Prefix(net::Ipv4Address(0u), 0), 0);

  std::cout << "Route-cache study: " << core::FormatCount(stream.size())
            << " lookups against a " << core::FormatCount(fib.size()) << "-route FIB ("
            << core::FormatCount(fib.node_count()) << " trie nodes)\n\n";
  std::cout << "  policy                       cache=16    cache=64    trie nodes visited/pkt (c=16)\n";

  for (const auto policy :
       {router::CachePolicy::kLru, router::CachePolicy::kLfu,
        router::CachePolicy::kSmallPacketPreferential,
        router::CachePolicy::kFrequencyPreferential}) {
    double rates[2] = {0.0, 0.0};
    double work16 = 0.0;
    int idx = 0;
    for (std::size_t capacity : {16u, 64u}) {
      router::RouteCache cache(capacity, policy);
      std::uint64_t trie_nodes = 0;
      for (const auto& [dst, bytes] : stream) {
        if (!cache.Access(dst, bytes)) {
          trie_nodes += fib.LookupCost(net::Ipv4Address(dst));
        }
      }
      rates[idx] = cache.hit_rate();
      if (capacity == 16u) {
        work16 = static_cast<double>(trie_nodes) / static_cast<double>(stream.size());
      }
      ++idx;
    }
    const std::string name(router::PolicyName(policy));
    std::cout << "  " << name << std::string(name.size() < 28 ? 28 - name.size() : 1, ' ')
              << core::FormatDouble(rates[0] * 100.0, 1) << "%      "
              << core::FormatDouble(rates[1] * 100.0, 1) << "%       "
              << core::FormatDouble(work16, 2) << "\n";
  }

  std::cout << "\nPreferential policies protect the 22 long-lived game routes from web\n"
               "churn, cutting per-packet trie work at small cache sizes - the paper's\n"
               "conjecture that \"preferential route caching strategies based on packet\n"
               "size or packet frequency may provide significant improvements\".\n";
  return 0;
}
