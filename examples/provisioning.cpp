// Provisioning an on-line game service: the paper's "good news" in
// practice. Fits per-player demand from simulated traces at several server
// sizes, verifies linearity, and answers capacity questions - including
// "how many servers can live behind a router before the 50 ms bursts
// overflow its lookup path?"
//
//   ./build/examples/provisioning
#include <iostream>
#include <vector>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/provisioning.h"
#include "core/report.h"
#include "game/config.h"
#include "stats/linear_regression.h"
#include "trace/summary.h"

int main() {
  using namespace gametrace;

  // 1. Measure demand at several server sizes (the linearity experiment).
  std::cout << "Measuring traffic at several server sizes (400 s each)...\n\n";
  std::cout << "  slots | mean players |  pps in | pps out |  kbps total\n";
  std::vector<double> players;
  std::vector<double> pps;
  std::vector<double> bps;
  for (int cap : {4, 8, 12, 16, 20, 22}) {
    auto cfg = game::GameConfig::ScaledDefaults(400.0);
    cfg.max_players = cap;
    cfg.sessions.initial_players = cap - 1;
    trace::TraceSummary summary;
    const auto run = core::RunServerTrace(cfg, summary);
    summary.set_duration_override(400.0);
    players.push_back(run.players.Mean());
    pps.push_back(summary.mean_packet_load());
    bps.push_back(summary.mean_bandwidth_bps());
    std::cout << "  " << std::string(5 - std::to_string(cap).size(), ' ') << cap << " |         "
              << core::FormatDouble(run.players.Mean(), 1) << " |   "
              << core::FormatDouble(summary.mean_packet_load_in(), 0) << " |     "
              << core::FormatDouble(summary.mean_packet_load_out(), 0) << " |        "
              << core::FormatDouble(net::Kbps(summary.mean_bandwidth_bps()), 0) << "\n";
  }

  const auto pps_fit = stats::FitLine(players, pps);
  const auto bps_fit = stats::FitLine(players, bps);
  std::cout << "\nLinear fit: load = " << core::FormatDouble(pps_fit.slope, 1)
            << " pps/player (r^2 = " << core::FormatDouble(pps_fit.r_squared, 3) << "), "
            << core::FormatDouble(bps_fit.slope / 1e3, 1) << " kbps/player (r^2 = "
            << core::FormatDouble(bps_fit.r_squared, 3) << ")\n"
            << "The paper: ~40 kbps/player - \"designed to saturate the narrowest\n"
            << "last-mile link\" (56k modems deliver 40-50 kbps).\n";

  // 2. Capacity planning against routing devices.
  const core::PerPlayerDemand demand = core::PerPlayerDemand::PaperCalibrated();
  const core::ServerDemand per_server = core::DemandFor(demand, 22);

  core::TableReport plan("Capacity planning: one full 22-slot server");
  plan.AddValue("Aggregate load", per_server.pps, "pps", 0);
  plan.AddValue("Aggregate bandwidth", per_server.bps / 1e3, "kbps", 0);
  plan.AddValue("Broadcast burst", per_server.burst_packets, "packets / 50 ms", 0);
  plan.AddValue("Burst span on the wire", per_server.burst_span_seconds * 1e6, "us", 0);
  plan.Print(std::cout);

  struct Candidate {
    const char* name;
    core::CapacityPlanner::Device device;
  };
  const Candidate candidates[] = {
      {"SMC Barricade (COTS NAT, 1.25 kpps)", {1250.0, 16}},
      {"mid-range edge router (50 kpps)", {50e3, 256}},
      {"carrier router (1 Mpps)", {1e6, 4096}},
  };
  std::cout << "\n  device                               max servers   burst tail delay\n";
  for (const auto& c : candidates) {
    const int max_servers = core::CapacityPlanner::MaxServers(per_server, c.device);
    const double tail =
        core::CapacityPlanner::BurstTailDelay(per_server.burst_packets, c.device) * 1e3;
    std::cout << "  " << c.name;
    for (std::size_t pad = std::string(c.name).size(); pad < 38; ++pad) std::cout << ' ';
    std::cout << max_servers << "             " << core::FormatDouble(tail, 1) << " ms\n";
  }
  std::cout << "\nThe Barricade hosts ZERO viable servers - the paper's NAT experiment -\n"
               "and buffering instead of dropping costs ~a quarter of the ~50 ms\n"
               "latency budget per burst, which is why \"adding buffers will add an\n"
               "unacceptable level of delay\".\n";
  return 0;
}
