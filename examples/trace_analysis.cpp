// Trace-file workflow: capture simulated traffic to disk (compact .gtr and
// interoperable .pcap), read both back, and run the full paper analysis on
// the stored trace - the same workflow the paper's authors ran on their
// 500M-packet tcpdump capture.
//
//   ./build/examples/trace_analysis [seconds] [output_dir]
#include <filesystem>
#include <iostream>
#include <string>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/report.h"
#include "game/config.h"
#include "net/pcap.h"
#include "net/units.h"
#include "trace/trace_format.h"

int main(int argc, char** argv) {
  using namespace gametrace;

  const double duration = argc > 1 ? std::stod(argv[1]) : 600.0;
  const std::filesystem::path dir = argc > 2 ? argv[2] : std::filesystem::temp_directory_path();
  const std::string gtr_path = (dir / "cs_server.gtr").string();
  const std::string pcap_path = (dir / "cs_server.pcap").string();

  // 1. Capture: one simulation, three sinks (live summary + two file
  //    formats), exactly like running tcpdump next to the server.
  const auto config = game::GameConfig::ScaledDefaults(duration);
  trace::TraceSummary live;
  trace::TraceWriter gtr(gtr_path, config.server);
  net::PcapWriter pcap(pcap_path);
  trace::CallbackSink pcap_sink(
      [&](const net::PacketRecord& r) { pcap.WriteRecord(r, config.server); });
  trace::CaptureSink* sinks[] = {&live, &gtr, &pcap_sink};
  core::RunServerTrace(config, sinks);
  gtr.Flush();
  pcap.Flush();

  std::cout << "Captured " << core::FormatCount(live.total_packets()) << " packets over "
            << core::FormatDuration(duration) << "\n"
            << "  " << gtr_path << "  ("
            << core::FormatDouble(
                   static_cast<double>(std::filesystem::file_size(gtr_path)) / 1e6, 1)
            << " MB, 18 B/record)\n"
            << "  " << pcap_path << "  ("
            << core::FormatDouble(
                   static_cast<double>(std::filesystem::file_size(pcap_path)) / 1e6, 1)
            << " MB, full frames with valid checksums)\n";

  // 2. Analyse the stored .gtr trace from scratch.
  core::Characterizer characterizer;
  trace::TraceReader reader(gtr_path);
  const auto replayed = reader.Drain(characterizer);
  auto report = characterizer.Finish(duration);
  std::cout << "\nReplayed " << core::FormatCount(replayed) << " records from disk.\n";

  core::TableReport table("Analysis of the stored trace");
  table.AddValue("Mean packet load", report.summary.mean_packet_load(), "pkts/sec", 1);
  table.AddValue("Mean bandwidth", net::Kbps(report.summary.mean_bandwidth_bps()), "kbps", 0);
  table.AddValue("Mean packet size in/out", report.summary.mean_packet_size_in(), "B", 1);
  table.AddValue("  (outbound)", report.summary.mean_packet_size_out(), "B", 1);
  table.AddRow("Sessions reconstructed", std::to_string(report.sessions.size()));
  table.AddRow("Hurst <50ms / 50ms-30min",
               core::FormatDouble(report.hurst.small_scale, 2) + " / " +
                   core::FormatDouble(report.hurst.mid_scale, 2));
  table.Print(std::cout);

  // 3. Cross-check against the pcap file (independent parser path).
  net::PcapReader pcap_reader(pcap_path);
  std::uint64_t skipped = 0;
  const auto records = pcap_reader.ReadAllRecords(config.server, &skipped);
  std::cout << "\npcap cross-check: " << core::FormatCount(records.size())
            << " records parsed back (" << skipped << " skipped) - "
            << (records.size() == live.total_packets() ? "matches the live capture."
                                                       : "MISMATCH!")
            << "\n";

  std::filesystem::remove(gtr_path);
  std::filesystem::remove(pcap_path);
  return records.size() == live.total_packets() ? 0 : 1;
}
