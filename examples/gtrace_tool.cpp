// gtrace_tool: command-line front end for the trace toolkit.
//
//   gtrace_tool generate <out.gtr|out.pcap> [seconds] [seed]
//   gtrace_tool summarize <trace.gtr|trace.pcap>
//   gtrace_tool convert <in.gtr|in.pcap> <out.gtr|out.pcap>
//   gtrace_tool sessions <trace.gtr|trace.pcap> [top_n]
//   gtrace_tool hurst <trace.gtr|trace.pcap>
//   gtrace_tool loss <trace.gtr|trace.pcap>
//   gtrace_tool fleet <shards> [seconds] [workers] [seed]
//
// Any command additionally accepts the shared observability flags (see
// src/obs/exporter.h): --metrics-out=<json>, --trace-out=<json>,
// --flight-out=<jsonl>, --alerts-out=<jsonl>, --prom-out=<txt>,
// --sched-metrics-out=<json>, --sched-report-out=<json>,
// --sched-trace-out=<json>, --flight-sample=<seconds> and
// --flight-dump=<json>.
//
// Works on traces produced by this toolkit or any UDP/IPv4 pcap whose
// server endpoint matches the default (192.168.0.10:27015).
#include <algorithm>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/fleet.h"
#include "core/report.h"
#include "game/config.h"
#include "net/pcap.h"
#include "net/units.h"
#include "obs/exporter.h"
#include "stats/rs_hurst.h"
#include "trace/loss_estimator.h"
#include "trace/trace_format.h"

namespace {

using namespace gametrace;

bool HasSuffix(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

// Streams every record of either container format into a sink.
std::uint64_t DrainFile(const std::string& path, trace::CaptureSink& sink,
                        const net::ServerEndpoint& server) {
  if (HasSuffix(path, ".pcap")) {
    net::PcapReader reader(path);
    std::uint64_t skipped = 0;
    std::uint64_t n = 0;
    for (const auto& record : reader.ReadAllRecords(server, &skipped)) {
      sink.OnPacket(record);
      ++n;
    }
    if (skipped > 0) std::cerr << "note: skipped " << skipped << " non-game frames\n";
    return n;
  }
  trace::TraceReader reader(path);
  return reader.Drain(sink);
}

int Generate(const std::vector<std::string>& args) {
  const std::string out = args.at(0);
  const double seconds = args.size() > 1 ? std::stod(args[1]) : 600.0;
  auto config = game::GameConfig::ScaledDefaults(seconds);
  if (args.size() > 2) config.seed = std::stoull(args[2]);

  if (HasSuffix(out, ".pcap")) {
    net::PcapWriter writer(out);
    trace::CallbackSink sink(
        [&](const net::PacketRecord& r) { writer.WriteRecord(r, config.server); });
    core::RunServerTrace(config, sink);
    writer.Flush();
    std::cout << "wrote " << core::FormatCount(writer.packets_written()) << " frames to "
              << out << "\n";
    return 0;
  }
  trace::TraceWriter writer(out, config.server);
  core::RunServerTrace(config, writer);
  writer.Flush();
  std::cout << "wrote " << core::FormatCount(writer.packets_written()) << " records to "
            << out << "\n";
  return 0;
}

int Summarize(const std::vector<std::string>& args) {
  core::Characterizer characterizer;
  const auto n = DrainFile(args.at(0), characterizer, net::ServerEndpoint{});
  auto report = characterizer.Finish();
  const auto& s = report.summary;
  core::TableReport table("Summary of " + args.at(0));
  table.AddCount("Packets", s.total_packets());
  table.AddRow("Span", core::FormatDuration(s.duration()));
  table.AddValue("Mean load", s.mean_packet_load(), "pkts/sec", 1);
  table.AddValue("Mean bandwidth", net::Kbps(s.mean_bandwidth_bps()), "kbps", 0);
  table.AddValue("Mean size in/out", s.mean_packet_size_in(), "B", 1);
  table.AddValue("  (outbound)", s.mean_packet_size_out(), "B", 1);
  table.AddCount("Sessions (reconstructed)", report.sessions.size());
  table.AddCount("Connection attempts", s.attempted_connections());
  table.Print(std::cout);
  return n > 0 ? 0 : 1;
}

int Convert(const std::vector<std::string>& args) {
  const std::string in = args.at(0);
  const std::string out = args.at(1);
  const net::ServerEndpoint server;
  std::uint64_t n = 0;
  if (HasSuffix(out, ".pcap")) {
    net::PcapWriter writer(out);
    trace::CallbackSink sink([&](const net::PacketRecord& r) {
      writer.WriteRecord(r, server);
    });
    n = DrainFile(in, sink, server);
    writer.Flush();
  } else {
    trace::TraceWriter writer(out, server);
    n = DrainFile(in, writer, server);
    writer.Flush();
  }
  std::cout << "converted " << core::FormatCount(n) << " packets: " << in << " -> " << out
            << "\n";
  return n > 0 ? 0 : 1;
}

int Sessions(const std::vector<std::string>& args) {
  trace::SessionTracker tracker;
  DrainFile(args.at(0), tracker, net::ServerEndpoint{});
  auto sessions = tracker.Finish();
  const std::size_t top = args.size() > 1 ? std::stoul(args[1]) : 10;
  std::sort(sessions.begin(), sessions.end(),
            [](const auto& a, const auto& b) { return a.packets() > b.packets(); });
  std::cout << sessions.size() << " sessions; top " << std::min(top, sessions.size())
            << " by packets:\n";
  std::cout << "  client                duration    packets    kbps\n";
  for (std::size_t i = 0; i < sessions.size() && i < top; ++i) {
    const auto& s = sessions[i];
    std::string endpoint = s.client_ip.ToString() + ":" + std::to_string(s.client_port);
    endpoint.resize(21, ' ');
    std::cout << "  " << endpoint << core::FormatDouble(s.duration(), 0) << " s      "
              << s.packets() << "     " << core::FormatDouble(s.mean_bandwidth_bps() / 1e3, 1)
              << "\n";
  }
  return 0;
}

int Hurst(const std::vector<std::string>& args) {
  core::CharacterizationOptions options;
  core::Characterizer characterizer(options);
  DrainFile(args.at(0), characterizer, net::ServerEndpoint{});
  auto report = characterizer.Finish();
  std::cout << "Aggregated-variance Hurst estimates:\n"
            << "  < 50 ms       : " << core::FormatDouble(report.hurst.small_scale, 2) << "\n"
            << "  50 ms - 30 min: " << core::FormatDouble(report.hurst.mid_scale, 2) << "\n"
            << "  > 30 min      : " << core::FormatDouble(report.hurst.large_scale, 2) << "\n";
  // Cross-check with R/S at 1 s resolution.
  const auto per_second =
      report.vt_base_packets.Aggregate(static_cast<std::size_t>(1.0 / 0.010));
  if (per_second.size() >= 64 && per_second.Variance() > 0.0) {
    const auto rs = stats::ComputeRescaledRange(per_second);
    std::cout << "R/S estimate (1 s bins): " << core::FormatDouble(rs.HurstEstimate(), 2)
              << "\n";
  }
  return 0;
}

int Loss(const std::vector<std::string>& args) {
  trace::SeqGapLossEstimator estimator;
  DrainFile(args.at(0), estimator, net::ServerEndpoint{});
  const auto in = estimator.Estimate(net::Direction::kClientToServer);
  const auto out = estimator.Estimate(net::Direction::kServerToClient);
  std::cout << "Sequence-gap loss estimate (what never reached this capture point):\n"
            << "  inbound : " << core::FormatDouble(in.loss_rate() * 100.0, 3) << "%  ("
            << in.lost() << " of " << in.expected << " across " << in.flows << " flows)\n"
            << "  outbound: " << core::FormatDouble(out.loss_rate() * 100.0, 3) << "%  ("
            << out.lost() << " of " << out.expected << " across " << out.flows << " flows)\n";
  return 0;
}

// Runs a traced fleet and prints the critical-path summary; the sched
// export flags (--sched-*-out) turn the run's diagnostic channel into
// files fleet_view.py / Perfetto can open.
int Fleet(const std::vector<std::string>& args, obs::ExportSession& session) {
  const int shards = std::stoi(args.at(0));
  const double seconds = args.size() > 1 ? std::stod(args[1]) : 120.0;
  core::FleetConfig config = core::FleetConfig::Scaled(shards, seconds);
  if (args.size() > 2) config.threads = std::stoi(args[2]);
  if (args.size() > 3) config.base_seed = std::stoull(args[3]);
  config.schedule.trace = true;
  const core::FleetResult result = core::RunFleet(config);
  session.RecordScheduler(result.scheduler_metrics, result.sched_report, result.sched_trace);

  const obs::SchedReport& report = result.sched_report;
  std::cout << "fleet: " << shards << " shards x " << core::FormatDouble(seconds, 0)
            << " s on " << result.threads_used << " workers, "
            << core::FormatCount(result.total_packets) << " packets\n"
            << "  makespan   " << core::FormatDouble(report.makespan_ns * 1e-9, 3) << " s\n"
            << "  imbalance  " << core::FormatDouble(report.imbalance_ratio, 3)
            << "  admission-stall " << core::FormatDouble(report.admission_stall_fraction, 3)
            << "\n";
  for (const obs::SchedReport::Worker& w : report.per_worker) {
    std::cout << "  worker " << w.worker << ": busy "
              << core::FormatDouble(w.busy_ratio * 100.0, 1) << "%  units " << w.units
              << "  shards " << w.shards << "  steals " << w.steals << "\n";
  }
  for (const obs::Alert& alert : report.alerts) {
    std::cout << "  ALERT " << alert.rule << ": "
              << core::FormatDouble(alert.value, 3) << " vs "
              << core::FormatDouble(alert.threshold, 3) << "\n";
  }
  return 0;
}

void Usage() {
  std::cerr << "usage: gtrace_tool <generate|summarize|convert|sessions|hurst|loss|fleet> "
               "<args>\n"
               "  generate  <out.gtr|out.pcap> [seconds] [seed]\n"
               "  summarize <trace>\n"
               "  convert   <in> <out>\n"
               "  sessions  <trace> [top_n]\n"
               "  hurst     <trace>\n"
               "  loss      <trace>\n"
               "  fleet     <shards> [seconds] [workers] [seed]\n"
               "options (any command):\n"
               "  --metrics-out=<json>    write a metrics + profiling snapshot\n"
               "  --trace-out=<json>      write sim-time spans (Chrome trace_event)\n"
               "  --flight-out=<jsonl>    write the flight-recorder snapshot stream\n"
               "  --alerts-out=<jsonl>    write watchdog SLO alerts\n"
               "  --prom-out=<txt>        write Prometheus text exposition\n"
               "  --sched-metrics-out=<json>  write fleet scheduler metrics (fleet cmd)\n"
               "  --sched-report-out=<json>   write the fleet critical-path report\n"
               "  --sched-trace-out=<json>    write the fleet worker timeline\n"
               "  --flight-sample=<s>     sim-seconds between snapshots (default 60)\n"
               "  --flight-dump=<json>    black-box path (default flight_dump.json)\n";
}

}  // namespace

int main(int argc, char** argv) {
  // Observability flags are position-independent and work for any command.
  obs::ExportOptions obs_options;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (!obs_options.TryParseFlag(arg)) positional.emplace_back(arg);
  }
  obs_options.ApplyEnvDefaults();
  if (positional.size() < 2) {
    Usage();
    return 2;
  }
  const std::string command = positional.front();
  const std::vector<std::string> args(positional.begin() + 1, positional.end());
  obs::ExportSession obs_session(std::move(obs_options));
  int status = 2;
  bool known = true;
  try {
    if (command == "generate") {
      status = Generate(args);
    } else if (command == "summarize") {
      status = Summarize(args);
    } else if (command == "convert") {
      status = Convert(args);
    } else if (command == "sessions") {
      status = Sessions(args);
    } else if (command == "hurst") {
      status = Hurst(args);
    } else if (command == "loss") {
      status = Loss(args);
    } else if (command == "fleet") {
      status = Fleet(args, obs_session);
    } else {
      known = false;
    }
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  if (!known) {
    Usage();
    return 2;
  }
  const int obs_status = obs_session.Finish();
  return status != 0 ? status : obs_status;
}
