file(REMOVE_RECURSE
  "CMakeFiles/nat_experiment.dir/nat_experiment.cpp.o"
  "CMakeFiles/nat_experiment.dir/nat_experiment.cpp.o.d"
  "nat_experiment"
  "nat_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nat_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
