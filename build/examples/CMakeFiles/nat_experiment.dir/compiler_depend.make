# Empty compiler generated dependencies file for nat_experiment.
# This may be replaced when dependencies are built.
