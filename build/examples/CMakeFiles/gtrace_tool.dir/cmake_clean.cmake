file(REMOVE_RECURSE
  "CMakeFiles/gtrace_tool.dir/gtrace_tool.cpp.o"
  "CMakeFiles/gtrace_tool.dir/gtrace_tool.cpp.o.d"
  "gtrace_tool"
  "gtrace_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gtrace_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
