# Empty compiler generated dependencies file for gtrace_tool.
# This may be replaced when dependencies are built.
