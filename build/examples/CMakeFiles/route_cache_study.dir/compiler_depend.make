# Empty compiler generated dependencies file for route_cache_study.
# This may be replaced when dependencies are built.
