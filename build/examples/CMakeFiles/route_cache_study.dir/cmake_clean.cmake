file(REMOVE_RECURSE
  "CMakeFiles/route_cache_study.dir/route_cache_study.cpp.o"
  "CMakeFiles/route_cache_study.dir/route_cache_study.cpp.o.d"
  "route_cache_study"
  "route_cache_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/route_cache_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
