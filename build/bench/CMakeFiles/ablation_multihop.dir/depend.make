# Empty dependencies file for ablation_multihop.
# This may be replaced when dependencies are built.
