# Empty dependencies file for fig04_inout_breakdown.
# This may be replaced when dependencies are built.
