file(REMOVE_RECURSE
  "CMakeFiles/ablation_background_traffic.dir/ablation_background_traffic.cc.o"
  "CMakeFiles/ablation_background_traffic.dir/ablation_background_traffic.cc.o.d"
  "ablation_background_traffic"
  "ablation_background_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_background_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
