# Empty compiler generated dependencies file for ablation_background_traffic.
# This may be replaced when dependencies are built.
