# Empty compiler generated dependencies file for fig08_load_50ms.
# This may be replaced when dependencies are built.
