file(REMOVE_RECURSE
  "CMakeFiles/fig08_load_50ms.dir/fig08_load_50ms.cc.o"
  "CMakeFiles/fig08_load_50ms.dir/fig08_load_50ms.cc.o.d"
  "fig08_load_50ms"
  "fig08_load_50ms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_load_50ms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
