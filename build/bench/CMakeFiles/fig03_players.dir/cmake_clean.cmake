file(REMOVE_RECURSE
  "CMakeFiles/fig03_players.dir/fig03_players.cc.o"
  "CMakeFiles/fig03_players.dir/fig03_players.cc.o.d"
  "fig03_players"
  "fig03_players.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_players.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
