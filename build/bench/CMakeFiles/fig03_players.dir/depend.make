# Empty dependencies file for fig03_players.
# This may be replaced when dependencies are built.
