# Empty compiler generated dependencies file for fig13_packet_size_cdf.
# This may be replaced when dependencies are built.
