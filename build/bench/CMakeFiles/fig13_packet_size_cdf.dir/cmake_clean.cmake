file(REMOVE_RECURSE
  "CMakeFiles/fig13_packet_size_cdf.dir/fig13_packet_size_cdf.cc.o"
  "CMakeFiles/fig13_packet_size_cdf.dir/fig13_packet_size_cdf.cc.o.d"
  "fig13_packet_size_cdf"
  "fig13_packet_size_cdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_packet_size_cdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
