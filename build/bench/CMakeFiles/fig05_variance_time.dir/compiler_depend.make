# Empty compiler generated dependencies file for fig05_variance_time.
# This may be replaced when dependencies are built.
