# Empty compiler generated dependencies file for fig15_nat_outgoing.
# This may be replaced when dependencies are built.
