file(REMOVE_RECURSE
  "CMakeFiles/fig15_nat_outgoing.dir/fig15_nat_outgoing.cc.o"
  "CMakeFiles/fig15_nat_outgoing.dir/fig15_nat_outgoing.cc.o.d"
  "fig15_nat_outgoing"
  "fig15_nat_outgoing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_nat_outgoing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
