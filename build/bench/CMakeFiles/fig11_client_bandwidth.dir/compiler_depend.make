# Empty compiler generated dependencies file for fig11_client_bandwidth.
# This may be replaced when dependencies are built.
