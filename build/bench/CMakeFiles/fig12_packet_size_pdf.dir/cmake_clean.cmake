file(REMOVE_RECURSE
  "CMakeFiles/fig12_packet_size_pdf.dir/fig12_packet_size_pdf.cc.o"
  "CMakeFiles/fig12_packet_size_pdf.dir/fig12_packet_size_pdf.cc.o.d"
  "fig12_packet_size_pdf"
  "fig12_packet_size_pdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_packet_size_pdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
