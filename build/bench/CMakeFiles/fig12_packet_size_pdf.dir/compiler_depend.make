# Empty compiler generated dependencies file for fig12_packet_size_pdf.
# This may be replaced when dependencies are built.
