# Empty dependencies file for table2_network_usage.
# This may be replaced when dependencies are built.
