file(REMOVE_RECURSE
  "CMakeFiles/table2_network_usage.dir/table2_network_usage.cc.o"
  "CMakeFiles/table2_network_usage.dir/table2_network_usage.cc.o.d"
  "table2_network_usage"
  "table2_network_usage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_network_usage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
