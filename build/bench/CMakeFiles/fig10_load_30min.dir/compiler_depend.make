# Empty compiler generated dependencies file for fig10_load_30min.
# This may be replaced when dependencies are built.
