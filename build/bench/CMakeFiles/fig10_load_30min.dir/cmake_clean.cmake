file(REMOVE_RECURSE
  "CMakeFiles/fig10_load_30min.dir/fig10_load_30min.cc.o"
  "CMakeFiles/fig10_load_30min.dir/fig10_load_30min.cc.o.d"
  "fig10_load_30min"
  "fig10_load_30min.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_load_30min.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
