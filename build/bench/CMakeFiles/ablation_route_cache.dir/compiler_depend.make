# Empty compiler generated dependencies file for ablation_route_cache.
# This may be replaced when dependencies are built.
