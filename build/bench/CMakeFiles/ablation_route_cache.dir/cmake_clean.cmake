file(REMOVE_RECURSE
  "CMakeFiles/ablation_route_cache.dir/ablation_route_cache.cc.o"
  "CMakeFiles/ablation_route_cache.dir/ablation_route_cache.cc.o.d"
  "ablation_route_cache"
  "ablation_route_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_route_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
