file(REMOVE_RECURSE
  "CMakeFiles/ablation_tick_sync.dir/ablation_tick_sync.cc.o"
  "CMakeFiles/ablation_tick_sync.dir/ablation_tick_sync.cc.o.d"
  "ablation_tick_sync"
  "ablation_tick_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tick_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
