# Empty dependencies file for ablation_tick_sync.
# This may be replaced when dependencies are built.
