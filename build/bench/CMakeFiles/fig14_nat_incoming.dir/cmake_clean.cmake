file(REMOVE_RECURSE
  "CMakeFiles/fig14_nat_incoming.dir/fig14_nat_incoming.cc.o"
  "CMakeFiles/fig14_nat_incoming.dir/fig14_nat_incoming.cc.o.d"
  "fig14_nat_incoming"
  "fig14_nat_incoming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_nat_incoming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
