# Empty dependencies file for fig14_nat_incoming.
# This may be replaced when dependencies are built.
