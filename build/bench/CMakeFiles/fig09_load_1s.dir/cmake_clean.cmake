file(REMOVE_RECURSE
  "CMakeFiles/fig09_load_1s.dir/fig09_load_1s.cc.o"
  "CMakeFiles/fig09_load_1s.dir/fig09_load_1s.cc.o.d"
  "fig09_load_1s"
  "fig09_load_1s.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_load_1s.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
