# Empty dependencies file for fig09_load_1s.
# This may be replaced when dependencies are built.
