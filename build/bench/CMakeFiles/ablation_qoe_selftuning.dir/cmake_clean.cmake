file(REMOVE_RECURSE
  "CMakeFiles/ablation_qoe_selftuning.dir/ablation_qoe_selftuning.cc.o"
  "CMakeFiles/ablation_qoe_selftuning.dir/ablation_qoe_selftuning.cc.o.d"
  "ablation_qoe_selftuning"
  "ablation_qoe_selftuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_qoe_selftuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
