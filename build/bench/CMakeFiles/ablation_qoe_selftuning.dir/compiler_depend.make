# Empty compiler generated dependencies file for ablation_qoe_selftuning.
# This may be replaced when dependencies are built.
