file(REMOVE_RECURSE
  "CMakeFiles/table4_nat_experiment.dir/table4_nat_experiment.cc.o"
  "CMakeFiles/table4_nat_experiment.dir/table4_nat_experiment.cc.o.d"
  "table4_nat_experiment"
  "table4_nat_experiment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_nat_experiment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
