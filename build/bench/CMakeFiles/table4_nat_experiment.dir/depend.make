# Empty dependencies file for table4_nat_experiment.
# This may be replaced when dependencies are built.
