# Empty dependencies file for fig06_07_load_10ms.
# This may be replaced when dependencies are built.
