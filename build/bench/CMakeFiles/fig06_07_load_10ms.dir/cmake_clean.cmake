file(REMOVE_RECURSE
  "CMakeFiles/fig06_07_load_10ms.dir/fig06_07_load_10ms.cc.o"
  "CMakeFiles/fig06_07_load_10ms.dir/fig06_07_load_10ms.cc.o.d"
  "fig06_07_load_10ms"
  "fig06_07_load_10ms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_07_load_10ms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
