# Empty compiler generated dependencies file for fig02_packetload_minute.
# This may be replaced when dependencies are built.
