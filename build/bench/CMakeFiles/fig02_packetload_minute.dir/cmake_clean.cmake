file(REMOVE_RECURSE
  "CMakeFiles/fig02_packetload_minute.dir/fig02_packetload_minute.cc.o"
  "CMakeFiles/fig02_packetload_minute.dir/fig02_packetload_minute.cc.o.d"
  "fig02_packetload_minute"
  "fig02_packetload_minute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_packetload_minute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
