# Empty dependencies file for table3_application_info.
# This may be replaced when dependencies are built.
