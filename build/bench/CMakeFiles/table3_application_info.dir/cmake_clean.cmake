file(REMOVE_RECURSE
  "CMakeFiles/table3_application_info.dir/table3_application_info.cc.o"
  "CMakeFiles/table3_application_info.dir/table3_application_info.cc.o.d"
  "table3_application_info"
  "table3_application_info.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_application_info.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
