file(REMOVE_RECURSE
  "CMakeFiles/fig01_bandwidth_minute.dir/fig01_bandwidth_minute.cc.o"
  "CMakeFiles/fig01_bandwidth_minute.dir/fig01_bandwidth_minute.cc.o.d"
  "fig01_bandwidth_minute"
  "fig01_bandwidth_minute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_bandwidth_minute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
