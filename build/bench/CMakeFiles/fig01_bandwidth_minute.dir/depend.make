# Empty dependencies file for fig01_bandwidth_minute.
# This may be replaced when dependencies are built.
