file(REMOVE_RECURSE
  "CMakeFiles/gametrace_router.dir/router/device_stats.cc.o"
  "CMakeFiles/gametrace_router.dir/router/device_stats.cc.o.d"
  "CMakeFiles/gametrace_router.dir/router/fifo_queue.cc.o"
  "CMakeFiles/gametrace_router.dir/router/fifo_queue.cc.o.d"
  "CMakeFiles/gametrace_router.dir/router/link.cc.o"
  "CMakeFiles/gametrace_router.dir/router/link.cc.o.d"
  "CMakeFiles/gametrace_router.dir/router/lookup_engine.cc.o"
  "CMakeFiles/gametrace_router.dir/router/lookup_engine.cc.o.d"
  "CMakeFiles/gametrace_router.dir/router/nat_device.cc.o"
  "CMakeFiles/gametrace_router.dir/router/nat_device.cc.o.d"
  "CMakeFiles/gametrace_router.dir/router/route_cache.cc.o"
  "CMakeFiles/gametrace_router.dir/router/route_cache.cc.o.d"
  "CMakeFiles/gametrace_router.dir/router/routing_table.cc.o"
  "CMakeFiles/gametrace_router.dir/router/routing_table.cc.o.d"
  "CMakeFiles/gametrace_router.dir/router/topology.cc.o"
  "CMakeFiles/gametrace_router.dir/router/topology.cc.o.d"
  "libgametrace_router.a"
  "libgametrace_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametrace_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
