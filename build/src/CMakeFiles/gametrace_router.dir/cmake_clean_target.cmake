file(REMOVE_RECURSE
  "libgametrace_router.a"
)
