
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/router/device_stats.cc" "src/CMakeFiles/gametrace_router.dir/router/device_stats.cc.o" "gcc" "src/CMakeFiles/gametrace_router.dir/router/device_stats.cc.o.d"
  "/root/repo/src/router/fifo_queue.cc" "src/CMakeFiles/gametrace_router.dir/router/fifo_queue.cc.o" "gcc" "src/CMakeFiles/gametrace_router.dir/router/fifo_queue.cc.o.d"
  "/root/repo/src/router/link.cc" "src/CMakeFiles/gametrace_router.dir/router/link.cc.o" "gcc" "src/CMakeFiles/gametrace_router.dir/router/link.cc.o.d"
  "/root/repo/src/router/lookup_engine.cc" "src/CMakeFiles/gametrace_router.dir/router/lookup_engine.cc.o" "gcc" "src/CMakeFiles/gametrace_router.dir/router/lookup_engine.cc.o.d"
  "/root/repo/src/router/nat_device.cc" "src/CMakeFiles/gametrace_router.dir/router/nat_device.cc.o" "gcc" "src/CMakeFiles/gametrace_router.dir/router/nat_device.cc.o.d"
  "/root/repo/src/router/route_cache.cc" "src/CMakeFiles/gametrace_router.dir/router/route_cache.cc.o" "gcc" "src/CMakeFiles/gametrace_router.dir/router/route_cache.cc.o.d"
  "/root/repo/src/router/routing_table.cc" "src/CMakeFiles/gametrace_router.dir/router/routing_table.cc.o" "gcc" "src/CMakeFiles/gametrace_router.dir/router/routing_table.cc.o.d"
  "/root/repo/src/router/topology.cc" "src/CMakeFiles/gametrace_router.dir/router/topology.cc.o" "gcc" "src/CMakeFiles/gametrace_router.dir/router/topology.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gametrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
