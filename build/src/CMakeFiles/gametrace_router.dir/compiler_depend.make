# Empty compiler generated dependencies file for gametrace_router.
# This may be replaced when dependencies are built.
