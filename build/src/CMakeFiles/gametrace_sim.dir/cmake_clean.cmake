file(REMOVE_RECURSE
  "CMakeFiles/gametrace_sim.dir/sim/diurnal.cc.o"
  "CMakeFiles/gametrace_sim.dir/sim/diurnal.cc.o.d"
  "CMakeFiles/gametrace_sim.dir/sim/event_queue.cc.o"
  "CMakeFiles/gametrace_sim.dir/sim/event_queue.cc.o.d"
  "CMakeFiles/gametrace_sim.dir/sim/random.cc.o"
  "CMakeFiles/gametrace_sim.dir/sim/random.cc.o.d"
  "CMakeFiles/gametrace_sim.dir/sim/rng.cc.o"
  "CMakeFiles/gametrace_sim.dir/sim/rng.cc.o.d"
  "CMakeFiles/gametrace_sim.dir/sim/simulator.cc.o"
  "CMakeFiles/gametrace_sim.dir/sim/simulator.cc.o.d"
  "libgametrace_sim.a"
  "libgametrace_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametrace_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
