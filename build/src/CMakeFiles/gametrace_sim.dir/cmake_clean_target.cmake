file(REMOVE_RECURSE
  "libgametrace_sim.a"
)
