# Empty dependencies file for gametrace_sim.
# This may be replaced when dependencies are built.
