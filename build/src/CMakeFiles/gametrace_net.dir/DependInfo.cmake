
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/flow.cc" "src/CMakeFiles/gametrace_net.dir/net/flow.cc.o" "gcc" "src/CMakeFiles/gametrace_net.dir/net/flow.cc.o.d"
  "/root/repo/src/net/game_payload.cc" "src/CMakeFiles/gametrace_net.dir/net/game_payload.cc.o" "gcc" "src/CMakeFiles/gametrace_net.dir/net/game_payload.cc.o.d"
  "/root/repo/src/net/headers.cc" "src/CMakeFiles/gametrace_net.dir/net/headers.cc.o" "gcc" "src/CMakeFiles/gametrace_net.dir/net/headers.cc.o.d"
  "/root/repo/src/net/ip.cc" "src/CMakeFiles/gametrace_net.dir/net/ip.cc.o" "gcc" "src/CMakeFiles/gametrace_net.dir/net/ip.cc.o.d"
  "/root/repo/src/net/pcap.cc" "src/CMakeFiles/gametrace_net.dir/net/pcap.cc.o" "gcc" "src/CMakeFiles/gametrace_net.dir/net/pcap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
