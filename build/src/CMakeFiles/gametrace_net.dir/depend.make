# Empty dependencies file for gametrace_net.
# This may be replaced when dependencies are built.
