file(REMOVE_RECURSE
  "libgametrace_net.a"
)
