file(REMOVE_RECURSE
  "CMakeFiles/gametrace_net.dir/net/flow.cc.o"
  "CMakeFiles/gametrace_net.dir/net/flow.cc.o.d"
  "CMakeFiles/gametrace_net.dir/net/game_payload.cc.o"
  "CMakeFiles/gametrace_net.dir/net/game_payload.cc.o.d"
  "CMakeFiles/gametrace_net.dir/net/headers.cc.o"
  "CMakeFiles/gametrace_net.dir/net/headers.cc.o.d"
  "CMakeFiles/gametrace_net.dir/net/ip.cc.o"
  "CMakeFiles/gametrace_net.dir/net/ip.cc.o.d"
  "CMakeFiles/gametrace_net.dir/net/pcap.cc.o"
  "CMakeFiles/gametrace_net.dir/net/pcap.cc.o.d"
  "libgametrace_net.a"
  "libgametrace_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametrace_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
