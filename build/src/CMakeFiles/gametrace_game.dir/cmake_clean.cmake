file(REMOVE_RECURSE
  "CMakeFiles/gametrace_game.dir/game/client.cc.o"
  "CMakeFiles/gametrace_game.dir/game/client.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/config.cc.o"
  "CMakeFiles/gametrace_game.dir/game/config.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/cs_server.cc.o"
  "CMakeFiles/gametrace_game.dir/game/cs_server.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/download.cc.o"
  "CMakeFiles/gametrace_game.dir/game/download.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/game_log.cc.o"
  "CMakeFiles/gametrace_game.dir/game/game_log.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/map_rotation.cc.o"
  "CMakeFiles/gametrace_game.dir/game/map_rotation.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/outage.cc.o"
  "CMakeFiles/gametrace_game.dir/game/outage.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/packet_size_model.cc.o"
  "CMakeFiles/gametrace_game.dir/game/packet_size_model.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/qoe.cc.o"
  "CMakeFiles/gametrace_game.dir/game/qoe.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/server_tick.cc.o"
  "CMakeFiles/gametrace_game.dir/game/server_tick.cc.o.d"
  "CMakeFiles/gametrace_game.dir/game/session_model.cc.o"
  "CMakeFiles/gametrace_game.dir/game/session_model.cc.o.d"
  "libgametrace_game.a"
  "libgametrace_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametrace_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
