# Empty compiler generated dependencies file for gametrace_game.
# This may be replaced when dependencies are built.
