file(REMOVE_RECURSE
  "libgametrace_game.a"
)
