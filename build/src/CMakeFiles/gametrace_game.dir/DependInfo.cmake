
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/client.cc" "src/CMakeFiles/gametrace_game.dir/game/client.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/client.cc.o.d"
  "/root/repo/src/game/config.cc" "src/CMakeFiles/gametrace_game.dir/game/config.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/config.cc.o.d"
  "/root/repo/src/game/cs_server.cc" "src/CMakeFiles/gametrace_game.dir/game/cs_server.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/cs_server.cc.o.d"
  "/root/repo/src/game/download.cc" "src/CMakeFiles/gametrace_game.dir/game/download.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/download.cc.o.d"
  "/root/repo/src/game/game_log.cc" "src/CMakeFiles/gametrace_game.dir/game/game_log.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/game_log.cc.o.d"
  "/root/repo/src/game/map_rotation.cc" "src/CMakeFiles/gametrace_game.dir/game/map_rotation.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/map_rotation.cc.o.d"
  "/root/repo/src/game/outage.cc" "src/CMakeFiles/gametrace_game.dir/game/outage.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/outage.cc.o.d"
  "/root/repo/src/game/packet_size_model.cc" "src/CMakeFiles/gametrace_game.dir/game/packet_size_model.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/packet_size_model.cc.o.d"
  "/root/repo/src/game/qoe.cc" "src/CMakeFiles/gametrace_game.dir/game/qoe.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/qoe.cc.o.d"
  "/root/repo/src/game/server_tick.cc" "src/CMakeFiles/gametrace_game.dir/game/server_tick.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/server_tick.cc.o.d"
  "/root/repo/src/game/session_model.cc" "src/CMakeFiles/gametrace_game.dir/game/session_model.cc.o" "gcc" "src/CMakeFiles/gametrace_game.dir/game/session_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gametrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
