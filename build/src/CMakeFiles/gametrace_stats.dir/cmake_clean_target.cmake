file(REMOVE_RECURSE
  "libgametrace_stats.a"
)
