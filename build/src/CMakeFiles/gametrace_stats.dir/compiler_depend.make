# Empty compiler generated dependencies file for gametrace_stats.
# This may be replaced when dependencies are built.
