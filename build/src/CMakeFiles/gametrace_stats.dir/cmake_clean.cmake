file(REMOVE_RECURSE
  "CMakeFiles/gametrace_stats.dir/stats/autocorrelation.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/autocorrelation.cc.o.d"
  "CMakeFiles/gametrace_stats.dir/stats/empirical_distribution.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/empirical_distribution.cc.o.d"
  "CMakeFiles/gametrace_stats.dir/stats/histogram.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/histogram.cc.o.d"
  "CMakeFiles/gametrace_stats.dir/stats/linear_regression.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/linear_regression.cc.o.d"
  "CMakeFiles/gametrace_stats.dir/stats/quantile.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/quantile.cc.o.d"
  "CMakeFiles/gametrace_stats.dir/stats/rs_hurst.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/rs_hurst.cc.o.d"
  "CMakeFiles/gametrace_stats.dir/stats/running_stats.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/running_stats.cc.o.d"
  "CMakeFiles/gametrace_stats.dir/stats/time_series.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/time_series.cc.o.d"
  "CMakeFiles/gametrace_stats.dir/stats/variance_time.cc.o"
  "CMakeFiles/gametrace_stats.dir/stats/variance_time.cc.o.d"
  "libgametrace_stats.a"
  "libgametrace_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametrace_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
