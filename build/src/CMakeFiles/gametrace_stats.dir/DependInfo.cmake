
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorrelation.cc" "src/CMakeFiles/gametrace_stats.dir/stats/autocorrelation.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/autocorrelation.cc.o.d"
  "/root/repo/src/stats/empirical_distribution.cc" "src/CMakeFiles/gametrace_stats.dir/stats/empirical_distribution.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/empirical_distribution.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/gametrace_stats.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/linear_regression.cc" "src/CMakeFiles/gametrace_stats.dir/stats/linear_regression.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/linear_regression.cc.o.d"
  "/root/repo/src/stats/quantile.cc" "src/CMakeFiles/gametrace_stats.dir/stats/quantile.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/quantile.cc.o.d"
  "/root/repo/src/stats/rs_hurst.cc" "src/CMakeFiles/gametrace_stats.dir/stats/rs_hurst.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/rs_hurst.cc.o.d"
  "/root/repo/src/stats/running_stats.cc" "src/CMakeFiles/gametrace_stats.dir/stats/running_stats.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/running_stats.cc.o.d"
  "/root/repo/src/stats/time_series.cc" "src/CMakeFiles/gametrace_stats.dir/stats/time_series.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/time_series.cc.o.d"
  "/root/repo/src/stats/variance_time.cc" "src/CMakeFiles/gametrace_stats.dir/stats/variance_time.cc.o" "gcc" "src/CMakeFiles/gametrace_stats.dir/stats/variance_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
