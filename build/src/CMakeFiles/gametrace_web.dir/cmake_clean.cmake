file(REMOVE_RECURSE
  "CMakeFiles/gametrace_web.dir/web/web_traffic.cc.o"
  "CMakeFiles/gametrace_web.dir/web/web_traffic.cc.o.d"
  "libgametrace_web.a"
  "libgametrace_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametrace_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
