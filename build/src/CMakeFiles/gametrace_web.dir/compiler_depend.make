# Empty compiler generated dependencies file for gametrace_web.
# This may be replaced when dependencies are built.
