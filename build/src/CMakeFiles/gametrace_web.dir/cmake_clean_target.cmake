file(REMOVE_RECURSE
  "libgametrace_web.a"
)
