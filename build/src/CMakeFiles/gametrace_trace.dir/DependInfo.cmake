
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/aggregator.cc" "src/CMakeFiles/gametrace_trace.dir/trace/aggregator.cc.o" "gcc" "src/CMakeFiles/gametrace_trace.dir/trace/aggregator.cc.o.d"
  "/root/repo/src/trace/capture.cc" "src/CMakeFiles/gametrace_trace.dir/trace/capture.cc.o" "gcc" "src/CMakeFiles/gametrace_trace.dir/trace/capture.cc.o.d"
  "/root/repo/src/trace/filter.cc" "src/CMakeFiles/gametrace_trace.dir/trace/filter.cc.o" "gcc" "src/CMakeFiles/gametrace_trace.dir/trace/filter.cc.o.d"
  "/root/repo/src/trace/loss_estimator.cc" "src/CMakeFiles/gametrace_trace.dir/trace/loss_estimator.cc.o" "gcc" "src/CMakeFiles/gametrace_trace.dir/trace/loss_estimator.cc.o.d"
  "/root/repo/src/trace/session_tracker.cc" "src/CMakeFiles/gametrace_trace.dir/trace/session_tracker.cc.o" "gcc" "src/CMakeFiles/gametrace_trace.dir/trace/session_tracker.cc.o.d"
  "/root/repo/src/trace/summary.cc" "src/CMakeFiles/gametrace_trace.dir/trace/summary.cc.o" "gcc" "src/CMakeFiles/gametrace_trace.dir/trace/summary.cc.o.d"
  "/root/repo/src/trace/trace_format.cc" "src/CMakeFiles/gametrace_trace.dir/trace/trace_format.cc.o" "gcc" "src/CMakeFiles/gametrace_trace.dir/trace/trace_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gametrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
