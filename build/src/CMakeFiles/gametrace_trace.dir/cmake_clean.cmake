file(REMOVE_RECURSE
  "CMakeFiles/gametrace_trace.dir/trace/aggregator.cc.o"
  "CMakeFiles/gametrace_trace.dir/trace/aggregator.cc.o.d"
  "CMakeFiles/gametrace_trace.dir/trace/capture.cc.o"
  "CMakeFiles/gametrace_trace.dir/trace/capture.cc.o.d"
  "CMakeFiles/gametrace_trace.dir/trace/filter.cc.o"
  "CMakeFiles/gametrace_trace.dir/trace/filter.cc.o.d"
  "CMakeFiles/gametrace_trace.dir/trace/loss_estimator.cc.o"
  "CMakeFiles/gametrace_trace.dir/trace/loss_estimator.cc.o.d"
  "CMakeFiles/gametrace_trace.dir/trace/session_tracker.cc.o"
  "CMakeFiles/gametrace_trace.dir/trace/session_tracker.cc.o.d"
  "CMakeFiles/gametrace_trace.dir/trace/summary.cc.o"
  "CMakeFiles/gametrace_trace.dir/trace/summary.cc.o.d"
  "CMakeFiles/gametrace_trace.dir/trace/trace_format.cc.o"
  "CMakeFiles/gametrace_trace.dir/trace/trace_format.cc.o.d"
  "libgametrace_trace.a"
  "libgametrace_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametrace_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
