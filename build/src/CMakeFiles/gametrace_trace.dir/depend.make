# Empty dependencies file for gametrace_trace.
# This may be replaced when dependencies are built.
