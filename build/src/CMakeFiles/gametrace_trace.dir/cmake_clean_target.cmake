file(REMOVE_RECURSE
  "libgametrace_trace.a"
)
