file(REMOVE_RECURSE
  "libgametrace_core.a"
)
