
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate.cc" "src/CMakeFiles/gametrace_core.dir/core/aggregate.cc.o" "gcc" "src/CMakeFiles/gametrace_core.dir/core/aggregate.cc.o.d"
  "/root/repo/src/core/characterizer.cc" "src/CMakeFiles/gametrace_core.dir/core/characterizer.cc.o" "gcc" "src/CMakeFiles/gametrace_core.dir/core/characterizer.cc.o.d"
  "/root/repo/src/core/experiment.cc" "src/CMakeFiles/gametrace_core.dir/core/experiment.cc.o" "gcc" "src/CMakeFiles/gametrace_core.dir/core/experiment.cc.o.d"
  "/root/repo/src/core/provisioning.cc" "src/CMakeFiles/gametrace_core.dir/core/provisioning.cc.o" "gcc" "src/CMakeFiles/gametrace_core.dir/core/provisioning.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/gametrace_core.dir/core/report.cc.o" "gcc" "src/CMakeFiles/gametrace_core.dir/core/report.cc.o.d"
  "/root/repo/src/core/traffic_model.cc" "src/CMakeFiles/gametrace_core.dir/core/traffic_model.cc.o" "gcc" "src/CMakeFiles/gametrace_core.dir/core/traffic_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gametrace_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_router.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
