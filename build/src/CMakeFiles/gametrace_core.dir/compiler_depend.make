# Empty compiler generated dependencies file for gametrace_core.
# This may be replaced when dependencies are built.
