file(REMOVE_RECURSE
  "CMakeFiles/gametrace_core.dir/core/aggregate.cc.o"
  "CMakeFiles/gametrace_core.dir/core/aggregate.cc.o.d"
  "CMakeFiles/gametrace_core.dir/core/characterizer.cc.o"
  "CMakeFiles/gametrace_core.dir/core/characterizer.cc.o.d"
  "CMakeFiles/gametrace_core.dir/core/experiment.cc.o"
  "CMakeFiles/gametrace_core.dir/core/experiment.cc.o.d"
  "CMakeFiles/gametrace_core.dir/core/provisioning.cc.o"
  "CMakeFiles/gametrace_core.dir/core/provisioning.cc.o.d"
  "CMakeFiles/gametrace_core.dir/core/report.cc.o"
  "CMakeFiles/gametrace_core.dir/core/report.cc.o.d"
  "CMakeFiles/gametrace_core.dir/core/traffic_model.cc.o"
  "CMakeFiles/gametrace_core.dir/core/traffic_model.cc.o.d"
  "libgametrace_core.a"
  "libgametrace_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gametrace_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
