file(REMOVE_RECURSE
  "CMakeFiles/trace_test.dir/trace/aggregator_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/aggregator_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/capture_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/capture_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/filter_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/filter_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/loss_estimator_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/loss_estimator_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/session_tracker_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/session_tracker_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/summary_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/summary_test.cc.o.d"
  "CMakeFiles/trace_test.dir/trace/trace_format_test.cc.o"
  "CMakeFiles/trace_test.dir/trace/trace_format_test.cc.o.d"
  "trace_test"
  "trace_test.pdb"
  "trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
