
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/aggregator_test.cc" "tests/CMakeFiles/trace_test.dir/trace/aggregator_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/aggregator_test.cc.o.d"
  "/root/repo/tests/trace/capture_test.cc" "tests/CMakeFiles/trace_test.dir/trace/capture_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/capture_test.cc.o.d"
  "/root/repo/tests/trace/filter_test.cc" "tests/CMakeFiles/trace_test.dir/trace/filter_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/filter_test.cc.o.d"
  "/root/repo/tests/trace/loss_estimator_test.cc" "tests/CMakeFiles/trace_test.dir/trace/loss_estimator_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/loss_estimator_test.cc.o.d"
  "/root/repo/tests/trace/session_tracker_test.cc" "tests/CMakeFiles/trace_test.dir/trace/session_tracker_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/session_tracker_test.cc.o.d"
  "/root/repo/tests/trace/summary_test.cc" "tests/CMakeFiles/trace_test.dir/trace/summary_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/summary_test.cc.o.d"
  "/root/repo/tests/trace/trace_format_test.cc" "tests/CMakeFiles/trace_test.dir/trace/trace_format_test.cc.o" "gcc" "tests/CMakeFiles/trace_test.dir/trace/trace_format_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gametrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_router.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
