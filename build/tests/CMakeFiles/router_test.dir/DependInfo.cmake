
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/router/device_stats_test.cc" "tests/CMakeFiles/router_test.dir/router/device_stats_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/device_stats_test.cc.o.d"
  "/root/repo/tests/router/fifo_queue_test.cc" "tests/CMakeFiles/router_test.dir/router/fifo_queue_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/fifo_queue_test.cc.o.d"
  "/root/repo/tests/router/link_test.cc" "tests/CMakeFiles/router_test.dir/router/link_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/link_test.cc.o.d"
  "/root/repo/tests/router/lookup_engine_test.cc" "tests/CMakeFiles/router_test.dir/router/lookup_engine_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/lookup_engine_test.cc.o.d"
  "/root/repo/tests/router/nat_device_test.cc" "tests/CMakeFiles/router_test.dir/router/nat_device_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/nat_device_test.cc.o.d"
  "/root/repo/tests/router/route_cache_test.cc" "tests/CMakeFiles/router_test.dir/router/route_cache_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/route_cache_test.cc.o.d"
  "/root/repo/tests/router/routing_table_test.cc" "tests/CMakeFiles/router_test.dir/router/routing_table_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/routing_table_test.cc.o.d"
  "/root/repo/tests/router/topology_test.cc" "tests/CMakeFiles/router_test.dir/router/topology_test.cc.o" "gcc" "tests/CMakeFiles/router_test.dir/router/topology_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gametrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_router.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
