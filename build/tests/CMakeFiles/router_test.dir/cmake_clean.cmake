file(REMOVE_RECURSE
  "CMakeFiles/router_test.dir/router/device_stats_test.cc.o"
  "CMakeFiles/router_test.dir/router/device_stats_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/fifo_queue_test.cc.o"
  "CMakeFiles/router_test.dir/router/fifo_queue_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/link_test.cc.o"
  "CMakeFiles/router_test.dir/router/link_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/lookup_engine_test.cc.o"
  "CMakeFiles/router_test.dir/router/lookup_engine_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/nat_device_test.cc.o"
  "CMakeFiles/router_test.dir/router/nat_device_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/route_cache_test.cc.o"
  "CMakeFiles/router_test.dir/router/route_cache_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/routing_table_test.cc.o"
  "CMakeFiles/router_test.dir/router/routing_table_test.cc.o.d"
  "CMakeFiles/router_test.dir/router/topology_test.cc.o"
  "CMakeFiles/router_test.dir/router/topology_test.cc.o.d"
  "router_test"
  "router_test.pdb"
  "router_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
