file(REMOVE_RECURSE
  "CMakeFiles/game_test.dir/game/client_test.cc.o"
  "CMakeFiles/game_test.dir/game/client_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/cs_server_listener_test.cc.o"
  "CMakeFiles/game_test.dir/game/cs_server_listener_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/cs_server_test.cc.o"
  "CMakeFiles/game_test.dir/game/cs_server_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/download_test.cc.o"
  "CMakeFiles/game_test.dir/game/download_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/game_log_test.cc.o"
  "CMakeFiles/game_test.dir/game/game_log_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/map_rotation_test.cc.o"
  "CMakeFiles/game_test.dir/game/map_rotation_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/outage_test.cc.o"
  "CMakeFiles/game_test.dir/game/outage_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/packet_size_model_test.cc.o"
  "CMakeFiles/game_test.dir/game/packet_size_model_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/qoe_test.cc.o"
  "CMakeFiles/game_test.dir/game/qoe_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/server_tick_test.cc.o"
  "CMakeFiles/game_test.dir/game/server_tick_test.cc.o.d"
  "CMakeFiles/game_test.dir/game/session_model_test.cc.o"
  "CMakeFiles/game_test.dir/game/session_model_test.cc.o.d"
  "game_test"
  "game_test.pdb"
  "game_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
