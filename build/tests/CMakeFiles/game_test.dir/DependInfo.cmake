
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/game/client_test.cc" "tests/CMakeFiles/game_test.dir/game/client_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/client_test.cc.o.d"
  "/root/repo/tests/game/cs_server_listener_test.cc" "tests/CMakeFiles/game_test.dir/game/cs_server_listener_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/cs_server_listener_test.cc.o.d"
  "/root/repo/tests/game/cs_server_test.cc" "tests/CMakeFiles/game_test.dir/game/cs_server_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/cs_server_test.cc.o.d"
  "/root/repo/tests/game/download_test.cc" "tests/CMakeFiles/game_test.dir/game/download_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/download_test.cc.o.d"
  "/root/repo/tests/game/game_log_test.cc" "tests/CMakeFiles/game_test.dir/game/game_log_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/game_log_test.cc.o.d"
  "/root/repo/tests/game/map_rotation_test.cc" "tests/CMakeFiles/game_test.dir/game/map_rotation_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/map_rotation_test.cc.o.d"
  "/root/repo/tests/game/outage_test.cc" "tests/CMakeFiles/game_test.dir/game/outage_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/outage_test.cc.o.d"
  "/root/repo/tests/game/packet_size_model_test.cc" "tests/CMakeFiles/game_test.dir/game/packet_size_model_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/packet_size_model_test.cc.o.d"
  "/root/repo/tests/game/qoe_test.cc" "tests/CMakeFiles/game_test.dir/game/qoe_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/qoe_test.cc.o.d"
  "/root/repo/tests/game/server_tick_test.cc" "tests/CMakeFiles/game_test.dir/game/server_tick_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/server_tick_test.cc.o.d"
  "/root/repo/tests/game/session_model_test.cc" "tests/CMakeFiles/game_test.dir/game/session_model_test.cc.o" "gcc" "tests/CMakeFiles/game_test.dir/game/session_model_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gametrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_router.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
