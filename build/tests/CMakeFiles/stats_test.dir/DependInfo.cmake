
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/autocorrelation_test.cc" "tests/CMakeFiles/stats_test.dir/stats/autocorrelation_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/autocorrelation_test.cc.o.d"
  "/root/repo/tests/stats/empirical_distribution_test.cc" "tests/CMakeFiles/stats_test.dir/stats/empirical_distribution_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/empirical_distribution_test.cc.o.d"
  "/root/repo/tests/stats/histogram_test.cc" "tests/CMakeFiles/stats_test.dir/stats/histogram_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/histogram_test.cc.o.d"
  "/root/repo/tests/stats/linear_regression_test.cc" "tests/CMakeFiles/stats_test.dir/stats/linear_regression_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/linear_regression_test.cc.o.d"
  "/root/repo/tests/stats/quantile_test.cc" "tests/CMakeFiles/stats_test.dir/stats/quantile_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/quantile_test.cc.o.d"
  "/root/repo/tests/stats/rs_hurst_test.cc" "tests/CMakeFiles/stats_test.dir/stats/rs_hurst_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/rs_hurst_test.cc.o.d"
  "/root/repo/tests/stats/running_stats_test.cc" "tests/CMakeFiles/stats_test.dir/stats/running_stats_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/running_stats_test.cc.o.d"
  "/root/repo/tests/stats/time_series_test.cc" "tests/CMakeFiles/stats_test.dir/stats/time_series_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/time_series_test.cc.o.d"
  "/root/repo/tests/stats/variance_time_test.cc" "tests/CMakeFiles/stats_test.dir/stats/variance_time_test.cc.o" "gcc" "tests/CMakeFiles/stats_test.dir/stats/variance_time_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gametrace_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_router.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_web.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/gametrace_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
