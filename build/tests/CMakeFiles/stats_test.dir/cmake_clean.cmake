file(REMOVE_RECURSE
  "CMakeFiles/stats_test.dir/stats/autocorrelation_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/autocorrelation_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/empirical_distribution_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/empirical_distribution_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/histogram_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/histogram_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/linear_regression_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/linear_regression_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/quantile_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/quantile_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/rs_hurst_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/rs_hurst_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/running_stats_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/running_stats_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/time_series_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/time_series_test.cc.o.d"
  "CMakeFiles/stats_test.dir/stats/variance_time_test.cc.o"
  "CMakeFiles/stats_test.dir/stats/variance_time_test.cc.o.d"
  "stats_test"
  "stats_test.pdb"
  "stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
