// GT_PROF_SCOPE elision semantics: with the per-TU switch forced off the
// macro must vanish entirely - no site object, no registration, not even
// evaluation of the name expression. Mirrors the GT_DCHECK elision test
// (tests/core/check_dcheck_modes_test.cc); this is the guarantee that a
// GAMETRACE_OBS=OFF build pays literally nothing on the hot path.
#undef GAMETRACE_ENABLE_OBS
#define GAMETRACE_ENABLE_OBS 0
#include "obs/prof.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace gametrace::obs {
namespace {

// Referenced only inside the elided macro below, hence maybe_unused: its
// never being called is exactly what the test asserts.
[[maybe_unused]] const char* CountedName(int* counter) {
  ++*counter;
  return "test.prof.disabled_tu";
}

bool SiteExists(const char* name) {
  const auto snapshot = ProfilingSnapshot();
  return std::any_of(snapshot.begin(), snapshot.end(),
                     [name](const ProfSample& s) { return s.name == name; });
}

TEST(ProfScopeDisabledTu, NameExpressionNeverEvaluated) {
  int evaluations = 0;
  EnableProfiling(true);
  {
    GT_PROF_SCOPE(CountedName(&evaluations));
  }
  EnableProfiling(false);
  EXPECT_EQ(evaluations, 0);
  EXPECT_FALSE(SiteExists("test.prof.disabled_tu"));
}

TEST(ProfScopeDisabledTu, ExpandsToADiscardableStatement) {
  // Two scopes in one block: the expansion must not declare clashing
  // identifiers or otherwise fail to compile.
  GT_PROF_SCOPE("a"); GT_PROF_SCOPE("b");
  if (true) GT_PROF_SCOPE("inside unbraced if");  // must parse as one statement
  SUCCEED();
}

TEST(ProfScopeDisabledTu, RuntimeApiStillLinks) {
  // The runtime surface (snapshot/reset/enable) stays available in
  // obs-disabled builds; only the macro sites disappear.
  EnableProfiling(true);
  EXPECT_TRUE(ProfilingEnabled());
  EnableProfiling(false);
  EXPECT_FALSE(ProfilingEnabled());
  ResetProfiling();
}

}  // namespace
}  // namespace gametrace::obs
