#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <limits>
#include <string>

#include "core/check.h"
#include "json_reader.h"

namespace gametrace::obs {
namespace {

using gametrace::testing::JsonReader;

TEST(MetricsRegistry, CountersAccumulateAndReadBack) {
  MetricsRegistry registry;
  registry.counter("a").Add();
  registry.counter("a").Add(41);
  EXPECT_EQ(registry.counter_value("a"), 42u);
  EXPECT_EQ(registry.counter_value("missing"), 0u);
  EXPECT_EQ(registry.counter_count(), 1u);
}

TEST(MetricsRegistry, InstrumentReferencesAreStable) {
  MetricsRegistry registry;
  Counter& a = registry.counter("a");
  // Registering many more instruments must not move the first one.
  for (int i = 0; i < 100; ++i) registry.counter("c" + std::to_string(i));
  EXPECT_EQ(&a, &registry.counter("a"));
}

TEST(MetricsRegistry, GaugeMergeModes) {
  MetricsRegistry left;
  left.gauge("players", Gauge::MergeMode::kSum).Set(10.0);
  left.gauge("high_water", Gauge::MergeMode::kMax).SetMax(7.0);

  MetricsRegistry right;
  right.gauge("players", Gauge::MergeMode::kSum).Set(5.0);
  right.gauge("high_water", Gauge::MergeMode::kMax).SetMax(3.0);

  left.Merge(right);
  EXPECT_DOUBLE_EQ(left.gauge_value("players"), 15.0);
  EXPECT_DOUBLE_EQ(left.gauge_value("high_water"), 7.0);
}

TEST(MetricsRegistry, MergeCopiesOneSidedInstruments) {
  MetricsRegistry left;
  left.counter("only_left").Add(1);
  MetricsRegistry right;
  right.counter("only_right").Add(2);
  right.histogram("h", 0.0, 10.0, 5).Add(3.0);

  left.Merge(right);
  EXPECT_EQ(left.counter_value("only_left"), 1u);
  EXPECT_EQ(left.counter_value("only_right"), 2u);
  ASSERT_NE(left.find_histogram("h"), nullptr);
  EXPECT_EQ(left.find_histogram("h")->total(), 1u);
}

TEST(MetricsRegistry, MergeRejectsGaugeModeConflict) {
  MetricsRegistry left;
  left.gauge("g", Gauge::MergeMode::kSum);
  MetricsRegistry right;
  right.gauge("g", Gauge::MergeMode::kMax);
  EXPECT_THROW(left.Merge(right), ContractViolation);
}

TEST(MetricsRegistry, MergeRejectsHistogramGeometryConflict) {
  MetricsRegistry left;
  left.histogram("h", 0.0, 10.0, 5);
  MetricsRegistry right;
  right.histogram("h", 0.0, 20.0, 5);
  EXPECT_THROW(left.Merge(right), ContractViolation);
}

TEST(MetricsRegistry, MergeIsOrderIndependentForSnapshots) {
  // Two shards' registries merged in either order must snapshot
  // byte-identically - the property the fleet determinism tests lean on.
  auto shard = [](std::uint64_t packets, double peak) {
    MetricsRegistry r;
    r.counter("packets").Add(packets);
    r.gauge("peak", Gauge::MergeMode::kMax).SetMax(peak);
    r.histogram("occ", 0.0, 8.0, 8).Add(peak / 2.0);
    return r;
  };
  MetricsRegistry ab = shard(100, 5.0);
  ab.Merge(shard(50, 7.0));
  MetricsRegistry ba = shard(50, 7.0);
  ba.Merge(shard(100, 5.0));
  EXPECT_EQ(ab.ToJson(), ba.ToJson());
}

TEST(MetricsRegistry, JsonRoundTripParses) {
  MetricsRegistry registry;
  registry.counter("server.packets").Add(12345);
  registry.gauge("server.peak", Gauge::MergeMode::kMax).SetMax(22.0);
  registry.gauge("fleet.players", Gauge::MergeMode::kSum).Set(88.5);
  auto& h = registry.histogram("occupancy", 0.0, 4.0, 4);
  h.Add(-1.0);  // underflow
  h.Add(1.5);
  h.Add(9.0);  // overflow

  const auto doc = JsonReader::Parse(registry.ToJson());
  EXPECT_EQ(doc.at("counters").at("server.packets").number, 12345.0);
  EXPECT_EQ(doc.at("gauges").at("server.peak").at("value").number, 22.0);
  EXPECT_EQ(doc.at("gauges").at("server.peak").at("merge").text, "max");
  EXPECT_EQ(doc.at("gauges").at("fleet.players").at("merge").text, "sum");
  const auto& hist = doc.at("histograms").at("occupancy");
  EXPECT_EQ(hist.at("underflow").number, 1.0);
  EXPECT_EQ(hist.at("overflow").number, 1.0);
  EXPECT_EQ(hist.at("total").number, 3.0);
  EXPECT_EQ(hist.at("bins").items.size(), 4u);
}

TEST(MetricsRegistry, JsonEscapesAwkwardNames) {
  MetricsRegistry registry;
  registry.counter("weird \"name\"\nwith\tcontrol").Add(1);
  const auto doc = JsonReader::Parse(registry.ToJson());
  EXPECT_EQ(doc.at("counters").at("weird \"name\"\nwith\tcontrol").number, 1.0);
}

TEST(AppendJsonNumber, HandlesNonFiniteAsNull) {
  std::string out;
  AppendJsonNumber(out, std::numeric_limits<double>::infinity());
  EXPECT_EQ(out, "null");
  out.clear();
  AppendJsonNumber(out, 0.0);
  EXPECT_EQ(out, "0");
}

}  // namespace
}  // namespace gametrace::obs
