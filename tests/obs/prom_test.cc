// Prometheus exposition tests: a small in-test parser of the text format
// (0.0.4) round-trips a registry and vouches for name sanitization, HELP /
// TYPE metadata, and the cumulative-bucket histogram mapping.
#include "obs/prom.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "stats/histogram.h"

namespace gametrace::obs {
namespace {

struct PromSample {
  std::string name;                          // metric name, label-free
  std::map<std::string, std::string> labels;  // e.g. {"le": "25"}
  double value = 0.0;
};

struct PromDocument {
  std::map<std::string, std::string> types;  // name -> "counter" | ...
  std::map<std::string, std::string> help;
  std::vector<PromSample> samples;

  [[nodiscard]] const PromSample& Only(const std::string& name) const {
    const PromSample* found = nullptr;
    for (const auto& sample : samples) {
      if (sample.name != name) continue;
      EXPECT_EQ(found, nullptr) << "duplicate sample for " << name;
      found = &sample;
    }
    if (found == nullptr) throw std::runtime_error("no sample named " + name);
    return *found;
  }

  [[nodiscard]] std::vector<PromSample> All(const std::string& name) const {
    std::vector<PromSample> out;
    for (const auto& sample : samples) {
      if (sample.name == name) out.push_back(sample);
    }
    return out;
  }
};

double ParsePromValue(const std::string& token) {
  if (token == "+Inf") return HUGE_VAL;
  if (token == "-Inf") return -HUGE_VAL;
  if (token == "NaN") return NAN;
  std::size_t used = 0;
  const double value = std::stod(token, &used);
  EXPECT_EQ(used, token.size()) << "trailing garbage in value " << token;
  return value;
}

// Strict enough for the subset the exporter emits: "name value",
// "name{key=\"value\"} value", and "# HELP/TYPE name ..." comments. Void
// so the ASSERT_* macros can bail out of a malformed document.
void ParsePromTextInto(const std::string& text, PromDocument& doc) {
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    ASSERT_FALSE(line.empty()) << "blank line in exposition";
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, kind, name;
      meta >> hash >> kind >> name;
      std::string rest;
      std::getline(meta, rest);
      if (kind == "TYPE") {
        doc.types[name] = rest.substr(1);
      } else {
        ASSERT_EQ(kind, "HELP") << "unknown comment: " << line;
        doc.help[name] = rest.substr(1);
      }
      continue;
    }
    PromSample sample;
    std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << "malformed line: " << line;
    sample.name = line.substr(0, name_end);
    std::size_t pos = name_end;
    if (line[pos] == '{') {
      const std::size_t close = line.find('}', pos);
      ASSERT_NE(close, std::string::npos) << "unclosed labels: " << line;
      std::string labels = line.substr(pos + 1, close - pos - 1);
      while (!labels.empty()) {
        const std::size_t eq = labels.find('=');
        ASSERT_NE(eq, std::string::npos) << "bad label pair: " << labels;
        const std::string key = labels.substr(0, eq);
        ASSERT_EQ(labels[eq + 1], '"');
        const std::size_t quote = labels.find('"', eq + 2);
        ASSERT_NE(quote, std::string::npos);
        sample.labels[key] = labels.substr(eq + 2, quote - eq - 2);
        labels = quote + 1 < labels.size() && labels[quote + 1] == ','
                     ? labels.substr(quote + 2)
                     : labels.substr(quote + 1);
      }
      pos = close + 1;
    }
    ASSERT_EQ(line[pos], ' ') << "missing value separator: " << line;
    sample.value = ParsePromValue(line.substr(pos + 1));
    doc.samples.push_back(std::move(sample));
  }
}

TEST(Prom, MetricNamesAreSanitizedAndPrefixed) {
  EXPECT_EQ(PrometheusMetricName("server.packets_emitted"),
            "gametrace_server_packets_emitted");
  EXPECT_EQ(PrometheusMetricName("router.queue-depth"), "gametrace_router_queue_depth");
  EXPECT_EQ(PrometheusMetricName("weird metric!"), "gametrace_weird_metric_");
  EXPECT_EQ(PrometheusMetricName("Already_OK_42"), "gametrace_Already_OK_42");
}

TEST(Prom, CountersAndGaugesRoundTrip) {
  MetricsRegistry registry;
  registry.counter("server.packets_emitted").Add(12345);
  registry.gauge("server.peak_players", Gauge::MergeMode::kMax).Set(21.5);

  PromDocument doc;
  ParsePromTextInto(ToPrometheusText(registry), doc);

  EXPECT_EQ(doc.types.at("gametrace_server_packets_emitted"), "counter");
  EXPECT_EQ(doc.Only("gametrace_server_packets_emitted").value, 12345.0);
  EXPECT_EQ(doc.types.at("gametrace_server_peak_players"), "gauge");
  EXPECT_EQ(doc.Only("gametrace_server_peak_players").value, 21.5);
  // HELP preserves the source instrument name for traceability.
  EXPECT_EQ(doc.help.at("gametrace_server_packets_emitted"),
            "gametrace instrument server.packets_emitted");
}

TEST(Prom, HistogramMapsToCumulativeBuckets) {
  MetricsRegistry registry;
  stats::Histogram& hist = registry.histogram("net.size", 0.0, 100.0, 4);
  // Bins of width 25: [0,25) [25,50) [50,75) [75,100), plus out-of-range.
  hist.Add(-5.0);   // underflow
  hist.Add(10.0);   // bin 0
  hist.Add(30.0);   // bin 1
  hist.Add(30.0);   // bin 1
  hist.Add(80.0);   // bin 3
  hist.Add(150.0);  // overflow

  PromDocument doc;
  ParsePromTextInto(ToPrometheusText(registry), doc);
  EXPECT_EQ(doc.types.at("gametrace_net_size"), "histogram");

  const auto buckets = doc.All("gametrace_net_size_bucket");
  ASSERT_EQ(buckets.size(), 5u);
  // Cumulative counts; underflow mass sits below every finite edge.
  EXPECT_EQ(buckets[0].labels.at("le"), "25");
  EXPECT_EQ(buckets[0].value, 2.0);  // underflow + bin 0
  EXPECT_EQ(buckets[1].labels.at("le"), "50");
  EXPECT_EQ(buckets[1].value, 4.0);
  EXPECT_EQ(buckets[2].labels.at("le"), "75");
  EXPECT_EQ(buckets[2].value, 4.0);
  EXPECT_EQ(buckets[3].labels.at("le"), "100");
  EXPECT_EQ(buckets[3].value, 5.0);
  // Overflow only appears under +Inf, which equals _count.
  EXPECT_EQ(buckets[4].labels.at("le"), "+Inf");
  EXPECT_EQ(buckets[4].value, 6.0);
  EXPECT_EQ(doc.Only("gametrace_net_size_count").value, 6.0);

  // The approximate _sum prices samples at bin centers (underflow at lo,
  // overflow at hi): 0 + 12.5 + 37.5 + 37.5 + 87.5 + 100 = 275.
  EXPECT_EQ(doc.Only("gametrace_net_size_sum").value, 275.0);
}

TEST(Prom, EmptyRegistryYieldsEmptyExposition) {
  EXPECT_EQ(ToPrometheusText(MetricsRegistry{}), "");
}

// Per-worker scheduler instruments collapse into one labeled family:
// fleet.worker.<w>.<rest> renders as gametrace_fleet_<rest>{worker="<w>"}
// with a single HELP/TYPE header per family and the samples sorted by
// worker number (numeric, so worker 10 follows worker 2).
TEST(Prom, WorkerMetricsBecomeLabeledFamilies) {
  MetricsRegistry registry;
  registry.counter("fleet.worker.0.steals").Add(3);
  registry.counter("fleet.worker.2.steals").Add(5);
  registry.counter("fleet.worker.10.steals").Add(7);
  registry.gauge("fleet.worker.1.span_ns").Set(123.0);
  registry.counter("fleet.scheduler.merged_units").Add(9);  // not per-worker

  const std::string text = ToPrometheusText(registry);
  PromDocument doc;
  ParsePromTextInto(text, doc);

  const auto steals = doc.All("gametrace_fleet_steals");
  ASSERT_EQ(steals.size(), 3u);
  EXPECT_EQ(steals[0].labels.at("worker"), "0");
  EXPECT_EQ(steals[0].value, 3.0);
  EXPECT_EQ(steals[1].labels.at("worker"), "2");
  EXPECT_EQ(steals[2].labels.at("worker"), "10");
  EXPECT_EQ(steals[2].value, 7.0);
  EXPECT_EQ(doc.types.at("gametrace_fleet_steals"), "counter");
  // Exactly one TYPE header for the whole family.
  const std::string header = "# TYPE gametrace_fleet_steals counter";
  EXPECT_EQ(text.find(header), text.rfind(header));

  // Per-worker gauges use the same seam.
  const auto span = doc.All("gametrace_fleet_span_ns");
  ASSERT_EQ(span.size(), 1u);
  EXPECT_EQ(span[0].labels.at("worker"), "1");
  EXPECT_EQ(span[0].value, 123.0);

  // Non-worker scheduler metrics keep their plain names and no label.
  EXPECT_TRUE(doc.Only("gametrace_fleet_scheduler_merged_units").labels.empty());
}

TEST(Prom, OutputIsDeterministicAndNameSorted) {
  auto build = [] {
    MetricsRegistry registry;
    registry.counter("b.second").Add(2);
    registry.counter("a.first").Add(1);
    registry.gauge("z.gauge").Set(3.0);
    return registry;
  };
  const std::string text = ToPrometheusText(build());
  EXPECT_EQ(text, ToPrometheusText(build()));
  // Registry iteration is name-sorted, so a.first serializes before
  // b.second regardless of registration order.
  EXPECT_LT(text.find("gametrace_a_first"), text.find("gametrace_b_second"));

  std::ostringstream streamed;
  WritePrometheusText(build(), streamed);
  EXPECT_EQ(streamed.str(), text);
}

}  // namespace
}  // namespace gametrace::obs
