#include "obs/obs.h"

#include <gtest/gtest.h>

#include <thread>

#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace gametrace::obs {
namespace {

TEST(ObsContext, DefaultContextIsAllNull) {
  const ObsContext& ctx = Current();
  EXPECT_EQ(ctx.metrics, nullptr);
  EXPECT_EQ(ctx.trace, nullptr);
  EXPECT_EQ(ctx.shard_id, 0);
  EXPECT_TRUE(ctx.heartbeat);
}

TEST(ObsContext, BindingInstallsAndRestores) {
  MetricsRegistry metrics;
  TraceLog trace(/*pid=*/5);
  {
    const ScopedObsBinding bind(
        {.metrics = &metrics, .trace = &trace, .shard_id = 5, .heartbeat = false});
    EXPECT_EQ(Current().metrics, &metrics);
    EXPECT_EQ(Current().trace, &trace);
    EXPECT_EQ(Current().shard_id, 5);
    EXPECT_FALSE(Current().heartbeat);
  }
  EXPECT_EQ(Current().metrics, nullptr);
  EXPECT_EQ(Current().trace, nullptr);
}

TEST(ObsContext, BindingsNest) {
  MetricsRegistry outer_metrics;
  MetricsRegistry inner_metrics;
  const ScopedObsBinding outer({.metrics = &outer_metrics, .shard_id = 1});
  {
    const ScopedObsBinding inner({.metrics = &inner_metrics, .shard_id = 2});
    EXPECT_EQ(Current().metrics, &inner_metrics);
    EXPECT_EQ(Current().shard_id, 2);
  }
  EXPECT_EQ(Current().metrics, &outer_metrics);
  EXPECT_EQ(Current().shard_id, 1);
}

TEST(ObsContext, BindingIsThreadLocal) {
  MetricsRegistry metrics;
  const ScopedObsBinding bind({.metrics = &metrics, .shard_id = 9});
  MetricsRegistry* seen = &metrics;
  std::thread worker([&seen] { seen = Current().metrics; });
  worker.join();
  // A fresh thread starts with the all-null default, not this binding.
  EXPECT_EQ(seen, nullptr);
}

}  // namespace
}  // namespace gametrace::obs
