// BuildSchedReport tests: the critical-path decomposition is a pure
// function of the scheduler's samples - residual idle makes the five
// components sum to each worker's span exactly, stragglers sort by
// duration, the steal matrix mirrors the per-worker hit vectors, and the
// scheduler SLO rules fire on the ratios the report derives.
#include "obs/sched_report.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"

#include "json_reader.h"

namespace gametrace::obs {
namespace {

using gametrace::testing::JsonReader;
using gametrace::testing::JsonValue;

SchedWorkerSample Sample(std::uint64_t span, std::uint64_t work, std::uint64_t steal,
                         std::uint64_t stall, std::uint64_t merge) {
  SchedWorkerSample sample;
  sample.span_ns = span;
  sample.work_ns = work;
  sample.steal_ns = steal;
  sample.stall_ns = stall;
  sample.merge_ns = merge;
  return sample;
}

TEST(SchedReport, ComponentsSumToSpanViaResidualIdle) {
  // 1000 span, 700 accounted: idle must absorb the remaining 300.
  std::vector<SchedWorkerSample> workers = {Sample(1000, 400, 100, 120, 80)};
  const SchedReport report = BuildSchedReport(workers, {});

  ASSERT_EQ(report.workers, 1);
  const SchedReport::Worker& w = report.per_worker[0];
  EXPECT_EQ(w.idle_ns, 300u);
  EXPECT_EQ(w.work_ns + w.steal_ns + w.stall_ns + w.merge_ns + w.idle_ns, w.span_ns);
  EXPECT_DOUBLE_EQ(w.busy_ratio, (400.0 + 80.0) / 1000.0);
  EXPECT_EQ(report.makespan_ns, 1000u);
}

TEST(SchedReport, ResidualIdleClampsAtZero) {
  // Components over-account the span (timer quantization can do this);
  // idle clamps at zero rather than wrapping the unsigned subtraction.
  std::vector<SchedWorkerSample> workers = {Sample(100, 90, 20, 0, 0)};
  const SchedReport report = BuildSchedReport(workers, {});
  EXPECT_EQ(report.per_worker[0].idle_ns, 0u);
}

TEST(SchedReport, MakespanIsTheSlowestWorker) {
  std::vector<SchedWorkerSample> workers = {Sample(500, 500, 0, 0, 0),
                                            Sample(900, 400, 0, 0, 0),
                                            Sample(700, 700, 0, 0, 0)};
  const SchedReport report = BuildSchedReport(workers, {});
  EXPECT_EQ(report.makespan_ns, 900u);
}

TEST(SchedReport, ImbalanceAndStallRatios) {
  // busy ratios 0.9 and 0.3: mean 0.6, max 0.9 -> imbalance 1.5.
  // stalls 100 + 300 over spans 1000 + 1000 -> stall fraction 0.2.
  std::vector<SchedWorkerSample> workers = {Sample(1000, 900, 0, 100, 0),
                                            Sample(1000, 300, 0, 300, 0)};
  const SchedReport report = BuildSchedReport(workers, {});
  EXPECT_DOUBLE_EQ(report.imbalance_ratio, 1.5);
  EXPECT_DOUBLE_EQ(report.admission_stall_fraction, 0.2);
}

TEST(SchedReport, StragglersSortByDurationThenUnit) {
  std::vector<SchedWorkerSample> workers = {Sample(100, 100, 0, 0, 0)};
  std::vector<SchedUnitSample> units = {
      {.unit = 2, .worker = 0, .first_shard = 4, .shard_count = 2, .dur_ns = 50},
      {.unit = 0, .worker = 0, .first_shard = 0, .shard_count = 2, .dur_ns = 90},
      {.unit = 3, .worker = 0, .first_shard = 6, .shard_count = 1, .dur_ns = 50},
      {.unit = 1, .worker = 0, .first_shard = 2, .shard_count = 2, .dur_ns = 70},
  };
  const SchedReport report = BuildSchedReport(workers, units, /*top_k=*/3);

  ASSERT_EQ(report.stragglers.size(), 3u);
  EXPECT_EQ(report.stragglers[0].unit, 0);
  EXPECT_EQ(report.stragglers[1].unit, 1);
  // 50 ns tie between units 2 and 3 breaks toward the lower unit index.
  EXPECT_EQ(report.stragglers[2].unit, 2);
  EXPECT_EQ(report.stragglers[0].dur_ns, 90u);
}

TEST(SchedReport, StealMatrixMirrorsPerWorkerHits) {
  SchedWorkerSample w0 = Sample(100, 100, 0, 0, 0);
  SchedWorkerSample w1 = Sample(100, 100, 0, 0, 0);
  w0.steal_hits = {0, 3};  // w0 stole 3 units from w1
  w1.steal_hits = {1, 0};  // w1 stole 1 unit from w0
  w0.steals = 3;
  w1.steals = 1;
  const SchedReport report = BuildSchedReport({w0, w1}, {});

  ASSERT_EQ(report.steal_matrix.size(), 2u);
  EXPECT_EQ(report.steal_matrix[0][1], 3u);
  EXPECT_EQ(report.steal_matrix[1][0], 1u);
  EXPECT_EQ(report.steal_matrix[0][0], 0u);
}

TEST(SchedReport, EmptyInputMakesAnEmptyReport) {
  const SchedReport report = BuildSchedReport({}, {});
  EXPECT_TRUE(report.empty());
  EXPECT_EQ(report.makespan_ns, 0u);
  EXPECT_TRUE(report.alerts.empty());
}

TEST(SchedReport, SchedulerRulesFireOnBadRatios) {
  // Imbalance 0.9/0.5 = 1.8 > 1.5 and stall 600/2000 = 0.3 > 0.25: both
  // scheduler SLO rules must fire, into the report (diagnostic channel),
  // never into the deterministic alert stream.
  std::vector<SchedWorkerSample> workers = {Sample(1000, 900, 0, 0, 0),
                                            Sample(1000, 100, 0, 600, 0)};
  const SchedReport report = BuildSchedReport(workers, {});
  ASSERT_EQ(report.alerts.size(), 2u);
  EXPECT_EQ(report.alerts[0].rule, "fleet.worker.imbalance");
  EXPECT_EQ(report.alerts[1].rule, "fleet.admission.stall");
  EXPECT_GT(report.alerts[0].value, 1.5);
  EXPECT_GT(report.alerts[1].value, 0.25);
}

TEST(SchedReport, BalancedFleetRaisesNoAlerts) {
  std::vector<SchedWorkerSample> workers = {Sample(1000, 800, 50, 10, 100),
                                            Sample(1000, 790, 60, 20, 90)};
  const SchedReport report = BuildSchedReport(workers, {});
  EXPECT_TRUE(report.alerts.empty());
}

TEST(SchedReport, DumpIntoExportsCritpathInstruments) {
  std::vector<SchedWorkerSample> workers = {Sample(1000, 900, 0, 0, 0),
                                            Sample(800, 100, 0, 600, 0)};
  const SchedReport report = BuildSchedReport(workers, {});
  MetricsRegistry registry;
  report.DumpInto(registry);

  EXPECT_EQ(registry.gauge_value("fleet.critpath.makespan_ns"), 1000.0);
  EXPECT_DOUBLE_EQ(registry.gauge_value("fleet.critpath.imbalance_ratio"),
                   report.imbalance_ratio);
  EXPECT_DOUBLE_EQ(registry.gauge_value("fleet.critpath.admission_stall_fraction"),
                   report.admission_stall_fraction);
  EXPECT_DOUBLE_EQ(registry.gauge_value("fleet.critpath.worker.0.busy_ratio"),
                   report.per_worker[0].busy_ratio);
  EXPECT_EQ(registry.counter_value("fleet.critpath.alerts"),
            static_cast<std::uint64_t>(report.alerts.size()));
}

TEST(SchedReport, ToJsonRoundTripsThroughAStrictParser) {
  SchedWorkerSample w0 = Sample(1000, 600, 100, 100, 100);
  SchedWorkerSample w1 = Sample(900, 850, 10, 10, 10);
  w0.steal_hits = {0, 2};
  w1.steal_hits = {0, 0};
  w0.units = 3;
  w0.shards = 6;
  w0.steals = 2;
  std::vector<SchedUnitSample> units = {
      {.unit = 0, .worker = 0, .first_shard = 0, .shard_count = 2, .dur_ns = 400},
      {.unit = 1, .worker = 1, .first_shard = 2, .shard_count = 2, .dur_ns = 500},
  };
  const SchedReport report = BuildSchedReport({w0, w1}, units);

  const JsonValue doc = JsonReader::Parse(report.ToJson());
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("workers").number, 2.0);
  EXPECT_EQ(doc.at("makespan_ns").number, 1000.0);
  ASSERT_EQ(doc.at("per_worker").items.size(), 2u);
  const JsonValue& worker0 = doc.at("per_worker").items[0];
  EXPECT_EQ(worker0.at("work_ns").number, 600.0);
  EXPECT_EQ(worker0.at("idle_ns").number, 100.0);
  EXPECT_EQ(worker0.at("units").number, 3.0);
  ASSERT_EQ(doc.at("stragglers").items.size(), 2u);
  EXPECT_EQ(doc.at("stragglers").items[0].at("unit").number, 1.0);
  ASSERT_EQ(doc.at("steal_matrix").items.size(), 2u);
  EXPECT_EQ(doc.at("steal_matrix").items[0].items[1].number, 2.0);
  EXPECT_TRUE(doc.has("imbalance_ratio"));
  EXPECT_TRUE(doc.has("admission_stall_fraction"));
  EXPECT_TRUE(doc.has("alerts"));
}

}  // namespace
}  // namespace gametrace::obs
