// Concurrency regression test for the profiling hooks (src/obs/prof.cc).
//
// The interesting races this pins down, with TSan as the oracle (the
// thread-sanitizer CI preset runs this suite under -fsanitize=thread):
//  - first-use registration: many threads hit a cold ProfSite at once and
//    all race RegisterProfSite; the relaxed `registered` fast path plus
//    the mutex-serialized re-check must yield exactly one list insertion
//    and no data race on the `next` link.
//  - tally vs. snapshot: relaxed fetch_adds on calls/nanos while another
//    thread walks the site list in ProfilingSnapshot / ResetProfiling -
//    tearing between sites is fine, a TSan report is not.
//  - toggling: EnableProfiling flips mid-flight; scopes that started
//    disabled stay no-ops, scopes that started enabled finish their
//    tallies.
// Numeric assertions are deliberately loose (counters only ever grow,
// snapshots contain the hammered sites); the test's job is to generate
// the schedules, the sanitizer's job is to judge them.
#include "obs/prof.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

namespace gametrace::obs {
namespace {

std::uint64_t SnapshotCalls(const std::string& name) {
  for (const ProfSample& sample : ProfilingSnapshot()) {
    if (sample.name == name) return sample.calls;
  }
  return 0;
}

TEST(ProfThreads, ColdSiteRegistrationRace) {
  EnableProfiling(true);
  // A fresh site per run of this test binary: every thread's first scope
  // races the initial registration.
  static constinit ProfSite site{"prof_threads.cold_site"};
  constexpr int kThreads = 8;
  constexpr int kScopesPerThread = 200;

  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (int i = 0; i < kScopesPerThread; ++i) {
        const ProfScope scope(site);
        static_cast<void>(scope);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();
  EnableProfiling(false);

  EXPECT_GE(SnapshotCalls("prof_threads.cold_site"),
            static_cast<std::uint64_t>(kThreads) * kScopesPerThread);
  // One registration: the site shows up exactly once in the snapshot.
  int occurrences = 0;
  for (const ProfSample& sample : ProfilingSnapshot()) {
    occurrences += sample.name == "prof_threads.cold_site" ? 1 : 0;
  }
  EXPECT_EQ(occurrences, 1);
}

TEST(ProfThreads, TalliesRaceSnapshotsResetsAndToggles) {
  EnableProfiling(true);
  constexpr int kWriters = 4;
  constexpr int kIterations = 400;

  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&] {
      for (int i = 0; i < kIterations; ++i) {
        GT_PROF_SCOPE("prof_threads.hammered");
        // A second site in the same scope exercises multi-site traversal
        // while the list is being read.
        GT_PROF_SCOPE("prof_threads.hammered_sibling");
      }
    });
  }
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const std::vector<ProfSample> snapshot = ProfilingSnapshot();
      for (const ProfSample& sample : snapshot) {
        EXPECT_FALSE(sample.name.empty());
      }
      std::this_thread::yield();
    }
  });
  std::thread toggler([&] {
    for (int i = 0; i < 50; ++i) {
      EnableProfiling(i % 2 == 0);
      std::this_thread::yield();
    }
    EnableProfiling(true);
  });
  std::thread resetter([&] {
    for (int i = 0; i < 20; ++i) {
      ResetProfiling();
      std::this_thread::yield();
    }
  });

  for (std::thread& t : writers) t.join();
  toggler.join();
  resetter.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EnableProfiling(false);

  // Post-quiescence sanity: both sites exist and the snapshot is stable.
  const std::vector<ProfSample> snapshot = ProfilingSnapshot();
  bool saw_hammered = false;
  bool saw_sibling = false;
  for (const ProfSample& sample : snapshot) {
    saw_hammered |= sample.name == "prof_threads.hammered";
    saw_sibling |= sample.name == "prof_threads.hammered_sibling";
  }
  EXPECT_TRUE(saw_hammered);
  EXPECT_TRUE(saw_sibling);
}

TEST(ProfThreads, DisabledScopesStayNoOpsUnderContention) {
  EnableProfiling(false);
  ResetProfiling();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 500; ++i) {
        GT_PROF_SCOPE("prof_threads.disabled_site");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  // The site never fired enabled, so it never registered.
  EXPECT_EQ(SnapshotCalls("prof_threads.disabled_site"), 0u);
}

}  // namespace
}  // namespace gametrace::obs
