// ExportSession tests: flag/env parsing, the create-parents-and-fail-loudly
// contract of OpenOutputFile, and the end-to-end write path (all five
// output files, idempotent Finish, inactive sessions binding nothing).
#include "obs/exporter.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/sched_report.h"
#include "obs/trace_log.h"

#include "json_reader.h"

namespace gametrace::obs {
namespace {

using gametrace::testing::JsonReader;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// A fresh directory per test so parent-creation assertions start clean.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "exporter_test/" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ExportOptions, TryParseFlagConsumesTheSharedFlags) {
  ExportOptions options;
  EXPECT_TRUE(options.TryParseFlag("--metrics-out=m.json"));
  EXPECT_TRUE(options.TryParseFlag("--trace-out=t.json"));
  EXPECT_TRUE(options.TryParseFlag("--flight-out=f.jsonl"));
  EXPECT_TRUE(options.TryParseFlag("--alerts-out=a.jsonl"));
  EXPECT_TRUE(options.TryParseFlag("--prom-out=p.txt"));
  EXPECT_TRUE(options.TryParseFlag("--sched-metrics-out=sm.json"));
  EXPECT_TRUE(options.TryParseFlag("--sched-report-out=sr.json"));
  EXPECT_TRUE(options.TryParseFlag("--sched-trace-out=st.json"));
  EXPECT_TRUE(options.TryParseFlag("--flight-dump=d.json"));
  EXPECT_TRUE(options.TryParseFlag("--flight-sample=30"));

  EXPECT_EQ(options.metrics_path, "m.json");
  EXPECT_EQ(options.trace_path, "t.json");
  EXPECT_EQ(options.flight_path, "f.jsonl");
  EXPECT_EQ(options.alerts_path, "a.jsonl");
  EXPECT_EQ(options.prom_path, "p.txt");
  EXPECT_EQ(options.sched_metrics_path, "sm.json");
  EXPECT_EQ(options.sched_report_path, "sr.json");
  EXPECT_EQ(options.sched_trace_path, "st.json");
  EXPECT_EQ(options.dump_path, "d.json");
  EXPECT_EQ(options.sample_period_seconds, 30.0);
}

TEST(ExportOptions, SchedulerFlagsActivateAndEnvFills) {
  ExportOptions options;
  EXPECT_FALSE(options.TryParseFlag("--sched-metrics-out="));  // empty value rejected
  EXPECT_FALSE(options.any_output());
  ASSERT_TRUE(options.TryParseFlag("--sched-report-out=r.json"));
  EXPECT_TRUE(options.any_output());  // a sched output alone activates the session

  ::setenv("GAMETRACE_SCHED_METRICS_OUT", "env_sched_metrics.json", 1);
  ::setenv("GAMETRACE_SCHED_TRACE_OUT", "env_sched_trace.json", 1);
  ::setenv("GAMETRACE_SCHED_REPORT_OUT", "env_sched_report.json", 1);
  options.ApplyEnvDefaults();
  EXPECT_EQ(options.sched_metrics_path, "env_sched_metrics.json");
  EXPECT_EQ(options.sched_trace_path, "env_sched_trace.json");
  EXPECT_EQ(options.sched_report_path, "r.json");  // the flag wins over the env
  ::unsetenv("GAMETRACE_SCHED_METRICS_OUT");
  ::unsetenv("GAMETRACE_SCHED_TRACE_OUT");
  ::unsetenv("GAMETRACE_SCHED_REPORT_OUT");
}

TEST(ExportSession, RecordSchedulerWritesTheDiagnosticChannel) {
  const std::string dir = FreshDir("sched");
  ExportOptions options;
  options.sched_metrics_path = dir + "/sched_metrics.json";
  options.sched_report_path = dir + "/sched_report.json";
  options.sched_trace_path = dir + "/sched_trace.json";
  options.prom_path = dir + "/metrics.prom";

  ExportSession session(std::move(options));
  ASSERT_TRUE(session.active());
  EXPECT_FALSE(session.has_scheduler());

  MetricsRegistry sched;
  sched.counter("fleet.worker.0.steals").Add(4);
  std::vector<SchedWorkerSample> samples(1);
  samples[0].span_ns = 1000;
  samples[0].work_ns = 900;
  const SchedReport report = BuildSchedReport(samples, {});
  TraceLog trace(/*pid=*/0);
  trace.Complete("worker 0", "worker", 0.0, 1e-6);
  session.RecordScheduler(sched, report, trace);
  EXPECT_TRUE(session.has_scheduler());

  EXPECT_EQ(session.Finish(), 0);
  const auto metrics = JsonReader::Parse(ReadFile(dir + "/sched_metrics.json"));
  EXPECT_EQ(metrics.at("counters").at("fleet.worker.0.steals").number, 4.0);
  const auto parsed_report = JsonReader::Parse(ReadFile(dir + "/sched_report.json"));
  EXPECT_EQ(parsed_report.at("workers").number, 1.0);
  const auto timeline = JsonReader::Parse(ReadFile(dir + "/sched_trace.json"));
  EXPECT_EQ(timeline.at("traceEvents").items.size(), 1u);

  // The scheduler registry rides the Prometheus text as labeled families.
  const std::string prom = ReadFile(dir + "/metrics.prom");
  EXPECT_NE(prom.find("gametrace_fleet_steals{worker=\"0\"} 4"), std::string::npos) << prom;
}

TEST(ExportSession, SchedFilesAreWrittenEvenWithoutARecordCall) {
  // A requested path is a promise: the file exists (empty surfaces) even
  // when the workload never ran a fleet, so tooling can rely on it.
  const std::string dir = FreshDir("sched_empty");
  ExportOptions options;
  options.sched_report_path = dir + "/sched_report.json";
  ExportSession session(std::move(options));
  ASSERT_TRUE(session.active());
  EXPECT_EQ(session.Finish(), 0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/sched_report.json"));
}

TEST(ExportOptions, TryParseFlagRejectsWhatItCannotUse) {
  ExportOptions options;
  // Unrelated arguments pass through to the front-end's own parsing.
  EXPECT_FALSE(options.TryParseFlag("generate"));
  EXPECT_FALSE(options.TryParseFlag("--seed=42"));
  // Empty or unusable values fail the parse instead of arming an output
  // with nowhere to go.
  EXPECT_FALSE(options.TryParseFlag("--metrics-out="));
  EXPECT_FALSE(options.TryParseFlag("--flight-sample="));
  EXPECT_FALSE(options.TryParseFlag("--flight-sample=abc"));
  EXPECT_FALSE(options.TryParseFlag("--flight-sample=-5"));
  EXPECT_FALSE(options.TryParseFlag("--flight-sample=0"));

  EXPECT_TRUE(options.metrics_path.empty());
  EXPECT_EQ(options.sample_period_seconds, 60.0);
  EXPECT_FALSE(options.any_output());
}

TEST(ExportOptions, AnyOutputIgnoresTheDumpPath) {
  ExportOptions options;
  EXPECT_FALSE(options.any_output());
  options.dump_path = "elsewhere.json";
  EXPECT_FALSE(options.any_output());  // the dump alone activates nothing
  options.prom_path = "p.txt";
  EXPECT_TRUE(options.any_output());
}

TEST(ExportOptions, EnvDefaultsFillOnlyUnsetFields) {
  ::setenv("GAMETRACE_METRICS_OUT", "env_metrics.json", 1);
  ::setenv("GAMETRACE_FLIGHT_SAMPLE", "15", 1);
  ::setenv("GAMETRACE_FLIGHT_DUMP", "env_dump.json", 1);

  ExportOptions options;
  ASSERT_TRUE(options.TryParseFlag("--metrics-out=flag_metrics.json"));
  options.ApplyEnvDefaults();
  // The flag wins; untouched fields pick up the environment.
  EXPECT_EQ(options.metrics_path, "flag_metrics.json");
  EXPECT_EQ(options.sample_period_seconds, 15.0);
  EXPECT_EQ(options.dump_path, "env_dump.json");
  EXPECT_TRUE(options.trace_path.empty());  // no env, no flag

  ::unsetenv("GAMETRACE_METRICS_OUT");
  ::unsetenv("GAMETRACE_FLIGHT_SAMPLE");
  ::unsetenv("GAMETRACE_FLIGHT_DUMP");
}

TEST(OpenOutputFile, CreatesMissingParentDirectories) {
  const std::string dir = FreshDir("parents");
  const std::string path = dir + "/a/b/metrics.json";
  std::ofstream out;
  ASSERT_TRUE(OpenOutputFile(path, out));
  out << "ok";
  out.close();
  EXPECT_EQ(ReadFile(path), "ok");
}

TEST(OpenOutputFile, FailsLoudlyWithThePathInTheMessage) {
  const std::string dir = FreshDir("blocked");
  std::filesystem::create_directories(dir);
  // A regular file where a directory is needed makes create_directories
  // fail deterministically.
  const std::string blocker = dir + "/blocker";
  std::ofstream(blocker) << "in the way";
  const std::string path = blocker + "/sub/out.json";

  std::ofstream out;
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(OpenOutputFile(path, out));
  const std::string message = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(message.find("[gametrace] error: cannot write"), std::string::npos) << message;
  EXPECT_NE(message.find(path), std::string::npos)
      << "error must name the path: " << message;
}

TEST(ExportSession, NoRequestedOutputMeansNoBinding) {
  ExportSession session((ExportOptions()));
  EXPECT_FALSE(session.active());
  EXPECT_EQ(Current().metrics, nullptr);
  EXPECT_EQ(Current().recorder, nullptr);
  EXPECT_EQ(session.Finish(), 0);
}

TEST(ExportSession, WritesEveryRequestedFileAndIsIdempotent) {
  const std::string dir = FreshDir("full");
  ExportOptions options;
  options.metrics_path = dir + "/nested/metrics.json";
  options.trace_path = dir + "/trace.json";
  options.flight_path = dir + "/flight.jsonl";
  options.alerts_path = dir + "/alerts.jsonl";
  options.prom_path = dir + "/metrics.prom";
  options.dump_path = dir + "/flight_dump.json";

  ExportSession session(std::move(options));
  ASSERT_TRUE(session.active());
  // The session binds the ambient context to its own instruments...
  ASSERT_EQ(Current().metrics, &session.metrics());
  ASSERT_EQ(Current().recorder, &session.recorder());
  ASSERT_NE(Current().watchdog, nullptr);
  ASSERT_NE(Current().prom_path, nullptr);

  // ...which a workload observes through Current(), here simulated by one
  // counter bump and one flight sample.
  Current().metrics->counter("server.packets_emitted").Add(99);
  session.recorder().Sample(60.0, session.metrics());

  EXPECT_EQ(session.Finish(), 0);
  EXPECT_EQ(Current().metrics, nullptr);  // unbound after Finish

  const auto metrics = JsonReader::Parse(ReadFile(dir + "/nested/metrics.json"));
  EXPECT_EQ(metrics.at("counters").at("server.packets_emitted").number, 99.0);
  (void)JsonReader::Parse(ReadFile(dir + "/trace.json"));  // valid JSON

  const std::string flight = ReadFile(dir + "/flight.jsonl");
  const auto snapshot = JsonReader::Parse(flight.substr(0, flight.find('\n')));
  EXPECT_EQ(snapshot.at("t").number, 60.0);
  EXPECT_EQ(snapshot.at("metrics").at("counters").at("server.packets_emitted").number, 99.0);

  const std::string prom = ReadFile(dir + "/metrics.prom");
  EXPECT_NE(prom.find("gametrace_server_packets_emitted 99"), std::string::npos);

  // A quiet run alerts nothing but still leaves the (empty) alerts file.
  EXPECT_EQ(ReadFile(dir + "/alerts.jsonl"), "");

  // Finish is idempotent; a second call must not rewrite or fail.
  std::filesystem::remove(dir + "/metrics.prom");
  EXPECT_EQ(session.Finish(), 0);
  EXPECT_FALSE(std::filesystem::exists(dir + "/metrics.prom"));
}

TEST(ExportSession, FinishReportsUnwritableOutputs) {
  const std::string dir = FreshDir("unwritable");
  std::filesystem::create_directories(dir);
  const std::string blocker = dir + "/blocker";
  std::ofstream(blocker) << "in the way";

  const std::string metrics_path = blocker + "/sub/metrics.json";
  ExportOptions options;
  options.metrics_path = metrics_path;
  ExportSession session(std::move(options));
  ::testing::internal::CaptureStderr();
  EXPECT_EQ(session.Finish(), 1);
  const std::string message = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(message.find(metrics_path), std::string::npos) << message;
}

TEST(ExportSession, ArgvConstructorSkipsUnrelatedArguments) {
  const std::string dir = FreshDir("argv");
  const std::string metrics_flag = "--metrics-out=" + dir + "/m.json";
  const char* argv[] = {"bench", "positional", metrics_flag.c_str(), "--other=x"};
  ExportSession session(4, const_cast<char**>(argv));
  ASSERT_TRUE(session.active());
  EXPECT_EQ(session.Finish(), 0);
  EXPECT_TRUE(std::filesystem::exists(dir + "/m.json"));
}

}  // namespace
}  // namespace gametrace::obs
