// Minimal recursive-descent JSON reader for round-trip tests.
//
// Parses the exact dialect the obs exporters emit (objects, arrays,
// strings with escapes, numbers, true/false/null) into a tree of
// JsonValue nodes. Strict: trailing garbage, unknown escapes or malformed
// numbers throw std::runtime_error, so a test that parses an export also
// vouches for its syntactic validity.
#pragma once

#include <cctype>
#include <cstddef>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace gametrace::testing {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::map<std::string, JsonValue> members;

  [[nodiscard]] bool is_object() const { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind == Kind::kArray; }
  [[nodiscard]] bool has(const std::string& key) const {
    return kind == Kind::kObject && members.count(key) > 0;
  }
  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    if (!has(key)) throw std::runtime_error("missing key: " + key);
    return members.at(key);
  }
};

class JsonReader {
 public:
  // Parses `text` as a single JSON document.
  static JsonValue Parse(std::string_view text) {
    JsonReader reader(text);
    JsonValue value = reader.ParseValue();
    reader.SkipWhitespace();
    if (reader.pos_ != text.size()) throw std::runtime_error("trailing garbage after JSON");
    return value;
  }

 private:
  explicit JsonReader(std::string_view text) : text_(text) {}

  void SkipWhitespace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }

  char Peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end of JSON");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at offset " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  bool Consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  JsonValue ParseValue() {
    SkipWhitespace();
    JsonValue v;
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"':
        v.kind = JsonValue::Kind::kString;
        v.text = ParseString();
        return v;
      case 't':
        if (!Consume("true")) break;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!Consume("false")) break;
        v.kind = JsonValue::Kind::kBool;
        return v;
      case 'n':
        if (!Consume("null")) break;
        return v;
      default: return ParseNumber();
    }
    throw std::runtime_error("bad JSON literal at offset " + std::to_string(pos_));
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      SkipWhitespace();
      std::string key = ParseString();
      SkipWhitespace();
      Expect(':');
      v.members.emplace(std::move(key), ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect('}');
      return v;
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(ParseValue());
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      Expect(']');
      return v;
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      const char c = Peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char esc = Peek();
      ++pos_;
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_ + static_cast<std::size_t>(i)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else throw std::runtime_error("bad \\u escape");
          }
          pos_ += 4;
          // The exporters only escape control characters, all < 0x80.
          out.push_back(static_cast<char>(code));
          break;
        }
        default: throw std::runtime_error("unknown escape in JSON string");
      }
    }
  }

  JsonValue ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    std::size_t used = 0;
    const std::string token(text_.substr(start, pos_ - start));
    v.number = std::stod(token, &used);
    if (used != token.size()) throw std::runtime_error("bad JSON number: " + token);
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace gametrace::testing
