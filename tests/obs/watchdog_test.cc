// WatchdogEngine tests: each signal kind against hand-built snapshot
// pairs, the zero baseline at the start of history, the CatchUp cursor
// (live + final evaluation never double-counts), the built-in paper
// thresholds, and the three export surfaces.
#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"

#include "json_reader.h"

namespace gametrace::obs {
namespace {

using gametrace::testing::JsonReader;

FlightRecorder::Snapshot Snap(double t, std::uint64_t counter, double gauge) {
  FlightRecorder::Snapshot snapshot;
  snapshot.t_seconds = t;
  snapshot.metrics.counter("c").Add(counter);
  snapshot.metrics.gauge("g").Set(gauge);
  return snapshot;
}

SloRule Rule(SloRule::Signal signal, double threshold,
             SloRule::Direction direction = SloRule::Direction::kAbove) {
  return SloRule{.name = "rule",
                 .metric = signal == SloRule::Signal::kGaugeValue ||
                                   signal == SloRule::Signal::kGaugeDelta
                               ? "g"
                               : "c",
                 .signal = signal,
                 .direction = direction,
                 .threshold = threshold,
                 .scale = 1.0,
                 .divide_by_gauge = {},
                 .description = "test rule"};
}

TEST(Watchdog, GaugeValueComparesTheCurrentLevel) {
  WatchdogEngine above({Rule(SloRule::Signal::kGaugeValue, 10.0)});
  above.Observe(nullptr, Snap(60.0, 0, 11.0));
  above.Observe(nullptr, Snap(120.0, 0, 10.0));  // not strictly above
  ASSERT_EQ(above.alerts().size(), 1u);
  EXPECT_EQ(above.alerts()[0].t_seconds, 60.0);
  EXPECT_EQ(above.alerts()[0].value, 11.0);
  EXPECT_EQ(above.alerts()[0].threshold, 10.0);

  WatchdogEngine below({Rule(SloRule::Signal::kGaugeValue, 10.0, SloRule::Direction::kBelow)});
  below.Observe(nullptr, Snap(60.0, 0, 9.0));
  below.Observe(nullptr, Snap(120.0, 0, 11.0));
  ASSERT_EQ(below.alerts().size(), 1u);
  EXPECT_EQ(below.alerts()[0].value, 9.0);
}

TEST(Watchdog, DeltaAndRateUseAZeroBaselineAtStartOfHistory) {
  WatchdogEngine delta({Rule(SloRule::Signal::kGaugeDelta, 1000.0)});
  delta.Observe(nullptr, Snap(60.0, 0, 2000.0));  // delta from implicit zero
  ASSERT_EQ(delta.alerts().size(), 1u);
  EXPECT_EQ(delta.alerts()[0].value, 2000.0);

  WatchdogEngine rate({Rule(SloRule::Signal::kCounterRatePerSecond, 10.0)});
  rate.Observe(nullptr, Snap(60.0, 1200, 0.0));  // 1200 / 60 s from t = 0
  ASSERT_EQ(rate.alerts().size(), 1u);
  EXPECT_EQ(rate.alerts()[0].value, 20.0);
}

TEST(Watchdog, CounterDeltaBetweenSnapshots) {
  WatchdogEngine engine({Rule(SloRule::Signal::kCounterDelta, 50.0)});
  const auto first = Snap(60.0, 100, 0.0);
  const auto second = Snap(120.0, 200, 0.0);  // delta 100 > 50
  const auto third = Snap(180.0, 230, 0.0);   // delta 30, quiet
  engine.Observe(&first, second);
  engine.Observe(&second, third);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].t_seconds, 120.0);
  EXPECT_EQ(engine.alerts()[0].value, 100.0);
}

TEST(Watchdog, CounterShrinkReadsAsNoProgress) {
  WatchdogEngine engine({Rule(SloRule::Signal::kCounterDelta, 0.5)});
  const auto first = Snap(60.0, 100, 0.0);
  engine.Observe(&first, Snap(120.0, 40, 0.0));  // shrink, not a wraparound
  EXPECT_TRUE(engine.alerts().empty());
}

TEST(Watchdog, RateSkipsZeroElapsedTime) {
  WatchdogEngine engine({Rule(SloRule::Signal::kCounterRatePerSecond, 1.0)});
  const auto first = Snap(60.0, 0, 0.0);
  engine.Observe(&first, Snap(60.0, 1000000, 0.0));  // dt = 0: rate undefined
  EXPECT_TRUE(engine.alerts().empty());
}

TEST(Watchdog, ScaleAndGaugeNormalizationApplyInOrder) {
  SloRule rule = Rule(SloRule::Signal::kCounterRatePerSecond, 56000.0);
  rule.scale = 8.0;  // bytes/s -> bits/s
  rule.divide_by_gauge = "g";
  WatchdogEngine engine({rule});

  const auto first = Snap(0.0, 0, 0.0);
  // 600000 B over 60 s = 10 kB/s = 80 kbit/s; over 1 player that is above
  // the 56 kbit threshold, over 4 players it is 20 kbit and quiet.
  engine.Observe(&first, Snap(60.0, 600000, 1.0));
  engine.Observe(&first, Snap(60.0, 600000, 4.0));
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].value, 80000.0);

  // A zero denominator skips the rule instead of dividing by zero.
  engine.Observe(&first, Snap(60.0, 600000, 0.0));
  EXPECT_EQ(engine.alerts().size(), 1u);
}

TEST(Watchdog, CatchUpCursorNeverDoubleCounts) {
  FlightRecorder recorder;
  WatchdogEngine engine({Rule(SloRule::Signal::kGaugeValue, 10.0)});

  FlightRecorder::Snapshot s1 = Snap(60.0, 0, 20.0);
  recorder.Sample(s1.t_seconds, s1.metrics);
  engine.CatchUp(recorder);
  engine.CatchUp(recorder);  // idempotent: nothing new to evaluate
  EXPECT_EQ(engine.alerts().size(), 1u);

  FlightRecorder::Snapshot s2 = Snap(120.0, 0, 30.0);
  recorder.Sample(s2.t_seconds, s2.metrics);
  engine.CatchUp(recorder);
  ASSERT_EQ(engine.alerts().size(), 2u);
  EXPECT_EQ(engine.alerts()[1].t_seconds, 120.0);

  // A fresh engine replaying the whole stream lands on the same sequence -
  // live evaluation and post-merge evaluation agree.
  WatchdogEngine replay({Rule(SloRule::Signal::kGaugeValue, 10.0)});
  replay.CatchUp(recorder);
  EXPECT_EQ(replay.ToJsonl(), engine.ToJsonl());
}

TEST(Watchdog, CatchUpResumesPastEvictedSnapshots) {
  FlightRecorder recorder(
      FlightRecorder::Options{.sample_period_seconds = 60.0, .max_snapshots = 2});
  WatchdogEngine engine({Rule(SloRule::Signal::kGaugeValue, 0.5)});
  for (int i = 1; i <= 4; ++i) {
    recorder.Sample(60.0 * i, Snap(0.0, 0, 1.0).metrics);
  }
  // Snapshots 0 and 1 were evicted before the engine ever saw them; only
  // the two held ones can be evaluated.
  engine.CatchUp(recorder);
  ASSERT_EQ(engine.alerts().size(), 2u);
  EXPECT_EQ(engine.alerts()[0].t_seconds, 180.0);
  EXPECT_EQ(engine.alerts()[1].t_seconds, 240.0);
}

TEST(Watchdog, BuiltinRulesEncodeThePaperThresholds) {
  const auto rules = WatchdogEngine::BuiltinRules();
  ASSERT_EQ(rules.size(), 6u);

  auto find = [&rules](const std::string& name) -> const SloRule& {
    for (const auto& rule : rules) {
      if (rule.name == name) return rule;
    }
    ADD_FAILURE() << "missing builtin rule " << name;
    return rules.front();
  };
  const SloRule& bandwidth = find("client.bandwidth.saturation");
  EXPECT_EQ(bandwidth.metric, "server.bytes_to_clients");
  EXPECT_EQ(bandwidth.threshold, 56000.0);  // the 56k modem ceiling
  EXPECT_EQ(bandwidth.scale, 8.0);
  EXPECT_EQ(bandwidth.divide_by_gauge, "server.active_players");

  EXPECT_EQ(find("nat.meltdown").metric, "nat.device.packets");
  EXPECT_EQ(find("nat.meltdown").threshold, 850.0);  // Table IV
  EXPECT_EQ(find("server.refusals.spike").threshold, 0.25);
  EXPECT_EQ(find("sim.queue.growth").signal, SloRule::Signal::kGaugeDelta);

  const SloRule& tail = find("client.bandwidth.p99");
  EXPECT_EQ(tail.metric, "client.bandwidth.kbps");
  EXPECT_EQ(tail.signal, SloRule::Signal::kSketchQuantile);
  EXPECT_EQ(tail.threshold, 56.0);  // the modem ceiling, straight from Fig 11
  EXPECT_EQ(tail.quantile, 0.99);

  const SloRule& hurst = find("server.load.selfsimilar");
  EXPECT_EQ(hurst.metric, "server.load.pps");
  EXPECT_EQ(hurst.signal, SloRule::Signal::kRingHurstMid);
  EXPECT_EQ(hurst.threshold, 0.9);
}

// The scheduler rule set is separate from the ambient builtins: its rules
// read the fleet.critpath.* gauges the critical-path report exports, fire
// on a bad run, stay quiet on a balanced one, and never join
// BuiltinRules (their alerts would be worker-count-dependent and poison
// the deterministic --alerts-out stream).
TEST(Watchdog, SchedulerRulesGateTheCritpathGauges) {
  const auto rules = WatchdogEngine::SchedulerRules();
  ASSERT_EQ(rules.size(), 2u);
  EXPECT_EQ(rules[0].name, "fleet.worker.imbalance");
  EXPECT_EQ(rules[0].metric, "fleet.critpath.imbalance_ratio");
  EXPECT_EQ(rules[0].threshold, 1.5);
  EXPECT_EQ(rules[0].signal, SloRule::Signal::kGaugeValue);
  EXPECT_EQ(rules[1].name, "fleet.admission.stall");
  EXPECT_EQ(rules[1].metric, "fleet.critpath.admission_stall_fraction");
  EXPECT_EQ(rules[1].threshold, 0.25);

  for (const auto& builtin : WatchdogEngine::BuiltinRules()) {
    EXPECT_NE(builtin.name, rules[0].name);
    EXPECT_NE(builtin.name, rules[1].name);
  }

  WatchdogEngine engine(WatchdogEngine::SchedulerRules());
  FlightRecorder::Snapshot bad;
  bad.t_seconds = 1.0;
  bad.metrics.gauge("fleet.critpath.imbalance_ratio").Set(2.0);
  bad.metrics.gauge("fleet.critpath.admission_stall_fraction").Set(0.4);
  engine.Observe(nullptr, bad);
  ASSERT_EQ(engine.alerts().size(), 2u);
  EXPECT_EQ(engine.alerts()[0].rule, "fleet.worker.imbalance");
  EXPECT_EQ(engine.alerts()[1].rule, "fleet.admission.stall");

  WatchdogEngine quiet(WatchdogEngine::SchedulerRules());
  FlightRecorder::Snapshot good;
  good.t_seconds = 1.0;
  good.metrics.gauge("fleet.critpath.imbalance_ratio").Set(1.05);
  good.metrics.gauge("fleet.critpath.admission_stall_fraction").Set(0.01);
  quiet.Observe(nullptr, good);
  EXPECT_TRUE(quiet.alerts().empty());
}

TEST(Watchdog, BuiltinMeltdownFiresOnSyntheticOverload) {
  WatchdogEngine engine(WatchdogEngine::BuiltinRules());
  FlightRecorder::Snapshot first;
  first.t_seconds = 60.0;
  first.metrics.counter("nat.device.packets").Add(30000);  // 500 pps, healthy
  FlightRecorder::Snapshot second;
  second.t_seconds = 120.0;
  second.metrics.counter("nat.device.packets").Add(90000);  // +60000 in 60 s

  engine.Observe(nullptr, first);
  engine.Observe(&first, second);
  ASSERT_EQ(engine.alerts().size(), 1u);
  EXPECT_EQ(engine.alerts()[0].rule, "nat.meltdown");
  EXPECT_EQ(engine.alerts()[0].t_seconds, 120.0);
  EXPECT_EQ(engine.alerts()[0].value, 1000.0);  // pps over the last minute
}

TEST(Watchdog, AlertsSurfaceAsCountersInstantsAndJsonl) {
  WatchdogEngine engine({Rule(SloRule::Signal::kGaugeValue, 10.0)});
  engine.Observe(nullptr, Snap(60.0, 0, 20.0));
  engine.Observe(nullptr, Snap(120.0, 0, 30.0));

  MetricsRegistry registry;
  engine.DumpInto(registry);
  EXPECT_EQ(registry.counter_value("alert.rule"), 2u);

  TraceLog trace;
  engine.DumpInto(trace);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_EQ(trace.events()[0].name, "alert.rule");
  EXPECT_EQ(std::string(trace.events()[0].cat), "alert");
  EXPECT_EQ(trace.events()[0].ph, 'i');

  std::istringstream lines(engine.ToJsonl());
  std::string line;
  std::vector<double> times;
  while (std::getline(lines, line)) {
    const auto doc = JsonReader::Parse(line);
    EXPECT_EQ(doc.at("rule").text, "rule");
    EXPECT_EQ(doc.at("threshold").number, 10.0);
    EXPECT_EQ(doc.at("description").text, "test rule");
    times.push_back(doc.at("t").number);
  }
  EXPECT_EQ(times, (std::vector<double>{60.0, 120.0}));

  std::ostringstream streamed;
  engine.WriteJsonl(streamed);
  EXPECT_EQ(streamed.str(), engine.ToJsonl());
}

TEST(Watchdog, DefaultConstructedEngineNeverAlerts) {
  WatchdogEngine engine;
  engine.Observe(nullptr, Snap(60.0, 1000000, 1000000.0));
  EXPECT_TRUE(engine.alerts().empty());
}

}  // namespace
}  // namespace gametrace::obs
