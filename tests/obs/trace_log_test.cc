#include "obs/trace_log.h"

#include <gtest/gtest.h>

#include <utility>

#include "json_reader.h"

namespace gametrace::obs {
namespace {

using gametrace::testing::JsonReader;

TEST(TraceLog, RecordsCompleteAndInstantEvents) {
  TraceLog log(/*pid=*/3);
  log.Complete("map de_dust", "map", 1.0, 2.5);
  log.Instant("connect", "session", 1.25);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].ph, 'X');
  EXPECT_DOUBLE_EQ(log.events()[0].ts_us, 1e6);
  EXPECT_DOUBLE_EQ(log.events()[0].dur_us, 1.5e6);
  EXPECT_EQ(log.events()[0].pid, 3);
  EXPECT_EQ(log.events()[1].ph, 'i');
}

TEST(TraceLog, TickCategoryStartsDisabled) {
  TraceLog log;
  EXPECT_FALSE(log.CategoryEnabled("tick"));
  EXPECT_TRUE(log.CategoryEnabled("map"));  // unknown categories default on
  log.Complete("tick", "tick", 0.0, 0.05);
  EXPECT_EQ(log.size(), 0u);
  log.SetCategoryEnabled("tick", true);
  log.Complete("tick", "tick", 0.0, 0.05);
  EXPECT_EQ(log.size(), 1u);
}

TEST(TraceLog, CapsEventsAndCountsDrops) {
  TraceLog log(/*pid=*/0, /*max_events=*/4);
  for (int i = 0; i < 10; ++i) log.Instant("e", "session", static_cast<double>(i));
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  const auto doc = JsonReader::Parse(log.ToJson());
  EXPECT_EQ(doc.at("otherData").at("dropped_events").number, 6.0);
}

TEST(TraceLog, MergePreservesOriginShard) {
  TraceLog fleet(/*pid=*/0);
  TraceLog shard1(/*pid=*/1);
  shard1.Instant("a", "session", 2.0);
  TraceLog shard2(/*pid=*/2);
  shard2.Instant("b", "session", 1.0);
  fleet.Merge(std::move(shard1));
  fleet.Merge(std::move(shard2));
  ASSERT_EQ(fleet.size(), 2u);
  // Export is stable ts order, so shard2's earlier event comes first.
  const auto doc = JsonReader::Parse(fleet.ToJson());
  const auto& events = doc.at("traceEvents").items;
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].at("name").text, "b");
  EXPECT_EQ(events[0].at("pid").number, 2.0);
  EXPECT_EQ(events[1].at("name").text, "a");
  EXPECT_EQ(events[1].at("pid").number, 1.0);
}

TEST(TraceLog, JsonRoundTripHasChromeShape) {
  TraceLog log(/*pid=*/7);
  log.Complete("outage", "outage", 10.0, 12.0);
  log.Instant("refuse", "session", 10.5);
  log.CounterSample("players", "session", 11.0, 21.0);

  const auto doc = JsonReader::Parse(log.ToJson());
  EXPECT_EQ(doc.at("displayTimeUnit").text, "ms");
  const auto& events = doc.at("traceEvents").items;
  ASSERT_EQ(events.size(), 3u);

  const auto& complete = events[0];
  EXPECT_EQ(complete.at("ph").text, "X");
  EXPECT_EQ(complete.at("name").text, "outage");
  EXPECT_EQ(complete.at("cat").text, "outage");
  EXPECT_EQ(complete.at("ts").number, 1e7);
  EXPECT_EQ(complete.at("dur").number, 2e6);
  EXPECT_EQ(complete.at("pid").number, 7.0);

  const auto& instant = events[1];
  EXPECT_EQ(instant.at("ph").text, "i");
  EXPECT_EQ(instant.at("s").text, "g");  // global-scoped instant

  const auto& counter = events[2];
  EXPECT_EQ(counter.at("ph").text, "C");
  EXPECT_EQ(counter.at("args").at("value").number, 21.0);
}

TEST(TraceLog, ScopedSpanUsesInstalledClock) {
  TraceLog log;
  double now = 4.0;
  log.SetClock([&now] { return now; });
  {
    const ScopedSpan span(&log, "run", "run");
    now = 9.0;
  }
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log.events()[0].ts_us, 4e6);
  EXPECT_DOUBLE_EQ(log.events()[0].dur_us, 5e6);
}

TEST(TraceLog, ScopedSpanIsNoOpWithoutLogOrClock) {
  {
    const ScopedSpan null_span(nullptr, "a", "run");
  }
  TraceLog clockless;
  {
    const ScopedSpan span(&clockless, "a", "run");
  }
  EXPECT_EQ(clockless.size(), 0u);
}

}  // namespace
}  // namespace gametrace::obs
