// FlightRecorder tests: ring bookkeeping, the deterministic snapshot-wise
// merge and its grid contract, byte-stable JSONL serialization, and the
// black-box dump (WriteFlightDump, ScopedFlightDump, DumpFlightNow).
#include "obs/flight_recorder.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace_log.h"

#include "core/check.h"

#include "json_reader.h"

namespace gametrace::obs {
namespace {

using gametrace::testing::JsonReader;
using gametrace::testing::JsonValue;

MetricsRegistry MakeRegistry(std::uint64_t packets, double players) {
  MetricsRegistry metrics;
  metrics.counter("server.packets_emitted").Add(packets);
  metrics.gauge("server.active_players").Set(players);
  return metrics;
}

std::vector<std::string> Lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) lines.push_back(line);
  return lines;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(FlightRecorder, RingEvictsOldestAndKeepsGlobalSequence) {
  FlightRecorder recorder(
      FlightRecorder::Options{.sample_period_seconds = 60.0, .max_snapshots = 3});
  EXPECT_TRUE(recorder.empty());
  for (int i = 1; i <= 5; ++i) {
    recorder.Sample(60.0 * i, MakeRegistry(static_cast<std::uint64_t>(i) * 100, i));
  }
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.total_samples(), 5u);
  EXPECT_EQ(recorder.evicted(), 2u);
  // Held snapshots are the last three samples; "seq" stays global.
  EXPECT_EQ(recorder.sequence_of(0), 2u);
  EXPECT_EQ(recorder.sequence_of(2), 4u);
  EXPECT_EQ(recorder.at(0).t_seconds, 180.0);
  EXPECT_EQ(recorder.latest().t_seconds, 300.0);
  EXPECT_EQ(recorder.latest().metrics.counter_value("server.packets_emitted"), 500u);
}

TEST(FlightRecorder, OptionsAreValidated) {
  EXPECT_THROW(FlightRecorder(FlightRecorder::Options{.sample_period_seconds = 0.0}),
               ContractViolation);
  EXPECT_THROW(FlightRecorder(FlightRecorder::Options{.sample_period_seconds = -1.0}),
               ContractViolation);
  EXPECT_THROW(
      FlightRecorder(FlightRecorder::Options{.sample_period_seconds = 60.0, .max_snapshots = 0}),
      ContractViolation);
}

TEST(FlightRecorder, MergeReducesSnapshotwise) {
  FlightRecorder a;
  FlightRecorder b;
  a.Sample(60.0, MakeRegistry(100, 3));
  a.Sample(120.0, MakeRegistry(200, 4));
  b.Sample(60.0, MakeRegistry(10, 1));
  b.Sample(120.0, MakeRegistry(20, 2));

  a.Merge(b);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a.at(0).metrics.counter_value("server.packets_emitted"), 110u);
  EXPECT_EQ(a.at(0).metrics.gauge_value("server.active_players"), 4.0);  // kSum
  EXPECT_EQ(a.at(1).metrics.counter_value("server.packets_emitted"), 220u);
  EXPECT_EQ(a.at(1).metrics.gauge_value("server.active_players"), 6.0);
}

TEST(FlightRecorder, MergeAdoptsFromEitherEmptySide) {
  FlightRecorder filled;
  filled.Sample(60.0, MakeRegistry(100, 3));

  FlightRecorder empty;
  empty.Merge(filled);
  ASSERT_EQ(empty.size(), 1u);
  EXPECT_EQ(empty.total_samples(), 1u);
  EXPECT_EQ(empty.at(0).metrics.counter_value("server.packets_emitted"), 100u);

  FlightRecorder other;
  filled.Merge(other);  // merging an empty side is a no-op
  EXPECT_EQ(filled.size(), 1u);
  EXPECT_EQ(filled.at(0).metrics.counter_value("server.packets_emitted"), 100u);
}

TEST(FlightRecorder, MergeRejectsMismatchedGrids) {
  FlightRecorder two;
  two.Sample(60.0, MakeRegistry(1, 1));
  two.Sample(120.0, MakeRegistry(2, 1));

  FlightRecorder one;
  one.Sample(60.0, MakeRegistry(1, 1));
  EXPECT_THROW(two.Merge(one), ContractViolation);  // different snapshot counts

  FlightRecorder shifted;
  shifted.Sample(30.0, MakeRegistry(1, 1));
  shifted.Sample(90.0, MakeRegistry(2, 1));
  EXPECT_THROW(two.Merge(shifted), ContractViolation);  // different timestamps

  // Same held size but different eviction history is also a grid mismatch.
  FlightRecorder ring(FlightRecorder::Options{.sample_period_seconds = 60.0, .max_snapshots = 2});
  ring.Sample(0.0, MakeRegistry(1, 1));
  ring.Sample(60.0, MakeRegistry(2, 1));
  ring.Sample(120.0, MakeRegistry(3, 1));
  FlightRecorder flat(FlightRecorder::Options{.sample_period_seconds = 60.0, .max_snapshots = 2});
  flat.Sample(60.0, MakeRegistry(2, 1));
  flat.Sample(120.0, MakeRegistry(3, 1));
  EXPECT_THROW(ring.Merge(flat), ContractViolation);
}

TEST(FlightRecorder, JsonlRoundTripsAndIsByteStable) {
  auto build = [] {
    FlightRecorder recorder(
        FlightRecorder::Options{.sample_period_seconds = 60.0, .max_snapshots = 2});
    for (int i = 1; i <= 3; ++i) {
      recorder.Sample(60.0 * i, MakeRegistry(static_cast<std::uint64_t>(i) * 7, i));
    }
    return recorder;
  };
  const FlightRecorder recorder = build();
  const std::string jsonl = recorder.ToJsonl();

  // Equal recorders serialize to equal bytes - what the fleet bit-identity
  // tests lean on.
  EXPECT_EQ(jsonl, build().ToJsonl());

  std::ostringstream streamed;
  recorder.WriteJsonl(streamed);
  EXPECT_EQ(streamed.str(), jsonl);

  const auto lines = Lines(jsonl);
  ASSERT_EQ(lines.size(), 2u);  // ring of 2 held the last two samples
  const auto first = JsonReader::Parse(lines[0]);
  EXPECT_EQ(first.at("t").number, 120.0);
  EXPECT_EQ(first.at("seq").number, 1.0);  // global sequence despite eviction
  EXPECT_EQ(first.at("metrics").at("counters").at("server.packets_emitted").number, 14.0);
  const auto second = JsonReader::Parse(lines[1]);
  EXPECT_EQ(second.at("t").number, 180.0);
  EXPECT_EQ(second.at("seq").number, 2.0);
  EXPECT_EQ(second.at("metrics").at("gauges").at("server.active_players").at("value").number,
            3.0);
}

TEST(FlightDump, DocumentCarriesFailureSnapshotsAndTraceTail) {
  FlightRecorder recorder;
  for (int i = 1; i <= 3; ++i) {
    recorder.Sample(60.0 * i, MakeRegistry(static_cast<std::uint64_t>(i) * 10, i));
  }
  TraceLog trace;
  trace.Instant("late", "session", 110.0);
  trace.Instant("early", "session", 10.0);

  const ContractFailure failure{.file = "somewhere.cc",
                                .line = 42,
                                .condition = "x > 0",
                                .message = "synthetic failure"};
  std::ostringstream out;
  WriteFlightDump(out, "unit_test", &recorder, &trace, &failure,
                  FlightDumpOptions{.last_snapshots = 2, .last_trace_events = 8});

  const auto doc = JsonReader::Parse(out.str());
  EXPECT_EQ(doc.at("reason").text, "unit_test");
  EXPECT_EQ(doc.at("failure").at("file").text, "somewhere.cc");
  EXPECT_EQ(doc.at("failure").at("line").number, 42.0);
  EXPECT_EQ(doc.at("failure").at("condition").text, "x > 0");
  EXPECT_EQ(doc.at("failure").at("message").text, "synthetic failure");
  EXPECT_EQ(doc.at("total_samples").number, 3.0);
  EXPECT_EQ(doc.at("evicted_snapshots").number, 0.0);

  // last_snapshots = 2 keeps only the most recent two, newest last.
  const auto& snapshots = doc.at("snapshots").items;
  ASSERT_EQ(snapshots.size(), 2u);
  EXPECT_EQ(snapshots[0].at("t").number, 120.0);
  EXPECT_EQ(snapshots[1].at("t").number, 180.0);
  EXPECT_EQ(snapshots[1].at("metrics").at("counters").at("server.packets_emitted").number, 30.0);

  // The trace tail is sim-time sorted, not push-order.
  const auto& tail = doc.at("trace_tail").items;
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].at("name").text, "early");
  EXPECT_EQ(tail[1].at("name").text, "late");
  EXPECT_EQ(tail[1].at("ph").text, "i");
  EXPECT_EQ(doc.at("trace_dropped_events").number, 0.0);
  EXPECT_TRUE(doc.at("profiling").is_array());
}

TEST(FlightDump, NullSectionsProduceAnEmptyButValidDocument) {
  std::ostringstream out;
  WriteFlightDump(out, "bare", nullptr, nullptr, nullptr);
  const auto doc = JsonReader::Parse(out.str());
  EXPECT_EQ(doc.at("reason").text, "bare");
  EXPECT_FALSE(doc.has("failure"));
  EXPECT_TRUE(doc.at("snapshots").items.empty());
  EXPECT_TRUE(doc.at("trace_tail").items.empty());
}

TEST(FlightDump, ScopedGuardWritesOnContractViolationThenChains) {
  const std::string path = ::testing::TempDir() + "flight_dump_guard.json";
  std::remove(path.c_str());

  MetricsRegistry metrics;
  TraceLog trace;
  FlightRecorder recorder;
  recorder.Sample(60.0, MakeRegistry(123, 5));
  const ScopedObsBinding bind(
      {.metrics = &metrics, .trace = &trace, .recorder = &recorder, .heartbeat = false});
  {
    const ScopedFlightDump guard(path);
    // The guard chains to the test suite's throwing handler, so the
    // violation is still catchable - after the black box hits disk.
    EXPECT_THROW(GT_CHECK(false) << "tripped on purpose", ContractViolation);
  }

  const auto doc = JsonReader::Parse(ReadFile(path));
  EXPECT_EQ(doc.at("reason").text, "contract_violation");
  EXPECT_EQ(doc.at("failure").at("condition").text, "GT_CHECK(false) failed");
  EXPECT_EQ(doc.at("failure").at("message").text, "tripped on purpose");
  const auto& snapshots = doc.at("snapshots").items;
  ASSERT_EQ(snapshots.size(), 1u);
  EXPECT_EQ(snapshots[0].at("metrics").at("counters").at("server.packets_emitted").number,
            123.0);

  // The destructor restored the plain throwing handler: violations still
  // throw, and the dump is not rewritten.
  std::remove(path.c_str());
  EXPECT_THROW(GT_CHECK(false) << "after guard", ContractViolation);
  EXPECT_FALSE(std::ifstream(path).good());
}

TEST(FlightDump, DumpFlightNowRequiresAnActiveGuard) {
  EXPECT_FALSE(DumpFlightNow("no guard"));

  const std::string path = ::testing::TempDir() + "flight_dump_manual.json";
  std::remove(path.c_str());
  FlightRecorder recorder;
  recorder.Sample(60.0, MakeRegistry(7, 1));
  const ScopedObsBinding bind({.recorder = &recorder, .heartbeat = false});
  const ScopedFlightDump guard(path);

  ASSERT_TRUE(DumpFlightNow("manual"));
  const auto doc = JsonReader::Parse(ReadFile(path));
  EXPECT_EQ(doc.at("reason").text, "manual");
  EXPECT_FALSE(doc.has("failure"));  // survivable dumps carry no failure
  ASSERT_EQ(doc.at("snapshots").items.size(), 1u);
}

TEST(FlightDump, SecondGuardIsRejectedAndFirstStaysArmed) {
  const std::string path = ::testing::TempDir() + "flight_dump_first.json";
  const ScopedFlightDump guard(path);
  EXPECT_THROW(ScopedFlightDump(::testing::TempDir() + "flight_dump_second.json"),
               ContractViolation);
  EXPECT_TRUE(DumpFlightNow("still armed"));
}

}  // namespace
}  // namespace gametrace::obs
