// GT_PROF_SCOPE accounting semantics, with the per-TU switch forced on so
// the behaviour is pinned whatever the build-wide GAMETRACE_OBS setting is.
#undef GAMETRACE_ENABLE_OBS
#define GAMETRACE_ENABLE_OBS 1
#include "obs/prof.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "obs/metrics.h"

namespace gametrace::obs {
namespace {

std::uint64_t CallsFor(const char* name) {
  const auto snapshot = ProfilingSnapshot();
  const auto it = std::find_if(snapshot.begin(), snapshot.end(),
                               [name](const ProfSample& s) { return s.name == name; });
  return it == snapshot.end() ? 0 : it->calls;
}

void ScopedWork() { GT_PROF_SCOPE("test.prof.scoped_work"); }

TEST(ProfScope, IdleScopesRecordNothing) {
  EnableProfiling(false);
  ResetProfiling();
  for (int i = 0; i < 10; ++i) ScopedWork();
  EXPECT_EQ(CallsFor("test.prof.scoped_work"), 0u);
}

TEST(ProfScope, ActiveScopesCountCallsAndTime) {
  EnableProfiling(true);
  ResetProfiling();
  for (int i = 0; i < 7; ++i) ScopedWork();
  EnableProfiling(false);
  EXPECT_EQ(CallsFor("test.prof.scoped_work"), 7u);
}

TEST(ProfScope, EnableMidstreamOnlyCountsActiveWindow) {
  EnableProfiling(false);
  ResetProfiling();
  ScopedWork();  // idle: not counted
  EnableProfiling(true);
  ScopedWork();
  ScopedWork();
  EnableProfiling(false);
  ScopedWork();  // idle again
  EXPECT_EQ(CallsFor("test.prof.scoped_work"), 2u);
}

TEST(ProfScope, SnapshotIsNameSorted) {
  EnableProfiling(true);
  ResetProfiling();
  {
    GT_PROF_SCOPE("test.prof.zzz");
  }
  {
    GT_PROF_SCOPE("test.prof.aaa");
  }
  EnableProfiling(false);
  const auto snapshot = ProfilingSnapshot();
  EXPECT_TRUE(std::is_sorted(snapshot.begin(), snapshot.end(),
                             [](const ProfSample& a, const ProfSample& b) {
                               return a.name < b.name;
                             }));
}

TEST(ProfScope, DumpProfilingIntoWritesCounterPairs) {
  EnableProfiling(true);
  ResetProfiling();
  for (int i = 0; i < 3; ++i) ScopedWork();
  EnableProfiling(false);

  MetricsRegistry registry;
  DumpProfilingInto(registry);
  EXPECT_EQ(registry.counter_value("prof.test.prof.scoped_work.calls"), 3u);
  // Nanosecond totals are wall-clock and can legitimately round to zero on
  // an empty scope; the counter must exist either way.
  EXPECT_EQ(registry.ToJson().find("prof.test.prof.scoped_work.ns") == std::string::npos,
            false);
}

TEST(ProfScope, ResetZeroesButKeepsSites) {
  EnableProfiling(true);
  ResetProfiling();
  ScopedWork();
  EXPECT_EQ(CallsFor("test.prof.scoped_work"), 1u);
  ResetProfiling();
  EXPECT_EQ(CallsFor("test.prof.scoped_work"), 0u);
  ScopedWork();
  EnableProfiling(false);
  EXPECT_EQ(CallsFor("test.prof.scoped_work"), 1u);
}

}  // namespace
}  // namespace gametrace::obs
