#include "sim/diurnal.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::sim {
namespace {

TEST(DiurnalCurve, EmptyIsConstantOne) {
  DiurnalCurve c;
  EXPECT_DOUBLE_EQ(c.At(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(12345.0), 1.0);
}

TEST(DiurnalCurve, SinglePointIsConstant) {
  DiurnalCurve c({{12.0, 0.7}});
  EXPECT_DOUBLE_EQ(c.At(0.0), 0.7);
  EXPECT_DOUBLE_EQ(c.At(86399.0), 0.7);
}

TEST(DiurnalCurve, Validation) {
  EXPECT_THROW(DiurnalCurve({{24.0, 1.0}}), gametrace::ContractViolation);
  EXPECT_THROW(DiurnalCurve({{-1.0, 1.0}}), gametrace::ContractViolation);
  EXPECT_THROW(DiurnalCurve({{3.0, -0.5}}), gametrace::ContractViolation);
}

TEST(DiurnalCurve, InterpolatesBetweenPoints) {
  DiurnalCurve c({{0.0, 1.0}, {12.0, 2.0}});
  EXPECT_DOUBLE_EQ(c.At(0.0), 1.0);
  EXPECT_DOUBLE_EQ(c.At(6.0 * 3600.0), 1.5);
  EXPECT_DOUBLE_EQ(c.At(12.0 * 3600.0), 2.0);
}

TEST(DiurnalCurve, WrapsAroundMidnight) {
  DiurnalCurve c({{6.0, 1.0}, {18.0, 3.0}});
  // 18:00 -> 06:00 (next day) interpolates from 3 back to 1 over 12 h.
  EXPECT_DOUBLE_EQ(c.At(21.0 * 3600.0), 2.5);  // quarter of the way down
  EXPECT_DOUBLE_EQ(c.At(0.0), 2.0);            // t=0 is midnight: halfway 18->6
}

TEST(DiurnalCurve, PeriodicAcrossDays) {
  DiurnalCurve c = DiurnalCurve::BusyServerDefault();
  for (double hour : {0.0, 5.5, 13.0, 21.0}) {
    EXPECT_NEAR(c.At(hour * 3600.0), c.At(hour * 3600.0 + 86400.0 * 3), 1e-12);
  }
}

TEST(DiurnalCurve, PhaseOffsetShifts) {
  DiurnalCurve c({{0.0, 1.0}, {12.0, 2.0}});
  c.set_phase_offset(6.0 * 3600.0);  // t = 0 is 06:00
  EXPECT_DOUBLE_EQ(c.At(0.0), 1.5);
}

TEST(DiurnalCurve, BusyServerDefaultProperties) {
  DiurnalCurve c = DiurnalCurve::BusyServerDefault();
  // Evening peak exceeds the early-morning trough.
  EXPECT_GT(c.At(20.0 * 3600.0), c.At(4.0 * 3600.0));
  // Mean multiplier near 1 so calibrated mean rates stay calibrated.
  EXPECT_NEAR(c.MeanMultiplier(), 1.0, 0.08);
  // Never exceeds the SessionModel thinning envelope of 1.5x.
  for (int minute = 0; minute < 24 * 60; ++minute) {
    EXPECT_LT(c.At(minute * 60.0), 1.5);
  }
}

TEST(DiurnalCurve, NegativeTimeWellDefined) {
  DiurnalCurve c({{0.0, 1.0}, {12.0, 2.0}});
  const double v = c.At(-3600.0);  // 23:00 previous day
  EXPECT_GT(v, 0.9);
  EXPECT_LT(v, 2.1);
}

}  // namespace
}  // namespace gametrace::sim
