#include "sim/event_queue.h"

#include <algorithm>
#include <array>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::sim {
namespace {

TEST(EventQueue, EmptyBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.NextTime(), gametrace::ContractViolation);
  EXPECT_THROW((void)q.Pop(), gametrace::ContractViolation);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().handler();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().handler();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.Schedule(7.0, [] {});
  q.Schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.Schedule(4.5, [] {});
  const auto ev = q.Pop();
  EXPECT_DOUBLE_EQ(ev.time, 4.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.Schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const auto id = q.Schedule(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  const auto early = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  q.Cancel(early);
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const auto id = q.Schedule(1.0, [] {});
  (void)q.Pop();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, EmptyHandlerRejected) {
  EventQueue q;
  EXPECT_THROW(q.Schedule(1.0, nullptr), gametrace::ContractViolation);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<double> times;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.Schedule(t, [] {});
  }
  double last = -1.0;
  while (!q.empty()) {
    const auto ev = q.Pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
  }
}

TEST(EventQueue, RunNextInvokesWithEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.Schedule(3.25, [&](double t) { seen = t; });
  EXPECT_DOUBLE_EQ(q.RunNext(), 3.25);
  EXPECT_DOUBLE_EQ(seen, 3.25);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SlotCountBoundedByHighWaterPending) {
  // The memory regression the free list exists to prevent: a long-running
  // simulation schedules millions of events but only ever has a bounded
  // number pending, so the slot arena must stay at the high-water mark
  // instead of growing with the total event count.
  EventQueue q;
  constexpr std::size_t kPending = 64;
  constexpr int kCycles = 1'000'000;
  std::uint64_t fired = 0;
  double t = 0.0;
  for (std::size_t i = 0; i < kPending; ++i) {
    q.Schedule(t++, [&fired] { ++fired; });
  }
  const std::size_t high_water = q.slot_count();
  EXPECT_LE(high_water, kPending);
  for (int i = 0; i < kCycles; ++i) {
    q.RunNext();
    q.Schedule(t++, [&fired] { ++fired; });
    ASSERT_LE(q.slot_count(), high_water) << "slot arena grew at cycle " << i;
  }
  EXPECT_EQ(q.size(), kPending);
  EXPECT_EQ(fired, kCycles);
}

TEST(EventQueue, StaleIdCannotCancelRecycledSlot) {
  EventQueue q;
  const auto id1 = q.Schedule(1.0, [] {});
  (void)q.Pop();
  // The released slot is recycled with a new generation; the stale id must
  // not be able to cancel the new occupant.
  const auto id2 = q.Schedule(2.0, [] {});
  EXPECT_EQ(q.slot_count(), 1u);
  EXPECT_FALSE(q.Cancel(id1));
  EXPECT_TRUE(q.Cancel(id2));
}

TEST(EventQueue, LargeHandlerFallsBackToHeap) {
  // Captures beyond the inline capacity still work (heap fallback path).
  EventQueue q;
  std::array<double, 16> payload{};
  payload.fill(1.5);
  double sum = 0.0;
  q.Schedule(1.0, [payload, &sum] {
    for (const double v : payload) sum += v;
  });
  q.RunNext();
  EXPECT_DOUBLE_EQ(sum, 24.0);
}

TEST(EventQueue, PeriodicFiresOnCadence) {
  EventQueue q;
  std::vector<double> times;
  q.SchedulePeriodic(1.0, 0.5, [&](double t) { times.push_back(t); });
  for (int i = 0; i < 4; ++i) q.RunNext();
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0, 2.5}));
  EXPECT_EQ(q.size(), 1u);        // still armed
  EXPECT_EQ(q.slot_count(), 1u);  // one slot for the timer's lifetime
}

TEST(EventQueue, PeriodicCancelStops) {
  EventQueue q;
  int fired = 0;
  const auto id = q.SchedulePeriodic(1.0, 1.0, [&] { ++fired; });
  q.RunNext();
  q.RunNext();
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(fired, 2);
}

TEST(EventQueue, PeriodicSelfCancelFromHandler) {
  EventQueue q;
  int fired = 0;
  std::uint64_t id = 0;
  id = q.SchedulePeriodic(0.0, 1.0, [&] {
    if (++fired == 3) q.Cancel(id);
  });
  while (!q.empty()) q.RunNext();
  EXPECT_EQ(fired, 3);
}

TEST(EventQueue, PeriodicInterleavesWithOneShots) {
  EventQueue q;
  std::vector<int> order;
  q.SchedulePeriodic(1.0, 2.0, [&] { order.push_back(0); });  // 1, 3, 5, ...
  q.Schedule(2.0, [&] { order.push_back(1); });
  q.Schedule(4.0, [&] { order.push_back(2); });
  for (int i = 0; i < 5; ++i) q.RunNext();  // up to t = 5
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 2, 0}));
}

TEST(EventQueue, PopThrowsOnPeriodic) {
  EventQueue q;
  q.SchedulePeriodic(1.0, 1.0, [] {});
  EXPECT_THROW((void)q.Pop(), gametrace::ContractViolation);
}

TEST(EventQueue, PeriodicValidation) {
  EventQueue q;
  EXPECT_THROW(q.SchedulePeriodic(1.0, 0.0, [] {}), gametrace::ContractViolation);
  EXPECT_THROW(q.SchedulePeriodic(1.0, -1.0, [] {}), gametrace::ContractViolation);
  EXPECT_THROW(q.SchedulePeriodic(1.0, 1.0, nullptr), gametrace::ContractViolation);
}

TEST(EventQueue, HandlerMayRescheduleDuringRun) {
  // One-shot slots are released before the handler runs, so a handler that
  // immediately reschedules reuses its own slot and the arena stays at one.
  EventQueue q;
  int hops = 0;
  std::function<void(double)> hop = [&](double t) {
    if (++hops < 100) q.Schedule(t + 1.0, [&hop](double u) { hop(u); });
  };
  q.Schedule(0.0, [&hop](double t) { hop(t); });
  while (!q.empty()) q.RunNext();
  EXPECT_EQ(hops, 100);
  EXPECT_EQ(q.slot_count(), 1u);
}

}  // namespace
}  // namespace gametrace::sim
