#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace gametrace::sim {
namespace {

TEST(EventQueue, EmptyBehaviour) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_THROW((void)q.NextTime(), std::logic_error);
  EXPECT_THROW((void)q.Pop(), std::logic_error);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(3.0, [&] { order.push_back(3); });
  q.Schedule(1.0, [&] { order.push_back(1); });
  q.Schedule(2.0, [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().handler();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().handler();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.Schedule(7.0, [] {});
  q.Schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.Schedule(4.5, [] {});
  const auto ev = q.Pop();
  EXPECT_DOUBLE_EQ(ev.time, 4.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const auto id = q.Schedule(1.0, [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  const auto id = q.Schedule(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(9999));
}

TEST(EventQueue, CancelledEventSkippedByNextTime) {
  EventQueue q;
  const auto early = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  q.Cancel(early);
  EXPECT_DOUBLE_EQ(q.NextTime(), 2.0);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  const auto id = q.Schedule(1.0, [] {});
  (void)q.Pop();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, EmptyHandlerRejected) {
  EventQueue q;
  EXPECT_THROW(q.Schedule(1.0, nullptr), std::invalid_argument);
}

TEST(EventQueue, ManyEventsStressOrder) {
  EventQueue q;
  std::vector<double> times;
  for (int i = 0; i < 10000; ++i) {
    const double t = static_cast<double>((i * 7919) % 1000);
    q.Schedule(t, [] {});
  }
  double last = -1.0;
  while (!q.empty()) {
    const auto ev = q.Pop();
    EXPECT_GE(ev.time, last);
    last = ev.time;
  }
}

}  // namespace
}  // namespace gametrace::sim
