#include "sim/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::sim {
namespace {

constexpr int kDraws = 200000;

TEST(Random, UniformRange) {
  Rng rng(1);
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = Uniform(rng, 3.0, 7.0);
    EXPECT_GE(x, 3.0);
    EXPECT_LT(x, 7.0);
    sum += x;
  }
  EXPECT_NEAR(sum / kDraws, 5.0, 0.02);
}

TEST(Random, ExponentialMoments) {
  Rng rng(2);
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = Exponential(rng, 2.0);
    EXPECT_GE(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 2.0, 0.03);
  EXPECT_NEAR(sq / kDraws - mean * mean, 4.0, 0.15);  // var = mean^2
}

TEST(Random, ExponentialValidation) {
  Rng rng(3);
  EXPECT_THROW((void)Exponential(rng, 0.0), gametrace::ContractViolation);
  EXPECT_THROW((void)Exponential(rng, -1.0), gametrace::ContractViolation);
}

TEST(Random, NormalMoments) {
  Rng rng(4);
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = Normal(rng, 40.0, 4.5);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 40.0, 0.05);
  EXPECT_NEAR(std::sqrt(sq / kDraws - mean * mean), 4.5, 0.05);
}

TEST(Random, NormalSymmetry) {
  Rng rng(5);
  int above = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (StandardNormal(rng) > 0.0) ++above;
  }
  EXPECT_NEAR(static_cast<double>(above) / kDraws, 0.5, 0.01);
}

TEST(Random, LognormalMatchesRequestedMoments) {
  Rng rng(6);
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double x = LognormalFromMoments(rng, 703.0, 850.0);
    EXPECT_GT(x, 0.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 703.0, 20.0);
  EXPECT_NEAR(std::sqrt(sq / kDraws - mean * mean), 850.0, 60.0);
}

TEST(Random, LognormalZeroStddevIsDegenerate) {
  Rng rng(7);
  EXPECT_DOUBLE_EQ(LognormalFromMoments(rng, 5.0, 0.0), 5.0);
}

TEST(Random, LognormalValidation) {
  Rng rng(8);
  EXPECT_THROW((void)LognormalFromMoments(rng, 0.0, 1.0), gametrace::ContractViolation);
  EXPECT_THROW((void)LognormalFromMoments(rng, 1.0, -1.0), gametrace::ContractViolation);
}

TEST(Random, ParetoTailAndScale) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(Pareto(rng, 2.0, 1.5), 2.0);
  // Mean of Pareto(x_m, alpha) = alpha x_m / (alpha - 1) for alpha > 1.
  double sum = 0.0;
  for (int i = 0; i < kDraws; ++i) sum += Pareto(rng, 1.0, 3.0);
  EXPECT_NEAR(sum / kDraws, 1.5, 0.03);
  EXPECT_THROW((void)Pareto(rng, 0.0, 1.0), gametrace::ContractViolation);
}

TEST(Random, BernoulliRate) {
  Rng rng(10);
  int yes = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (Bernoulli(rng, 0.2)) ++yes;
  }
  EXPECT_NEAR(static_cast<double>(yes) / kDraws, 0.2, 0.005);
}

TEST(Random, PoissonSmallMean) {
  Rng rng(11);
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < kDraws; ++i) {
    const double k = static_cast<double>(Poisson(rng, 3.0));
    sum += k;
    sq += k * k;
  }
  const double mean = sum / kDraws;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(sq / kDraws - mean * mean, 3.0, 0.1);  // var = mean
}

TEST(Random, PoissonLargeMeanUsesApproximation) {
  Rng rng(12);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) sum += static_cast<double>(Poisson(rng, 500.0));
  EXPECT_NEAR(sum / 20000, 500.0, 2.0);
}

TEST(Random, PoissonZeroMean) {
  Rng rng(13);
  EXPECT_EQ(Poisson(rng, 0.0), 0u);
}

TEST(Random, DiscreteProportions) {
  Rng rng(14);
  const std::vector<double> weights{1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[Discrete(rng, weights)];
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(kDraws), 0.6, 0.01);
}

TEST(Random, DiscreteValidation) {
  Rng rng(15);
  const std::vector<double> zero{0.0, 0.0};
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW((void)Discrete(rng, zero), gametrace::ContractViolation);
  EXPECT_THROW((void)Discrete(rng, negative), gametrace::ContractViolation);
}

TEST(ZipfSampler, Validation) { EXPECT_THROW(ZipfSampler(0, 1.0), gametrace::ContractViolation); }

TEST(ZipfSampler, PopularHeadsDominarte) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(16);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
  // Rank 0 should have roughly 1/H(1000) ~ 13% of the mass at s = 1.
  EXPECT_NEAR(counts[0] / static_cast<double>(kDraws), 0.134, 0.02);
}

TEST(ZipfSampler, SFlattensDistribution) {
  ZipfSampler flat(100, 0.0);  // s = 0 -> uniform
  Rng rng(17);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < kDraws; ++i) ++counts[flat.Sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 100, kDraws / 100 * 0.2);
}

}  // namespace
}  // namespace gametrace::sim
