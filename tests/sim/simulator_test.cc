#include "sim/simulator.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.Now(), 0.0);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator s;
  double seen = -1.0;
  s.At(2.0, [&] { seen = s.Now(); });
  const auto ran = s.RunUntil(10.0);
  EXPECT_EQ(ran, 1u);
  EXPECT_DOUBLE_EQ(seen, 2.0);
  EXPECT_DOUBLE_EQ(s.Now(), 10.0);  // clock reaches horizon even when idle
}

TEST(Simulator, EventsAfterHorizonNotRun) {
  Simulator s;
  bool ran = false;
  s.At(5.0, [&] { ran = true; });
  s.RunUntil(4.999);
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.pending(), 1u);
  s.RunUntil(5.0);  // events exactly at the horizon do run
  EXPECT_TRUE(ran);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator s;
  std::vector<double> times;
  s.At(3.0, [&] {
    s.After(2.0, [&] { times.push_back(s.Now()); });
  });
  s.RunUntil(10.0);
  ASSERT_EQ(times.size(), 1u);
  EXPECT_DOUBLE_EQ(times[0], 5.0);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator s;
  s.At(5.0, [&] {
    EXPECT_THROW(s.At(4.0, [] {}), gametrace::ContractViolation);
    EXPECT_THROW(s.After(-1.0, [] {}), gametrace::ContractViolation);
    EXPECT_NO_THROW(s.At(5.0, [] {}));  // same time is fine
  });
  s.RunUntil(10.0);
}

TEST(Simulator, CancelWorks) {
  Simulator s;
  bool ran = false;
  const auto id = s.At(1.0, [&] { ran = true; });
  EXPECT_TRUE(s.Cancel(id));
  s.RunUntil(2.0);
  EXPECT_FALSE(ran);
}

TEST(Simulator, StopHaltsRun) {
  Simulator s;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    s.At(static_cast<double>(i), [&] {
      ++count;
      if (count == 3) s.Stop();
    });
  }
  s.RunUntil(100.0);
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(s.Now(), 3.0);  // stopped mid-run, clock not advanced
  s.RunUntil(100.0);               // resumes
  EXPECT_EQ(count, 10);
}

TEST(Simulator, RunAllDrainsQueue) {
  Simulator s;
  int count = 0;
  s.At(1.0, [&] {
    ++count;
    s.After(1.0, [&] { ++count; });
  });
  const auto ran = s.RunAll();
  EXPECT_EQ(ran, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(s.pending() == 0);
}

TEST(Simulator, SelfReschedulingChainTerminatesAtHorizon) {
  Simulator s;
  std::uint64_t ticks = 0;
  std::function<void()> tick = [&] {
    ++ticks;
    s.After(0.05, tick);
  };
  s.At(0.0, tick);
  s.RunUntil(10.0);
  // t = 0.00, 0.05, ..., 10.00: 201 nominally; fp accumulation may push the
  // final tick epsilon past the horizon.
  EXPECT_GE(ticks, 200u);
  EXPECT_LE(ticks, 201u);
}

TEST(Simulator, EveryFiresOnCadenceUntilCancelled) {
  Simulator s;
  std::vector<double> times;
  const auto id = s.Every(1.0, 2.0, [&](double t) { times.push_back(t); });
  s.RunUntil(6.0);  // fires at 1, 3, 5
  EXPECT_EQ(times, (std::vector<double>{1.0, 3.0, 5.0}));
  EXPECT_TRUE(s.Cancel(id));
  s.RunUntil(20.0);
  EXPECT_EQ(times.size(), 3u);
}

TEST(Simulator, EveryRejectsPastStart) {
  Simulator s;
  s.At(5.0, [&] { EXPECT_THROW(s.Every(4.0, 1.0, [] {}), gametrace::ContractViolation); });
  s.RunUntil(10.0);
}

TEST(Simulator, EveryClockMatchesHandlerTime) {
  // Now() inside a periodic handler equals the firing time passed in.
  Simulator s;
  bool checked = false;
  const auto id = s.Every(0.5, 0.5, [&](double t) {
    EXPECT_DOUBLE_EQ(s.Now(), t);
    checked = true;
  });
  s.RunUntil(3.0);
  EXPECT_TRUE(checked);
  s.Cancel(id);
}

TEST(Simulator, EventsExecutedCounter) {
  Simulator s;
  for (int i = 0; i < 5; ++i) s.At(1.0, [] {});
  s.RunUntil(2.0);
  EXPECT_EQ(s.events_executed(), 5u);
}

TEST(Simulator, QueueHighWaterTracksMaxPending) {
  Simulator s;
  for (int i = 0; i < 7; ++i) s.At(1.0 + 0.1 * i, [] {});
  EXPECT_EQ(s.queue_high_water(), 7u);
  s.RunUntil(10.0);
  // The mark is a lifetime max, not the current depth.
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_EQ(s.queue_high_water(), 7u);
}

TEST(Simulator, HeartbeatFiresOnLongRuns) {
  Simulator s;
  int beats = 0;
  Simulator::HeartbeatStatus last;
  // A vanishing wall interval: the beat fires at every stride boundary.
  s.SetHeartbeat(1e-9, [&](const Simulator::HeartbeatStatus& status) {
    ++beats;
    last = status;
  });
  EXPECT_TRUE(s.has_heartbeat());
  for (int i = 0; i < 10000; ++i) s.At(1.0 + 1e-4 * i, [] {});
  s.RunUntil(10.0);
  EXPECT_GE(beats, 1);
  EXPECT_LE(beats, 2);  // one per 4096-event stride
  EXPECT_GT(last.events_executed, 0u);
  EXPECT_GT(last.sim_now, 0.0);
  EXPECT_EQ(last.queue_high_water, 10000u);
  EXPECT_GE(last.wall_elapsed_seconds, 0.0);
}

TEST(Simulator, HeartbeatNeverFiresWithinLongInterval) {
  Simulator s;
  int beats = 0;
  s.SetHeartbeat(3600.0, [&](const Simulator::HeartbeatStatus&) { ++beats; });
  for (int i = 0; i < 10000; ++i) s.At(1.0, [] {});
  s.RunUntil(2.0);
  EXPECT_EQ(beats, 0);
}

TEST(Simulator, HeartbeatClearsAndValidates) {
  Simulator s;
  s.SetHeartbeat(1.0, [](const Simulator::HeartbeatStatus&) {});
  EXPECT_TRUE(s.has_heartbeat());
  s.ClearHeartbeat();
  EXPECT_FALSE(s.has_heartbeat());
  // An empty callback clears too; a non-positive interval is a contract bug.
  s.SetHeartbeat(1.0, [](const Simulator::HeartbeatStatus&) {});
  s.SetHeartbeat(5.0, nullptr);
  EXPECT_FALSE(s.has_heartbeat());
  EXPECT_THROW(s.SetHeartbeat(0.0, [](const Simulator::HeartbeatStatus&) {}),
               gametrace::ContractViolation);
}

}  // namespace
}  // namespace gametrace::sim
