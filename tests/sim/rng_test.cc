#include "sim/rng.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace gametrace::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, ZeroSeedIsWellMixed) {
  // SplitMix64 seeding means seed 0 must not produce a degenerate stream.
  Rng r(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(r());
  EXPECT_EQ(seen.size(), 100u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 100000; ++i) {
    const double u = r.NextDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsHalf) {
  Rng r(8);
  double sum = 0.0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) sum += r.NextDouble();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(9);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 100ull, 1000000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.NextBelow(bound), bound);
  }
}

TEST(Rng, NextBelowZeroBoundIsZero) {
  Rng r(10);
  EXPECT_EQ(r.NextBelow(0), 0u);
}

TEST(Rng, NextBelowIsUniform) {
  Rng r(11);
  std::vector<int> counts(10, 0);
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[r.NextBelow(10)];
  for (int c : counts) EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.1);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(5);
  Rng child1 = parent.Split();
  Rng child2 = parent.Split();
  // Streams differ from each other and from the parent's continuation.
  int equal12 = 0;
  for (int i = 0; i < 100; ++i) {
    if (child1() == child2()) ++equal12;
  }
  EXPECT_LT(equal12, 3);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(77);
  Rng b(77);
  Rng ca = a.Split();
  Rng cb = b.Split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca(), cb());
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  EXPECT_EQ(Rng::min(), 0u);
  EXPECT_EQ(Rng::max(), ~std::uint64_t{0});
}

}  // namespace
}  // namespace gametrace::sim
