#include "trace/capture.h"

#include <gtest/gtest.h>

namespace gametrace::trace {
namespace {

net::PacketRecord MakeRecord(double t, net::Direction dir, std::uint16_t bytes) {
  net::PacketRecord r;
  r.timestamp = t;
  r.app_bytes = bytes;
  r.direction = dir;
  return r;
}

TEST(CountingSink, CountsByDirection) {
  CountingSink sink;
  sink.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40));
  sink.OnPacket(MakeRecord(0.1, net::Direction::kClientToServer, 41));
  sink.OnPacket(MakeRecord(0.2, net::Direction::kServerToClient, 130));
  EXPECT_EQ(sink.packets(), 3u);
  EXPECT_EQ(sink.packets_in(), 2u);
  EXPECT_EQ(sink.packets_out(), 1u);
  EXPECT_EQ(sink.app_bytes(), 211u);
}

TEST(VectorSink, StoresRecordsInOrder) {
  VectorSink sink;
  sink.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer, 1));
  sink.OnPacket(MakeRecord(2.0, net::Direction::kClientToServer, 2));
  ASSERT_EQ(sink.records().size(), 2u);
  EXPECT_EQ(sink.records()[0].app_bytes, 1);
  EXPECT_EQ(sink.records()[1].app_bytes, 2);
}

TEST(VectorSink, TakeRecordsMovesOut) {
  VectorSink sink;
  sink.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer, 1));
  auto records = sink.TakeRecords();
  EXPECT_EQ(records.size(), 1u);
  EXPECT_TRUE(sink.records().empty());
}

TEST(TeeSink, ForwardsToAllAttached) {
  CountingSink a;
  CountingSink b;
  TeeSink tee;
  tee.Attach(a);
  tee.Attach(b);
  EXPECT_EQ(tee.sink_count(), 2u);
  tee.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40));
  EXPECT_EQ(a.packets(), 1u);
  EXPECT_EQ(b.packets(), 1u);
}

TEST(TeeSink, EmptyTeeIsNoop) {
  TeeSink tee;
  EXPECT_NO_THROW(tee.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40)));
}

TEST(CallbackSink, InvokesCallable) {
  int calls = 0;
  CallbackSink sink([&calls](const net::PacketRecord& r) {
    ++calls;
    EXPECT_EQ(r.app_bytes, 99);
  });
  sink.OnPacket(MakeRecord(0.0, net::Direction::kServerToClient, 99));
  EXPECT_EQ(calls, 1);
}

TEST(Replay, FeedsEveryRecord) {
  std::vector<net::PacketRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back(MakeRecord(i * 0.1, net::Direction::kClientToServer, 40));
  }
  CountingSink sink;
  Replay(records, sink);
  EXPECT_EQ(sink.packets(), 10u);
}

TEST(Replay, EmptyVector) {
  CountingSink sink;
  Replay({}, sink);
  EXPECT_EQ(sink.packets(), 0u);
}

}  // namespace
}  // namespace gametrace::trace
