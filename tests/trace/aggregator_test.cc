#include "trace/aggregator.h"

#include <gtest/gtest.h>

namespace gametrace::trace {
namespace {

net::PacketRecord MakeRecord(double t, net::Direction dir, std::uint16_t bytes) {
  net::PacketRecord r;
  r.timestamp = t;
  r.app_bytes = bytes;
  r.direction = dir;
  return r;
}

TEST(LoadAggregator, BinsPacketsByTime) {
  LoadAggregator agg(1.0);
  agg.OnPacket(MakeRecord(0.1, net::Direction::kClientToServer, 40));
  agg.OnPacket(MakeRecord(0.9, net::Direction::kClientToServer, 40));
  agg.OnPacket(MakeRecord(1.5, net::Direction::kServerToClient, 130));
  EXPECT_DOUBLE_EQ(agg.packets_in()[0], 2.0);
  EXPECT_DOUBLE_EQ(agg.packets_out()[1], 1.0);
}

TEST(LoadAggregator, WireBytesIncludeOverhead) {
  LoadAggregator agg(1.0, 0.0, 54);
  agg.OnPacket(MakeRecord(0.5, net::Direction::kClientToServer, 40));
  EXPECT_DOUBLE_EQ(agg.wire_bytes_in()[0], 94.0);
}

TEST(LoadAggregator, ZeroOverheadOption) {
  LoadAggregator agg(1.0, 0.0, 0);
  agg.OnPacket(MakeRecord(0.5, net::Direction::kClientToServer, 40));
  EXPECT_DOUBLE_EQ(agg.wire_bytes_in()[0], 40.0);
}

TEST(LoadAggregator, TotalsAreSumOfDirections) {
  LoadAggregator agg(1.0);
  agg.OnPacket(MakeRecord(0.1, net::Direction::kClientToServer, 40));
  agg.OnPacket(MakeRecord(0.2, net::Direction::kServerToClient, 130));
  const auto total = agg.packets_total();
  EXPECT_DOUBLE_EQ(total[0], 2.0);
  const auto bytes = agg.wire_bytes_total();
  EXPECT_DOUBLE_EQ(bytes[0], 40.0 + 130.0 + 2 * 54.0);
}

TEST(LoadAggregator, RateSeriesDividesByInterval) {
  LoadAggregator agg(0.5);
  agg.OnPacket(MakeRecord(0.1, net::Direction::kClientToServer, 40));
  agg.OnPacket(MakeRecord(0.2, net::Direction::kClientToServer, 40));
  EXPECT_DOUBLE_EQ(agg.packet_rate_in()[0], 4.0);  // 2 packets / 0.5 s
  EXPECT_DOUBLE_EQ(agg.packet_rate_total()[0], 4.0);
}

TEST(LoadAggregator, BandwidthSeriesInBitsPerSecond) {
  LoadAggregator agg(1.0, 0.0, 0);
  agg.OnPacket(MakeRecord(0.5, net::Direction::kServerToClient, 125));
  EXPECT_DOUBLE_EQ(agg.bandwidth_out_bps()[0], 1000.0);
  EXPECT_DOUBLE_EQ(agg.bandwidth_total_bps()[0], 1000.0);
  EXPECT_DOUBLE_EQ(agg.bandwidth_in_bps().Sum(), 0.0);
}

TEST(LoadAggregator, ExtendToPadsAllSeries) {
  LoadAggregator agg(1.0);
  agg.OnPacket(MakeRecord(0.5, net::Direction::kClientToServer, 40));
  agg.ExtendTo(10.0);
  EXPECT_EQ(agg.packets_in().size(), 10u);
  EXPECT_EQ(agg.packets_out().size(), 10u);
  EXPECT_EQ(agg.wire_bytes_out().size(), 10u);
  EXPECT_DOUBLE_EQ(agg.packets_in().Mean(), 0.1);
}

TEST(LoadAggregator, NonZeroStart) {
  LoadAggregator agg(60.0, 3600.0);
  agg.OnPacket(MakeRecord(3000.0, net::Direction::kClientToServer, 40));  // before start
  agg.OnPacket(MakeRecord(3660.0, net::Direction::kClientToServer, 40));
  EXPECT_DOUBLE_EQ(agg.packets_in().Sum(), 1.0);
  EXPECT_EQ(agg.packets_in().dropped_before_start(), 1u);
}

TEST(LoadAggregator, FineGrainedBinning) {
  // 10 ms bins, a burst at t = 0 and one packet at 25 ms.
  LoadAggregator agg(0.010);
  for (int i = 0; i < 18; ++i) {
    agg.OnPacket(MakeRecord(0.0001 * i, net::Direction::kServerToClient, 130));
  }
  agg.OnPacket(MakeRecord(0.025, net::Direction::kClientToServer, 40));
  EXPECT_DOUBLE_EQ(agg.packets_out()[0], 18.0);
  EXPECT_DOUBLE_EQ(agg.packets_in()[2], 1.0);
  // Rate in the burst bin: 1800 pps - the paper's Figure 6 spike height.
  EXPECT_DOUBLE_EQ(agg.packet_rate_out()[0], 1800.0);
}

}  // namespace
}  // namespace gametrace::trace
