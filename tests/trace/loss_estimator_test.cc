#include "trace/loss_estimator.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "router/nat_device.h"

namespace gametrace::trace {
namespace {

net::PacketRecord MakeRecord(std::uint32_t seq, net::Direction dir,
                             std::uint32_t ip = 0x0A000001, std::uint16_t port = 27005) {
  net::PacketRecord r;
  r.seq = seq;
  r.direction = dir;
  r.client_ip = net::Ipv4Address(ip);
  r.client_port = port;
  return r;
}

TEST(SeqGapLossEstimator, CompleteFlowHasNoLoss) {
  SeqGapLossEstimator est;
  for (std::uint32_t s = 1; s <= 100; ++s) {
    est.OnPacket(MakeRecord(s, net::Direction::kClientToServer));
  }
  const auto in = est.Estimate(net::Direction::kClientToServer);
  EXPECT_EQ(in.received, 100u);
  EXPECT_EQ(in.expected, 100u);
  EXPECT_EQ(in.lost(), 0u);
  EXPECT_DOUBLE_EQ(in.loss_rate(), 0.0);
  EXPECT_EQ(in.flows, 1u);
}

TEST(SeqGapLossEstimator, GapsCounted) {
  SeqGapLossEstimator est;
  for (std::uint32_t s = 1; s <= 100; ++s) {
    if (s % 10 == 0) continue;  // drop every 10th
    est.OnPacket(MakeRecord(s, net::Direction::kClientToServer));
  }
  const auto in = est.Estimate(net::Direction::kClientToServer);
  EXPECT_EQ(in.received, 90u);
  EXPECT_EQ(in.expected, 99u);  // 1..99 observed range (100 was dropped)
  EXPECT_EQ(in.lost(), 9u);
}

TEST(SeqGapLossEstimator, ReorderingIsNotLoss) {
  SeqGapLossEstimator est;
  for (std::uint32_t s : {3u, 1u, 2u, 5u, 4u}) {
    est.OnPacket(MakeRecord(s, net::Direction::kServerToClient));
  }
  const auto out = est.Estimate(net::Direction::kServerToClient);
  EXPECT_EQ(out.lost(), 0u);
}

TEST(SeqGapLossEstimator, DirectionsAndFlowsSeparated) {
  SeqGapLossEstimator est;
  est.OnPacket(MakeRecord(1, net::Direction::kClientToServer, 0x0A000001, 1000));
  est.OnPacket(MakeRecord(5, net::Direction::kClientToServer, 0x0A000001, 1000));
  est.OnPacket(MakeRecord(1, net::Direction::kServerToClient, 0x0A000001, 1000));
  est.OnPacket(MakeRecord(1, net::Direction::kClientToServer, 0x0A000002, 1000));
  const auto in = est.Estimate(net::Direction::kClientToServer);
  EXPECT_EQ(in.flows, 2u);
  EXPECT_EQ(in.expected, 6u);  // 5 for the gappy flow + 1
  EXPECT_EQ(in.received, 3u);
  const auto out = est.Estimate(net::Direction::kServerToClient);
  EXPECT_EQ(out.flows, 1u);
  EXPECT_EQ(out.lost(), 0u);
}

TEST(SeqGapLossEstimator, UnsequencedIgnored) {
  SeqGapLossEstimator est;
  est.OnPacket(MakeRecord(0, net::Direction::kClientToServer));  // handshake
  est.OnPacket(MakeRecord(1, net::Direction::kClientToServer));
  EXPECT_EQ(est.unsequenced_packets(), 1u);
  EXPECT_EQ(est.Estimate(net::Direction::kClientToServer).received, 1u);
}

// The headline capability: estimate the NAT device's loss from the
// *delivered* packet stream alone and match the device's own counters.
TEST(SeqGapLossEstimator, MatchesNatDeviceGroundTruth) {
  auto cfg = core::NatExperimentConfig::Defaults();
  cfg.duration = 300.0;
  cfg.game.trace_duration = 300.0;
  cfg.game.maps.map_duration = 400.0;

  sim::Simulator simulator;
  router::NatDevice nat(simulator, cfg.device);
  game::CsServer server(simulator, cfg.game, nat.injector());
  SeqGapLossEstimator est;
  nat.SetDeliverCallback([&](const net::PacketRecord& record, router::Segment) {
    est.OnPacket(record);
  });
  nat.Start();
  server.Start();
  simulator.RunUntil(cfg.duration);

  const double truth_in = nat.stats().loss_rate_incoming();
  const double est_in = est.Estimate(net::Direction::kClientToServer).loss_rate();
  // Sequence gaps see exactly the dropped sequenced packets; the device
  // counters also include connectionless traffic, so allow a small slack.
  EXPECT_NEAR(est_in, truth_in, 0.004);
  EXPECT_GT(est_in, 0.001);  // there *was* loss to estimate

  const double truth_out = nat.stats().loss_rate_outgoing();
  const double est_out = est.Estimate(net::Direction::kServerToClient).loss_rate();
  EXPECT_NEAR(est_out, truth_out, 0.004);
}

}  // namespace
}  // namespace gametrace::trace
