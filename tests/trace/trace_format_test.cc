#include "trace/trace_format.h"

#include <unistd.h>

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace gametrace::trace {
namespace {

class TraceFormatTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("gametrace_gtr_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".gtr"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
  net::ServerEndpoint server_;
};

net::PacketRecord MakeRecord(double t, std::uint16_t bytes,
                             net::Direction dir = net::Direction::kClientToServer,
                             net::PacketKind kind = net::PacketKind::kGameUpdate) {
  net::PacketRecord r;
  r.timestamp = t;
  r.client_ip = net::Ipv4Address(10, 7, 8, 9);
  r.client_port = 31337;
  r.app_bytes = bytes;
  r.direction = dir;
  r.kind = kind;
  return r;
}

TEST_F(TraceFormatTest, HeaderRoundTrip) {
  server_.ip = net::Ipv4Address(172, 16, 5, 5);
  server_.port = 27016;
  {
    TraceWriter writer(path_, server_);
    writer.Flush();
  }
  TraceReader reader(path_);
  EXPECT_EQ(reader.server().ip, server_.ip);
  EXPECT_EQ(reader.server().port, server_.port);
  EXPECT_FALSE(reader.Next().has_value());
}

TEST_F(TraceFormatTest, RecordRoundTripExact) {
  const net::PacketRecord original =
      MakeRecord(12345.678901, 237, net::Direction::kServerToClient, net::PacketKind::kDownload);
  {
    TraceWriter writer(path_, server_);
    writer.OnPacket(original);
    writer.Flush();
  }
  TraceReader reader(path_);
  const auto read = reader.Next();
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, original);  // bit-exact, including the double timestamp
}

TEST_F(TraceFormatTest, AllKindsAndDirectionsRoundTrip) {
  {
    TraceWriter writer(path_, server_);
    for (int kind = 0; kind <= 6; ++kind) {
      for (int dir = 0; dir <= 1; ++dir) {
        writer.OnPacket(MakeRecord(kind + dir * 0.5, static_cast<std::uint16_t>(10 * kind + 1),
                                   static_cast<net::Direction>(dir),
                                   static_cast<net::PacketKind>(kind)));
      }
    }
    writer.Flush();
  }
  TraceReader reader(path_);
  const auto records = reader.ReadAll();
  EXPECT_EQ(records.size(), 14u);
  for (const auto& r : records) {
    EXPECT_LE(static_cast<int>(r.kind), 6);
  }
}

TEST_F(TraceFormatTest, DrainStreamsIntoSink) {
  constexpr int kCount = 5000;
  {
    TraceWriter writer(path_, server_);
    for (int i = 0; i < kCount; ++i) {
      writer.OnPacket(MakeRecord(i * 0.05, static_cast<std::uint16_t>(i % 400)));
    }
    writer.Flush();
    EXPECT_EQ(writer.packets_written(), static_cast<std::uint64_t>(kCount));
  }
  TraceReader reader(path_);
  CountingSink counter;
  EXPECT_EQ(reader.Drain(counter), static_cast<std::uint64_t>(kCount));
  EXPECT_EQ(counter.packets(), static_cast<std::uint64_t>(kCount));
}

TEST_F(TraceFormatTest, BadMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "not a trace file at all";
  }
  EXPECT_THROW(TraceReader reader(path_), std::runtime_error);
}

TEST_F(TraceFormatTest, TruncatedRecordThrows) {
  {
    TraceWriter writer(path_, server_);
    writer.OnPacket(MakeRecord(1.0, 40));
    writer.Flush();
  }
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) - 5);
  TraceReader reader(path_);
  EXPECT_THROW((void)reader.Next(), std::runtime_error);
}

TEST_F(TraceFormatTest, MissingFileRejected) {
  EXPECT_THROW(TraceReader("/nonexistent/missing.gtr"), std::runtime_error);
  EXPECT_THROW(TraceWriter("/nonexistent/missing.gtr", server_), std::runtime_error);
}

TEST_F(TraceFormatTest, CompactFormatIsTwentyTwoBytesPerRecord) {
  constexpr int kCount = 100;
  {
    TraceWriter writer(path_, server_);
    for (int i = 0; i < kCount; ++i) writer.OnPacket(MakeRecord(i, 40));
    writer.Flush();
  }
  const auto size = std::filesystem::file_size(path_);
  EXPECT_EQ(size, 14u + 22u * kCount);  // 14-byte header + 22 B/record
}

}  // namespace
}  // namespace gametrace::trace
