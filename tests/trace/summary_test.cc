#include "trace/summary.h"

#include <gtest/gtest.h>

namespace gametrace::trace {
namespace {

net::PacketRecord MakeRecord(double t, net::Direction dir, std::uint16_t bytes,
                             net::PacketKind kind = net::PacketKind::kGameUpdate,
                             std::uint32_t ip = 0x0A000001) {
  net::PacketRecord r;
  r.timestamp = t;
  r.client_ip = net::Ipv4Address(ip);
  r.client_port = 27005;
  r.app_bytes = bytes;
  r.direction = dir;
  r.kind = kind;
  return r;
}

TEST(TraceSummary, EmptySummary) {
  TraceSummary s;
  EXPECT_EQ(s.total_packets(), 0u);
  EXPECT_DOUBLE_EQ(s.duration(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_packet_load(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_bps(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean_packet_size(), 0.0);
}

TEST(TraceSummary, DirectionalCounting) {
  TraceSummary s;
  s.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40));
  s.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer, 42));
  s.OnPacket(MakeRecord(2.0, net::Direction::kServerToClient, 130));
  EXPECT_EQ(s.packets_in(), 2u);
  EXPECT_EQ(s.packets_out(), 1u);
  EXPECT_EQ(s.app_bytes_in(), 82u);
  EXPECT_EQ(s.app_bytes_out(), 130u);
  EXPECT_DOUBLE_EQ(s.mean_packet_size_in(), 41.0);
  EXPECT_DOUBLE_EQ(s.mean_packet_size_out(), 130.0);
  EXPECT_NEAR(s.mean_packet_size(), 212.0 / 3.0, 1e-12);
}

TEST(TraceSummary, WireBytesIncludeOverhead) {
  TraceSummary s(54);
  s.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40));
  EXPECT_EQ(s.wire_bytes_in(), 94u);
  EXPECT_EQ(s.wire_bytes_total(), 94u);

  TraceSummary bare(0);
  bare.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40));
  EXPECT_EQ(bare.wire_bytes_total(), 40u);
}

TEST(TraceSummary, RatesUseObservedSpan) {
  TraceSummary s;
  s.OnPacket(MakeRecord(10.0, net::Direction::kClientToServer, 40));
  s.OnPacket(MakeRecord(20.0, net::Direction::kServerToClient, 40));
  EXPECT_DOUBLE_EQ(s.duration(), 10.0);
  EXPECT_DOUBLE_EQ(s.mean_packet_load(), 0.2);
  EXPECT_DOUBLE_EQ(s.mean_packet_load_in(), 0.1);
  EXPECT_DOUBLE_EQ(s.mean_packet_load_out(), 0.1);
}

TEST(TraceSummary, DurationOverridePinsDenominator) {
  TraceSummary s;
  s.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40));
  s.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer, 40));
  s.set_duration_override(100.0);
  EXPECT_DOUBLE_EQ(s.duration(), 100.0);
  EXPECT_DOUBLE_EQ(s.mean_packet_load(), 0.02);
}

TEST(TraceSummary, BandwidthMatchesBytes) {
  TraceSummary s(0);
  s.OnPacket(MakeRecord(0.0, net::Direction::kServerToClient, 125));
  s.OnPacket(MakeRecord(1.0, net::Direction::kServerToClient, 125));
  // 125 B over the 1 s span = 1000 bps... both packets count, span = 1 s.
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_bps(), 2000.0);
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_out_bps(), 2000.0);
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_in_bps(), 0.0);
}

TEST(TraceSummary, HandshakeCounting) {
  TraceSummary s;
  // Two attempts from one client; one accepted. One attempt from another,
  // rejected.
  s.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 44,
                        net::PacketKind::kConnectRequest, 0x0A000001));
  s.OnPacket(MakeRecord(0.1, net::Direction::kServerToClient, 32,
                        net::PacketKind::kConnectReject, 0x0A000001));
  s.OnPacket(MakeRecord(5.0, net::Direction::kClientToServer, 44,
                        net::PacketKind::kConnectRequest, 0x0A000001));
  s.OnPacket(MakeRecord(5.1, net::Direction::kServerToClient, 96,
                        net::PacketKind::kConnectAccept, 0x0A000001));
  s.OnPacket(MakeRecord(6.0, net::Direction::kClientToServer, 44,
                        net::PacketKind::kConnectRequest, 0x0A000002));
  s.OnPacket(MakeRecord(6.1, net::Direction::kServerToClient, 32,
                        net::PacketKind::kConnectReject, 0x0A000002));
  EXPECT_EQ(s.attempted_connections(), 3u);
  EXPECT_EQ(s.established_connections(), 1u);
  EXPECT_EQ(s.refused_connections(), 2u);
  EXPECT_EQ(s.unique_clients_attempting(), 2u);
  EXPECT_EQ(s.unique_clients_establishing(), 1u);
}

TEST(TraceSummary, SizeStatsExposeSpread) {
  TraceSummary s;
  for (std::uint16_t b : {30, 40, 50}) {
    s.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, b));
  }
  EXPECT_DOUBLE_EQ(s.size_stats_in().mean(), 40.0);
  EXPECT_DOUBLE_EQ(s.size_stats_in().min(), 30.0);
  EXPECT_DOUBLE_EQ(s.size_stats_in().max(), 50.0);
}

}  // namespace
}  // namespace gametrace::trace
