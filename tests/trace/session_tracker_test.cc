#include "trace/session_tracker.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::trace {
namespace {

net::PacketRecord MakeRecord(double t, std::uint32_t ip, std::uint16_t port,
                             net::Direction dir = net::Direction::kClientToServer,
                             std::uint16_t bytes = 40,
                             net::PacketKind kind = net::PacketKind::kGameUpdate) {
  net::PacketRecord r;
  r.timestamp = t;
  r.client_ip = net::Ipv4Address(ip);
  r.client_port = port;
  r.app_bytes = bytes;
  r.direction = dir;
  r.kind = kind;
  return r;
}

TEST(SessionTracker, Validation) {
  EXPECT_THROW(SessionTracker(0.0), gametrace::ContractViolation);
  EXPECT_THROW(SessionTracker(-5.0), gametrace::ContractViolation);
}

TEST(SessionTracker, SingleSessionAccumulates) {
  SessionTracker tracker(30.0);
  for (int i = 0; i < 100; ++i) {
    tracker.OnPacket(MakeRecord(i * 0.05, 0x0A000001, 27005));
  }
  tracker.OnPacket(MakeRecord(2.0, 0x0A000001, 27005, net::Direction::kServerToClient, 130));
  EXPECT_EQ(tracker.open_sessions(), 1u);
  const auto sessions = tracker.Finish();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_EQ(sessions[0].packets_in, 100u);
  EXPECT_EQ(sessions[0].packets_out, 1u);
  EXPECT_EQ(sessions[0].app_bytes_in, 4000u);
  EXPECT_EQ(sessions[0].app_bytes_out, 130u);
  EXPECT_DOUBLE_EQ(sessions[0].start, 0.0);
  EXPECT_NEAR(sessions[0].duration(), 4.95, 1e-9);
}

TEST(SessionTracker, GapSplitsSessions) {
  SessionTracker tracker(30.0);
  tracker.OnPacket(MakeRecord(0.0, 0x0A000001, 27005));
  tracker.OnPacket(MakeRecord(10.0, 0x0A000001, 27005));
  tracker.OnPacket(MakeRecord(100.0, 0x0A000001, 27005));  // > 30 s gap
  const auto sessions = tracker.Finish();
  ASSERT_EQ(sessions.size(), 2u);
  EXPECT_DOUBLE_EQ(sessions[0].end, 10.0);
  EXPECT_DOUBLE_EQ(sessions[1].start, 100.0);
}

TEST(SessionTracker, GapExactlyAtTimeoutDoesNotSplit) {
  SessionTracker tracker(30.0);
  tracker.OnPacket(MakeRecord(0.0, 0x0A000001, 27005));
  tracker.OnPacket(MakeRecord(30.0, 0x0A000001, 27005));
  EXPECT_EQ(tracker.Finish().size(), 1u);
}

TEST(SessionTracker, DifferentPortsAreDifferentSessions) {
  SessionTracker tracker(30.0);
  tracker.OnPacket(MakeRecord(0.0, 0x0A000001, 27005));
  tracker.OnPacket(MakeRecord(0.1, 0x0A000001, 27006));
  EXPECT_EQ(tracker.open_sessions(), 2u);
  EXPECT_EQ(tracker.unique_clients(), 1u);  // same IP
}

TEST(SessionTracker, UniqueClientsByIp) {
  SessionTracker tracker(30.0);
  tracker.OnPacket(MakeRecord(0.0, 0x0A000001, 27005));
  tracker.OnPacket(MakeRecord(0.1, 0x0A000002, 27005));
  tracker.OnPacket(MakeRecord(0.2, 0x0A000003, 27005));
  EXPECT_EQ(tracker.unique_clients(), 3u);
}

TEST(SessionTracker, RejectHandshakeIgnored) {
  SessionTracker tracker(30.0);
  tracker.OnPacket(MakeRecord(0.0, 0x0A000001, 27005, net::Direction::kServerToClient, 32,
                              net::PacketKind::kConnectReject));
  EXPECT_EQ(tracker.open_sessions(), 0u);
  EXPECT_TRUE(tracker.Finish().empty());
}

TEST(SessionTracker, SessionsSortedByStart) {
  SessionTracker tracker(5.0);
  tracker.OnPacket(MakeRecord(0.0, 0x0A000001, 1));
  tracker.OnPacket(MakeRecord(1.0, 0x0A000002, 2));
  tracker.OnPacket(MakeRecord(100.0, 0x0A000001, 1));
  const auto sessions = tracker.Finish();
  ASSERT_EQ(sessions.size(), 3u);
  EXPECT_LE(sessions[0].start, sessions[1].start);
  EXPECT_LE(sessions[1].start, sessions[2].start);
}

TEST(Session, MeanBandwidthIncludesOverhead) {
  Session s;
  s.start = 0.0;
  s.end = 10.0;
  s.packets_in = 100;
  s.app_bytes_in = 4000;
  // (4000 + 100*54) * 8 / 10 = 7520 bps.
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_bps(), 7520.0);
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_bps(0), 3200.0);
}

TEST(Session, ZeroDurationBandwidthIsZero) {
  Session s;
  s.start = 5.0;
  s.end = 5.0;
  s.packets_in = 1;
  s.app_bytes_in = 40;
  EXPECT_DOUBLE_EQ(s.mean_bandwidth_bps(), 0.0);
}

TEST(SessionTracker, BandwidthHistogramFiltersShortSessions) {
  std::vector<Session> sessions(2);
  sessions[0].start = 0.0;
  sessions[0].end = 10.0;  // too short (min 30 s)
  sessions[0].packets_in = 100;
  sessions[1].start = 0.0;
  sessions[1].end = 100.0;
  sessions[1].packets_in = 1000;
  sessions[1].app_bytes_in = 40000;
  const auto hist = SessionTracker::BandwidthHistogram(sessions, 30.0);
  EXPECT_EQ(hist.total(), 1u);
}

TEST(SessionTracker, ModemSessionLandsNearModemRate) {
  // A modem player: ~24 pps in at 40 B, 20 pps out at 130 B, 60 s session.
  SessionTracker tracker(30.0);
  for (int i = 0; i < 60 * 24; ++i) {
    tracker.OnPacket(MakeRecord(i / 24.0, 0x0A000001, 27005,
                                net::Direction::kClientToServer, 40));
  }
  for (int i = 0; i < 60 * 20; ++i) {
    tracker.OnPacket(MakeRecord(i / 20.0, 0x0A000001, 27005,
                                net::Direction::kServerToClient, 130));
  }
  const auto sessions = tracker.Finish();
  ASSERT_EQ(sessions.size(), 1u);
  const double kbps = sessions[0].mean_bandwidth_bps() / 1e3;
  EXPECT_GT(kbps, 35.0);
  EXPECT_LT(kbps, 56.0);  // pegged at or below the 56k modem barrier
}

}  // namespace
}  // namespace gametrace::trace
