// Merge correctness for the trace-layer sinks: a merged accumulator must
// equal one accumulator fed the union of the shards' packet streams, and
// ShardNamespaceSink must keep shard flows disjoint.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/rng.h"
#include "trace/aggregator.h"
#include "trace/capture.h"
#include "trace/session_tracker.h"
#include "trace/summary.h"

#include "core/check.h"

namespace gametrace::trace {
namespace {

net::PacketRecord MakeRecord(double t, net::Direction dir, std::uint16_t bytes,
                             net::PacketKind kind = net::PacketKind::kGameUpdate,
                             std::uint32_t ip = 0x0A000001, std::uint16_t port = 27005) {
  net::PacketRecord r;
  r.timestamp = t;
  r.client_ip = net::Ipv4Address(ip);
  r.client_port = port;
  r.app_bytes = bytes;
  r.direction = dir;
  r.kind = kind;
  return r;
}

// A small synthetic shard stream: handshakes plus game updates from a few
// clients, deterministic per seed.
std::vector<net::PacketRecord> ShardStream(std::uint64_t seed, std::size_t packets) {
  sim::Rng rng(seed);
  std::vector<net::PacketRecord> records;
  records.reserve(packets);
  double t = rng.NextDouble();
  for (std::size_t i = 0; i < packets; ++i) {
    t += 0.02 * rng.NextDouble();
    const std::uint32_t ip = 0x0A000001 + static_cast<std::uint32_t>(rng.NextBelow(5));
    const auto dir = (rng.NextBelow(2) == 0) ? net::Direction::kClientToServer
                                             : net::Direction::kServerToClient;
    auto kind = net::PacketKind::kGameUpdate;
    const auto roll = rng.NextBelow(40);
    if (roll == 0) kind = net::PacketKind::kConnectRequest;
    if (roll == 1) kind = net::PacketKind::kConnectAccept;
    if (roll == 2) kind = net::PacketKind::kConnectReject;
    records.push_back(MakeRecord(t, dir, static_cast<std::uint16_t>(20 + rng.NextBelow(200)),
                                 kind, ip));
  }
  return records;
}

TEST(TraceSummaryMerge, EqualsSinglePassOverInterleavedStream) {
  const auto a_records = ShardStream(1, 700);
  const auto b_records = ShardStream(2, 450);

  // The reference single-pass summary sees the union in time order, as a
  // capture at a shared vantage point would.
  std::vector<net::PacketRecord> interleaved = a_records;
  interleaved.insert(interleaved.end(), b_records.begin(), b_records.end());
  std::sort(interleaved.begin(), interleaved.end(),
            [](const net::PacketRecord& x, const net::PacketRecord& y) {
              return x.timestamp < y.timestamp;
            });

  TraceSummary whole;
  TraceSummary a;
  TraceSummary b;
  for (const auto& r : interleaved) whole.OnPacket(r);
  for (const auto& r : a_records) a.OnPacket(r);
  for (const auto& r : b_records) b.OnPacket(r);
  a.Merge(b);

  EXPECT_EQ(a.total_packets(), whole.total_packets());
  EXPECT_EQ(a.packets_in(), whole.packets_in());
  EXPECT_EQ(a.packets_out(), whole.packets_out());
  EXPECT_EQ(a.app_bytes_in(), whole.app_bytes_in());
  EXPECT_EQ(a.app_bytes_out(), whole.app_bytes_out());
  EXPECT_EQ(a.wire_bytes_total(), whole.wire_bytes_total());
  EXPECT_EQ(a.attempted_connections(), whole.attempted_connections());
  EXPECT_EQ(a.established_connections(), whole.established_connections());
  EXPECT_EQ(a.refused_connections(), whole.refused_connections());
  EXPECT_EQ(a.unique_clients_attempting(), whole.unique_clients_attempting());
  EXPECT_EQ(a.unique_clients_establishing(), whole.unique_clients_establishing());
  EXPECT_DOUBLE_EQ(a.first_packet_time(), whole.first_packet_time());
  EXPECT_DOUBLE_EQ(a.last_packet_time(), whole.last_packet_time());
  EXPECT_NEAR(a.mean_packet_size_in(), whole.mean_packet_size_in(), 1e-9);
  EXPECT_NEAR(a.size_stats_in().variance(), whole.size_stats_in().variance(), 1e-6);
}

TEST(TraceSummaryMerge, EmptyAndOverheadMismatch) {
  TraceSummary a;
  a.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer, 40));
  TraceSummary empty;
  a.Merge(empty);
  EXPECT_EQ(a.total_packets(), 1u);
  EXPECT_DOUBLE_EQ(a.first_packet_time(), 1.0);

  TraceSummary into_empty;
  into_empty.Merge(a);
  EXPECT_EQ(into_empty.total_packets(), 1u);
  EXPECT_DOUBLE_EQ(into_empty.first_packet_time(), 1.0);

  TraceSummary other_overhead(10);
  EXPECT_THROW(a.Merge(other_overhead), gametrace::ContractViolation);
}

TEST(LoadAggregatorMerge, EqualsSinglePassOverConcatenation) {
  const auto a_records = ShardStream(3, 600);
  const auto b_records = ShardStream(4, 800);

  LoadAggregator whole(0.05);
  LoadAggregator a(0.05);
  LoadAggregator b(0.05);
  for (const auto& r : a_records) {
    whole.OnPacket(r);
    a.OnPacket(r);
  }
  for (const auto& r : b_records) {
    whole.OnPacket(r);
    b.OnPacket(r);
  }
  a.Merge(b);

  ASSERT_EQ(a.packets_in().size(), whole.packets_in().size());
  EXPECT_EQ(a.packets_in().values(), whole.packets_in().values());
  EXPECT_EQ(a.packets_out().values(), whole.packets_out().values());
  EXPECT_EQ(a.wire_bytes_in().values(), whole.wire_bytes_in().values());
  EXPECT_EQ(a.wire_bytes_out().values(), whole.wire_bytes_out().values());
}

TEST(LoadAggregatorMerge, RejectsMismatchedGeometry) {
  LoadAggregator a(0.05);
  LoadAggregator interval(0.10);
  LoadAggregator overhead(0.05, 0.0, 10);
  EXPECT_THROW(a.Merge(interval), gametrace::ContractViolation);
  EXPECT_THROW(a.Merge(overhead), gametrace::ContractViolation);
}

TEST(SessionTrackerMerge, DisjointShardsConcatenate) {
  SessionTracker a(30.0);
  SessionTracker b(30.0);
  // Shard A: two clients; shard B: two clients in a different namespace.
  for (int i = 0; i < 10; ++i) {
    a.OnPacket(MakeRecord(i * 1.0, net::Direction::kClientToServer, 40,
                          net::PacketKind::kGameUpdate, 0x0A000001));
    a.OnPacket(MakeRecord(i * 1.0 + 0.5, net::Direction::kServerToClient, 130,
                          net::PacketKind::kGameUpdate, 0x0A000002));
    b.OnPacket(MakeRecord(i * 1.0, net::Direction::kClientToServer, 40,
                          net::PacketKind::kGameUpdate, 0x0B000001));
    b.OnPacket(MakeRecord(i * 1.0 + 0.5, net::Direction::kServerToClient, 130,
                          net::PacketKind::kGameUpdate, 0x0B000002));
  }
  a.Merge(std::move(b));
  EXPECT_EQ(a.open_sessions(), 4u);
  EXPECT_EQ(a.unique_clients(), 4u);
  const auto sessions = a.Finish();
  EXPECT_EQ(sessions.size(), 4u);
  std::uint64_t packets = 0;
  for (const auto& s : sessions) packets += s.packets();
  EXPECT_EQ(packets, 40u);
}

TEST(SessionTrackerMerge, CollidingEndpointFoldsIntoOneSession) {
  SessionTracker a(30.0);
  SessionTracker b(30.0);
  a.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40));
  a.OnPacket(MakeRecord(5.0, net::Direction::kClientToServer, 40));
  b.OnPacket(MakeRecord(2.0, net::Direction::kServerToClient, 130));
  b.OnPacket(MakeRecord(8.0, net::Direction::kServerToClient, 130));
  a.Merge(std::move(b));
  const auto sessions = a.Finish();
  ASSERT_EQ(sessions.size(), 1u);
  EXPECT_DOUBLE_EQ(sessions[0].start, 0.0);
  EXPECT_DOUBLE_EQ(sessions[0].end, 8.0);
  EXPECT_EQ(sessions[0].packets_in, 2u);
  EXPECT_EQ(sessions[0].packets_out, 2u);
}

TEST(SessionTrackerMerge, RejectsTimeoutMismatch) {
  SessionTracker a(30.0);
  SessionTracker b(10.0);
  EXPECT_THROW(a.Merge(std::move(b)), gametrace::ContractViolation);
}

TEST(ShardNamespaceSink, RewritesClientAddressPerShard) {
  VectorSink captured;
  ShardNamespaceSink shard3(3, captured);
  shard3.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer, 40,
                             net::PacketKind::kGameUpdate, 0x0A001234, 4242));
  ASSERT_EQ(captured.records().size(), 1u);
  const auto& r = captured.records()[0];
  EXPECT_EQ(r.client_ip.value(), 0x0D001234u);  // 10.x -> 13.x for shard 3
  EXPECT_EQ(r.client_port, 4242);
  EXPECT_EQ(r.app_bytes, 40);
  EXPECT_DOUBLE_EQ(r.timestamp, 1.0);

  VectorSink base;
  ShardNamespaceSink shard0(0, base);
  shard0.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer, 40,
                             net::PacketKind::kGameUpdate, 0x0A001234));
  EXPECT_EQ(base.records()[0].client_ip.value(), 0x0A001234u);  // shard 0 untouched
}

TEST(ShardNamespaceSink, ExplicitShiftAppliesArbitraryPackedOffsets) {
  // The fleet's packed namespace hands the sink a precomputed shift: top
  // octet plus a sub-namespace offset in the host bits the identity pool
  // leaves unused (game::ShardIpShift). The sink just adds it.
  VectorSink captured;
  ShardNamespaceSink packed(ShardNamespaceSink::ExplicitShift{(3u << 24) | 7u}, captured);
  packed.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer, 40,
                             net::PacketKind::kGameUpdate, 0x0A001200, 4242));
  ASSERT_EQ(captured.records().size(), 1u);
  EXPECT_EQ(captured.records()[0].client_ip.value(), 0x0D001207u);
  EXPECT_EQ(packed.shard_shift(), (3u << 24) | 7u);

  // An explicit shift equal to the classic per-octet one behaves exactly
  // like the shard-id constructor.
  VectorSink classic;
  ShardNamespaceSink by_id(3, classic);
  EXPECT_EQ(by_id.shard_shift(), 3u << 24);
}

TEST(ShardNamespaceSink, DistinctShardsNeverCollide) {
  // Identical per-shard streams stay disjoint after namespacing, so a merged
  // tracker sees shards * clients sessions.
  SessionTracker merged(30.0);
  for (std::uint32_t shard = 0; shard < 4; ++shard) {
    SessionTracker tracker(30.0);
    ShardNamespaceSink ns(shard, tracker);
    for (int i = 0; i < 6; ++i) {
      ns.OnPacket(MakeRecord(i * 1.0, net::Direction::kClientToServer, 40,
                             net::PacketKind::kGameUpdate, 0x0A000001 + (i % 2)));
    }
    merged.Merge(std::move(tracker));
  }
  EXPECT_EQ(merged.Finish().size(), 8u);
}

}  // namespace
}  // namespace gametrace::trace
