// Property tests for the columnar delivery tier (capture.h OnColumns) and
// the chain-fusion compiler (fused_chain.h): for every sink, a random
// record stream columnised at random batch boundaries must produce results
// bit-identical to the scalar per-packet path, and a fused chain must
// produce results bit-identical to the unfused composition it replaced.
// Doubles are compared with EXPECT_EQ (exact equality) - the contract is
// bit-identity, not approximation.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "net/packet_batch.h"
#include "sim/rng.h"
#include "trace/aggregator.h"
#include "trace/capture.h"
#include "trace/filter.h"
#include "trace/fused_chain.h"
#include "trace/session_tracker.h"
#include "trace/summary.h"

namespace gametrace::trace {
namespace {

// Mirrors the stream generator of batch_property_test.cc: small endpoint
// pool, mostly game updates with occasional handshakes, near-monotone
// timestamps with rare idle gaps long enough to trip the session timeout.
std::vector<net::PacketRecord> RandomStream(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed);
  std::vector<net::PacketRecord> out;
  out.reserve(n);
  constexpr std::size_t kClients = 8;
  std::uint32_t seq_in[kClients] = {};
  std::uint32_t seq_out[kClients] = {};
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u = rng.NextDouble();
    t += u < 0.997 ? 0.002 * rng.NextDouble() : 31.0 + 10.0 * rng.NextDouble();

    const auto c = static_cast<std::uint32_t>(rng.NextBelow(kClients));
    net::PacketRecord r;
    r.timestamp = t;
    r.client_ip = net::Ipv4Address((10u << 24) | (c + 1));
    r.client_port = static_cast<std::uint16_t>(30000 + c);
    r.app_bytes = static_cast<std::uint16_t>(20 + rng.NextBelow(400));
    r.direction = rng.NextBelow(3) == 0 ? net::Direction::kClientToServer
                                        : net::Direction::kServerToClient;
    const std::uint64_t k = rng.NextBelow(100);
    if (k < 92) {
      r.kind = net::PacketKind::kGameUpdate;
      r.seq = r.direction == net::Direction::kClientToServer ? ++seq_in[c] : ++seq_out[c];
    } else if (k < 94) {
      r.kind = net::PacketKind::kConnectRequest;
      r.direction = net::Direction::kClientToServer;
    } else if (k < 96) {
      r.kind = net::PacketKind::kConnectAccept;
      r.direction = net::Direction::kServerToClient;
    } else if (k < 97) {
      r.kind = net::PacketKind::kConnectReject;
      r.direction = net::Direction::kServerToClient;
    } else if (k < 98) {
      r.kind = net::PacketKind::kDisconnect;
      r.direction = net::Direction::kClientToServer;
    } else {
      r.kind = net::PacketKind::kChat;
      r.seq = r.direction == net::Direction::kClientToServer ? ++seq_in[c] : ++seq_out[c];
    }
    out.push_back(r);
  }
  return out;
}

// Delivers the stream as columnar batches split at random boundaries
// (lengths 1-8, with occasional empty batches interleaved).
void FeedRandomColumns(const std::vector<net::PacketRecord>& records, std::uint64_t seed,
                       CaptureSink& sink) {
  sim::Rng rng(seed);
  const std::span<const net::PacketRecord> all(records);
  net::ColumnarBatch columns;
  std::size_t i = 0;
  while (i < records.size()) {
    if (rng.NextBelow(16) == 0) {
      columns.Clear();
      sink.OnColumns(columns.View());  // empty batch
    }
    const std::size_t len = std::min<std::size_t>(1 + rng.NextBelow(8), records.size() - i);
    columns.Clear();
    columns.Append(all.subspan(i, len));
    sink.OnColumns(columns.View());
    i += len;
  }
}

void FeedScalar(const std::vector<net::PacketRecord>& records, CaptureSink& sink) {
  for (const net::PacketRecord& r : records) sink.OnPacket(r);
}

void ExpectSeriesIdentical(const stats::TimeSeries& a, const stats::TimeSeries& b) {
  EXPECT_EQ(a.start_time(), b.start_time());
  EXPECT_EQ(a.interval(), b.interval());
  EXPECT_EQ(a.dropped_before_start(), b.dropped_before_start());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.values(), b.values());
}

void ExpectHistogramIdentical(const stats::Histogram& a, const stats::Histogram& b) {
  ASSERT_EQ(a.bin_count(), b.bin_count());
  for (std::size_t i = 0; i < a.bin_count(); ++i) EXPECT_EQ(a.count(i), b.count(i));
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  EXPECT_EQ(a.total(), b.total());
}

void ExpectSummaryIdentical(const TraceSummary& a, const TraceSummary& b) {
  EXPECT_EQ(a.packets_in(), b.packets_in());
  EXPECT_EQ(a.packets_out(), b.packets_out());
  EXPECT_EQ(a.app_bytes_in(), b.app_bytes_in());
  EXPECT_EQ(a.app_bytes_out(), b.app_bytes_out());
  EXPECT_EQ(a.wire_bytes_total(), b.wire_bytes_total());
  EXPECT_EQ(a.attempted_connections(), b.attempted_connections());
  EXPECT_EQ(a.established_connections(), b.established_connections());
  EXPECT_EQ(a.refused_connections(), b.refused_connections());
  EXPECT_EQ(a.unique_clients_attempting(), b.unique_clients_attempting());
  EXPECT_EQ(a.unique_clients_establishing(), b.unique_clients_establishing());
  EXPECT_EQ(a.first_packet_time(), b.first_packet_time());
  EXPECT_EQ(a.last_packet_time(), b.last_packet_time());
  EXPECT_EQ(a.size_stats_in().count(), b.size_stats_in().count());
  EXPECT_EQ(a.size_stats_in().mean(), b.size_stats_in().mean());
  EXPECT_EQ(a.size_stats_in().variance(), b.size_stats_in().variance());
  EXPECT_EQ(a.size_stats_in().min(), b.size_stats_in().min());
  EXPECT_EQ(a.size_stats_in().max(), b.size_stats_in().max());
  EXPECT_EQ(a.size_stats_out().count(), b.size_stats_out().count());
  EXPECT_EQ(a.size_stats_out().mean(), b.size_stats_out().mean());
  EXPECT_EQ(a.size_stats_out().variance(), b.size_stats_out().variance());
  EXPECT_EQ(a.size_stats_out().min(), b.size_stats_out().min());
  EXPECT_EQ(a.size_stats_out().max(), b.size_stats_out().max());
}

void ExpectSessionsIdentical(const std::vector<Session>& a, const std::vector<Session>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client_ip, b[i].client_ip);
    EXPECT_EQ(a[i].client_port, b[i].client_port);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].packets_in, b[i].packets_in);
    EXPECT_EQ(a[i].packets_out, b[i].packets_out);
    EXPECT_EQ(a[i].app_bytes_in, b[i].app_bytes_in);
    EXPECT_EQ(a[i].app_bytes_out, b[i].app_bytes_out);
  }
}

constexpr std::size_t kStreamLen = 20000;

// ---- SoA round-trip ----------------------------------------------------

TEST(PacketBatch, RecordRoundTripIsExact) {
  const auto records = RandomStream(40, 512);
  net::ColumnarBatch columns;
  columns.Append(records);
  const net::PacketBatch view = columns.View();
  ASSERT_EQ(view.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(view.RecordAt(i), records[i]);
  }
  std::vector<net::PacketRecord> back;
  view.MaterializeInto(back);
  EXPECT_EQ(back, records);
}

TEST(PacketBatch, PushFromCopiesSingleRows) {
  const auto records = RandomStream(41, 256);
  net::ColumnarBatch all;
  all.Append(records);
  net::ColumnarBatch odd;
  for (std::size_t i = 1; i < records.size(); i += 2) odd.PushFrom(all.View(), i);
  const net::PacketBatch view = odd.View();
  ASSERT_EQ(view.size(), records.size() / 2);
  for (std::size_t i = 0; i < view.size(); ++i) {
    EXPECT_EQ(view.RecordAt(i), records[2 * i + 1]);
  }
}

// ---- Per-sink columnar <-> scalar identity ------------------------------

TEST(ColumnarProperty, CountingSinkIdentical) {
  const auto records = RandomStream(41, kStreamLen);
  CountingSink scalar, columnar;
  FeedScalar(records, scalar);
  FeedRandomColumns(records, 141, columnar);
  EXPECT_EQ(scalar.packets(), columnar.packets());
  EXPECT_EQ(scalar.packets_in(), columnar.packets_in());
  EXPECT_EQ(scalar.packets_out(), columnar.packets_out());
  EXPECT_EQ(scalar.app_bytes(), columnar.app_bytes());
}

TEST(ColumnarProperty, VectorSinkIdentical) {
  const auto records = RandomStream(42, kStreamLen);
  VectorSink scalar, columnar;
  FeedScalar(records, scalar);
  FeedRandomColumns(records, 142, columnar);
  EXPECT_EQ(scalar.records(), columnar.records());
}

TEST(ColumnarProperty, LoadAggregatorIdentical) {
  const auto records = RandomStream(43, kStreamLen);
  LoadAggregator scalar(60.0), columnar(60.0);
  FeedScalar(records, scalar);
  FeedRandomColumns(records, 143, columnar);
  ExpectSeriesIdentical(scalar.packets_in(), columnar.packets_in());
  ExpectSeriesIdentical(scalar.packets_out(), columnar.packets_out());
  ExpectSeriesIdentical(scalar.wire_bytes_in(), columnar.wire_bytes_in());
  ExpectSeriesIdentical(scalar.wire_bytes_out(), columnar.wire_bytes_out());
}

TEST(ColumnarProperty, TraceSummaryIdentical) {
  const auto records = RandomStream(44, kStreamLen);
  TraceSummary scalar, columnar;
  FeedScalar(records, scalar);
  FeedRandomColumns(records, 144, columnar);
  ExpectSummaryIdentical(scalar, columnar);
}

TEST(ColumnarProperty, SessionTrackerIdentical) {
  const auto records = RandomStream(45, kStreamLen);
  SessionTracker scalar(30.0), columnar(30.0);
  FeedScalar(records, scalar);
  FeedRandomColumns(records, 145, columnar);
  EXPECT_EQ(scalar.open_sessions(), columnar.open_sessions());
  EXPECT_EQ(scalar.closed_sessions(), columnar.closed_sessions());
  EXPECT_EQ(scalar.unique_clients(), columnar.unique_clients());
  ExpectSessionsIdentical(scalar.Finish(), columnar.Finish());
}

TEST(ColumnarProperty, FilterSinkIdentical) {
  const auto records = RandomStream(46, kStreamLen);
  VectorSink scalar_out, columnar_out;
  FilterSink scalar_f(DirectionIs(net::Direction::kClientToServer), scalar_out);
  FilterSink columnar_f(DirectionIs(net::Direction::kClientToServer), columnar_out);
  FeedScalar(records, scalar_f);
  FeedRandomColumns(records, 146, columnar_f);
  EXPECT_EQ(scalar_f.passed(), columnar_f.passed());
  EXPECT_EQ(scalar_f.dropped(), columnar_f.dropped());
  EXPECT_EQ(scalar_out.records(), columnar_out.records());
}

TEST(ColumnarProperty, ShardNamespaceThroughTeeIdentical) {
  const auto records = RandomStream(47, kStreamLen);
  VectorSink scalar_out, columnar_out;
  CountingSink scalar_count, columnar_count;
  TeeSink scalar_tee, columnar_tee;
  scalar_tee.Attach(scalar_out);
  scalar_tee.Attach(scalar_count);
  columnar_tee.Attach(columnar_out);
  columnar_tee.Attach(columnar_count);
  ShardNamespaceSink scalar_ns(7, scalar_tee);
  ShardNamespaceSink columnar_ns(7, columnar_tee);
  FeedScalar(records, scalar_ns);
  FeedRandomColumns(records, 147, columnar_ns);
  EXPECT_EQ(scalar_out.records(), columnar_out.records());
  EXPECT_EQ(scalar_count.packets(), columnar_count.packets());
  ASSERT_FALSE(columnar_out.records().empty());
  EXPECT_EQ(columnar_out.records()[0].client_ip.value() >> 24, 17u);
}

TEST(ColumnarProperty, CharacterizerReportIdentical) {
  const auto records = RandomStream(48, kStreamLen);
  core::CharacterizationOptions options;
  options.vt_window = 600.0;
  core::Characterizer scalar(options), columnar(options);
  FeedScalar(records, scalar);
  FeedRandomColumns(records, 148, columnar);
  auto ra = scalar.Finish(records.back().timestamp);
  auto rb = columnar.Finish(records.back().timestamp);
  ExpectSummaryIdentical(ra.summary, rb.summary);
  ExpectSeriesIdentical(ra.minute_packets_in, rb.minute_packets_in);
  ExpectSeriesIdentical(ra.minute_packets_out, rb.minute_packets_out);
  ExpectSeriesIdentical(ra.minute_bytes_in, rb.minute_bytes_in);
  ExpectSeriesIdentical(ra.minute_bytes_out, rb.minute_bytes_out);
  ExpectSeriesIdentical(ra.vt_base_packets, rb.vt_base_packets);
  ExpectSessionsIdentical(ra.sessions, rb.sessions);
  ExpectHistogramIdentical(ra.session_bandwidth, rb.session_bandwidth);
  ExpectHistogramIdentical(ra.size_total, rb.size_total);
  ExpectHistogramIdentical(ra.size_in, rb.size_in);
  ExpectHistogramIdentical(ra.size_out, rb.size_out);
}

// A sink with no columnar kernel of its own must be served correctly by the
// base-class bridge (materialise -> OnBatch -> OnPacket).
TEST(ColumnarProperty, DefaultBridgeSinkIdentical) {
  class PacketOnlySink final : public CaptureSink {
   public:
    void OnPacket(const net::PacketRecord& record) override {
      sum_bytes += record.app_bytes;
      sum_seq += record.seq;
      ++count;
    }
    std::uint64_t sum_bytes = 0;
    std::uint64_t sum_seq = 0;
    std::uint64_t count = 0;
  };
  const auto records = RandomStream(49, kStreamLen);
  PacketOnlySink scalar, columnar;
  FeedScalar(records, scalar);
  FeedRandomColumns(records, 149, columnar);
  EXPECT_EQ(scalar.count, columnar.count);
  EXPECT_EQ(scalar.sum_bytes, columnar.sum_bytes);
  EXPECT_EQ(scalar.sum_seq, columnar.sum_seq);
}

// ---- Chain fusion -------------------------------------------------------

struct Chain {
  TraceSummary summary;
  LoadAggregator agg{60.0};
  SessionTracker sessions{30.0};
  CountingSink counting;
  VectorSink vec;  // generic terminal: exercises the virtual fallback
  TeeSink tee;
  std::unique_ptr<ShardNamespaceSink> ns;

  explicit Chain(std::uint32_t shard) {
    tee.Attach(summary);
    tee.Attach(agg);
    tee.Attach(sessions);
    tee.Attach(counting);
    tee.Attach(vec);
    ns = std::make_unique<ShardNamespaceSink>(shard, tee);
  }
};

TEST(FusedChain, ReportsIdenticalToUnfusedChain) {
  const auto records = RandomStream(50, kStreamLen);
  Chain unfused(5), fused_sinks(5);
  const std::unique_ptr<FusedChain> fused = FuseChain(*fused_sinks.ns);
  ASSERT_NE(fused, nullptr);
  FeedRandomColumns(records, 150, *unfused.ns);
  FeedRandomColumns(records, 150, *fused);
  ExpectSummaryIdentical(unfused.summary, fused_sinks.summary);
  ExpectSeriesIdentical(unfused.agg.packets_in(), fused_sinks.agg.packets_in());
  ExpectSeriesIdentical(unfused.agg.wire_bytes_out(), fused_sinks.agg.wire_bytes_out());
  ExpectSessionsIdentical(unfused.sessions.Finish(), fused_sinks.sessions.Finish());
  EXPECT_EQ(unfused.counting.packets(), fused_sinks.counting.packets());
  EXPECT_EQ(unfused.counting.app_bytes(), fused_sinks.counting.app_bytes());
  EXPECT_EQ(unfused.vec.records(), fused_sinks.vec.records());
  // The namespace shift reached every terminal exactly once: 10 -> 15.
  ASSERT_FALSE(fused_sinks.vec.records().empty());
  EXPECT_EQ(fused_sinks.vec.records()[0].client_ip.value() >> 24, 15u);
}

TEST(FusedChain, ScalarAndBatchTiersMatchColumns) {
  const auto records = RandomStream(51, kStreamLen);
  Chain a(3), b(3), c(3);
  const std::unique_ptr<FusedChain> fa = FuseChain(*a.ns);
  const std::unique_ptr<FusedChain> fb = FuseChain(*b.ns);
  const std::unique_ptr<FusedChain> fc = FuseChain(*c.ns);
  FeedScalar(records, *fa);
  for (std::size_t i = 0; i < records.size(); i += 512) {
    const std::size_t len = std::min<std::size_t>(512, records.size() - i);
    fb->OnBatch(std::span<const net::PacketRecord>(records).subspan(i, len));
  }
  FeedRandomColumns(records, 151, *fc);
  ExpectSummaryIdentical(a.summary, c.summary);
  ExpectSummaryIdentical(b.summary, c.summary);
  EXPECT_EQ(a.vec.records(), c.vec.records());
  EXPECT_EQ(b.vec.records(), c.vec.records());
  ExpectSessionsIdentical(a.sessions.Finish(), c.sessions.Finish());
}

TEST(FusedChain, FlattensNestedNamespacesAndTees) {
  CountingSink counting;
  TraceSummary summary;
  TeeSink inner_tee;
  inner_tee.Attach(counting);
  inner_tee.Attach(summary);
  ShardNamespaceSink inner_ns(2, inner_tee);
  VectorSink vec;
  TeeSink outer_tee;
  outer_tee.Attach(inner_ns);
  outer_tee.Attach(vec);
  ShardNamespaceSink outer_ns(1, outer_tee);

  const std::unique_ptr<FusedChain> fused = FuseChain(outer_ns);
  ASSERT_NE(fused, nullptr);
  const auto& terminals = fused->terminals();
  ASSERT_EQ(terminals.size(), 3u);
  // DFS order: inner tee's terminals first (shift 1+2 octets), then vec
  // (shift 1 octet).
  EXPECT_EQ(terminals[0].kind, FusedChain::TerminalKind::kCounting);
  EXPECT_EQ(terminals[0].ip_shift, 3u << 24);
  EXPECT_EQ(terminals[1].kind, FusedChain::TerminalKind::kSummary);
  EXPECT_EQ(terminals[1].ip_shift, 3u << 24);
  EXPECT_EQ(terminals[2].kind, FusedChain::TerminalKind::kGeneric);
  EXPECT_EQ(terminals[2].ip_shift, 1u << 24);

  // And the delivered IPs reflect the per-terminal accumulated shifts.
  const auto records = RandomStream(52, 64);
  net::ColumnarBatch columns;
  columns.Append(records);
  fused->OnColumns(columns.View());
  ASSERT_FALSE(vec.records().empty());
  EXPECT_EQ(vec.records()[0].client_ip.value() >> 24, 11u);
  EXPECT_EQ(summary.total_packets(), records.size());
}

TEST(FusedChain, BareTerminalIsNotFused) {
  CountingSink counting;
  EXPECT_EQ(FuseChain(counting), nullptr);
  TraceSummary summary;
  EXPECT_EQ(FuseChain(summary), nullptr);
}

}  // namespace
}  // namespace gametrace::trace
