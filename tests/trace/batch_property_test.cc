// Property tests for the batched delivery path (capture.h batch contract):
// for every sink with an OnBatch override, a random record stream split at
// random batch boundaries must produce results bit-identical to feeding the
// same stream packet by packet. Doubles are compared with EXPECT_EQ (exact
// equality), not near-equality - the contract is bit-identity, not
// approximation.
#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "game/cs_server.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "trace/aggregator.h"
#include "trace/capture.h"
#include "trace/filter.h"
#include "trace/session_tracker.h"
#include "trace/summary.h"

#include "core/check.h"

namespace gametrace::trace {
namespace {

// A plausible server-side stream: a small endpoint pool, mostly game
// updates with occasional handshakes, near-monotone timestamps with
// occasional idle gaps long enough to trip the session tracker's timeout.
std::vector<net::PacketRecord> RandomStream(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed);
  std::vector<net::PacketRecord> out;
  out.reserve(n);
  constexpr std::size_t kClients = 8;
  std::uint32_t seq_in[kClients] = {};
  std::uint32_t seq_out[kClients] = {};
  double t = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    // Mostly sub-tick spacing; ~0.3% of gaps exceed a 30 s idle timeout.
    const double u = rng.NextDouble();
    t += u < 0.997 ? 0.002 * rng.NextDouble() : 31.0 + 10.0 * rng.NextDouble();

    const auto c = static_cast<std::uint32_t>(rng.NextBelow(kClients));
    net::PacketRecord r;
    r.timestamp = t;
    r.client_ip = net::Ipv4Address((10u << 24) | (c + 1));
    r.client_port = static_cast<std::uint16_t>(30000 + c);
    r.app_bytes = static_cast<std::uint16_t>(20 + rng.NextBelow(400));
    r.direction = rng.NextBelow(3) == 0 ? net::Direction::kClientToServer
                                        : net::Direction::kServerToClient;
    const std::uint64_t k = rng.NextBelow(100);
    if (k < 92) {
      r.kind = net::PacketKind::kGameUpdate;
      r.seq = r.direction == net::Direction::kClientToServer ? ++seq_in[c] : ++seq_out[c];
    } else if (k < 94) {
      r.kind = net::PacketKind::kConnectRequest;
      r.direction = net::Direction::kClientToServer;
    } else if (k < 96) {
      r.kind = net::PacketKind::kConnectAccept;
      r.direction = net::Direction::kServerToClient;
    } else if (k < 97) {
      r.kind = net::PacketKind::kConnectReject;
      r.direction = net::Direction::kServerToClient;
    } else if (k < 98) {
      r.kind = net::PacketKind::kDisconnect;
      r.direction = net::Direction::kClientToServer;
    } else {
      r.kind = net::PacketKind::kChat;
      r.seq = r.direction == net::Direction::kClientToServer ? ++seq_in[c] : ++seq_out[c];
    }
    out.push_back(r);
  }
  return out;
}

// Delivers the stream as batches split at random boundaries (lengths 1-8,
// with occasional empty batches interleaved).
void FeedRandomBatches(const std::vector<net::PacketRecord>& records, std::uint64_t seed,
                       CaptureSink& sink) {
  sim::Rng rng(seed);
  const std::span<const net::PacketRecord> all(records);
  std::size_t i = 0;
  while (i < records.size()) {
    if (rng.NextBelow(16) == 0) sink.OnBatch(all.subspan(i, 0));  // empty batch
    const std::size_t len = std::min<std::size_t>(1 + rng.NextBelow(8), records.size() - i);
    sink.OnBatch(all.subspan(i, len));
    i += len;
  }
}

void FeedScalar(const std::vector<net::PacketRecord>& records, CaptureSink& sink) {
  for (const net::PacketRecord& r : records) sink.OnPacket(r);
}

void ExpectSeriesIdentical(const stats::TimeSeries& a, const stats::TimeSeries& b) {
  EXPECT_EQ(a.start_time(), b.start_time());
  EXPECT_EQ(a.interval(), b.interval());
  EXPECT_EQ(a.dropped_before_start(), b.dropped_before_start());
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.values(), b.values());
}

void ExpectHistogramIdentical(const stats::Histogram& a, const stats::Histogram& b) {
  ASSERT_EQ(a.bin_count(), b.bin_count());
  for (std::size_t i = 0; i < a.bin_count(); ++i) EXPECT_EQ(a.count(i), b.count(i));
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  EXPECT_EQ(a.total(), b.total());
}

void ExpectSummaryIdentical(const TraceSummary& a, const TraceSummary& b) {
  EXPECT_EQ(a.packets_in(), b.packets_in());
  EXPECT_EQ(a.packets_out(), b.packets_out());
  EXPECT_EQ(a.app_bytes_in(), b.app_bytes_in());
  EXPECT_EQ(a.app_bytes_out(), b.app_bytes_out());
  EXPECT_EQ(a.wire_bytes_total(), b.wire_bytes_total());
  EXPECT_EQ(a.attempted_connections(), b.attempted_connections());
  EXPECT_EQ(a.established_connections(), b.established_connections());
  EXPECT_EQ(a.refused_connections(), b.refused_connections());
  EXPECT_EQ(a.unique_clients_attempting(), b.unique_clients_attempting());
  EXPECT_EQ(a.unique_clients_establishing(), b.unique_clients_establishing());
  EXPECT_EQ(a.first_packet_time(), b.first_packet_time());
  EXPECT_EQ(a.last_packet_time(), b.last_packet_time());
  // Welford moments must match bitwise: the batch path keeps them
  // sequential precisely so this holds.
  EXPECT_EQ(a.size_stats_in().count(), b.size_stats_in().count());
  EXPECT_EQ(a.size_stats_in().mean(), b.size_stats_in().mean());
  EXPECT_EQ(a.size_stats_in().variance(), b.size_stats_in().variance());
  EXPECT_EQ(a.size_stats_in().min(), b.size_stats_in().min());
  EXPECT_EQ(a.size_stats_in().max(), b.size_stats_in().max());
  EXPECT_EQ(a.size_stats_out().count(), b.size_stats_out().count());
  EXPECT_EQ(a.size_stats_out().mean(), b.size_stats_out().mean());
  EXPECT_EQ(a.size_stats_out().variance(), b.size_stats_out().variance());
  EXPECT_EQ(a.size_stats_out().min(), b.size_stats_out().min());
  EXPECT_EQ(a.size_stats_out().max(), b.size_stats_out().max());
}

void ExpectSessionsIdentical(const std::vector<Session>& a, const std::vector<Session>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].client_ip, b[i].client_ip);
    EXPECT_EQ(a[i].client_port, b[i].client_port);
    EXPECT_EQ(a[i].start, b[i].start);
    EXPECT_EQ(a[i].end, b[i].end);
    EXPECT_EQ(a[i].packets_in, b[i].packets_in);
    EXPECT_EQ(a[i].packets_out, b[i].packets_out);
    EXPECT_EQ(a[i].app_bytes_in, b[i].app_bytes_in);
    EXPECT_EQ(a[i].app_bytes_out, b[i].app_bytes_out);
  }
}

constexpr std::size_t kStreamLen = 20000;

TEST(BatchProperty, CountingSinkIdentical) {
  const auto records = RandomStream(1, kStreamLen);
  CountingSink scalar, batched;
  FeedScalar(records, scalar);
  FeedRandomBatches(records, 101, batched);
  EXPECT_EQ(scalar.packets(), batched.packets());
  EXPECT_EQ(scalar.packets_in(), batched.packets_in());
  EXPECT_EQ(scalar.packets_out(), batched.packets_out());
  EXPECT_EQ(scalar.app_bytes(), batched.app_bytes());
}

TEST(BatchProperty, VectorSinkIdentical) {
  const auto records = RandomStream(2, kStreamLen);
  VectorSink scalar, batched;
  FeedScalar(records, scalar);
  FeedRandomBatches(records, 102, batched);
  EXPECT_EQ(scalar.records(), batched.records());
}

TEST(BatchProperty, ShardNamespaceThroughTeeIdentical) {
  const auto records = RandomStream(3, kStreamLen);
  VectorSink scalar_out, batched_out;
  CountingSink scalar_count, batched_count;
  TeeSink scalar_tee, batched_tee;
  scalar_tee.Attach(scalar_out);
  scalar_tee.Attach(scalar_count);
  batched_tee.Attach(batched_out);
  batched_tee.Attach(batched_count);
  ShardNamespaceSink scalar_ns(7, scalar_tee);
  ShardNamespaceSink batched_ns(7, batched_tee);
  FeedScalar(records, scalar_ns);
  FeedRandomBatches(records, 103, batched_ns);
  EXPECT_EQ(scalar_out.records(), batched_out.records());
  EXPECT_EQ(scalar_count.packets(), batched_count.packets());
  // And the namespace rewrite itself is applied: top octet 10 -> 17.
  ASSERT_FALSE(batched_out.records().empty());
  EXPECT_EQ(batched_out.records()[0].client_ip.value() >> 24, 17u);
}

TEST(BatchProperty, FilterSinkIdentical) {
  const auto records = RandomStream(4, kStreamLen);
  VectorSink scalar_out, batched_out;
  FilterSink scalar_f(DirectionIs(net::Direction::kClientToServer), scalar_out);
  FilterSink batched_f(DirectionIs(net::Direction::kClientToServer), batched_out);
  FeedScalar(records, scalar_f);
  FeedRandomBatches(records, 104, batched_f);
  EXPECT_EQ(scalar_f.passed(), batched_f.passed());
  EXPECT_EQ(scalar_f.dropped(), batched_f.dropped());
  EXPECT_EQ(scalar_out.records(), batched_out.records());
}

TEST(BatchProperty, LoadAggregatorIdentical) {
  const auto records = RandomStream(5, kStreamLen);
  LoadAggregator scalar(60.0), batched(60.0);
  FeedScalar(records, scalar);
  FeedRandomBatches(records, 105, batched);
  ExpectSeriesIdentical(scalar.packets_in(), batched.packets_in());
  ExpectSeriesIdentical(scalar.packets_out(), batched.packets_out());
  ExpectSeriesIdentical(scalar.wire_bytes_in(), batched.wire_bytes_in());
  ExpectSeriesIdentical(scalar.wire_bytes_out(), batched.wire_bytes_out());
}

TEST(BatchProperty, TraceSummaryIdentical) {
  const auto records = RandomStream(6, kStreamLen);
  TraceSummary scalar, batched;
  FeedScalar(records, scalar);
  FeedRandomBatches(records, 106, batched);
  ExpectSummaryIdentical(scalar, batched);
}

TEST(BatchProperty, SessionTrackerIdentical) {
  const auto records = RandomStream(7, kStreamLen);
  SessionTracker scalar(30.0), batched(30.0);
  FeedScalar(records, scalar);
  FeedRandomBatches(records, 107, batched);
  EXPECT_EQ(scalar.open_sessions(), batched.open_sessions());
  EXPECT_EQ(scalar.closed_sessions(), batched.closed_sessions());
  EXPECT_EQ(scalar.unique_clients(), batched.unique_clients());
  ExpectSessionsIdentical(scalar.Finish(), batched.Finish());
}

TEST(BatchProperty, CharacterizerReportIdentical) {
  const auto records = RandomStream(8, kStreamLen);
  core::CharacterizationOptions options;
  options.vt_window = 600.0;
  core::Characterizer scalar(options), batched(options);
  FeedScalar(records, scalar);
  FeedRandomBatches(records, 108, batched);
  auto ra = scalar.Finish(records.back().timestamp);
  auto rb = batched.Finish(records.back().timestamp);
  ExpectSummaryIdentical(ra.summary, rb.summary);
  ExpectSeriesIdentical(ra.minute_packets_in, rb.minute_packets_in);
  ExpectSeriesIdentical(ra.minute_packets_out, rb.minute_packets_out);
  ExpectSeriesIdentical(ra.minute_bytes_in, rb.minute_bytes_in);
  ExpectSeriesIdentical(ra.minute_bytes_out, rb.minute_bytes_out);
  ExpectSeriesIdentical(ra.vt_base_packets, rb.vt_base_packets);
  ExpectSessionsIdentical(ra.sessions, rb.sessions);
  ExpectHistogramIdentical(ra.session_bandwidth, rb.session_bandwidth);
  ExpectHistogramIdentical(ra.size_total, rb.size_total);
  ExpectHistogramIdentical(ra.size_in, rb.size_in);
  ExpectHistogramIdentical(ra.size_out, rb.size_out);
}

// End to end: a characterizer fed live per-tick batches by the server must
// produce the same report as one fed the captured stream packet by packet.
TEST(BatchProperty, LiveServerBatchesMatchScalarReplay) {
  game::GameConfig cfg = game::GameConfig::ScaledDefaults(600.0);
  sim::Simulator simulator;
  core::CharacterizationOptions options;
  options.vt_window = 600.0;
  core::Characterizer live(options);
  VectorSink capture;
  TeeSink tee;
  tee.Attach(capture);
  tee.Attach(live);
  game::CsServer server(simulator, cfg, tee);
  server.Run();

  core::Characterizer replayed(options);
  FeedScalar(capture.records(), replayed);

  auto ra = live.Finish(cfg.trace_duration);
  auto rb = replayed.Finish(cfg.trace_duration);
  ExpectSummaryIdentical(ra.summary, rb.summary);
  ExpectSeriesIdentical(ra.minute_packets_in, rb.minute_packets_in);
  ExpectSeriesIdentical(ra.minute_bytes_out, rb.minute_bytes_out);
  ExpectSeriesIdentical(ra.vt_base_packets, rb.vt_base_packets);
  ExpectSessionsIdentical(ra.sessions, rb.sessions);
  ExpectHistogramIdentical(ra.size_total, rb.size_total);
}

TEST(BatchProperty, ShardNamespaceSinkValidatesShardId) {
  CountingSink sink;
  EXPECT_NO_THROW(ShardNamespaceSink(ShardNamespaceSink::kMaxShardId, sink));
  EXPECT_THROW(ShardNamespaceSink(ShardNamespaceSink::kMaxShardId + 1, sink),
               gametrace::ContractViolation);
  EXPECT_THROW(ShardNamespaceSink(1000, sink), gametrace::ContractViolation);
}

}  // namespace
}  // namespace gametrace::trace
