#include "trace/filter.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::trace {
namespace {

net::PacketRecord MakeRecord(double t, net::Direction dir,
                             net::PacketKind kind = net::PacketKind::kGameUpdate,
                             std::uint32_t ip = 0x0A000001) {
  net::PacketRecord r;
  r.timestamp = t;
  r.direction = dir;
  r.kind = kind;
  r.client_ip = net::Ipv4Address(ip);
  return r;
}

TEST(FilterSink, EmptyPredicateRejected) {
  CountingSink sink;
  EXPECT_THROW(FilterSink(nullptr, sink), gametrace::ContractViolation);
}

TEST(FilterSink, DirectionFilter) {
  CountingSink sink;
  FilterSink filter(DirectionIs(net::Direction::kServerToClient), sink);
  filter.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer));
  filter.OnPacket(MakeRecord(0.1, net::Direction::kServerToClient));
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(filter.passed(), 1u);
  EXPECT_EQ(filter.dropped(), 1u);
}

TEST(FilterSink, KindFilter) {
  CountingSink sink;
  FilterSink filter(KindIs(net::PacketKind::kDownload), sink);
  filter.OnPacket(MakeRecord(0.0, net::Direction::kServerToClient, net::PacketKind::kDownload));
  filter.OnPacket(MakeRecord(0.1, net::Direction::kServerToClient));
  EXPECT_EQ(sink.packets(), 1u);
}

TEST(FilterSink, TimeWindowHalfOpen) {
  CountingSink sink;
  FilterSink filter(TimeWindow(1.0, 2.0), sink);
  filter.OnPacket(MakeRecord(0.999, net::Direction::kClientToServer));
  filter.OnPacket(MakeRecord(1.0, net::Direction::kClientToServer));   // included
  filter.OnPacket(MakeRecord(1.999, net::Direction::kClientToServer));  // included
  filter.OnPacket(MakeRecord(2.0, net::Direction::kClientToServer));   // excluded
  EXPECT_EQ(sink.packets(), 2u);
}

TEST(FilterSink, ClientFilter) {
  CountingSink sink;
  FilterSink filter(ClientIs(net::Ipv4Address(0x0A000002)), sink);
  filter.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer,
                             net::PacketKind::kGameUpdate, 0x0A000001));
  filter.OnPacket(MakeRecord(0.1, net::Direction::kClientToServer,
                             net::PacketKind::kGameUpdate, 0x0A000002));
  EXPECT_EQ(sink.packets(), 1u);
}

TEST(FilterSink, AndCombinator) {
  CountingSink sink;
  FilterSink filter(And(DirectionIs(net::Direction::kClientToServer), TimeWindow(0.0, 1.0)),
                    sink);
  filter.OnPacket(MakeRecord(0.5, net::Direction::kClientToServer));   // both
  filter.OnPacket(MakeRecord(0.5, net::Direction::kServerToClient));   // wrong dir
  filter.OnPacket(MakeRecord(1.5, net::Direction::kClientToServer));   // wrong time
  EXPECT_EQ(sink.packets(), 1u);
}

TEST(FilterSink, Chaining) {
  CountingSink sink;
  FilterSink inner(TimeWindow(0.0, 10.0), sink);
  FilterSink outer(DirectionIs(net::Direction::kClientToServer), inner);
  outer.OnPacket(MakeRecord(5.0, net::Direction::kClientToServer));
  outer.OnPacket(MakeRecord(15.0, net::Direction::kClientToServer));
  EXPECT_EQ(sink.packets(), 1u);
  EXPECT_EQ(outer.passed(), 2u);
  EXPECT_EQ(inner.passed(), 1u);
}

}  // namespace
}  // namespace gametrace::trace
