// Shared gtest main for every test target.
//
// Installs ThrowingContractHandler so a GT_CHECK violation surfaces as a
// catchable gametrace::ContractViolation: contract tests are plain
// EXPECT_THROW instead of ASSERT_DEATH, which would fork the process per
// assertion and cannot run under the TSan preset at all.
#include <gtest/gtest.h>

#include "core/check.h"

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  gametrace::SetContractHandler(gametrace::ThrowingContractHandler);
  return RUN_ALL_TESTS();
}
