#!/usr/bin/env python3
"""Unit tests for tools/gt_lint.py: one synthetic violation per rule,
plus the suppression and ratchet-baseline mechanics.

Each test builds a miniature repo tree in a temp dir and runs the linter
over it, so the tests prove every rule actually fires - a linter whose
rules silently stopped matching would pass on the real tree for the
wrong reason. Rule tests run once per available engine (the lex engine
is always available; the libclang engine joins in when python3-clang and
libclang are installed, as in CI).
"""

import importlib.util
import os
import sys
import tempfile
import unittest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

_spec = importlib.util.spec_from_file_location(
    "gt_lint", os.path.join(REPO_ROOT, "tools", "gt_lint.py"))
gt_lint = importlib.util.module_from_spec(_spec)
sys.modules["gt_lint"] = gt_lint
_spec.loader.exec_module(gt_lint)


def available_engines():
    engines = ["lex"]
    try:
        gt_lint.LibclangEngine(REPO_ROOT)
        engines.append("libclang")
    except gt_lint.LibclangUnavailable:
        pass
    return engines


ENGINES = available_engines()


class MiniTree:
    """Builds a throwaway src/ tree and lints it."""

    def __init__(self):
        self._dir = tempfile.TemporaryDirectory(prefix="gt_lint_test_")
        self.root = self._dir.name

    def write(self, relpath, text):
        full = os.path.join(self.root, relpath)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w", encoding="utf-8") as fh:
            fh.write(text)
        return relpath

    def lint(self, engine_kind, relpath):
        if engine_kind == "lex":
            engine = gt_lint.LexEngine(self.root)
        else:
            engine = gt_lint.LibclangEngine(self.root)
        findings = engine.lint_file(relpath)
        with open(os.path.join(self.root, relpath), encoding="utf-8") as fh:
            allow = {relpath: gt_lint.collect_suppressions(fh.read())}
        kept, bad = gt_lint.apply_suppressions(findings, allow)
        return kept, bad

    def cleanup(self):
        self._dir.cleanup()


def rules_of(findings):
    return sorted({f.rule for f in findings})


class RuleTests(unittest.TestCase):
    """Every rule must fire on a synthetic violation, per engine."""

    def setUp(self):
        self.tree = MiniTree()
        self.addCleanup(self.tree.cleanup)

    def check_fires(self, relpath, text, rule, clean_variant=None):
        rel = self.tree.write(relpath, text)
        for engine in ENGINES:
            with self.subTest(engine=engine):
                kept, _ = self.tree.lint(engine, rel)
                self.assertIn(rule, rules_of(kept),
                              f"{rule} did not fire under {engine}: {kept}")
        if clean_variant is not None:
            rel2 = self.tree.write("clean_" + relpath.replace("/", "_"), "")
            rel2 = self.tree.write(relpath, clean_variant)
            for engine in ENGINES:
                with self.subTest(engine=engine, variant="clean"):
                    kept, _ = self.tree.lint(engine, rel2)
                    self.assertNotIn(rule, rules_of(kept),
                                     f"{rule} false positive under {engine}: {kept}")

    def test_nondet_call_fires_in_emit_path(self):
        self.check_fires(
            "src/stats/report.cc",
            """
            struct Report {
              int WriteSummary() {
                return rand();
              }
            };
            """,
            "nondet-call",
            clean_variant="""
            struct Report {
              int WriteSummary() { return 7; }
              int Shuffle() { return rand(); }  // not an emit path
            };
            """)

    def test_nondet_call_flags_wall_clock_type(self):
        self.check_fires(
            "src/core/emit.cc",
            """
            #include <chrono>
            double EmitTimestamp() {
              return std::chrono::duration<double>(
                  std::chrono::system_clock::now().time_since_epoch()).count();
            }
            """,
            "nondet-call")

    def test_nondet_iteration_fires_on_range_for(self):
        self.check_fires(
            "src/trace/agg.cc",
            """
            #include <unordered_map>
            struct Agg {
              std::unordered_map<int, int> cells_;
              int total = 0;
              void MergeInto() {
                for (const auto& [k, v] : cells_) total += v * k;
              }
            };
            """,
            "nondet-iteration",
            clean_variant="""
            #include <map>
            struct Agg {
              std::map<int, int> cells_;
              int total = 0;
              void MergeInto() {
                for (const auto& [k, v] : cells_) total += v * k;
              }
            };
            """)

    def test_nondet_iteration_fires_on_begin_end(self):
        self.check_fires(
            "src/trace/agg2.cc",
            """
            #include <unordered_set>
            #include <vector>
            struct Agg {
              std::unordered_set<int> seen_;
              std::vector<int> ToSorted() {
                return std::vector<int>(seen_.begin(), seen_.end());
              }
            };
            """,
            "nondet-iteration")

    def test_nondet_iteration_covers_sketch_and_ring_paths(self):
        """The streaming-sketch verbs (Quantile/Collapse/Fold/Advance/Push/
        Evict) are emit paths: hash-order iteration there reaches merged
        snapshots exactly like it would from a Write or Merge."""
        for verb in ("Quantile", "CollapseToBound", "FoldInto",
                     "AdvanceTo", "PushSample", "EvictFront"):
            self.assertTrue(
                gt_lint.EMIT_FUNC_RE.match(verb),
                f"{verb} must be classified as a report/merge/emit path")
        self.check_fires(
            "src/stats/sketchy.cc",
            """
            #include <unordered_map>
            struct Sketchy {
              std::unordered_map<int, double> buckets_;
              double total = 0;
              void AdvanceTo() {
                for (const auto& [k, v] : buckets_) total += v;
              }
            };
            """,
            "nondet-iteration",
            clean_variant="""
            #include <map>
            struct Sketchy {
              std::map<int, double> buckets_;
              double total = 0;
              void AdvanceTo() {
                for (const auto& [k, v] : buckets_) total += v;
              }
            };
            """)

    def test_nondet_call_covers_sketch_and_ring_paths(self):
        self.check_fires(
            "src/stats/ringy.cc",
            """
            #include <ctime>
            struct Ringy {
              long stamp = 0;
              void PushSample() { stamp = time(nullptr); }
            };
            """,
            "nondet-call")

    def test_nondet_iteration_sees_members_from_paired_header(self):
        self.tree.write(
            "src/trace/split.h",
            """
            #include <unordered_map>
            struct Split {
              void MergeCounts();
              std::unordered_map<int, long> counts_;
              long total_ = 0;
            };
            """)
        self.check_fires(
            "src/trace/split.cc",
            """
            #include "trace/split.h"
            void Split::MergeCounts() {
              for (const auto& [k, v] : counts_) total_ += v;
            }
            """,
            "nondet-iteration")

    def test_sink_tier_requires_onbatch_with_oncolumns(self):
        self.check_fires(
            "src/trace/sinks.h",
            """
            struct PacketRecord {};
            struct PacketBatch {};
            struct ColumnView {};
            class CaptureSink {
             public:
              virtual ~CaptureSink() = default;
              virtual void OnPacket(const PacketRecord&) = 0;
              virtual void OnBatch(const PacketBatch&) {}
              virtual void OnColumns(const ColumnView&) {}
            };
            class FastSink : public CaptureSink {
             public:
              void OnPacket(const PacketRecord&) override {}
              void OnColumns(const ColumnView&) override {}
            };
            """,
            "sink-tier",
            clean_variant="""
            struct PacketRecord {};
            struct PacketBatch {};
            struct ColumnView {};
            class CaptureSink {
             public:
              virtual ~CaptureSink() = default;
              virtual void OnPacket(const PacketRecord&) = 0;
              virtual void OnBatch(const PacketBatch&) {}
              virtual void OnColumns(const ColumnView&) {}
            };
            class FastSink : public CaptureSink {
             public:
              void OnPacket(const PacketRecord&) override {}
              void OnBatch(const PacketBatch&) override {}
              void OnColumns(const ColumnView&) override {}
            };
            """)

    def test_sink_tier_requires_override_keyword(self):
        self.check_fires(
            "src/trace/hiding.h",
            """
            struct PacketRecord {};
            class CaptureSink {
             public:
              virtual ~CaptureSink() = default;
              virtual void OnPacket(const PacketRecord&) = 0;
            };
            class HidingSink : public CaptureSink {
             public:
              void OnPacket(const PacketRecord&) {}
            };
            """,
            "sink-tier")

    def test_raw_contract_fires_on_assert(self):
        self.check_fires(
            "src/core/math.cc",
            """
            #include <cassert>
            int Half(int x) {
              assert(x % 2 == 0);
              return x / 2;
            }
            """,
            "raw-contract",
            clean_variant="""
            static_assert(sizeof(int) == 4, "ILP32/LP64 expected");
            int Half(int x) { return x / 2; }
            """)

    def test_raw_contract_fires_on_foreign_throw(self):
        self.check_fires(
            "src/core/oops.cc",
            """
            #include <stdexcept>
            void Boom() { throw std::runtime_error("nope"); }
            """,
            "raw-contract",
            clean_variant="""
            namespace gametrace::net { struct PcapError { const char* what; }; }
            void Boom() { throw gametrace::net::PcapError{"pcap_open failed"}; }
            void Rethrow() { try { Boom(); } catch (...) { throw; } }
            """)

    def test_raw_mutex_fires_on_std_mutex_member(self):
        self.check_fires(
            "src/core/cache.h",
            """
            #include <mutex>
            struct Cache {
              std::mutex m_;
              int hits_ = 0;
            };
            """,
            "raw-mutex",
            clean_variant="""
            struct Cache {
              int hits_ = 0;
            };
            """)

    def test_raw_mutex_exempts_thread_annotations_header(self):
        rel = self.tree.write(
            "src/core/thread_annotations.h",
            """
            #include <mutex>
            namespace gametrace::core { class Mutex { std::mutex m_; }; }
            """)
        for engine in ENGINES:
            with self.subTest(engine=engine):
                kept, _ = self.tree.lint(engine, rel)
                self.assertNotIn("raw-mutex", rules_of(kept))


class SuppressionTests(unittest.TestCase):
    def setUp(self):
        self.tree = MiniTree()
        self.addCleanup(self.tree.cleanup)

    def test_trailing_allow_suppresses(self):
        rel = self.tree.write(
            "src/core/cache.h",
            "struct C {\n"
            "  std::mutex m_;  // gt-lint: allow(raw-mutex) FFI handoff to a C callback\n"
            "};\n")
        kept, bad = self.tree.lint("lex", rel)
        self.assertEqual(kept, [])
        self.assertEqual(bad, [])

    def test_standalone_allow_covers_wrapped_statement(self):
        rel = self.tree.write(
            "src/trace/agg.cc",
            "#include <unordered_set>\n"
            "#include <vector>\n"
            "struct Agg {\n"
            "  std::unordered_set<int> seen_;\n"
            "  std::vector<int> ToVec() {\n"
            "    // gt-lint: allow(nondet-iteration) consumed by a sorting caller\n"
            "    return std::vector<int>(seen_.begin(),\n"
            "                            seen_.end());\n"
            "  }\n"
            "};\n")
        kept, bad = self.tree.lint("lex", rel)
        self.assertEqual(kept, [])
        self.assertEqual(bad, [])

    def test_unjustified_allow_is_itself_a_finding(self):
        rel = self.tree.write(
            "src/core/cache.h",
            "struct C {\n"
            "  std::mutex m_;  // gt-lint: allow(raw-mutex)\n"
            "};\n")
        kept, bad = self.tree.lint("lex", rel)
        self.assertEqual(kept, [])
        self.assertEqual(len(bad), 1)
        self.assertIn("justification", bad[0].message)

    def test_allow_for_other_rule_does_not_suppress(self):
        rel = self.tree.write(
            "src/core/cache.h",
            "struct C {\n"
            "  std::mutex m_;  // gt-lint: allow(nondet-call) wrong rule named\n"
            "};\n")
        kept, _ = self.tree.lint("lex", rel)
        self.assertEqual(rules_of(kept), ["raw-mutex"])


class BaselineTests(unittest.TestCase):
    """The baseline is a shrink-only ratchet."""

    def setUp(self):
        self.tree = MiniTree()
        self.addCleanup(self.tree.cleanup)
        self.baseline = os.path.join(self.tree.root, "tools", "gt_lint_baseline.txt")
        os.makedirs(os.path.dirname(self.baseline), exist_ok=True)
        self.rel = self.tree.write(
            "src/core/cache.h",
            "struct C {\n  std::mutex m_;\n};\n")

    def run_lint(self, update=False):
        return gt_lint.run(self.tree.root, "lex", self.baseline, [self.rel],
                           update_baseline=update, report_path=None)

    def test_new_finding_fails_without_baseline(self):
        self.assertEqual(self.run_lint(), 1)

    def test_baselined_finding_passes(self):
        self.assertEqual(self.run_lint(update=True), 0)
        self.assertEqual(self.run_lint(), 0)

    def test_stale_baseline_entry_fails(self):
        self.assertEqual(self.run_lint(update=True), 0)
        self.tree.write(self.rel, "struct C {\n  int m_;\n};\n")
        self.assertEqual(self.run_lint(), 1)  # ratchet: must shrink the file
        self.assertEqual(self.run_lint(update=True), 0)
        self.assertEqual(self.run_lint(), 0)

    def test_baseline_does_not_mask_new_findings(self):
        self.assertEqual(self.run_lint(update=True), 0)
        self.tree.write(
            self.rel,
            "struct C {\n  std::mutex m_;\n  std::condition_variable cv_;\n};\n")
        self.assertEqual(self.run_lint(), 1)


class RepoTreeTest(unittest.TestCase):
    def test_repo_tree_is_clean(self):
        baseline = os.path.join(REPO_ROOT, "tools", "gt_lint_baseline.txt")
        self.assertEqual(
            gt_lint.run(REPO_ROOT, "auto", baseline, [], False, None), 0,
            "gt_lint must pass on the committed tree")


if __name__ == "__main__":
    print(f"gt_lint_test: engines under test: {ENGINES}", file=sys.stderr)
    unittest.main()
