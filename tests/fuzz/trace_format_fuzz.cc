// libFuzzer smoke harness for the .gtr trace-format parser.
//
// The reader must either parse the bytes or raise TraceError; anything else
// (crash, sanitizer report, contract violation) is a finding. Build via the
// `fuzz` CMake preset; CI runs this for 30 s per push from the committed
// seed corpus in tests/fuzz/corpus/trace.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "trace/trace_format.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string bytes(reinterpret_cast<const char*>(data), size);
  try {
    gametrace::trace::TraceReader reader(std::make_unique<std::istringstream>(std::move(bytes)));
    while (reader.Next()) {
    }
  } catch (const gametrace::trace::TraceError&) {
    // Expected rejection of malformed input.
  }
  return 0;
}
