// libFuzzer smoke harness for the pcap reader.
//
// Treats the input bytes as a complete capture file. The reader must either
// parse it or raise PcapError; any other escape (crash, sanitizer report,
// contract violation, unbounded allocation) is a finding. Build via the
// `fuzz` CMake preset; CI runs this for 30 s per push from the committed
// seed corpus in tests/fuzz/corpus/pcap.
#include <cstddef>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>

#include "net/packet.h"
#include "net/pcap.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  std::string bytes(reinterpret_cast<const char*>(data), size);
  try {
    gametrace::net::PcapReader reader(std::make_unique<std::istringstream>(std::move(bytes)));
    // Exercise both the raw record path and the UDP/IPv4 decode path.
    while (reader.Next()) {
    }
  } catch (const gametrace::net::PcapError&) {
    // Expected rejection of malformed input.
  }

  std::string again(reinterpret_cast<const char*>(data), size);
  try {
    gametrace::net::PcapReader reader(std::make_unique<std::istringstream>(std::move(again)));
    const gametrace::net::ServerEndpoint server{gametrace::net::Ipv4Address{192, 168, 0, 10},
                                                27015};
    std::uint64_t skipped = 0;
    (void)reader.ReadAllRecords(server, &skipped);
  } catch (const gametrace::net::PcapError&) {
  }
  return 0;
}
