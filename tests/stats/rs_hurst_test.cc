#include "stats/rs_hurst.h"

#include "stats/variance_time.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/rng.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

TEST(RescaledRange, Validation) {
  TimeSeries tiny(0.0, 1.0);
  for (int i = 0; i < 10; ++i) tiny.Add(static_cast<double>(i), 1.0 + i % 2);
  EXPECT_THROW((void)ComputeRescaledRange(tiny), gametrace::ContractViolation);

  TimeSeries constant(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) constant.Add(static_cast<double>(i), 5.0);
  EXPECT_THROW((void)ComputeRescaledRange(constant), gametrace::ContractViolation);

  TimeSeries ok(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) ok.Add(static_cast<double>(i), static_cast<double>(i % 3));
  EXPECT_THROW((void)ComputeRescaledRange(ok, {.ratio = 1.0}), gametrace::ContractViolation);
}

TEST(RescaledRange, IidNoiseNearHalf) {
  sim::Rng rng(1);
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 100000; ++i) s.Add(static_cast<double>(i), sim::Normal(rng, 10.0, 2.0));
  const RsPlot plot = ComputeRescaledRange(s);
  // R/S is known to bias slightly above 1/2 on short iid series.
  EXPECT_NEAR(plot.HurstEstimate(), 0.55, 0.08);
}

TEST(RescaledRange, PersistentProcessNearOne) {
  // A slowly-wandering level (integrated noise) is strongly persistent.
  sim::Rng rng(2);
  TimeSeries s(0.0, 1.0);
  double level = 0.0;
  for (int i = 0; i < 100000; ++i) {
    level += sim::Normal(rng, 0.0, 1.0);
    s.Add(static_cast<double>(i), level);
  }
  const RsPlot plot = ComputeRescaledRange(s);
  EXPECT_GT(plot.HurstEstimate(), 0.85);
}

TEST(RescaledRange, AntiPersistentPeriodicBelowNoise) {
  // Strong periodicity: differences are anti-persistent; H drops below
  // the iid value.
  TimeSeries periodic(0.0, 1.0);
  sim::Rng rng(3);
  for (int i = 0; i < 50000; ++i) {
    periodic.Add(static_cast<double>(i),
                 (i % 5 == 0 ? 20.0 : 0.0) + sim::Normal(rng, 0.0, 0.1));
  }
  TimeSeries noise(0.0, 1.0);
  for (int i = 0; i < 50000; ++i) noise.Add(static_cast<double>(i), sim::Normal(rng, 4.0, 8.0));
  const double h_periodic = ComputeRescaledRange(periodic).HurstEstimate();
  const double h_noise = ComputeRescaledRange(noise).HurstEstimate();
  EXPECT_LT(h_periodic, h_noise);
}

TEST(RescaledRange, PointsAreGeometricAndOrdered) {
  sim::Rng rng(4);
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 10000; ++i) s.Add(static_cast<double>(i), rng.NextDouble());
  const RsPlot plot = ComputeRescaledRange(s, {.ratio = 2.0, .min_n = 8, .min_blocks = 4});
  ASSERT_GE(plot.points.size(), 2u);
  for (std::size_t i = 1; i < plot.points.size(); ++i) {
    EXPECT_EQ(plot.points[i].n, plot.points[i - 1].n * 2);
    // R/S grows with block size for any non-degenerate process.
    EXPECT_GT(plot.points[i].mean_rs, plot.points[i - 1].mean_rs);
  }
}

TEST(RescaledRange, AgreesWithAggregatedVarianceOnIid) {
  // The two estimators must tell the same qualitative story.
  sim::Rng rng(5);
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 80000; ++i) s.Add(static_cast<double>(i), sim::Exponential(rng, 3.0));
  const double h_rs = ComputeRescaledRange(s).HurstEstimate();
  const double h_vt = ComputeVarianceTime(s).HurstEstimate(0.0, 1e9);
  EXPECT_NEAR(h_rs, h_vt, 0.12);
}

}  // namespace
}  // namespace gametrace::stats
