#include "stats/empirical_distribution.h"

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "stats/histogram.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

TEST(EmpiricalDistribution, EmptyBehaviour) {
  EmpiricalDistribution d;
  EXPECT_TRUE(d.empty());
  EXPECT_THROW((void)d.Mean(), gametrace::ContractViolation);
  EXPECT_THROW((void)d.SampleByUniform(0.5), gametrace::ContractViolation);
}

TEST(EmpiricalDistribution, WeightValidation) {
  EmpiricalDistribution d;
  EXPECT_THROW(d.Add(1.0, 0.0), gametrace::ContractViolation);
  EXPECT_THROW(d.Add(1.0, -2.0), gametrace::ContractViolation);
}

TEST(EmpiricalDistribution, PointMass) {
  EmpiricalDistribution d;
  d.Add(42.0, 3.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 42.0);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.0), 42.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.999), 42.0);
}

TEST(EmpiricalDistribution, WeightedMoments) {
  EmpiricalDistribution d;
  d.Add(0.0, 1.0);
  d.Add(10.0, 3.0);
  EXPECT_DOUBLE_EQ(d.Mean(), 7.5);
  EXPECT_DOUBLE_EQ(d.Variance(), 0.25 * 56.25 + 0.75 * 6.25);
}

TEST(EmpiricalDistribution, InverseCdfBoundaries) {
  EmpiricalDistribution d;
  d.Add(1.0, 1.0);
  d.Add(2.0, 1.0);
  d.Add(3.0, 2.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.0), 1.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.24), 1.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.26), 2.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.49), 2.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.51), 3.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.99), 3.0);
}

TEST(EmpiricalDistribution, UniformArgumentValidation) {
  EmpiricalDistribution d;
  d.Add(1.0);
  EXPECT_THROW((void)d.SampleByUniform(-0.1), gametrace::ContractViolation);
  EXPECT_THROW((void)d.SampleByUniform(1.0), gametrace::ContractViolation);
}

TEST(EmpiricalDistribution, UnsortedInsertionOrderIsHandled) {
  EmpiricalDistribution d;
  d.Add(5.0, 1.0);
  d.Add(1.0, 1.0);
  d.Add(3.0, 1.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.1), 1.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.5), 3.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.9), 5.0);
}

TEST(EmpiricalDistribution, SampleMatchesWeights) {
  EmpiricalDistribution d;
  d.Add(0.0, 9.0);
  d.Add(100.0, 1.0);
  sim::Rng rng(11);
  int high = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (d.Sample(rng) == 100.0) ++high;
  }
  EXPECT_NEAR(static_cast<double>(high) / kDraws, 0.1, 0.01);
}

TEST(EmpiricalDistribution, FromHistogram) {
  Histogram h(0.0, 100.0, 10);
  for (int i = 0; i < 30; ++i) h.Add(15.0);  // bin 1, center 15
  for (int i = 0; i < 70; ++i) h.Add(85.0);  // bin 8, center 85
  const EmpiricalDistribution d = EmpiricalDistribution::FromHistogram(h);
  EXPECT_EQ(d.support_size(), 2u);
  EXPECT_DOUBLE_EQ(d.Mean(), 0.3 * 15.0 + 0.7 * 85.0);
  EXPECT_DOUBLE_EQ(d.total_weight(), 100.0);
}

TEST(EmpiricalDistribution, InterleavedAddAndSample) {
  // Adding after sampling must re-sort correctly (the dirty flag path).
  EmpiricalDistribution d;
  d.Add(10.0, 1.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.5), 10.0);
  d.Add(1.0, 9.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.5), 1.0);
  EXPECT_DOUBLE_EQ(d.SampleByUniform(0.95), 10.0);
}

}  // namespace
}  // namespace gametrace::stats
