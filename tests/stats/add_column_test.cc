// The columnar AddColumn kernels must be bit-identical to the scalar Add
// loops they replace, at arbitrary (random) batch boundaries, including the
// masked (direction-split) variants.
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "stats/empirical_distribution.h"
#include "stats/histogram.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"

namespace gametrace::stats {
namespace {

struct Columns {
  std::vector<double> times;
  std::vector<std::uint16_t> sizes;
  std::vector<std::uint8_t> dirs;  // 0 or 1
};

Columns RandomColumns(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed);
  Columns c;
  c.times.reserve(n);
  c.sizes.reserve(n);
  c.dirs.reserve(n);
  double t = -5.0;  // starts negative: exercises the before-start path
  for (std::size_t i = 0; i < n; ++i) {
    t += 0.05 * rng.NextDouble();
    c.times.push_back(t);
    // Sizes span 0..599: exercises in-range, overflow (>= 500) and, for
    // histograms with lo > 0, underflow.
    c.sizes.push_back(static_cast<std::uint16_t>(rng.NextBelow(600)));
    c.dirs.push_back(static_cast<std::uint8_t>(rng.NextBelow(2)));
  }
  return c;
}

// Random split points so kernels see ragged batch boundaries, not one
// full-array call.
template <typename Fn>
void ForRandomChunks(std::uint64_t seed, std::size_t n, Fn&& fn) {
  sim::Rng rng(seed);
  std::size_t i = 0;
  while (i < n) {
    const std::size_t len = std::min<std::size_t>(1 + rng.NextBelow(97), n - i);
    fn(i, len);
    i += len;
  }
}

void ExpectHistogramIdentical(const Histogram& a, const Histogram& b) {
  ASSERT_EQ(a.bin_count(), b.bin_count());
  for (std::size_t i = 0; i < a.bin_count(); ++i) EXPECT_EQ(a.count(i), b.count(i));
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  EXPECT_EQ(a.total(), b.total());
}

constexpr std::size_t kN = 20000;

TEST(AddColumn, HistogramMatchesScalarAdd) {
  const Columns c = RandomColumns(1, kN);
  // lo = 10 so some u16 samples underflow as well as overflow.
  Histogram scalar(10.0, 500.0, 490), columnar(10.0, 500.0, 490);
  for (const std::uint16_t x : c.sizes) scalar.Add(x);
  ForRandomChunks(101, kN, [&](std::size_t i, std::size_t len) {
    columnar.AddColumn(std::span<const std::uint16_t>(c.sizes).subspan(i, len));
  });
  ExpectHistogramIdentical(scalar, columnar);
}

TEST(AddColumn, HistogramMaskedMatchesFilteredAdd) {
  const Columns c = RandomColumns(2, kN);
  Histogram scalar(0.0, 500.0, 500), columnar(0.0, 500.0, 500);
  for (std::size_t i = 0; i < kN; ++i) {
    if (c.dirs[i] == 1) scalar.Add(c.sizes[i]);
  }
  ForRandomChunks(102, kN, [&](std::size_t i, std::size_t len) {
    columnar.AddColumn(std::span<const std::uint16_t>(c.sizes).subspan(i, len),
                       std::span<const std::uint8_t>(c.dirs).subspan(i, len), 1);
  });
  ExpectHistogramIdentical(scalar, columnar);
}

TEST(AddColumn, TimeSeriesMatchesAddBatch) {
  const Columns c = RandomColumns(3, kN);
  TimeSeries scalar(0.0, 1.0), columnar(0.0, 1.0);
  for (const double t : c.times) scalar.Add(t, 1.0);
  ForRandomChunks(103, kN, [&](std::size_t i, std::size_t len) {
    columnar.AddColumn(std::span<const double>(c.times).subspan(i, len), 1.0);
  });
  EXPECT_EQ(scalar.dropped_before_start(), columnar.dropped_before_start());
  ASSERT_EQ(scalar.size(), columnar.size());
  EXPECT_EQ(scalar.values(), columnar.values());
}

TEST(AddColumn, TimeSeriesMaskedMatchesFilteredAdd) {
  const Columns c = RandomColumns(4, kN);
  TimeSeries scalar(0.0, 1.0), columnar(0.0, 1.0);
  for (std::size_t i = 0; i < kN; ++i) {
    if (c.dirs[i] == 0) scalar.Add(c.times[i], 2.0);
  }
  ForRandomChunks(104, kN, [&](std::size_t i, std::size_t len) {
    columnar.AddColumn(std::span<const double>(c.times).subspan(i, len),
                       std::span<const std::uint8_t>(c.dirs).subspan(i, len), 0, 2.0);
  });
  EXPECT_EQ(scalar.dropped_before_start(), columnar.dropped_before_start());
  ASSERT_EQ(scalar.size(), columnar.size());
  EXPECT_EQ(scalar.values(), columnar.values());
}

TEST(AddColumn, RunningStatsU16MatchesScalarAdd) {
  const Columns c = RandomColumns(5, kN);
  RunningStats scalar, columnar;
  for (const std::uint16_t x : c.sizes) scalar.Add(static_cast<double>(x));
  ForRandomChunks(105, kN, [&](std::size_t i, std::size_t len) {
    columnar.AddColumnU16(std::span<const std::uint16_t>(c.sizes).subspan(i, len));
  });
  EXPECT_EQ(scalar.count(), columnar.count());
  EXPECT_EQ(scalar.mean(), columnar.mean());       // bitwise: same sequential order
  EXPECT_EQ(scalar.variance(), columnar.variance());
  EXPECT_EQ(scalar.min(), columnar.min());
  EXPECT_EQ(scalar.max(), columnar.max());
}

TEST(AddColumn, RunningStatsMaskedMatchesFilteredAdd) {
  const Columns c = RandomColumns(6, kN);
  RunningStats scalar, columnar;
  for (std::size_t i = 0; i < kN; ++i) {
    if (c.dirs[i] == 1) scalar.Add(static_cast<double>(c.sizes[i]));
  }
  ForRandomChunks(106, kN, [&](std::size_t i, std::size_t len) {
    columnar.AddColumnU16(std::span<const std::uint16_t>(c.sizes).subspan(i, len),
                          std::span<const std::uint8_t>(c.dirs).subspan(i, len), 1);
  });
  EXPECT_EQ(scalar.count(), columnar.count());
  EXPECT_EQ(scalar.mean(), columnar.mean());
  EXPECT_EQ(scalar.variance(), columnar.variance());
  EXPECT_EQ(scalar.min(), columnar.min());
  EXPECT_EQ(scalar.max(), columnar.max());
}

TEST(AddColumn, EmpiricalDistributionMatchesUnitAdds) {
  const Columns c = RandomColumns(7, 4000);
  EmpiricalDistribution scalar, columnar;
  for (const std::uint16_t x : c.sizes) scalar.Add(static_cast<double>(x), 1.0);
  ForRandomChunks(107, c.sizes.size(), [&](std::size_t i, std::size_t len) {
    columnar.AddColumn(std::span<const std::uint16_t>(c.sizes).subspan(i, len));
  });
  EXPECT_EQ(scalar.support_size(), columnar.support_size());
  EXPECT_EQ(scalar.total_weight(), columnar.total_weight());
  EXPECT_EQ(scalar.Mean(), columnar.Mean());
  EXPECT_EQ(scalar.Variance(), columnar.Variance());
  for (double u = 0.0; u < 1.0; u += 0.0625) {
    EXPECT_EQ(scalar.SampleByUniform(u), columnar.SampleByUniform(u));
  }
}

}  // namespace
}  // namespace gametrace::stats
