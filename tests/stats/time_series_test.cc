#include "stats/time_series.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::stats {
namespace {

TEST(TimeSeries, ConstructionValidation) {
  EXPECT_THROW(TimeSeries(0.0, 0.0), gametrace::ContractViolation);
  EXPECT_THROW(TimeSeries(0.0, -1.0), gametrace::ContractViolation);
}

TEST(TimeSeries, AddGrowsOnDemand) {
  TimeSeries s(0.0, 1.0);
  EXPECT_TRUE(s.empty());
  s.Add(5.5);
  EXPECT_EQ(s.size(), 6u);
  EXPECT_DOUBLE_EQ(s[5], 1.0);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(s[i], 0.0);
}

TEST(TimeSeries, AddAccumulatesWithinBin) {
  TimeSeries s(0.0, 10.0);
  s.Add(1.0, 2.0);
  s.Add(9.999, 3.0);
  s.Add(10.0, 5.0);
  EXPECT_DOUBLE_EQ(s[0], 5.0);
  EXPECT_DOUBLE_EQ(s[1], 5.0);
}

TEST(TimeSeries, SamplesBeforeStartDropped) {
  TimeSeries s(100.0, 1.0);
  s.Add(50.0);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.dropped_before_start(), 1u);
}

TEST(TimeSeries, SetOverwrites) {
  TimeSeries s(0.0, 60.0);
  s.Set(30.0, 17.0);
  s.Set(45.0, 21.0);  // same bin
  EXPECT_DOUBLE_EQ(s[0], 21.0);
}

TEST(TimeSeries, BinTime) {
  TimeSeries s(10.0, 2.5);
  EXPECT_DOUBLE_EQ(s.bin_time(0), 10.0);
  EXPECT_DOUBLE_EQ(s.bin_time(4), 20.0);
}

TEST(TimeSeries, ExtendToZeroFills) {
  TimeSeries s(0.0, 1.0);
  s.Add(0.5);
  s.ExtendTo(10.0);
  EXPECT_EQ(s.size(), 10u);
  EXPECT_DOUBLE_EQ(s.Sum(), 1.0);
  s.ExtendTo(5.0);  // never shrinks
  EXPECT_EQ(s.size(), 10u);
}

TEST(TimeSeries, AggregatePreservesTotal) {
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 12; ++i) s.Add(static_cast<double>(i), 1.0);
  const TimeSeries agg = s.Aggregate(3);
  EXPECT_EQ(agg.size(), 4u);
  EXPECT_DOUBLE_EQ(agg.interval(), 3.0);
  EXPECT_DOUBLE_EQ(agg.Sum(), 12.0);
  EXPECT_DOUBLE_EQ(agg[0], 3.0);
}

TEST(TimeSeries, AggregateDropsPartialTail) {
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 10; ++i) s.Add(static_cast<double>(i), 1.0);
  const TimeSeries agg = s.Aggregate(3);
  EXPECT_EQ(agg.size(), 3u);  // 10/3 = 3 whole groups
  EXPECT_DOUBLE_EQ(agg.Sum(), 9.0);
}

TEST(TimeSeries, AggregateMeanDividesByFactor) {
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 8; ++i) s.Add(static_cast<double>(i), 4.0);
  const TimeSeries mean = s.AggregateMean(4);
  EXPECT_DOUBLE_EQ(mean[0], 4.0);
  EXPECT_DOUBLE_EQ(mean[1], 4.0);
}

TEST(TimeSeries, AggregateZeroFactorThrows) {
  TimeSeries s(0.0, 1.0);
  EXPECT_THROW((void)s.Aggregate(0), gametrace::ContractViolation);
}

TEST(TimeSeries, RateDividesByInterval) {
  TimeSeries s(0.0, 0.5);
  s.Add(0.1, 10.0);
  const TimeSeries rate = s.Rate();
  EXPECT_DOUBLE_EQ(rate[0], 20.0);
}

TEST(TimeSeries, PlusAlignsAndPads) {
  TimeSeries a(0.0, 1.0);
  TimeSeries b(0.0, 1.0);
  a.Add(0.0, 1.0);
  b.Add(2.0, 5.0);
  const TimeSeries sum = a.Plus(b);
  EXPECT_EQ(sum.size(), 3u);
  EXPECT_DOUBLE_EQ(sum[0], 1.0);
  EXPECT_DOUBLE_EQ(sum[2], 5.0);
}

TEST(TimeSeries, PlusIncompatibleThrows) {
  TimeSeries a(0.0, 1.0);
  TimeSeries b(0.0, 2.0);
  EXPECT_THROW((void)a.Plus(b), gametrace::ContractViolation);
}

TEST(TimeSeries, ScaledMultiplies) {
  TimeSeries s(0.0, 1.0);
  s.Add(0.0, 3.0);
  EXPECT_DOUBLE_EQ(s.Scaled(8.0)[0], 24.0);
}

TEST(TimeSeries, Moments) {
  TimeSeries s(0.0, 1.0);
  s.Add(0.0, 2.0);
  s.Add(1.0, 4.0);
  s.Add(2.0, 6.0);
  EXPECT_DOUBLE_EQ(s.Mean(), 4.0);
  EXPECT_NEAR(s.Variance(), 8.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.Max(), 6.0);
  EXPECT_DOUBLE_EQ(s.Min(), 2.0);
}

TEST(TimeSeries, NonZeroStartTime) {
  TimeSeries s(1000.0, 60.0);
  s.Add(1030.0);
  s.Add(1061.0);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_DOUBLE_EQ(s[0], 1.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
}

// Re-aggregation invariant: for any factor, total mass is conserved over
// the whole groups and the aggregated variance never exceeds the base
// variance for a smooth series.
class AggregateSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AggregateSweep, MassConservedOverWholeGroups) {
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) s.Add(static_cast<double>(i), 1.0 + (i % 7));
  const std::size_t factor = GetParam();
  const TimeSeries agg = s.Aggregate(factor);
  const std::size_t whole = (1000 / factor) * factor;
  double expected = 0.0;
  for (std::size_t i = 0; i < whole; ++i) expected += s[i];
  EXPECT_DOUBLE_EQ(agg.Sum(), expected);
}

INSTANTIATE_TEST_SUITE_P(Factors, AggregateSweep,
                         ::testing::Values(1, 2, 3, 7, 10, 100, 999, 1000));

}  // namespace
}  // namespace gametrace::stats
