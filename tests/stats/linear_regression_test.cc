#include "stats/linear_regression.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::stats {
namespace {

TEST(FitLine, ExactLine) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> ys{3.0, 5.0, 7.0, 9.0};  // y = 2x + 1
  const LineFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.n, 4u);
}

TEST(FitLine, NegativeSlope) {
  const std::vector<double> xs{0.0, 1.0, 2.0};
  const std::vector<double> ys{10.0, 8.0, 6.0};
  const LineFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, -2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 10.0, 1e-12);
}

TEST(FitLine, NoisyDataApproximates) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0 + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const LineFit fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-3);
  EXPECT_NEAR(fit.intercept, 7.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitLine, HorizontalLineZeroSlope) {
  const std::vector<double> xs{1.0, 2.0, 3.0};
  const std::vector<double> ys{5.0, 5.0, 5.0};
  const LineFit fit = FitLine(xs, ys);
  EXPECT_DOUBLE_EQ(fit.slope, 0.0);
  EXPECT_DOUBLE_EQ(fit.intercept, 5.0);
  // Zero y-variance: r^2 defined as 1 (perfect fit of a constant).
  EXPECT_DOUBLE_EQ(fit.r_squared, 1.0);
}

TEST(FitLine, ErrorsOnBadInput) {
  const std::vector<double> one{1.0};
  const std::vector<double> two{1.0, 2.0};
  EXPECT_THROW((void)FitLine(one, two), gametrace::ContractViolation);
  EXPECT_THROW((void)FitLine(one, one), gametrace::ContractViolation);
  const std::vector<double> same_x{2.0, 2.0};
  EXPECT_THROW((void)FitLine(same_x, two), gametrace::ContractViolation);
}

TEST(FitLine, RSquaredLowForUncorrelated) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const std::vector<double> ys{1.0, -1.0, 1.0, -1.0, 1.0, -1.0};
  const LineFit fit = FitLine(xs, ys);
  EXPECT_LT(fit.r_squared, 0.5);
}

}  // namespace
}  // namespace gametrace::stats
