// QuantileSketch: relative rank-error bound, bounded-store collapse, and
// the merge contract the fleet leans on - sketch state is a pure function
// of the sample multiset, so ANY merge order (and therefore any worker
// count) produces bit-identical state.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/quantile_sketch.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

std::vector<double> KbpsStream(std::uint64_t seed, std::size_t n) {
  // Shaped like the per-client bandwidth windows the server records:
  // mostly 4-64 kbps with a heavy-ish upper tail.
  sim::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) {
    const double u = rng.NextDouble();
    x = 4.0 + 60.0 * u * u * u + 36.0 * rng.NextDouble();
  }
  return xs;
}

double ExactQuantile(std::vector<double> xs, double q) {
  std::sort(xs.begin(), xs.end());
  const auto rank = static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1));
  return xs[rank];
}

// Serializes every observable bit of sketch state for identity checks.
std::string StateFingerprint(const QuantileSketch& s) {
  std::string out = std::to_string(s.count()) + "/" + std::to_string(s.zero_count()) + "/" +
                    std::to_string(s.min_key()) + "/";
  for (std::size_t i = 0; i < s.bucket_count(); ++i) out += std::to_string(s.bucket(i)) + ",";
  out += "/" + std::to_string(s.min()) + "/" + std::to_string(s.max()) + "/" +
         std::to_string(s.sum());
  return out;
}

TEST(QuantileSketch, QuantilesStayWithinTheRelativeErrorBound) {
  const double alpha = 0.01;
  const auto xs = KbpsStream(11, 20000);
  QuantileSketch sketch(alpha);
  for (double x : xs) sketch.Add(x);

  for (double q : {0.10, 0.50, 0.90, 0.99, 0.999}) {
    const double exact = ExactQuantile(xs, q);
    const double estimate = sketch.Quantile(q);
    // The DDSketch guarantee: relative error alpha at the same rank; allow
    // one extra alpha of slack for rank interpolation at the bucket edge.
    EXPECT_NEAR(estimate, exact, 2.0 * alpha * exact) << "q = " << q;
  }
  EXPECT_EQ(sketch.count(), xs.size());
  EXPECT_DOUBLE_EQ(sketch.max(), *std::max_element(xs.begin(), xs.end()));
  EXPECT_DOUBLE_EQ(sketch.min(), *std::min_element(xs.begin(), xs.end()));
}

TEST(QuantileSketch, MergeIsOrderIndependentAndBitIdentical) {
  const auto xs = KbpsStream(23, 9000);

  // Reference: one sketch over the whole stream.
  QuantileSketch whole;
  for (double x : xs) whole.Add(x);

  // Eight shards, then three reduction shapes: sequential shard order,
  // reversed order, and a pairwise tree (what 2 or 8 fleet workers
  // produce). All must match the single-pass state bit for bit.
  const auto shard = [&xs](std::size_t k) {
    QuantileSketch s;
    for (std::size_t i = k; i < xs.size(); i += 8) s.Add(xs[i]);
    return s;
  };

  QuantileSketch forward = shard(0);
  for (std::size_t k = 1; k < 8; ++k) forward.Merge(shard(k));

  QuantileSketch backward = shard(7);
  for (std::size_t k = 7; k-- > 0;) backward.Merge(shard(k));

  std::vector<QuantileSketch> tree;
  tree.reserve(8);
  for (std::size_t k = 0; k < 8; ++k) tree.push_back(shard(k));
  while (tree.size() > 1) {
    std::vector<QuantileSketch> next;
    for (std::size_t i = 0; i + 1 < tree.size(); i += 2) {
      tree[i].Merge(tree[i + 1]);
      next.push_back(tree[i]);
    }
    tree = std::move(next);
  }

  const std::string reference = StateFingerprint(whole);
  EXPECT_EQ(StateFingerprint(forward), reference);
  EXPECT_EQ(StateFingerprint(backward), reference);
  EXPECT_EQ(StateFingerprint(tree.front()), reference);
  EXPECT_DOUBLE_EQ(forward.Quantile(0.99), whole.Quantile(0.99));
}

TEST(QuantileSketch, CollapsePreservesTheUpperTailWithinBound) {
  // A dynamic range far beyond max_buckets forces the lowest buckets to
  // collapse; the upper tail - the provisioning end - must stay accurate.
  const double alpha = 0.02;
  QuantileSketch sketch(alpha, 64);
  std::vector<double> xs;
  sim::Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    xs.push_back(std::pow(10.0, 8.0 * rng.NextDouble() - 4.0));  // 1e-4 .. 1e4
    sketch.Add(xs.back());
  }
  EXPECT_LE(sketch.bucket_count(), 64u);
  const double exact = ExactQuantile(xs, 0.99);
  EXPECT_NEAR(sketch.Quantile(0.99), exact, 2.0 * alpha * exact);
  // Collapse happened (the full range needs far more than 64 buckets), yet
  // the total count is intact.
  EXPECT_EQ(sketch.count(), xs.size());
}

TEST(QuantileSketch, ZeroAndEmptyBehavior) {
  QuantileSketch sketch;
  EXPECT_TRUE(sketch.empty());
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  sketch.Add(0.0);
  sketch.Add(1e-12);  // below the indexable floor
  EXPECT_EQ(sketch.zero_count(), 2u);
  EXPECT_EQ(sketch.count(), 2u);
  EXPECT_EQ(sketch.Quantile(0.5), 0.0);
  sketch.Add(10.0);
  // With {0, 0, 10} the p99 rank (0.99 * 2 = 1.98) still lands in the
  // zero region; only the max rank reaches the positive sample.
  EXPECT_EQ(sketch.Quantile(0.99), 0.0);
  EXPECT_GT(sketch.Quantile(1.0), 0.0);
}

TEST(QuantileSketch, MergeRejectsGeometryMismatch) {
  QuantileSketch a(0.01);
  QuantileSketch b(0.02);
  a.Add(1.0);
  b.Add(1.0);
  EXPECT_FALSE(a.SameShape(b));
  EXPECT_THROW(a.Merge(b), gametrace::ContractViolation);
}

TEST(QuantileSketch, MemoryIsBoundedByTheStoreCap) {
  QuantileSketch sketch(0.01, 128);
  sim::Rng rng(3);
  for (int i = 0; i < 1000; ++i) sketch.Add(std::exp(10.0 * rng.NextDouble()));
  const std::size_t after_1k = sketch.MemoryBytes();
  for (int i = 0; i < 100000; ++i) sketch.Add(std::exp(10.0 * rng.NextDouble()));
  EXPECT_LE(sketch.MemoryBytes(), after_1k + 128 * sizeof(std::uint64_t));
  EXPECT_LE(sketch.bucket_count(), 128u);
}

}  // namespace
}  // namespace gametrace::stats
