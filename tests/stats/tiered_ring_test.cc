// TieredRing: RRD-style fold-on-eviction correctness, lifetime aggregates,
// bounded memory, the bulk-add equivalence the server's per-tick wiring
// relies on, and the lockstep merge contract that makes fleet output
// bit-identical at any worker count.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "sim/rng.h"
#include "stats/tiered_ring.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

// A tiny schedule the tests can reason about exactly: 1 s base bins (4
// held), folding 4:1 into 4 s bins (4 held), folding 4:1 into 16 s bins.
TieredRing::Options TinySchedule(TieredRing::Reduction reduction = TieredRing::Reduction::kSum,
                                 bool track_hurst = false) {
  TieredRing::Options options;
  options.tiers = {{.interval = 1.0, .capacity = 4},
                   {.interval = 4.0, .capacity = 4},
                   {.interval = 16.0, .capacity = 2}};
  options.reduction = reduction;
  options.track_hurst = track_hurst;
  options.hurst_scales = 4;
  return options;
}

// Every held bin value of every tier plus eviction aggregates, as a
// comparable fingerprint.
std::string Fingerprint(const TieredRing& ring) {
  std::string out;
  for (std::size_t k = 0; k < ring.tier_count(); ++k) {
    out += "tier" + std::to_string(k) + ":" + std::to_string(ring.tier_first(k)) + "+" +
           std::to_string(ring.tier_held(k)) + "|";
    for (std::int64_t i = ring.tier_first(k);
         i < ring.tier_first(k) + static_cast<std::int64_t>(ring.tier_held(k)); ++i) {
      out += std::to_string(ring.TierValue(k, i)) + ",";
    }
    const TieredRing::TierStats stats = ring.Stats(k);
    out += "|" + std::to_string(stats.bins) + "/" + std::to_string(stats.mean) + "/" +
           std::to_string(stats.peak) + ";";
  }
  return out;
}

TEST(TieredRing, EvictedBaseBinsFoldIntoCoarseTiersExactly) {
  TieredRing ring(TinySchedule());
  // One unit sample per second for 24 s: base bins all 1, every 4 s bin 4,
  // every 16 s bin 16.
  for (int s = 0; s < 24; ++s) ring.Add(static_cast<double>(s) + 0.5);

  EXPECT_EQ(ring.tier_held(0), 4u);
  EXPECT_EQ(ring.tier_first(0), 20);
  for (std::int64_t i = 20; i < 24; ++i) EXPECT_EQ(ring.TierValue(0, i), 1.0);

  // Base evicted 20 bins -> coarse bins 0..4 exist; bin 4 still filling.
  EXPECT_EQ(ring.tier_first(1) + static_cast<std::int64_t>(ring.tier_held(1)), 5);
  for (std::int64_t i = ring.tier_first(1); i < 4; ++i) {
    EXPECT_EQ(ring.TierValue(1, i), 4.0) << "4 s bin " << i;
  }

  const TieredRing::TierStats base = ring.Stats(0);
  EXPECT_EQ(base.bins, 24u);
  EXPECT_DOUBLE_EQ(base.mean, 1.0);
  EXPECT_DOUBLE_EQ(base.peak, 1.0);
}

TEST(TieredRing, LifetimeAggregatesSurviveEviction) {
  TieredRing ring(TinySchedule());
  // A burst of 9 in bin 2, then enough quiet bins to evict it everywhere.
  ring.Add(2.5, 9.0);
  for (int s = 3; s < 40; ++s) ring.Add(static_cast<double>(s) + 0.5);
  const TieredRing::TierStats base = ring.Stats(0);
  EXPECT_DOUBLE_EQ(base.peak, 9.0);  // the burst outlives its bin
  EXPECT_GT(base.bins, 30u);
}

TEST(TieredRing, BulkAddMatchesUnitAddsUnderSumReduction) {
  // The server folds each tick's packet count in as one Add(t, n); under
  // kSum every exposed value (tier values, stats, Hurst feed) must match
  // n unit adds at the same timestamp.
  TieredRing bulk(TinySchedule(TieredRing::Reduction::kSum, /*track_hurst=*/true));
  TieredRing units(TinySchedule(TieredRing::Reduction::kSum, /*track_hurst=*/true));
  sim::Rng rng(17);
  for (int s = 0; s < 64; ++s) {
    const auto n = 1 + static_cast<int>(rng.NextBelow(7));
    const double t = static_cast<double>(s) + 0.25;
    bulk.Add(t, static_cast<double>(n));
    for (int i = 0; i < n; ++i) units.Add(t);
  }
  EXPECT_EQ(Fingerprint(bulk), Fingerprint(units));
  ASSERT_NE(bulk.hurst(), nullptr);
  EXPECT_EQ(bulk.hurst()->samples(), units.hurst()->samples());
}

TEST(TieredRing, LateSamplesAreCountedNotCrashed) {
  TieredRing ring(TinySchedule());
  for (int s = 0; s < 10; ++s) ring.Add(static_cast<double>(s) + 0.5);
  EXPECT_EQ(ring.dropped_late(), 0u);
  ring.Add(1.5);  // bin 1 was evicted long ago
  EXPECT_EQ(ring.dropped_late(), 1u);
  // The window did not move backwards.
  EXPECT_EQ(ring.tier_first(0), 6);
}

TEST(TieredRing, AdvanceToClosesEmptyBinsAndKeepsAddConsistent) {
  TieredRing ring(TinySchedule());
  ring.Add(0.5);
  ring.AdvanceTo(10.0);  // closes bins 1..9 as zeros
  EXPECT_EQ(ring.tier_first(0) + static_cast<std::int64_t>(ring.tier_held(0)), 11);
  ring.Add(10.5);  // lands in the advanced-to bin, not a stale cached one
  EXPECT_EQ(ring.TierValue(0, 10), 1.0);
  ring.Add(0.6);  // before the window: late
  EXPECT_EQ(ring.dropped_late(), 1u);
}

TEST(TieredRing, MergedShardsEqualTheSummedStreamBitForBit) {
  // Shard the same grid across 8 rings (each sees its own traffic), then
  // reduce in shard order, reversed, and pairwise (1/2/8-worker shapes).
  // kSum folding is exact, so every reduction must equal the ring of the
  // summed stream bit for bit.
  sim::Rng rng(29);
  std::vector<std::vector<double>> load(8, std::vector<double>(48));
  for (auto& shard : load) {
    for (auto& v : shard) v = static_cast<double>(rng.NextBelow(50));
  }

  const auto run_shard = [&](std::size_t k) {
    TieredRing ring(TinySchedule(TieredRing::Reduction::kSum, /*track_hurst=*/true));
    for (std::size_t s = 0; s < load[k].size(); ++s) {
      ring.Add(static_cast<double>(s) + 0.5, load[k][s]);
    }
    ring.AdvanceTo(48.0);  // common end-of-run grid alignment
    return ring;
  };

  TieredRing whole(TinySchedule(TieredRing::Reduction::kSum, /*track_hurst=*/true));
  for (std::size_t s = 0; s < 48; ++s) {
    double total = 0.0;
    for (const auto& shard : load) total += shard[s];
    whole.Add(static_cast<double>(s) + 0.5, total);
  }
  whole.AdvanceTo(48.0);

  // Held windows are exact under kSum: the merged ring's bins equal the
  // summed stream's bins bit for bit. (Eviction PEAKS deliberately differ:
  // a merge keeps the worst single-shard burst, not the aggregate peak -
  // so they are compared across reduction shapes, not against `whole`.)
  const auto held_values = [](const TieredRing& ring) {
    std::string out;
    for (std::size_t k = 0; k < ring.tier_count(); ++k) {
      out += std::to_string(ring.tier_first(k)) + "+" + std::to_string(ring.tier_held(k)) + "|";
      for (std::int64_t i = ring.tier_first(k);
           i < ring.tier_first(k) + static_cast<std::int64_t>(ring.tier_held(k)); ++i) {
        out += std::to_string(ring.TierValue(k, i)) + ",";
      }
    }
    return out;
  };

  TieredRing forward = run_shard(0);
  for (std::size_t k = 1; k < 8; ++k) forward.Merge(run_shard(k));
  EXPECT_EQ(held_values(forward), held_values(whole));

  TieredRing backward = run_shard(7);
  for (std::size_t k = 7; k-- > 0;) backward.Merge(run_shard(k));

  std::vector<TieredRing> tree;
  for (std::size_t k = 0; k < 8; ++k) tree.push_back(run_shard(k));
  while (tree.size() > 1) {
    std::vector<TieredRing> next;
    for (std::size_t i = 0; i + 1 < tree.size(); i += 2) {
      tree[i].Merge(tree[i + 1]);
      next.push_back(tree[i]);
    }
    tree = std::move(next);
  }

  // Worker-count invariance: every reduction shape lands on identical
  // full state (integer-valued loads keep the sums exact).
  EXPECT_EQ(Fingerprint(forward), Fingerprint(backward));
  EXPECT_EQ(Fingerprint(forward), Fingerprint(tree.front()));

  // The pooled Hurst sees the same number of base bins either way.
  ASSERT_NE(forward.hurst(), nullptr);
  EXPECT_EQ(forward.hurst()->samples(), whole.hurst()->samples() * 8);
}

TEST(TieredRing, MergeRejectsShapeAndLockstepViolations) {
  TieredRing a(TinySchedule());
  TieredRing b(TinySchedule(TieredRing::Reduction::kMax));
  EXPECT_FALSE(a.SameShape(b));
  EXPECT_THROW(a.Merge(b), gametrace::ContractViolation);

  TieredRing c(TinySchedule());
  TieredRing d(TinySchedule());
  c.Add(0.5);
  d.Add(9.5);  // different advancement: lockstep precondition broken
  EXPECT_TRUE(c.SameShape(d));
  EXPECT_THROW(c.Merge(d), gametrace::ContractViolation);
}

TEST(TieredRing, MemoryStaysFlatAsTheStreamGrows) {
  TieredRing ring(TieredRing::Options::PaperSchedule(0.05));
  double t = 0.0;
  for (int i = 0; i < 2000; ++i) ring.Add(t += 0.05, 13.0);
  const std::size_t early = ring.MemoryBytes();
  for (int i = 0; i < 200000; ++i) ring.Add(t += 0.05, 13.0);
  EXPECT_EQ(ring.MemoryBytes(), early);
}

TEST(TieredRing, PaperScheduleSpansAWeekOfHours) {
  const auto options = TieredRing::Options::PaperSchedule(0.050);
  TieredRing ring(options);
  ASSERT_EQ(ring.tier_count(), 4u);
  EXPECT_DOUBLE_EQ(ring.tier_interval(0), 0.050);
  EXPECT_DOUBLE_EQ(ring.tier_interval(1), 1.0);
  EXPECT_DOUBLE_EQ(ring.tier_interval(2), 60.0);
  EXPECT_DOUBLE_EQ(ring.tier_interval(3), 3600.0);
  EXPECT_EQ(ring.tier_capacity(3), 168u);  // one week of hourly bins
}

TEST(TieredRing, HurstFeedConsumesEvictedBaseBins) {
  TieredRing ring(TinySchedule(TieredRing::Reduction::kSum, /*track_hurst=*/true));
  for (int s = 0; s < 30; ++s) ring.Add(static_cast<double>(s) + 0.5, 2.0);
  ASSERT_NE(ring.hurst(), nullptr);
  EXPECT_EQ(ring.hurst()->samples(), ring.tier_evicted(0));
  EXPECT_GT(ring.hurst()->samples(), 0u);
}

}  // namespace
}  // namespace gametrace::stats
