#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::stats {
namespace {

TEST(Histogram, ConstructionValidation) {
  EXPECT_THROW(Histogram(1.0, 1.0, 10), gametrace::ContractViolation);
  EXPECT_THROW(Histogram(2.0, 1.0, 10), gametrace::ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), gametrace::ContractViolation);
}

TEST(Histogram, BinGeometry) {
  Histogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.bin_count(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_left(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_center(0), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_center(9), 95.0);
}

TEST(Histogram, AddPlacesInCorrectBin) {
  Histogram h(0.0, 100.0, 10);
  h.Add(0.0);
  h.Add(9.999);
  h.Add(10.0);
  h.Add(99.0);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(9), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.total_in_range(), 4u);
}

TEST(Histogram, UnderOverflowTracked) {
  Histogram h(10.0, 20.0, 5);
  h.Add(5.0);
  h.Add(20.0);  // hi is exclusive
  h.Add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
  EXPECT_EQ(h.total_in_range(), 0u);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0.0, 10.0, 2);
  h.Add(1.0, 7);
  h.Add(6.0, 3);
  EXPECT_EQ(h.count(0), 7u);
  EXPECT_EQ(h.count(1), 3u);
  EXPECT_EQ(h.total(), 10u);
}

TEST(Histogram, PdfSumsToInRangeFraction) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 8; ++i) h.Add(static_cast<double>(i));
  h.Add(50.0);  // overflow
  h.Add(-1.0);  // underflow
  const auto pdf = h.Pdf();
  double sum = 0.0;
  for (double p : pdf) sum += p;
  EXPECT_NEAR(sum, 0.8, 1e-12);
}

TEST(Histogram, CdfIsMonotoneAndEndsAtInRangeMass) {
  Histogram h(0.0, 100.0, 20);
  for (int i = 0; i < 1000; ++i) h.Add(static_cast<double>(i % 100));
  const auto cdf = h.Cdf();
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf.back(), 1.0, 1e-12);
}

TEST(Histogram, CdfCountsUnderflowBelowFirstBin) {
  Histogram h(10.0, 20.0, 2);
  h.Add(0.0);   // underflow
  h.Add(12.0);  // bin 0
  const auto cdf = h.Cdf();
  EXPECT_NEAR(cdf[0], 1.0, 1e-12);  // underflow + bin0 = everything
}

TEST(Histogram, QuantileInterpolatesWithinBin) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.Add(5.0);  // all mass in bin 5
  EXPECT_NEAR(h.Quantile(0.5), 5.5, 0.5);
  EXPECT_GE(h.Quantile(0.999), 5.0);
  EXPECT_LT(h.Quantile(0.999), 6.0);
}

TEST(Histogram, QuantileValidation) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_THROW((void)h.Quantile(-0.1), gametrace::ContractViolation);
  EXPECT_THROW((void)h.Quantile(1.1), gametrace::ContractViolation);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);  // empty -> lo
}

TEST(Histogram, ModeBin) {
  Histogram h(0.0, 10.0, 10);
  h.Add(3.5);
  h.Add(3.6);
  h.Add(7.0);
  EXPECT_EQ(h.ModeBin(), 3u);
}

TEST(Histogram, ModeBinEmptyThrows) {
  Histogram h(0.0, 10.0, 10);
  EXPECT_THROW((void)h.ModeBin(), gametrace::ContractViolation);
}

TEST(Histogram, ApproxMeanFromBinCenters) {
  Histogram h(0.0, 10.0, 10);
  h.Add(2.2);  // bin 2 center 2.5
  h.Add(7.9);  // bin 7 center 7.5
  EXPECT_NEAR(h.ApproxMean(), 5.0, 1e-12);
}

TEST(Histogram, MergeAddsCounts) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 10);
  a.Add(1.0);
  b.Add(1.0);
  b.Add(11.0);
  a.Merge(b);
  EXPECT_EQ(a.count(0), 0u);
  EXPECT_EQ(a.count(1), 2u);
  EXPECT_EQ(a.overflow(), 1u);
  EXPECT_EQ(a.total(), 3u);
}

TEST(Histogram, MergeIncompatibleThrows) {
  Histogram a(0.0, 10.0, 10);
  Histogram b(0.0, 10.0, 5);
  EXPECT_THROW(a.Merge(b), gametrace::ContractViolation);
}

// Property sweep: for a uniform fill, every quantile q must be within one
// bin width of q * range.
class HistogramQuantileSweep : public ::testing::TestWithParam<double> {};

TEST_P(HistogramQuantileSweep, UniformFillQuantiles) {
  Histogram h(0.0, 1000.0, 100);
  for (int i = 0; i < 10000; ++i) h.Add(static_cast<double>(i % 1000));
  const double q = GetParam();
  EXPECT_NEAR(h.Quantile(q), q * 1000.0, 10.0 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, HistogramQuantileSweep,
                         ::testing::Values(0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99));

}  // namespace
}  // namespace gametrace::stats
