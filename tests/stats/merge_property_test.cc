// Property tests for the mergeable accumulators: Merge(A, B) must equal a
// single pass over the concatenated streams, for arbitrary split points.
// This is the correctness foundation of the sharded fleet engine.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.h"
#include "stats/histogram.h"
#include "stats/quantile.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

std::vector<double> RandomStream(std::uint64_t seed, std::size_t n, double scale) {
  sim::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = scale * rng.NextDouble();
  return xs;
}

TEST(MergeProperty, RunningStatsEqualsSinglePass) {
  sim::Rng split_rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const auto xs = RandomStream(100 + static_cast<std::uint64_t>(trial), 400, 250.0);
    const std::size_t cut = split_rng.NextBelow(xs.size() + 1);

    RunningStats whole;
    for (double x : xs) whole.Add(x);
    RunningStats left;
    RunningStats right;
    for (std::size_t i = 0; i < xs.size(); ++i) (i < cut ? left : right).Add(xs[i]);
    left.Merge(right);

    EXPECT_EQ(left.count(), whole.count());
    EXPECT_DOUBLE_EQ(left.min(), whole.min());
    EXPECT_DOUBLE_EQ(left.max(), whole.max());
    EXPECT_NEAR(left.mean(), whole.mean(), 1e-9 * (1.0 + std::abs(whole.mean())));
    EXPECT_NEAR(left.variance(), whole.variance(), 1e-7 * (1.0 + whole.variance()));
  }
}

TEST(MergeProperty, RunningStatsPairwiseTreeReduction) {
  // Merge must also compose: reducing 8 shards pairwise equals one pass.
  const auto xs = RandomStream(42, 800, 100.0);
  RunningStats whole;
  for (double x : xs) whole.Add(x);

  std::vector<RunningStats> shards(8);
  for (std::size_t i = 0; i < xs.size(); ++i) shards[i % 8].Add(xs[i]);
  while (shards.size() > 1) {
    std::vector<RunningStats> next;
    for (std::size_t i = 0; i + 1 < shards.size(); i += 2) {
      shards[i].Merge(shards[i + 1]);
      next.push_back(shards[i]);
    }
    if (shards.size() % 2 == 1) next.push_back(shards.back());
    shards = std::move(next);
  }
  EXPECT_EQ(shards[0].count(), whole.count());
  EXPECT_NEAR(shards[0].mean(), whole.mean(), 1e-9 * (1.0 + std::abs(whole.mean())));
  EXPECT_NEAR(shards[0].variance(), whole.variance(), 1e-7 * (1.0 + whole.variance()));
}

TEST(MergeProperty, HistogramEqualsSinglePassExactly) {
  for (int trial = 0; trial < 10; ++trial) {
    const auto xs = RandomStream(900 + static_cast<std::uint64_t>(trial), 500, 600.0);
    const std::size_t cut = 37 * static_cast<std::size_t>(trial) % (xs.size() + 1);

    Histogram whole(0.0, 500.0, 50);
    Histogram left(0.0, 500.0, 50);
    Histogram right(0.0, 500.0, 50);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      whole.Add(xs[i]);
      (i < cut ? left : right).Add(xs[i]);
    }
    left.Merge(right);

    EXPECT_EQ(left.total(), whole.total());
    EXPECT_EQ(left.underflow(), whole.underflow());
    EXPECT_EQ(left.overflow(), whole.overflow());
    for (std::size_t b = 0; b < whole.bin_count(); ++b) {
      EXPECT_EQ(left.count(b), whole.count(b)) << "bin " << b;
    }
  }
}

TEST(MergeProperty, TimeSeriesEqualsSinglePass) {
  sim::Rng rng(5);
  TimeSeries whole(0.0, 0.5);
  TimeSeries a(0.0, 0.5);
  TimeSeries b(0.0, 0.5);
  for (int i = 0; i < 2000; ++i) {
    const double t = 120.0 * rng.NextDouble() - 1.0;  // some land before start
    // Integer weights keep per-bin sums exact under any addition order.
    const double v = static_cast<double>(1 + rng.NextBelow(9));
    whole.Add(t, v);
    ((i % 3 == 0) ? a : b).Add(t, v);
  }
  a.Merge(b);
  ASSERT_EQ(a.size(), whole.size());
  for (std::size_t i = 0; i < whole.size(); ++i) EXPECT_DOUBLE_EQ(a[i], whole[i]);
  EXPECT_EQ(a.dropped_before_start(), whole.dropped_before_start());
}

TEST(MergeProperty, TimeSeriesMergeRejectsGeometryMismatch) {
  TimeSeries a(0.0, 1.0);
  TimeSeries interval(0.0, 2.0);
  TimeSeries start(1.0, 1.0);
  EXPECT_THROW(a.Merge(interval), gametrace::ContractViolation);
  EXPECT_THROW(a.Merge(start), gametrace::ContractViolation);
}

TEST(MergeProperty, TimeSeriesMergeExtendsToLongerSeries) {
  TimeSeries a(0.0, 1.0);
  TimeSeries b(0.0, 1.0);
  a.Add(0.5, 1.0);
  b.Add(9.5, 2.0);
  a.Merge(b);
  ASSERT_EQ(a.size(), 10u);
  EXPECT_DOUBLE_EQ(a[0], 1.0);
  EXPECT_DOUBLE_EQ(a[9], 2.0);
}

TEST(MergeProperty, P2QuantileMergeTracksExactQuantile) {
  // The P-square merge is approximate; it must stay within the estimator's
  // own error envelope of the exact order statistic.
  auto xs = RandomStream(77, 4000, 1000.0);
  P2Quantile merged(0.9);
  {
    P2Quantile left(0.9);
    P2Quantile right(0.9);
    for (std::size_t i = 0; i < xs.size(); ++i) ((i < xs.size() / 2) ? left : right).Add(xs[i]);
    left.Merge(right);
    merged = left;
  }
  EXPECT_EQ(merged.count(), xs.size());

  std::sort(xs.begin(), xs.end());
  const double exact = xs[static_cast<std::size_t>(0.9 * static_cast<double>(xs.size()))];
  EXPECT_NEAR(merged.Value(), exact, 0.05 * 1000.0);
}

TEST(MergeProperty, P2QuantileMergeSmallSides) {
  P2Quantile a(0.5);
  P2Quantile b(0.5);
  for (double x : {1.0, 2.0, 3.0}) a.Add(x);
  for (double x : {4.0, 5.0}) b.Add(x);
  a.Merge(b);  // both below 5 samples: replayed exactly
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.Value(), 3.0);

  P2Quantile empty(0.5);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 5u);

  P2Quantile mismatched(0.25);
  EXPECT_THROW(a.Merge(mismatched), gametrace::ContractViolation);
}

}  // namespace
}  // namespace gametrace::stats
