// AddBatch fast paths must be bit-identical to the scalar Add loop for any
// input split at any boundaries - the same contract the batched sinks rely
// on (trace/capture.h). Comparisons are exact (EXPECT_EQ on doubles).
#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"
#include "stats/histogram.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"

namespace gametrace::stats {
namespace {

// Values with long same-bin runs (the tick-burst pattern AddBatch
// optimises), plus out-of-range stragglers.
std::vector<double> RunHeavyValues(std::uint64_t seed, std::size_t n, double lo, double hi) {
  sim::Rng rng(seed);
  std::vector<double> out;
  out.reserve(n);
  double current = lo + (hi - lo) * rng.NextDouble();
  while (out.size() < n) {
    const std::uint64_t run = 1 + rng.NextBelow(40);
    for (std::uint64_t i = 0; i < run && out.size() < n; ++i) out.push_back(current);
    const std::uint64_t move = rng.NextBelow(10);
    if (move < 7) {
      current = lo + (hi - lo) * rng.NextDouble();  // jump within range
    } else if (move == 7) {
      current = lo - 1.0 - 10.0 * rng.NextDouble();  // underflow / before start
    } else {
      current = hi + 1.0 + 10.0 * rng.NextDouble();  // overflow / past end
    }
  }
  return out;
}

// Feeds `xs` to `fn` in random contiguous chunks (including empty ones).
template <typename Fn>
void SplitRandomly(const std::vector<double>& xs, std::uint64_t seed, Fn fn) {
  sim::Rng rng(seed);
  const std::span<const double> all(xs);
  std::size_t i = 0;
  while (i < xs.size()) {
    if (rng.NextBelow(16) == 0) fn(all.subspan(i, 0));
    const std::size_t len = std::min<std::size_t>(1 + rng.NextBelow(64), xs.size() - i);
    fn(all.subspan(i, len));
    i += len;
  }
}

TEST(AddBatch, TimeSeriesIdenticalToScalar) {
  const auto times = RunHeavyValues(11, 50000, 0.0, 600.0);
  TimeSeries scalar(0.0, 60.0), batched(0.0, 60.0);
  for (const double t : times) scalar.Add(t, 2.0);
  SplitRandomly(times, 111, [&](std::span<const double> chunk) {
    batched.AddBatch(chunk, 2.0);
  });
  EXPECT_EQ(scalar.dropped_before_start(), batched.dropped_before_start());
  ASSERT_EQ(scalar.size(), batched.size());
  EXPECT_EQ(scalar.values(), batched.values());
}

TEST(AddBatch, TimeSeriesCountsDropsBeforeStart) {
  TimeSeries ts(100.0, 10.0);
  const std::vector<double> times{50.0, 99.9, 100.0, 105.0, 250.0};
  ts.AddBatch(times);
  EXPECT_EQ(ts.dropped_before_start(), 2u);
  EXPECT_EQ(ts.Sum(), 3.0);
}

TEST(AddBatch, HistogramIdenticalToScalar) {
  const auto xs = RunHeavyValues(12, 50000, 0.0, 500.0);
  Histogram scalar(0.0, 500.0, 500), batched(0.0, 500.0, 500);
  for (const double x : xs) scalar.Add(x, 3);
  SplitRandomly(xs, 112, [&](std::span<const double> chunk) {
    batched.AddBatch(chunk, 3);
  });
  ASSERT_EQ(scalar.bin_count(), batched.bin_count());
  for (std::size_t i = 0; i < scalar.bin_count(); ++i) {
    ASSERT_EQ(scalar.count(i), batched.count(i)) << "bin " << i;
  }
  EXPECT_EQ(scalar.underflow(), batched.underflow());
  EXPECT_EQ(scalar.overflow(), batched.overflow());
  EXPECT_EQ(scalar.total(), batched.total());
}

TEST(AddBatch, HistogramTopEdgeLandsInLastBin) {
  // x == hi maps into the last bin (scalar Add's clamp); the batch path
  // must agree.
  Histogram scalar(0.0, 10.0, 10), batched(0.0, 10.0, 10);
  const std::vector<double> xs{10.0, 10.0, 9.999, 0.0};
  for (const double x : xs) scalar.Add(x);
  batched.AddBatch(xs);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(scalar.count(i), batched.count(i));
  EXPECT_EQ(scalar.overflow(), batched.overflow());
}

TEST(AddBatch, RunningStatsIdenticalToScalar) {
  // Welford is order-sensitive; the batch path must preserve the exact
  // sequential recurrence, so moments match bitwise at any split.
  const auto xs = RunHeavyValues(13, 50000, -100.0, 100.0);
  RunningStats scalar, batched;
  for (const double x : xs) scalar.Add(x);
  SplitRandomly(xs, 113, [&](std::span<const double> chunk) { batched.AddBatch(chunk); });
  EXPECT_EQ(scalar.count(), batched.count());
  EXPECT_EQ(scalar.mean(), batched.mean());
  EXPECT_EQ(scalar.variance(), batched.variance());
  EXPECT_EQ(scalar.min(), batched.min());
  EXPECT_EQ(scalar.max(), batched.max());
  EXPECT_EQ(scalar.sum(), batched.sum());
}

TEST(AddBatch, EmptyBatchIsNoOp) {
  TimeSeries ts(0.0, 1.0);
  Histogram h(0.0, 1.0, 4);
  RunningStats rs;
  const std::span<const double> empty;
  ts.AddBatch(empty);
  h.AddBatch(empty);
  rs.AddBatch(empty);
  EXPECT_TRUE(ts.empty());
  EXPECT_EQ(h.total(), 0u);
  EXPECT_TRUE(rs.empty());
}

}  // namespace
}  // namespace gametrace::stats
