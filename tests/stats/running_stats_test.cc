#include "stats/running_stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace gametrace::stats {
namespace {

TEST(RunningStats, EmptyIsZeroed) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.Add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.population_variance(), 4.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.Add(-3.0);
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);  // zero mean -> defined as 0
}

TEST(RunningStats, CvMatchesDefinition) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0}) s.Add(x);
  EXPECT_NEAR(s.cv(), s.stddev() / s.mean(), 1e-15);
}

TEST(RunningStats, MergeEqualsSequential) {
  RunningStats a;
  RunningStats b;
  RunningStats all;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i * 0.7) * 10.0 + i * 0.01;
    (i % 2 == 0 ? a : b).Add(x);
    all.Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a;
  a.Add(1.0);
  a.Add(3.0);
  RunningStats empty;
  a.Merge(empty);  // no-op
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);

  RunningStats target;
  target.Merge(a);  // copies
  EXPECT_EQ(target.count(), 2u);
  EXPECT_DOUBLE_EQ(target.mean(), 2.0);
}

TEST(RunningStats, ResetClearsEverything) {
  RunningStats s;
  s.Add(5.0);
  s.Reset();
  EXPECT_TRUE(s.empty());
  s.Add(7.0);
  EXPECT_DOUBLE_EQ(s.mean(), 7.0);
}

TEST(RunningStats, NumericalStabilityLargeOffset) {
  // Welford should not lose the variance of values with a huge common
  // offset (the naive sum-of-squares formula does).
  RunningStats s;
  const double offset = 1e12;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.Add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-3);
}

TEST(RunningStats, ManySamplesMeanConverges) {
  RunningStats s;
  for (int i = 0; i < 1000000; ++i) s.Add(static_cast<double>(i % 10));
  EXPECT_NEAR(s.mean(), 4.5, 1e-9);
  EXPECT_EQ(s.count(), 1000000u);
}

}  // namespace
}  // namespace gametrace::stats
