#include "stats/autocorrelation.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::stats {
namespace {

TEST(Autocorrelation, LagZeroIsOne) {
  const std::vector<double> xs{1.0, 5.0, 2.0, 8.0, 3.0};
  EXPECT_DOUBLE_EQ(AutocorrelationAt(xs, 0), 1.0);
}

TEST(Autocorrelation, ConstantSeriesIsZero) {
  const std::vector<double> xs(100, 4.0);
  EXPECT_DOUBLE_EQ(AutocorrelationAt(xs, 1), 0.0);
  EXPECT_DOUBLE_EQ(AutocorrelationAt(xs, 0), 0.0);
}

TEST(Autocorrelation, LagValidation) {
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_THROW((void)AutocorrelationAt(xs, 2), gametrace::ContractViolation);
}

TEST(Autocorrelation, AlternatingSeriesNegativeAtLagOne) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(AutocorrelationAt(xs, 1), -0.9);
  EXPECT_GT(AutocorrelationAt(xs, 2), 0.9);
}

TEST(Autocorrelation, PeriodicSeriesPeaksAtPeriod) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(i % 5 == 0 ? 20.0 : 0.0);
  const auto ac = Autocorrelation(xs, 12);
  EXPECT_GT(ac[5], 0.9);
  EXPECT_GT(ac[10], 0.9);
  EXPECT_LT(ac[3], 0.0);
}

TEST(Autocorrelation, VectorHasMaxLagPlusOneEntries) {
  std::vector<double> xs(50, 0.0);
  xs[10] = 1.0;
  const auto ac = Autocorrelation(xs, 7);
  EXPECT_EQ(ac.size(), 8u);
}

TEST(DominantPeriod, FindsBroadcastTick) {
  // 10 ms bins, bursts every 50 ms -> dominant period 5 samples.
  std::vector<double> xs;
  for (int i = 0; i < 2000; ++i) xs.push_back(i % 5 == 0 ? 18.0 : 0.3);
  EXPECT_EQ(DominantPeriod(xs, 20), 5u);
}

TEST(DominantPeriod, ZeroWhenNoPositivePeak) {
  std::vector<double> xs(100, 1.0);
  EXPECT_EQ(DominantPeriod(xs, 10), 0u);
}

TEST(DominantPeriod, SineWave) {
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(std::sin(2.0 * M_PI * i / 25.0));
  EXPECT_EQ(DominantPeriod(xs, 40), 25u);
}

}  // namespace
}  // namespace gametrace::stats
