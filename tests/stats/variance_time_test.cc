#include "stats/variance_time.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/rng.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

// IID noise is the canonical short-range-dependent process: the
// variance-time slope must be -1, i.e. H = 1/2.
TEST(VarianceTime, IidNoiseHasHurstHalf) {
  sim::Rng rng(1);
  TimeSeries s(0.0, 0.01);
  for (int i = 0; i < 100000; ++i) s.Add(i * 0.01, sim::Normal(rng, 10.0, 2.0));
  const VarianceTimePlot plot = ComputeVarianceTime(s);
  const double h = plot.HurstEstimate(0.0, 1e9);
  EXPECT_NEAR(h, 0.5, 0.06);
}

// A strongly periodic series is anti-persistent at scales below its period:
// averaging across one full period kills nearly all variance, so the slope
// is steeper than -1 and H < 1/2. This is the paper's small-m regime.
TEST(VarianceTime, PeriodicSeriesIsAntiPersistentAtSmallScales) {
  TimeSeries s(0.0, 0.01);
  for (int i = 0; i < 50000; ++i) {
    // Burst every 5th bin - a 50 ms broadcast over 10 ms bins.
    s.Add(i * 0.01, (i % 5 == 0) ? 20.0 : 0.0);
  }
  const VarianceTimePlot plot = ComputeVarianceTime(s);
  const double h_small = plot.HurstEstimate(0.0, 0.05);
  EXPECT_LT(h_small, 0.35);
}

// A series with slow level shifts (map changes) keeps variance at mid
// scales: H over that band is high.
TEST(VarianceTime, LevelShiftsKeepMidScaleVariance) {
  sim::Rng rng(2);
  TimeSeries s(0.0, 0.01);
  for (int i = 0; i < 200000; ++i) {
    const double level = ((i / 30000) % 2 == 0) ? 10.0 : 2.0;  // 300 s regime shifts
    s.Add(i * 0.01, level + sim::Normal(rng, 0.0, 1.0));
  }
  const VarianceTimePlot plot = ComputeVarianceTime(s);
  const double h_mid = plot.HurstEstimate(0.05, 300.0);
  EXPECT_GT(h_mid, 0.75);
}

TEST(VarianceTime, NormalizedVarianceStartsAtOne) {
  sim::Rng rng(3);
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) s.Add(static_cast<double>(i), rng.NextDouble());
  const VarianceTimePlot plot = ComputeVarianceTime(s);
  ASSERT_FALSE(plot.points.empty());
  EXPECT_EQ(plot.points.front().m, 1u);
  EXPECT_DOUBLE_EQ(plot.points.front().normalized_variance, 1.0);
  EXPECT_DOUBLE_EQ(plot.points.front().log10_normalized_variance, 0.0);
}

TEST(VarianceTime, BlockSizesAreGeometric) {
  sim::Rng rng(4);
  TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 10000; ++i) s.Add(static_cast<double>(i), rng.NextDouble());
  const VarianceTimePlot plot = ComputeVarianceTime(s, {.ratio = 2.0, .min_blocks = 8});
  for (std::size_t i = 1; i < plot.points.size(); ++i) {
    EXPECT_EQ(plot.points[i].m, plot.points[i - 1].m * 2);
  }
  // Largest block still leaves >= 8 whole blocks.
  EXPECT_GE(10000u / plot.points.back().m, 8u);
}

TEST(VarianceTime, Validation) {
  TimeSeries tiny(0.0, 1.0);
  tiny.Add(0.0, 1.0);
  EXPECT_THROW((void)ComputeVarianceTime(tiny), gametrace::ContractViolation);

  TimeSeries constant(0.0, 1.0);
  for (int i = 0; i < 100; ++i) constant.Add(static_cast<double>(i), 5.0);
  EXPECT_THROW((void)ComputeVarianceTime(constant), gametrace::ContractViolation);

  TimeSeries ok(0.0, 1.0);
  for (int i = 0; i < 100; ++i) ok.Add(static_cast<double>(i), static_cast<double>(i % 3));
  EXPECT_THROW((void)ComputeVarianceTime(ok, {.ratio = 1.0}), gametrace::ContractViolation);
}

TEST(VarianceTime, FitRegionFiltersByInterval) {
  sim::Rng rng(5);
  TimeSeries s(0.0, 0.01);
  for (int i = 0; i < 100000; ++i) s.Add(i * 0.01, sim::Normal(rng, 5.0, 1.0));
  const VarianceTimePlot plot = ComputeVarianceTime(s);
  // A region with no points throws via FitLine.
  EXPECT_THROW((void)plot.FitRegion(1e6, 1e9), gametrace::ContractViolation);
  const LineFit fit = plot.FitRegion(0.0, 1e9);
  EXPECT_EQ(fit.n, plot.points.size());
}

TEST(VarianceTime, EstimateHurstRegionsHandlesShortTraces) {
  sim::Rng rng(6);
  TimeSeries s(0.0, 0.01);
  for (int i = 0; i < 5000; ++i) s.Add(i * 0.01, sim::Normal(rng, 5.0, 1.0));  // 50 s only
  const VarianceTimePlot plot = ComputeVarianceTime(s);
  const HurstRegions regions = EstimateHurstRegions(plot);
  // No points above 30 min: falls back to the asymptotic 1/2.
  EXPECT_DOUBLE_EQ(regions.large_scale, 0.5);
  EXPECT_GT(regions.small_scale, 0.0);
}

}  // namespace
}  // namespace gametrace::stats
