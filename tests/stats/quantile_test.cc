#include "stats/quantile.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/rng.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

TEST(P2Quantile, Validation) {
  EXPECT_THROW(P2Quantile(0.0), gametrace::ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), gametrace::ContractViolation);
  EXPECT_NO_THROW(P2Quantile(0.5));
}

TEST(P2Quantile, EmptyReturnsZero) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.Value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2Quantile, FewSamplesExact) {
  P2Quantile q(0.5);
  q.Add(3.0);
  EXPECT_DOUBLE_EQ(q.Value(), 3.0);
  q.Add(1.0);
  q.Add(2.0);
  // 3 samples, median-ish order statistic.
  const double v = q.Value();
  EXPECT_GE(v, 1.0);
  EXPECT_LE(v, 3.0);
}

TEST(P2Quantile, UniformMedian) {
  P2Quantile q(0.5);
  sim::Rng rng(42);
  for (int i = 0; i < 100000; ++i) q.Add(rng.NextDouble());
  EXPECT_NEAR(q.Value(), 0.5, 0.02);
}

TEST(P2Quantile, UniformP99) {
  P2Quantile q(0.99);
  sim::Rng rng(43);
  for (int i = 0; i < 100000; ++i) q.Add(rng.NextDouble());
  EXPECT_NEAR(q.Value(), 0.99, 0.01);
}

TEST(P2Quantile, ExponentialP90) {
  P2Quantile q(0.9);
  sim::Rng rng(44);
  for (int i = 0; i < 200000; ++i) q.Add(sim::Exponential(rng, 1.0));
  // True p90 of Exp(1) is ln(10) ~ 2.3026.
  EXPECT_NEAR(q.Value(), 2.3026, 0.12);
}

TEST(P2Quantile, MonotoneInputs) {
  P2Quantile q(0.5);
  for (int i = 1; i <= 1001; ++i) q.Add(static_cast<double>(i));
  EXPECT_NEAR(q.Value(), 501.0, 15.0);
}

class P2Sweep : public ::testing::TestWithParam<double> {};

TEST_P(P2Sweep, MatchesExactQuantileOnNormal) {
  const double target = GetParam();
  P2Quantile q(target);
  sim::Rng rng(7);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = sim::Normal(rng, 100.0, 15.0);
    q.Add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(target * (all.size() - 1))];
  EXPECT_NEAR(q.Value(), exact, 1.0);  // within ~0.07 sigma
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Sweep, ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95));

// ---- Merge order-sensitivity audit ------------------------------------
//
// P2Quantile::Merge averages marker heights weighted by sample count.
// Audit conclusions, pinned by the tests below:
//   1. A single pairwise merge is SYMMETRIC to the last bit: IEEE
//      addition and multiplication commute, so A.Merge(B) and B.Merge(A)
//      compute identical heights (when both sides hold >= 5 samples; a
//      smaller side is replayed exactly through Add, which is also
//      symmetric in outcome).
//   2. A chain of merges is NOT associative: the height averaging
//      re-weights at each fold, so (A+B)+C and A+(B+C) can differ by
//      more than rounding. All groupings stay within P2's estimation
//      error of the true quantile, but they are distinct states.
//   3. Therefore the fleet's byte-identity guarantee for P2 instruments
//      rests on the reducer folding shards in FIXED shard order -
//      which conclusion (1) plus determinism of Add makes reproducible.

std::vector<double> MergeAuditStream(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = sim::Exponential(rng, 0.1);
  return xs;
}

TEST(P2Quantile, MergeIsPairwiseSymmetric) {
  const auto a_samples = MergeAuditStream(61, 400);
  const auto b_samples = MergeAuditStream(67, 300);

  P2Quantile ab(0.9);
  P2Quantile ba(0.9);
  {
    P2Quantile a(0.9), b(0.9);
    for (double x : a_samples) a.Add(x);
    for (double x : b_samples) b.Add(x);
    ab = a;
    ab.Merge(b);
    ba = b;
    ba.Merge(a);
  }
  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_DOUBLE_EQ(ab.Value(), ba.Value());
}

TEST(P2Quantile, MergeSmallSideReplaysExactly) {
  // A side with < 5 samples has no markers yet; Merge must fold it in as
  // if its samples had been Added directly.
  const auto big = MergeAuditStream(71, 200);
  P2Quantile merged(0.5);
  P2Quantile replayed(0.5);
  for (double x : big) {
    merged.Add(x);
    replayed.Add(x);
  }
  P2Quantile tiny(0.5);
  tiny.Add(42.0);
  tiny.Add(7.0);
  tiny.Add(13.0);
  merged.Merge(tiny);
  replayed.Add(42.0);
  replayed.Add(7.0);
  replayed.Add(13.0);
  EXPECT_EQ(merged.count(), replayed.count());
  EXPECT_DOUBLE_EQ(merged.Value(), replayed.Value());
}

TEST(P2Quantile, MergeFoldIsDeterministicButOrderSensitive) {
  constexpr std::size_t kShards = 8;
  const auto xs = MergeAuditStream(73, 8000);
  const auto shard = [&xs](std::size_t k) {
    P2Quantile q(0.9);
    for (std::size_t i = k; i < xs.size(); i += kShards) q.Add(xs[i]);
    return q;
  };

  // The fleet's fixed shard-order fold: repeating it reproduces the same
  // bits every time (this is what the worker-count invariance rides on).
  const auto fold_forward = [&] {
    P2Quantile acc = shard(0);
    for (std::size_t k = 1; k < kShards; ++k) acc.Merge(shard(k));
    return acc;
  };
  const P2Quantile once = fold_forward();
  const P2Quantile again = fold_forward();
  EXPECT_EQ(once.count(), again.count());
  EXPECT_DOUBLE_EQ(once.Value(), again.Value());

  // A pairwise tree (a different grouping of the same shards) generally
  // lands on a different - but still accurate - estimate. Bound both
  // against the exact order statistic rather than against each other.
  std::vector<P2Quantile> tree;
  for (std::size_t k = 0; k < kShards; ++k) tree.push_back(shard(k));
  while (tree.size() > 1) {
    std::vector<P2Quantile> next;
    for (std::size_t i = 0; i + 1 < tree.size(); i += 2) {
      tree[i].Merge(tree[i + 1]);
      next.push_back(tree[i]);
    }
    tree = std::move(next);
  }
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const double exact = sorted[static_cast<std::size_t>(0.9 * (sorted.size() - 1))];
  EXPECT_EQ(tree.front().count(), xs.size());
  EXPECT_NEAR(once.Value(), exact, 0.15 * exact);
  EXPECT_NEAR(tree.front().Value(), exact, 0.15 * exact);
}

}  // namespace
}  // namespace gametrace::stats
