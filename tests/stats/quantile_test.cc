#include "stats/quantile.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/random.h"
#include "sim/rng.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

TEST(P2Quantile, Validation) {
  EXPECT_THROW(P2Quantile(0.0), gametrace::ContractViolation);
  EXPECT_THROW(P2Quantile(1.0), gametrace::ContractViolation);
  EXPECT_NO_THROW(P2Quantile(0.5));
}

TEST(P2Quantile, EmptyReturnsZero) {
  P2Quantile q(0.5);
  EXPECT_DOUBLE_EQ(q.Value(), 0.0);
  EXPECT_EQ(q.count(), 0u);
}

TEST(P2Quantile, FewSamplesExact) {
  P2Quantile q(0.5);
  q.Add(3.0);
  EXPECT_DOUBLE_EQ(q.Value(), 3.0);
  q.Add(1.0);
  q.Add(2.0);
  // 3 samples, median-ish order statistic.
  const double v = q.Value();
  EXPECT_GE(v, 1.0);
  EXPECT_LE(v, 3.0);
}

TEST(P2Quantile, UniformMedian) {
  P2Quantile q(0.5);
  sim::Rng rng(42);
  for (int i = 0; i < 100000; ++i) q.Add(rng.NextDouble());
  EXPECT_NEAR(q.Value(), 0.5, 0.02);
}

TEST(P2Quantile, UniformP99) {
  P2Quantile q(0.99);
  sim::Rng rng(43);
  for (int i = 0; i < 100000; ++i) q.Add(rng.NextDouble());
  EXPECT_NEAR(q.Value(), 0.99, 0.01);
}

TEST(P2Quantile, ExponentialP90) {
  P2Quantile q(0.9);
  sim::Rng rng(44);
  for (int i = 0; i < 200000; ++i) q.Add(sim::Exponential(rng, 1.0));
  // True p90 of Exp(1) is ln(10) ~ 2.3026.
  EXPECT_NEAR(q.Value(), 2.3026, 0.12);
}

TEST(P2Quantile, MonotoneInputs) {
  P2Quantile q(0.5);
  for (int i = 1; i <= 1001; ++i) q.Add(static_cast<double>(i));
  EXPECT_NEAR(q.Value(), 501.0, 15.0);
}

class P2Sweep : public ::testing::TestWithParam<double> {};

TEST_P(P2Sweep, MatchesExactQuantileOnNormal) {
  const double target = GetParam();
  P2Quantile q(target);
  sim::Rng rng(7);
  std::vector<double> all;
  for (int i = 0; i < 50000; ++i) {
    const double x = sim::Normal(rng, 100.0, 15.0);
    q.Add(x);
    all.push_back(x);
  }
  std::sort(all.begin(), all.end());
  const double exact = all[static_cast<std::size_t>(target * (all.size() - 1))];
  EXPECT_NEAR(q.Value(), exact, 1.0);  // within ~0.07 sigma
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Sweep, ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9, 0.95));

}  // namespace
}  // namespace gametrace::stats
