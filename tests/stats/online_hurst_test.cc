// OnlineHurst: the streaming variance-time estimator must agree with the
// batch estimator on identical input (same block sizes, same alignment),
// its doubling cascade must equal the generic per-scale loop, and its
// pooled merge must match single-pass statistics over the same block-mean
// population.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.h"
#include "stats/online_hurst.h"
#include "stats/running_stats.h"
#include "stats/time_series.h"
#include "stats/variance_time.h"

#include "core/check.h"

namespace gametrace::stats {
namespace {

// A bursty, positively-correlated load series (AR(1)-style), integer-valued
// so block sums are exact in double arithmetic.
std::vector<double> BurstyCounts(std::uint64_t seed, std::size_t n) {
  sim::Rng rng(seed);
  std::vector<double> xs(n);
  double level = 20.0;
  for (auto& x : xs) {
    level = 0.9 * level + 2.0 * rng.NextDouble();
    x = std::floor(level + 10.0 * rng.NextDouble());
  }
  return xs;
}

TEST(OnlineHurst, MatchesTheBatchEstimatorOnIdenticalInput) {
  const std::size_t n = 4096;
  const auto xs = BurstyCounts(31, n);

  TimeSeries series(0.0, 0.050);
  for (std::size_t i = 0; i < n; ++i) {
    series.Add(0.050 * static_cast<double>(i) + 0.001, xs[i]);
  }
  const VarianceTimeOptions batch_options;
  const VarianceTimePlot batch = ComputeVarianceTime(series, batch_options);

  OnlineHurst online(OnlineHurst::Options::MatchingBatch(0.050, n, batch_options));
  for (double x : xs) online.Push(x);
  const VarianceTimePlot streamed = online.EstimatePlot();

  ASSERT_EQ(streamed.points.size(), batch.points.size());
  for (std::size_t i = 0; i < batch.points.size(); ++i) {
    EXPECT_EQ(streamed.points[i].m, batch.points[i].m);
    EXPECT_NEAR(streamed.points[i].normalized_variance, batch.points[i].normalized_variance,
                1e-9 * (1.0 + batch.points[i].normalized_variance))
        << "scale m = " << batch.points[i].m;
  }

  const double lo = 0.050;
  const double hi = 0.050 * static_cast<double>(batch.points.back().m);
  ASSERT_TRUE(online.CanEstimate(lo, hi));
  EXPECT_NEAR(online.HurstEstimate(lo, hi), batch.HurstEstimate(lo, hi), 1e-6);
}

TEST(OnlineHurst, CascadeEqualsTheGenericLoopOnSharedScales) {
  // LogSpaced scales are powers of two, so Push takes the upward-cascade
  // path. Appending one non-doubling scale (12) to the same schedule
  // forces the generic per-scale loop; with integer-valued input both
  // paths' block sums are exact, so the shared scales must agree to the
  // last bit.
  const std::size_t n = 2048;
  const auto xs = BurstyCounts(37, n);

  OnlineHurst cascade(OnlineHurst::Options::LogSpaced(0.050, 4));  // {1, 2, 4, 8}
  OnlineHurst::Options generic_options;
  generic_options.base_interval = 0.050;
  generic_options.scales = {1, 2, 4, 8, 12};
  OnlineHurst generic_loop(generic_options);
  for (double x : xs) {
    cascade.Push(x);
    generic_loop.Push(x);
  }

  const VarianceTimePlot a = cascade.EstimatePlot();
  const VarianceTimePlot b = generic_loop.EstimatePlot();
  ASSERT_EQ(a.points.size(), 4u);
  ASSERT_EQ(b.points.size(), 5u);
  EXPECT_DOUBLE_EQ(a.base_variance, b.base_variance);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    ASSERT_EQ(a.points[i].m, b.points[i].m);
    EXPECT_DOUBLE_EQ(a.points[i].normalized_variance, b.points[i].normalized_variance)
        << "scale m = " << a.points[i].m;
  }
}

TEST(OnlineHurst, WhiteNoiseReadsAsShortRangeDependence) {
  sim::Rng rng(41);
  OnlineHurst online(OnlineHurst::Options::LogSpaced(0.050, 10));
  for (int i = 0; i < 1 << 15; ++i) online.Push(std::floor(100.0 * rng.NextDouble()));
  const double h = online.HurstEstimate(0.050, 0.050 * 512.0);
  EXPECT_NEAR(h, 0.5, 0.1);  // i.i.d. load has H = 1/2
}

TEST(OnlineHurst, MergePoolsBlockMeansAcrossLockstepShards) {
  // Two shards advancing the same grid: the merged per-scale statistics
  // must equal single-pass statistics over the concatenated block-mean
  // population (Chan's combination is exact for count/mean and stable for
  // variance).
  const std::size_t n = 1024;
  const auto a = BurstyCounts(43, n);
  const auto b = BurstyCounts(47, n);

  OnlineHurst ha(OnlineHurst::Options::LogSpaced(0.050, 6));
  OnlineHurst hb(OnlineHurst::Options::LogSpaced(0.050, 6));
  for (double x : a) ha.Push(x);
  for (double x : b) hb.Push(x);
  ha.Merge(hb);
  EXPECT_EQ(ha.samples(), 2 * n);

  // Reference: pool the block means of scale m = 32 by hand.
  RunningStats pooled;
  const std::size_t m = 32;
  for (const auto* xs : {&a, &b}) {
    for (std::size_t start = 0; start + m <= xs->size(); start += m) {
      double sum = 0.0;
      for (std::size_t i = 0; i < m; ++i) sum += (*xs)[i + start];
      pooled.Add(sum / static_cast<double>(m));
    }
  }

  const VarianceTimePlot plot = ha.EstimatePlot();
  const auto point = std::find_if(plot.points.begin(), plot.points.end(),
                                  [](const VariancePoint& p) { return p.m == 32; });
  ASSERT_NE(point, plot.points.end());
  const double base_variance = plot.base_variance;
  ASSERT_GT(base_variance, 0.0);
  EXPECT_NEAR(point->normalized_variance, pooled.population_variance() / base_variance,
              1e-9 * (1.0 + point->normalized_variance));
}

TEST(OnlineHurst, MergeRejectsMismatchedSchedules) {
  OnlineHurst a(OnlineHurst::Options::LogSpaced(0.050, 6));
  OnlineHurst b(OnlineHurst::Options::LogSpaced(0.050, 8));
  EXPECT_FALSE(a.SameShape(b));
  EXPECT_THROW(a.Merge(b), gametrace::ContractViolation);
}

TEST(OnlineHurst, InsufficientDataFallsBackToHalf) {
  OnlineHurst online(OnlineHurst::Options::LogSpaced(0.050, 16));
  for (int i = 0; i < 4; ++i) online.Push(1.0);
  EXPECT_FALSE(online.CanEstimate(0.050, 1800.0));
  EXPECT_EQ(online.HurstEstimate(0.050, 1800.0), 0.5);
}

TEST(OnlineHurst, MemoryIsIndependentOfStreamLength) {
  OnlineHurst online(OnlineHurst::Options::LogSpaced(0.050, 16));
  for (int i = 0; i < 100; ++i) online.Push(static_cast<double>(i % 7));
  const std::size_t early = online.MemoryBytes();
  for (int i = 0; i < 1 << 18; ++i) online.Push(static_cast<double>(i % 11));
  EXPECT_EQ(online.MemoryBytes(), early);
}

}  // namespace
}  // namespace gametrace::stats
