#include "game/outage.h"

#include <vector>

#include <gtest/gtest.h>

namespace gametrace::game {
namespace {

TEST(OutageSchedule, FiresAtConfiguredTimes) {
  sim::Simulator s;
  OutageConfig cfg;
  cfg.times = {100.0, 500.0};
  cfg.duration = 8.0;
  std::vector<double> begins;
  std::vector<double> ends;
  OutageSchedule outages(s, cfg,
                         {.on_begin = [&](double t) { begins.push_back(t); },
                          .on_end = [&](double t) { ends.push_back(t); }});
  outages.Start(1000.0);
  s.RunUntil(1000.0);
  ASSERT_EQ(begins.size(), 2u);
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_DOUBLE_EQ(begins[0], 100.0);
  EXPECT_DOUBLE_EQ(ends[0], 108.0);
  EXPECT_DOUBLE_EQ(begins[1], 500.0);
  EXPECT_EQ(outages.outages_begun(), 2);
}

TEST(OutageSchedule, ActiveFlagDuringOutage) {
  sim::Simulator s;
  OutageConfig cfg;
  cfg.times = {50.0};
  cfg.duration = 10.0;
  OutageSchedule outages(s, cfg, {});
  outages.Start(1000.0);
  s.RunUntil(55.0);
  EXPECT_TRUE(outages.active());
  s.RunUntil(61.0);
  EXPECT_FALSE(outages.active());
}

TEST(OutageSchedule, OutagesBeyondTraceEndSkipped) {
  sim::Simulator s;
  OutageConfig cfg;
  cfg.times = {100.0, 2000.0};
  int begun = 0;
  OutageSchedule outages(s, cfg, {.on_begin = [&](double) { ++begun; }, .on_end = nullptr});
  outages.Start(1000.0);
  s.RunUntil(5000.0);
  EXPECT_EQ(begun, 1);
}

TEST(OutageSchedule, PastOutagesSkipped) {
  sim::Simulator s;
  s.At(200.0, [] {});
  s.RunUntil(200.0);  // advance the clock
  OutageConfig cfg;
  cfg.times = {100.0, 300.0};
  int begun = 0;
  OutageSchedule outages(s, cfg, {.on_begin = [&](double) { ++begun; }, .on_end = nullptr});
  outages.Start(1000.0);
  s.RunUntil(1000.0);
  EXPECT_EQ(begun, 1);
}

TEST(OutageSchedule, EmptyScheduleIsNoop) {
  sim::Simulator s;
  OutageSchedule outages(s, OutageConfig{}, {});
  outages.Start(1000.0);
  s.RunUntil(1000.0);
  EXPECT_EQ(outages.outages_begun(), 0);
  EXPECT_FALSE(outages.active());
}

TEST(OutageSchedule, NoCallbacksIsSafe) {
  sim::Simulator s;
  OutageConfig cfg;
  cfg.times = {10.0};
  OutageSchedule outages(s, cfg, {});
  outages.Start(100.0);
  EXPECT_NO_THROW(s.RunUntil(100.0));
}

TEST(OutageSchedule, PaperDefaultsHaveThreeOutages) {
  const GameConfig cfg = GameConfig::PaperDefaults();
  EXPECT_EQ(cfg.outages.times.size(), 3u);
  for (double t : cfg.outages.times) {
    EXPECT_GT(t, 0.0);
    EXPECT_LT(t, cfg.trace_duration);
  }
}

}  // namespace
}  // namespace gametrace::game
