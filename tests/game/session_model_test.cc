#include "game/session_model.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::game {
namespace {

SessionConfig FastSessions() {
  SessionConfig cfg;
  cfg.fresh_attempt_rate = 0.5;  // brisk, for short tests
  return cfg;
}

TEST(SessionModel, Validation) {
  sim::Simulator s;
  sim::DiurnalCurve flat;
  EXPECT_THROW(SessionModel(s, FastSessions(), flat, sim::Rng(1), nullptr),
               gametrace::ContractViolation);
  SessionConfig zero = FastSessions();
  zero.fresh_attempt_rate = 0.0;
  EXPECT_THROW(SessionModel(s, zero, flat, sim::Rng(1), [](std::size_t, bool) {}),
               gametrace::ContractViolation);
}

TEST(SessionModel, ArrivalRateMatchesConfig) {
  sim::Simulator s;
  sim::DiurnalCurve flat;  // constant 1.0
  std::uint64_t attempts = 0;
  SessionModel model(s, FastSessions(), flat, sim::Rng(2),
                     [&](std::size_t, bool) { ++attempts; });
  model.Start();
  s.RunUntil(10000.0);
  // Poisson(0.5/s * 10000 s) = 5000 +/- ~220 (3 sigma).
  EXPECT_NEAR(static_cast<double>(attempts), 5000.0, 250.0);
  EXPECT_EQ(model.fresh_arrivals(), attempts);
}

TEST(SessionModel, PauseStopsArrivals) {
  sim::Simulator s;
  sim::DiurnalCurve flat;
  std::uint64_t attempts = 0;
  SessionModel model(s, FastSessions(), flat, sim::Rng(3),
                     [&](std::size_t, bool) { ++attempts; });
  model.Start();
  s.RunUntil(100.0);
  const auto before = attempts;
  EXPECT_GT(before, 0u);
  model.Pause();
  s.RunUntil(200.0);
  EXPECT_EQ(attempts, before);
  model.Resume();
  s.RunUntil(300.0);
  EXPECT_GT(attempts, before);
}

TEST(SessionModel, DiurnalModulationShiftsArrivals) {
  sim::Simulator s;
  // Day half at 0.2x, night half at 1.3x (within the 1.5x envelope).
  sim::DiurnalCurve curve({{0.0, 1.3}, {11.99, 1.3}, {12.0, 0.2}, {23.99, 0.2}});
  std::vector<double> times;
  SessionModel model(s, FastSessions(), curve, sim::Rng(4),
                     [&](std::size_t, bool) { times.push_back(s.Now()); });
  model.Start();
  s.RunUntil(86400.0);
  std::uint64_t first_half = 0;
  for (double t : times) {
    if (t < 43200.0) ++first_half;
  }
  const std::uint64_t second_half = times.size() - first_half;
  EXPECT_GT(first_half, second_half * 3);
}

TEST(SessionModel, DurationsMatchMoments) {
  sim::Simulator s;
  sim::DiurnalCurve flat;
  SessionModel model(s, SessionConfig{}, flat, sim::Rng(5), [](std::size_t, bool) {});
  sim::Rng rng(6);
  double sum = 0.0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    const double d = model.DrawSessionDuration(rng);
    EXPECT_GE(d, SessionConfig{}.min_duration);
    sum += d;
  }
  // Mean ~715 s ("approximately 15 minutes"); min-flooring biases up a bit.
  EXPECT_NEAR(sum / kDraws, 715.0, 40.0);
}

TEST(SessionModel, IdentitiesFromZipfPool) {
  sim::Simulator s;
  sim::DiurnalCurve flat;
  std::vector<std::size_t> identities;
  SessionModel model(s, FastSessions(), flat, sim::Rng(7),
                     [&](std::size_t id, bool) { identities.push_back(id); });
  model.Start();
  s.RunUntil(20000.0);
  ASSERT_GT(identities.size(), 1000u);
  std::uint64_t head = 0;
  for (std::size_t id : identities) {
    if (id < 100) ++head;  // the 100 most popular of 9000
  }
  // Zipf(0.45): the head is strongly over-represented vs uniform (1.1%).
  EXPECT_GT(static_cast<double>(head) / identities.size(), 0.05);
  for (std::size_t id : identities) EXPECT_LT(id, model.population());
}

TEST(SessionModel, RetryRespectsBudgetAndCoin) {
  sim::Simulator s;
  sim::DiurnalCurve flat;
  std::uint64_t retries_fired = 0;
  SessionConfig cfg = FastSessions();
  cfg.retry_probability = 1.0;  // always retry
  cfg.max_retries = 2;
  SessionModel model(s, cfg, flat, sim::Rng(8), [&](std::size_t, bool is_retry) {
    if (is_retry) ++retries_fired;
  });
  EXPECT_TRUE(model.MaybeScheduleRetry(5, 0));
  EXPECT_TRUE(model.MaybeScheduleRetry(5, 1));
  EXPECT_FALSE(model.MaybeScheduleRetry(5, 2));  // budget exhausted
  s.RunUntil(10000.0);
  EXPECT_EQ(retries_fired, 2u);

  SessionConfig never = FastSessions();
  never.retry_probability = 0.0;
  SessionModel no_retry(s, never, flat, sim::Rng(9), [](std::size_t, bool) {});
  EXPECT_FALSE(no_retry.MaybeScheduleRetry(1, 0));
}

TEST(SessionModel, ScheduledAttemptSwallowedWhenPaused) {
  sim::Simulator s;
  sim::DiurnalCurve flat;
  std::uint64_t fired = 0;
  SessionModel model(s, FastSessions(), flat, sim::Rng(10),
                     [&](std::size_t, bool) { ++fired; });
  model.Pause();
  model.ScheduleAttempt(1, 5.0, true);
  s.RunUntil(10.0);
  EXPECT_EQ(fired, 0u);
  model.Resume();
  model.ScheduleAttempt(1, 5.0, true);
  s.RunUntil(20.0);
  EXPECT_EQ(fired, 1u);
}

TEST(SessionModel, SampleIdentityDrawsFromPool) {
  sim::Simulator s;
  sim::DiurnalCurve flat;
  SessionModel model(s, FastSessions(), flat, sim::Rng(11), [](std::size_t, bool) {});
  for (int i = 0; i < 1000; ++i) EXPECT_LT(model.SampleIdentity(), model.population());
}

}  // namespace
}  // namespace gametrace::game
