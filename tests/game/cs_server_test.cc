#include "game/cs_server.h"

#include <gtest/gtest.h>

#include "trace/aggregator.h"
#include "trace/summary.h"

namespace gametrace::game {
namespace {

// A 10-minute capture is enough for all behavioural assertions and runs in
// well under a second.
GameConfig ShortConfig(std::uint64_t seed = 42) {
  GameConfig cfg = GameConfig::ScaledDefaults(600.0);
  cfg.seed = seed;
  return cfg;
}

TEST(CsServer, EmitsTraffic) {
  sim::Simulator s;
  trace::CountingSink sink;
  CsServer server(s, ShortConfig(), sink);
  server.Run();
  EXPECT_GT(sink.packets(), 100000u);
  EXPECT_GT(sink.packets_in(), sink.packets_out());  // paper Table II
  EXPECT_EQ(sink.packets(), server.stats().packets_emitted);
}

TEST(CsServer, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s;
    trace::CountingSink sink;
    CsServer server(s, ShortConfig(seed), sink);
    server.Run();
    return std::tuple(sink.packets(), sink.app_bytes(), server.stats().established);
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(std::get<0>(run(7)), std::get<0>(run(8)));
}

TEST(CsServer, NeverExceedsSlotCap) {
  sim::Simulator s;
  trace::CountingSink sink;
  GameConfig cfg = ShortConfig();
  cfg.sessions.fresh_attempt_rate = 0.5;  // hammer the server
  CsServer server(s, cfg, sink);
  server.Start();
  for (int i = 0; i < 600; ++i) {
    s.RunUntil(static_cast<double>(i));
    EXPECT_LE(server.active_players(), cfg.max_players);
  }
  EXPECT_LE(server.stats().peak_players, cfg.max_players);
  EXPECT_GT(server.stats().refused, 0u);
}

TEST(CsServer, OutboundBandwidthExceedsInboundDespiteFewerPackets) {
  sim::Simulator s;
  trace::TraceSummary summary;
  CsServer server(s, ShortConfig(), summary);
  server.Run();
  EXPECT_GT(summary.packets_in(), summary.packets_out());
  EXPECT_GT(summary.wire_bytes_out(), summary.wire_bytes_in());
  EXPECT_GT(summary.mean_packet_size_out(), 3.0 * summary.mean_packet_size_in());
}

TEST(CsServer, FiftyMillisecondBroadcastPeriodicity) {
  sim::Simulator s;
  trace::LoadAggregator agg(0.010);  // 10 ms bins, as Figure 6
  CsServer server(s, ShortConfig(), agg);
  server.Start();
  s.RunUntil(20.0);
  const auto& out = agg.packets_out();
  // Every 5th bin carries the burst; the bins between are nearly empty.
  double on = 0.0;
  double off = 0.0;
  for (std::size_t i = 100; i < 1500; ++i) {
    if (i % 5 == 0) {
      on += out[i];
    } else {
      off += out[i];
    }
  }
  EXPECT_GT(on, 10.0 * off);
}

TEST(CsServer, BroadcastSpreadAblationKillsPeriodicity) {
  sim::Simulator s;
  trace::LoadAggregator agg(0.010);
  GameConfig cfg = ShortConfig();
  cfg.broadcast_spread = 1.0;  // desynchronised broadcast
  CsServer server(s, cfg, agg);
  server.Start();
  s.RunUntil(20.0);
  const auto& out = agg.packets_out();
  double on = 0.0;
  double off = 0.0;
  for (std::size_t i = 100; i < 1500; ++i) {
    if (i % 5 == 0) {
      on += out[i];
    } else {
      off += out[i];
    }
  }
  // Spread traffic: the on-bins hold roughly a fifth of the packets.
  EXPECT_LT(on, off);
}

TEST(CsServer, PlayerSeriesTracksOccupancy) {
  sim::Simulator s;
  trace::CountingSink sink;
  CsServer server(s, ShortConfig(), sink);
  server.Run();
  const auto& players = server.player_series();
  ASSERT_GT(players.size(), 5u);
  EXPECT_GT(players.Mean(), 10.0);
  EXPECT_LE(players.Max(), 22.0);
}

TEST(CsServer, MapChangeCausesTrafficDip) {
  sim::Simulator s;
  trace::LoadAggregator agg(1.0);
  GameConfig cfg = GameConfig::ScaledDefaults(300.0);
  cfg.maps.map_duration = 120.0;  // force a change inside the window
  cfg.maps.changeover_stall_mean = 10.0;
  cfg.maps.changeover_stall_jitter = 0.0;
  cfg.downloads.join_probability = 0.0;  // keep the stall window clean
  cfg.downloads.map_change_probability = 0.0;
  CsServer server(s, cfg, agg);
  server.Run();
  const auto total = agg.packets_total();
  // Live seconds carry hundreds of packets; the stall seconds carry ~none.
  EXPECT_GT(total[60], 300.0);
  EXPECT_LT(total[125], 50.0);
}

TEST(CsServer, OutageDisconnectsEveryone) {
  sim::Simulator s;
  trace::CountingSink sink;
  GameConfig cfg = GameConfig::ScaledDefaults(600.0);
  cfg.outages.times = {300.0};
  CsServer server(s, cfg, sink);
  server.Start();
  s.RunUntil(302.0);
  EXPECT_EQ(server.active_players(), 0);
  EXPECT_GT(server.stats().outage_disconnects, 0u);
  // Recovery: immediate reconnectors come back within ~30 s of the end.
  s.RunUntil(360.0);
  EXPECT_GT(server.active_players(), 2);
}

TEST(CsServer, InduceStallSuppressesBroadcastOnly) {
  sim::Simulator s;
  trace::LoadAggregator agg(0.1);
  GameConfig cfg = ShortConfig();
  cfg.downloads.join_probability = 0.0;  // downloads would leak into the freeze
  cfg.downloads.map_change_probability = 0.0;
  CsServer server(s, cfg, agg);
  server.Start();
  s.RunUntil(30.0);
  server.InduceStall(5.0);
  s.RunUntil(40.0);
  const auto out = agg.packets_out();
  const auto in = agg.packets_in();
  // Bins 300..349 are the frozen 5 s: no broadcast, but clients keep sending.
  double out_frozen = 0.0;
  double in_frozen = 0.0;
  for (std::size_t i = 301; i < 349; ++i) {
    out_frozen += out[i];
    in_frozen += in[i];
  }
  // Broadcast is silent; at most a stray handshake reply may appear.
  EXPECT_LT(out_frozen, 3.0);
  EXPECT_GT(in_frozen, 100.0);
}

TEST(CsServer, HandshakeAccountingConsistent) {
  sim::Simulator s;
  trace::TraceSummary summary;
  CsServer server(s, ShortConfig(), summary);
  server.Run();
  const auto stats = server.stats();
  // Ground truth and trace-derived handshake counts must agree exactly.
  EXPECT_EQ(summary.attempted_connections(), stats.attempts);
  EXPECT_EQ(summary.established_connections(), stats.established);
  EXPECT_EQ(summary.refused_connections(), stats.refused);
  EXPECT_EQ(summary.unique_clients_attempting(), stats.unique_attempting);
  EXPECT_EQ(summary.unique_clients_establishing(), stats.unique_establishing);
  EXPECT_EQ(stats.attempts, stats.established + stats.refused);
  EXPECT_GE(stats.unique_attempting, stats.unique_establishing);
}

TEST(CsServer, DownloadsHappen) {
  sim::Simulator s;
  trace::CountingSink sink;
  CsServer server(s, ShortConfig(), sink);
  server.Run();
  EXPECT_GT(server.stats().downloads_started, 0u);
}

TEST(CsServer, MeanRatesNearPaperCalibration) {
  sim::Simulator s;
  trace::TraceSummary summary;
  GameConfig cfg = GameConfig::ScaledDefaults(1800.0);
  CsServer server(s, cfg, summary);
  server.Run();
  summary.set_duration_override(1800.0);
  // Loose bands: a 30 min window has real variance. Paper: 437/361 pps,
  // 39.7/129.5 B.
  EXPECT_NEAR(summary.mean_packet_load_in(), 437.0, 90.0);
  EXPECT_NEAR(summary.mean_packet_load_out(), 361.0, 80.0);
  EXPECT_NEAR(summary.mean_packet_size_in(), 39.7, 2.0);
  EXPECT_NEAR(summary.mean_packet_size_out(), 129.5, 15.0);
}

TEST(CsServer, StartIsIdempotent) {
  sim::Simulator s;
  trace::CountingSink sink;
  CsServer server(s, ShortConfig(), sink);
  server.Start();
  EXPECT_NO_THROW(server.Start());
  s.RunUntil(10.0);
  EXPECT_GT(sink.packets(), 0u);
}

}  // namespace
}  // namespace gametrace::game
