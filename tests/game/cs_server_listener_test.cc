// Coverage for the server's observer surface: event listeners, endpoint
// disconnects (the QoE quit path) and netchannel sequence numbering.
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "game/cs_server.h"
#include "trace/capture.h"

namespace gametrace::game {
namespace {

GameConfig ShortConfig() {
  GameConfig cfg = GameConfig::ScaledDefaults(300.0);
  cfg.seed = 9;
  return cfg;
}

class RecordingListener final : public ServerEventListener {
 public:
  std::vector<ActiveClient> connects;
  std::vector<std::pair<double, bool>> disconnects;  // (t, orderly)
  int refusals = 0;
  std::vector<int> maps;

  void OnConnect(double, const ActiveClient& client) override { connects.push_back(client); }
  void OnRefuse(double, net::Ipv4Address, std::uint16_t) override { ++refusals; }
  void OnDisconnect(double t, const ActiveClient&, bool orderly) override {
    disconnects.emplace_back(t, orderly);
  }
  void OnMapStart(double, int map_number) override { maps.push_back(map_number); }
};

TEST(CsServerListener, EventsMatchStats) {
  sim::Simulator s;
  trace::CountingSink sink;
  RecordingListener listener;
  CsServer server(s, ShortConfig(), sink);
  server.AddListener(listener);
  server.Run();
  const auto stats = server.stats();
  EXPECT_EQ(listener.connects.size(), stats.established);
  EXPECT_EQ(static_cast<std::uint64_t>(listener.refusals), stats.refused);
  EXPECT_EQ(listener.disconnects.size(),
            stats.orderly_disconnects + stats.outage_disconnects);
  ASSERT_FALSE(listener.maps.empty());
  EXPECT_EQ(listener.maps.front(), 1);
}

TEST(CsServerListener, DisconnectByEndpointQuitsExactlyThatPlayer) {
  sim::Simulator s;
  trace::CountingSink sink;
  RecordingListener listener;
  CsServer server(s, ShortConfig(), sink);
  server.AddListener(listener);
  server.Start();
  s.RunUntil(30.0);
  ASSERT_FALSE(listener.connects.empty());
  const ActiveClient victim = listener.connects.front();
  const int before = server.active_players();
  EXPECT_TRUE(server.DisconnectByEndpoint(victim.ip, victim.port));
  EXPECT_EQ(server.active_players(), before - 1);
  // Unknown endpoint: no effect.
  EXPECT_FALSE(server.DisconnectByEndpoint(net::Ipv4Address(1, 2, 3, 4), 1));
  EXPECT_EQ(server.active_players(), before - 1);
  // Same endpoint twice: second call fails.
  EXPECT_FALSE(server.DisconnectByEndpoint(victim.ip, victim.port));
}

TEST(CsServerListener, SequenceNumbersMonotonePerFlow) {
  sim::Simulator s;
  trace::VectorSink sink;
  CsServer server(s, ShortConfig(), sink);
  server.Start();
  s.RunUntil(20.0);

  // Per (endpoint, direction): sequenced packets must be strictly
  // increasing by 1 in emission order.
  std::map<std::tuple<std::uint32_t, std::uint16_t, int>, std::uint32_t> last_seq;
  std::uint64_t sequenced = 0;
  for (const auto& r : sink.records()) {
    if (r.seq == 0) continue;  // handshake / control
    ++sequenced;
    const auto key = std::tuple(r.client_ip.value(), r.client_port,
                                static_cast<int>(r.direction));
    const auto it = last_seq.find(key);
    if (it != last_seq.end()) {
      EXPECT_EQ(r.seq, it->second + 1) << "gap in emitted sequence";
      it->second = r.seq;
    } else {
      EXPECT_EQ(r.seq, 1u) << "flows start at sequence 1";
      last_seq[key] = r.seq;
    }
  }
  EXPECT_GT(sequenced, 10000u);
}

TEST(CsServerListener, ControlPacketsAreUnsequenced) {
  sim::Simulator s;
  trace::VectorSink sink;
  CsServer server(s, ShortConfig(), sink);
  server.Start();
  s.RunUntil(30.0);
  for (const auto& r : sink.records()) {
    if (r.kind == net::PacketKind::kConnectRequest ||
        r.kind == net::PacketKind::kConnectAccept ||
        r.kind == net::PacketKind::kConnectReject ||
        r.kind == net::PacketKind::kDisconnect) {
      EXPECT_EQ(r.seq, 0u);
    }
  }
}

}  // namespace
}  // namespace gametrace::game
