#include "game/packet_size_model.h"

#include <gtest/gtest.h>

#include "stats/running_stats.h"

#include "core/check.h"

namespace gametrace::game {
namespace {

constexpr int kDraws = 100000;

TEST(PacketSizeModel, Validation) {
  SizeConfig bad;
  bad.inbound_min = 100;
  bad.inbound_max = 50;
  EXPECT_THROW(PacketSizeModel model(bad), gametrace::ContractViolation);
}

TEST(PacketSizeModel, InboundMatchesPaperMean) {
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(1);
  stats::RunningStats s;
  for (int i = 0; i < kDraws; ++i) s.Add(model.InboundUpdate(rng));
  // Paper Table III: 39.72 B mean inbound.
  EXPECT_NEAR(s.mean(), 40.0, 0.5);
  EXPECT_NEAR(s.stddev(), 4.5, 0.3);
}

TEST(PacketSizeModel, InboundRespectsBounds) {
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(2);
  for (int i = 0; i < kDraws; ++i) {
    const auto b = model.InboundUpdate(rng);
    EXPECT_GE(b, 20);
    EXPECT_LE(b, 80);
  }
}

TEST(PacketSizeModel, InboundAlmostAllUnderSixty) {
  // "almost all of the incoming packets are smaller than 60 bytes".
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(3);
  int over = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (model.InboundUpdate(rng) >= 60) ++over;
  }
  EXPECT_LT(static_cast<double>(over) / kDraws, 0.001);
}

TEST(PacketSizeModel, OutboundGrowsWithPlayers) {
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(4);
  stats::RunningStats few;
  stats::RunningStats many;
  for (int i = 0; i < kDraws; ++i) few.Add(model.OutboundUpdate(rng, 5));
  for (int i = 0; i < kDraws; ++i) many.Add(model.OutboundUpdate(rng, 22));
  EXPECT_GT(many.mean(), few.mean() + 50.0);
}

TEST(PacketSizeModel, OutboundAtCalibratedPlayerCount) {
  // At the trace's ~18-player average the outbound mean must be near the
  // paper's 129.51 B.
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(5);
  stats::RunningStats s;
  for (int i = 0; i < kDraws; ++i) s.Add(model.OutboundUpdate(rng, 18));
  EXPECT_NEAR(s.mean(), 125.3, 2.0);  // base 20 + 5.85 * 18
  EXPECT_GT(s.stddev(), 20.0);        // the wide Figure 12(b) spread
}

TEST(PacketSizeModel, OutboundRespectsBounds) {
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(6);
  for (int players : {0, 1, 22}) {
    for (int i = 0; i < 10000; ++i) {
      const auto b = model.OutboundUpdate(rng, players);
      EXPECT_GE(b, 16);
      EXPECT_LE(b, 480);
    }
  }
}

TEST(PacketSizeModel, ChatIsBiggerOnAverage) {
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(7);
  stats::RunningStats chat;
  for (int i = 0; i < kDraws; ++i) chat.Add(model.ChatPayload(rng));
  EXPECT_NEAR(chat.mean(), 140.0, 3.0);
}

TEST(PacketSizeModel, ChatSubstitutionRate) {
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(8);
  int subs = 0;
  for (int i = 0; i < kDraws; ++i) {
    if (model.DrawChatSubstitution(rng)) ++subs;
  }
  EXPECT_NEAR(static_cast<double>(subs) / kDraws, 0.002, 0.001);
}

TEST(PacketSizeModel, HandshakeSizesNearConfig) {
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NEAR(model.HandshakeSize(net::PacketKind::kConnectRequest, rng), 44, 4);
    EXPECT_NEAR(model.HandshakeSize(net::PacketKind::kConnectAccept, rng), 96, 4);
    EXPECT_NEAR(model.HandshakeSize(net::PacketKind::kConnectReject, rng), 32, 4);
    EXPECT_NEAR(model.HandshakeSize(net::PacketKind::kDisconnect, rng), 24, 4);
  }
}

TEST(PacketSizeModel, HandshakeRejectsDataKinds) {
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(10);
  EXPECT_THROW((void)model.HandshakeSize(net::PacketKind::kGameUpdate, rng),
               gametrace::ContractViolation);
  EXPECT_THROW((void)model.HandshakeSize(net::PacketKind::kDownload, rng),
               gametrace::ContractViolation);
}

// The in/out asymmetry that drives the paper's Table II/III observation:
// outbound mean is more than 3x the inbound mean at realistic player counts.
class SizeAsymmetrySweep : public ::testing::TestWithParam<int> {};

TEST_P(SizeAsymmetrySweep, OutboundTriplesInbound) {
  const int players = GetParam();
  PacketSizeModel model{SizeConfig{}};
  sim::Rng rng(11);
  stats::RunningStats in;
  stats::RunningStats out;
  for (int i = 0; i < 20000; ++i) {
    in.Add(model.InboundUpdate(rng));
    out.Add(model.OutboundUpdate(rng, players));
  }
  EXPECT_GT(out.mean(), 2.5 * in.mean());
}

INSTANTIATE_TEST_SUITE_P(PlayerCounts, SizeAsymmetrySweep, ::testing::Values(14, 18, 22));

}  // namespace
}  // namespace gametrace::game
