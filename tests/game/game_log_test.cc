#include "game/game_log.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/experiment.h"

namespace gametrace::game {
namespace {

TEST(LogTimestamp, EpochMatchesPaperStart) {
  // Table I: trace starts Thu Apr 11 08:55:04 2002.
  EXPECT_EQ(LogTimestamp(0.0), "04/11/2002 - 08:55:04");
}

TEST(LogTimestamp, WithinDayArithmetic) {
  EXPECT_EQ(LogTimestamp(56.0), "04/11/2002 - 08:56:00");
  EXPECT_EQ(LogTimestamp(3600.0), "04/11/2002 - 09:55:04");
}

TEST(LogTimestamp, DayRollover) {
  // 15h 4m 56s later it is midnight.
  EXPECT_EQ(LogTimestamp(15.0 * 3600 + 4 * 60 + 56), "04/12/2002 - 00:00:00");
}

TEST(LogTimestamp, EndOfTraceMatchesPaperStop) {
  // Table I: stop Thu Apr 18 14:56:21 (626,477 s later).
  EXPECT_EQ(LogTimestamp(626477.0), "04/18/2002 - 14:56:21");
}

TEST(LogTimestamp, MonthRollover) {
  // April has 30 days: 20 days past Apr 11 08:55 is May 1.
  EXPECT_EQ(LogTimestamp(20.0 * 86400.0).substr(0, 10), "05/01/2002");
}

TEST(GameLogWriter, WritesRecognisableLines) {
  std::ostringstream log;
  GameLogWriter writer(log);
  ActiveClient client;
  client.identity = 7;
  client.session_id = 42;
  client.ip = net::Ipv4Address(10, 0, 0, 5);
  client.port = 27005;
  writer.OnMapStart(0.0, 1);
  writer.OnConnect(1.0, client);
  writer.OnRefuse(2.0, net::Ipv4Address(10, 0, 0, 6), 27006);
  writer.OnDisconnect(3.0, client, /*orderly=*/true);
  writer.OnOutage(4.0, true);
  const std::string text = log.str();
  EXPECT_NE(text.find("Loading map \"de_dust\" (map 1)"), std::string::npos);
  EXPECT_NE(text.find("\"Player_7<42><10.0.0.5:27005>\" connected"), std::string::npos);
  EXPECT_NE(text.find("Refused connection from 10.0.0.6:27006"), std::string::npos);
  EXPECT_NE(text.find("disconnected"), std::string::npos);
  EXPECT_NE(text.find("outage begin"), std::string::npos);
  EXPECT_EQ(writer.lines_written(), 6u);  // +1 for the header line
}

TEST(GameLogWriter, MapRotationCycles) {
  std::ostringstream log;
  GameLogWriter writer(log);
  const auto n = ClassicMapRotation().size();
  writer.OnMapStart(0.0, 1);
  writer.OnMapStart(0.0, static_cast<int>(n) + 1);  // wraps to the first map
  const std::string text = log.str();
  const auto first = text.find("de_dust\"");
  const auto second = text.find("de_dust\"", first + 1);
  EXPECT_NE(second, std::string::npos);
}

TEST(ParseGameLog, RoundTripCounts) {
  std::ostringstream log;
  GameLogWriter writer(log);
  ActiveClient client;
  client.ip = net::Ipv4Address(10, 0, 0, 5);
  writer.OnMapStart(0.0, 1);
  writer.OnConnect(1.0, client);
  writer.OnConnect(2.0, client);
  writer.OnDisconnect(3.0, client, true);
  writer.OnDisconnect(4.0, client, false);
  writer.OnRefuse(5.0, client.ip, 1);
  writer.OnOutage(6.0, true);
  writer.OnOutage(7.0, false);

  std::istringstream in(log.str());
  const GameLogSummary summary = ParseGameLog(in);
  EXPECT_EQ(summary.connects, 2u);
  EXPECT_EQ(summary.disconnects, 2u);
  EXPECT_EQ(summary.timeouts, 1u);
  EXPECT_EQ(summary.refusals, 1u);
  EXPECT_EQ(summary.maps_started, 1);
  EXPECT_EQ(summary.outages, 1);
  EXPECT_EQ(summary.max_concurrent, 2);
  EXPECT_EQ(summary.unparsed, 0u);
}

TEST(ParseGameLog, ToleratesForeignLines) {
  std::istringstream in("garbage\nL 04/11/2002 - 09:00:00: something exotic\n");
  const GameLogSummary summary = ParseGameLog(in);
  EXPECT_EQ(summary.lines, 2u);
  EXPECT_EQ(summary.unparsed, 2u);
}

// End-to-end: the log written during a simulated run must parse back to
// exactly the server's ground-truth counters.
TEST(GameLog, EndToEndAgreesWithServerStats) {
  std::ostringstream log;
  GameLogWriter writer(log);
  sim::Simulator simulator;
  trace::CountingSink sink;
  auto cfg = game::GameConfig::ScaledDefaults(900.0);
  CsServer server(simulator, cfg, sink);
  server.AddListener(writer);
  server.Run();

  std::istringstream in(log.str());
  const GameLogSummary summary = ParseGameLog(in);
  const auto stats = server.stats();
  EXPECT_EQ(summary.connects, stats.established);
  EXPECT_EQ(summary.refusals, stats.refused);
  EXPECT_EQ(summary.maps_started, stats.maps_played);
  EXPECT_EQ(summary.disconnects,
            stats.orderly_disconnects + stats.outage_disconnects);
  EXPECT_EQ(summary.unparsed, 0u);
  EXPECT_LE(summary.max_concurrent, cfg.max_players);
}

}  // namespace
}  // namespace gametrace::game
