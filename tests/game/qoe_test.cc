#include "game/qoe.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"

#include "core/check.h"

namespace gametrace::game {
namespace {

net::PacketRecord MakeRecord(std::uint32_t ip, std::uint16_t port) {
  net::PacketRecord r;
  r.client_ip = net::Ipv4Address(ip);
  r.client_port = port;
  return r;
}

QoeMonitor::Config FastConfig() {
  QoeMonitor::Config cfg;
  cfg.check_interval = 1.0;
  cfg.tolerance_min = 0.02;
  cfg.tolerance_max = 0.02;  // deterministic tolerance
  cfg.quit_probability = 1.0;
  cfg.min_events = 10;
  return cfg;
}

TEST(QoeMonitor, Validation) {
  sim::Simulator s;
  EXPECT_THROW(QoeMonitor(s, FastConfig(), sim::Rng(1), nullptr), gametrace::ContractViolation);
  auto bad = FastConfig();
  bad.check_interval = 0.0;
  EXPECT_THROW(QoeMonitor(s, bad, sim::Rng(1), [](net::Ipv4Address, std::uint16_t) {}),
               gametrace::ContractViolation);
  auto inverted = FastConfig();
  inverted.tolerance_min = 0.5;
  inverted.tolerance_max = 0.1;
  EXPECT_THROW(QoeMonitor(s, inverted, sim::Rng(1), [](net::Ipv4Address, std::uint16_t) {}),
               gametrace::ContractViolation);
}

TEST(QoeMonitor, TolerablePlayerStays) {
  sim::Simulator s;
  int quits = 0;
  QoeMonitor qoe(s, FastConfig(), sim::Rng(2),
                 [&](net::Ipv4Address, std::uint16_t) { ++quits; });
  qoe.Start();
  // 1% loss: below the 2% tolerance.
  const auto r = MakeRecord(0x0A000001, 27005);
  for (int i = 0; i < 990; ++i) qoe.OnDelivered(r);
  for (int i = 0; i < 10; ++i) qoe.OnLost(r);
  s.RunUntil(5.0);
  EXPECT_EQ(quits, 0);
}

TEST(QoeMonitor, IntolerableLossTriggersQuit) {
  sim::Simulator s;
  std::vector<std::uint16_t> quit_ports;
  QoeMonitor qoe(s, FastConfig(), sim::Rng(3),
                 [&](net::Ipv4Address, std::uint16_t port) { quit_ports.push_back(port); });
  qoe.Start();
  const auto r = MakeRecord(0x0A000001, 27005);
  for (int i = 0; i < 900; ++i) qoe.OnDelivered(r);
  for (int i = 0; i < 100; ++i) qoe.OnLost(r);  // 10% loss
  s.RunUntil(1.5);
  ASSERT_EQ(quit_ports.size(), 1u);
  EXPECT_EQ(quit_ports[0], 27005);
  EXPECT_EQ(qoe.quits_triggered(), 1u);
}

TEST(QoeMonitor, FewEventsNoJudgement) {
  sim::Simulator s;
  int quits = 0;
  QoeMonitor qoe(s, FastConfig(), sim::Rng(4),
                 [&](net::Ipv4Address, std::uint16_t) { ++quits; });
  qoe.Start();
  const auto r = MakeRecord(0x0A000001, 27005);
  for (int i = 0; i < 5; ++i) qoe.OnLost(r);  // 100% loss but only 5 events
  s.RunUntil(2.0);
  EXPECT_EQ(quits, 0);
}

TEST(QoeMonitor, WindowResetsEachCheck) {
  sim::Simulator s;
  int quits = 0;
  QoeMonitor qoe(s, FastConfig(), sim::Rng(5),
                 [&](net::Ipv4Address, std::uint16_t) { ++quits; });
  qoe.Start();
  const auto r = MakeRecord(0x0A000001, 27005);
  // Heavy loss in the first second...
  for (int i = 0; i < 50; ++i) qoe.OnLost(r);
  for (int i = 0; i < 50; ++i) qoe.OnDelivered(r);
  EXPECT_GT(qoe.WindowLossRate(r.client_ip, r.client_port), 0.4);
  s.RunUntil(1.1);  // the check quits the player and resets windows
  EXPECT_EQ(quits, 1);
  // A fresh (re-joined) endpoint with clean traffic is judged on the new
  // window only.
  for (int i = 0; i < 200; ++i) qoe.OnDelivered(r);
  s.RunUntil(2.5);
  EXPECT_EQ(quits, 1);
}

TEST(QoeMonitor, PerEndpointIsolation) {
  sim::Simulator s;
  std::set<std::uint16_t> quit_ports;
  QoeMonitor qoe(s, FastConfig(), sim::Rng(6),
                 [&](net::Ipv4Address, std::uint16_t port) { quit_ports.insert(port); });
  qoe.Start();
  const auto lossy = MakeRecord(0x0A000001, 1000);
  const auto clean = MakeRecord(0x0A000001, 2000);
  for (int i = 0; i < 100; ++i) {
    qoe.OnLost(lossy);
    qoe.OnDelivered(lossy);
    qoe.OnDelivered(clean);
  }
  s.RunUntil(1.5);
  EXPECT_TRUE(quit_ports.contains(1000));
  EXPECT_FALSE(quit_ports.contains(2000));
}

// The paper's end-to-end claim: behind an overloaded device, QoE quitting
// sheds load until loss sits near the tolerable 1-2%.
TEST(QoeMonitor, SelfTuningShedsLoadBehindOverloadedDevice) {
  auto cfg = core::NatExperimentConfig::Defaults();
  cfg.duration = 600.0;
  cfg.game.trace_duration = 600.0;
  cfg.game.maps.map_duration = 700.0;
  // A purely capacity-limited device (no livelock): offered ~850 pps
  // against 800 pps of lookup - sustained, load-dependent loss.
  cfg.device.mean_capacity_pps = 800.0;
  cfg.device.episode_mean_interval = 0.0;

  cfg.enable_qoe = false;
  const auto without = core::RunNatExperiment(cfg);
  cfg.enable_qoe = true;
  const auto with = core::RunNatExperiment(cfg);

  // Without QoE the device stays saturated; with QoE players bail until
  // the load fits, so fewer packets are lost and fewer players remain.
  EXPECT_GT(with.qoe_quits, 5u);
  EXPECT_LT(with.players.values().back(), without.players.values().back());
  EXPECT_LT(with.device.loss_rate_incoming(), without.device.loss_rate_incoming());
}

}  // namespace
}  // namespace gametrace::game
