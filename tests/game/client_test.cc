#include "game/client.h"

#include <set>

#include <gtest/gtest.h>

namespace gametrace::game {
namespace {

TEST(DrawProfile, MixFractionsRespected) {
  ClientMixConfig mix;
  sim::Rng rng(1);
  int modem = 0;
  int broadband = 0;
  int l337 = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    switch (DrawProfile(mix, rng).cls) {
      case ClientClass::kModem:
        ++modem;
        break;
      case ClientClass::kBroadband:
        ++broadband;
        break;
      case ClientClass::kL337:
        ++l337;
        break;
    }
  }
  EXPECT_NEAR(static_cast<double>(l337) / kDraws, mix.l337_fraction, 0.003);
  EXPECT_NEAR(static_cast<double>(broadband) / kDraws, mix.broadband_fraction, 0.005);
  EXPECT_GT(modem, kDraws * 0.9);
}

TEST(DrawProfile, RatesMatchClass) {
  ClientMixConfig mix;
  sim::Rng rng(2);
  double modem_sum = 0.0;
  int modem_n = 0;
  double l337_sum = 0.0;
  int l337_n = 0;
  for (int i = 0; i < 100000; ++i) {
    const ClientProfile p = DrawProfile(mix, rng);
    if (p.cls == ClientClass::kModem) {
      modem_sum += p.update_rate;
      ++modem_n;
    } else if (p.cls == ClientClass::kL337) {
      l337_sum += p.update_rate;
      ++l337_n;
    }
  }
  ASSERT_GT(modem_n, 0);
  ASSERT_GT(l337_n, 0);
  EXPECT_NEAR(modem_sum / modem_n, 24.3, 0.2);
  EXPECT_NEAR(l337_sum / l337_n, 60.0, 2.0);
}

TEST(DrawProfile, L337GetsExtraSnapshots) {
  ClientMixConfig mix;
  mix.l337_fraction = 1.0;  // force l337
  sim::Rng rng(3);
  const ClientProfile p = DrawProfile(mix, rng);
  EXPECT_EQ(p.cls, ClientClass::kL337);
  EXPECT_EQ(p.snapshots_per_tick, 3);
}

TEST(DrawProfile, ModemGetsOneSnapshot) {
  ClientMixConfig mix;
  mix.l337_fraction = 0.0;
  mix.broadband_fraction = 0.0;
  sim::Rng rng(4);
  EXPECT_EQ(DrawProfile(mix, rng).snapshots_per_tick, 1);
}

TEST(DrawProfile, RateNeverPathological) {
  ClientMixConfig mix;
  mix.modem_rate_stddev = 50.0;  // absurd spread
  sim::Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(DrawProfile(mix, rng).update_rate, 5.0);
  }
}

TEST(IdentityIp, DeterministicAndInTenSlashEight) {
  for (std::size_t i = 0; i < 1000; ++i) {
    const net::Ipv4Address a = IdentityIp(i);
    EXPECT_EQ(IdentityIp(i), a);
    EXPECT_EQ(a.value() >> 24, 10u);
  }
}

TEST(IdentityIp, CollisionFree) {
  std::set<std::uint32_t> seen;
  for (std::size_t i = 0; i < 20000; ++i) seen.insert(IdentityIp(i).value());
  EXPECT_EQ(seen.size(), 20000u);
}

TEST(IdentityIp, NeighboursDoNotSharePrefixes) {
  // Bit-reversal spreads consecutive identities across the /8 - identities
  // 0 and 1 must differ in the *high* host bit.
  const auto a = IdentityIp(0).value();
  const auto b = IdentityIp(1).value();
  EXPECT_EQ((a ^ b) & 0x00FFFFFFu, 0x00800000u);
}

TEST(DrawEphemeralPort, AboveWellKnownRange) {
  sim::Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_GE(DrawEphemeralPort(rng), 1024);
  }
}

TEST(NextSendGap, CentredOnInverseRate) {
  ClientProfile p;
  p.update_rate = 25.0;
  sim::Rng rng(7);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += NextSendGap(p, 0.25, rng);
  EXPECT_NEAR(sum / kDraws, 0.04, 0.001);
}

TEST(NextSendGap, JitterBounds) {
  ClientProfile p;
  p.update_rate = 20.0;
  sim::Rng rng(8);
  for (int i = 0; i < 10000; ++i) {
    const double gap = NextSendGap(p, 0.25, rng);
    EXPECT_GE(gap, 0.05 * 0.75 - 1e-12);
    EXPECT_LE(gap, 0.05 * 1.25 + 1e-12);
  }
}

TEST(NextSendGap, ZeroJitterIsDeterministic) {
  ClientProfile p;
  p.update_rate = 20.0;
  sim::Rng rng(9);
  EXPECT_DOUBLE_EQ(NextSendGap(p, 0.0, rng), 0.05);
}

}  // namespace
}  // namespace gametrace::game
