#include "game/server_tick.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::game {
namespace {

TEST(TickEngine, Validation) {
  sim::Simulator s;
  EXPECT_THROW(TickEngine(s, 0.0, [](double) {}), gametrace::ContractViolation);
  EXPECT_THROW(TickEngine(s, -1.0, [](double) {}), gametrace::ContractViolation);
  EXPECT_THROW(TickEngine(s, 0.05, nullptr), gametrace::ContractViolation);
}

TEST(TickEngine, FiresAtExactInterval) {
  sim::Simulator s;
  std::vector<double> times;
  TickEngine tick(s, 0.05, [&](double t) { times.push_back(t); });
  tick.Start(0.0);
  s.RunUntil(1.0);
  // 0.00 .. 1.00: 21 firings nominally; floating-point accumulation may put
  // the last tick epsilon past the horizon.
  ASSERT_GE(times.size(), 20u);
  ASSERT_LE(times.size(), 21u);
  for (std::size_t i = 0; i < times.size(); ++i) {
    EXPECT_NEAR(times[i], i * 0.05, 1e-9);
  }
  EXPECT_EQ(tick.ticks_fired(), times.size());
}

TEST(TickEngine, StartAtOffset) {
  sim::Simulator s;
  std::vector<double> times;
  TickEngine tick(s, 1.0, [&](double t) { times.push_back(t); });
  tick.Start(5.0);
  s.RunUntil(8.0);
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times.front(), 5.0);
}

TEST(TickEngine, StopHalts) {
  sim::Simulator s;
  int count = 0;
  TickEngine tick(s, 0.1, [&](double) { ++count; });
  tick.Start(0.0);
  s.At(0.35, [&] { tick.Stop(); });
  s.RunUntil(10.0);
  EXPECT_EQ(count, 4);  // 0.0, 0.1, 0.2, 0.3
  EXPECT_FALSE(tick.running());
}

TEST(TickEngine, StopFromWithinHandler) {
  sim::Simulator s;
  int count = 0;
  TickEngine* self = nullptr;
  TickEngine tick(s, 0.1, [&](double) {
    if (++count == 3) self->Stop();
  });
  self = &tick;
  tick.Start(0.0);
  s.RunUntil(10.0);
  EXPECT_EQ(count, 3);
}

TEST(TickEngine, DoubleStartRejected) {
  sim::Simulator s;
  TickEngine tick(s, 0.1, [](double) {});
  tick.Start(0.0);
  EXPECT_THROW(tick.Start(0.0), gametrace::ContractViolation);
}

TEST(TickEngine, RestartAfterStop) {
  sim::Simulator s;
  int count = 0;
  TickEngine tick(s, 0.1, [&](double) { ++count; });
  tick.Start(0.0);
  s.At(0.25, [&] { tick.Stop(); });
  s.RunUntil(0.5);
  const int first_phase = count;
  tick.Start(1.0);
  s.RunUntil(1.25);
  EXPECT_GT(count, first_phase);
  EXPECT_TRUE(tick.running());
}

TEST(TickEngine, NoDriftOverLongRun) {
  // 50 ms ticks over an hour: exactly 72001 firings, no cumulative drift.
  sim::Simulator s;
  std::uint64_t count = 0;
  double last = -1.0;
  TickEngine tick(s, 0.05, [&](double t) {
    ++count;
    last = t;
  });
  tick.Start(0.0);
  s.RunUntil(3600.0);
  EXPECT_GE(count, 72000u);
  EXPECT_LE(count, 72001u);
  EXPECT_NEAR(last, 3600.0, 0.051);  // within one tick of the horizon
}

}  // namespace
}  // namespace gametrace::game
