#include "game/download.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::game {
namespace {

struct Chunk {
  double time;
  std::uint16_t bytes;
  std::uint32_t ip;
};

class DownloadTest : public ::testing::Test {
 protected:
  DownloadConfig AlwaysDownload() {
    DownloadConfig cfg;
    cfg.join_probability = 1.0;
    cfg.map_change_probability = 1.0;
    return cfg;
  }

  DownloadManager MakeManager(const DownloadConfig& cfg) {
    return DownloadManager(
        sim_, cfg, sim::Rng(1),
        [this](std::uint16_t bytes, net::Ipv4Address ip, std::uint16_t) {
          chunks_.push_back({sim_.Now(), bytes, ip.value()});
        },
        [this](std::uint64_t id) { return alive_.contains(id); });
  }

  sim::Simulator sim_;
  std::vector<Chunk> chunks_;
  std::set<std::uint64_t> alive_{1, 2, 3};
};

TEST_F(DownloadTest, Validation) {
  EXPECT_THROW(DownloadManager(sim_, DownloadConfig{}, sim::Rng(1), nullptr,
                               [](std::uint64_t) { return true; }),
               gametrace::ContractViolation);
}

TEST_F(DownloadTest, JoinTriggersTransfer) {
  DownloadManager mgr = MakeManager(AlwaysDownload());
  mgr.OnJoin(1, net::Ipv4Address(10, 0, 0, 1), 27005);
  sim_.RunAll();
  EXPECT_EQ(mgr.transfers_started(), 1u);
  EXPECT_GT(mgr.chunks_sent(), 0u);
  EXPECT_GT(mgr.bytes_sent(), 0u);
}

TEST_F(DownloadTest, ZeroProbabilityNeverTransfers) {
  DownloadConfig cfg;
  cfg.join_probability = 0.0;
  cfg.map_change_probability = 0.0;
  DownloadManager mgr = MakeManager(cfg);
  for (int i = 0; i < 100; ++i) {
    mgr.OnJoin(1, net::Ipv4Address(10, 0, 0, 1), 27005);
    mgr.OnMapChange(1, net::Ipv4Address(10, 0, 0, 1), 27005);
  }
  sim_.RunAll();
  EXPECT_EQ(mgr.transfers_started(), 0u);
}

TEST_F(DownloadTest, ChunkSizesWithinConfiguredRange) {
  DownloadManager mgr = MakeManager(AlwaysDownload());
  mgr.OnJoin(1, net::Ipv4Address(10, 0, 0, 1), 27005);
  sim_.RunAll();
  ASSERT_GT(chunks_.size(), 1u);
  for (std::size_t i = 0; i + 1 < chunks_.size(); ++i) {
    EXPECT_GE(chunks_[i].bytes, 350);
    EXPECT_LE(chunks_[i].bytes, 500);
  }
  // The final chunk may be a remainder of any positive size.
  EXPECT_GE(chunks_.back().bytes, 1);
}

TEST_F(DownloadTest, RateLimitPacesChunks) {
  DownloadConfig cfg = AlwaysDownload();
  cfg.rate_limit_bps = 24000.0;
  cfg.mean_bytes = 30000.0;
  cfg.stddev_bytes = 0.0;
  DownloadManager mgr = MakeManager(cfg);
  mgr.OnJoin(1, net::Ipv4Address(10, 0, 0, 1), 27005);
  sim_.RunAll();
  ASSERT_GT(chunks_.size(), 10u);
  const double span = chunks_.back().time - chunks_.front().time;
  const double observed_bps = static_cast<double>(mgr.bytes_sent()) * 8.0 / span;
  EXPECT_NEAR(observed_bps, 24000.0, 2500.0);
}

TEST_F(DownloadTest, TransferDiesWithSession) {
  DownloadConfig cfg = AlwaysDownload();
  cfg.mean_bytes = 1e6;  // would take ~333 s at the rate limit
  cfg.stddev_bytes = 0.0;
  DownloadManager mgr = MakeManager(cfg);
  mgr.OnJoin(1, net::Ipv4Address(10, 0, 0, 1), 27005);
  sim_.At(5.0, [this] { alive_.erase(1); });
  sim_.RunAll();
  // Stopped early: far fewer bytes than the full transfer.
  EXPECT_LT(mgr.bytes_sent(), 100000u);
  ASSERT_FALSE(chunks_.empty());
  EXPECT_LE(chunks_.back().time, 5.1);
}

TEST_F(DownloadTest, DeadSessionNeverStarts) {
  DownloadManager mgr = MakeManager(AlwaysDownload());
  mgr.OnJoin(99, net::Ipv4Address(10, 0, 0, 9), 27005);  // 99 not alive
  sim_.RunAll();
  EXPECT_EQ(mgr.transfers_started(), 1u);  // rolled the dice...
  EXPECT_EQ(mgr.chunks_sent(), 0u);        // ...but nothing went out
}

TEST_F(DownloadTest, TransferSizeRespectsMinimum) {
  DownloadConfig cfg = AlwaysDownload();
  cfg.mean_bytes = 100.0;  // tiny mean...
  cfg.stddev_bytes = 50.0;
  cfg.min_bytes = 2000.0;  // ...but the floor wins
  DownloadManager mgr = MakeManager(cfg);
  mgr.OnJoin(1, net::Ipv4Address(10, 0, 0, 1), 27005);
  sim_.RunAll();
  // Per-chunk integer truncation can shave a few bytes off the total.
  EXPECT_GE(mgr.bytes_sent(), 1950u);
}

TEST_F(DownloadTest, MapChangeProbabilityIndependent) {
  DownloadConfig cfg;
  cfg.join_probability = 0.0;
  cfg.map_change_probability = 1.0;
  DownloadManager mgr = MakeManager(cfg);
  mgr.OnJoin(1, net::Ipv4Address(10, 0, 0, 1), 27005);
  EXPECT_EQ(mgr.transfers_started(), 0u);
  mgr.OnMapChange(1, net::Ipv4Address(10, 0, 0, 1), 27005);
  EXPECT_EQ(mgr.transfers_started(), 1u);
}

}  // namespace
}  // namespace gametrace::game
