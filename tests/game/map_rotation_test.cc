#include "game/map_rotation.h"

#include <vector>

#include <gtest/gtest.h>

namespace gametrace::game {
namespace {

MapConfig FastMaps() {
  MapConfig cfg;
  cfg.map_duration = 100.0;
  cfg.changeover_stall_mean = 5.0;
  cfg.changeover_stall_jitter = 1.0;
  cfg.round_mean_duration = 20.0;
  cfg.round_min_duration = 5.0;
  cfg.buy_time = 2.0;
  cfg.buy_time_activity = 0.5;
  return cfg;
}

TEST(MapRotation, StartBeginsFirstMap) {
  sim::Simulator s;
  MapRotation rotation(s, FastMaps(), sim::Rng(1));
  EXPECT_EQ(rotation.maps_played(), 0);
  rotation.Start();
  EXPECT_EQ(rotation.maps_played(), 1);
  EXPECT_FALSE(rotation.stalled());
}

TEST(MapRotation, RotatesOnSchedule) {
  sim::Simulator s;
  MapRotation rotation(s, FastMaps(), sim::Rng(2));
  rotation.Start();
  // ~100 s map + ~5 s stall per cycle: in 1000 s expect ~9-10 maps.
  s.RunUntil(1000.0);
  EXPECT_GE(rotation.maps_played(), 8);
  EXPECT_LE(rotation.maps_played(), 11);
}

TEST(MapRotation, StallWindowObserved) {
  sim::Simulator s;
  MapRotation rotation(s, FastMaps(), sim::Rng(3));
  std::vector<double> stall_begins;
  std::vector<double> map_starts;
  rotation.SetCallbacks(
      {.on_stall_begin = [&](double t) { stall_begins.push_back(t); },
       .on_map_start = [&](double t) { map_starts.push_back(t); }});
  rotation.Start();
  s.RunUntil(350.0);
  ASSERT_GE(stall_begins.size(), 2u);
  ASSERT_GE(map_starts.size(), 3u);  // initial + 2 rotations
  // Stall begins exactly at the map duration; the next map starts 4-6 s
  // later (5 +/- 1 jitter).
  EXPECT_DOUBLE_EQ(stall_begins[0], 100.0);
  EXPECT_GE(map_starts[1] - stall_begins[0], 4.0);
  EXPECT_LE(map_starts[1] - stall_begins[0], 6.0);
}

TEST(MapRotation, StalledFlagDuringChangeover) {
  sim::Simulator s;
  MapRotation rotation(s, FastMaps(), sim::Rng(4));
  rotation.Start();
  s.RunUntil(101.0);  // inside the first changeover
  EXPECT_TRUE(rotation.stalled());
  s.RunUntil(110.0);  // stall is 4-6 s
  EXPECT_FALSE(rotation.stalled());
}

TEST(MapRotation, RoundsAccumulate) {
  sim::Simulator s;
  MapRotation rotation(s, FastMaps(), sim::Rng(5));
  rotation.Start();
  s.RunUntil(1000.0);
  // ~20 s rounds across ~950 s of live play.
  EXPECT_GT(rotation.rounds_played(), 20u);
  EXPECT_LT(rotation.rounds_played(), 90u);
}

TEST(MapRotation, BuyTimeReducesActivity) {
  sim::Simulator s;
  MapRotation rotation(s, FastMaps(), sim::Rng(6));
  rotation.Start();
  // Immediately after the map starts we are in buy time.
  EXPECT_DOUBLE_EQ(rotation.activity_factor(), 0.5);
  s.RunUntil(3.0);  // past the 2 s buy window
  EXPECT_DOUBLE_EQ(rotation.activity_factor(), 1.0);
}

TEST(MapRotation, ActivityIsOneWhenStalledOrUnstarted) {
  sim::Simulator s;
  MapRotation rotation(s, FastMaps(), sim::Rng(7));
  EXPECT_DOUBLE_EQ(rotation.activity_factor(), 1.0);  // not started
  rotation.Start();
  s.RunUntil(101.0);  // stalled
  EXPECT_DOUBLE_EQ(rotation.activity_factor(), 1.0);
}

TEST(MapRotation, PaperRateMapsPerWeek) {
  // With the paper's 30 min rotation, a week is ~335-345 maps (339 observed).
  sim::Simulator s;
  MapConfig cfg;  // defaults: 1800 s maps, ~12 s stalls
  MapRotation rotation(s, cfg, sim::Rng(8));
  rotation.Start();
  s.RunUntil(626477.0);
  EXPECT_GE(rotation.maps_played(), 340);
  EXPECT_LE(rotation.maps_played(), 350);
}

}  // namespace
}  // namespace gametrace::game
