#include "net/game_payload.h"

#include <gtest/gtest.h>

namespace gametrace::net {
namespace {

PacketRecord MakeRecord(std::uint32_t seq, std::uint16_t bytes,
                        PacketKind kind = PacketKind::kGameUpdate) {
  PacketRecord r;
  r.seq = seq;
  r.app_bytes = bytes;
  r.kind = kind;
  r.client_port = 27005;
  return r;
}

TEST(GamePayload, PayloadIsExactlyRequestedSize) {
  for (std::uint16_t bytes : {0, 4, 8, 40, 129, 500}) {
    EXPECT_EQ(BuildGamePayload(MakeRecord(5, bytes)).size(), bytes);
  }
}

TEST(GamePayload, SequencedRoundTrip) {
  const auto payload = BuildGamePayload(MakeRecord(12345, 40));
  const auto parsed = ParseGamePayload(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->connectionless);
  EXPECT_EQ(parsed->seq, 12345u);
  EXPECT_EQ(parsed->ack, 12344u);
}

TEST(GamePayload, ConnectionlessMarker) {
  const auto payload = BuildGamePayload(MakeRecord(0, 44, PacketKind::kConnectRequest));
  const auto parsed = ParseGamePayload(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->connectionless);
  EXPECT_EQ(parsed->seq, 0u);
  // First four bytes are the 0xFFFFFFFF marker.
  EXPECT_EQ(payload[0], 0xFF);
  EXPECT_EQ(payload[3], 0xFF);
}

TEST(GamePayload, TooShortForHeader) {
  const auto payload = BuildGamePayload(MakeRecord(7, 4));
  EXPECT_EQ(payload.size(), 4u);
  EXPECT_FALSE(ParseGamePayload(payload).has_value());
}

TEST(GamePayload, FillIsDeterministicAndNonZero) {
  const auto a = BuildGamePayload(MakeRecord(9, 100));
  const auto b = BuildGamePayload(MakeRecord(9, 100));
  EXPECT_EQ(a, b);
  bool any_nonzero = false;
  for (std::size_t i = kNetchanHeaderBytes; i < a.size(); ++i) {
    if (a[i] != 0) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(GamePayload, LargeSequenceNotMistakenForMarker) {
  // Sequences near (but not equal to) 0xFFFFFFFF must parse as sequences.
  const auto payload = BuildGamePayload(MakeRecord(0xFFFFFFFE, 40));
  const auto parsed = ParseGamePayload(payload);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_FALSE(parsed->connectionless);
  EXPECT_EQ(parsed->seq, 0xFFFFFFFEu);
}

}  // namespace
}  // namespace gametrace::net
