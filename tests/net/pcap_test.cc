#include "net/pcap.h"

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include <gtest/gtest.h>

namespace gametrace::net {
namespace {

class PcapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("gametrace_pcap_test_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() + ".pcap"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }

  std::string path_;
  ServerEndpoint server_;
};

PacketRecord MakeRecord(double t, Direction dir, std::uint16_t bytes) {
  PacketRecord r;
  r.timestamp = t;
  r.client_ip = Ipv4Address(10, 1, 2, 3);
  r.client_port = 27005;
  r.app_bytes = bytes;
  r.direction = dir;
  r.kind = PacketKind::kGameUpdate;
  return r;
}

TEST_F(PcapTest, GlobalHeaderRoundTrip) {
  {
    PcapWriter writer(path_, 4096);
    writer.Flush();
  }
  PcapReader reader(path_);
  EXPECT_EQ(reader.snaplen(), 4096u);
  EXPECT_EQ(reader.link_type(), 1u);  // Ethernet
  EXPECT_FALSE(reader.Next().has_value());
}

TEST_F(PcapTest, FrameRoundTrip) {
  const std::vector<std::uint8_t> frame{1, 2, 3, 4, 5, 6, 7, 8};
  {
    PcapWriter writer(path_);
    writer.WriteFrame(1.5, frame);
    writer.Flush();
  }
  PcapReader reader(path_);
  const auto pkt = reader.Next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_NEAR(pkt->timestamp, 1.5, 1e-6);
  EXPECT_EQ(pkt->frame, frame);
  EXPECT_FALSE(reader.Next().has_value());
}

TEST_F(PcapTest, SnaplenTruncates) {
  const std::vector<std::uint8_t> frame(1000, 0xAA);
  {
    PcapWriter writer(path_, 100);
    writer.WriteFrame(0.0, frame);
    writer.Flush();
  }
  PcapReader reader(path_);
  const auto pkt = reader.Next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->frame.size(), 100u);
}

TEST_F(PcapTest, RecordRoundTripPreservesEverything) {
  {
    PcapWriter writer(path_);
    writer.WriteRecord(MakeRecord(0.1, Direction::kClientToServer, 40), server_);
    writer.WriteRecord(MakeRecord(0.2, Direction::kServerToClient, 129), server_);
    writer.Flush();
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  PcapReader reader(path_);
  std::uint64_t skipped = 0;
  const auto records = reader.ReadAllRecords(server_, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].direction, Direction::kClientToServer);
  EXPECT_EQ(records[0].app_bytes, 40);
  EXPECT_EQ(records[0].client_ip, Ipv4Address(10, 1, 2, 3));
  EXPECT_EQ(records[1].direction, Direction::kServerToClient);
  EXPECT_EQ(records[1].app_bytes, 129);
  EXPECT_NEAR(records[1].timestamp, 0.2, 1e-6);
}

TEST_F(PcapTest, NonServerTrafficSkipped) {
  {
    PcapWriter writer(path_);
    writer.WriteRecord(MakeRecord(0.1, Direction::kClientToServer, 40), server_);
    writer.Flush();
  }
  PcapReader reader(path_);
  ServerEndpoint other;
  other.ip = Ipv4Address(1, 1, 1, 1);
  std::uint64_t skipped = 0;
  const auto records = reader.ReadAllRecords(other, &skipped);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(skipped, 1u);
}

TEST_F(PcapTest, MicrosecondPrecision) {
  {
    PcapWriter writer(path_);
    writer.WriteFrame(1234.567891, std::vector<std::uint8_t>(10, 0));
    writer.Flush();
  }
  PcapReader reader(path_);
  const auto pkt = reader.Next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_NEAR(pkt->timestamp, 1234.567891, 1e-6);
}

TEST_F(PcapTest, BadMagicRejected) {
  {
    std::ofstream out(path_, std::ios::binary);
    const std::uint32_t junk = 0xDEADBEEF;
    out.write(reinterpret_cast<const char*>(&junk), sizeof(junk));
  }
  EXPECT_THROW(PcapReader reader(path_), std::runtime_error);
}

TEST_F(PcapTest, MissingFileRejected) {
  EXPECT_THROW(PcapReader reader("/nonexistent/definitely/missing.pcap"), std::runtime_error);
  EXPECT_THROW(PcapWriter writer("/nonexistent/definitely/missing.pcap"), std::runtime_error);
}

TEST_F(PcapTest, TruncatedBodyThrows) {
  {
    PcapWriter writer(path_);
    writer.WriteFrame(0.0, std::vector<std::uint8_t>(100, 1));
    writer.Flush();
  }
  // Chop the file mid-packet.
  std::filesystem::resize_file(path_, std::filesystem::file_size(path_) - 50);
  PcapReader reader(path_);
  EXPECT_THROW((void)reader.Next(), std::runtime_error);
}

TEST_F(PcapTest, ManyRecordsStream) {
  constexpr int kCount = 1000;
  {
    PcapWriter writer(path_);
    for (int i = 0; i < kCount; ++i) {
      writer.WriteRecord(MakeRecord(i * 0.01, i % 2 == 0 ? Direction::kClientToServer
                                                         : Direction::kServerToClient,
                                    static_cast<std::uint16_t>(20 + i % 200)),
                         server_);
    }
    writer.Flush();
  }
  PcapReader reader(path_);
  const auto records = reader.ReadAllRecords(server_);
  EXPECT_EQ(records.size(), static_cast<std::size_t>(kCount));
}

}  // namespace
}  // namespace gametrace::net
