#include "net/flow.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "net/packet.h"

namespace gametrace::net {
namespace {

FlowKey MakeFlow() {
  FlowKey k;
  k.src_ip = Ipv4Address(10, 0, 0, 1);
  k.dst_ip = Ipv4Address(192, 168, 0, 10);
  k.src_port = 27005;
  k.dst_port = 27015;
  k.proto = IpProto::kUdp;
  return k;
}

TEST(FlowKey, Equality) {
  EXPECT_EQ(MakeFlow(), MakeFlow());
  FlowKey other = MakeFlow();
  other.src_port = 1;
  EXPECT_NE(MakeFlow(), other);
}

TEST(FlowKey, ReversedSwapsEndpoints) {
  const FlowKey k = MakeFlow();
  const FlowKey r = k.Reversed();
  EXPECT_EQ(r.src_ip, k.dst_ip);
  EXPECT_EQ(r.dst_port, k.src_port);
  EXPECT_EQ(r.Reversed(), k);
}

TEST(FlowKey, CanonicalIsDirectionless) {
  const FlowKey k = MakeFlow();
  EXPECT_EQ(k.Canonical(), k.Reversed().Canonical());
}

TEST(FlowKey, CanonicalIsIdempotent) {
  const FlowKey k = MakeFlow();
  EXPECT_EQ(k.Canonical().Canonical(), k.Canonical());
}

TEST(FlowKey, ToStringFormat) {
  EXPECT_EQ(MakeFlow().ToString(), "udp 10.0.0.1:27005 -> 192.168.0.10:27015");
}

TEST(FlowKeyHash, DistinguishesFlows) {
  FlowKeyHash hash;
  std::unordered_set<std::size_t> hashes;
  FlowKey k = MakeFlow();
  for (std::uint16_t port = 1000; port < 1100; ++port) {
    k.src_port = port;
    hashes.insert(hash(k));
  }
  EXPECT_GT(hashes.size(), 95u);  // near-perfect distribution over 100 keys
}

TEST(FlowKeyHash, EqualKeysEqualHashes) {
  FlowKeyHash hash;
  EXPECT_EQ(hash(MakeFlow()), hash(MakeFlow()));
}

TEST(FlowOf, ClientToServerDirection) {
  ServerEndpoint server;
  PacketRecord r;
  r.client_ip = Ipv4Address(10, 0, 0, 1);
  r.client_port = 27005;
  r.direction = Direction::kClientToServer;
  const FlowKey k = FlowOf(r, server);
  EXPECT_EQ(k.src_ip, r.client_ip);
  EXPECT_EQ(k.dst_ip, server.ip);
  EXPECT_EQ(k.dst_port, server.port);
}

TEST(FlowOf, ServerToClientDirection) {
  ServerEndpoint server;
  PacketRecord r;
  r.client_ip = Ipv4Address(10, 0, 0, 1);
  r.client_port = 27005;
  r.direction = Direction::kServerToClient;
  const FlowKey k = FlowOf(r, server);
  EXPECT_EQ(k.src_ip, server.ip);
  EXPECT_EQ(k.src_port, server.port);
  EXPECT_EQ(k.dst_ip, r.client_ip);
}

TEST(FlowOf, BothDirectionsShareCanonicalKey) {
  ServerEndpoint server;
  PacketRecord in;
  in.client_ip = Ipv4Address(10, 0, 0, 1);
  in.client_port = 27005;
  in.direction = Direction::kClientToServer;
  PacketRecord out = in;
  out.direction = Direction::kServerToClient;
  EXPECT_EQ(FlowOf(in, server).Canonical(), FlowOf(out, server).Canonical());
}

TEST(PacketRecord, WireBytes) {
  PacketRecord r;
  r.app_bytes = 40;
  EXPECT_EQ(r.wire_bytes(), 94u);
  EXPECT_EQ(r.wire_bytes(28), 68u);
}

}  // namespace
}  // namespace gametrace::net
