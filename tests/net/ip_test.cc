#include "net/ip.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::net {
namespace {

TEST(Ipv4Address, OctetConstruction) {
  const Ipv4Address a(192, 168, 0, 10);
  EXPECT_EQ(a.value(), 0xC0A8000Au);
  EXPECT_EQ(a.ToString(), "192.168.0.10");
}

TEST(Ipv4Address, BoundaryValues) {
  EXPECT_EQ(Ipv4Address(0, 0, 0, 0).ToString(), "0.0.0.0");
  EXPECT_EQ(Ipv4Address(255, 255, 255, 255).ToString(), "255.255.255.255");
}

TEST(Ipv4Address, Ordering) {
  EXPECT_LT(Ipv4Address(10, 0, 0, 1), Ipv4Address(10, 0, 0, 2));
  EXPECT_EQ(Ipv4Address(1, 2, 3, 4), Ipv4Address(0x01020304));
}

struct ParseCase {
  const char* text;
  bool ok;
  std::uint32_t value;
};

class Ipv4ParseTest : public ::testing::TestWithParam<ParseCase> {};

TEST_P(Ipv4ParseTest, Parse) {
  const auto& c = GetParam();
  const auto parsed = Ipv4Address::Parse(c.text);
  EXPECT_EQ(parsed.has_value(), c.ok) << c.text;
  if (c.ok && parsed) EXPECT_EQ(parsed->value(), c.value) << c.text;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, Ipv4ParseTest,
    ::testing::Values(ParseCase{"1.2.3.4", true, 0x01020304},
                      ParseCase{"0.0.0.0", true, 0},
                      ParseCase{"255.255.255.255", true, 0xffffffff},
                      ParseCase{"192.168.0.10", true, 0xC0A8000A},
                      ParseCase{"256.1.1.1", false, 0},
                      ParseCase{"1.2.3", false, 0},
                      ParseCase{"1.2.3.4.5", false, 0},
                      ParseCase{"1..3.4", false, 0},
                      ParseCase{"", false, 0},
                      ParseCase{"a.b.c.d", false, 0},
                      ParseCase{"1.2.3.4 ", false, 0},
                      ParseCase{"01.2.3.4", false, 0},  // ambiguous leading zero
                      ParseCase{"-1.2.3.4", false, 0}));

TEST(Ipv4Address, RoundTripParseFormat) {
  for (std::uint32_t v : {0u, 1u, 0xC0A8000Au, 0x0A000001u, 0xFFFFFFFFu}) {
    const Ipv4Address a(v);
    const auto parsed = Ipv4Address::Parse(a.ToString());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->value(), v);
  }
}

TEST(Ipv4Prefix, MaskAndContains) {
  const Ipv4Prefix p(Ipv4Address(10, 1, 0, 0), 16);
  EXPECT_EQ(p.mask(), 0xFFFF0000u);
  EXPECT_TRUE(p.Contains(Ipv4Address(10, 1, 2, 3)));
  EXPECT_FALSE(p.Contains(Ipv4Address(10, 2, 0, 0)));
  EXPECT_EQ(p.ToString(), "10.1.0.0/16");
}

TEST(Ipv4Prefix, HostBitsZeroed) {
  const Ipv4Prefix p(Ipv4Address(10, 1, 2, 3), 16);
  EXPECT_EQ(p.address(), Ipv4Address(10, 1, 0, 0));
}

TEST(Ipv4Prefix, DefaultRouteContainsEverything) {
  const Ipv4Prefix p(Ipv4Address(1, 2, 3, 4), 0);
  EXPECT_EQ(p.mask(), 0u);
  EXPECT_TRUE(p.Contains(Ipv4Address(255, 255, 255, 255)));
  EXPECT_TRUE(p.Contains(Ipv4Address(0, 0, 0, 0)));
}

TEST(Ipv4Prefix, HostRoute) {
  const Ipv4Prefix p(Ipv4Address(10, 0, 0, 1), 32);
  EXPECT_TRUE(p.Contains(Ipv4Address(10, 0, 0, 1)));
  EXPECT_FALSE(p.Contains(Ipv4Address(10, 0, 0, 2)));
}

TEST(Ipv4Prefix, LengthValidation) {
  EXPECT_THROW(Ipv4Prefix(Ipv4Address(0u), -1), gametrace::ContractViolation);
  EXPECT_THROW(Ipv4Prefix(Ipv4Address(0u), 33), gametrace::ContractViolation);
}

}  // namespace
}  // namespace gametrace::net
