#include "net/headers.h"

#include <array>
#include <vector>

#include <gtest/gtest.h>

namespace gametrace::net {
namespace {

FrameSpec MakeSpec(std::uint16_t payload_hint = 0) {
  (void)payload_hint;
  FrameSpec spec;
  spec.flow.src_ip = Ipv4Address(10, 0, 0, 1);
  spec.flow.dst_ip = Ipv4Address(192, 168, 0, 10);
  spec.flow.src_port = 27005;
  spec.flow.dst_port = 27015;
  spec.flow.proto = IpProto::kUdp;
  spec.ip_id = 0x1234;
  return spec;
}

TEST(InternetChecksum, Rfc1071Example) {
  // Classic example from RFC 1071: words 0x0001, 0xf203, 0xf4f5, 0xf6f7.
  const std::array<std::uint8_t, 8> data{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Sum = 0x2ddf0 -> fold -> 0xddf2 -> complement 0x220d.
  EXPECT_EQ(InternetChecksum(data), 0x220d);
}

TEST(InternetChecksum, OddLengthPads) {
  const std::array<std::uint8_t, 3> data{0x01, 0x02, 0x03};
  // Words: 0x0102, 0x0300 -> sum 0x0402 -> ~ = 0xfbfd.
  EXPECT_EQ(InternetChecksum(data), 0xfbfd);
}

TEST(InternetChecksum, ZeroData) {
  const std::array<std::uint8_t, 4> data{};
  EXPECT_EQ(InternetChecksum(data), 0xffff);
}

TEST(BuildUdpFrame, FrameLength) {
  const std::vector<std::uint8_t> payload(40, 0xAB);
  const auto frame = BuildUdpFrame(MakeSpec(), payload);
  EXPECT_EQ(frame.size(), 14u + 20u + 8u + 40u);
}

TEST(BuildUdpFrame, EthernetHeaderFields) {
  const auto frame = BuildUdpFrame(MakeSpec(), {});
  // EtherType IPv4 at offset 12.
  EXPECT_EQ(frame[12], 0x08);
  EXPECT_EQ(frame[13], 0x00);
}

TEST(BuildUdpFrame, IpHeaderChecksumValidates) {
  const std::vector<std::uint8_t> payload(100, 0x55);
  const auto frame = BuildUdpFrame(MakeSpec(), payload);
  // Checksum over the IP header must be 0 when verified.
  EXPECT_EQ(InternetChecksum({frame.data() + 14, 20}), 0u);
}

TEST(BuildUdpFrame, ParsesBackExactly) {
  const std::vector<std::uint8_t> payload(129, 0x7E);
  const FrameSpec spec = MakeSpec();
  const auto frame = BuildUdpFrame(spec, payload);
  ParsedUdpFrame parsed;
  ASSERT_TRUE(ParseUdpFrame(frame, parsed));
  EXPECT_EQ(parsed.flow, spec.flow);
  EXPECT_EQ(parsed.payload_bytes, 129);
  EXPECT_TRUE(parsed.ip_checksum_ok);
  EXPECT_TRUE(parsed.udp_checksum_ok);
}

TEST(BuildUdpFrame, EmptyPayload) {
  const auto frame = BuildUdpFrame(MakeSpec(), {});
  ParsedUdpFrame parsed;
  ASSERT_TRUE(ParseUdpFrame(frame, parsed));
  EXPECT_EQ(parsed.payload_bytes, 0);
  EXPECT_TRUE(parsed.udp_checksum_ok);
}

TEST(ParseUdpFrame, RejectsTruncated) {
  const auto frame = BuildUdpFrame(MakeSpec(), std::vector<std::uint8_t>(10, 0));
  ParsedUdpFrame parsed;
  const std::span<const std::uint8_t> truncated(frame.data(), 20);
  EXPECT_FALSE(ParseUdpFrame(truncated, parsed));
}

TEST(ParseUdpFrame, RejectsNonIpv4EtherType) {
  auto frame = BuildUdpFrame(MakeSpec(), {});
  frame[12] = 0x86;  // IPv6 ethertype
  frame[13] = 0xDD;
  ParsedUdpFrame parsed;
  EXPECT_FALSE(ParseUdpFrame(frame, parsed));
}

TEST(ParseUdpFrame, RejectsNonUdpProtocol) {
  auto frame = BuildUdpFrame(MakeSpec(), {});
  frame[14 + 9] = 6;  // TCP
  ParsedUdpFrame parsed;
  EXPECT_FALSE(ParseUdpFrame(frame, parsed));
}

TEST(ParseUdpFrame, DetectsCorruptedIpChecksum) {
  auto frame = BuildUdpFrame(MakeSpec(), std::vector<std::uint8_t>(40, 1));
  frame[14 + 8] ^= 0xFF;  // flip the TTL
  ParsedUdpFrame parsed;
  ASSERT_TRUE(ParseUdpFrame(frame, parsed));
  EXPECT_FALSE(parsed.ip_checksum_ok);
}

TEST(ParseUdpFrame, DetectsCorruptedPayload) {
  auto frame = BuildUdpFrame(MakeSpec(), std::vector<std::uint8_t>(40, 1));
  frame.back() ^= 0xFF;
  ParsedUdpFrame parsed;
  ASSERT_TRUE(ParseUdpFrame(frame, parsed));
  EXPECT_FALSE(parsed.udp_checksum_ok);
}

TEST(ParseUdpFrame, PayloadSizeSweep) {
  for (std::uint16_t size : {0, 1, 39, 40, 129, 300, 500, 1400}) {
    const std::vector<std::uint8_t> payload(size, 0x42);
    const auto frame = BuildUdpFrame(MakeSpec(), payload);
    ParsedUdpFrame parsed;
    ASSERT_TRUE(ParseUdpFrame(frame, parsed)) << size;
    EXPECT_EQ(parsed.payload_bytes, size);
    EXPECT_TRUE(parsed.udp_checksum_ok) << size;
  }
}

}  // namespace
}  // namespace gametrace::net
