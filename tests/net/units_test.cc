#include "net/units.h"

#include <gtest/gtest.h>

namespace gametrace::net {
namespace {

TEST(Units, WireOverheadMatchesPaperDerivation) {
  // (64.42 GB - 37.41 GB) / 500 M packets = 54 B/packet.
  EXPECT_EQ(kWireOverheadBytes, 54u);
  EXPECT_EQ(kWireOverheadBytes, kEthernetHeaderBytes + kEthernetFcsBytes +
                                    kEthernetPreambleBytes + kIpv4HeaderBytes + kUdpHeaderBytes);
}

TEST(Units, WireBytesAddsOverhead) {
  EXPECT_EQ(WireBytes(40), 94u);
  EXPECT_EQ(WireBytes(0), 54u);
  EXPECT_EQ(WireBytes(100, 28), 128u);  // IP+UDP only
}

TEST(Units, BitsPerSecond) {
  EXPECT_DOUBLE_EQ(BitsPerSecond(1000.0, 8.0), 1000.0);
  EXPECT_DOUBLE_EQ(BitsPerSecond(125.0, 1.0), 1000.0);
  EXPECT_DOUBLE_EQ(BitsPerSecond(100.0, 0.0), 0.0);  // guarded
}

TEST(Units, RateConversions) {
  EXPECT_DOUBLE_EQ(Kbps(883000.0), 883.0);
  EXPECT_DOUBLE_EQ(Mbps(1.5e6), 1.5);
  EXPECT_DOUBLE_EQ(GigaBytes(64420000000ull), 64.42);
}

TEST(Units, SerializationDelay) {
  // 125 bytes at 100 Mbps = 10 us.
  EXPECT_NEAR(SerializationDelay(125, 100e6), 1e-5, 1e-12);
  EXPECT_DOUBLE_EQ(SerializationDelay(100, 0.0), 0.0);
}

TEST(Units, PaperHeadlineNumbersAreConsistent) {
  // Mean outbound packet (129.51 B app) on the wire ~ 183.51 B; at 361 pps
  // that is ~530 kbps - matching Table II's 542 kbps within rounding.
  const double out_bps = BitsPerSecond(360.99 * (129.51 + kWireOverheadBytes), 1.0);
  EXPECT_NEAR(Kbps(out_bps), 542.0, 15.0);
  const double in_bps = BitsPerSecond(437.12 * (39.72 + kWireOverheadBytes), 1.0);
  EXPECT_NEAR(Kbps(in_bps), 341.0, 15.0);
}

}  // namespace
}  // namespace gametrace::net
