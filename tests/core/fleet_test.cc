// Fleet engine tests: the ISSUE invariant is that the merged report is a
// pure function of (config, base_seed) - bit-identical for any worker
// thread count - and that the merge reduction equals a single-pass
// analysis semantically.
#include "core/fleet.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace_log.h"
#include "sim/rng.h"

#include "core/check.h"

namespace gametrace::core {
namespace {

FleetConfig SmallFleet(int shards, int threads) {
  FleetConfig config = FleetConfig::Scaled(shards, 180.0);
  config.threads = threads;
  config.base_seed = 1234;
  return config;
}

void ExpectHistogramsIdentical(const stats::Histogram& a, const stats::Histogram& b) {
  ASSERT_EQ(a.bin_count(), b.bin_count());
  EXPECT_DOUBLE_EQ(a.lo(), b.lo());
  EXPECT_DOUBLE_EQ(a.hi(), b.hi());
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  for (std::size_t i = 0; i < a.bin_count(); ++i) EXPECT_EQ(a.count(i), b.count(i));
}

// Bit-identical comparison of two characterization reports. Every double is
// compared with exact equality: the determinism invariant promises the same
// bits, not merely close values.
void ExpectReportsIdentical(const CharacterizationReport& a, const CharacterizationReport& b) {
  EXPECT_EQ(a.summary.total_packets(), b.summary.total_packets());
  EXPECT_EQ(a.summary.packets_in(), b.summary.packets_in());
  EXPECT_EQ(a.summary.app_bytes_total(), b.summary.app_bytes_total());
  EXPECT_EQ(a.summary.attempted_connections(), b.summary.attempted_connections());
  EXPECT_EQ(a.summary.established_connections(), b.summary.established_connections());
  EXPECT_EQ(a.summary.refused_connections(), b.summary.refused_connections());
  EXPECT_EQ(a.summary.unique_clients_attempting(), b.summary.unique_clients_attempting());
  EXPECT_EQ(a.summary.first_packet_time(), b.summary.first_packet_time());
  EXPECT_EQ(a.summary.last_packet_time(), b.summary.last_packet_time());
  EXPECT_EQ(a.summary.size_stats_in().mean(), b.summary.size_stats_in().mean());
  EXPECT_EQ(a.summary.size_stats_out().variance(), b.summary.size_stats_out().variance());

  EXPECT_EQ(a.minute_packets_in.values(), b.minute_packets_in.values());
  EXPECT_EQ(a.minute_packets_out.values(), b.minute_packets_out.values());
  EXPECT_EQ(a.minute_bytes_in.values(), b.minute_bytes_in.values());
  EXPECT_EQ(a.minute_bytes_out.values(), b.minute_bytes_out.values());
  EXPECT_EQ(a.vt_base_packets.values(), b.vt_base_packets.values());

  ASSERT_EQ(a.variance_time.points.size(), b.variance_time.points.size());
  for (std::size_t i = 0; i < a.variance_time.points.size(); ++i) {
    EXPECT_EQ(a.variance_time.points[i].normalized_variance,
              b.variance_time.points[i].normalized_variance);
  }
  EXPECT_EQ(a.hurst.small_scale, b.hurst.small_scale);
  EXPECT_EQ(a.hurst.mid_scale, b.hurst.mid_scale);
  EXPECT_EQ(a.hurst.large_scale, b.hurst.large_scale);

  ASSERT_EQ(a.sessions.size(), b.sessions.size());
  for (std::size_t i = 0; i < a.sessions.size(); ++i) {
    EXPECT_EQ(a.sessions[i].client_ip, b.sessions[i].client_ip);
    EXPECT_EQ(a.sessions[i].client_port, b.sessions[i].client_port);
    EXPECT_EQ(a.sessions[i].start, b.sessions[i].start);
    EXPECT_EQ(a.sessions[i].end, b.sessions[i].end);
    EXPECT_EQ(a.sessions[i].packets(), b.sessions[i].packets());
  }
  ExpectHistogramsIdentical(a.session_bandwidth, b.session_bandwidth);
  ExpectHistogramsIdentical(a.size_total, b.size_total);
  ExpectHistogramsIdentical(a.size_in, b.size_in);
  ExpectHistogramsIdentical(a.size_out, b.size_out);
}

// The acceptance-criteria test: same base_seed => bit-identical merged
// report at 1, 2 and 8 worker threads.
TEST(Fleet, ReportIsBitIdenticalAcrossWorkerCounts) {
  const auto one = RunFleet(SmallFleet(3, 1));
  const auto two = RunFleet(SmallFleet(3, 2));
  const auto eight = RunFleet(SmallFleet(3, 8));

  EXPECT_EQ(one.threads_used, 1);
  EXPECT_EQ(two.threads_used, 2);
  EXPECT_EQ(eight.threads_used, 3);  // capped at shard count

  ExpectReportsIdentical(one.report, two.report);
  ExpectReportsIdentical(one.report, eight.report);
  EXPECT_EQ(one.total_players.values(), two.total_players.values());
  EXPECT_EQ(one.total_players.values(), eight.total_players.values());
  EXPECT_EQ(one.total_packets, two.total_packets);
  EXPECT_EQ(one.total_packets, eight.total_packets);
}

// The observability acceptance test: per-shard metrics registries reduce in
// shard order, so the merged registry snapshot is byte-identical at 1, 2
// and 8 worker threads.
TEST(Fleet, MetricsAreBitIdenticalAcrossWorkerCounts) {
  const auto one = RunFleet(SmallFleet(3, 1));
  const auto two = RunFleet(SmallFleet(3, 2));
  const auto eight = RunFleet(SmallFleet(3, 8));

  const std::string baseline = one.metrics.ToJson();
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, two.metrics.ToJson());
  EXPECT_EQ(baseline, eight.metrics.ToJson());

  // The merged registry carries the fleet totals, not one shard's.
  EXPECT_EQ(one.metrics.counter_value("server.packets_emitted"), one.total_packets);
}

TEST(Fleet, TraceLogKeepsPerShardPids) {
  const auto result = RunFleet(SmallFleet(3, 0));
  ASSERT_GT(result.trace_log.size(), 0u);
  std::set<int> pids;
  for (const auto& event : result.trace_log.events()) pids.insert(event.pid);
  EXPECT_EQ(pids, (std::set<int>{0, 1, 2}));
  EXPECT_EQ(result.trace_log.dropped(), 0u);
}

TEST(Fleet, AmbientObsContextReceivesFleetTotals) {
  obs::MetricsRegistry ambient_metrics;
  obs::TraceLog ambient_trace;
  FleetResult result = [&] {
    const obs::ScopedObsBinding bind(
        {.metrics = &ambient_metrics, .trace = &ambient_trace, .heartbeat = false});
    return RunFleet(SmallFleet(2, 1));
  }();
  EXPECT_EQ(ambient_metrics.counter_value("server.packets_emitted"), result.total_packets);
  EXPECT_EQ(ambient_trace.size(), result.trace_log.size());
}

TEST(Fleet, ShardsGetDistinctSubstreamSeedsAndTraffic) {
  const auto result = RunFleet(SmallFleet(4, 0));
  ASSERT_EQ(result.shards.size(), 4u);
  std::set<std::uint64_t> seeds;
  for (const auto& shard : result.shards) {
    EXPECT_EQ(shard.seed, sim::SubstreamSeed(1234, static_cast<std::uint64_t>(shard.shard_id)));
    seeds.insert(shard.seed);
    EXPECT_GT(shard.stats.packets_emitted, 0u);
  }
  EXPECT_EQ(seeds.size(), 4u);

  // Shards produce distinct realizations, not copies of one server.
  EXPECT_NE(result.shards[0].stats.packets_emitted, result.shards[1].stats.packets_emitted);

  // The merged report covers the whole fleet's traffic.
  EXPECT_EQ(result.report.summary.total_packets(), result.total_packets);
}

TEST(Fleet, NamespacingKeepsShardClientsDisjoint) {
  const auto result = RunFleet(SmallFleet(3, 0));
  std::uint64_t per_shard_unique = 0;
  for (const auto& shard : result.shards) per_shard_unique += shard.stats.unique_attempting;
  // With disjoint per-shard IP namespaces the union is the exact sum.
  EXPECT_EQ(result.report.summary.unique_clients_attempting(), per_shard_unique);

  // Every session's address belongs to its shard's namespace: 10/8 .. 12/8.
  for (const auto& session : result.report.sessions) {
    const auto top = session.client_ip.value() >> 24;
    EXPECT_GE(top, 10u);
    EXPECT_LE(top, 12u);
  }
}

TEST(Fleet, MergeReportsEqualsAccumulatorMerge) {
  const FleetConfig config = SmallFleet(2, 1);
  const auto fleet = RunFleet(config);

  // Re-run each shard standalone, finish separately, merge the reports.
  std::vector<CharacterizationReport> reports;
  for (int shard = 0; shard < config.shards; ++shard) {
    game::GameConfig server = config.server;
    server.seed = sim::SubstreamSeed(config.base_seed, static_cast<std::uint64_t>(shard));
    Characterizer characterizer(config.analysis);
    trace::ShardNamespaceSink ns(static_cast<std::uint32_t>(shard), characterizer);
    (void)RunServerTrace(server, ns);
    reports.push_back(characterizer.Finish(server.trace_duration));
  }
  auto merged = MergeReports(std::move(reports));

  EXPECT_EQ(merged.summary.total_packets(), fleet.report.summary.total_packets());
  EXPECT_EQ(merged.summary.unique_clients_attempting(),
            fleet.report.summary.unique_clients_attempting());
  EXPECT_EQ(merged.minute_packets_in.values(), fleet.report.minute_packets_in.values());
  EXPECT_EQ(merged.vt_base_packets.values(), fleet.report.vt_base_packets.values());
  EXPECT_EQ(merged.sessions.size(), fleet.report.sessions.size());
  ExpectHistogramsIdentical(merged.size_total, fleet.report.size_total);
  ExpectHistogramsIdentical(merged.session_bandwidth, fleet.report.session_bandwidth);
  EXPECT_EQ(merged.hurst.mid_scale, fleet.report.hurst.mid_scale);
}

TEST(Fleet, Validation) {
  FleetConfig bad = SmallFleet(0, 1);
  EXPECT_THROW((void)RunFleet(bad), gametrace::ContractViolation);
  // The packed namespace admits game::MaxDisjointServers(population)
  // servers - 251,904 at the default 9000-identity pool - and rejects the
  // first id beyond it.
  bad.shards = 300000;
  EXPECT_THROW((void)RunFleet(bad), gametrace::ContractViolation);
  EXPECT_THROW((void)MergeReports({}), gametrace::ContractViolation);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(64);
  ParallelFor(64, 4, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  int serial = 0;
  ParallelFor(5, 1, [&](int) { ++serial; });
  EXPECT_EQ(serial, 5);

  ParallelFor(0, 4, [](int) { FAIL() << "no work expected"; });
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(16, 4,
                  [](int i) {
                    if (i == 7) throw std::runtime_error("shard failure");
                  }),
      std::runtime_error);
}

TEST(SubstreamSeed, DeterministicAndPositionIndependent) {
  EXPECT_EQ(sim::SubstreamSeed(42, 0), sim::SubstreamSeed(42, 0));
  EXPECT_NE(sim::SubstreamSeed(42, 0), sim::SubstreamSeed(42, 1));
  EXPECT_NE(sim::SubstreamSeed(42, 0), sim::SubstreamSeed(43, 0));
  // Distinct substreams produce distinct generator output.
  sim::Rng a = sim::Rng::ForSubstream(7, 0);
  sim::Rng b = sim::Rng::ForSubstream(7, 1);
  EXPECT_NE(a(), b());
}

}  // namespace
}  // namespace gametrace::core
