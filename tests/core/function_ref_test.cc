// Unit tests for core::FunctionRef (src/core/function_ref.h): the
// two-word non-owning callable reference on the ParallelFor / fleet
// dispatch path. Covers every construction shape the scheduler hands it
// - mutable and const lambdas, capturing lambdas calling member
// functions, free and static member functions - plus the no-empty-state
// contract on the function-pointer overload.
#include "core/function_ref.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/check.h"

namespace gametrace::core {
namespace {

using VoidIntRef = FunctionRef<void(int)>;
using IntIntRef = FunctionRef<int(int)>;

int Twice(int x) { return 2 * x; }
int Thrice(int x) { return 3 * x; }

int Apply(IntIntRef f, int x) { return f(x); }

// --- lambdas --------------------------------------------------------------

TEST(FunctionRef, InvokesCapturingLambda) {
  int total = 0;
  std::vector<int> values{1, 2, 3};
  // Named callable on purpose: FunctionRef is non-owning, so binding a
  // *temporary* lambda would dangle at the call (the documented
  // must-outlive-every-invocation contract).
  auto add_scaled = [&](int scale) {
    for (int v : values) total += scale * v;
  };
  VoidIntRef add = add_scaled;
  add(10);
  EXPECT_EQ(total, 60);
}

TEST(FunctionRef, ConstCallableThroughConstReference) {
  const auto square = [](int x) { return x * x; };
  const IntIntRef ref = square;  // const callable, const FunctionRef
  EXPECT_EQ(ref(7), 49);
}

TEST(FunctionRef, MutableLambdaStateAdvancesAcrossCalls) {
  int calls = 0;
  auto counter = [&calls](int step) mutable { return calls += step; };
  IntIntRef ref = counter;
  EXPECT_EQ(ref(2), 2);
  EXPECT_EQ(ref(3), 5);
  EXPECT_EQ(calls, 5);
}

TEST(FunctionRef, LambdaCallingMemberFunction) {
  struct Accumulator {
    std::string log;
    void Append(int unit) { log += "u" + std::to_string(unit) + ";"; }
  };
  Accumulator acc;
  auto record = [&acc](int unit) { acc.Append(unit); };
  VoidIntRef ref = record;
  ref(4);
  ref(11);
  EXPECT_EQ(acc.log, "u4;u11;");
}

TEST(FunctionRef, ImplicitConversionAtCallSite) {
  // The scheduler passes lambdas straight into a FunctionRef parameter.
  EXPECT_EQ(Apply([](int x) { return x + 1; }, 41), 42);
}

TEST(FunctionRef, ReferenceAndValueArgumentsForwarded) {
  auto append_int = [](std::string& out, int v) { out += std::to_string(v); };
  FunctionRef<void(std::string&, int)> append = append_int;
  std::string out = "n=";
  append(out, 17);
  EXPECT_EQ(out, "n=17");
}

// --- free / static member functions ---------------------------------------

TEST(FunctionRef, InvokesFreeFunction) {
  IntIntRef ref = Twice;  // decays to function pointer
  EXPECT_EQ(ref(21), 42);
}

TEST(FunctionRef, ReseatsAcrossFreeFunctions) {
  IntIntRef ref = Twice;
  EXPECT_EQ(ref(5), 10);
  ref = Thrice;
  EXPECT_EQ(ref(5), 15);
}

TEST(FunctionRef, InvokesStaticMemberFunction) {
  struct Ops {
    static int Negate(int x) { return -x; }
  };
  IntIntRef ref = Ops::Negate;
  EXPECT_EQ(ref(8), -8);
}

// --- contract: no empty state ---------------------------------------------

TEST(FunctionRef, NullFunctionPointerViolatesContract) {
  int (*fn)(int) = nullptr;
  EXPECT_THROW(IntIntRef ref = fn, ContractViolation);
}

TEST(FunctionRef, IsTwoWordsAndTriviallyCopyable) {
  static_assert(sizeof(IntIntRef) == 2 * sizeof(void*));
  static_assert(std::is_trivially_copyable_v<IntIntRef>);
  IntIntRef a = Twice;
  IntIntRef b = a;  // copy refers to the same callable
  EXPECT_EQ(b(3), 6);
}

}  // namespace
}  // namespace gametrace::core
