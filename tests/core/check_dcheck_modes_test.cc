// GT_DCHECK elision semantics, pinned independently of build type.
//
// GAMETRACE_ENABLE_DCHECKS is a per-translation-unit switch; the two
// #include blocks below simulate a Release TU (forced 0) and a sanitizer
// TU (forced 1) inside one test binary, whatever CMAKE_BUILD_TYPE is.
// This is the test that guarantees Release hot paths pay nothing for the
// per-element contracts.
#include <gtest/gtest.h>

// Simulated Release TU: DCHECKs must vanish without evaluating operands.
// (#undef first: the sanitizer presets define the macro on the command
// line for every TU, and this one must override that.)
#undef GAMETRACE_ENABLE_DCHECKS
#define GAMETRACE_ENABLE_DCHECKS 0
#include "core/check.h"

namespace gametrace {
namespace {

int Counted(int* counter, int value) {
  ++*counter;
  return value;
}

TEST(GtDcheckForcedOff, OperandsNeverEvaluated) {
  int evaluations = 0;
  GT_DCHECK(Counted(&evaluations, 0) == 1);
  GT_DCHECK_EQ(Counted(&evaluations, 1), 2);
  GT_DCHECK_NE(Counted(&evaluations, 1), 1);
  GT_DCHECK_LT(Counted(&evaluations, 2), 1);
  GT_DCHECK_LE(Counted(&evaluations, 2), 1);
  GT_DCHECK_GT(Counted(&evaluations, 1), 2);
  GT_DCHECK_GE(Counted(&evaluations, 1), 2);
  EXPECT_EQ(evaluations, 0);
}

TEST(GtDcheckForcedOff, FailingConditionIsANoOp) {
  GT_DCHECK(false) << "never rendered";
  GT_DCHECK_EQ(1, 2) << "never rendered";
}

TEST(GtDcheckForcedOff, GtCheckStillFires) {
  // Only the D-variants are elided; hard contracts stay on in Release.
  EXPECT_THROW(GT_CHECK(false), ContractViolation);
  EXPECT_THROW(GT_CHECK_EQ(1, 2), ContractViolation);
}

}  // namespace
}  // namespace gametrace
