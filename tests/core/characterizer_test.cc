#include "core/characterizer.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "game/config.h"

namespace gametrace::core {
namespace {

// One shared 15-minute run for the expensive assertions.
class CharacterizerRun : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto cfg = game::GameConfig::ScaledDefaults(900.0);
    auto characterizer = std::make_unique<Characterizer>();
    RunServerTrace(cfg, *characterizer);
    report_ = new CharacterizationReport(characterizer->Finish(900.0));
  }
  static void TearDownTestSuite() {
    delete report_;
    report_ = nullptr;
  }

  static CharacterizationReport* report_;
};

CharacterizationReport* CharacterizerRun::report_ = nullptr;

TEST_F(CharacterizerRun, SummaryPopulated) {
  EXPECT_GT(report_->summary.total_packets(), 100000u);
  EXPECT_DOUBLE_EQ(report_->summary.duration(), 900.0);
  EXPECT_GT(report_->summary.mean_packet_load(), 300.0);
}

TEST_F(CharacterizerRun, MinuteSeriesCoverWindow) {
  // 15 minutes; the final tick may emit epsilon past the horizon and open
  // one extra bin.
  EXPECT_GE(report_->minute_packets_in.size(), 15u);
  EXPECT_LE(report_->minute_packets_in.size(), 16u);
  EXPECT_EQ(report_->minute_bytes_out.size(), report_->minute_packets_in.size());
  for (std::size_t i = 0; i < 15; ++i) EXPECT_GT(report_->minute_packets_in[i], 0.0);
}

TEST_F(CharacterizerRun, VtBaseSeriesAtTenMilliseconds) {
  EXPECT_DOUBLE_EQ(report_->vt_base_packets.interval(), 0.010);
  EXPECT_GE(report_->vt_base_packets.size(), 90000u);
  EXPECT_LE(report_->vt_base_packets.size(), 90010u);  // final-tick spill
}

TEST_F(CharacterizerRun, HurstRegionsMatchPaperShape) {
  // Figure 5's three regions: anti-persistent below 50 ms, high variance
  // in the middle, (the >30 min region needs a longer trace).
  EXPECT_LT(report_->hurst.small_scale, 0.45);
  EXPECT_GT(report_->hurst.mid_scale, 0.7);
}

TEST_F(CharacterizerRun, SizeHistogramsMatchPaperShape) {
  // Figure 12: inbound mode at ~40 B, outbound spread with a higher mean.
  const auto in_mode = report_->size_in.bin_center(report_->size_in.ModeBin());
  EXPECT_NEAR(in_mode, 40.0, 3.0);
  EXPECT_GT(report_->size_out.ApproxMean(), 2.8 * report_->size_in.ApproxMean());
  // Figure 13: almost all inbound below 60 B.
  const auto cdf_in = report_->size_in.Cdf();
  EXPECT_GT(cdf_in[60], 0.99);
  // The paper truncates at 500 B: nothing (or nearly nothing) above.
  EXPECT_LT(static_cast<double>(report_->size_total.overflow()),
            0.001 * static_cast<double>(report_->size_total.total()));
}

TEST_F(CharacterizerRun, SessionsReconstructed) {
  EXPECT_GT(report_->sessions.size(), 10u);
  EXPECT_GT(report_->session_bandwidth.total(), 0u);
}

TEST_F(CharacterizerRun, SessionBandwidthsPegAtModemRates) {
  // Figure 11: the bulk of session bandwidths at or below ~56 kbps.
  std::uint64_t below_56k = 0;
  std::uint64_t counted = 0;
  for (const auto& session : report_->sessions) {
    if (session.duration() <= 30.0) continue;
    ++counted;
    if (session.mean_bandwidth_bps() <= 56000.0) ++below_56k;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(static_cast<double>(below_56k) / static_cast<double>(counted), 0.9);
}

TEST(Characterizer, EmptyFinishIsSafe) {
  Characterizer characterizer;
  const auto report = characterizer.Finish();
  EXPECT_EQ(report.summary.total_packets(), 0u);
  EXPECT_TRUE(report.sessions.empty());
  EXPECT_TRUE(report.variance_time.points.empty());
}

TEST(Characterizer, VtWindowBoundsMemory) {
  CharacterizationOptions options;
  options.vt_window = 10.0;
  Characterizer characterizer(options);
  net::PacketRecord r;
  r.app_bytes = 40;
  for (int i = 0; i < 10000; ++i) {
    r.timestamp = i * 0.01;  // up to 100 s
    characterizer.OnPacket(r);
  }
  const auto report = characterizer.Finish(100.0);
  // Base series capped at the 10 s window, not the 100 s trace.
  EXPECT_EQ(report.vt_base_packets.size(), 1000u);
  // But the summary still covers everything.
  EXPECT_EQ(report.summary.total_packets(), 10000u);
}

TEST(Characterizer, CustomOverheadPropagates) {
  CharacterizationOptions options;
  options.wire_overhead = 0;
  Characterizer characterizer(options);
  net::PacketRecord r;
  r.timestamp = 0.5;
  r.app_bytes = 100;
  characterizer.OnPacket(r);
  const auto report = characterizer.Finish(1.0);
  EXPECT_EQ(report.summary.wire_bytes_total(), 100u);
  EXPECT_DOUBLE_EQ(report.minute_bytes_in[0], 100.0);
}

}  // namespace
}  // namespace gametrace::core
