#include "core/provisioning.h"

#include <vector>

#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "game/config.h"
#include "trace/summary.h"

#include "core/check.h"

namespace gametrace::core {
namespace {

TEST(PerPlayerDemand, PaperCalibratedTotals) {
  const PerPlayerDemand d = PerPlayerDemand::PaperCalibrated();
  // ~44 pps and ~49 kbps (wire) per player; 22 players saturate the
  // mean load of Table II.
  EXPECT_NEAR(d.pps_total() * 18.05, 798.1, 1.0);
  EXPECT_NEAR(d.bps_total() * 18.05, 883e3, 1e3);
}

TEST(FitLoadVsPlayers, RecoversExactLinearRelation) {
  stats::TimeSeries players(0.0, 60.0);
  stats::TimeSeries load(0.0, 60.0);
  for (int i = 0; i < 100; ++i) {
    const double n = 10.0 + (i % 12);
    players.Set(i * 60.0, n);
    load.Set(i * 60.0, n * 24.3 * 60.0);  // packets per minute bin
  }
  const auto fit = FitLoadVsPlayers(players, load);
  EXPECT_NEAR(fit.slope, 24.3, 1e-9);
  EXPECT_NEAR(fit.intercept, 0.0, 1e-6);
  EXPECT_GT(fit.r_squared, 0.999);
}

TEST(FitLoadVsPlayers, SkipsIdleBins) {
  stats::TimeSeries players(0.0, 60.0);
  stats::TimeSeries load(0.0, 60.0);
  for (int i = 0; i < 50; ++i) {
    players.Set(i * 60.0, 10.0 + (i % 5));
    load.Set(i * 60.0, i % 10 == 0 ? 0.0 : (10.0 + (i % 5)) * 20.0 * 60.0);
  }
  const auto fit = FitLoadVsPlayers(players, load);
  EXPECT_NEAR(fit.slope, 20.0, 1e-9);  // zero bins (map changes) ignored
}

TEST(FitLoadVsPlayers, MisalignedSeriesRejected) {
  stats::TimeSeries players(0.0, 60.0);
  stats::TimeSeries load(0.0, 30.0);
  EXPECT_THROW((void)FitLoadVsPlayers(players, load), gametrace::ContractViolation);
}

TEST(Provisioning, TrafficIsLinearInPlayers) {
  // The paper's headline "good news": aggregate load is effectively linear
  // in the number of active players. Run the same server at three slot
  // caps and fit load against mean occupancy.
  std::vector<double> players;
  std::vector<double> pps_in;
  std::vector<double> bps_total;
  for (int cap : {6, 12, 20}) {
    auto cfg = game::GameConfig::ScaledDefaults(400.0);
    cfg.max_players = cap;
    cfg.sessions.initial_players = cap - 1;
    trace::TraceSummary summary;
    const auto run = RunServerTrace(cfg, summary);
    summary.set_duration_override(400.0);
    players.push_back(run.players.Mean());
    pps_in.push_back(summary.mean_packet_load_in());
    bps_total.push_back(summary.mean_bandwidth_bps());
  }
  const auto fit = stats::FitLine(players, pps_in);
  EXPECT_NEAR(fit.slope, 24.3, 3.0);  // ~one client update stream per player
  EXPECT_GT(fit.r_squared, 0.98);
  const auto bw_fit = stats::FitLine(players, bps_total);
  EXPECT_NEAR(bw_fit.slope / 1e3, 46.0, 8.0);  // ~40 kbps + headers per player
  EXPECT_GT(bw_fit.r_squared, 0.98);
}

TEST(Provisioning, FitDemandFromSingleBusyTrace) {
  // On a single near-capacity trace the occupancy range is narrow, so the
  // regression is noisy - the slopes must still land in physical ranges.
  auto cfg = game::GameConfig::ScaledDefaults(1200.0);
  Characterizer characterizer;
  const auto run = RunServerTrace(cfg, characterizer);
  const auto report = characterizer.Finish(1200.0);
  const PerPlayerDemand demand =
      FitDemand(run.players, report.minute_packets_in, report.minute_packets_out,
                report.minute_bytes_in, report.minute_bytes_out);
  EXPECT_GT(demand.pps_in, 0.0);
  EXPECT_LT(demand.pps_in, 60.0);
  EXPECT_GT(demand.pps_out, 0.0);
  EXPECT_LT(demand.pps_out, 50.0);
}

TEST(DemandFor, ScalesWithPlayers) {
  const PerPlayerDemand d = PerPlayerDemand::PaperCalibrated();
  const ServerDemand none = DemandFor(d, 0);
  EXPECT_DOUBLE_EQ(none.pps, 0.0);
  const ServerDemand full = DemandFor(d, 22);
  EXPECT_NEAR(full.pps, 973.0, 5.0);
  EXPECT_NEAR(full.burst_packets, 22.0, 0.5);  // one snapshot per player per tick
  EXPECT_GT(full.burst_span_seconds, 0.0);
  EXPECT_LT(full.burst_span_seconds, 0.001);  // the burst is sub-millisecond
  EXPECT_THROW((void)DemandFor(d, -1), gametrace::ContractViolation);
}

TEST(CapacityPlanner, BurstLossFraction) {
  CapacityPlanner::Device device{.capacity_pps = 1250.0, .buffer_packets = 10};
  EXPECT_DOUBLE_EQ(CapacityPlanner::BurstLossFraction(0.0, device), 0.0);
  EXPECT_DOUBLE_EQ(CapacityPlanner::BurstLossFraction(11.0, device), 0.0);
  EXPECT_NEAR(CapacityPlanner::BurstLossFraction(22.0, device), 1.0 / 2.0, 1e-9);
  EXPECT_NEAR(CapacityPlanner::BurstLossFraction(44.0, device), 33.0 / 44.0, 1e-9);
}

TEST(CapacityPlanner, OneGameServerOverwhelmsTheBarricade) {
  // The paper's NAT result in planner form: a full 22-player server behind
  // a 1250 pps / shallow-buffer device is already over the line.
  const ServerDemand demand = DemandFor(PerPlayerDemand::PaperCalibrated(), 22);
  CapacityPlanner::Device barricade{.capacity_pps = 1250.0, .buffer_packets = 16};
  EXPECT_EQ(CapacityPlanner::MaxServers(demand, barricade), 0);
}

TEST(CapacityPlanner, CarrierRouterTakesMany) {
  const ServerDemand demand = DemandFor(PerPlayerDemand::PaperCalibrated(), 22);
  CapacityPlanner::Device big{.capacity_pps = 1e6, .buffer_packets = 4096};
  const int servers = CapacityPlanner::MaxServers(demand, big);
  EXPECT_GT(servers, 100);
  // Utilisation bound: servers * 973 pps <= 85% of 1M pps.
  EXPECT_LE(servers * demand.pps, 0.85 * 1e6);
}

TEST(CapacityPlanner, BurstTailDelay) {
  CapacityPlanner::Device device{.capacity_pps = 1250.0, .buffer_packets = 32};
  // A 19-packet burst: the last packet waits 18 service times ~ 14.4 ms -
  // "more than a quarter of the maximum tolerable latency".
  const double delay = CapacityPlanner::BurstTailDelay(19.0, device);
  EXPECT_NEAR(delay, 18.0 / 1250.0, 1e-9);
  EXPECT_GT(delay, 0.25 * 0.050);
  EXPECT_DOUBLE_EQ(CapacityPlanner::BurstTailDelay(0.0, device), 0.0);
}

TEST(CapacityPlanner, ZeroDemandZeroServers) {
  CapacityPlanner::Device device;
  EXPECT_EQ(CapacityPlanner::MaxServers(ServerDemand{}, device), 0);
}

}  // namespace
}  // namespace gametrace::core
