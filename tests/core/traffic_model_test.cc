#include "core/traffic_model.h"

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "game/config.h"
#include "trace/summary.h"

#include "core/check.h"

namespace gametrace::core {
namespace {

net::PacketRecord MakeRecord(double t, net::Direction dir, std::uint16_t bytes) {
  net::PacketRecord r;
  r.timestamp = t;
  r.app_bytes = bytes;
  r.direction = dir;
  return r;
}

TEST(TrafficModelFitter, RequiresPacketsInBothDirections) {
  TrafficModelFitter fitter;
  EXPECT_THROW((void)fitter.Fit(), gametrace::ContractViolation);
  fitter.OnPacket(MakeRecord(0.0, net::Direction::kClientToServer, 40));
  fitter.OnPacket(MakeRecord(0.1, net::Direction::kClientToServer, 40));
  fitter.OnPacket(MakeRecord(0.2, net::Direction::kClientToServer, 40));
  EXPECT_THROW((void)fitter.Fit(), gametrace::ContractViolation);
}

TEST(TrafficModelFitter, FitsDeterministicStream) {
  TrafficModelFitter fitter;
  for (int i = 0; i < 101; ++i) {
    fitter.OnPacket(MakeRecord(i * 0.01, net::Direction::kClientToServer, 40));
    fitter.OnPacket(MakeRecord(i * 0.02, net::Direction::kServerToClient, 130));
  }
  const TrafficModel model = fitter.Fit();
  EXPECT_NEAR(model.inbound.interarrival_mean, 0.01, 1e-9);
  EXPECT_NEAR(model.inbound.packet_rate, 100.0, 1e-6);
  EXPECT_NEAR(model.inbound.interarrival_cv, 0.0, 1e-9);
  EXPECT_NEAR(model.outbound.interarrival_mean, 0.02, 1e-9);
  EXPECT_NEAR(model.inbound.sizes.Mean(), 40.5, 1.0);   // bin centers
  EXPECT_NEAR(model.outbound.sizes.Mean(), 130.5, 1.0);
}

TEST(TrafficModelGenerator, Validation) {
  TrafficModel model;
  EXPECT_THROW(TrafficModelGenerator(model, 1), gametrace::ContractViolation);
}

TEST(TrafficModelGenerator, RegeneratesFittedRates) {
  // Fit a synthetic stream, regenerate, and check rate + mean size agree.
  TrafficModelFitter fitter;
  sim::Rng rng(3);
  double t_in = 0.0;
  double t_out = 0.0;
  while (t_in < 100.0) {
    fitter.OnPacket(MakeRecord(t_in, net::Direction::kClientToServer,
                               static_cast<std::uint16_t>(35 + rng.NextBelow(10))));
    t_in += 0.002 + 0.002 * rng.NextDouble();
  }
  while (t_out < 100.0) {
    fitter.OnPacket(MakeRecord(t_out, net::Direction::kServerToClient,
                               static_cast<std::uint16_t>(100 + rng.NextBelow(60))));
    t_out += 0.0025 + 0.001 * rng.NextDouble();
  }
  const TrafficModel model = fitter.Fit();

  TrafficModelGenerator generator(model, 42);
  trace::TraceSummary summary(0);
  const auto emitted = generator.Generate(100.0, summary);
  EXPECT_GT(emitted, 10000u);
  summary.set_duration_override(100.0);
  EXPECT_NEAR(summary.mean_packet_load_in(), model.inbound.packet_rate,
              model.inbound.packet_rate * 0.05);
  EXPECT_NEAR(summary.mean_packet_load_out(), model.outbound.packet_rate,
              model.outbound.packet_rate * 0.05);
  EXPECT_NEAR(summary.mean_packet_size_in(), 40.0, 2.0);
  EXPECT_NEAR(summary.mean_packet_size_out(), 130.0, 4.0);
}

TEST(TrafficModelGenerator, RespectsDuration) {
  TrafficModelFitter fitter;
  for (int i = 0; i < 50; ++i) {
    fitter.OnPacket(MakeRecord(i * 0.1, net::Direction::kClientToServer, 40));
    fitter.OnPacket(MakeRecord(i * 0.1, net::Direction::kServerToClient, 130));
  }
  TrafficModelGenerator generator(fitter.Fit(), 7);
  trace::VectorSink sink;
  generator.Generate(10.0, sink);
  for (const auto& record : sink.records()) {
    EXPECT_GE(record.timestamp, 0.0);
    EXPECT_LT(record.timestamp, 10.0);
  }
}

TEST(TrafficModel, EndToEndFromGameTrace) {
  // Fit a model on 3 minutes of simulated game traffic; the fitted rates
  // must reflect the workload (~24 pps/client in, 20 pps/client out at
  // ~18 players).
  auto cfg = game::GameConfig::ScaledDefaults(180.0);
  TrafficModelFitter fitter;
  RunServerTrace(cfg, fitter);
  const TrafficModel model = fitter.Fit();
  EXPECT_GT(model.inbound.packet_rate, 250.0);
  EXPECT_LT(model.inbound.packet_rate, 650.0);
  EXPECT_GT(model.outbound.packet_rate, 200.0);
  EXPECT_GT(model.inbound.interarrival_cv, 0.5);  // aggregate arrivals are bursty
  EXPECT_NEAR(model.inbound.sizes.Mean(), 40.0, 3.0);
}

}  // namespace
}  // namespace gametrace::core
