// Fleet-level flight telemetry: the merged snapshot stream and the alert
// sequence evaluated over it are byte-identical at any worker count, and
// bounded-buffer trace loss surfaces in the merged registry.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/fleet.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/prom.h"
#include "obs/trace_log.h"
#include "obs/watchdog.h"

#include "../obs/json_reader.h"

namespace gametrace::core {
namespace {

using gametrace::testing::JsonReader;

FleetConfig SmallFleet(int threads) {
  FleetConfig config = FleetConfig::Scaled(7, 180.0);
  config.threads = threads;
  config.base_seed = 4242;
  // Deliberately uneven shards: completion order under threads is far from
  // submission order, which is exactly what the streamed ordered reduction
  // must hide.
  config.configure_shard = [](int shard, game::GameConfig& server) {
    server.max_players = 6 + (shard * 5) % 16;
    server.sessions.initial_players = server.max_players - 2;
  };
  return config;
}

struct ObservedFleet {
  std::string flight_jsonl;   // ambient recorder after the merge
  std::string merged_jsonl;   // FleetResult::recorder
  std::string alerts_jsonl;   // ambient watchdog over the merged stream
  std::string prom_text;      // Prometheus exposition of the merged registry
  std::string metrics_json;   // merged registry snapshot (sketches, rings, ...)
  std::uint64_t total_packets = 0;
};

ObservedFleet RunObserved(int threads) {
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  obs::FlightRecorder recorder(obs::FlightRecorder::Options{.sample_period_seconds = 60.0});
  obs::WatchdogEngine watchdog(obs::WatchdogEngine::BuiltinRules());

  ObservedFleet observed;
  {
    const obs::ScopedObsBinding bind({.metrics = &metrics,
                                      .trace = &trace,
                                      .recorder = &recorder,
                                      .watchdog = &watchdog,
                                      .heartbeat = false});
    const FleetResult result = RunFleet(SmallFleet(threads));
    observed.merged_jsonl = result.recorder.ToJsonl();
    observed.prom_text = obs::ToPrometheusText(result.metrics);
    observed.metrics_json = result.metrics.ToJson();
    observed.total_packets = result.total_packets;
  }
  observed.flight_jsonl = recorder.ToJsonl();
  observed.alerts_jsonl = watchdog.ToJsonl();
  return observed;
}

// The acceptance-criteria test: the exported snapshot stream is a pure
// function of (config, base_seed), bit-for-bit, at 1, 3 and 7 workers -
// with uneven shards, so units genuinely complete out of order.
TEST(FlightFleet, SnapshotStreamIsByteIdenticalAcrossWorkerCounts) {
  const ObservedFleet one = RunObserved(1);
  const ObservedFleet three = RunObserved(3);
  const ObservedFleet seven = RunObserved(7);

  ASSERT_FALSE(one.flight_jsonl.empty());
  EXPECT_EQ(one.flight_jsonl, three.flight_jsonl);
  EXPECT_EQ(one.flight_jsonl, seven.flight_jsonl);
  // The ambient recorder adopted the merged stream wholesale.
  EXPECT_EQ(one.flight_jsonl, one.merged_jsonl);
  EXPECT_EQ(three.flight_jsonl, three.merged_jsonl);

  // A 180 s fleet on a 60 s grid holds exactly three snapshots, and every
  // line parses with the merged (fleet-total) counters inside.
  std::istringstream lines(one.flight_jsonl);
  std::string line;
  std::vector<double> timestamps;
  double previous_packets = -1.0;
  while (std::getline(lines, line)) {
    const auto doc = JsonReader::Parse(line);
    timestamps.push_back(doc.at("t").number);
    const double packets = doc.at("metrics").at("counters").at("server.packets_emitted").number;
    EXPECT_GE(packets, previous_packets) << "snapshot counters must be monotone";
    previous_packets = packets;
  }
  EXPECT_EQ(timestamps, (std::vector<double>{60.0, 120.0, 180.0}));
  EXPECT_GT(previous_packets, 0.0);
  EXPECT_LE(previous_packets, static_cast<double>(one.total_packets));
}

// The sketch quantiles and ring/Hurst gauges are DERIVED at exposition
// time from merged state, so the bit-identity guarantee extends to the
// Prometheus text and the registry JSON wholesale - at any worker count.
TEST(FlightFleet, PrometheusAndRegistryJsonAreByteIdenticalAcrossWorkerCounts) {
  const ObservedFleet one = RunObserved(1);
  const ObservedFleet two = RunObserved(2);
  const ObservedFleet eight = RunObserved(8);

  ASSERT_FALSE(one.prom_text.empty());
  EXPECT_EQ(one.prom_text, two.prom_text);
  EXPECT_EQ(one.prom_text, eight.prom_text);
  ASSERT_FALSE(one.metrics_json.empty());
  EXPECT_EQ(one.metrics_json, two.metrics_json);
  EXPECT_EQ(one.metrics_json, eight.metrics_json);

  // The new instruments actually made it into the exposition: the
  // per-client bandwidth summary and the load ring with its Hurst gauge.
  EXPECT_NE(one.prom_text.find("gametrace_client_bandwidth_kbps{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(one.prom_text.find("gametrace_server_load_pps_tier_mean"), std::string::npos);
  EXPECT_NE(one.prom_text.find("gametrace_server_load_pps_hurst"), std::string::npos);
}

TEST(FlightFleet, AlertSequenceIsIdenticalAcrossWorkerCounts) {
  const ObservedFleet one = RunObserved(1);
  const ObservedFleet three = RunObserved(3);
  const ObservedFleet seven = RunObserved(7);

  EXPECT_EQ(one.alerts_jsonl, three.alerts_jsonl);
  EXPECT_EQ(one.alerts_jsonl, seven.alerts_jsonl);

  // Whatever the sequence is, every line must be a well-formed alert.
  std::istringstream lines(one.alerts_jsonl);
  std::string line;
  while (std::getline(lines, line)) {
    const auto doc = JsonReader::Parse(line);
    EXPECT_TRUE(doc.has("t"));
    EXPECT_TRUE(doc.has("rule"));
    EXPECT_TRUE(doc.has("value"));
    EXPECT_TRUE(doc.has("threshold"));
  }
}

TEST(FlightFleet, ShardsWithoutAnAmbientRecorderSampleNothing) {
  const FleetResult result = RunFleet(SmallFleet(2));
  EXPECT_TRUE(result.recorder.empty());
  EXPECT_EQ(result.recorder.total_samples(), 0u);
}

TEST(FlightFleet, TraceDropTotalsSurfaceInTheMergedRegistry) {
  FleetConfig config = SmallFleet(2);
  config.trace_max_events = 16;  // force bounded-buffer loss in every shard
  const FleetResult result = RunFleet(config);

  EXPECT_GT(result.trace_log.dropped(), 0u);
  EXPECT_EQ(result.metrics.counter_value("obs.trace.dropped_events"),
            result.trace_log.dropped());

  // An unconstrained run reports an explicit zero, not a missing counter.
  const FleetResult roomy = RunFleet(SmallFleet(2));
  EXPECT_EQ(roomy.trace_log.dropped(), 0u);
  EXPECT_EQ(roomy.metrics.counter_value("obs.trace.dropped_events"), 0u);
  EXPECT_NE(roomy.metrics.ToJson().find("obs.trace.dropped_events"), std::string::npos);
}

}  // namespace
}  // namespace gametrace::core
