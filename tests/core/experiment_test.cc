#include "core/experiment.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace gametrace::core {
namespace {

class ScaleEnvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ::unsetenv("GAMETRACE_FULL");
    ::unsetenv("GAMETRACE_DURATION");
  }
};

TEST_F(ScaleEnvTest, DefaultWhenUnset) {
  const auto scale = ExperimentScale::FromEnv(3600.0);
  EXPECT_DOUBLE_EQ(scale.duration, 3600.0);
  EXPECT_FALSE(scale.full);
}

TEST_F(ScaleEnvTest, FullFlag) {
  ::setenv("GAMETRACE_FULL", "1", 1);
  const auto scale = ExperimentScale::FromEnv(3600.0);
  EXPECT_TRUE(scale.full);
  EXPECT_DOUBLE_EQ(scale.duration, 626477.0);
}

TEST_F(ScaleEnvTest, FullFlagZeroMeansOff) {
  ::setenv("GAMETRACE_FULL", "0", 1);
  const auto scale = ExperimentScale::FromEnv(3600.0);
  EXPECT_FALSE(scale.full);
  EXPECT_DOUBLE_EQ(scale.duration, 3600.0);
}

TEST_F(ScaleEnvTest, ExplicitDurationWins) {
  ::setenv("GAMETRACE_FULL", "1", 1);
  ::setenv("GAMETRACE_DURATION", "120.5", 1);
  const auto scale = ExperimentScale::FromEnv(3600.0);
  EXPECT_DOUBLE_EQ(scale.duration, 120.5);
  EXPECT_FALSE(scale.full);
}

TEST_F(ScaleEnvTest, GarbageDurationIgnored) {
  ::setenv("GAMETRACE_DURATION", "notanumber", 1);
  const auto scale = ExperimentScale::FromEnv(3600.0);
  EXPECT_DOUBLE_EQ(scale.duration, 3600.0);
}

TEST(RunServerTrace, MultiSinkFanout) {
  auto cfg = game::GameConfig::ScaledDefaults(120.0);
  trace::CountingSink a;
  trace::CountingSink b;
  trace::CaptureSink* sinks[] = {&a, &b};
  const auto result = RunServerTrace(cfg, sinks);
  EXPECT_EQ(a.packets(), b.packets());
  EXPECT_GT(a.packets(), 10000u);
  EXPECT_EQ(a.packets(), result.stats.packets_emitted);
  EXPECT_GE(result.players.size(), 2u);
}

TEST(NatExperiment, DefaultsAreThirtyMinuteSingleMap) {
  const auto cfg = NatExperimentConfig::Defaults();
  EXPECT_DOUBLE_EQ(cfg.duration, 1800.0);
  EXPECT_GT(cfg.game.maps.map_duration, cfg.duration);  // no change mid-run
  EXPECT_TRUE(cfg.game.outages.times.empty());
  EXPECT_DOUBLE_EQ(cfg.game.trace_duration, 1800.0);
}

TEST(NatExperiment, ShortRunReproducesLossAsymmetry) {
  // A 5-minute slice is enough for the qualitative Table IV result.
  NatExperimentConfig cfg = NatExperimentConfig::Defaults();
  cfg.duration = 300.0;
  cfg.game.trace_duration = 300.0;
  cfg.game.maps.map_duration = 400.0;
  cfg.device.seed = 11;
  // Densify livelock episodes so a short run sees several.
  cfg.device.episode_mean_interval = 30.0;
  const auto result = RunNatExperiment(cfg);
  EXPECT_GT(result.device.packets(router::Segment::kClientsToNat), 50000u);
  EXPECT_GT(result.device.packets(router::Segment::kServerToNat), 50000u);
  EXPECT_GT(result.livelock_episodes, 2);
  // The paper's asymmetry: incoming loss well above outgoing loss.
  EXPECT_GT(result.device.loss_rate_incoming(), 0.003);
  EXPECT_GT(result.device.loss_rate_incoming(), 1.5 * result.device.loss_rate_outgoing());
  EXPECT_LT(result.device.loss_rate_outgoing(), 0.02);
  // Feedback fired: lost inbound bursts froze the server.
  EXPECT_GT(result.server_freezes, 0);
  // NAT state: one entry per distinct client endpoint seen.
  EXPECT_GT(result.nat_table_size, 10u);
}

TEST(NatExperiment, GenerousDeviceCausesNoLoss) {
  NatExperimentConfig cfg = NatExperimentConfig::Defaults();
  cfg.duration = 120.0;
  cfg.game.trace_duration = 120.0;
  cfg.game.maps.map_duration = 200.0;
  cfg.device.mean_capacity_pps = 100000.0;  // a real router, not a Barricade
  cfg.device.lan_buffer = 4096;
  cfg.device.wan_buffer = 4096;
  cfg.device.episode_mean_interval = 0.0;  // no livelock
  const auto result = RunNatExperiment(cfg);
  EXPECT_DOUBLE_EQ(result.device.loss_rate_incoming(), 0.0);
  EXPECT_LT(result.device.loss_rate_outgoing(), 1e-4);  // boundary in-flight only
  EXPECT_EQ(result.server_freezes, 0);
  EXPECT_LT(result.device.delay().mean(), 1e-3);
}

}  // namespace
}  // namespace gametrace::core
