#include "core/report.h"

#include <sstream>

#include <gtest/gtest.h>

namespace gametrace::core {
namespace {

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(500000000), "500,000,000");
  EXPECT_EQ(FormatCount(16030), "16,030");
  EXPECT_EQ(FormatCount(1234567), "1,234,567");
}

TEST(FormatDuration, PaperTraceLength) {
  // Table I: 626,477 s = 7 d, 6 h, 1 m, 17 s.
  EXPECT_EQ(FormatDuration(626477.03), "7 d, 6 h, 1 m, 17 s");
  EXPECT_EQ(FormatDuration(0.0), "0 d, 0 h, 0 m, 0 s");
  EXPECT_EQ(FormatDuration(3661.0), "0 d, 1 h, 1 m, 1 s");
}

TEST(FormatGigabytes, DecimalGb) {
  EXPECT_EQ(FormatGigabytes(64420000000ull), "64.42 GB");
  EXPECT_EQ(FormatGigabytes(0), "0.00 GB");
}

TEST(FormatDouble, Precision) {
  EXPECT_EQ(FormatDouble(80.333, 2), "80.33");
  EXPECT_EQ(FormatDouble(798.114, 1), "798.1");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(TableReport, PrintsAlignedRows) {
  TableReport table("Test Table");
  table.AddCount("Total Packets", 500000000);
  table.AddValue("Mean Packet Load", 798.11, "pkts/sec");
  table.AddRow("Custom", "value");
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("Test Table"), std::string::npos);
  EXPECT_NE(text.find("500,000,000"), std::string::npos);
  EXPECT_NE(text.find("798.11 pkts/sec"), std::string::npos);
  EXPECT_NE(text.find("Custom"), std::string::npos);
}

TEST(TableReport, UnitlessValue) {
  TableReport table("T");
  table.AddValue("H", 0.5, "", 2);
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("0.50"), std::string::npos);
}

TEST(PrintSeries, HeaderAndRows) {
  stats::TimeSeries s(0.0, 60.0);
  s.Add(30.0, 5.0);
  s.Add(90.0, 7.0);
  std::ostringstream out;
  PrintSeries(out, s, "bandwidth");
  const std::string text = out.str();
  EXPECT_NE(text.find("# series: bandwidth"), std::string::npos);
  EXPECT_NE(text.find("0 5"), std::string::npos);
  EXPECT_NE(text.find("60 7"), std::string::npos);
}

TEST(PrintSeries, DownsamplesLongSeries) {
  stats::TimeSeries s(0.0, 1.0);
  for (int i = 0; i < 1000; ++i) s.Add(static_cast<double>(i), 1.0);
  std::ostringstream out;
  PrintSeries(out, s, "long", 100);
  const std::string text = out.str();
  EXPECT_NE(text.find("downsampled"), std::string::npos);
  // Roughly 100 data lines plus two header lines.
  int lines = 0;
  for (char c : text) {
    if (c == '\n') ++lines;
  }
  EXPECT_LT(lines, 120);
}

TEST(PrintSeries, EmptySeriesJustHeader) {
  stats::TimeSeries s(0.0, 1.0);
  std::ostringstream out;
  EXPECT_NO_THROW(PrintSeries(out, s, "empty"));
}

TEST(PrintHistogram, PdfAndCdfModes) {
  stats::Histogram h(0.0, 10.0, 2);
  h.Add(1.0);
  h.Add(6.0);
  std::ostringstream pdf;
  PrintHistogram(pdf, h, "sizes");
  EXPECT_NE(pdf.str().find("0.5"), std::string::npos);
  std::ostringstream cdf;
  PrintHistogram(cdf, h, "sizes", /*cdf=*/true);
  EXPECT_NE(cdf.str().find("1"), std::string::npos);
  std::ostringstream raw;
  PrintHistogram(raw, h, "sizes", false, /*normalized=*/false);
  EXPECT_NE(raw.str().find("2.5 1"), std::string::npos);
}

TEST(PrintHistogram, MentionsOverflow) {
  stats::Histogram h(0.0, 10.0, 2);
  h.Add(100.0);
  std::ostringstream out;
  PrintHistogram(out, h, "x");
  EXPECT_NE(out.str().find("above range"), std::string::npos);
}

}  // namespace
}  // namespace gametrace::core
