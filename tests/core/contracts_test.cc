// Contract-violation coverage for the invariants introduced with the
// GT_CHECK migration: each test drives a subsystem into a state its
// contract forbids and expects the ThrowingContractHandler to surface it.
//
// Environmental errors (corrupt pcap/trace files) are NOT contracts and are
// covered by the PcapError/TraceError tests in tests/net and tests/trace.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/check.h"
#include "router/fifo_queue.h"
#include "sim/event_queue.h"
#include "stats/histogram.h"
#include "stats/linear_regression.h"
#include "stats/quantile.h"
#include "stats/time_series.h"
#include "trace/capture.h"

namespace gametrace {
namespace {

TEST(Contracts, TimeSeriesBinIndexOutOfRange) {
  stats::TimeSeries s(0.0, 1.0);
  s.Add(0.5);
  EXPECT_NO_THROW((void)s[0]);
  EXPECT_THROW((void)s[1], ContractViolation);
  EXPECT_THROW((void)s[100], ContractViolation);
}

TEST(Contracts, HistogramCountOutOfRange) {
  stats::Histogram h(0.0, 10.0, 5);
  EXPECT_NO_THROW((void)h.count(4));
  EXPECT_THROW((void)h.count(5), ContractViolation);
}

TEST(Contracts, HistogramBinGeometryOutOfRange) {
  stats::Histogram h(0.0, 10.0, 5);
  EXPECT_THROW((void)h.bin_center(5), ContractViolation);
  EXPECT_THROW((void)h.bin_left(5), ContractViolation);
}

TEST(Contracts, HistogramRejectsNonFiniteBounds) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(stats::Histogram(0.0, inf, 4), ContractViolation);
  EXPECT_THROW(stats::Histogram(-inf, 0.0, 4), ContractViolation);
  EXPECT_THROW(stats::Histogram(nan, 1.0, 4), ContractViolation);
}

TEST(Contracts, HistogramMergeRequiresIdenticalGeometry) {
  stats::Histogram a(0.0, 10.0, 5);
  stats::Histogram b(0.0, 10.0, 6);
  EXPECT_THROW(a.Merge(b), ContractViolation);
}

TEST(Contracts, QuantileMergeRequiresSameQuantile) {
  stats::P2Quantile p50(0.5);
  stats::P2Quantile p99(0.99);
  EXPECT_THROW(p50.Merge(p99), ContractViolation);
}

class NullSink final : public trace::CaptureSink {
 public:
  void OnPacket(const net::PacketRecord&) override {}
};

TEST(Contracts, ShardNamespaceSinkRejectsIdBeyondNamespace) {
  NullSink downstream;
  EXPECT_NO_THROW(trace::ShardNamespaceSink(trace::ShardNamespaceSink::kMaxShardId, downstream));
  EXPECT_THROW(trace::ShardNamespaceSink(trace::ShardNamespaceSink::kMaxShardId + 1, downstream),
               ContractViolation);
}

TEST(Contracts, EventQueueEmptyAccess) {
  sim::EventQueue q;
  EXPECT_THROW((void)q.NextTime(), ContractViolation);
  EXPECT_THROW((void)q.RunNext(), ContractViolation);
  EXPECT_THROW((void)q.Pop(), ContractViolation);
}

TEST(Contracts, EventQueuePopRefusesPeriodicEvents) {
  sim::EventQueue q;
  q.SchedulePeriodic(1.0, 2.0, [](sim::SimTime) {});
  EXPECT_THROW((void)q.Pop(), ContractViolation);
}

TEST(Contracts, EventQueueRejectsEmptyHandler) {
  sim::EventQueue q;
  EXPECT_THROW(q.Schedule(1.0, sim::EventQueue::Handler{}), ContractViolation);
  EXPECT_THROW(q.SchedulePeriodic(1.0, 1.0, sim::EventQueue::Handler{}), ContractViolation);
}

TEST(Contracts, FifoQueueRejectsZeroCapacity) {
  EXPECT_THROW(router::FifoQueue(0), ContractViolation);
}

TEST(Contracts, FitLineNeedsTwoPoints) {
  const double one[] = {1.0};
  EXPECT_THROW((void)stats::FitLine({one, 1}, {one, 1}), ContractViolation);
  EXPECT_THROW((void)stats::FitLine({}, {}), ContractViolation);
}

TEST(Contracts, FitLineNeedsMatchingSpans) {
  const double xs[] = {1.0, 2.0, 3.0};
  const double ys[] = {1.0, 2.0};
  EXPECT_THROW((void)stats::FitLine(xs, ys), ContractViolation);
}

}  // namespace
}  // namespace gametrace
