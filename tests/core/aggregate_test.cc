#include "core/aggregate.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::core {
namespace {

PopulationConfig FastConfig() {
  PopulationConfig cfg;
  cfg.servers = 8;
  cfg.duration = 7200.0;
  cfg.seed = 3;
  return cfg;
}

TEST(AggregatePopulation, Validation) {
  PopulationConfig bad = FastConfig();
  bad.servers = 0;
  EXPECT_THROW((void)SimulateAggregatePopulation(bad), gametrace::ContractViolation);
  bad = FastConfig();
  bad.duration = 10.0;
  EXPECT_THROW((void)SimulateAggregatePopulation(bad), gametrace::ContractViolation);
  bad = FastConfig();
  bad.pareto_alpha = 1.0;
  EXPECT_THROW((void)SimulateAggregatePopulation(bad), gametrace::ContractViolation);
}

TEST(AggregatePopulation, SeriesCoverDurationAndRespectCaps) {
  const auto cfg = FastConfig();
  const auto result = SimulateAggregatePopulation(cfg);
  EXPECT_EQ(result.total_players.size(), 7200u);
  EXPECT_LE(result.total_players.Max(), cfg.servers * cfg.max_players);
  EXPECT_GT(result.total_players.Mean(), 0.0);
  // Load is players x per-player demand, bin by bin.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(result.total_load_pps[i],
                     result.total_players[i] * cfg.pps_per_player);
  }
}

TEST(AggregatePopulation, Deterministic) {
  const auto a = SimulateAggregatePopulation(FastConfig());
  const auto b = SimulateAggregatePopulation(FastConfig());
  EXPECT_EQ(a.total_players.values(), b.total_players.values());
}

TEST(AggregatePopulation, BitIdenticalAcrossWorkerCounts) {
  // Per-server RNG streams are split before the worker pool runs and the
  // reduction is ordered, so the thread count must never change the result.
  PopulationConfig one = FastConfig();
  one.threads = 1;
  PopulationConfig many = FastConfig();
  many.threads = 8;
  const auto a = SimulateAggregatePopulation(one);
  const auto b = SimulateAggregatePopulation(many);
  EXPECT_EQ(a.total_players.values(), b.total_players.values());
  EXPECT_EQ(a.total_load_pps.values(), b.total_load_pps.values());
  EXPECT_EQ(a.coarse_hurst, b.coarse_hurst);
}

// The paper's section IV-B point: aggregate self-similarity tracks the
// population process. Heavy-tailed interest modulation lifts the
// coarse-scale Hurst parameter far above the unmodulated baseline.
TEST(AggregatePopulation, HeavyTailedPopulationsRaiseHurst) {
  PopulationConfig modulated = FastConfig();
  modulated.duration = 57600.0;  // 16 h so the coarse band has real support
  PopulationConfig fixed = modulated;
  fixed.modulate_interest = false;

  const auto with = SimulateAggregatePopulation(modulated);
  const auto without = SimulateAggregatePopulation(fixed);

  EXPECT_GT(with.coarse_hurst, 0.7);
  EXPECT_LT(without.coarse_hurst, 0.65);
  EXPECT_GT(with.coarse_hurst, without.coarse_hurst + 0.1);
}

TEST(AggregatePopulation, FixedPopulationIsNearCapacity) {
  PopulationConfig cfg = FastConfig();
  cfg.modulate_interest = false;
  const auto result = SimulateAggregatePopulation(cfg);
  // Offered load ~0.0315 * 715 ~ 22.5 erlangs per 22-slot server: pegged
  // near the cap, like the paper's single busy server.
  const double mean_per_server = result.total_players.Mean() / cfg.servers;
  EXPECT_GT(mean_per_server, 15.0);
  EXPECT_LE(mean_per_server, 22.0);
}

TEST(AggregatePopulation, MetricsAreBitIdenticalAcrossThreadCounts) {
  PopulationConfig cfg = FastConfig();
  cfg.threads = 1;
  const auto one = SimulateAggregatePopulation(cfg);
  cfg.threads = 2;
  const auto two = SimulateAggregatePopulation(cfg);
  cfg.threads = 8;
  const auto eight = SimulateAggregatePopulation(cfg);

  const std::string baseline = one.metrics.ToJson();
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, two.metrics.ToJson());
  EXPECT_EQ(baseline, eight.metrics.ToJson());

  // Counters mirror the population bookkeeping, and every per-step
  // occupancy sample lands in the histogram: servers x one sample per
  // second of simulated time.
  EXPECT_GT(one.metrics.counter_value("aggregate.arrivals"), 0u);
  EXPECT_GT(one.metrics.counter_value("aggregate.departures"), 0u);
  const auto* occupancy = one.metrics.find_histogram("aggregate.occupancy");
  ASSERT_NE(occupancy, nullptr);
  EXPECT_EQ(occupancy->total(),
            static_cast<std::uint64_t>(cfg.servers) *
                static_cast<std::uint64_t>(cfg.duration / cfg.interval));
}

TEST(AggregatePopulation, ModulationLowersMeanOccupancy) {
  PopulationConfig modulated = FastConfig();
  PopulationConfig fixed = FastConfig();
  fixed.modulate_interest = false;
  const auto with = SimulateAggregatePopulation(modulated);
  const auto without = SimulateAggregatePopulation(fixed);
  // OFF phases drain servers; the modulated aggregate runs lighter and
  // far more variable.
  EXPECT_LT(with.total_players.Mean(), without.total_players.Mean());
  EXPECT_GT(with.total_players.Variance(), 2.0 * without.total_players.Variance());
}

}  // namespace
}  // namespace gametrace::core
