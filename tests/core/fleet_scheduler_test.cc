// Work-stealing scheduler tests: the streaming ordered reduction must keep
// the fleet result a pure function of (config, base_seed) whatever the
// worker count, unit size, admission window or steal policy - even when
// the per-shard workloads are deliberately uneven - while the live-unit
// window bounds memory and the telemetry accounts for every shard.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/fleet.h"
#include "game/client.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"

#include "core/check.h"

namespace gametrace::core {
namespace {

// A fleet whose shards differ strongly in cost: shard s hosts between 4
// and 21 slots and sees its own arrival pressure, so unit runtimes are
// skewed and completion order under threads is far from submission order.
FleetConfig UnevenFleet(int shards) {
  FleetConfig config = FleetConfig::Scaled(shards, 120.0);
  config.base_seed = 99;
  config.configure_shard = [](int shard, game::GameConfig& server) {
    server.max_players = 4 + (shard * 7) % 18;
    server.sessions.fresh_attempt_rate *= 0.5 + 0.25 * (shard % 5);
    server.sessions.initial_players = server.max_players - 2;
  };
  return config;
}

TEST(FleetScheduler, ReportBitIdenticalAcrossWorkerCounts) {
  FleetConfig config = UnevenFleet(7);

  config.threads = 1;
  const auto one = RunFleet(config);
  config.threads = 3;
  const auto three = RunFleet(config);
  config.threads = 7;
  const auto seven = RunFleet(config);

  const std::string baseline = one.metrics.ToJson();
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, three.metrics.ToJson());
  EXPECT_EQ(baseline, seven.metrics.ToJson());
  EXPECT_EQ(one.total_packets, three.total_packets);
  EXPECT_EQ(one.total_packets, seven.total_packets);
  EXPECT_EQ(one.total_players.values(), three.total_players.values());
  EXPECT_EQ(one.total_players.values(), seven.total_players.values());
  EXPECT_EQ(one.report.summary.app_bytes_total(), three.report.summary.app_bytes_total());
  EXPECT_EQ(one.report.summary.size_stats_out().variance(),
            seven.report.summary.size_stats_out().variance());
  EXPECT_EQ(one.report.minute_packets_in.values(), seven.report.minute_packets_in.values());
  EXPECT_EQ(one.report.hurst.mid_scale, seven.report.hurst.mid_scale);
}

// Scheduling knobs move work between workers and change the completion
// order, but the fold order is always the server order: the result bits
// cannot depend on unit size, window, stealing or pinning.
TEST(FleetScheduler, ReportBitIdenticalAcrossScheduleShapes) {
  FleetConfig config = UnevenFleet(6);
  config.threads = 3;
  const auto baseline = RunFleet(config);
  const std::string metrics_json = baseline.metrics.ToJson();

  config.schedule.unit_size = 4;
  const auto coarse = RunFleet(config);
  EXPECT_EQ(metrics_json, coarse.metrics.ToJson());
  EXPECT_EQ(baseline.report.summary.size_stats_out().variance(),
            coarse.report.summary.size_stats_out().variance());
  EXPECT_EQ(baseline.report.minute_bytes_out.values(), coarse.report.minute_bytes_out.values());

  config.schedule.unit_size = 1;
  config.schedule.max_live_units_per_worker = 1;
  const auto tight = RunFleet(config);
  EXPECT_EQ(metrics_json, tight.metrics.ToJson());
  EXPECT_EQ(baseline.report.hurst.small_scale, tight.report.hurst.small_scale);

  config.schedule.steal = false;
  config.schedule.pin_threads = true;
  const auto static_pinned = RunFleet(config);
  EXPECT_EQ(metrics_json, static_pinned.metrics.ToJson());
  EXPECT_EQ(baseline.report.summary.app_bytes_total(),
            static_pinned.report.summary.app_bytes_total());
}

TEST(FleetScheduler, AdmissionWindowBoundsLiveUnits) {
  FleetConfig config = FleetConfig::Scaled(24, 30.0);
  config.threads = 3;
  config.schedule.unit_size = 1;
  config.schedule.max_live_units_per_worker = 1;
  const auto result = RunFleet(config);

  // 3 workers x 1 live unit each: never more than 3 units' results alive.
  EXPECT_EQ(result.scheduler_metrics.gauge_value("fleet.scheduler.window_units"), 3.0);
  EXPECT_LE(result.scheduler_metrics.gauge_value("fleet.scheduler.peak_live_units"), 3.0);
  EXPECT_GE(result.scheduler_metrics.gauge_value("fleet.scheduler.peak_live_units"), 1.0);
}

TEST(FleetScheduler, TelemetryAccountsForEveryShardAndUnit) {
  FleetConfig config = UnevenFleet(9);
  config.threads = 3;
  config.schedule.unit_size = 2;  // 5 units: 4 full + 1 remainder
  const auto result = RunFleet(config);

  const obs::MetricsRegistry& sched = result.scheduler_metrics;
  EXPECT_EQ(sched.gauge_value("fleet.scheduler.workers"), 3.0);
  EXPECT_EQ(sched.gauge_value("fleet.scheduler.units"), 5.0);
  EXPECT_EQ(sched.gauge_value("fleet.scheduler.unit_size"), 2.0);
  EXPECT_EQ(sched.counter_value("fleet.scheduler.merged_units"), 5u);

  std::uint64_t shards_run = 0;
  std::uint64_t units_run = 0;
  for (int w = 0; w < 3; ++w) {
    const std::string prefix = "fleet.worker." + std::to_string(w);
    shards_run += sched.counter_value(prefix + ".shards_run");
    units_run += sched.counter_value(prefix + ".units_run");
    // idle_ns / steals exist for every worker (possibly zero).
    (void)sched.counter_value(prefix + ".idle_ns");
    (void)sched.counter_value(prefix + ".steals");
  }
  EXPECT_EQ(shards_run, 9u);
  EXPECT_EQ(units_run, 5u);
}

// Scheduler telemetry is worker-count-dependent by design, so it must stay
// out of the merged result registry - which keeps the bit-identity
// contract - and live only in scheduler_metrics.
TEST(FleetScheduler, SchedulerTelemetryStaysOutOfMergedMetrics) {
  FleetConfig config = UnevenFleet(4);
  config.threads = 2;
  const auto result = RunFleet(config);
  EXPECT_EQ(result.metrics.ToJson().find("fleet."), std::string::npos);
  EXPECT_NE(result.scheduler_metrics.ToJson().find("fleet.scheduler.units"), std::string::npos);
}

// Parses "unit <u> [a,b)" and returns b - a, the unit's shard count.
int ShardCountFromSpanName(const std::string& name) {
  const std::size_t open = name.find('[');
  const std::size_t comma = name.find(',', open);
  const std::size_t close = name.find(')', comma);
  GT_CHECK(open != std::string::npos && comma != std::string::npos &&
           close != std::string::npos);
  const int a = std::stoi(name.substr(open + 1, comma - open - 1));
  const int b = std::stoi(name.substr(comma + 1, close - comma - 1));
  return b - a;
}

// The timeline and the counters are two views of the same execution: for
// every worker track, the number of unit spans, their summed shard ranges
// and the steal-hit spans must equal the fleet.worker.* counters, every
// span must nest inside its worker's lifetime span, unit spans within a
// track must not overlap (one worker runs one unit at a time), and every
// unit must appear in exactly one track.
TEST(FleetScheduler, TimelineSpansReconcileWithCounters) {
  for (const int threads : {1, 3, 7}) {
    FleetConfig config = UnevenFleet(9);
    config.threads = threads;
    config.schedule.unit_size = 1;  // 9 units: enough to spread and steal
    config.schedule.trace = true;
    const auto result = RunFleet(config);
    const obs::MetricsRegistry& sched = result.scheduler_metrics;

    // Group the merged timeline back into per-worker tracks.
    std::map<int, std::vector<const obs::TraceLog::Event*>> tracks;
    for (const obs::TraceLog::Event& event : result.sched_trace.events()) {
      tracks[event.pid].push_back(&event);
    }
    EXPECT_EQ(result.sched_trace.dropped(), 0u) << threads << " workers";
    ASSERT_EQ(tracks.size(), static_cast<std::size_t>(threads)) << threads << " workers";

    std::set<std::string> units_seen;
    for (const auto& [worker, events] : tracks) {
      const std::string prefix = "fleet.worker." + std::to_string(worker);
      const obs::TraceLog::Event* lifetime = nullptr;
      std::vector<const obs::TraceLog::Event*> unit_spans;
      std::uint64_t steal_hits = 0;
      std::uint64_t shard_sum = 0;
      for (const obs::TraceLog::Event* event : events) {
        const std::string cat = event->cat;
        if (cat == "worker") {
          EXPECT_EQ(lifetime, nullptr) << "two lifetime spans on worker " << worker;
          lifetime = event;
        } else if (cat == "unit") {
          unit_spans.push_back(event);
          shard_sum += static_cast<std::uint64_t>(ShardCountFromSpanName(event->name));
          // Globally: each unit runs on exactly one worker, exactly once.
          EXPECT_TRUE(units_seen.insert(event->name).second)
              << event->name << " ran twice (" << threads << " workers)";
        } else if (cat == "steal" && event->name.find("steal hit") == 0) {
          ++steal_hits;
        }
      }

      EXPECT_EQ(unit_spans.size(), sched.counter_value(prefix + ".units_run"));
      EXPECT_EQ(shard_sum, sched.counter_value(prefix + ".shards_run"));
      EXPECT_EQ(steal_hits, sched.counter_value(prefix + ".steals"));

      ASSERT_NE(lifetime, nullptr) << "worker " << worker << " has no lifetime span";
      constexpr double kEpsUs = 1e-3;  // double round-trip through seconds
      for (const obs::TraceLog::Event* event : events) {
        if (event == lifetime) continue;
        EXPECT_GE(event->ts_us, lifetime->ts_us - kEpsUs) << event->name;
        EXPECT_LE(event->ts_us + event->dur_us, lifetime->ts_us + lifetime->dur_us + kEpsUs)
            << event->name;
      }
      std::sort(unit_spans.begin(), unit_spans.end(),
                [](const obs::TraceLog::Event* a, const obs::TraceLog::Event* b) {
                  return a->ts_us < b->ts_us;
                });
      for (std::size_t i = 1; i < unit_spans.size(); ++i) {
        EXPECT_LE(unit_spans[i - 1]->ts_us + unit_spans[i - 1]->dur_us,
                  unit_spans[i]->ts_us + kEpsUs)
            << "overlapping units on worker " << worker;
      }
    }
    EXPECT_EQ(units_seen.size(), 9u) << threads << " workers";
  }
}

// Tracing is observability, not behavior: with spans on, the merged
// surfaces stay byte-identical to the untraced run at any worker count,
// and with tracing off the diagnostic timeline stays empty while the
// critical-path report is still populated.
TEST(FleetScheduler, TracingLeavesMergedSurfacesByteIdentical) {
  FleetConfig config = UnevenFleet(7);
  config.threads = 3;
  const auto untraced = RunFleet(config);
  const std::string baseline = untraced.metrics.ToJson();
  EXPECT_EQ(untraced.sched_trace.size(), 0u);
  EXPECT_FALSE(untraced.sched_report.empty());

  config.schedule.trace = true;
  for (const int threads : {1, 3, 7}) {
    config.threads = threads;
    const auto traced = RunFleet(config);
    EXPECT_EQ(baseline, traced.metrics.ToJson()) << threads << " workers";
    EXPECT_GT(traced.sched_trace.size(), 0u);
  }
}

// The report's five components are measured plus residual, so they must
// cover each worker's span exactly - not approximately - and the
// makespan must be the slowest worker's span.
TEST(FleetScheduler, CriticalPathComponentsSumToWorkerSpans) {
  FleetConfig config = UnevenFleet(8);
  config.threads = 3;
  const auto result = RunFleet(config);
  const obs::SchedReport& report = result.sched_report;

  ASSERT_EQ(report.workers, 3);
  std::uint64_t max_span = 0;
  std::uint64_t units = 0;
  std::uint64_t shards = 0;
  for (const obs::SchedReport::Worker& w : report.per_worker) {
    EXPECT_EQ(w.work_ns + w.steal_ns + w.stall_ns + w.merge_ns + w.idle_ns, w.span_ns)
        << "worker " << w.worker;
    max_span = std::max(max_span, w.span_ns);
    units += w.units;
    shards += w.shards;
  }
  EXPECT_EQ(report.makespan_ns, max_span);
  EXPECT_EQ(shards, 8u);
  EXPECT_EQ(units,
            static_cast<std::uint64_t>(
                result.scheduler_metrics.gauge_value("fleet.scheduler.units")));
  EXPECT_GE(report.imbalance_ratio, 1.0);
  // The report's headline gauges landed in the scheduler registry too.
  EXPECT_EQ(result.scheduler_metrics.gauge_value("fleet.critpath.makespan_ns"),
            static_cast<double>(report.makespan_ns));
}

// The naming seam the byte-identity exemption hangs on (DESIGN.md "Fleet
// scheduling"): every scheduler instrument lives under the fleet.* prefix
// in scheduler_metrics, and the merged registry carries no fleet.* name -
// so "diagnostic channel" is a checkable property, not a convention.
TEST(FleetScheduler, SchedulerMetricsRespectTheNamingSeam) {
  FleetConfig config = UnevenFleet(5);
  config.threads = 2;
  config.schedule.trace = true;
  const auto result = RunFleet(config);

  std::vector<std::string> names;
  result.scheduler_metrics.ForEachCounter(
      [&](std::string_view name, const obs::Counter&) { names.emplace_back(name); });
  result.scheduler_metrics.ForEachGauge(
      [&](std::string_view name, const obs::Gauge&) { names.emplace_back(name); });
  EXPECT_FALSE(names.empty());
  for (const std::string& name : names) {
    const bool in_namespace = name.rfind("fleet.scheduler.", 0) == 0 ||
                              name.rfind("fleet.worker.", 0) == 0 ||
                              name.rfind("fleet.critpath.", 0) == 0;
    EXPECT_TRUE(in_namespace) << name << " escapes the scheduler namespace";
  }

  std::vector<std::string> merged_names;
  result.metrics.ForEachCounter(
      [&](std::string_view name, const obs::Counter&) { merged_names.emplace_back(name); });
  result.metrics.ForEachGauge(
      [&](std::string_view name, const obs::Gauge&) { merged_names.emplace_back(name); });
  for (const std::string& name : merged_names) {
    EXPECT_NE(name.rfind("fleet.", 0), 0u) << name << " leaked into the merged registry";
  }
}

// 250 shards exceeds the old one-octet-per-shard limit of 245: the packed
// namespace keeps every shard's clients disjoint, so the merged unique
// client count is exactly the sum over shards.
TEST(FleetScheduler, WideNamespaceKeepsManyShardsDisjoint) {
  FleetConfig config = FleetConfig::Scaled(250, 15.0);
  config.threads = 0;
  config.base_seed = 7;
  const auto result = RunFleet(config);

  std::uint64_t per_shard_unique = 0;
  for (const auto& shard : result.shards) per_shard_unique += shard.stats.unique_attempting;
  EXPECT_EQ(result.report.summary.unique_clients_attempting(), per_shard_unique);
  EXPECT_EQ(result.report.summary.total_packets(), result.total_packets);
}

TEST(FleetScheduler, ConfigureShardCannotGrowTheIdentityPool) {
  FleetConfig config = FleetConfig::Scaled(2, 10.0);
  config.threads = 1;
  config.configure_shard = [](int, game::GameConfig& server) {
    server.sessions.population *= 2;  // would collide with the next shard
  };
  EXPECT_THROW((void)RunFleet(config), gametrace::ContractViolation);
}

TEST(IdentityNamespace, PackingMathMatchesTheDocumentedScheme) {
  EXPECT_EQ(game::IdentityIndexBits(1), 0);
  EXPECT_EQ(game::IdentityIndexBits(2), 1);
  EXPECT_EQ(game::IdentityIndexBits(9000), 14);
  EXPECT_EQ(game::IdentityIndexBits(std::size_t{1} << 24), 24);

  EXPECT_EQ(game::MaxDisjointServers(9000), std::size_t{246} << 10);  // 251,904
  EXPECT_EQ(game::MaxDisjointServers(std::size_t{1} << 24), 246u);

  // Ids up to 245 reproduce the classic per-octet shift exactly.
  EXPECT_EQ(game::ShardIpShift(0, 9000), 0u);
  EXPECT_EQ(game::ShardIpShift(1, 9000), 1u << 24);
  EXPECT_EQ(game::ShardIpShift(245, 9000), 245u << 24);
  // Id 246 wraps to octet 0 at sub-namespace offset 1.
  EXPECT_EQ(game::ShardIpShift(246, 9000), 1u);
  EXPECT_EQ(game::ShardIpShift(247, 9000), (1u << 24) | 1u);

  // Out-of-range ids are a contract violation, not a silent collision.
  EXPECT_THROW((void)game::ShardIpShift(251904, 9000), gametrace::ContractViolation);
}

}  // namespace
}  // namespace gametrace::core
