// Work-stealing scheduler tests: the streaming ordered reduction must keep
// the fleet result a pure function of (config, base_seed) whatever the
// worker count, unit size, admission window or steal policy - even when
// the per-shard workloads are deliberately uneven - while the live-unit
// window bounds memory and the telemetry accounts for every shard.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "core/fleet.h"
#include "game/client.h"
#include "obs/metrics.h"

#include "core/check.h"

namespace gametrace::core {
namespace {

// A fleet whose shards differ strongly in cost: shard s hosts between 4
// and 21 slots and sees its own arrival pressure, so unit runtimes are
// skewed and completion order under threads is far from submission order.
FleetConfig UnevenFleet(int shards) {
  FleetConfig config = FleetConfig::Scaled(shards, 120.0);
  config.base_seed = 99;
  config.configure_shard = [](int shard, game::GameConfig& server) {
    server.max_players = 4 + (shard * 7) % 18;
    server.sessions.fresh_attempt_rate *= 0.5 + 0.25 * (shard % 5);
    server.sessions.initial_players = server.max_players - 2;
  };
  return config;
}

TEST(FleetScheduler, ReportBitIdenticalAcrossWorkerCounts) {
  FleetConfig config = UnevenFleet(7);

  config.threads = 1;
  const auto one = RunFleet(config);
  config.threads = 3;
  const auto three = RunFleet(config);
  config.threads = 7;
  const auto seven = RunFleet(config);

  const std::string baseline = one.metrics.ToJson();
  EXPECT_FALSE(baseline.empty());
  EXPECT_EQ(baseline, three.metrics.ToJson());
  EXPECT_EQ(baseline, seven.metrics.ToJson());
  EXPECT_EQ(one.total_packets, three.total_packets);
  EXPECT_EQ(one.total_packets, seven.total_packets);
  EXPECT_EQ(one.total_players.values(), three.total_players.values());
  EXPECT_EQ(one.total_players.values(), seven.total_players.values());
  EXPECT_EQ(one.report.summary.app_bytes_total(), three.report.summary.app_bytes_total());
  EXPECT_EQ(one.report.summary.size_stats_out().variance(),
            seven.report.summary.size_stats_out().variance());
  EXPECT_EQ(one.report.minute_packets_in.values(), seven.report.minute_packets_in.values());
  EXPECT_EQ(one.report.hurst.mid_scale, seven.report.hurst.mid_scale);
}

// Scheduling knobs move work between workers and change the completion
// order, but the fold order is always the server order: the result bits
// cannot depend on unit size, window, stealing or pinning.
TEST(FleetScheduler, ReportBitIdenticalAcrossScheduleShapes) {
  FleetConfig config = UnevenFleet(6);
  config.threads = 3;
  const auto baseline = RunFleet(config);
  const std::string metrics_json = baseline.metrics.ToJson();

  config.schedule.unit_size = 4;
  const auto coarse = RunFleet(config);
  EXPECT_EQ(metrics_json, coarse.metrics.ToJson());
  EXPECT_EQ(baseline.report.summary.size_stats_out().variance(),
            coarse.report.summary.size_stats_out().variance());
  EXPECT_EQ(baseline.report.minute_bytes_out.values(), coarse.report.minute_bytes_out.values());

  config.schedule.unit_size = 1;
  config.schedule.max_live_units_per_worker = 1;
  const auto tight = RunFleet(config);
  EXPECT_EQ(metrics_json, tight.metrics.ToJson());
  EXPECT_EQ(baseline.report.hurst.small_scale, tight.report.hurst.small_scale);

  config.schedule.steal = false;
  config.schedule.pin_threads = true;
  const auto static_pinned = RunFleet(config);
  EXPECT_EQ(metrics_json, static_pinned.metrics.ToJson());
  EXPECT_EQ(baseline.report.summary.app_bytes_total(),
            static_pinned.report.summary.app_bytes_total());
}

TEST(FleetScheduler, AdmissionWindowBoundsLiveUnits) {
  FleetConfig config = FleetConfig::Scaled(24, 30.0);
  config.threads = 3;
  config.schedule.unit_size = 1;
  config.schedule.max_live_units_per_worker = 1;
  const auto result = RunFleet(config);

  // 3 workers x 1 live unit each: never more than 3 units' results alive.
  EXPECT_EQ(result.scheduler_metrics.gauge_value("fleet.scheduler.window_units"), 3.0);
  EXPECT_LE(result.scheduler_metrics.gauge_value("fleet.scheduler.peak_live_units"), 3.0);
  EXPECT_GE(result.scheduler_metrics.gauge_value("fleet.scheduler.peak_live_units"), 1.0);
}

TEST(FleetScheduler, TelemetryAccountsForEveryShardAndUnit) {
  FleetConfig config = UnevenFleet(9);
  config.threads = 3;
  config.schedule.unit_size = 2;  // 5 units: 4 full + 1 remainder
  const auto result = RunFleet(config);

  const obs::MetricsRegistry& sched = result.scheduler_metrics;
  EXPECT_EQ(sched.gauge_value("fleet.scheduler.workers"), 3.0);
  EXPECT_EQ(sched.gauge_value("fleet.scheduler.units"), 5.0);
  EXPECT_EQ(sched.gauge_value("fleet.scheduler.unit_size"), 2.0);
  EXPECT_EQ(sched.counter_value("fleet.scheduler.merged_units"), 5u);

  std::uint64_t shards_run = 0;
  std::uint64_t units_run = 0;
  for (int w = 0; w < 3; ++w) {
    const std::string prefix = "fleet.worker." + std::to_string(w);
    shards_run += sched.counter_value(prefix + ".shards_run");
    units_run += sched.counter_value(prefix + ".units_run");
    // idle_ns / steals exist for every worker (possibly zero).
    (void)sched.counter_value(prefix + ".idle_ns");
    (void)sched.counter_value(prefix + ".steals");
  }
  EXPECT_EQ(shards_run, 9u);
  EXPECT_EQ(units_run, 5u);
}

// Scheduler telemetry is worker-count-dependent by design, so it must stay
// out of the merged result registry - which keeps the bit-identity
// contract - and live only in scheduler_metrics.
TEST(FleetScheduler, SchedulerTelemetryStaysOutOfMergedMetrics) {
  FleetConfig config = UnevenFleet(4);
  config.threads = 2;
  const auto result = RunFleet(config);
  EXPECT_EQ(result.metrics.ToJson().find("fleet."), std::string::npos);
  EXPECT_NE(result.scheduler_metrics.ToJson().find("fleet.scheduler.units"), std::string::npos);
}

// 250 shards exceeds the old one-octet-per-shard limit of 245: the packed
// namespace keeps every shard's clients disjoint, so the merged unique
// client count is exactly the sum over shards.
TEST(FleetScheduler, WideNamespaceKeepsManyShardsDisjoint) {
  FleetConfig config = FleetConfig::Scaled(250, 15.0);
  config.threads = 0;
  config.base_seed = 7;
  const auto result = RunFleet(config);

  std::uint64_t per_shard_unique = 0;
  for (const auto& shard : result.shards) per_shard_unique += shard.stats.unique_attempting;
  EXPECT_EQ(result.report.summary.unique_clients_attempting(), per_shard_unique);
  EXPECT_EQ(result.report.summary.total_packets(), result.total_packets);
}

TEST(FleetScheduler, ConfigureShardCannotGrowTheIdentityPool) {
  FleetConfig config = FleetConfig::Scaled(2, 10.0);
  config.threads = 1;
  config.configure_shard = [](int, game::GameConfig& server) {
    server.sessions.population *= 2;  // would collide with the next shard
  };
  EXPECT_THROW((void)RunFleet(config), gametrace::ContractViolation);
}

TEST(IdentityNamespace, PackingMathMatchesTheDocumentedScheme) {
  EXPECT_EQ(game::IdentityIndexBits(1), 0);
  EXPECT_EQ(game::IdentityIndexBits(2), 1);
  EXPECT_EQ(game::IdentityIndexBits(9000), 14);
  EXPECT_EQ(game::IdentityIndexBits(std::size_t{1} << 24), 24);

  EXPECT_EQ(game::MaxDisjointServers(9000), std::size_t{246} << 10);  // 251,904
  EXPECT_EQ(game::MaxDisjointServers(std::size_t{1} << 24), 246u);

  // Ids up to 245 reproduce the classic per-octet shift exactly.
  EXPECT_EQ(game::ShardIpShift(0, 9000), 0u);
  EXPECT_EQ(game::ShardIpShift(1, 9000), 1u << 24);
  EXPECT_EQ(game::ShardIpShift(245, 9000), 245u << 24);
  // Id 246 wraps to octet 0 at sub-namespace offset 1.
  EXPECT_EQ(game::ShardIpShift(246, 9000), 1u);
  EXPECT_EQ(game::ShardIpShift(247, 9000), (1u << 24) | 1u);

  // Out-of-range ids are a contract violation, not a silent collision.
  EXPECT_THROW((void)game::ShardIpShift(251904, 9000), gametrace::ContractViolation);
}

}  // namespace
}  // namespace gametrace::core
