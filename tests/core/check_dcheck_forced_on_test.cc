// GT_DCHECK with GAMETRACE_ENABLE_DCHECKS forced to 1, as the asan-ubsan
// and tsan presets do globally: the D-variants must behave exactly like
// hard GT_CHECKs regardless of NDEBUG.
#include <gtest/gtest.h>

#undef GAMETRACE_ENABLE_DCHECKS
#define GAMETRACE_ENABLE_DCHECKS 1
#include "core/check.h"

namespace gametrace {
namespace {

TEST(GtDcheckForcedOn, FailingDchecksThrow) {
  EXPECT_THROW(GT_DCHECK(false), ContractViolation);
  EXPECT_THROW(GT_DCHECK_EQ(1, 2), ContractViolation);
  EXPECT_THROW(GT_DCHECK_NE(1, 1), ContractViolation);
  EXPECT_THROW(GT_DCHECK_LT(2, 1), ContractViolation);
  EXPECT_THROW(GT_DCHECK_LE(2, 1), ContractViolation);
  EXPECT_THROW(GT_DCHECK_GT(1, 2), ContractViolation);
  EXPECT_THROW(GT_DCHECK_GE(1, 2), ContractViolation);
}

TEST(GtDcheckForcedOn, OperandsCapturedInMessage) {
  try {
    GT_DCHECK_LE(9, 4) << "window overrun";
    FAIL() << "GT_DCHECK_LE did not fire";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("(9 vs 4)"), std::string::npos) << what;
    EXPECT_NE(what.find("window overrun"), std::string::npos) << what;
  }
}

TEST(GtDcheckForcedOn, PassingDchecksEvaluateOnce) {
  int evaluations = 0;
  GT_DCHECK_EQ((++evaluations, 5), 5);
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace gametrace
