// Unit tests for the GT_CHECK contract macros (src/core/check.h).
//
// gt_test_main.cc installs ThrowingContractHandler process-wide, so a
// violated contract surfaces here as a catchable ContractViolation.
#include "core/check.h"

#include <gtest/gtest.h>

#include <string>

namespace gametrace {
namespace {

// --- GT_CHECK -------------------------------------------------------------

TEST(GtCheck, PassingConditionIsSilent) {
  GT_CHECK(1 + 1 == 2);
  GT_CHECK(true) << "never rendered";
}

TEST(GtCheck, FailingConditionThrowsWithConditionText) {
  try {
    GT_CHECK(2 < 1);
    FAIL() << "GT_CHECK did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("GT_CHECK(2 < 1) failed"), std::string::npos);
  }
}

TEST(GtCheck, StreamedMessageIsCaptured) {
  try {
    GT_CHECK(false) << "context " << 42 << " more";
    FAIL() << "GT_CHECK did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("context 42 more"), std::string::npos);
  }
}

TEST(GtCheck, ViolationCarriesFileAndLine) {
  try {
    GT_CHECK(false);
    FAIL() << "GT_CHECK did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.file()).find("check_test.cc"), std::string::npos);
    EXPECT_GT(e.line(), 0);
    EXPECT_NE(std::string(e.what()).find("check_test.cc"), std::string::npos);
  }
}

TEST(GtCheck, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  GT_CHECK(++evaluations > 0);
  EXPECT_EQ(evaluations, 1);
}

TEST(GtCheck, ViolationIsALogicError) {
  // Contract bugs must be distinguishable from environmental runtime_errors
  // (PcapError, TraceError) by catch type.
  EXPECT_THROW(GT_CHECK(false), std::logic_error);
}

// --- GT_CHECK_OP family ---------------------------------------------------

TEST(GtCheckOp, AllComparisonsPassWhenTrue) {
  GT_CHECK_EQ(3, 3);
  GT_CHECK_NE(3, 4);
  GT_CHECK_LT(3, 4);
  GT_CHECK_LE(3, 3);
  GT_CHECK_GT(4, 3);
  GT_CHECK_GE(4, 4);
}

TEST(GtCheckOp, AllComparisonsThrowWhenFalse) {
  EXPECT_THROW(GT_CHECK_EQ(3, 4), ContractViolation);
  EXPECT_THROW(GT_CHECK_NE(3, 3), ContractViolation);
  EXPECT_THROW(GT_CHECK_LT(4, 3), ContractViolation);
  EXPECT_THROW(GT_CHECK_LE(4, 3), ContractViolation);
  EXPECT_THROW(GT_CHECK_GT(3, 4), ContractViolation);
  EXPECT_THROW(GT_CHECK_GE(3, 4), ContractViolation);
}

TEST(GtCheckOp, FailureMessagePrintsBothOperands) {
  try {
    const int lhs = 3;
    const int rhs = 5;
    GT_CHECK_EQ(lhs, rhs) << "ids must match";
    FAIL() << "GT_CHECK_EQ did not fire";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("GT_CHECK_EQ(lhs, rhs) failed"), std::string::npos) << what;
    EXPECT_NE(what.find("(3 vs 5)"), std::string::npos) << what;
    EXPECT_NE(what.find("ids must match"), std::string::npos) << what;
  }
}

TEST(GtCheckOp, OperandsEvaluatedExactlyOnce) {
  int lhs_evals = 0;
  int rhs_evals = 0;
  GT_CHECK_LT((++lhs_evals, 1), (++rhs_evals, 2));
  EXPECT_EQ(lhs_evals, 1);
  EXPECT_EQ(rhs_evals, 1);
}

TEST(GtCheckOp, BoolOperandsPrintAsWords) {
  try {
    GT_CHECK_EQ(true, false);
    FAIL() << "GT_CHECK_EQ did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("(true vs false)"), std::string::npos) << e.what();
  }
}

TEST(GtCheckOp, NarrowCharOperandsPrintAsIntegers) {
  try {
    GT_CHECK_EQ('\x03', 'A');
    FAIL() << "GT_CHECK_EQ did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("(3 vs 65)"), std::string::npos) << e.what();
  }
}

enum class Opaque { kRed = 7, kBlue = 9 };

TEST(GtCheckOp, EnumOperandsPrintUnderlyingValue) {
  try {
    GT_CHECK_EQ(Opaque::kRed, Opaque::kBlue);
    FAIL() << "GT_CHECK_EQ did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("(7 vs 9)"), std::string::npos) << e.what();
  }
}

struct NotStreamable {
  int payload = 0;
  friend bool operator==(const NotStreamable&, const NotStreamable&) = default;
};

TEST(GtCheckOp, UnprintableOperandsGetPlaceholder) {
  try {
    GT_CHECK_EQ(NotStreamable{1}, NotStreamable{2});
    FAIL() << "GT_CHECK_EQ did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("(<unprintable> vs <unprintable>)"), std::string::npos)
        << e.what();
  }
}

TEST(GtCheckOp, MixedTypeComparisonCompiles) {
  const std::size_t big = 10;
  GT_CHECK_LT(3u, big);
  EXPECT_THROW(GT_CHECK_GE(3u, big), ContractViolation);
}

// --- GT_UNREACHABLE -------------------------------------------------------

TEST(GtUnreachable, AlwaysThrows) {
  try {
    GT_UNREACHABLE();
    FAIL() << "GT_UNREACHABLE did not fire";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("GT_UNREACHABLE() reached"), std::string::npos);
  }
}

// --- handler plumbing -----------------------------------------------------

int g_recorded_line = 0;

[[noreturn]] void RecordingHandler(const ContractFailure& failure) {
  g_recorded_line = failure.line;
  throw ContractViolation(failure);
}

TEST(ContractHandler, ScopedHandlerInstallsAndRestores) {
  const ContractHandler before = GetContractHandler();
  {
    ScopedContractHandler scoped(RecordingHandler);
    EXPECT_EQ(GetContractHandler(), RecordingHandler);
    g_recorded_line = 0;
    EXPECT_THROW(GT_CHECK(false), ContractViolation);
    EXPECT_GT(g_recorded_line, 0);
  }
  EXPECT_EQ(GetContractHandler(), before);
}

TEST(ContractHandler, NullRestoresAbortingDefault) {
  const ContractHandler before = SetContractHandler(nullptr);
  EXPECT_EQ(GetContractHandler(), &AbortContractHandler);
  SetContractHandler(before);  // put the test-suite throwing handler back
  EXPECT_EQ(GetContractHandler(), before);
}

TEST(ContractHandler, FailureToStringFormatsFileLineConditionMessage) {
  const ContractFailure failure{"a/b.cc", 12, "GT_CHECK(x) failed", "why"};
  EXPECT_EQ(failure.ToString(), "a/b.cc:12: GT_CHECK(x) failed: why");
  const ContractFailure bare{"a/b.cc", 12, "GT_CHECK(x) failed", ""};
  EXPECT_EQ(bare.ToString(), "a/b.cc:12: GT_CHECK(x) failed");
}

// --- GT_DCHECK in this TU (follows build-type default) ---------------------

TEST(GtDcheck, MatchesBuildConfiguration) {
  int evaluations = 0;
  GT_DCHECK_GE((++evaluations, 1), 0);
#if GAMETRACE_ENABLE_DCHECKS
  EXPECT_EQ(evaluations, 1);
  EXPECT_THROW(GT_DCHECK(false), ContractViolation);
  EXPECT_THROW(GT_DCHECK_EQ(1, 2), ContractViolation);
#else
  EXPECT_EQ(evaluations, 0);  // compiled out: operands never evaluated
  GT_DCHECK(false);           // must be a no-op
  GT_DCHECK_EQ(1, 2);
#endif
}

TEST(GtDcheck, DanglingElseSafe) {
  // The macros must compose with unbraced if/else.
  bool reached_else = false;
  if (false)
    GT_DCHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);

  if (false)
    GT_CHECK(true);
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace gametrace
