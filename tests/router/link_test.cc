#include "router/link.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::router {
namespace {

TEST(Link, Validation) {
  EXPECT_THROW(Link(0.0, 0.0), gametrace::ContractViolation);
  EXPECT_THROW(Link(-1.0, 0.0), gametrace::ContractViolation);
  EXPECT_THROW(Link(1e6, -0.1), gametrace::ContractViolation);
}

TEST(Link, TransmitDelay) {
  const Link link(100e6, 0.0);  // 100 Mbps
  // 183-byte game frame: 14.64 us.
  EXPECT_NEAR(link.TransmitDelay(183), 14.64e-6, 1e-9);
  EXPECT_DOUBLE_EQ(link.TransmitDelay(0), 0.0);
}

TEST(Link, TotalDelayAddsPropagation) {
  const Link link(1e6, 0.010);
  EXPECT_NEAR(link.TotalDelay(125), 0.001 + 0.010, 1e-12);
}

TEST(Link, NextFreeTimeBacksToBack) {
  const Link link(100e6, 0.0);
  const double t0 = 1.0;
  const double t1 = link.NextFreeTime(t0, 183);
  EXPECT_NEAR(t1 - t0, 14.64e-6, 1e-9);
  // A 20-packet burst of game frames occupies ~0.3 ms of a fast Ethernet
  // link - the burst-compression that overwhelms per-packet lookup.
  double t = 0.0;
  for (int i = 0; i < 20; ++i) t = link.NextFreeTime(t, 183);
  EXPECT_NEAR(t, 20 * 14.64e-6, 1e-8);
  EXPECT_LT(t, 0.001);
}

TEST(Link, ModemLink) {
  const Link modem(56e3, 0.0);
  // A 183-byte frame takes ~26 ms on a 56k modem: at 20 such packets per
  // 50 ms tick the last mile is saturated - the paper's core design claim.
  const double frame_time = modem.TransmitDelay(183);
  EXPECT_NEAR(frame_time, 0.0261, 0.001);
  EXPECT_GT(20.0 * frame_time, 0.5);  // >50% of each second just for updates
}

TEST(Link, Accessors) {
  const Link link(42e6, 0.003);
  EXPECT_DOUBLE_EQ(link.bandwidth_bps(), 42e6);
  EXPECT_DOUBLE_EQ(link.propagation_delay(), 0.003);
}

}  // namespace
}  // namespace gametrace::router
