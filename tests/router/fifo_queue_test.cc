#include "router/fifo_queue.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace gametrace::router {
namespace {

QueuedPacket MakePacket(double t, NatPort port = NatPort::kLan) {
  QueuedPacket p;
  p.record.timestamp = t;
  p.in_port = port;
  p.enqueued_at = t;
  return p;
}

TEST(FifoQueue, Validation) { EXPECT_THROW(FifoQueue(0), gametrace::ContractViolation); }

TEST(FifoQueue, PushPopFifoOrder) {
  FifoQueue q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.TryPush(MakePacket(i)));
  for (int i = 0; i < 5; ++i) {
    const auto p = q.Pop();
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(p->enqueued_at, i);
  }
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(FifoQueue, DropTailWhenFull) {
  FifoQueue q(3);
  EXPECT_TRUE(q.TryPush(MakePacket(0)));
  EXPECT_TRUE(q.TryPush(MakePacket(1)));
  EXPECT_TRUE(q.TryPush(MakePacket(2)));
  EXPECT_TRUE(q.full());
  EXPECT_FALSE(q.TryPush(MakePacket(3)));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.pushes(), 3u);
  EXPECT_EQ(q.size(), 3u);
  // The survivors are the first three (drop-tail, not drop-head).
  EXPECT_DOUBLE_EQ(q.Pop()->enqueued_at, 0.0);
}

TEST(FifoQueue, SpaceReopensAfterPop) {
  FifoQueue q(1);
  EXPECT_TRUE(q.TryPush(MakePacket(0)));
  EXPECT_FALSE(q.TryPush(MakePacket(1)));
  (void)q.Pop();
  EXPECT_TRUE(q.TryPush(MakePacket(2)));
}

TEST(FifoQueue, MaxOccupancyTracked) {
  FifoQueue q(10);
  for (int i = 0; i < 7; ++i) (void)q.TryPush(MakePacket(i));
  for (int i = 0; i < 7; ++i) (void)q.Pop();
  for (int i = 0; i < 3; ++i) (void)q.TryPush(MakePacket(i));
  EXPECT_EQ(q.max_occupancy(), 7u);
}

TEST(FifoQueue, OccupancyStatsAtPush) {
  FifoQueue q(100);
  for (int i = 0; i < 10; ++i) (void)q.TryPush(MakePacket(i));
  // Occupancies seen at push: 0,1,...,9 -> mean 4.5.
  EXPECT_DOUBLE_EQ(q.occupancy_at_push().mean(), 4.5);
  EXPECT_EQ(q.occupancy_at_push().count(), 10u);
}

TEST(FifoQueue, PortPreserved) {
  FifoQueue q(4);
  (void)q.TryPush(MakePacket(0, NatPort::kWan));
  EXPECT_EQ(q.Pop()->in_port, NatPort::kWan);
}

}  // namespace
}  // namespace gametrace::router
