#include "router/route_cache.h"

#include <gtest/gtest.h>

#include "sim/rng.h"

#include "core/check.h"

namespace gametrace::router {
namespace {

TEST(RouteCache, Validation) {
  EXPECT_THROW(RouteCache(0, CachePolicy::kLru), gametrace::ContractViolation);
}

TEST(RouteCache, MissThenHit) {
  RouteCache cache(4, CachePolicy::kLru);
  EXPECT_FALSE(cache.Access(1, 40));
  EXPECT_TRUE(cache.Access(1, 40));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.5);
}

TEST(RouteCache, LruEvictsLeastRecent) {
  RouteCache cache(2, CachePolicy::kLru);
  (void)cache.Access(1, 40);
  (void)cache.Access(2, 40);
  (void)cache.Access(1, 40);  // 1 is now most recent
  (void)cache.Access(3, 40);  // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(RouteCache, LfuEvictsLeastFrequent) {
  RouteCache cache(2, CachePolicy::kLfu);
  for (int i = 0; i < 10; ++i) (void)cache.Access(1, 40);
  (void)cache.Access(2, 40);
  (void)cache.Access(3, 40);  // evicts 2 (freq 1) not 1 (freq 10)
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(RouteCache, SizePreferentialProtectsSmallPacketFlows) {
  RouteCache cache(4, CachePolicy::kSmallPacketPreferential);
  // A game flow (40 B packets) and three web flows (1200 B packets).
  for (int i = 0; i < 20; ++i) (void)cache.Access(100, 40);
  (void)cache.Access(1, 1200);
  (void)cache.Access(2, 1200);
  (void)cache.Access(3, 1200);
  // Cache full. A new web flow must evict another web flow, not the game
  // route - even though the game route may be older than some web entries.
  (void)cache.Access(4, 1200);
  EXPECT_TRUE(cache.Contains(100));
}

TEST(RouteCache, FrequencyPreferentialNeedsSecondMiss) {
  RouteCache cache(4, CachePolicy::kFrequencyPreferential);
  EXPECT_FALSE(cache.Access(1, 40));   // first miss: ghost only
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_FALSE(cache.Access(1, 40));   // second miss: admitted
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_TRUE(cache.Access(1, 40));    // now a hit
}

TEST(RouteCache, FrequencyPreferentialResistsScanPollution) {
  RouteCache cache(8, CachePolicy::kFrequencyPreferential);
  // Establish 8 hot game routes.
  for (std::uint32_t ip = 1; ip <= 8; ++ip) {
    (void)cache.Access(ip, 40);
    (void)cache.Access(ip, 40);
  }
  // A one-shot scan of 1000 distinct destinations (web-like churn).
  for (std::uint32_t ip = 1000; ip < 2000; ++ip) (void)cache.Access(ip, 1200);
  // Every hot route survived: one-shot flows never got admitted.
  for (std::uint32_t ip = 1; ip <= 8; ++ip) EXPECT_TRUE(cache.Contains(ip));
}

TEST(RouteCache, LruSuccumbsToScanPollution) {
  RouteCache cache(8, CachePolicy::kLru);
  for (std::uint32_t ip = 1; ip <= 8; ++ip) (void)cache.Access(ip, 40);
  for (std::uint32_t ip = 1000; ip < 2000; ++ip) (void)cache.Access(ip, 1200);
  for (std::uint32_t ip = 1; ip <= 8; ++ip) EXPECT_FALSE(cache.Contains(ip));
}

TEST(RouteCache, CapacityNeverExceeded) {
  for (const auto policy :
       {CachePolicy::kLru, CachePolicy::kLfu, CachePolicy::kSmallPacketPreferential,
        CachePolicy::kFrequencyPreferential}) {
    RouteCache cache(16, policy);
    sim::Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
      (void)cache.Access(static_cast<std::uint32_t>(rng.NextBelow(100)),
                         static_cast<std::uint16_t>(40 + rng.NextBelow(1200)));
      ASSERT_LE(cache.size(), 16u) << PolicyName(policy);
    }
    EXPECT_GT(cache.hits(), 0u);
  }
}

TEST(RouteCache, ClearResets) {
  RouteCache cache(4, CachePolicy::kLru);
  (void)cache.Access(1, 40);
  (void)cache.Access(1, 40);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.Access(1, 40));  // miss again after clear
}

TEST(RouteCache, PolicyNames) {
  EXPECT_EQ(PolicyName(CachePolicy::kLru), "LRU");
  EXPECT_EQ(PolicyName(CachePolicy::kLfu), "LFU");
  EXPECT_EQ(PolicyName(CachePolicy::kSmallPacketPreferential), "small-packet-preferential");
  EXPECT_EQ(PolicyName(CachePolicy::kFrequencyPreferential), "frequency-preferential");
}

TEST(RouteCache, HitRateEmptyIsZero) {
  RouteCache cache(4, CachePolicy::kLru);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);
}

// For steady game traffic (few destinations, many packets) every policy
// must reach a near-perfect hit rate.
class PolicySweep : public ::testing::TestWithParam<CachePolicy> {};

TEST_P(PolicySweep, GameTrafficHitsNearOne) {
  RouteCache cache(32, GetParam());
  sim::Rng rng(9);
  for (int i = 0; i < 50000; ++i) {
    (void)cache.Access(static_cast<std::uint32_t>(rng.NextBelow(22)), 130);
  }
  EXPECT_GT(cache.hit_rate(), 0.99);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicySweep,
                         ::testing::Values(CachePolicy::kLru, CachePolicy::kLfu,
                                           CachePolicy::kSmallPacketPreferential,
                                           CachePolicy::kFrequencyPreferential));

}  // namespace
}  // namespace gametrace::router
