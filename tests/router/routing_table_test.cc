#include "router/routing_table.h"

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "sim/rng.h"

namespace gametrace::router {
namespace {

net::Ipv4Prefix P(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d, int len) {
  return net::Ipv4Prefix(net::Ipv4Address(a, b, c, d), len);
}

TEST(RoutingTable, EmptyLookupIsMiss) {
  RoutingTable table;
  EXPECT_FALSE(table.Lookup(net::Ipv4Address(1, 2, 3, 4)).has_value());
  EXPECT_EQ(table.size(), 0u);
}

TEST(RoutingTable, ExactMatch) {
  RoutingTable table;
  table.Insert(P(10, 0, 0, 0, 8), 1);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(10, 5, 5, 5)), 1u);
  EXPECT_FALSE(table.Lookup(net::Ipv4Address(11, 0, 0, 0)).has_value());
}

TEST(RoutingTable, LongestPrefixWins) {
  RoutingTable table;
  table.Insert(P(10, 0, 0, 0, 8), 1);
  table.Insert(P(10, 1, 0, 0, 16), 2);
  table.Insert(P(10, 1, 2, 0, 24), 3);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(10, 1, 2, 3)), 3u);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(10, 1, 9, 9)), 2u);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(10, 9, 9, 9)), 1u);
}

TEST(RoutingTable, DefaultRoute) {
  RoutingTable table;
  table.Insert(P(0, 0, 0, 0, 0), 99);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(1, 2, 3, 4)), 99u);
  table.Insert(P(10, 0, 0, 0, 8), 1);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(10, 0, 0, 1)), 1u);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(9, 0, 0, 1)), 99u);
}

TEST(RoutingTable, HostRoute) {
  RoutingTable table;
  table.Insert(P(192, 168, 0, 10, 32), 7);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(192, 168, 0, 10)), 7u);
  EXPECT_FALSE(table.Lookup(net::Ipv4Address(192, 168, 0, 11)).has_value());
}

TEST(RoutingTable, InsertReplaces) {
  RoutingTable table;
  table.Insert(P(10, 0, 0, 0, 8), 1);
  table.Insert(P(10, 0, 0, 0, 8), 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.Lookup(net::Ipv4Address(10, 0, 0, 1)), 2u);
}

TEST(RoutingTable, ExactLookupNoFallback) {
  RoutingTable table;
  table.Insert(P(10, 0, 0, 0, 8), 1);
  EXPECT_EQ(table.Exact(P(10, 0, 0, 0, 8)), 1u);
  EXPECT_FALSE(table.Exact(P(10, 0, 0, 0, 16)).has_value());
  EXPECT_FALSE(table.Exact(P(10, 0, 0, 0, 4)).has_value());
}

TEST(RoutingTable, RemoveRestoresShorterMatch) {
  RoutingTable table;
  table.Insert(P(10, 0, 0, 0, 8), 1);
  table.Insert(P(10, 1, 0, 0, 16), 2);
  EXPECT_TRUE(table.Remove(P(10, 1, 0, 0, 16)));
  EXPECT_EQ(table.Lookup(net::Ipv4Address(10, 1, 2, 3)), 1u);
  EXPECT_FALSE(table.Remove(P(10, 1, 0, 0, 16)));  // already gone
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTable, LookupCostGrowsWithDepth) {
  RoutingTable table;
  table.Insert(P(10, 0, 0, 0, 8), 1);
  table.Insert(P(10, 1, 2, 3, 32), 2);
  const auto shallow = table.LookupCost(net::Ipv4Address(11, 0, 0, 0));
  const auto deep = table.LookupCost(net::Ipv4Address(10, 1, 2, 3));
  EXPECT_GT(deep, shallow);
  EXPECT_EQ(deep, 33u);  // root + 32 bits
}

// Property test: the trie must agree with a brute-force reference across
// random route tables and random lookups.
class TrieProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TrieProperty, MatchesLinearScanReference) {
  sim::Rng rng(GetParam());
  RoutingTable table;
  std::vector<std::pair<net::Ipv4Prefix, std::uint32_t>> reference;

  for (int i = 0; i < 300; ++i) {
    const auto addr = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    const int len = static_cast<int>(rng.NextBelow(33));
    const net::Ipv4Prefix prefix(addr, len);
    const auto hop = static_cast<std::uint32_t>(rng.NextBelow(1000));
    table.Insert(prefix, hop);
    // Reference: replace same-prefix entries.
    bool replaced = false;
    for (auto& [p, h] : reference) {
      if (p == prefix) {
        h = hop;
        replaced = true;
        break;
      }
    }
    if (!replaced) reference.emplace_back(prefix, hop);
  }
  EXPECT_EQ(table.size(), reference.size());

  for (int i = 0; i < 2000; ++i) {
    const auto probe = net::Ipv4Address(static_cast<std::uint32_t>(rng()));
    // Brute force longest match.
    int best_len = -1;
    std::uint32_t best_hop = 0;
    for (const auto& [p, h] : reference) {
      if (p.Contains(probe) && p.length() > best_len) {
        best_len = p.length();
        best_hop = h;
      }
    }
    const auto got = table.Lookup(probe);
    if (best_len < 0) {
      EXPECT_FALSE(got.has_value());
    } else {
      ASSERT_TRUE(got.has_value());
      EXPECT_EQ(*got, best_hop);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrieProperty, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(RoutingTable, NodeCountBounded) {
  RoutingTable table;
  for (int i = 0; i < 100; ++i) {
    table.Insert(P(10, 0, static_cast<std::uint8_t>(i), 0, 24), i);
  }
  // Each /24 adds at most 24 nodes; shared prefixes amortise heavily.
  EXPECT_LE(table.node_count(), 1u + 100u * 24u);
  EXPECT_GT(table.node_count(), 24u);
}

}  // namespace
}  // namespace gametrace::router
