#include "router/topology.h"

#include <gtest/gtest.h>

#include "game/config.h"
#include "core/experiment.h"

#include "core/check.h"

namespace gametrace::router {
namespace {

NatDevice::Config QuietHop(double capacity_pps = 10000.0, std::size_t buffers = 256) {
  NatDevice::Config cfg;
  cfg.mean_capacity_pps = capacity_pps;
  cfg.service_jitter = 0.0;
  cfg.lan_buffer = buffers;
  cfg.wan_buffer = buffers;
  cfg.episode_mean_interval = 0.0;
  return cfg;
}

net::PacketRecord MakeRecord(double t, net::Direction dir) {
  net::PacketRecord r;
  r.timestamp = t;
  r.client_ip = net::Ipv4Address(10, 0, 0, 1);
  r.client_port = 27005;
  r.app_bytes = 100;
  r.direction = dir;
  return r;
}

TEST(DeviceChain, Validation) {
  sim::Simulator s;
  EXPECT_THROW(DeviceChain(s, {}), gametrace::ContractViolation);
  DeviceChain::Config negative{.hops = {QuietHop()}, .link_delay = -1.0};
  EXPECT_THROW(DeviceChain(s, negative), gametrace::ContractViolation);
}

TEST(DeviceChain, SingleHopDeliversBothDirections) {
  sim::Simulator s;
  DeviceChain chain(s, {.hops = {QuietHop()}, .link_delay = 0.0});
  chain.Start();
  chain.injector().OnPacket(MakeRecord(0.0, net::Direction::kServerToClient));
  chain.injector().OnPacket(MakeRecord(0.0, net::Direction::kClientToServer));
  s.RunUntil(1.0);
  EXPECT_EQ(chain.end_to_end().delivered_out, 1u);
  EXPECT_EQ(chain.end_to_end().delivered_in, 1u);
  EXPECT_DOUBLE_EQ(chain.end_to_end().loss_rate_out(), 0.0);
}

TEST(DeviceChain, DelayAccumulatesPerHop) {
  // Each quiet hop at 1000 pps adds exactly 1 ms; links add 0.5 ms.
  auto run = [](std::size_t hops) {
    sim::Simulator s;
    DeviceChain::Config cfg;
    for (std::size_t i = 0; i < hops; ++i) {
      cfg.hops.push_back(QuietHop(1000.0));
    }
    cfg.link_delay = 0.0005;
    DeviceChain chain(s, cfg);
    chain.Start();
    chain.injector().OnPacket(MakeRecord(0.0, net::Direction::kServerToClient));
    s.RunUntil(1.0);
    return chain.end_to_end().delay_out.mean();
  };
  EXPECT_NEAR(run(1), 0.001, 1e-9);
  EXPECT_NEAR(run(2), 0.001 * 2 + 0.0005, 1e-9);
  EXPECT_NEAR(run(3), 0.001 * 3 + 0.001, 1e-9);
}

TEST(DeviceChain, DirectionalityOfTraversal) {
  // Outbound traverses hop 0 then hop 1; inbound the reverse. Verify with
  // per-hop counters.
  sim::Simulator s;
  DeviceChain chain(s, {.hops = {QuietHop(), QuietHop()}, .link_delay = 0.0});
  chain.Start();
  chain.injector().OnPacket(MakeRecord(0.0, net::Direction::kClientToServer));
  s.RunUntil(1.0);
  EXPECT_EQ(chain.hop(1).stats().packets(Segment::kClientsToNat), 1u);
  EXPECT_EQ(chain.hop(0).stats().packets(Segment::kClientsToNat), 1u);
  EXPECT_EQ(chain.end_to_end().delivered_in, 1u);
}

TEST(DeviceChain, BottleneckHopDropsBurstTail) {
  sim::Simulator s;
  DeviceChain::Config cfg;
  cfg.hops.push_back(QuietHop());             // fast first hop
  cfg.hops.push_back(QuietHop(1000.0, 4));   // slow, shallow second hop
  cfg.link_delay = 0.0;
  DeviceChain chain(s, cfg);
  chain.Start();
  s.At(0.0, [&] {
    for (int i = 0; i < 12; ++i) {
      chain.injector().OnPacket(MakeRecord(0.0, net::Direction::kServerToClient));
    }
  });
  s.RunUntil(1.0);
  // First hop is fast and deep: no loss there.
  EXPECT_EQ(chain.hop(0).stats().drops(Segment::kServerToNat), 0u);
  // Second hop absorbs 1 + 4 of each burstlet and drops the tail.
  EXPECT_GT(chain.hop(1).stats().drops(Segment::kServerToNat), 0u);
  EXPECT_GT(chain.end_to_end().loss_rate_out(), 0.1);
  EXPECT_LT(chain.end_to_end().delivered_out, 12u);
}

TEST(DeviceChain, GameTrafficThroughThreeAdequateHops) {
  // Three mid-range hops (5 kpps, deep buffers) carry the full game load
  // without loss, but the burst tail pays the per-hop queueing delay.
  sim::Simulator s;
  DeviceChain::Config cfg;
  for (int i = 0; i < 3; ++i) cfg.hops.push_back(QuietHop(5000.0, 128));
  DeviceChain chain(s, cfg);
  auto game = game::GameConfig::ScaledDefaults(60.0);
  game::CsServer server(s, game, chain.injector());
  chain.Start();
  server.Start();
  s.RunUntil(60.0);
  EXPECT_LT(chain.end_to_end().loss_rate_out(), 0.001);
  EXPECT_LT(chain.end_to_end().loss_rate_in(), 0.001);
  EXPECT_GT(chain.end_to_end().delivered_out, 10000u);
  // Mean end-to-end delay: 3 services + 2 links plus queueing.
  EXPECT_GT(chain.end_to_end().delay_out.mean(), 3.0 / 5000.0);
  EXPECT_LT(chain.end_to_end().delay_out.mean(), 0.02);
}

}  // namespace
}  // namespace gametrace::router
