#include "router/device_stats.h"

#include <gtest/gtest.h>

namespace gametrace::router {
namespace {

TEST(DeviceStats, SegmentNames) {
  EXPECT_STREQ(SegmentName(Segment::kServerToNat), "server->NAT");
  EXPECT_STREQ(SegmentName(Segment::kNatToClients), "NAT->clients");
  EXPECT_STREQ(SegmentName(Segment::kClientsToNat), "clients->NAT");
  EXPECT_STREQ(SegmentName(Segment::kNatToServer), "NAT->server");
}

TEST(DeviceStats, CountsPerSegment) {
  DeviceStats stats(1.0);
  stats.Count(Segment::kClientsToNat, 0.5);
  stats.Count(Segment::kClientsToNat, 1.5);
  stats.Count(Segment::kNatToServer, 0.6);
  EXPECT_EQ(stats.packets(Segment::kClientsToNat), 2u);
  EXPECT_EQ(stats.packets(Segment::kNatToServer), 1u);
  EXPECT_EQ(stats.packets(Segment::kServerToNat), 0u);
}

TEST(DeviceStats, LoadSeriesBinsByTime) {
  DeviceStats stats(1.0);
  stats.Count(Segment::kServerToNat, 0.1);
  stats.Count(Segment::kServerToNat, 0.9);
  stats.Count(Segment::kServerToNat, 2.5);
  const auto& series = stats.load_series(Segment::kServerToNat);
  EXPECT_DOUBLE_EQ(series[0], 2.0);
  EXPECT_DOUBLE_EQ(series[2], 1.0);
}

TEST(DeviceStats, LossRatesFromSegmentDifference) {
  DeviceStats stats(1.0);
  for (int i = 0; i < 1000; ++i) stats.Count(Segment::kClientsToNat, 0.0);
  for (int i = 0; i < 987; ++i) stats.Count(Segment::kNatToServer, 0.0);
  for (int i = 0; i < 500; ++i) stats.Count(Segment::kServerToNat, 0.0);
  for (int i = 0; i < 498; ++i) stats.Count(Segment::kNatToClients, 0.0);
  EXPECT_NEAR(stats.loss_rate_incoming(), 0.013, 1e-9);
  EXPECT_NEAR(stats.loss_rate_outgoing(), 0.004, 1e-9);
}

TEST(DeviceStats, LossRateZeroWhenEmpty) {
  DeviceStats stats(1.0);
  EXPECT_DOUBLE_EQ(stats.loss_rate_incoming(), 0.0);
  EXPECT_DOUBLE_EQ(stats.loss_rate_outgoing(), 0.0);
}

TEST(DeviceStats, DropsTracked) {
  DeviceStats stats(1.0);
  stats.CountDrop(Segment::kClientsToNat, 0.0);
  stats.CountDrop(Segment::kClientsToNat, 0.1);
  stats.CountDrop(Segment::kServerToNat, 0.2);
  EXPECT_EQ(stats.drops(Segment::kClientsToNat), 2u);
  EXPECT_EQ(stats.drops(Segment::kServerToNat), 1u);
}

TEST(DeviceStats, AccessorsAreThinReadsOverTheRegistry) {
  DeviceStats stats(1.0);
  stats.Count(Segment::kClientsToNat, 0.5);
  stats.Count(Segment::kClientsToNat, 0.6);
  stats.CountDrop(Segment::kServerToNat, 0.7);
  EXPECT_EQ(stats.metrics().counter_value("nat.clients_to_nat.packets"), 2u);
  EXPECT_EQ(stats.metrics().counter_value("nat.server_to_nat.drops"), 1u);
  EXPECT_EQ(stats.packets(Segment::kClientsToNat),
            stats.metrics().counter_value("nat.clients_to_nat.packets"));
  EXPECT_EQ(stats.drops(Segment::kServerToNat),
            stats.metrics().counter_value("nat.server_to_nat.drops"));
}

TEST(DeviceStats, SegmentSlugs) {
  EXPECT_STREQ(SegmentSlug(Segment::kServerToNat), "server_to_nat");
  EXPECT_STREQ(SegmentSlug(Segment::kNatToClients), "nat_to_clients");
  EXPECT_STREQ(SegmentSlug(Segment::kClientsToNat), "clients_to_nat");
  EXPECT_STREQ(SegmentSlug(Segment::kNatToServer), "nat_to_server");
}

TEST(DeviceStats, CopyRebindsCachedCounters) {
  DeviceStats original(1.0);
  original.Count(Segment::kClientsToNat, 0.1);

  // Copies (result structs return DeviceStats by value) must re-bind the
  // cached counter pointers into their own registry: updating the copy may
  // not bleed into the original, and vice versa.
  DeviceStats copy(original);
  EXPECT_EQ(copy.packets(Segment::kClientsToNat), 1u);
  copy.Count(Segment::kClientsToNat, 0.2);
  copy.Count(Segment::kNatToServer, 0.3);
  EXPECT_EQ(copy.packets(Segment::kClientsToNat), 2u);
  EXPECT_EQ(copy.packets(Segment::kNatToServer), 1u);
  EXPECT_EQ(original.packets(Segment::kClientsToNat), 1u);
  EXPECT_EQ(original.packets(Segment::kNatToServer), 0u);

  DeviceStats assigned(5.0);
  assigned = original;
  assigned.CountDrop(Segment::kClientsToNat, 0.4);
  EXPECT_EQ(assigned.drops(Segment::kClientsToNat), 1u);
  EXPECT_EQ(original.drops(Segment::kClientsToNat), 0u);
}

TEST(DeviceStats, DelayStatistics) {
  DeviceStats stats(1.0);
  for (int i = 1; i <= 100; ++i) stats.RecordDelay(i * 1e-3);
  EXPECT_NEAR(stats.delay().mean(), 0.0505, 1e-6);
  EXPECT_NEAR(stats.delay_p50(), 0.050, 0.005);
  EXPECT_NEAR(stats.delay_p99(), 0.099, 0.005);
  EXPECT_DOUBLE_EQ(stats.delay().max(), 0.1);
}

}  // namespace
}  // namespace gametrace::router
