#include "router/lookup_engine.h"

#include <gtest/gtest.h>

#include "stats/running_stats.h"

#include "core/check.h"

namespace gametrace::router {
namespace {

TEST(LookupEngine, Validation) {
  EXPECT_THROW(LookupEngine(0.0, 0.1, sim::Rng(1)), gametrace::ContractViolation);
  EXPECT_THROW(LookupEngine(1000.0, -0.1, sim::Rng(1)), gametrace::ContractViolation);
  EXPECT_THROW(LookupEngine(1000.0, 1.0, sim::Rng(1)), gametrace::ContractViolation);
}

TEST(LookupEngine, MeanServiceTimeMatchesCapacity) {
  LookupEngine engine(1250.0, 0.25, sim::Rng(2));
  stats::RunningStats s;
  for (int i = 0; i < 100000; ++i) s.Add(engine.DrawServiceTime());
  EXPECT_NEAR(s.mean(), 1.0 / 1250.0, 2e-6);
  EXPECT_DOUBLE_EQ(engine.mean_service_time(), 1.0 / 1250.0);
  EXPECT_DOUBLE_EQ(engine.mean_capacity_pps(), 1250.0);
}

TEST(LookupEngine, JitterBounds) {
  LookupEngine engine(1000.0, 0.25, sim::Rng(3));
  for (int i = 0; i < 10000; ++i) {
    const double t = engine.DrawServiceTime();
    EXPECT_GE(t, 0.75e-3 - 1e-12);
    EXPECT_LE(t, 1.25e-3 + 1e-12);
  }
}

TEST(LookupEngine, ZeroJitterIsDeterministic) {
  LookupEngine engine(2000.0, 0.0, sim::Rng(4));
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(engine.DrawServiceTime(), 5e-4);
}

TEST(LookupEngine, SmcBarricadeRange) {
  // The paper's device: 1000-1500 pps. At 1250 pps a ~19-packet broadcast
  // burst takes ~15 ms to drain - nearly a third of the 50 ms tick.
  LookupEngine engine(1250.0, 0.0, sim::Rng(5));
  double drain = 0.0;
  for (int i = 0; i < 19; ++i) drain += engine.DrawServiceTime();
  EXPECT_NEAR(drain, 0.0152, 0.001);
  EXPECT_GT(drain, 0.25 * 0.050);
}

}  // namespace
}  // namespace gametrace::router
