#include "router/nat_device.h"

#include <gtest/gtest.h>

namespace gametrace::router {
namespace {

net::PacketRecord MakeRecord(double t, net::Direction dir, std::uint16_t bytes = 100,
                             std::uint32_t ip = 0x0A000001, std::uint16_t port = 27005) {
  net::PacketRecord r;
  r.timestamp = t;
  r.client_ip = net::Ipv4Address(ip);
  r.client_port = port;
  r.app_bytes = bytes;
  r.direction = dir;
  return r;
}

NatDevice::Config QuietConfig() {
  NatDevice::Config cfg;
  cfg.episode_mean_interval = 0.0;  // no livelock for deterministic tests
  cfg.service_jitter = 0.0;
  cfg.mean_capacity_pps = 1000.0;  // exactly 1 ms per packet
  return cfg;
}

TEST(NatDevice, ForwardsBothDirections) {
  sim::Simulator s;
  NatDevice nat(s, QuietConfig());
  int to_server = 0;
  int to_clients = 0;
  nat.SetDeliverCallback([&](const net::PacketRecord&, Segment seg) {
    if (seg == Segment::kNatToServer) ++to_server;
    if (seg == Segment::kNatToClients) ++to_clients;
  });
  nat.Start();
  s.At(0.0, [&] { nat.OnArrival(MakeRecord(0.0, net::Direction::kClientToServer)); });
  s.At(0.1, [&] { nat.OnArrival(MakeRecord(0.1, net::Direction::kServerToClient)); });
  s.RunUntil(1.0);
  EXPECT_EQ(to_server, 1);
  EXPECT_EQ(to_clients, 1);
  EXPECT_EQ(nat.stats().packets(Segment::kClientsToNat), 1u);
  EXPECT_EQ(nat.stats().packets(Segment::kNatToServer), 1u);
}

TEST(NatDevice, ServiceTimeDelaysDelivery) {
  sim::Simulator s;
  NatDevice nat(s, QuietConfig());
  double delivered_at = -1.0;
  nat.SetDeliverCallback([&](const net::PacketRecord&, Segment) { delivered_at = s.Now(); });
  nat.Start();
  s.At(0.0, [&] { nat.OnArrival(MakeRecord(0.0, net::Direction::kClientToServer)); });
  s.RunUntil(1.0);
  EXPECT_NEAR(delivered_at, 0.001, 1e-9);  // 1000 pps -> 1 ms
  EXPECT_GT(nat.stats().delay().mean(), 0.0);
}

TEST(NatDevice, QueueDrainsInOrderAtCapacity) {
  sim::Simulator s;
  NatDevice nat(s, QuietConfig());
  std::vector<double> deliveries;
  nat.SetDeliverCallback([&](const net::PacketRecord&, Segment) {
    deliveries.push_back(s.Now());
  });
  nat.Start();
  s.At(0.0, [&] {
    for (int i = 0; i < 5; ++i) nat.OnArrival(MakeRecord(0.0, net::Direction::kServerToClient));
  });
  s.RunUntil(1.0);
  ASSERT_EQ(deliveries.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_NEAR(deliveries[i], (i + 1) * 0.001, 1e-9);
}

TEST(NatDevice, LanBufferOverflowDropsOutgoing) {
  sim::Simulator s;
  NatDevice::Config cfg = QuietConfig();
  cfg.lan_buffer = 4;
  NatDevice nat(s, cfg);
  int losses = 0;
  nat.SetLossCallback([&](const net::PacketRecord&, Segment seg) {
    EXPECT_EQ(seg, Segment::kServerToNat);
    ++losses;
  });
  nat.Start();
  s.At(0.0, [&] {
    // Burst of 10 into buffer 4 (+1 in service): 5 drops.
    for (int i = 0; i < 10; ++i) nat.OnArrival(MakeRecord(0.0, net::Direction::kServerToClient));
  });
  s.RunUntil(1.0);
  EXPECT_EQ(losses, 5);
  EXPECT_EQ(nat.stats().drops(Segment::kServerToNat), 5u);
  EXPECT_EQ(nat.stats().packets(Segment::kNatToClients), 5u);
  EXPECT_NEAR(nat.stats().loss_rate_outgoing(), 0.5, 1e-9);
}

TEST(NatDevice, LanBurstStarvesWanRing) {
  // The paper's asymmetry: a LAN burst monopolises the CPU; WAN arrivals
  // during the drain overflow their shallow ring.
  sim::Simulator s;
  NatDevice::Config cfg = QuietConfig();
  cfg.lan_buffer = 64;
  cfg.wan_buffer = 2;
  NatDevice nat(s, cfg);
  nat.Start();
  s.At(0.0, [&] {
    for (int i = 0; i < 30; ++i) nat.OnArrival(MakeRecord(0.0, net::Direction::kServerToClient));
  });
  // 10 inbound packets arrive while the 30 ms drain is in progress.
  for (int i = 0; i < 10; ++i) {
    s.At(0.001 + i * 0.002, [&, i] {
      nat.OnArrival(MakeRecord(0.001 + i * 0.002, net::Direction::kClientToServer, 40,
                               0x0A000002, static_cast<std::uint16_t>(27000 + i)));
    });
  }
  s.RunUntil(1.0);
  EXPECT_EQ(nat.stats().drops(Segment::kServerToNat), 0u);
  EXPECT_GT(nat.stats().drops(Segment::kClientsToNat), 5u);
  EXPECT_GT(nat.stats().loss_rate_incoming(), nat.stats().loss_rate_outgoing());
}

TEST(NatDevice, NatTableGrowsPerClientEndpoint) {
  sim::Simulator s;
  NatDevice nat(s, QuietConfig());
  nat.Start();
  s.At(0.0, [&] {
    nat.OnArrival(MakeRecord(0.0, net::Direction::kClientToServer, 40, 0x0A000001, 1000));
    nat.OnArrival(MakeRecord(0.0, net::Direction::kClientToServer, 40, 0x0A000001, 1001));
    nat.OnArrival(MakeRecord(0.0, net::Direction::kClientToServer, 40, 0x0A000002, 1000));
    nat.OnArrival(MakeRecord(0.0, net::Direction::kClientToServer, 40, 0x0A000001, 1000));
  });
  s.RunUntil(1.0);
  EXPECT_EQ(nat.nat_table_size(), 3u);  // repeats do not grow the table
}

TEST(NatDevice, OutboundTrafficDoesNotTouchNatTable) {
  sim::Simulator s;
  NatDevice nat(s, QuietConfig());
  nat.Start();
  s.At(0.0, [&] { nat.OnArrival(MakeRecord(0.0, net::Direction::kServerToClient)); });
  s.RunUntil(1.0);
  EXPECT_EQ(nat.nat_table_size(), 0u);
}

TEST(NatDevice, LivelockEpisodeStarvesWanThenRecovers) {
  sim::Simulator s;
  NatDevice::Config cfg = QuietConfig();
  cfg.episode_mean_interval = 1e9;  // scheduled manually below via config
  NatDevice nat(s, cfg);
  nat.Start();
  // No episodes fire in this horizon: all WAN packets forwarded.
  for (int i = 0; i < 50; ++i) {
    s.At(i * 0.01, [&, i] {
      nat.OnArrival(MakeRecord(i * 0.01, net::Direction::kClientToServer, 40, 0x0A000003,
                               static_cast<std::uint16_t>(1000 + i)));
    });
  }
  s.RunUntil(5.0);
  EXPECT_EQ(nat.stats().packets(Segment::kNatToServer), 50u);
  EXPECT_EQ(nat.livelock_episodes(), 0);
}

TEST(NatDevice, LivelockEpisodesHappenWhenEnabled) {
  sim::Simulator s;
  NatDevice::Config cfg = QuietConfig();
  cfg.episode_mean_interval = 5.0;
  NatDevice nat(s, cfg);
  nat.Start();
  s.RunUntil(60.0);
  EXPECT_GT(nat.livelock_episodes(), 3);
}

TEST(NatDevice, WanPacketsSurviveEpisodeIfQueued) {
  // Packets that fit in the WAN ring during an episode are serviced after
  // the episode ends, not lost.
  sim::Simulator s;
  NatDevice::Config cfg = QuietConfig();
  cfg.wan_buffer = 8;
  cfg.episode_mean_interval = 1.0;  // an episode fires quickly...
  cfg.episode_min_duration = 0.5;
  cfg.episode_max_duration = 0.5;
  cfg.episode_full_stall = 0.1;
  NatDevice nat(s, cfg);
  nat.Start();
  // Find the first episode by scheduling arrivals well after t = 0.
  s.At(10.0, [&] {
    for (int i = 0; i < 4; ++i) {
      nat.OnArrival(MakeRecord(10.0, net::Direction::kClientToServer, 40, 0x0A000004,
                               static_cast<std::uint16_t>(2000 + i)));
    }
  });
  s.RunUntil(30.0);
  EXPECT_EQ(nat.stats().packets(Segment::kNatToServer), 4u);
}

TEST(NatDevice, InjectorSchedulesAtRecordTimestamp) {
  sim::Simulator s;
  NatDevice nat(s, QuietConfig());
  nat.Start();
  // Inject at t=0 a record stamped 0.5 s in the future.
  nat.injector().OnPacket(MakeRecord(0.5, net::Direction::kClientToServer));
  EXPECT_EQ(nat.stats().packets(Segment::kClientsToNat), 0u);
  s.RunUntil(0.4);
  EXPECT_EQ(nat.stats().packets(Segment::kClientsToNat), 0u);
  s.RunUntil(1.0);
  EXPECT_EQ(nat.stats().packets(Segment::kClientsToNat), 1u);
}

}  // namespace
}  // namespace gametrace::router
