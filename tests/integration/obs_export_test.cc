// End-to-end observability: run the calibrated server under a bound
// ObsContext and check that (a) the sim-derived counters agree exactly
// with the server's own Stats bookkeeping, and (b) the exported trace is
// valid Chrome trace_event JSON whose spans tell the same story.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/experiment.h"
#include "game/config.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace_log.h"
#include "trace/capture.h"

#include "../obs/json_reader.h"

namespace gametrace {
namespace {

using gametrace::testing::JsonReader;

struct ObservedRun {
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  core::ServerTraceResult result;
};

ObservedRun RunObserved(double duration, bool tick_spans = false) {
  ObservedRun run;
  if (tick_spans) run.trace.SetCategoryEnabled("tick", true);
  const obs::ScopedObsBinding bind(
      {.metrics = &run.metrics, .trace = &run.trace, .shard_id = 0, .heartbeat = false});
  const auto config = game::GameConfig::ScaledDefaults(duration);
  trace::CountingSink sink;
  run.result = core::RunServerTrace(config, sink);
  return run;
}

TEST(ObsExport, CountersAgreeWithServerStats) {
  const auto run = RunObserved(600.0);
  const auto& stats = run.result.stats;
  const auto& m = run.metrics;
  EXPECT_EQ(m.counter_value("server.packets_emitted"), stats.packets_emitted);
  EXPECT_EQ(m.counter_value("server.connections.attempted"), stats.attempts);
  EXPECT_EQ(m.counter_value("server.connections.established"), stats.established);
  EXPECT_EQ(m.counter_value("server.connections.refused"), stats.refused);
  EXPECT_EQ(m.counter_value("server.disconnects.orderly"), stats.orderly_disconnects);
  EXPECT_EQ(m.counter_value("server.disconnects.outage"), stats.outage_disconnects);
  EXPECT_EQ(m.counter_value("server.maps_started"),
            static_cast<std::uint64_t>(stats.maps_played));
  EXPECT_EQ(m.counter_value("server.rounds_started"), stats.rounds_played);
  EXPECT_EQ(m.gauge_value("server.peak_players"), static_cast<double>(stats.peak_players));
  EXPECT_GT(m.counter_value("sim.events_executed"), 0u);
  EXPECT_GT(m.gauge_value("sim.queue.high_water"), 0.0);
}

TEST(ObsExport, TraceJsonRoundTripsThroughAParser) {
  const auto run = RunObserved(600.0);
  const auto doc = JsonReader::Parse(run.trace.ToJson());

  EXPECT_EQ(doc.at("displayTimeUnit").text, "ms");
  EXPECT_EQ(doc.at("otherData").at("dropped_events").number, 0.0);
  const auto& events = doc.at("traceEvents").items;
  ASSERT_FALSE(events.empty());

  std::set<std::string> cats;
  bool saw_run_span = false;
  double prev_ts = -1.0;
  for (const auto& event : events) {
    const std::string& ph = event.at("ph").text;
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C") << "unexpected ph " << ph;
    EXPECT_GE(event.at("ts").number, 0.0);
    EXPECT_GE(event.at("ts").number, prev_ts);  // stable ts-sorted export
    prev_ts = event.at("ts").number;
    cats.insert(event.at("cat").text);
    if (event.at("name").text == "server_trace") {
      saw_run_span = true;
      EXPECT_EQ(ph, "X");
      // The run span covers the simulated window (in microseconds).
      EXPECT_GE(event.at("dur").number, 600.0 * 1e6 * 0.99);
    }
  }
  EXPECT_TRUE(saw_run_span);
  EXPECT_TRUE(cats.count("map")) << "expected map rotation spans";
  EXPECT_TRUE(cats.count("session")) << "expected connect/disconnect instants";
}

TEST(ObsExport, TickSpansAreOptIn) {
  const auto quiet = RunObserved(120.0, /*tick_spans=*/false);
  const auto verbose = RunObserved(120.0, /*tick_spans=*/true);

  auto count_ticks = [](const obs::TraceLog& log) {
    std::size_t n = 0;
    for (const auto& event : log.events()) {
      if (std::string(event.cat) == "tick") ++n;
    }
    return n;
  };
  EXPECT_EQ(count_ticks(quiet.trace), 0u);
  // 120 s at a 50 ms tick: one span per tick.
  EXPECT_EQ(count_ticks(verbose.trace), verbose.result.stats.ticks);
  EXPECT_GT(verbose.result.stats.ticks, 0u);
}

TEST(ObsExport, MetricsJsonRoundTripsThroughAParser) {
  const auto run = RunObserved(300.0);
  const auto doc = JsonReader::Parse(run.metrics.ToJson());
  EXPECT_EQ(doc.at("counters").at("server.packets_emitted").number,
            static_cast<double>(run.result.stats.packets_emitted));
  EXPECT_EQ(doc.at("gauges").at("server.peak_players").at("merge").text, "max");
}

}  // namespace
}  // namespace gametrace
