// End-to-end reproduction checks: run the simulated server, push the trace
// through every analysis stage, and assert the paper's qualitative results
// hold at reduced scale.
#include <gtest/gtest.h>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "game/config.h"
#include "net/units.h"
#include "stats/autocorrelation.h"

namespace gametrace {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    // One hour of simulated traffic: two map rotations, thousands of ticks,
    // dozens of sessions.
    auto cfg = game::GameConfig::ScaledDefaults(3600.0);
    auto characterizer = std::make_unique<core::Characterizer>();
    auto run = core::RunServerTrace(cfg, *characterizer);
    report_ = new core::CharacterizationReport(characterizer->Finish(3600.0));
    stats_ = new game::CsServer::Stats(run.stats);
    players_ = new stats::TimeSeries(run.players);
  }
  static void TearDownTestSuite() {
    delete report_;
    delete stats_;
    delete players_;
  }

  static core::CharacterizationReport* report_;
  static game::CsServer::Stats* stats_;
  static stats::TimeSeries* players_;
};

core::CharacterizationReport* PipelineTest::report_ = nullptr;
game::CsServer::Stats* PipelineTest::stats_ = nullptr;
stats::TimeSeries* PipelineTest::players_ = nullptr;

// --- Tables II/III shape -------------------------------------------------

TEST_F(PipelineTest, MorePacketsInThanOutButMoreBytesOut) {
  const auto& s = report_->summary;
  EXPECT_GT(s.packets_in(), s.packets_out());
  EXPECT_GT(s.wire_bytes_out(), s.wire_bytes_in());
  EXPECT_GT(s.app_bytes_out(), 2 * s.app_bytes_in());
}

TEST_F(PipelineTest, MeanSizesMatchPaper) {
  EXPECT_NEAR(report_->summary.mean_packet_size_in(), 39.72, 2.0);
  EXPECT_NEAR(report_->summary.mean_packet_size_out(), 129.51, 12.0);
  EXPECT_NEAR(report_->summary.mean_packet_size(), 80.33, 10.0);
}

TEST_F(PipelineTest, AggregateLoadNearPaper) {
  EXPECT_NEAR(report_->summary.mean_packet_load(), 798.0, 120.0);
  EXPECT_NEAR(net::Kbps(report_->summary.mean_bandwidth_bps()), 850.0, 130.0);
}

TEST_F(PipelineTest, PerPlayerBandwidthSaturatesModem) {
  // "the bandwidth consumed per player is on average 40 kbps".
  const double per_player_kbps =
      net::Kbps(report_->summary.mean_bandwidth_bps()) / players_->Mean();
  EXPECT_GT(per_player_kbps, 35.0);
  EXPECT_LT(per_player_kbps, 56.0);
}

// --- Figure 5 ------------------------------------------------------------

TEST_F(PipelineTest, VarianceTimePlotHasThePaperThreeRegionShape) {
  EXPECT_LT(report_->hurst.small_scale, 0.45);  // periodic, anti-persistent
  EXPECT_GT(report_->hurst.mid_scale, 0.70);    // map changes keep variance
}

// --- Figures 6-8 ---------------------------------------------------------

TEST_F(PipelineTest, TenMillisecondSeriesShowsFiftyMsBursts) {
  const auto& base = report_->vt_base_packets;
  ASSERT_GE(base.size(), 2000u);
  std::vector<double> window(base.values().begin() + 1000, base.values().begin() + 2000);
  EXPECT_EQ(stats::DominantPeriod(window, 20), 5u);  // 5 bins = 50 ms
}

TEST_F(PipelineTest, FiftyMsAggregationSmoothsBursts) {
  const auto& base = report_->vt_base_packets;
  const auto at50 = base.Aggregate(5);  // 10 ms -> 50 ms
  // Peak-to-mean drops sharply once bins align with the tick.
  const double ratio10 = base.Max() / base.Mean();
  const double ratio50 = at50.Max() / at50.Mean();
  EXPECT_LT(ratio50, ratio10 * 0.6);
}

// --- Figure 11 -----------------------------------------------------------

TEST_F(PipelineTest, ClientBandwidthHistogramPegsAtModemRates) {
  const auto& hist = report_->session_bandwidth;
  ASSERT_GT(hist.total(), 20u);
  // Mode below 56 kbps.
  EXPECT_LT(hist.bin_center(hist.ModeBin()), 56000.0);
  // Some sessions exceed the modem barrier (broadband/l337), but few.
  const double above56k = 1.0 - hist.Cdf()[static_cast<std::size_t>(
                                    56000.0 / hist.bin_width())];
  EXPECT_LT(above56k, 0.25);
}

// --- Table I analogue ----------------------------------------------------

TEST_F(PipelineTest, SessionChurnProportions) {
  EXPECT_GT(stats_->established, 50u);
  EXPECT_GT(stats_->refused, 0u);
  EXPECT_EQ(stats_->attempts, stats_->established + stats_->refused);
  // Regulars reconnect: sessions exceed unique clients.
  EXPECT_GE(stats_->established, stats_->unique_establishing);
  EXPECT_EQ(stats_->maps_played, 2);  // two 30-min maps in the hour
}

TEST_F(PipelineTest, SessionTrackerAgreesWithGroundTruth) {
  // Timeout-based reconstruction can split a session across an idle spell,
  // so it may slightly overcount - but not undercount - ground truth.
  EXPECT_GE(report_->sessions.size() + 5, stats_->established);
  EXPECT_LE(report_->sessions.size(), stats_->established + stats_->refused);
}

TEST_F(PipelineTest, PlayerSeriesBounded) {
  EXPECT_LE(players_->Max(), 22.0);
  EXPECT_GT(players_->Mean(), 12.0);
  EXPECT_LE(players_->Mean(), 22.0);
}

}  // namespace
}  // namespace gametrace
