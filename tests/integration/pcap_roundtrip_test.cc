// Cross-format equivalence: the same simulated traffic analysed live, via
// the compact .gtr format, and via a real pcap file must yield identical
// statistics - the capture substrate cannot colour the analysis.
#include <unistd.h>

#include <filesystem>
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "game/config.h"
#include "net/pcap.h"
#include "trace/summary.h"
#include "trace/trace_format.h"

namespace gametrace {
namespace {

class RoundTripTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto base = std::filesystem::temp_directory_path() /
                      ("gametrace_rt_" + std::to_string(::getpid()) + "_" +
                       ::testing::UnitTest::GetInstance()->current_test_info()->name());
    gtr_path_ = base.string() + ".gtr";
    pcap_path_ = base.string() + ".pcap";
  }
  void TearDown() override {
    std::filesystem::remove(gtr_path_);
    std::filesystem::remove(pcap_path_);
  }

  std::string gtr_path_;
  std::string pcap_path_;
};

TEST_F(RoundTripTest, GtrRoundTripPreservesSummary) {
  auto cfg = game::GameConfig::ScaledDefaults(60.0);
  trace::TraceSummary live;
  trace::TraceWriter writer(gtr_path_, cfg.server);
  {
    trace::CaptureSink* sinks[] = {&live, &writer};
    core::RunServerTrace(cfg, sinks);
    writer.Flush();
  }

  trace::TraceReader reader(gtr_path_);
  trace::TraceSummary replayed;
  reader.Drain(replayed);

  EXPECT_EQ(replayed.total_packets(), live.total_packets());
  EXPECT_EQ(replayed.packets_in(), live.packets_in());
  EXPECT_EQ(replayed.app_bytes_total(), live.app_bytes_total());
  EXPECT_DOUBLE_EQ(replayed.mean_packet_size_in(), live.mean_packet_size_in());
  EXPECT_EQ(replayed.attempted_connections(), live.attempted_connections());
  EXPECT_EQ(replayed.established_connections(), live.established_connections());
}

TEST_F(RoundTripTest, PcapRoundTripPreservesSizesAndDirections) {
  auto cfg = game::GameConfig::ScaledDefaults(20.0);
  trace::TraceSummary live;
  net::PcapWriter writer(pcap_path_);
  trace::CallbackSink pcap_sink(
      [&](const net::PacketRecord& r) { writer.WriteRecord(r, cfg.server); });
  {
    trace::CaptureSink* sinks[] = {&live, &pcap_sink};
    core::RunServerTrace(cfg, sinks);
    writer.Flush();
  }

  net::PcapReader reader(pcap_path_);
  std::uint64_t skipped = 0;
  const auto records = reader.ReadAllRecords(cfg.server, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(records.size(), live.total_packets());

  trace::TraceSummary replayed;
  for (const auto& r : records) replayed.OnPacket(r);
  EXPECT_EQ(replayed.packets_in(), live.packets_in());
  EXPECT_EQ(replayed.packets_out(), live.packets_out());
  EXPECT_EQ(replayed.app_bytes_total(), live.app_bytes_total());
  // Pcap timestamps are quantised to 1 us; sizes must be byte-exact.
  EXPECT_DOUBLE_EQ(replayed.mean_packet_size_out(), live.mean_packet_size_out());
}

TEST_F(RoundTripTest, PcapFramesCarryValidChecksums) {
  auto cfg = game::GameConfig::ScaledDefaults(5.0);
  net::PcapWriter writer(pcap_path_);
  trace::CallbackSink pcap_sink(
      [&](const net::PacketRecord& r) { writer.WriteRecord(r, cfg.server); });
  core::RunServerTrace(cfg, pcap_sink);
  writer.Flush();

  net::PcapReader reader(pcap_path_);
  std::uint64_t checked = 0;
  while (auto pkt = reader.Next()) {
    net::ParsedUdpFrame parsed;
    ASSERT_TRUE(net::ParseUdpFrame(pkt->frame, parsed));
    ASSERT_TRUE(parsed.ip_checksum_ok);
    ASSERT_TRUE(parsed.udp_checksum_ok);
    ++checked;
  }
  EXPECT_GT(checked, 3000u);  // ~800 pps for 5 simulated seconds
}

}  // namespace
}  // namespace gametrace
