// Black-box integration: a GT_CHECK violation mid-simulation leaves a
// parseable flight_dump.json carrying the latest snapshot, and an injected
// NAT overload raises the Table-IV meltdown alert on the sampling grid.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/experiment.h"
#include "game/config.h"
#include "net/packet.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace_log.h"
#include "obs/watchdog.h"
#include "trace/capture.h"

#include "core/check.h"

#include "../obs/json_reader.h"

namespace gametrace {
namespace {

using gametrace::testing::JsonReader;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot read " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Trips a contract once the simulated clock crosses `trip_at` - the stand-in
// for any mid-run invariant failure deep inside a consumer.
class TrippingSink final : public trace::CaptureSink {
 public:
  explicit TrippingSink(double trip_at) : trip_at_(trip_at) {}
  void OnPacket(const net::PacketRecord& record) override {
    GT_CHECK(record.timestamp < trip_at_)
        << "synthetic black-box trip at t=" << record.timestamp;
  }

 private:
  double trip_at_;
};

// The satellite acceptance test: install the black-box guard, trip a
// GT_CHECK mid-simulation, and the dump file exists, parses, and carries
// the most recent flight snapshot.
TEST(FlightBlackbox, ContractViolationMidSimLeavesAParseableDump) {
  const std::string path = ::testing::TempDir() + "blackbox/flight_dump.json";
  std::remove(path.c_str());

  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  obs::FlightRecorder recorder(obs::FlightRecorder::Options{.sample_period_seconds = 60.0});
  const obs::ScopedObsBinding bind(
      {.metrics = &metrics, .trace = &trace, .recorder = &recorder, .heartbeat = false});
  const obs::ScopedFlightDump guard(path);

  // The sink trips at t = 70, after the t = 60 snapshot has been recorded.
  const auto config = game::GameConfig::ScaledDefaults(300.0);
  TrippingSink sink(70.0);
  EXPECT_THROW(core::RunServerTrace(config, sink), ContractViolation);

  ASSERT_FALSE(recorder.empty());
  EXPECT_EQ(recorder.latest().t_seconds, 60.0);

  const auto doc = JsonReader::Parse(ReadFile(path));
  EXPECT_EQ(doc.at("reason").text, "contract_violation");
  EXPECT_NE(doc.at("failure").at("message").text.find("synthetic black-box trip"),
            std::string::npos);
  EXPECT_GT(doc.at("failure").at("line").number, 0.0);

  // The dump's newest snapshot is the recorder's latest, metrics included.
  const auto& snapshots = doc.at("snapshots").items;
  ASSERT_FALSE(snapshots.empty());
  const auto& last = snapshots.back();
  EXPECT_EQ(last.at("t").number, 60.0);
  EXPECT_EQ(last.at("seq").number,
            static_cast<double>(recorder.sequence_of(recorder.size() - 1)));
  EXPECT_EQ(last.at("metrics").at("counters").at("server.packets_emitted").number,
            static_cast<double>(
                recorder.latest().metrics.counter_value("server.packets_emitted")));

  // The sim-time trace tail made it into the box alongside the snapshots.
  EXPECT_FALSE(doc.at("trace_tail").items.empty());
}

// The other satellite acceptance test: an injected NAT overload run emits
// the meltdown alert at the expected sim-time (the first sampling point,
// since the offered load is above threshold from the start).
TEST(FlightBlackbox, NatOverloadRaisesTheMeltdownAlertOnSchedule) {
  obs::MetricsRegistry metrics;
  obs::TraceLog trace;
  obs::FlightRecorder recorder(obs::FlightRecorder::Options{.sample_period_seconds = 60.0});
  obs::WatchdogEngine watchdog(obs::WatchdogEngine::BuiltinRules());
  const obs::ScopedObsBinding bind({.metrics = &metrics,
                                    .trace = &trace,
                                    .recorder = &recorder,
                                    .watchdog = &watchdog,
                                    .heartbeat = false});

  // The paper's Table-IV setup offers ~920 pps into the device - beyond
  // the ~850 pps meltdown threshold from the first minute on.
  auto config = core::NatExperimentConfig::Defaults();
  config.duration = 120.0;
  config.game.trace_duration = 120.0;
  config.game.maps.map_duration = 180.0;  // one uninterrupted map
  (void)core::RunNatExperiment(config);

  ASSERT_EQ(recorder.size(), 2u);  // t = 60 and t = 120
  EXPECT_GT(recorder.latest().metrics.counter_value("nat.device.packets"), 0u);

  const auto& alerts = watchdog.alerts();
  const obs::Alert* meltdown = nullptr;
  for (const auto& alert : alerts) {
    if (alert.rule == "nat.meltdown") {
      meltdown = &alert;
      break;
    }
  }
  ASSERT_NE(meltdown, nullptr) << "overload run must trip the meltdown rule";
  EXPECT_EQ(meltdown->t_seconds, 60.0);  // first snapshot of the overload
  EXPECT_GT(meltdown->value, 850.0);
  EXPECT_EQ(meltdown->threshold, 850.0);

  // Live CatchUp during the run already saw everything; a final CatchUp
  // adds nothing (the cursor contract).
  const std::size_t before = alerts.size();
  watchdog.CatchUp(recorder);
  EXPECT_EQ(watchdog.alerts().size(), before);
}

}  // namespace
}  // namespace gametrace
