// Property sweeps across device capacity: loss must fall monotonically (to
// tolerance) as lookup capacity rises, and vanish once bursts fit - the
// provisioning knob the whole paper is about.
#include <gtest/gtest.h>

#include "core/experiment.h"
#include "router/device_stats.h"

namespace gametrace {
namespace {

core::NatExperimentResult RunAtCapacity(double capacity_pps, std::size_t buffers) {
  auto cfg = core::NatExperimentConfig::Defaults();
  cfg.duration = 180.0;
  cfg.game.trace_duration = 180.0;
  cfg.game.maps.map_duration = 240.0;
  cfg.device.mean_capacity_pps = capacity_pps;
  cfg.device.lan_buffer = buffers;
  cfg.device.wan_buffer = buffers;
  cfg.device.episode_mean_interval = 0.0;  // isolate pure queueing loss
  return core::RunNatExperiment(cfg);
}

TEST(CapacitySweep, LossFallsMonotonicallyWithCapacity) {
  double previous = 1.0;
  for (const double capacity : {600.0, 900.0, 1400.0, 4000.0}) {
    const auto result = RunAtCapacity(capacity, 24);
    const double loss = result.device.loss_rate_incoming();
    EXPECT_LE(loss, previous + 0.01) << "capacity " << capacity;
    previous = loss;
  }
}

TEST(CapacitySweep, UndersizedDeviceLosesHeavily) {
  const auto result = RunAtCapacity(500.0, 24);
  // Offered ~850 pps against 500 pps of lookup: heavy sustained loss.
  EXPECT_GT(result.device.loss_rate_incoming(), 0.2);
}

TEST(CapacitySweep, AmpleDeviceIsClean) {
  const auto result = RunAtCapacity(20000.0, 64);
  EXPECT_LT(result.device.loss_rate_incoming(), 1e-4);
  EXPECT_LT(result.device.loss_rate_outgoing(), 1e-4);
  // And fast: bursts drain in well under a tick.
  EXPECT_LT(result.device.delay_p99(), 0.005);
}

TEST(CapacitySweep, DelayFallsWithCapacity) {
  const auto slow = RunAtCapacity(1400.0, 64);
  const auto fast = RunAtCapacity(8000.0, 64);
  EXPECT_GT(slow.device.delay().mean(), 3.0 * fast.device.delay().mean());
}

class BufferSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BufferSweep, DeeperBuffersTradeLossForDelay) {
  const std::size_t buffers = GetParam();
  const auto result = RunAtCapacity(1100.0, buffers);
  const auto deep = RunAtCapacity(1100.0, buffers * 8);
  // Deeper buffers: strictly less loss, more (or equal) queueing delay.
  EXPECT_LE(deep.device.loss_rate_outgoing(), result.device.loss_rate_outgoing() + 1e-6);
  EXPECT_GE(deep.device.delay_p99() + 1e-4, result.device.delay_p99());
}

INSTANTIATE_TEST_SUITE_P(Buffers, BufferSweep, ::testing::Values(4, 8, 16));

}  // namespace
}  // namespace gametrace
