#include "web/web_traffic.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "trace/summary.h"

#include "core/check.h"

namespace gametrace::web {
namespace {

WebConfig FastConfig() {
  WebConfig cfg;
  cfg.flow_arrival_rate = 2.0;
  cfg.mean_transfer_bytes = 50e3;
  cfg.seed = 5;
  return cfg;
}

TEST(WebTraffic, Validation) {
  sim::Simulator s;
  trace::CountingSink sink;
  WebConfig bad = FastConfig();
  bad.flow_arrival_rate = 0.0;
  EXPECT_THROW(WebTrafficSource(s, bad, sink), gametrace::ContractViolation);
  bad = FastConfig();
  bad.pareto_alpha = 1.0;
  EXPECT_THROW(WebTrafficSource(s, bad, sink), gametrace::ContractViolation);
  bad = FastConfig();
  bad.initial_window = 0;
  EXPECT_THROW(WebTrafficSource(s, bad, sink), gametrace::ContractViolation);
  bad = FastConfig();
  bad.ack_every = 0;
  EXPECT_THROW(WebTrafficSource(s, bad, sink), gametrace::ContractViolation);
}

TEST(WebTraffic, FlowsArriveAtConfiguredRate) {
  sim::Simulator s;
  trace::CountingSink sink;
  WebTrafficSource web(s, FastConfig(), sink);
  web.Start();
  s.RunUntil(1000.0);
  // Poisson(2/s * 1000 s) = 2000 +/- ~140.
  EXPECT_NEAR(static_cast<double>(web.flows_started()), 2000.0, 200.0);
  EXPECT_GT(web.flows_completed(), web.flows_started() * 9 / 10);
}

TEST(WebTraffic, SegmentsAreMssSizedAndAcksSmall) {
  sim::Simulator s;
  trace::VectorSink sink;
  WebTrafficSource web(s, FastConfig(), sink);
  web.Start();
  s.RunUntil(200.0);
  ASSERT_GT(sink.records().size(), 100u);
  for (const auto& r : sink.records()) {
    if (r.kind == net::PacketKind::kWebData) {
      EXPECT_EQ(r.app_bytes, 1460);
      EXPECT_EQ(r.direction, net::Direction::kClientToServer);
      EXPECT_GT(r.seq, 0u);
    } else {
      ASSERT_EQ(r.kind, net::PacketKind::kWebAck);
      EXPECT_EQ(r.app_bytes, 40);
      EXPECT_EQ(r.direction, net::Direction::kServerToClient);
    }
  }
}

TEST(WebTraffic, DelayedAckRatio) {
  sim::Simulator s;
  trace::CountingSink sink;
  WebTrafficSource web(s, FastConfig(), sink);
  web.Start();
  s.RunUntil(500.0);
  // One ack per two data segments (plus an occasional final odd ack).
  const double ratio =
      static_cast<double>(web.data_packets()) / static_cast<double>(web.ack_packets());
  EXPECT_GT(ratio, 1.6);
  EXPECT_LT(ratio, 2.1);
}

TEST(WebTraffic, MeanPacketSizeMatchesBulkTransferProfile) {
  // The paper's contrast: "average packet sizes of most bi-directional TCP
  // connections will exceed those for games" - here by an order of
  // magnitude on the data path.
  sim::Simulator s;
  trace::TraceSummary summary;
  WebTrafficSource web(s, FastConfig(), summary);
  web.Start();
  s.RunUntil(500.0);
  // Bidirectional mean: (1460 * 2 + 40) / 3 ~ 990 B.
  EXPECT_GT(summary.mean_packet_size(), 700.0);
  EXPECT_GT(summary.mean_packet_size_in(), 10.0 * 129.5);  // data vs game out
}

TEST(WebTraffic, SlowStartDoublesPerRttWindow) {
  // Large flows with near-deterministic size: the first flow's data
  // segments arrive in per-RTT bursts of 2, 4, 8, ... up to the window cap.
  sim::Simulator s;
  trace::VectorSink sink;
  WebConfig cfg = FastConfig();
  cfg.flow_arrival_rate = 100.0;  // the first flow starts within ~10 ms
  cfg.mean_transfer_bytes = 2e6;
  cfg.pareto_alpha = 50.0;  // tight around the mean
  cfg.max_transfer_bytes = 2e6;
  cfg.rtt = 0.100;
  WebTrafficSource web(s, cfg, sink);
  web.Start();
  s.RunUntil(0.9);  // several RTTs of the first flow
  ASSERT_GT(web.flows_started(), 0u);

  // Take the first flow (earliest data packet's endpoint) and bucket its
  // segments by RTT round.
  const auto& records = sink.records();
  const auto first_data =
      std::find_if(records.begin(), records.end(), [](const net::PacketRecord& r) {
        return r.kind == net::PacketKind::kWebData;
      });
  ASSERT_NE(first_data, records.end());
  const auto flow_ip = first_data->client_ip;
  const auto flow_port = first_data->client_port;
  const double t0 = first_data->timestamp;
  std::vector<int> per_round(5, 0);
  for (const auto& r : records) {
    if (r.kind != net::PacketKind::kWebData || r.client_ip != flow_ip ||
        r.client_port != flow_port) {
      continue;
    }
    const auto round = static_cast<std::size_t>((r.timestamp - t0 + 0.02) / cfg.rtt);
    if (round < per_round.size()) ++per_round[round];
  }
  EXPECT_EQ(per_round[0], 2);
  EXPECT_EQ(per_round[1], 4);
  EXPECT_EQ(per_round[2], 8);
  EXPECT_EQ(per_round[3], 16);
  EXPECT_EQ(per_round[4], 32);  // capped at max_window
}

TEST(WebTraffic, HeavyTailRespectsTruncation) {
  sim::Simulator s;
  trace::CountingSink sink;
  WebConfig cfg = FastConfig();
  cfg.max_transfer_bytes = 100e3;
  WebTrafficSource web(s, cfg, sink);
  web.Start();
  s.RunUntil(2000.0);
  // No flow exceeds the cap: bytes per completed flow bounded.
  EXPECT_LE(web.data_bytes(),
            (web.flows_started()) * static_cast<std::uint64_t>(cfg.max_transfer_bytes + 1460));
}

}  // namespace
}  // namespace gametrace::web
