// Client profiles and identities.
//
// A profile fixes a client's network class (modem / broadband / "l337") and
// update rate; an identity is a stable IP drawn from the community pool so
// the same simulated person reconnecting is recognisable in the trace.
#pragma once

#include <cstdint>

#include "game/config.h"
#include "net/ip.h"
#include "sim/rng.h"

namespace gametrace::game {

struct ClientProfile {
  ClientClass cls = ClientClass::kModem;
  double update_rate = 24.3;   // client -> server packets per second
  int snapshots_per_tick = 1;  // server -> client packets per 50 ms tick
};

// Draws a profile from the configured population mix. The update rate is
// itself random per client (different machines, different fps).
[[nodiscard]] ClientProfile DrawProfile(const ClientMixConfig& mix, sim::Rng& rng);

// Stable IP for pool identity `index`: a deterministic, collision-free
// mapping into 10.0.0.0/8 (bit-reversed so consecutive identities do not
// share prefixes - matters for the route-cache ablation).
[[nodiscard]] net::Ipv4Address IdentityIp(std::size_t index) noexcept;

// ---------------------------------------------------------------------------
// Fleet IP-namespace packing.
//
// IdentityIp bit-reverses the pool index into the 24-bit host part of
// 10/8, so a population of P identities only occupies the top
// ceil(log2(P)) host bits - the low 24 - ceil(log2(P)) bits of every
// identity address are zero. The fleet exploits the unused low bits to
// pack far more than the 246 per-octet server namespaces: server s maps
// its clients through an additive shift of
//     ((s % 246) << 24) | (s / 246)
// which lands shard s in top octet 10 + (s % 246) at low-bit offset
// s / 246. Two servers collide only if they share both coordinates, so
// with the default 9000-identity pool (14 index bits, 10 free low bits)
// 246 * 1024 = 251,904 servers coexist with provably disjoint client
// address spaces - the property that makes per-shard analyses exactly
// mergeable.
// ---------------------------------------------------------------------------

// Bits of the 24-bit host space a pool of `population` identities
// occupies: the smallest b with 2^b >= population (0 for population <= 1).
[[nodiscard]] int IdentityIndexBits(std::size_t population) noexcept;

// Largest fleet whose per-server client namespaces stay pairwise disjoint
// at this population: 246 << (24 - IdentityIndexBits(population)).
[[nodiscard]] std::size_t MaxDisjointServers(std::size_t population) noexcept;

// The additive IP shift for server `server_id` of a fleet whose servers
// each draw from `population` identities. GT_CHECKs that the id fits the
// namespace (server_id < MaxDisjointServers(population)) and that the
// population fits the 24-bit host space. Feed the result to
// trace::ShardNamespaceSink's explicit-shift constructor. Ids <= 245
// produce exactly the classic per-octet shift (server_id << 24).
[[nodiscard]] std::uint32_t ShardIpShift(std::uint32_t server_id, std::size_t population);

// Random ephemeral source port for a new session.
[[nodiscard]] std::uint16_t DrawEphemeralPort(sim::Rng& rng) noexcept;

// Gap until the client's next update packet: 1/rate with multiplicative
// jitter of +/- mix.send_jitter (clients run off their own frame clock).
[[nodiscard]] double NextSendGap(const ClientProfile& profile, double jitter,
                                 sim::Rng& rng) noexcept;

// State of a connected client, owned by CsServer.
struct ActiveClient {
  std::uint64_t session_id = 0;
  std::size_t identity = 0;
  net::Ipv4Address ip;
  std::uint16_t port = 0;
  ClientProfile profile;
  double joined_at = 0.0;
  double next_send = 0.0;  // absolute time of the next inbound update
  // Netchannel sequence counters (next value to assign, starting at 1).
  std::uint32_t seq_in = 1;   // client -> server channel
  std::uint32_t seq_out = 1;  // server -> client channel
  // Downstream wire bytes accumulated since the last per-minute sample;
  // the minute sampler turns this into one kbps observation in the
  // "client.bandwidth.kbps" sketch and resets it.
  std::uint64_t window_bytes_down = 0;
};

}  // namespace gametrace::game
