// Client profiles and identities.
//
// A profile fixes a client's network class (modem / broadband / "l337") and
// update rate; an identity is a stable IP drawn from the community pool so
// the same simulated person reconnecting is recognisable in the trace.
#pragma once

#include <cstdint>

#include "game/config.h"
#include "net/ip.h"
#include "sim/rng.h"

namespace gametrace::game {

struct ClientProfile {
  ClientClass cls = ClientClass::kModem;
  double update_rate = 24.3;   // client -> server packets per second
  int snapshots_per_tick = 1;  // server -> client packets per 50 ms tick
};

// Draws a profile from the configured population mix. The update rate is
// itself random per client (different machines, different fps).
[[nodiscard]] ClientProfile DrawProfile(const ClientMixConfig& mix, sim::Rng& rng);

// Stable IP for pool identity `index`: a deterministic, collision-free
// mapping into 10.0.0.0/8 (bit-reversed so consecutive identities do not
// share prefixes - matters for the route-cache ablation).
[[nodiscard]] net::Ipv4Address IdentityIp(std::size_t index) noexcept;

// Random ephemeral source port for a new session.
[[nodiscard]] std::uint16_t DrawEphemeralPort(sim::Rng& rng) noexcept;

// Gap until the client's next update packet: 1/rate with multiplicative
// jitter of +/- mix.send_jitter (clients run off their own frame clock).
[[nodiscard]] double NextSendGap(const ClientProfile& profile, double jitter,
                                 sim::Rng& rng) noexcept;

// State of a connected client, owned by CsServer.
struct ActiveClient {
  std::uint64_t session_id = 0;
  std::size_t identity = 0;
  net::Ipv4Address ip;
  std::uint16_t port = 0;
  ClientProfile profile;
  double joined_at = 0.0;
  double next_send = 0.0;  // absolute time of the next inbound update
  // Netchannel sequence counters (next value to assign, starting at 1).
  std::uint32_t seq_in = 1;   // client -> server channel
  std::uint32_t seq_out = 1;  // server -> client channel
};

}  // namespace gametrace::game
