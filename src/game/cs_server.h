// The simulated Counter-Strike server: ties the tick engine, session churn,
// map rotation, downloads and outages together and emits the packet stream
// a tcpdump next to the real server would have captured.
//
// Timestamps emitted within one 50 ms tick may be mildly out of order
// across traffic classes (the tick handler pre-dates client sends inside
// the tick window); all library sinks bin or track by timestamp, so this
// is harmless, but consumers requiring strict ordering should re-sort
// within a 1-tick horizon (the NAT injector in router/nat_device.h does
// exactly that via event scheduling).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "game/client.h"
#include "game/config.h"
#include "game/download.h"
#include "game/map_rotation.h"
#include "game/outage.h"
#include "game/packet_size_model.h"
#include "game/server_tick.h"
#include "game/session_model.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/time_series.h"
#include "trace/capture.h"

namespace gametrace::game {

// Observer for server-side (game-log) events. Default implementations are
// no-ops so listeners override only what they need.
class ServerEventListener {
 public:
  virtual ~ServerEventListener() = default;
  virtual void OnConnect(double /*t*/, const ActiveClient& /*client*/) {}
  virtual void OnRefuse(double /*t*/, net::Ipv4Address /*ip*/, std::uint16_t /*port*/) {}
  virtual void OnDisconnect(double /*t*/, const ActiveClient& /*client*/, bool /*orderly*/) {}
  virtual void OnMapStart(double /*t*/, int /*map_number*/) {}
  virtual void OnOutage(double /*t*/, bool /*begin*/) {}
};

class CsServer {
 public:
  // Ground truth the packet trace cannot see directly (server-log style).
  struct Stats {
    std::uint64_t attempts = 0;
    std::uint64_t established = 0;
    std::uint64_t refused = 0;
    std::uint64_t orderly_disconnects = 0;
    std::uint64_t outage_disconnects = 0;
    std::uint64_t unique_attempting = 0;
    std::uint64_t unique_establishing = 0;
    int maps_played = 0;
    std::uint64_t rounds_played = 0;
    int peak_players = 0;
    std::uint64_t ticks = 0;
    std::uint64_t packets_emitted = 0;
    // On-the-wire bytes (headers included) across all emitted packets -
    // the numerator of the paper's per-client bandwidth figures.
    std::uint64_t wire_bytes_emitted = 0;
    std::uint64_t downloads_started = 0;
  };

  // `sink` receives every emitted packet and must outlive the server.
  CsServer(sim::Simulator& simulator, GameConfig config, trace::CaptureSink& sink);

  CsServer(const CsServer&) = delete;
  CsServer& operator=(const CsServer&) = delete;

  // Schedules all activity starting at the current simulation time.
  void Start();

  // Convenience: Start() then run the simulator to config().trace_duration.
  void Run();

  [[nodiscard]] const GameConfig& config() const noexcept { return config_; }
  [[nodiscard]] int active_players() const noexcept { return static_cast<int>(clients_.size()); }
  [[nodiscard]] Stats stats() const;

  // Player count sampled once per minute (paper Figure 3).
  [[nodiscard]] const stats::TimeSeries& player_series() const noexcept { return players_; }

  // Freezes the server's outbound broadcast for `seconds` from now, without
  // stopping client sends - the game-freeze feedback the NAT experiment
  // exhibits when inbound updates are lost (paper section IV-A).
  void InduceStall(double seconds);

  // Disconnects the session currently using this client endpoint (a player
  // quitting - the QoE self-tuning path). Returns false if no such player
  // is connected.
  bool DisconnectByEndpoint(net::Ipv4Address ip, std::uint16_t port, bool orderly = true);

  // Registers a game-log observer; borrowed, must outlive the server.
  void AddListener(ServerEventListener& listener) { listeners_.push_back(&listener); }

 private:
  void OnTick(double t);
  void HandleAttempt(std::size_t identity, bool is_retry);
  void Depart(std::uint64_t session_id, bool orderly);
  void OnOutageBegin(double t);
  void OnOutageEnd(double t);
  void OnMapStart(double t);
  void Emit(double t, net::Direction direction, net::PacketKind kind, std::uint16_t bytes,
            net::Ipv4Address ip, std::uint16_t port, std::uint32_t seq = 0);

  sim::Simulator* simulator_;
  GameConfig config_;
  trace::CaptureSink* sink_;
  sim::Rng rng_;
  PacketSizeModel size_model_;
  TickEngine tick_engine_;
  TickEngine minute_sampler_;
  MapRotation map_rotation_;
  std::unique_ptr<SessionModel> session_model_;
  std::unique_ptr<DownloadManager> downloads_;
  OutageSchedule outages_;

  std::vector<ActiveClient> clients_;
  // All packets emitted within one tick are buffered here column-wise and
  // handed to the sink as a single OnColumns call (see the delivery-tier
  // contract in trace/capture.h): the stream is born columnar, so sinks
  // with columnar kernels never see an AoS record at all. Handshake and
  // download traffic outside the tick handler stays per-packet. Capacity is
  // reused across ticks.
  net::ColumnarBatch tick_batch_;
  bool batching_ = false;
  // Packets emitted by the current tick, flushed into the load ring as one
  // bulk Add at the tick timestamp (see OnTick) - under kSum reduction the
  // bin sums match per-packet adds while costing one ring walk per tick.
  std::uint64_t tick_ring_count_ = 0;
  std::vector<ServerEventListener*> listeners_;
  std::unordered_set<std::uint64_t> live_sessions_;
  std::unordered_map<std::size_t, int> retry_counts_;
  std::unordered_set<std::size_t> attempted_ids_;
  std::unordered_set<std::size_t> established_ids_;
  stats::TimeSeries players_;
  std::uint64_t next_session_id_ = 1;
  double stall_until_ = 0.0;
  bool started_ = false;

  std::uint64_t attempts_ = 0;
  std::uint64_t established_count_ = 0;
  std::uint64_t refused_ = 0;
  std::uint64_t orderly_disconnects_ = 0;
  std::uint64_t outage_disconnects_ = 0;
  int peak_players_ = 0;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t wire_bytes_emitted_ = 0;

  // Ambient observability, captured from obs::Current() at construction.
  // All-null outside a binding; counters mirror the Stats fields above
  // (sim-derived, so they participate in the deterministic shard merge),
  // the trace log receives the map/outage/session span taxonomy.
  struct Observability {
    obs::TraceLog* trace = nullptr;
    obs::Counter* packets_emitted = nullptr;
    obs::Counter* bytes_emitted = nullptr;
    // Downstream (server->client) wire bytes only: the last-mile traffic
    // the per-client saturation SLO rule compares against a modem.
    obs::Counter* bytes_to_clients = nullptr;
    // Current connected-player level (kSum: fleet shards add up to the
    // fleet-wide population). Feeds the per-client bandwidth SLO rule.
    obs::Gauge* active_players = nullptr;
    obs::Counter* attempts = nullptr;
    obs::Counter* established = nullptr;
    obs::Counter* refused = nullptr;
    obs::Counter* orderly_disconnects = nullptr;
    obs::Counter* outage_disconnects = nullptr;
    obs::Counter* maps_started = nullptr;
    obs::Counter* rounds_started = nullptr;
    obs::Gauge* peak_players = nullptr;
    // Per-client downstream kbps, one observation per client per minute -
    // the tail (p99 vs the 56k modem) companion to bytes_to_clients.
    stats::QuantileSketch* client_kbps = nullptr;
    // Emitted packets per tick bin at tiered resolutions, with an online
    // Hurst estimator riding the base tier - the streaming, bounded-memory
    // version of the paper's load series (Figs 4-5).
    stats::TieredRing* load_ring = nullptr;
  };
  Observability obs_;
  double outage_began_at_ = -1.0;
  double map_began_at_ = -1.0;
  int current_map_ = 0;
};

}  // namespace gametrace::game
