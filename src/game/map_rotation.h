// Map rotation and round structure.
//
// Every ~30 minutes the server loads a new map and goes quiet for several
// seconds ("this down time is due completely to the server doing local
// tasks"); those stalls are the source of the mid-scale variance in the
// paper's Figure 5 and the periodic dips in Figure 9. Rounds subdivide a
// map and modulate client activity slightly (buy time).
#pragma once

#include <cstdint>
#include <functional>

#include "game/config.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace gametrace::game {

class MapRotation {
 public:
  struct Callbacks {
    std::function<void(double)> on_stall_begin;  // map change starts
    std::function<void(double)> on_map_start;    // new map is live
    std::function<void(double)> on_round_start;  // next round begins (not the map's first)
  };

  MapRotation(sim::Simulator& simulator, const MapConfig& config, sim::Rng rng);

  void SetCallbacks(Callbacks callbacks) { callbacks_ = std::move(callbacks); }

  // Starts the first map at the current simulation time.
  void Start();

  // True while the server is switching maps (no traffic either way).
  [[nodiscard]] bool stalled() const noexcept { return stalled_; }

  // Inbound activity multiplier: < 1 during the buy-time seconds at the
  // start of each round, 1 otherwise.
  [[nodiscard]] double activity_factor() const noexcept;

  [[nodiscard]] int maps_played() const noexcept { return maps_played_; }
  [[nodiscard]] std::uint64_t rounds_played() const noexcept { return rounds_played_; }

 private:
  void BeginMap();
  void BeginStall();
  void ScheduleNextRound();

  sim::Simulator* simulator_;
  MapConfig config_;
  sim::Rng rng_;
  Callbacks callbacks_;
  bool stalled_ = false;
  bool started_ = false;
  // Round events carry the epoch they were scheduled in; a map change
  // bumps the epoch so stale round chains from the previous map die off.
  std::uint64_t map_epoch_ = 0;
  int maps_played_ = 0;
  std::uint64_t rounds_played_ = 0;
  double round_started_at_ = 0.0;
};

}  // namespace gametrace::game
