// The synchronous broadcast clock.
//
// "The periodicity comes from the game server deterministically flooding
// its clients with state updates about every 50 ms" (paper section III-B).
// TickEngine is the reusable fixed-interval scheduler behind that loop.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/simulator.h"

namespace gametrace::game {

class TickEngine {
 public:
  using TickFn = std::function<void(double tick_time)>;

  // `fn` is invoked at first_at, first_at + interval, ... until Stop().
  TickEngine(sim::Simulator& simulator, double interval, TickFn fn);

  TickEngine(const TickEngine&) = delete;
  TickEngine& operator=(const TickEngine&) = delete;

  void Start(double first_at);
  void Stop();

  [[nodiscard]] bool running() const noexcept { return running_; }
  [[nodiscard]] double interval() const noexcept { return interval_; }
  [[nodiscard]] std::uint64_t ticks_fired() const noexcept { return ticks_; }

 private:
  sim::Simulator* simulator_;
  double interval_;
  TickFn fn_;
  bool running_ = false;
  std::uint64_t ticks_ = 0;
  std::uint64_t pending_event_ = 0;
};

}  // namespace gametrace::game
