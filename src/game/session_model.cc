#include "game/session_model.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/check.h"

namespace gametrace::game {

SessionModel::SessionModel(sim::Simulator& simulator, const SessionConfig& config,
                           const sim::DiurnalCurve& diurnal, sim::Rng rng,
                           AttemptHandler handler)
    : simulator_(&simulator),
      config_(config),
      diurnal_(&diurnal),
      rng_(rng),
      handler_(std::move(handler)),
      zipf_(config.population, config.zipf_s),
      // Event rate = attempt rate / mean batch size; thinning envelope at
      // 1.5x covers diurnal curves peaking up to that multiplier.
      max_rate_(config.fresh_attempt_rate / (1.0 + config.group_mean_extra) * 1.5) {
  GT_CHECK(handler_) << "SessionModel: empty attempt handler";
  GT_CHECK(config.fresh_attempt_rate > 0.0) << "SessionModel: attempt rate must be positive";
}

void SessionModel::Start() { ScheduleNextArrival(); }

void SessionModel::ScheduleNextArrival() {
  const double gap = sim::Exponential(rng_, 1.0 / max_rate_);
  simulator_->After(gap, [this] {
    // Thinning for the non-homogeneous rate; rejected candidates are just
    // skipped. Paused (outage) periods also generate no attempts.
    const double event_rate = config_.fresh_attempt_rate /
                              (1.0 + config_.group_mean_extra) *
                              diurnal_->At(simulator_->Now());
    const bool accept = !paused_ && rng_.NextDouble() < event_rate / max_rate_;
    if (accept) {
      // A group of friends shows up together.
      const std::uint64_t batch = 1 + sim::Poisson(rng_, config_.group_mean_extra);
      for (std::uint64_t i = 0; i < batch; ++i) {
        ++fresh_arrivals_;
        handler_(zipf_.Sample(rng_), /*is_retry=*/false);
      }
    }
    ScheduleNextArrival();
  });
}

double SessionModel::DrawSessionDuration(sim::Rng& rng) const {
  const double draw =
      sim::LognormalFromMoments(rng, config_.mean_duration, config_.duration_stddev);
  return std::max(config_.min_duration, draw);
}

bool SessionModel::MaybeScheduleRetry(std::size_t identity, int retries_so_far) {
  if (retries_so_far >= config_.max_retries) return false;
  if (!sim::Bernoulli(rng_, config_.retry_probability)) return false;
  const double delay = sim::Exponential(rng_, config_.retry_mean_delay);
  ScheduleAttempt(identity, delay, /*is_retry=*/true);
  return true;
}

std::size_t SessionModel::SampleIdentity() { return zipf_.Sample(rng_); }

void SessionModel::ScheduleAttempt(std::size_t identity, double delay, bool is_retry) {
  if (is_retry) ++retries_;
  simulator_->After(delay, [this, identity, is_retry] {
    if (paused_) return;  // the outage swallowed this attempt
    handler_(identity, is_retry);
  });
}

}  // namespace gametrace::game
