// HLDS-style server log writer and parser.
//
// The paper offers "the trace and associated game log file" as the release
// artifact; this module produces the log side: timestamped connect /
// disconnect / map-change lines in the classic Half-Life dedicated-server
// format, plus a parser that reconstructs Table I statistics from the log
// alone (the cross-check the paper's authors had between tcpdump and HLDS
// logs).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "game/cs_server.h"

namespace gametrace::game {

// Converts seconds-from-trace-start to the trace's wall-clock:
// "Thu Apr 11 08:55:04 2002" + t, formatted "MM/DD/YYYY - HH:MM:SS".
[[nodiscard]] std::string LogTimestamp(double t_seconds);

// Writes one log line per server event to the supplied stream (borrowed;
// must outlive the writer). Attach with CsServer::AddListener.
class GameLogWriter final : public ServerEventListener {
 public:
  explicit GameLogWriter(std::ostream& out);

  void OnConnect(double t, const ActiveClient& client) override;
  void OnRefuse(double t, net::Ipv4Address ip, std::uint16_t port) override;
  void OnDisconnect(double t, const ActiveClient& client, bool orderly) override;
  void OnMapStart(double t, int map_number) override;
  void OnOutage(double t, bool begin) override;

  [[nodiscard]] std::uint64_t lines_written() const noexcept { return lines_; }

 private:
  void Line(double t, const std::string& text);

  std::ostream* out_;
  std::uint64_t lines_ = 0;
};

// The classic rotation the server cycles through.
[[nodiscard]] const std::vector<std::string>& ClassicMapRotation();

// Statistics reconstructed from a log stream.
struct GameLogSummary {
  std::uint64_t connects = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t timeouts = 0;  // non-orderly ("timed out") disconnects
  std::uint64_t refusals = 0;
  int maps_started = 0;
  int outages = 0;
  int max_concurrent = 0;   // running connect-disconnect balance peak
  std::uint64_t lines = 0;
  std::uint64_t unparsed = 0;
};

// Parses a log produced by GameLogWriter (tolerant of unknown lines, which
// are counted in `unparsed`).
[[nodiscard]] GameLogSummary ParseGameLog(std::istream& in);

}  // namespace gametrace::game
