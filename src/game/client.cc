#include "game/client.h"

#include <algorithm>

#include "sim/random.h"

namespace gametrace::game {

ClientProfile DrawProfile(const ClientMixConfig& mix, sim::Rng& rng) {
  ClientProfile profile;
  const double u = rng.NextDouble();
  double mean = mix.modem_rate_mean;
  double stddev = mix.modem_rate_stddev;
  if (u < mix.l337_fraction) {
    profile.cls = ClientClass::kL337;
    profile.snapshots_per_tick = std::max(1, mix.l337_snapshots_per_tick);
    mean = mix.l337_rate_mean;
    stddev = mix.l337_rate_stddev;
  } else if (u < mix.l337_fraction + mix.broadband_fraction) {
    profile.cls = ClientClass::kBroadband;
    mean = mix.broadband_rate_mean;
    stddev = mix.broadband_rate_stddev;
  }
  profile.update_rate = std::max(5.0, sim::Normal(rng, mean, stddev));
  return profile;
}

net::Ipv4Address IdentityIp(std::size_t index) noexcept {
  // Bit-reverse the low 24 bits of the index into the host part of 10/8.
  std::uint32_t host = static_cast<std::uint32_t>(index) & 0x00ffffffu;
  std::uint32_t reversed = 0;
  for (int i = 0; i < 24; ++i) {
    reversed = (reversed << 1) | (host & 1u);
    host >>= 1;
  }
  return net::Ipv4Address((10u << 24) | reversed);
}

std::uint16_t DrawEphemeralPort(sim::Rng& rng) noexcept {
  return static_cast<std::uint16_t>(1024 + rng.NextBelow(64511));
}

double NextSendGap(const ClientProfile& profile, double jitter, sim::Rng& rng) noexcept {
  const double base = 1.0 / profile.update_rate;
  const double factor = 1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
  return base * std::max(0.05, factor);
}

}  // namespace gametrace::game
