#include "game/client.h"

#include <algorithm>

#include "sim/random.h"

#include "core/check.h"

namespace gametrace::game {

ClientProfile DrawProfile(const ClientMixConfig& mix, sim::Rng& rng) {
  ClientProfile profile;
  const double u = rng.NextDouble();
  double mean = mix.modem_rate_mean;
  double stddev = mix.modem_rate_stddev;
  if (u < mix.l337_fraction) {
    profile.cls = ClientClass::kL337;
    profile.snapshots_per_tick = std::max(1, mix.l337_snapshots_per_tick);
    mean = mix.l337_rate_mean;
    stddev = mix.l337_rate_stddev;
  } else if (u < mix.l337_fraction + mix.broadband_fraction) {
    profile.cls = ClientClass::kBroadband;
    mean = mix.broadband_rate_mean;
    stddev = mix.broadband_rate_stddev;
  }
  profile.update_rate = std::max(5.0, sim::Normal(rng, mean, stddev));
  return profile;
}

int IdentityIndexBits(std::size_t population) noexcept {
  int bits = 0;
  while (bits < 24 && (std::size_t{1} << bits) < population) ++bits;
  return bits;
}

std::size_t MaxDisjointServers(std::size_t population) noexcept {
  return std::size_t{246} << (24 - IdentityIndexBits(population));
}

std::uint32_t ShardIpShift(std::uint32_t server_id, std::size_t population) {
  GT_CHECK_LE(population, std::size_t{1} << 24)
      << "ShardIpShift: identity pool exceeds the 24-bit host space";
  GT_CHECK_LT(server_id, MaxDisjointServers(population))
      << "ShardIpShift: server id does not fit the namespace at population " << population;
  const std::uint32_t octet = server_id % 246u;
  const std::uint32_t sub = server_id / 246u;
  return (octet << 24) | sub;
}

net::Ipv4Address IdentityIp(std::size_t index) noexcept {
  // Bit-reverse the low 24 bits of the index into the host part of 10/8.
  std::uint32_t host = static_cast<std::uint32_t>(index) & 0x00ffffffu;
  std::uint32_t reversed = 0;
  for (int i = 0; i < 24; ++i) {
    reversed = (reversed << 1) | (host & 1u);
    host >>= 1;
  }
  return net::Ipv4Address((10u << 24) | reversed);
}

std::uint16_t DrawEphemeralPort(sim::Rng& rng) noexcept {
  return static_cast<std::uint16_t>(1024 + rng.NextBelow(64511));
}

double NextSendGap(const ClientProfile& profile, double jitter, sim::Rng& rng) noexcept {
  const double base = 1.0 / profile.update_rate;
  const double factor = 1.0 + jitter * (2.0 * rng.NextDouble() - 1.0);
  return base * std::max(0.05, factor);
}

}  // namespace gametrace::game
