// Scheduled network outages.
//
// The paper's trace includes three brief outages (Apr 12/14/17): all players
// were disconnected "at identical points in time", some reconnected
// immediately, many returned only minutes later via server rediscovery.
#pragma once

#include <functional>
#include <vector>

#include "game/config.h"
#include "sim/simulator.h"

namespace gametrace::game {

class OutageSchedule {
 public:
  struct Callbacks {
    std::function<void(double)> on_begin;
    std::function<void(double)> on_end;
  };

  OutageSchedule(sim::Simulator& simulator, const OutageConfig& config, Callbacks callbacks);

  // Registers outage events for every configured time inside
  // [now, trace_end).
  void Start(double trace_end);

  [[nodiscard]] bool active() const noexcept { return active_; }
  [[nodiscard]] int outages_begun() const noexcept { return begun_; }
  [[nodiscard]] const OutageConfig& config() const noexcept { return config_; }

 private:
  sim::Simulator* simulator_;
  OutageConfig config_;
  Callbacks callbacks_;
  bool active_ = false;
  int begun_ = 0;
};

}  // namespace gametrace::game
