#include "game/outage.h"

#include <utility>

namespace gametrace::game {

OutageSchedule::OutageSchedule(sim::Simulator& simulator, const OutageConfig& config,
                               Callbacks callbacks)
    : simulator_(&simulator), config_(config), callbacks_(std::move(callbacks)) {}

void OutageSchedule::Start(double trace_end) {
  for (const double t : config_.times) {
    if (t < simulator_->Now() || t >= trace_end) continue;
    simulator_->At(t, [this] {
      active_ = true;
      ++begun_;
      if (callbacks_.on_begin) callbacks_.on_begin(simulator_->Now());
      simulator_->After(config_.duration, [this] {
        active_ = false;
        if (callbacks_.on_end) callbacks_.on_end(simulator_->Now());
      });
    });
  }
}

}  // namespace gametrace::game
