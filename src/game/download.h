// Rate-limited map/logo downloads.
//
// "These downloads are rate-limited at the server" (paper section II): each
// transfer streams fixed-size chunks at the configured bit rate until the
// drawn transfer size is exhausted or the recipient leaves.
#pragma once

#include <cstdint>
#include <functional>

#include "game/config.h"
#include "net/ip.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace gametrace::game {

class DownloadManager {
 public:
  // Emits one download chunk: (time implied by simulator clock, payload
  // bytes, recipient). The emitter owns packet-record construction.
  using ChunkEmitter =
      std::function<void(std::uint16_t bytes, net::Ipv4Address ip, std::uint16_t port)>;
  // Queried before each chunk so transfers die with their session.
  using SessionAlive = std::function<bool(std::uint64_t session_id)>;

  DownloadManager(sim::Simulator& simulator, const DownloadConfig& config, sim::Rng rng,
                  ChunkEmitter emit, SessionAlive alive);

  // Rolls the join-time download dice for a new session.
  void OnJoin(std::uint64_t session_id, net::Ipv4Address ip, std::uint16_t port);

  // Rolls the map-change dice for an already-connected session.
  void OnMapChange(std::uint64_t session_id, net::Ipv4Address ip, std::uint16_t port);

  [[nodiscard]] std::uint64_t transfers_started() const noexcept { return started_; }
  [[nodiscard]] std::uint64_t chunks_sent() const noexcept { return chunks_; }
  [[nodiscard]] std::uint64_t bytes_sent() const noexcept { return bytes_; }

 private:
  void StartTransfer(std::uint64_t session_id, net::Ipv4Address ip, std::uint16_t port);
  void SendChunk(std::uint64_t session_id, net::Ipv4Address ip, std::uint16_t port,
                 double remaining_bytes);

  sim::Simulator* simulator_;
  DownloadConfig config_;
  sim::Rng rng_;
  ChunkEmitter emit_;
  SessionAlive alive_;
  std::uint64_t started_ = 0;
  std::uint64_t chunks_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace gametrace::game
