#include "game/packet_size_model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "sim/random.h"

#include "core/check.h"

namespace gametrace::game {

namespace {

std::uint16_t ClampRound(double x, std::uint16_t lo, std::uint16_t hi) noexcept {
  const double rounded = std::round(x);
  if (rounded <= static_cast<double>(lo)) return lo;
  if (rounded >= static_cast<double>(hi)) return hi;
  return static_cast<std::uint16_t>(rounded);
}

}  // namespace

PacketSizeModel::PacketSizeModel(const SizeConfig& config) : config_(config) {
  GT_CHECK(config.inbound_min <= config.inbound_max && config.outbound_min <= config.outbound_max)
      << "PacketSizeModel: min exceeds max";
}

std::uint16_t PacketSizeModel::InboundUpdate(sim::Rng& rng) const {
  const double draw = sim::Normal(rng, config_.inbound_mean, config_.inbound_stddev);
  return ClampRound(draw, config_.inbound_min, config_.inbound_max);
}

std::uint16_t PacketSizeModel::OutboundUpdate(sim::Rng& rng, int connected_players) const {
  const double mean =
      config_.outbound_base + config_.outbound_per_player * static_cast<double>(connected_players);
  const double draw = sim::Normal(rng, mean, config_.outbound_stddev);
  return ClampRound(draw, config_.outbound_min, config_.outbound_max);
}

std::uint16_t PacketSizeModel::ChatPayload(sim::Rng& rng) const {
  const double draw = sim::Normal(rng, config_.chat_mean, config_.chat_stddev);
  return ClampRound(draw, config_.outbound_min, config_.chat_max);
}

bool PacketSizeModel::DrawChatSubstitution(sim::Rng& rng) const {
  return sim::Bernoulli(rng, config_.chat_probability);
}

std::uint16_t PacketSizeModel::HandshakeSize(net::PacketKind kind, sim::Rng& rng) const {
  std::uint16_t base = 0;
  switch (kind) {
    case net::PacketKind::kConnectRequest:
      base = config_.connect_request;
      break;
    case net::PacketKind::kConnectAccept:
      base = config_.connect_accept;
      break;
    case net::PacketKind::kConnectReject:
      base = config_.connect_reject;
      break;
    case net::PacketKind::kDisconnect:
      base = config_.disconnect;
      break;
    default:
      GT_CHECK(false) << "PacketSizeModel::HandshakeSize: kind " << static_cast<int>(kind)
                      << " is not a control packet";
      break;
  }
  // +/- 4 bytes of jitter (player-name lengths etc.).
  const auto jitter = static_cast<int>(rng.NextBelow(9)) - 4;
  const int value = std::max(8, static_cast<int>(base) + jitter);
  return static_cast<std::uint16_t>(value);
}

}  // namespace gametrace::game
