#include "game/download.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "sim/random.h"

#include "core/check.h"

namespace gametrace::game {

DownloadManager::DownloadManager(sim::Simulator& simulator, const DownloadConfig& config,
                                 sim::Rng rng, ChunkEmitter emit, SessionAlive alive)
    : simulator_(&simulator),
      config_(config),
      rng_(rng),
      emit_(std::move(emit)),
      alive_(std::move(alive)) {
  GT_CHECK(emit_ && alive_) << "DownloadManager: missing callback";
}

void DownloadManager::OnJoin(std::uint64_t session_id, net::Ipv4Address ip, std::uint16_t port) {
  if (sim::Bernoulli(rng_, config_.join_probability)) StartTransfer(session_id, ip, port);
}

void DownloadManager::OnMapChange(std::uint64_t session_id, net::Ipv4Address ip,
                                  std::uint16_t port) {
  if (sim::Bernoulli(rng_, config_.map_change_probability)) StartTransfer(session_id, ip, port);
}

void DownloadManager::StartTransfer(std::uint64_t session_id, net::Ipv4Address ip,
                                    std::uint16_t port) {
  ++started_;
  const double size = std::max(
      config_.min_bytes, sim::LognormalFromMoments(rng_, config_.mean_bytes, config_.stddev_bytes));
  SendChunk(session_id, ip, port, size);
}

void DownloadManager::SendChunk(std::uint64_t session_id, net::Ipv4Address ip,
                                std::uint16_t port, double remaining_bytes) {
  if (remaining_bytes <= 0.0 || !alive_(session_id)) return;
  const double chunk =
      std::min(remaining_bytes, sim::Uniform(rng_, config_.chunk_min, config_.chunk_max));
  const auto payload = static_cast<std::uint16_t>(std::max(1.0, chunk));
  ++chunks_;
  bytes_ += payload;
  emit_(payload, ip, port);
  // The rate limiter spaces chunks so the flow averages rate_limit_bps.
  const double gap = static_cast<double>(payload) * 8.0 / config_.rate_limit_bps;
  simulator_->After(gap, [this, session_id, ip, port, rest = remaining_bytes - chunk] {
    SendChunk(session_id, ip, port, rest);
  });
}

}  // namespace gametrace::game
