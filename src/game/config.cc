#include "game/config.h"

#include <stdexcept>

#include "core/check.h"

namespace gametrace::game {

GameConfig GameConfig::PaperDefaults() {
  GameConfig cfg;
  cfg.diurnal = sim::DiurnalCurve::BusyServerDefault();
  // The trace started "Thu Apr 11 08:55:04": t = 0 is 08:55 local, so
  // scaled (shorter) runs sample daytime hours, not the overnight trough.
  cfg.diurnal.set_phase_offset(8.0 * 3600.0 + 55.0 * 60.0);
  // The paper's outages fell on April 12, 14 and 17 of an April 11-18 trace:
  // roughly 1.1, 3.4 and 6.2 days in.
  cfg.outages.times = {1.1 * 86400.0, 3.4 * 86400.0, 6.2 * 86400.0};
  return cfg;
}

GameConfig GameConfig::ScaledDefaults(double duration_seconds) {
  GT_CHECK(duration_seconds > 0.0) << "GameConfig::ScaledDefaults: duration must be positive";
  GameConfig cfg = PaperDefaults();
  const double scale = duration_seconds / cfg.trace_duration;
  for (auto& t : cfg.outages.times) t *= scale;
  // Drop outages that would land inside the first map (short runs would be
  // dominated by the reconnect transient otherwise).
  std::erase_if(cfg.outages.times,
                [&](double t) { return t < cfg.maps.map_duration || t >= duration_seconds; });
  cfg.trace_duration = duration_seconds;
  return cfg;
}

}  // namespace gametrace::game
