// All tunables of the Counter-Strike workload model, with defaults
// calibrated to the paper's published aggregates (DESIGN.md section 3).
#pragma once

#include <cstdint>
#include <vector>

#include "net/packet.h"
#include "sim/diurnal.h"

namespace gametrace::game {

// Application-payload size model parameters (paper Table III, Figs 12-13).
struct SizeConfig {
  // Inbound (client -> server) updates: a narrow distribution centred on
  // 40 B (paper: mean 39.72 B, "almost all incoming packets < 60 bytes").
  double inbound_mean = 40.0;
  double inbound_stddev = 4.5;
  std::uint16_t inbound_min = 20;
  std::uint16_t inbound_max = 80;

  // Outbound (server -> client) state updates grow with the number of
  // connected players; with the calibrated session model averaging ~18
  // players this yields the paper's 129.5 B outbound mean and the wide
  // 0-300 B spread of Figure 12(b).
  double outbound_base = 20.0;
  double outbound_per_player = 5.85;
  double outbound_stddev = 28.0;
  std::uint16_t outbound_min = 16;
  std::uint16_t outbound_max = 480;

  // Occasionally a text/voice chat payload replaces a plain update.
  double chat_probability = 0.002;
  double chat_mean = 140.0;
  double chat_stddev = 60.0;
  std::uint16_t chat_max = 400;

  // Handshake / control packet sizes (bytes of application payload).
  std::uint16_t connect_request = 44;
  std::uint16_t connect_accept = 96;
  std::uint16_t connect_reject = 32;
  std::uint16_t disconnect = 24;
};

enum class ClientClass : std::uint8_t { kModem, kBroadband, kL337 };

// Client population mix (paper Fig 11: the overwhelming majority pegged at
// modem rates; "only a handful of 'l337' players" above the 56 kbps line).
struct ClientMixConfig {
  double broadband_fraction = 0.04;
  double l337_fraction = 0.012;  // remainder are modem players

  // Client -> server update rate (packets/sec). Calibrated so the mean
  // inbound load is ~24.3 pps per player (437 pps / ~18 players, Table II).
  double modem_rate_mean = 24.3;
  double modem_rate_stddev = 1.8;
  double broadband_rate_mean = 30.0;
  double broadband_rate_stddev = 2.5;
  double l337_rate_mean = 60.0;
  double l337_rate_stddev = 5.0;

  // "l337" clients crank cl_updaterate: the server sends them several
  // snapshots per 50 ms tick instead of one.
  int l337_snapshots_per_tick = 3;

  // Fractional jitter on the client inter-send gap (clients are paced by
  // their own frame rate, not by the server clock).
  double send_jitter = 0.25;
};

// Session arrival/departure model (paper Table I).
struct SessionConfig {
  // Fresh (non-retry) connection attempts per second before diurnal
  // modulation. With ~703 s mean sessions against 22 slots this keeps the
  // server hovering near capacity (~18 players on average) and produces the
  // paper's attempt/established/refused proportions.
  double fresh_attempt_rate = 0.0315;

  // Players often arrive in groups (friends/clan-mates joining together):
  // each arrival event brings 1 + Poisson(group_mean_extra) attempts. The
  // event rate is derated so the mean attempt rate stays
  // fresh_attempt_rate; grouping concentrates attempts, producing the
  // full-server refusal episodes of Table I without long-range daily
  // swings (which would break the paper's H ~ 1/2 above 30 min, Fig 5).
  double group_mean_extra = 0.7;

  double mean_duration = 715.0;   // "connected ... approximately 15 minutes"
  double duration_stddev = 850.0;  // heavy-ish tail (lognormal)
  double min_duration = 30.0;

  // Client-identity pool: a Zipf-popular community (regulars average ~3
  // sessions for the week; paper: 16,030 sessions / 5,886 unique clients).
  std::size_t population = 9000;
  double zipf_s = 0.45;

  // Players already in the game when the capture begins ("after a brief
  // warm-up period, we recorded the traffic").
  int initial_players = 19;

  // A refused client may retry while the server is still full.
  double retry_probability = 0.60;
  double retry_mean_delay = 45.0;
  int max_retries = 4;
};

// Map rotation and round structure (paper section II: ~30 min maps, rounds
// of several minutes; map changeover stalls traffic for seconds).
struct MapConfig {
  double map_duration = 1800.0;
  double changeover_stall_mean = 12.0;
  double changeover_stall_jitter = 4.0;
  double round_mean_duration = 170.0;
  double round_min_duration = 45.0;
  double buy_time = 6.0;             // low-activity seconds at round start
  double buy_time_activity = 0.80;   // inbound thinning factor during buy time
};

// Rate-limited custom logo / map downloads (paper section II).
struct DownloadConfig {
  double join_probability = 0.20;        // new joiner fetches decals
  double map_change_probability = 0.02;  // per connected client per map change
  double mean_bytes = 12e3;
  double stddev_bytes = 16e3;
  double min_bytes = 2e3;
  double rate_limit_bps = 24000.0;  // server-side limiter
  double chunk_min = 350.0;
  double chunk_max = 500.0;
};

// Brief network outages (the trace includes three, on Apr 12/14/17).
struct OutageConfig {
  std::vector<double> times;  // seconds from trace start
  double duration = 8.0;
  // After an outage "some of the players, having recorded the server's IP
  // address, immediately reconnected; a significant number did not".
  double immediate_reconnect_fraction = 0.35;
  double delayed_reconnect_fraction = 0.40;
  double delayed_reconnect_mean = 240.0;  // server rediscovery time
};

struct GameConfig {
  net::ServerEndpoint server;
  int max_players = 22;
  double tick_interval = 0.050;  // the 50 ms synchronous broadcast
  // Ablation knob: 0 = synchronous broadcast (paper behaviour); 1 = each
  // client's update uniformly spread across the tick (desynchronised).
  double broadcast_spread = 0.0;
  double server_link_bps = 100e6;  // paces packets within a broadcast burst
  double trace_duration = 626477.0;
  std::uint64_t seed = 42;

  SizeConfig sizes;
  ClientMixConfig clients;
  SessionConfig sessions;
  MapConfig maps;
  DownloadConfig downloads;
  OutageConfig outages;
  sim::DiurnalCurve diurnal;

  // The full-week configuration reproducing the paper's trace.
  [[nodiscard]] static GameConfig PaperDefaults();

  // Same mechanisms, shorter wall-clock: trace_duration set to
  // `duration_seconds` and the three outages placed proportionally within
  // it. Every *rate* and *shape* parameter is untouched, so all per-second
  // and per-packet statistics are preserved; only totals scale.
  [[nodiscard]] static GameConfig ScaledDefaults(double duration_seconds);
};

}  // namespace gametrace::game
