#include "game/map_rotation.h"

#include <algorithm>

#include "sim/random.h"

namespace gametrace::game {

MapRotation::MapRotation(sim::Simulator& simulator, const MapConfig& config, sim::Rng rng)
    : simulator_(&simulator), config_(config), rng_(rng) {}

void MapRotation::Start() {
  if (started_) return;
  started_ = true;
  BeginMap();
}

void MapRotation::BeginMap() {
  stalled_ = false;
  ++map_epoch_;
  ++maps_played_;
  if (callbacks_.on_map_start) callbacks_.on_map_start(simulator_->Now());
  round_started_at_ = simulator_->Now();
  ScheduleNextRound();
  simulator_->After(config_.map_duration, [this] { BeginStall(); });
}

void MapRotation::BeginStall() {
  stalled_ = true;
  if (callbacks_.on_stall_begin) callbacks_.on_stall_begin(simulator_->Now());
  const double stall =
      std::max(1.0, config_.changeover_stall_mean +
                        sim::Uniform(rng_, -config_.changeover_stall_jitter,
                                     config_.changeover_stall_jitter));
  simulator_->After(stall, [this] { BeginMap(); });
}

void MapRotation::ScheduleNextRound() {
  const double duration = std::max(
      config_.round_min_duration, sim::Exponential(rng_, config_.round_mean_duration));
  simulator_->After(duration, [this, epoch = map_epoch_] {
    // A stale chain from before the last map change must not continue -
    // each map runs exactly one round chain.
    if (stalled_ || epoch != map_epoch_) return;
    ++rounds_played_;
    round_started_at_ = simulator_->Now();
    if (callbacks_.on_round_start) callbacks_.on_round_start(round_started_at_);
    ScheduleNextRound();
  });
}

double MapRotation::activity_factor() const noexcept {
  if (!started_ || stalled_) return 1.0;
  const double into_round = simulator_->Now() - round_started_at_;
  return into_round < config_.buy_time ? config_.buy_time_activity : 1.0;
}

}  // namespace gametrace::game
