#include "game/server_tick.h"

#include <stdexcept>
#include <utility>

namespace gametrace::game {

TickEngine::TickEngine(sim::Simulator& simulator, double interval, TickFn fn)
    : simulator_(&simulator), interval_(interval), fn_(std::move(fn)) {
  if (!(interval > 0.0)) throw std::invalid_argument("TickEngine: interval must be positive");
  if (!fn_) throw std::invalid_argument("TickEngine: empty tick function");
}

void TickEngine::Start(double first_at) {
  if (running_) throw std::logic_error("TickEngine::Start: already running");
  running_ = true;
  pending_event_ = simulator_->At(first_at, [this, first_at] { Fire(first_at); });
}

void TickEngine::Stop() {
  if (!running_) return;
  running_ = false;
  simulator_->Cancel(pending_event_);
}

void TickEngine::Fire(double t) {
  if (!running_) return;
  ++ticks_;
  // Schedule the next tick before running the handler so a handler that
  // calls Stop() cancels the right event.
  const double next = t + interval_;
  pending_event_ = simulator_->At(next, [this, next] { Fire(next); });
  fn_(t);
}

}  // namespace gametrace::game
