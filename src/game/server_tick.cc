#include "game/server_tick.h"

#include <stdexcept>
#include <utility>

#include "core/check.h"

namespace gametrace::game {

TickEngine::TickEngine(sim::Simulator& simulator, double interval, TickFn fn)
    : simulator_(&simulator), interval_(interval), fn_(std::move(fn)) {
  GT_CHECK(interval > 0.0) << "TickEngine: interval must be positive";
  GT_CHECK(fn_) << "TickEngine: empty tick function";
}

void TickEngine::Start(double first_at) {
  GT_CHECK(!running_) << "TickEngine::Start: already running";
  running_ = true;
  // One periodic event re-armed in place by the queue: no fresh closure per
  // firing. Stop() from within the handler cancels the arming before the
  // queue would re-arm, so the timer halts cleanly.
  pending_event_ = simulator_->Every(first_at, interval_, [this](double t) {
    ++ticks_;
    fn_(t);
  });
}

void TickEngine::Stop() {
  if (!running_) return;
  running_ = false;
  simulator_->Cancel(pending_event_);
}

}  // namespace gametrace::game
