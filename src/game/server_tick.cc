#include "game/server_tick.h"

#include <stdexcept>
#include <utility>

namespace gametrace::game {

TickEngine::TickEngine(sim::Simulator& simulator, double interval, TickFn fn)
    : simulator_(&simulator), interval_(interval), fn_(std::move(fn)) {
  if (!(interval > 0.0)) throw std::invalid_argument("TickEngine: interval must be positive");
  if (!fn_) throw std::invalid_argument("TickEngine: empty tick function");
}

void TickEngine::Start(double first_at) {
  if (running_) throw std::logic_error("TickEngine::Start: already running");
  running_ = true;
  // One periodic event re-armed in place by the queue: no fresh closure per
  // firing. Stop() from within the handler cancels the arming before the
  // queue would re-arm, so the timer halts cleanly.
  pending_event_ = simulator_->Every(first_at, interval_, [this](double t) {
    ++ticks_;
    fn_(t);
  });
}

void TickEngine::Stop() {
  if (!running_) return;
  running_ = false;
  simulator_->Cancel(pending_event_);
}

}  // namespace gametrace::game
