// Application-payload size draws for every packet class the server emits or
// receives. Reproduces the paper's Figure 12/13 distributions: a narrow
// inbound peak at 40 B and a wide, player-count-dependent outbound spread.
#pragma once

#include <cstdint>

#include "game/config.h"
#include "net/packet.h"
#include "sim/rng.h"

namespace gametrace::game {

class PacketSizeModel {
 public:
  explicit PacketSizeModel(const SizeConfig& config);

  // Client -> server periodic state update.
  [[nodiscard]] std::uint16_t InboundUpdate(sim::Rng& rng) const;

  // Server -> client state broadcast; grows with the player count since the
  // snapshot carries every player's coordinates.
  [[nodiscard]] std::uint16_t OutboundUpdate(sim::Rng& rng, int connected_players) const;

  // Broadcast text/voice payload (either direction).
  [[nodiscard]] std::uint16_t ChatPayload(sim::Rng& rng) const;

  // True when this update should be replaced by a chat payload.
  [[nodiscard]] bool DrawChatSubstitution(sim::Rng& rng) const;

  // Control-plane packets; slight jitter so they are not a single histogram
  // spike.
  [[nodiscard]] std::uint16_t HandshakeSize(net::PacketKind kind, sim::Rng& rng) const;

  [[nodiscard]] const SizeConfig& config() const noexcept { return config_; }

 private:
  SizeConfig config_;
};

}  // namespace gametrace::game
