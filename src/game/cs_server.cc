#include "game/cs_server.h"

#include <algorithm>

#include "obs/flight_recorder.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "sim/random.h"

namespace gametrace::game {

CsServer::CsServer(sim::Simulator& simulator, GameConfig config, trace::CaptureSink& sink)
    : simulator_(&simulator),
      config_(std::move(config)),
      sink_(&sink),
      rng_(config_.seed),
      size_model_(config_.sizes),
      tick_engine_(simulator, config_.tick_interval, [this](double t) { OnTick(t); }),
      minute_sampler_(simulator, 60.0,
                      [this](double t) {
                        players_.Set(t, static_cast<double>(clients_.size()));
                        // Close every client's per-minute bandwidth window:
                        // one kbps observation apiece into the tail sketch.
                        for (ActiveClient& c : clients_) {
                          if (obs_.client_kbps != nullptr) {
                            obs_.client_kbps->Add(
                                static_cast<double>(c.window_bytes_down) * 8.0 / 1000.0 / 60.0);
                          }
                          c.window_bytes_down = 0;
                        }
                      }),
      map_rotation_(simulator, config_.maps, rng_.Split()),
      outages_(simulator, config_.outages,
               {.on_begin = [this](double t) { OnOutageBegin(t); },
                .on_end = [this](double t) { OnOutageEnd(t); }}),
      players_(0.0, 60.0) {
  session_model_ = std::make_unique<SessionModel>(
      simulator, config_.sessions, config_.diurnal, rng_.Split(),
      [this](std::size_t identity, bool is_retry) { HandleAttempt(identity, is_retry); });
  downloads_ = std::make_unique<DownloadManager>(
      simulator, config_.downloads, rng_.Split(),
      [this](std::uint16_t bytes, net::Ipv4Address ip, std::uint16_t port) {
        // Download chunks ride the client's netchannel and consume its
        // outbound sequence numbers.
        std::uint32_t seq = 0;
        const auto it = std::find_if(clients_.begin(), clients_.end(),
                                     [&](const ActiveClient& c) {
                                       return c.ip == ip && c.port == port;
                                     });
        if (it != clients_.end()) {
          seq = it->seq_out++;
          it->window_bytes_down += net::WireBytes(bytes);
        }
        Emit(simulator_->Now(), net::Direction::kServerToClient, net::PacketKind::kDownload,
             bytes, ip, port, seq);
      },
      [this](std::uint64_t session_id) { return live_sessions_.contains(session_id); });
  map_rotation_.SetCallbacks({.on_stall_begin = nullptr,
                              .on_map_start = [this](double t) { OnMapStart(t); },
                              .on_round_start = [this](double t) {
                                if (obs_.rounds_started != nullptr) obs_.rounds_started->Add();
                                if (obs_.trace != nullptr) obs_.trace->Instant("round_start", "map", t);
                              }});

  // Bind to the ambient observability context (no-op outside a binding).
  // Counters are registered once here so the per-event cost is one add.
  const obs::ObsContext& ctx = obs::Current();
  obs_.trace = ctx.trace;
  if (ctx.metrics != nullptr) {
    obs::MetricsRegistry& m = *ctx.metrics;
    obs_.packets_emitted = &m.counter("server.packets_emitted");
    obs_.bytes_emitted = &m.counter("server.bytes_emitted");
    obs_.bytes_to_clients = &m.counter("server.bytes_to_clients");
    obs_.active_players = &m.gauge("server.active_players", obs::Gauge::MergeMode::kSum);
    obs_.attempts = &m.counter("server.connections.attempted");
    obs_.established = &m.counter("server.connections.established");
    obs_.refused = &m.counter("server.connections.refused");
    obs_.orderly_disconnects = &m.counter("server.disconnects.orderly");
    obs_.outage_disconnects = &m.counter("server.disconnects.outage");
    obs_.maps_started = &m.counter("server.maps_started");
    obs_.rounds_started = &m.counter("server.rounds_started");
    obs_.peak_players = &m.gauge("server.peak_players", obs::Gauge::MergeMode::kMax);
    obs_.client_kbps = &m.sketch("client.bandwidth.kbps");
    stats::TieredRing::Options ring_options =
        stats::TieredRing::Options::PaperSchedule(config_.tick_interval);
    ring_options.track_hurst = true;
    obs_.load_ring = &m.ring("server.load.pps", std::move(ring_options));
  }
}

void CsServer::Start() {
  if (started_) return;
  started_ = true;
  const double now = simulator_->Now();
  map_rotation_.Start();
  tick_engine_.Start(now);
  minute_sampler_.Start(now);
  session_model_->Start();
  outages_.Start(now + config_.trace_duration);
  // Warm start: fill most slots so the capture begins at steady state.
  const int warm = std::min(config_.sessions.initial_players, config_.max_players);
  for (int i = 0; i < warm; ++i) {
    HandleAttempt(session_model_->SampleIdentity(), /*is_retry=*/false);
  }
}

void CsServer::Run() {
  Start();
  simulator_->RunUntil(config_.trace_duration);
}

void CsServer::OnTick(double t) {
  GT_PROF_SCOPE("game.tick_emit");
  if (obs_.trace != nullptr) {
    obs_.trace->Complete("tick", "tick", t, t + config_.tick_interval);
  }
  batching_ = true;
  const bool frozen = outages_.active() || t < stall_until_;
  const bool map_stalled = map_rotation_.stalled();
  const double tick = config_.tick_interval;

  // Outbound: the synchronous broadcast burst. Packets within the burst are
  // spaced by their serialisation time on the server's link, so a burst of
  // ~18 snapshots occupies only a few hundred microseconds - the pattern
  // that melts per-packet lookup devices (paper section IV-A).
  if (!frozen && !map_stalled && !clients_.empty()) {
    const int n = static_cast<int>(clients_.size());
    double offset = 0.0;
    for (ActiveClient& c : clients_) {
      for (int s = 0; s < c.profile.snapshots_per_tick; ++s) {
        const bool chat = size_model_.DrawChatSubstitution(rng_);
        const std::uint16_t bytes =
            chat ? size_model_.ChatPayload(rng_) : size_model_.OutboundUpdate(rng_, n);
        double when;
        if (config_.broadcast_spread > 0.0) {
          when = t + config_.broadcast_spread * rng_.NextDouble() * tick;
        } else if (s == 0) {
          when = t + offset;
          offset += net::SerializationDelay(net::WireBytes(bytes), config_.server_link_bps);
        } else {
          // Extra "l337" snapshots land between main bursts.
          when = t + static_cast<double>(s) * tick /
                         static_cast<double>(c.profile.snapshots_per_tick) +
                 sim::Uniform(rng_, 0.0, 3e-4);
        }
        Emit(when, net::Direction::kServerToClient,
             chat ? net::PacketKind::kChat : net::PacketKind::kGameUpdate, bytes, c.ip, c.port,
             c.seq_out++);
        c.window_bytes_down += net::WireBytes(bytes);
      }
    }
  }

  // Inbound: each client runs on its own frame clock; emit every send whose
  // time falls inside this tick window. Sends are suppressed (but the clock
  // still advances) while the world is frozen for the client.
  const double window_end = t + tick;
  const double activity = map_rotation_.activity_factor();
  for (ActiveClient& c : clients_) {
    while (c.next_send < window_end) {
      const double when = c.next_send;
      c.next_send += NextSendGap(c.profile, config_.clients.send_jitter, rng_);
      if (outages_.active() || map_stalled) continue;
      if (activity < 1.0 && rng_.NextDouble() >= activity) continue;
      const bool chat = size_model_.DrawChatSubstitution(rng_);
      const std::uint16_t bytes =
          chat ? size_model_.ChatPayload(rng_) : size_model_.InboundUpdate(rng_);
      Emit(when, net::Direction::kClientToServer,
           chat ? net::PacketKind::kChat : net::PacketKind::kGameUpdate, bytes, c.ip, c.port,
           c.seq_in++);
    }
  }

  // The whole tick - broadcast burst plus client sends - leaves as one
  // columnar batch: one virtual call per sink instead of one per packet,
  // and columnar consumers read the arrays the tick built directly.
  batching_ = false;
  if (!tick_batch_.empty()) {
    sink_->OnColumns(tick_batch_.View());
    tick_batch_.Clear();
  }
  if (obs_.load_ring != nullptr && tick_ring_count_ > 0) {
    obs_.load_ring->Add(t, static_cast<double>(tick_ring_count_));
    tick_ring_count_ = 0;
  }
}

void CsServer::HandleAttempt(std::size_t identity, bool /*is_retry*/) {
  if (outages_.active()) return;  // the server is unreachable
  const double t = simulator_->Now();
  ++attempts_;
  if (obs_.attempts != nullptr) obs_.attempts->Add();
  attempted_ids_.insert(identity);
  const net::Ipv4Address ip = IdentityIp(identity);
  const std::uint16_t port = DrawEphemeralPort(rng_);
  Emit(t, net::Direction::kClientToServer, net::PacketKind::kConnectRequest,
       size_model_.HandshakeSize(net::PacketKind::kConnectRequest, rng_), ip, port);
  const double reply_at = t + sim::Uniform(rng_, 1e-3, 5e-3);

  if (static_cast<int>(clients_.size()) >= config_.max_players) {
    ++refused_;
    if (obs_.refused != nullptr) obs_.refused->Add();
    if (obs_.trace != nullptr) obs_.trace->Instant("refuse", "session", t);
    Emit(reply_at, net::Direction::kServerToClient, net::PacketKind::kConnectReject,
         size_model_.HandshakeSize(net::PacketKind::kConnectReject, rng_), ip, port);
    for (ServerEventListener* l : listeners_) l->OnRefuse(t, ip, port);
    int& retries = retry_counts_[identity];
    if (session_model_->MaybeScheduleRetry(identity, retries)) ++retries;
    return;
  }

  retry_counts_.erase(identity);
  ++established_count_;
  if (obs_.established != nullptr) obs_.established->Add();
  if (obs_.trace != nullptr) obs_.trace->Instant("connect", "session", t);
  established_ids_.insert(identity);
  Emit(reply_at, net::Direction::kServerToClient, net::PacketKind::kConnectAccept,
       size_model_.HandshakeSize(net::PacketKind::kConnectAccept, rng_), ip, port);

  ActiveClient client;
  client.session_id = next_session_id_++;
  client.identity = identity;
  client.ip = ip;
  client.port = port;
  client.profile = DrawProfile(config_.clients, rng_);
  client.joined_at = t;
  client.next_send = t + sim::Uniform(rng_, 0.0, 1.0 / client.profile.update_rate);
  clients_.push_back(client);
  live_sessions_.insert(client.session_id);
  peak_players_ = std::max(peak_players_, static_cast<int>(clients_.size()));
  if (obs_.peak_players != nullptr) obs_.peak_players->SetMax(peak_players_);
  if (obs_.active_players != nullptr) {
    obs_.active_players->Set(static_cast<double>(clients_.size()));
  }

  for (ServerEventListener* l : listeners_) l->OnConnect(t, clients_.back());

  const double duration = session_model_->DrawSessionDuration(rng_);
  const std::uint64_t session_id = client.session_id;
  simulator_->After(duration, [this, session_id] { Depart(session_id, /*orderly=*/true); });
  downloads_->OnJoin(session_id, ip, port);
}

void CsServer::Depart(std::uint64_t session_id, bool orderly) {
  if (!live_sessions_.erase(session_id)) return;  // already gone (outage)
  const auto it = std::find_if(clients_.begin(), clients_.end(),
                               [session_id](const ActiveClient& c) {
                                 return c.session_id == session_id;
                               });
  if (it == clients_.end()) return;
  if (orderly) {
    ++orderly_disconnects_;
    if (obs_.orderly_disconnects != nullptr) obs_.orderly_disconnects->Add();
    if (obs_.trace != nullptr) {
      obs_.trace->Instant("disconnect", "session", simulator_->Now());
    }
    Emit(simulator_->Now(), net::Direction::kClientToServer, net::PacketKind::kDisconnect,
         size_model_.HandshakeSize(net::PacketKind::kDisconnect, rng_), it->ip, it->port);
  }
  for (ServerEventListener* l : listeners_) l->OnDisconnect(simulator_->Now(), *it, orderly);
  *it = clients_.back();
  clients_.pop_back();
  if (obs_.active_players != nullptr) {
    obs_.active_players->Set(static_cast<double>(clients_.size()));
  }
}

bool CsServer::DisconnectByEndpoint(net::Ipv4Address ip, std::uint16_t port, bool orderly) {
  const auto it = std::find_if(clients_.begin(), clients_.end(), [&](const ActiveClient& c) {
    return c.ip == ip && c.port == port;
  });
  if (it == clients_.end()) return false;
  Depart(it->session_id, orderly);
  return true;
}

void CsServer::OnOutageBegin(double t) {
  outage_began_at_ = t;
  for (ServerEventListener* l : listeners_) l->OnOutage(t, /*begin=*/true);
  session_model_->Pause();
  // Everyone times out "at identical points in time". No disconnect packets
  // reach the wire - the network is down.
  for (const ActiveClient& c : clients_) {
    const double u = rng_.NextDouble();
    const auto& out = config_.outages;
    if (u < out.immediate_reconnect_fraction) {
      session_model_->ScheduleAttempt(c.identity, out.duration + sim::Uniform(rng_, 2.0, 15.0),
                                      /*is_retry=*/true);
    } else if (u < out.immediate_reconnect_fraction + out.delayed_reconnect_fraction) {
      session_model_->ScheduleAttempt(
          c.identity, out.duration + sim::Exponential(rng_, out.delayed_reconnect_mean),
          /*is_retry=*/true);
    }
  }
  outage_disconnects_ += clients_.size();
  if (obs_.outage_disconnects != nullptr) obs_.outage_disconnects->Add(clients_.size());
  for (const ActiveClient& c : clients_) {
    live_sessions_.erase(c.session_id);
    for (ServerEventListener* l : listeners_) l->OnDisconnect(t, c, /*orderly=*/false);
  }
  clients_.clear();
  if (obs_.active_players != nullptr) obs_.active_players->Set(0.0);
  // An injected outage is exactly the kind of event the black box exists
  // for; leave a post-mortem when a dump guard is armed (no-op otherwise).
  obs::DumpFlightNow("outage");
}

void CsServer::OnOutageEnd(double t) {
  if (obs_.trace != nullptr && outage_began_at_ >= 0.0) {
    obs_.trace->Complete("outage", "outage", outage_began_at_, t);
  }
  outage_began_at_ = -1.0;
  for (ServerEventListener* l : listeners_) l->OnOutage(t, /*begin=*/false);
  session_model_->Resume();
}

void CsServer::OnMapStart(double t) {
  if (obs_.maps_started != nullptr) obs_.maps_started->Add();
  if (obs_.trace != nullptr) {
    // Close the previous map's span; its end is this map's load time.
    if (map_began_at_ >= 0.0) {
      obs_.trace->Complete("map " + std::to_string(current_map_), "map", map_began_at_, t);
    }
    obs_.trace->Instant("map_start", "map", t);
  }
  map_began_at_ = t;
  current_map_ = map_rotation_.maps_played();
  for (ServerEventListener* l : listeners_) l->OnMapStart(t, map_rotation_.maps_played());
  // Connected clients may need the new map's decals.
  for (const ActiveClient& c : clients_) downloads_->OnMapChange(c.session_id, c.ip, c.port);
}

void CsServer::InduceStall(double seconds) {
  stall_until_ = std::max(stall_until_, simulator_->Now() + seconds);
}

void CsServer::Emit(double t, net::Direction direction, net::PacketKind kind,
                    std::uint16_t bytes, net::Ipv4Address ip, std::uint16_t port,
                    std::uint32_t seq) {
  net::PacketRecord record;
  record.timestamp = t;
  record.client_ip = ip;
  record.client_port = port;
  record.app_bytes = bytes;
  record.direction = direction;
  record.kind = kind;
  record.seq = seq;
  ++packets_emitted_;
  const std::uint64_t wire_bytes = net::WireBytes(bytes);
  wire_bytes_emitted_ += wire_bytes;
  if (obs_.packets_emitted != nullptr) obs_.packets_emitted->Add();
  if (obs_.bytes_emitted != nullptr) obs_.bytes_emitted->Add(wire_bytes);
  if (obs_.bytes_to_clients != nullptr && direction == net::Direction::kServerToClient) {
    obs_.bytes_to_clients->Add(wire_bytes);
  }
  if (obs_.load_ring != nullptr) {
    if (batching_) {
      // Tick-batched packets are counted and folded into the ring as one
      // bulk Add at the tick timestamp (OnTick's flush): one ring walk per
      // tick, same bin sums under kSum since every batched packet lands in
      // the tick's base bin.
      ++tick_ring_count_;
    } else {
      obs_.load_ring->Add(t);
    }
  }
  if (batching_) {
    tick_batch_.PushRecord(record);
  } else {
    sink_->OnPacket(record);
  }
}

CsServer::Stats CsServer::stats() const {
  Stats s;
  s.attempts = attempts_;
  s.established = established_count_;
  s.refused = refused_;
  s.orderly_disconnects = orderly_disconnects_;
  s.outage_disconnects = outage_disconnects_;
  s.unique_attempting = attempted_ids_.size();
  s.unique_establishing = established_ids_.size();
  s.maps_played = map_rotation_.maps_played();
  s.rounds_played = map_rotation_.rounds_played();
  s.peak_players = peak_players_;
  s.ticks = tick_engine_.ticks_fired();
  s.packets_emitted = packets_emitted_;
  s.wire_bytes_emitted = wire_bytes_emitted_;
  s.downloads_started = downloads_->transfers_started();
  return s;
}

}  // namespace gametrace::game
