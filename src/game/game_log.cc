#include "game/game_log.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

namespace gametrace::game {

namespace {

// Trace epoch: Thu Apr 11 2002, 08:55:04 (paper Table I).
constexpr int kEpochYear = 2002;
constexpr int kEpochMonth = 4;
constexpr int kEpochDay = 11;
constexpr std::uint64_t kEpochSecondsIntoDay = 8ull * 3600 + 55ull * 60 + 4;

constexpr std::array<int, 13> kMonthDays = {0, 31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};

}  // namespace

std::string LogTimestamp(double t_seconds) {
  std::uint64_t total = kEpochSecondsIntoDay + static_cast<std::uint64_t>(std::floor(t_seconds));
  int day = kEpochDay;
  int month = kEpochMonth;
  int year = kEpochYear;  // 2002 is not a leap year; no Feb 29 handling needed
  std::uint64_t days = total / 86400;
  total %= 86400;
  while (days > 0) {
    ++day;
    if (day > kMonthDays[static_cast<std::size_t>(month)]) {
      day = 1;
      ++month;
      if (month > 12) {
        month = 1;
        ++year;
      }
    }
    --days;
  }
  std::ostringstream out;
  out << std::setfill('0') << std::setw(2) << month << '/' << std::setw(2) << day << '/'
      << year << " - " << std::setw(2) << (total / 3600) << ':' << std::setw(2)
      << ((total % 3600) / 60) << ':' << std::setw(2) << (total % 60);
  return out.str();
}

const std::vector<std::string>& ClassicMapRotation() {
  static const std::vector<std::string> kMaps = {
      "de_dust",  "de_dust2", "cs_italy", "de_aztec",
      "cs_office", "de_train", "de_nuke",  "cs_assault"};
  return kMaps;
}

GameLogWriter::GameLogWriter(std::ostream& out) : out_(&out) {
  Line(0.0, "Log file started (gametrace simulated HLDS)");
}

void GameLogWriter::Line(double t, const std::string& text) {
  (*out_) << "L " << LogTimestamp(t) << ": " << text << '\n';
  ++lines_;
}

namespace {
std::string PlayerTag(const ActiveClient& client) {
  std::ostringstream tag;
  tag << "\"Player_" << client.identity << '<' << client.session_id << "><"
      << client.ip.ToString() << ':' << client.port << ">\"";
  return tag.str();
}
}  // namespace

void GameLogWriter::OnConnect(double t, const ActiveClient& client) {
  Line(t, PlayerTag(client) + " connected");
}

void GameLogWriter::OnRefuse(double t, net::Ipv4Address ip, std::uint16_t port) {
  Line(t, "Refused connection from " + ip.ToString() + ':' + std::to_string(port) +
              " (server full)");
}

void GameLogWriter::OnDisconnect(double t, const ActiveClient& client, bool orderly) {
  Line(t, PlayerTag(client) + (orderly ? " disconnected" : " timed out"));
}

void GameLogWriter::OnMapStart(double t, int map_number) {
  const auto& rotation = ClassicMapRotation();
  const std::string& name =
      rotation[static_cast<std::size_t>(map_number - 1) % rotation.size()];
  Line(t, "Loading map \"" + name + "\" (map " + std::to_string(map_number) + ")");
}

void GameLogWriter::OnOutage(double t, bool begin) {
  Line(t, begin ? "WARNING: network unreachable (outage begin)"
                : "Network restored (outage end)");
}

GameLogSummary ParseGameLog(std::istream& in) {
  GameLogSummary summary;
  std::string line;
  int concurrent = 0;
  while (std::getline(in, line)) {
    ++summary.lines;
    if (line.rfind("L ", 0) != 0) {
      ++summary.unparsed;
      continue;
    }
    if (line.find(" connected") != std::string::npos) {
      ++summary.connects;
      ++concurrent;
      summary.max_concurrent = std::max(summary.max_concurrent, concurrent);
    } else if (line.find(" disconnected") != std::string::npos) {
      ++summary.disconnects;
      --concurrent;
    } else if (line.find(" timed out") != std::string::npos) {
      ++summary.disconnects;
      ++summary.timeouts;
      --concurrent;
    } else if (line.find("Refused connection") != std::string::npos) {
      ++summary.refusals;
    } else if (line.find("Loading map") != std::string::npos) {
      ++summary.maps_started;
    } else if (line.find("outage begin") != std::string::npos) {
      ++summary.outages;
    } else if (line.find("outage end") != std::string::npos ||
               line.find("Log file started") != std::string::npos) {
      // recognised, nothing to count
    } else {
      ++summary.unparsed;
    }
  }
  return summary;
}

}  // namespace gametrace::game
