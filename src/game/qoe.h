// Player quality-of-experience model: the paper's self-tuning loss.
//
// "Observed loss rates self-tune themselves at the worst tolerable level
// of performance. Any further degradation caused by additional players
// and/or background traffic will simply cause players to quit playing,
// reducing the load back to the tolerable level. ... we believe the worst
// tolerable loss rate for this game is not far from 1-2%." (section IV-A)
//
// QoeMonitor watches per-endpoint delivery/loss events (wired from a
// device model's callbacks), estimates each player's recent loss rate,
// and makes players whose tolerance is exceeded quit - closing the
// feedback loop that pins aggregate loss at the tolerable level.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "net/packet.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace gametrace::game {

class QoeMonitor {
 public:
  struct Config {
    double check_interval = 10.0;  // how often players reassess
    // Per-player tolerance drawn uniformly from this band ("not far from
    // 1-2%"); heterogeneous so quits ramp in rather than stampede.
    double tolerance_min = 0.012;
    double tolerance_max = 0.035;
    // An intolerably laggy player quits at each check with this
    // probability (people finish the round first).
    double quit_probability = 0.5;
    // Ignore endpoints with fewer events than this in the window (no
    // meaningful loss estimate).
    std::uint64_t min_events = 100;
  };

  // Called when a player gives up: (client ip, client port).
  using QuitFn = std::function<void(net::Ipv4Address, std::uint16_t)>;

  QoeMonitor(sim::Simulator& simulator, const Config& config, sim::Rng rng, QuitFn quit);

  QoeMonitor(const QoeMonitor&) = delete;
  QoeMonitor& operator=(const QoeMonitor&) = delete;

  // Begins the periodic reassessment loop.
  void Start();

  // Feed from the device model: a packet belonging to this client's
  // session was forwarded / dropped. Both directions count - lost inbound
  // updates freeze the player's own avatar, lost outbound snapshots freeze
  // everyone else's.
  void OnDelivered(const net::PacketRecord& record);
  void OnLost(const net::PacketRecord& record);

  [[nodiscard]] std::uint64_t quits_triggered() const noexcept { return quits_; }

  // Observed loss rate of an endpoint in the current window (for tests).
  [[nodiscard]] double WindowLossRate(net::Ipv4Address ip, std::uint16_t port) const;

 private:
  struct EndpointState {
    std::uint64_t delivered = 0;
    std::uint64_t lost = 0;
    double tolerance = 0.02;
    bool tolerance_set = false;
  };

  static std::uint64_t Key(net::Ipv4Address ip, std::uint16_t port) noexcept {
    return (std::uint64_t{ip.value()} << 16) | port;
  }

  EndpointState& Touch(const net::PacketRecord& record);
  void Check();

  sim::Simulator* simulator_;
  Config config_;
  sim::Rng rng_;
  QuitFn quit_;
  std::unordered_map<std::uint64_t, EndpointState> endpoints_;
  std::uint64_t quits_ = 0;
  bool started_ = false;
};

}  // namespace gametrace::game
