// Session arrival process.
//
// Fresh connection attempts arrive as a diurnally-modulated Poisson process
// over a Zipf-popular identity pool; refused clients may retry. Departures
// are scheduled by CsServer from the duration distribution drawn here.
#pragma once

#include <cstdint>
#include <functional>

#include "game/config.h"
#include "sim/diurnal.h"
#include "sim/random.h"
#include "sim/rng.h"
#include "sim/simulator.h"

namespace gametrace::game {

class SessionModel {
 public:
  // Called for every connection attempt (fresh or retry) with the pool
  // identity of the attempting client.
  using AttemptHandler = std::function<void(std::size_t identity, bool is_retry)>;

  SessionModel(sim::Simulator& simulator, const SessionConfig& config,
               const sim::DiurnalCurve& diurnal, sim::Rng rng, AttemptHandler handler);

  // Begins generating arrivals from the current simulation time.
  void Start();

  // Arrivals pause during network outages (nobody can reach the server).
  void Pause() noexcept { paused_ = true; }
  void Resume() noexcept { paused_ = false; }

  // Session length for a newly-admitted player (lognormal with the
  // configured moments, floored at min_duration).
  [[nodiscard]] double DrawSessionDuration(sim::Rng& rng) const;

  // Schedules a retry for a just-refused client, if its retry budget and
  // coin flip allow. Returns true when a retry was scheduled.
  bool MaybeScheduleRetry(std::size_t identity, int retries_so_far);

  // Schedules a one-off attempt at `delay` seconds from now (used for
  // post-outage reconnects).
  void ScheduleAttempt(std::size_t identity, double delay, bool is_retry);

  // Draws an identity from the Zipf popularity pool (used by CsServer for
  // the warm-start population).
  [[nodiscard]] std::size_t SampleIdentity();

  [[nodiscard]] std::size_t population() const noexcept { return zipf_.size(); }
  [[nodiscard]] std::uint64_t fresh_arrivals() const noexcept { return fresh_arrivals_; }
  [[nodiscard]] std::uint64_t retries_scheduled() const noexcept { return retries_; }

 private:
  void ScheduleNextArrival();

  sim::Simulator* simulator_;
  SessionConfig config_;
  const sim::DiurnalCurve* diurnal_;
  sim::Rng rng_;
  AttemptHandler handler_;
  sim::ZipfSampler zipf_;
  double max_rate_;
  bool paused_ = false;
  std::uint64_t fresh_arrivals_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace gametrace::game
