#include "game/qoe.h"

#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/random.h"

#include "core/check.h"

namespace gametrace::game {

QoeMonitor::QoeMonitor(sim::Simulator& simulator, const Config& config, sim::Rng rng,
                       QuitFn quit)
    : simulator_(&simulator), config_(config), rng_(rng), quit_(std::move(quit)) {
  GT_CHECK(quit_) << "QoeMonitor: empty quit callback";
  GT_CHECK(config.check_interval > 0.0) << "QoeMonitor: check interval must be positive";
  GT_CHECK_LE(config.tolerance_min, config.tolerance_max) << "QoeMonitor: tolerance band inverted";
}

void QoeMonitor::Start() {
  if (started_) return;
  started_ = true;
  simulator_->After(config_.check_interval, [this] { Check(); });
}

QoeMonitor::EndpointState& QoeMonitor::Touch(const net::PacketRecord& record) {
  EndpointState& state = endpoints_[Key(record.client_ip, record.client_port)];
  if (!state.tolerance_set) {
    state.tolerance = sim::Uniform(rng_, config_.tolerance_min, config_.tolerance_max);
    state.tolerance_set = true;
  }
  return state;
}

void QoeMonitor::OnDelivered(const net::PacketRecord& record) { ++Touch(record).delivered; }

void QoeMonitor::OnLost(const net::PacketRecord& record) { ++Touch(record).lost; }

double QoeMonitor::WindowLossRate(net::Ipv4Address ip, std::uint16_t port) const {
  const auto it = endpoints_.find(Key(ip, port));
  if (it == endpoints_.end()) return 0.0;
  const auto total = it->second.delivered + it->second.lost;
  return total > 0 ? static_cast<double>(it->second.lost) / static_cast<double>(total) : 0.0;
}

void QoeMonitor::Check() {
  std::vector<std::uint64_t> quitting;
  for (auto& [key, state] : endpoints_) {
    const std::uint64_t total = state.delivered + state.lost;
    if (total >= config_.min_events) {
      const double loss = static_cast<double>(state.lost) / static_cast<double>(total);
      if (loss > state.tolerance && sim::Bernoulli(rng_, config_.quit_probability)) {
        quitting.push_back(key);
      }
    }
    // Each check starts a fresh observation window.
    state.delivered = 0;
    state.lost = 0;
  }
  for (const std::uint64_t key : quitting) {
    ++quits_;
    quit_(net::Ipv4Address(static_cast<std::uint32_t>(key >> 16)),
          static_cast<std::uint16_t>(key & 0xffff));
    endpoints_.erase(key);
  }
  simulator_->After(config_.check_interval, [this] { Check(); });
}

}  // namespace gametrace::game
