// Thread-safety capability annotations and the annotated sync primitives.
//
// The fleet engine's headline guarantee - bit-identical merged output at
// any worker count - rests on every piece of cross-thread state being
// reached only under its lock. TSan proves that *dynamically*, for the
// interleavings a test run happens to produce; Clang's Thread Safety
// Analysis (-Wthread-safety) proves the locking *contract* statically, at
// every call site, on every build. This header is the bridge:
//
//  * GT_GUARDED_BY / GT_REQUIRES / GT_ACQUIRE / GT_RELEASE / GT_EXCLUDES
//    macros that expand to Clang's capability attributes and compile away
//    entirely on other compilers (GCC builds the same source unannotated).
//  * core::Mutex / core::MutexLock / core::CondVar - drop-in wrappers over
//    the std primitives that carry the capability attributes. std::mutex
//    cannot be annotated, and std::lock_guard is invisible to the
//    analysis, so first-party code must use these instead (enforced by
//    tools/gt_lint.py rule `raw-mutex`, so the annotation layer cannot
//    silently rot back to std types).
//
// The build is gated by the GAMETRACE_WTSA CMake option, which turns on
// -Wthread-safety -Werror=thread-safety under Clang (the `wtsa` preset and
// the thread-safety CI job); see DESIGN.md "Correctness tooling".
#pragma once

#include <condition_variable>
#include <mutex>

// Clang's capability attributes; every other compiler sees empty macros.
#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define GT_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef GT_THREAD_ANNOTATION
#define GT_THREAD_ANNOTATION(x)  // not Clang: annotations compile away
#endif

// On a class: instances are a capability ("mutex") trackable by the
// analysis.
#define GT_CAPABILITY(x) GT_THREAD_ANNOTATION(capability(x))
// On a class: RAII object that acquires a capability in its constructor
// and releases it in its destructor.
#define GT_SCOPED_CAPABILITY GT_THREAD_ANNOTATION(scoped_lockable)
// On a member: may only be read or written while holding `x`.
#define GT_GUARDED_BY(x) GT_THREAD_ANNOTATION(guarded_by(x))
// On a pointer member: the pointed-to data is guarded by `x`.
#define GT_PT_GUARDED_BY(x) GT_THREAD_ANNOTATION(pt_guarded_by(x))
// On a function: callers must hold the listed capabilities.
#define GT_REQUIRES(...) GT_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
// On a function: acquires / releases the listed capabilities.
#define GT_ACQUIRE(...) GT_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define GT_RELEASE(...) GT_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
// On a function: acquires the capability iff it returns `result`.
#define GT_TRY_ACQUIRE(...) GT_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
// On a function: callers must NOT hold the listed capabilities (deadlock
// documentation: the function acquires them itself).
#define GT_EXCLUDES(...) GT_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
// Escape hatch for code the analysis cannot model; every use must carry a
// comment saying why the contract holds anyway.
#define GT_NO_THREAD_SAFETY_ANALYSIS GT_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace gametrace::core {

// An annotated std::mutex. Lowercase lock()/unlock()/try_lock() keep the
// BasicLockable spelling, so generic code still composes, but prefer
// core::MutexLock - std's guards are invisible to the analysis.
class GT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GT_ACQUIRE() { m_.lock(); }
  void unlock() GT_RELEASE() { m_.unlock(); }
  [[nodiscard]] bool try_lock() GT_TRY_ACQUIRE(true) { return m_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex m_;
};

// RAII guard over core::Mutex, visible to the analysis as a scoped
// capability (what std::lock_guard cannot be).
class GT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GT_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() GT_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// Condition variable over core::Mutex. Wait() releases and reacquires the
// mutex internally but is annotated GT_REQUIRES(mu): to the analysis the
// capability is held across the call, which matches what the caller may
// assume on both sides of it (the same convention as abseil's CondVar).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) GT_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait,
    // then release the std guard so ownership stays with the caller.
    std::unique_lock<std::mutex> native(mu.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  // Predicate form. NOTE: the analysis checks `pred`'s body as an
  // unannotated function, so a lambda reading GT_GUARDED_BY state will
  // warn - prefer an explicit `while (!cond) cv.Wait(mu);` loop inside a
  // GT_REQUIRES-annotated method for guarded predicates.
  template <typename Pred>
  void Wait(Mutex& mu, Pred pred) GT_REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gametrace::core
