#include "core/characterizer.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/check.h"
#include "obs/prof.h"

namespace gametrace::core {

namespace {
constexpr std::size_t kSizeBins = 500;  // 1-byte bins over [0, 500)
}

Characterizer::Characterizer(CharacterizationOptions options)
    : options_(options),
      summary_(options.wire_overhead),
      minute_agg_(options.minute_interval, 0.0, options.wire_overhead),
      vt_packets_(0.0, options.vt_base_interval),
      sessions_(options.session_idle_timeout),
      size_total_(0.0, options.size_histogram_max, kSizeBins),
      size_in_(0.0, options.size_histogram_max, kSizeBins),
      size_out_(0.0, options.size_histogram_max, kSizeBins) {}

void Characterizer::OnPacket(const net::PacketRecord& record) {
  summary_.OnPacket(record);
  minute_agg_.OnPacket(record);
  sessions_.OnPacket(record);
  if (record.timestamp < options_.vt_window) vt_packets_.Add(record.timestamp, 1.0);
  size_total_.Add(record.app_bytes);
  if (record.direction == net::Direction::kClientToServer) {
    size_in_.Add(record.app_bytes);
  } else {
    size_out_.Add(record.app_bytes);
  }
}

void Characterizer::OnBatch(std::span<const net::PacketRecord> batch) {
  GT_PROF_SCOPE("core.characterizer.on_batch");
  summary_.OnBatch(batch);
  minute_agg_.OnBatch(batch);
  sessions_.OnBatch(batch);
  scratch_times_.clear();
  for (const net::PacketRecord& record : batch) {
    if (record.timestamp < options_.vt_window) scratch_times_.push_back(record.timestamp);
    size_total_.Add(record.app_bytes);
    if (record.direction == net::Direction::kClientToServer) {
      size_in_.Add(record.app_bytes);
    } else {
      size_out_.Add(record.app_bytes);
    }
  }
  vt_packets_.AddBatch(scratch_times_, 1.0);
}

void Characterizer::OnColumns(const net::PacketBatch& batch) {
  GT_PROF_SCOPE("core.characterizer.on_columns");
  summary_.AccumulateColumns(batch);
  minute_agg_.AccumulateColumns(batch);
  sessions_.AccumulateColumns(batch);
  const std::size_t n = batch.count;
  const double* ts = batch.timestamps;
  scratch_times_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (ts[i] < options_.vt_window) scratch_times_.push_back(ts[i]);
  }
  vt_packets_.AddBatch(scratch_times_, 1.0);
  const std::span<const std::uint16_t> sizes(batch.app_bytes, n);
  const std::span<const std::uint8_t> dirs(batch.directions, n);
  constexpr auto kIn = static_cast<std::uint8_t>(net::Direction::kClientToServer);
  constexpr auto kOut = static_cast<std::uint8_t>(net::Direction::kServerToClient);
  size_total_.AddColumn(sizes);
  size_in_.AddColumn(sizes, dirs, kIn);
  size_out_.AddColumn(sizes, dirs, kOut);
}

void Characterizer::Merge(Characterizer&& other) {
  GT_PROF_SCOPE("core.characterizer.merge");
  GT_CHECK(other.options_ == options_) << "Characterizer::Merge: analysis options differ";
  summary_.Merge(other.summary_);
  minute_agg_.Merge(other.minute_agg_);
  vt_packets_.Merge(other.vt_packets_);
  sessions_.Merge(std::move(other.sessions_));
  size_total_.Merge(other.size_total_);
  size_in_.Merge(other.size_in_);
  size_out_.Merge(other.size_out_);
}

CharacterizationReport Characterizer::Finish(double trace_duration) {
  if (trace_duration > 0.0) {
    summary_.set_duration_override(trace_duration);
    minute_agg_.ExtendTo(trace_duration);
    vt_packets_.ExtendTo(std::min(trace_duration, options_.vt_window));
  }

  std::vector<trace::Session> sessions = sessions_.Finish();
  stats::Histogram session_bw = trace::SessionTracker::BandwidthHistogram(
      sessions, options_.session_min_duration, options_.session_bw_histogram_max,
      options_.session_bw_bins);

  stats::VarianceTimePlot vt;
  stats::HurstRegions hurst;
  if (vt_packets_.size() >= 16 && vt_packets_.Variance() > 0.0) {
    vt = stats::ComputeVarianceTime(vt_packets_);
    hurst = stats::EstimateHurstRegions(vt);
  }

  return CharacterizationReport{
      .summary = summary_,
      .minute_packets_in = minute_agg_.packets_in(),
      .minute_packets_out = minute_agg_.packets_out(),
      .minute_bytes_in = minute_agg_.wire_bytes_in(),
      .minute_bytes_out = minute_agg_.wire_bytes_out(),
      .vt_base_packets = std::move(vt_packets_),
      .variance_time = std::move(vt),
      .hurst = hurst,
      .sessions = std::move(sessions),
      .session_bandwidth = std::move(session_bw),
      .size_total = std::move(size_total_),
      .size_in = std::move(size_in_),
      .size_out = std::move(size_out_),
  };
}

CharacterizationReport MergeReports(std::vector<CharacterizationReport> reports) {
  GT_CHECK(!reports.empty()) << "MergeReports: no reports";
  CharacterizationReport merged = std::move(reports.front());
  for (std::size_t i = 1; i < reports.size(); ++i) {
    CharacterizationReport& r = reports[i];
    merged.summary.Merge(r.summary);
    merged.minute_packets_in.Merge(r.minute_packets_in);
    merged.minute_packets_out.Merge(r.minute_packets_out);
    merged.minute_bytes_in.Merge(r.minute_bytes_in);
    merged.minute_bytes_out.Merge(r.minute_bytes_out);
    merged.vt_base_packets.Merge(r.vt_base_packets);
    merged.sessions.insert(merged.sessions.end(),
                           std::make_move_iterator(r.sessions.begin()),
                           std::make_move_iterator(r.sessions.end()));
    merged.session_bandwidth.Merge(r.session_bandwidth);
    merged.size_total.Merge(r.size_total);
    merged.size_in.Merge(r.size_in);
    merged.size_out.Merge(r.size_out);
  }
  std::sort(merged.sessions.begin(), merged.sessions.end(),
            [](const trace::Session& a, const trace::Session& b) { return a.start < b.start; });
  merged.variance_time = {};
  merged.hurst = {};
  if (merged.vt_base_packets.size() >= 16 && merged.vt_base_packets.Variance() > 0.0) {
    merged.variance_time = stats::ComputeVarianceTime(merged.vt_base_packets);
    merged.hurst = stats::EstimateHurstRegions(merged.variance_time);
  }
  return merged;
}

}  // namespace gametrace::core
