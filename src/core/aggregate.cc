#include "core/aggregate.h"

#include <stdexcept>
#include <vector>

#include "core/fleet.h"
#include "obs/obs.h"
#include "sim/random.h"
#include "sim/rng.h"

#include "core/check.h"

namespace gametrace::core {

namespace {

// Pareto with the given mean (alpha > 1): x_m = mean * (alpha - 1) / alpha.
double ParetoWithMean(sim::Rng& rng, double mean, double alpha) {
  const double x_m = mean * (alpha - 1.0) / alpha;
  return sim::Pareto(rng, x_m, alpha);
}

struct ServerState {
  int players = 0;
  bool interested = true;     // ON/OFF phase
  double phase_left = 0.0;    // seconds remaining in the phase
  sim::Rng rng{0};
};

}  // namespace

AggregateResult SimulateAggregatePopulation(const PopulationConfig& config) {
  GT_CHECK_GT(config.servers, 0) << "SimulateAggregatePopulation: servers";
  GT_CHECK(config.interval > 0.0 && config.duration > config.interval * 64)
      << "SimulateAggregatePopulation: window too short";
  GT_CHECK_GT(config.pareto_alpha, 1.0)
      << "SimulateAggregatePopulation: pareto_alpha must exceed 1";

  // Every server's population is a private process over a private RNG
  // stream (split from the master serially, so seeds do not depend on the
  // worker count), which makes the simulation embarrassingly parallel:
  // simulate each server's whole occupancy path on the fleet worker pool,
  // then reduce the per-server series in server order.
  sim::Rng master(config.seed);
  std::vector<ServerState> servers(static_cast<std::size_t>(config.servers));
  for (auto& s : servers) {
    s.rng = master.Split();
    s.players = config.max_players * 3 / 4;  // warm start near steady state
    s.interested = sim::Bernoulli(s.rng, 0.5);
    s.phase_left = ParetoWithMean(s.rng, config.mean_sojourn, config.pareto_alpha);
  }

  const auto steps = static_cast<std::size_t>(config.duration / config.interval);
  const double dt = config.interval;
  std::vector<stats::TimeSeries> per_server(servers.size(),
                                            stats::TimeSeries(0.0, config.interval));
  // One registry per server, reduced in server order below - same
  // determinism recipe as the fleet shards.
  std::vector<obs::MetricsRegistry> per_server_metrics(servers.size());
  const double occupancy_hi = static_cast<double>(config.max_players) + 1.0;
  ParallelFor(config.servers, config.threads, [&](int index) {
    ServerState& s = servers[static_cast<std::size_t>(index)];
    stats::TimeSeries& occupancy = per_server[static_cast<std::size_t>(index)];
    obs::MetricsRegistry& metrics = per_server_metrics[static_cast<std::size_t>(index)];
    obs::Counter& arrivals_counter = metrics.counter("aggregate.arrivals");
    obs::Counter& blocked_counter = metrics.counter("aggregate.blocked");
    obs::Counter& departures_counter = metrics.counter("aggregate.departures");
    stats::Histogram& occupancy_hist = metrics.histogram(
        "aggregate.occupancy", 0.0, occupancy_hi,
        static_cast<std::size_t>(config.max_players) + 1);
    for (std::size_t step = 0; step < steps; ++step) {
      if (config.modulate_interest) {
        s.phase_left -= dt;
        while (s.phase_left <= 0.0) {
          s.interested = !s.interested;
          s.phase_left += ParetoWithMean(s.rng, config.mean_sojourn, config.pareto_alpha);
        }
      }
      const double multiplier =
          config.modulate_interest
              ? (s.interested ? config.on_multiplier : config.off_multiplier)
              : 1.0;
      // Arrivals (blocked at the slot cap) and exponential departures.
      const auto arrivals =
          sim::Poisson(s.rng, config.base_attempt_rate * multiplier * dt);
      std::uint64_t accepted = 0;
      for (std::uint64_t a = 0; a < arrivals && s.players < config.max_players; ++a) {
        ++s.players;
        ++accepted;
      }
      arrivals_counter.Add(accepted);
      blocked_counter.Add(arrivals - accepted);
      const double leave_p = dt / config.mean_session;
      int leaving = 0;
      for (int p = 0; p < s.players; ++p) {
        if (sim::Bernoulli(s.rng, leave_p)) ++leaving;
      }
      s.players -= leaving;
      departures_counter.Add(static_cast<std::uint64_t>(leaving));
      occupancy.Set(static_cast<double>(step) * dt, static_cast<double>(s.players));
      occupancy_hist.Add(static_cast<double>(s.players));
    }
  });

  AggregateResult result{stats::TimeSeries(0.0, config.interval),
                         stats::TimeSeries(0.0, config.interval), 0.0, {}, {}};
  for (const auto& occupancy : per_server) result.total_players.Merge(occupancy);
  for (const auto& metrics : per_server_metrics) result.metrics.Merge(metrics);
  for (std::size_t step = 0; step < result.total_players.size(); ++step) {
    const double t = static_cast<double>(step) * dt;
    result.total_load_pps.Set(t, result.total_players[step] * config.pps_per_player);
  }

  result.variance_time = stats::ComputeVarianceTime(result.total_load_pps);
  if (result.variance_time.PointsInRegion(2.0 * config.mean_session, config.duration / 8.0) >= 2) {
    result.coarse_hurst = result.variance_time.HurstEstimate(2.0 * config.mean_session,
                                                             config.duration / 8.0);
  } else {
    // Window too short for the preferred band (needs duration >~ 16x the
    // session time constant): fall back to everything we have.
    result.coarse_hurst =
        result.variance_time.HurstEstimate(0.0, config.duration / 8.0);
  }
  // Surface the reduced accounting in the caller's ambient registry too,
  // so --metrics-out exports see it without extra plumbing.
  if (obs::MetricsRegistry* ambient = obs::Current().metrics; ambient != nullptr) {
    ambient->Merge(result.metrics);
  }
  return result;
}

}  // namespace gametrace::core
