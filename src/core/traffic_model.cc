#include "core/traffic_model.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "sim/random.h"

#include "core/check.h"

namespace gametrace::core {

namespace {
constexpr double kSizeMax = 520.0;
constexpr std::size_t kSizeBins = 520;
}  // namespace

TrafficModelFitter::TrafficModelFitter(double reorder_horizon)
    : horizon_(reorder_horizon),
      sizes_in_(0.0, kSizeMax, kSizeBins),
      sizes_out_(0.0, kSizeMax, kSizeBins) {
  GT_CHECK(reorder_horizon >= 0.0) << "TrafficModelFitter: negative reorder horizon";
}

void TrafficModelFitter::DirectionState::Release(double up_to) {
  while (!pending.empty() && pending.top() <= up_to) {
    const double t = pending.top();
    pending.pop();
    if (last >= 0.0) gaps.Add(t - last);
    last = t;
  }
}

void TrafficModelFitter::DirectionState::Drain() {
  Release(std::numeric_limits<double>::infinity());
}

void TrafficModelFitter::OnPacket(const net::PacketRecord& record) {
  if (first_time_ < 0.0) first_time_ = record.timestamp;
  last_time_ = std::max(last_time_, record.timestamp);
  DirectionState& state =
      record.direction == net::Direction::kClientToServer ? in_ : out_;
  state.pending.push(record.timestamp);
  // Everything older than the disorder horizon is safely ordered.
  state.Release(record.timestamp - horizon_);
  if (record.direction == net::Direction::kClientToServer) {
    sizes_in_.Add(record.app_bytes);
  } else {
    sizes_out_.Add(record.app_bytes);
  }
}

TrafficModel TrafficModelFitter::Fit() {
  in_.Drain();
  out_.Drain();
  GT_CHECK(in_.gaps.count() >= 2 && out_.gaps.count() >= 2)
      << "TrafficModelFitter::Fit: not enough packets";
  TrafficModel model;
  model.fitted_over_seconds = last_time_ - first_time_;

  model.inbound.interarrival_mean = in_.gaps.mean();
  model.inbound.interarrival_cv = in_.gaps.cv();
  model.inbound.packet_rate = in_.gaps.mean() > 0.0 ? 1.0 / in_.gaps.mean() : 0.0;
  model.inbound.sizes = stats::EmpiricalDistribution::FromHistogram(sizes_in_);

  model.outbound.interarrival_mean = out_.gaps.mean();
  model.outbound.interarrival_cv = out_.gaps.cv();
  model.outbound.packet_rate = out_.gaps.mean() > 0.0 ? 1.0 / out_.gaps.mean() : 0.0;
  model.outbound.sizes = stats::EmpiricalDistribution::FromHistogram(sizes_out_);
  return model;
}

TrafficModelGenerator::TrafficModelGenerator(TrafficModel model, std::uint64_t seed)
    : model_(std::move(model)), rng_(seed) {
  GT_CHECK(model_.inbound.interarrival_mean > 0.0 && model_.outbound.interarrival_mean > 0.0)
      << "TrafficModelGenerator: non-positive interarrival mean";
}

std::uint64_t TrafficModelGenerator::Generate(double duration, trace::CaptureSink& sink) {
  // Synthetic endpoints: one aggregate "client side" address per direction.
  const net::Ipv4Address synthetic_client(10, 99, 0, 1);

  std::uint64_t emitted = 0;
  const auto run_direction = [&](const DirectionModel& dm, net::Direction dir) {
    double t = rng_.NextDouble() * dm.interarrival_mean;  // random phase
    while (t < duration) {
      net::PacketRecord record;
      record.timestamp = t;
      record.client_ip = synthetic_client;
      record.client_port = 27005;
      record.direction = dir;
      record.kind = net::PacketKind::kGameUpdate;
      record.app_bytes = static_cast<std::uint16_t>(dm.sizes.Sample(rng_));
      sink.OnPacket(record);
      ++emitted;
      const double gap =
          dm.interarrival_cv < 1e-6
              ? dm.interarrival_mean
              : sim::LognormalFromMoments(rng_, dm.interarrival_mean,
                                          dm.interarrival_cv * dm.interarrival_mean);
      t += std::max(1e-9, gap);
    }
  };
  run_direction(model_.inbound, net::Direction::kClientToServer);
  run_direction(model_.outbound, net::Direction::kServerToClient);
  return emitted;
}

}  // namespace gametrace::core
