// Fixed-width table and gnuplot-ready series printing for the bench
// binaries that regenerate the paper's tables and figures.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "stats/histogram.h"
#include "stats/time_series.h"

namespace gametrace::core {

// Two-column key/value table in the style of the paper's Tables I-IV.
class TableReport {
 public:
  explicit TableReport(std::string title);

  void AddRow(std::string label, std::string value);
  void AddCount(std::string label, std::uint64_t count);
  void AddValue(std::string label, double value, std::string_view unit, int precision = 2);

  void Print(std::ostream& out) const;

 private:
  std::string title_;
  std::vector<std::pair<std::string, std::string>> rows_;
};

// "# name"-headed two-column (x, y) series, optionally downsampled to at
// most `max_points` evenly-spaced points so figure benches stay readable.
void PrintSeries(std::ostream& out, const stats::TimeSeries& series, std::string_view name,
                 std::size_t max_points = 0);

// Histogram as (bin_center, pdf-or-count) rows; cumulative when `cdf`.
void PrintHistogram(std::ostream& out, const stats::Histogram& histogram, std::string_view name,
                    bool cdf = false, bool normalized = true);

// 500000000 -> "500,000,000".
[[nodiscard]] std::string FormatCount(std::uint64_t value);

// 626477 s -> "7 d, 6 h, 1 m, 17 s".
[[nodiscard]] std::string FormatDuration(double seconds);

// Bytes -> "64.42 GB" (decimal GB, as the paper uses).
[[nodiscard]] std::string FormatGigabytes(std::uint64_t bytes);

[[nodiscard]] std::string FormatDouble(double value, int precision);

}  // namespace gametrace::core
