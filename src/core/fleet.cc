#include "core/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "game/client.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/watchdog.h"
#include "sim/rng.h"
#include "trace/capture.h"
#include "trace/fused_chain.h"

#include "core/check.h"

namespace gametrace::core {
namespace {

// Everything one shard produces, parked until the merge cursor reaches it.
struct ServerResult {
  std::uint64_t seed = 0;
  game::CsServer::Stats stats;
  stats::TimeSeries players{0.0, 60.0};
  std::optional<Characterizer> partial;
  obs::MetricsRegistry metrics;
  std::optional<obs::TraceLog> trace;
  std::optional<obs::FlightRecorder> recorder;
};

// A contiguous run of shards executed as one schedulable task. Per-server
// results are kept separate (not pre-folded) so the master reduction can
// fold in strictly increasing server order whatever the unit size - the
// merge operators on floating accumulators are deterministic for a fixed
// fold order but not associative in bits, so grouping must never reach
// the fold.
struct UnitResult {
  int first_server = 0;
  std::vector<ServerResult> servers;
};

// Per-worker scheduler telemetry, written by exactly one worker thread and
// read after the join.
struct WorkerTelemetry {
  std::uint64_t steals = 0;
  std::uint64_t idle_ns = 0;
  std::uint64_t shards_run = 0;
  std::uint64_t units_run = 0;
};

void PinThreadToCore(int index) {
#if defined(__linux__)
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(index) % cores, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

FleetConfig FleetConfig::Scaled(int shards, double duration) {
  FleetConfig config;
  config.shards = shards;
  config.server = game::GameConfig::ScaledDefaults(duration);
  return config;
}

int ResolveWorkerCount(int n, int threads) noexcept {
  int workers = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(workers, 1, std::max(n, 1));
}

void ParallelFor(int n, int threads, FunctionRef<void(int)> fn) {
  if (n <= 0) return;
  const int workers = ResolveWorkerCount(n, threads);
  if (workers == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

FleetResult RunFleet(const FleetConfig& config) {
  GT_CHECK_GT(config.shards, 0) << "RunFleet: shards must be positive";
  const std::size_t population = config.server.sessions.population;
  GT_CHECK_LE(static_cast<std::size_t>(config.shards), game::MaxDisjointServers(population))
      << "RunFleet: shard count exceeds the disjoint IP namespace at population "
      << population;

  const int servers = config.shards;
  int unit_size = config.schedule.unit_size;
  if (unit_size <= 0) unit_size = std::max(1, servers / 256);
  unit_size = std::min(unit_size, servers);
  const int units = (servers + unit_size - 1) / unit_size;
  const int workers = ResolveWorkerCount(units, config.threads);
  const int window_units =
      std::max(1, workers * std::max(1, config.schedule.max_live_units_per_worker));

  // Category defaults of the ambient trace log (when one is bound) carry
  // over to the shard logs, so e.g. enabling "tick" upstream enables it in
  // every shard.
  const obs::ObsContext ambient = obs::Current();

  // ---- Scheduler state ---------------------------------------------------
  // Units are dealt round-robin, so every queue holds an ascending
  // sequence and queue k's front is the lowest unclaimed unit of worker k.
  // Own pops take the front, steals take the back of the fullest victim:
  // together with FIFO pops this keeps the globally lowest unclaimed unit
  // at some queue front, which is what makes the admission window
  // deadlock-free (the worker owning that front is never blocked on a
  // higher unit than the one it will claim next).
  struct WorkerQueue {
    std::mutex m;
    std::deque<int> q;
  };
  std::vector<WorkerQueue> queues(static_cast<std::size_t>(workers));
  for (int u = 0; u < units; ++u) {
    queues[static_cast<std::size_t>(u % workers)].q.push_back(u);
  }

  // ---- Streaming reduction state (all guarded by reduce_m) ---------------
  std::mutex reduce_m;
  std::condition_variable admission_cv;
  int cursor = 0;  // next unit index the master fold will absorb
  int live_units = 0;
  int peak_live_units = 0;
  std::uint64_t merged_units = 0;
  // Completed-but-unmerged units park here; in-flight units always lie in
  // [cursor, cursor + window_units), so indexing by unit % window_units is
  // collision-free and the ring is the whole memory bound.
  std::vector<std::optional<UnitResult>> parked(static_cast<std::size_t>(window_units));

  std::optional<Characterizer> master;
  std::optional<stats::TimeSeries> total_players;
  std::vector<ShardOutcome> shard_outcomes(static_cast<std::size_t>(servers));
  std::uint64_t total_packets = 0;
  obs::MetricsRegistry merged_metrics;
  obs::TraceLog merged_trace;
  obs::FlightRecorder merged_recorder;

  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_m;

  std::vector<WorkerTelemetry> telemetry(static_cast<std::size_t>(workers));

  // ---- One shard, exactly as a standalone run would execute it -----------
  auto run_server = [&](int server) {
    ServerResult r;
    game::GameConfig server_config = config.server;
    server_config.seed =
        sim::SubstreamSeed(config.base_seed, static_cast<std::uint64_t>(server));
    if (config.configure_shard) config.configure_shard(server, server_config);
    GT_CHECK_LE(server_config.sessions.population, population)
        << "RunFleet: configure_shard grew shard " << server
        << "'s identity pool beyond the template's - the IP namespaces would collide";
    r.seed = server_config.seed;
    r.partial.emplace(config.analysis);
    r.trace.emplace(/*pid=*/server, config.trace_max_events);
    if (ambient.trace != nullptr) {
      r.trace->SetCategoryEnabled("tick", ambient.trace->CategoryEnabled("tick"));
    }
    // An ambient flight recorder sets the sampling grid; every shard then
    // records its own snapshot stream on that grid. Shards never run a
    // watchdog or flush Prometheus - alerting and exposition happen once,
    // against the merged stream.
    if (ambient.recorder != nullptr) r.recorder.emplace(ambient.recorder->options());
    // Each shard observes its own registry and log (folded below in shard
    // order); only shard 0 may keep the operator heartbeat, so an N-way
    // run does not interleave N pulses on stderr.
    const obs::ScopedObsBinding bind(
        {.metrics = &r.metrics,
         .trace = &*r.trace,
         .recorder = r.recorder.has_value() ? &*r.recorder : nullptr,
         .shard_id = server,
         .heartbeat = ambient.heartbeat && server == 0});
    // Fuse the shard chain: the namespace shift is applied to the IP
    // column once and the characterizer is reached without interior
    // virtual hops. The shift packs this server into the host bits the
    // identity pool leaves unused, so thousands of shards stay disjoint.
    trace::ShardNamespaceSink namespaced(
        trace::ShardNamespaceSink::ExplicitShift{
            game::ShardIpShift(static_cast<std::uint32_t>(server), population)},
        *r.partial);
    const std::unique_ptr<trace::FusedChain> fused = trace::FuseChain(namespaced);
    auto run = RunServerTrace(server_config, *fused);
    r.stats = run.stats;
    r.players = std::move(run.players);
    return r;
  };

  // ---- Master fold, strictly in server order (caller holds reduce_m) -----
  auto absorb = [&](UnitResult&& unit) {
    GT_PROF_SCOPE("core.fleet.merge");
    int server = unit.first_server;
    for (ServerResult& r : unit.servers) {
      if (!master.has_value()) {
        master.emplace(std::move(*r.partial));
        total_players.emplace(std::move(r.players));
      } else {
        master->Merge(std::move(*r.partial));
        total_players->Merge(r.players);
      }
      shard_outcomes[static_cast<std::size_t>(server)] = ShardOutcome{server, r.seed, r.stats};
      total_packets += r.stats.packets_emitted;
      merged_metrics.Merge(r.metrics);
      merged_trace.Merge(std::move(*r.trace));
      if (r.recorder.has_value()) merged_recorder.Merge(*r.recorder);
      ++server;
    }
  };

  auto worker_main = [&](int w) {
    if (config.schedule.pin_threads) PinThreadToCore(w);
    WorkerTelemetry& tele = telemetry[static_cast<std::size_t>(w)];
    WorkerQueue& own = queues[static_cast<std::size_t>(w)];
    for (;;) {
      if (failed.load(std::memory_order_acquire)) return;

      // Claim: own front first, then steal from the back of the fullest
      // peer. Queues only drain, so finding every queue empty means every
      // unit is claimed and this worker is done.
      int unit = -1;
      {
        const std::lock_guard<std::mutex> lock(own.m);
        if (!own.q.empty()) {
          unit = own.q.front();
          own.q.pop_front();
        }
      }
      if (unit < 0 && config.schedule.steal && workers > 1) {
        GT_PROF_SCOPE("core.fleet.steal");
        for (;;) {
          int victim = -1;
          std::size_t victim_backlog = 0;
          for (int v = 0; v < workers; ++v) {
            if (v == w) continue;
            const std::lock_guard<std::mutex> lock(queues[static_cast<std::size_t>(v)].m);
            if (queues[static_cast<std::size_t>(v)].q.size() > victim_backlog) {
              victim_backlog = queues[static_cast<std::size_t>(v)].q.size();
              victim = v;
            }
          }
          if (victim < 0) break;
          const std::lock_guard<std::mutex> lock(queues[static_cast<std::size_t>(victim)].m);
          auto& victim_q = queues[static_cast<std::size_t>(victim)].q;
          if (victim_q.empty()) continue;  // raced with the victim; rescan
          unit = victim_q.back();
          victim_q.pop_back();
          ++tele.steals;
          break;
        }
      }
      if (unit < 0) return;

      // Admission: hold the claimed unit until it fits the live window.
      // Waiting here (not before claiming) is what bounds memory - the
      // unit's results do not exist yet.
      {
        std::unique_lock<std::mutex> lock(reduce_m);
        if (unit >= cursor + window_units) {
          const auto wait_start = std::chrono::steady_clock::now();
          admission_cv.wait(lock, [&] {
            return failed.load(std::memory_order_relaxed) || unit < cursor + window_units;
          });
          tele.idle_ns += static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - wait_start)
                  .count());
          if (failed.load(std::memory_order_relaxed)) return;
        }
        ++live_units;
        peak_live_units = std::max(peak_live_units, live_units);
      }

      // Run every shard of the unit sequentially on this worker.
      UnitResult unit_result;
      unit_result.first_server = unit * unit_size;
      const int last_server = std::min(servers, unit_result.first_server + unit_size);
      try {
        unit_result.servers.reserve(
            static_cast<std::size_t>(last_server - unit_result.first_server));
        for (int s = unit_result.first_server; s < last_server; ++s) {
          unit_result.servers.push_back(run_server(s));
          ++tele.shards_run;
        }
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_m);
          if (!error) error = std::current_exception();
        }
        // The store must happen under reduce_m: a peer that just evaluated
        // the admission predicate (saw failed==false) but has not yet
        // blocked would otherwise miss this notify and sleep forever once
        // this worker - the last possible notifier - exits.
        {
          const std::lock_guard<std::mutex> lock(reduce_m);
          failed.store(true, std::memory_order_release);
        }
        admission_cv.notify_all();
        return;
      }
      ++tele.units_run;

      // Park, then drain every consecutive ready unit starting at the
      // cursor. Whichever worker completes the missing unit performs the
      // whole run of merges; the fold order is the unit order (hence the
      // server order), never the completion order.
      {
        const std::lock_guard<std::mutex> lock(reduce_m);
        parked[static_cast<std::size_t>(unit % window_units)] = std::move(unit_result);
        while (parked[static_cast<std::size_t>(cursor % window_units)].has_value()) {
          UnitResult ready =
              std::move(*parked[static_cast<std::size_t>(cursor % window_units)]);
          parked[static_cast<std::size_t>(cursor % window_units)].reset();
          absorb(std::move(ready));
          ++cursor;
          --live_units;
          ++merged_units;
        }
        admission_cv.notify_all();
      }
    }
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
    for (auto& t : pool) t.join();
  }
  if (error) std::rethrow_exception(error);
  GT_CHECK_EQ(merged_units, static_cast<std::uint64_t>(units))
      << "RunFleet: scheduler lost work units (internal bug)";

  FleetResult result{.report = master->Finish(config.server.trace_duration),
                     .shards = std::move(shard_outcomes),
                     .total_players = std::move(*total_players),
                     .total_packets = total_packets,
                     .threads_used = workers,
                     .metrics = std::move(merged_metrics),
                     .trace_log = std::move(merged_trace),
                     .recorder = std::move(merged_recorder)};
  // Bounded-buffer trace loss would otherwise be invisible in the merged
  // registry: the per-shard drop counts only live inside the TraceLog.
  result.metrics.counter("obs.trace.dropped_events").Add(result.trace_log.dropped());

  // Scheduler telemetry is worker-count-dependent by construction, so it
  // goes in its own registry - result.metrics, the flight stream and the
  // ambient context keep the bit-identical-across-workers contract.
  obs::MetricsRegistry& sched = result.scheduler_metrics;
  sched.gauge("fleet.scheduler.workers").Set(static_cast<double>(workers));
  sched.gauge("fleet.scheduler.units").Set(static_cast<double>(units));
  sched.gauge("fleet.scheduler.unit_size").Set(static_cast<double>(unit_size));
  sched.gauge("fleet.scheduler.window_units").Set(static_cast<double>(window_units));
  sched.gauge("fleet.scheduler.peak_live_units", obs::Gauge::MergeMode::kMax)
      .Set(static_cast<double>(peak_live_units));
  sched.counter("fleet.scheduler.merged_units").Add(merged_units);
  for (int w = 0; w < workers; ++w) {
    const std::string prefix = "fleet.worker." + std::to_string(w);
    const WorkerTelemetry& tele = telemetry[static_cast<std::size_t>(w)];
    sched.counter(prefix + ".steals").Add(tele.steals);
    sched.counter(prefix + ".idle_ns").Add(tele.idle_ns);
    sched.counter(prefix + ".shards_run").Add(tele.shards_run);
    sched.counter(prefix + ".units_run").Add(tele.units_run);
  }

  // Flow into the caller's ambient context too, so a bound --metrics-out /
  // --trace-out export sees the fleet without extra plumbing.
  if (ambient.metrics != nullptr) ambient.metrics->Merge(result.metrics);
  if (ambient.trace != nullptr) {
    obs::TraceLog copy = result.trace_log;
    ambient.trace->Merge(std::move(copy));
  }
  if (ambient.recorder != nullptr) {
    ambient.recorder->Merge(result.recorder);
    // Alert once, over the merged deterministic stream.
    if (ambient.watchdog != nullptr) ambient.watchdog->CatchUp(*ambient.recorder);
  }
  return result;
}

}  // namespace gametrace::core
