#include "core/fleet.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "obs/obs.h"
#include "obs/watchdog.h"
#include "sim/rng.h"
#include "trace/capture.h"
#include "trace/fused_chain.h"

#include "core/check.h"

namespace gametrace::core {

FleetConfig FleetConfig::Scaled(int shards, double duration) {
  FleetConfig config;
  config.shards = shards;
  config.server = game::GameConfig::ScaledDefaults(duration);
  return config;
}

int ResolveWorkerCount(int n, int threads) noexcept {
  int workers = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(workers, 1, std::max(n, 1));
}

void ParallelFor(int n, int threads, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  const int workers = ResolveWorkerCount(n, threads);
  if (workers == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          const std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (error) std::rethrow_exception(error);
}

FleetResult RunFleet(const FleetConfig& config) {
  GT_CHECK_GT(config.shards, 0) << "RunFleet: shards must be positive";
  GT_CHECK_LE(config.shards, 245) << "RunFleet: at most 245 shards fit the IP namespace";

  struct ShardSlot {
    std::optional<Characterizer> partial;
    game::CsServer::Stats stats;
    stats::TimeSeries players{0.0, 60.0};
    std::uint64_t seed = 0;
    obs::MetricsRegistry metrics;
    std::optional<obs::TraceLog> trace;
    std::optional<obs::FlightRecorder> recorder;
  };
  std::vector<ShardSlot> slots(static_cast<std::size_t>(config.shards));

  // Category defaults of the ambient trace log (when one is bound) carry
  // over to the shard logs, so e.g. enabling "tick" upstream enables it in
  // every shard.
  const obs::ObsContext ambient = obs::Current();

  ParallelFor(config.shards, config.threads, [&](int shard) {
    ShardSlot& slot = slots[static_cast<std::size_t>(shard)];
    game::GameConfig server = config.server;
    server.seed = sim::SubstreamSeed(config.base_seed, static_cast<std::uint64_t>(shard));
    slot.seed = server.seed;
    slot.partial.emplace(config.analysis);
    slot.trace.emplace(/*pid=*/shard, config.trace_max_events);
    if (ambient.trace != nullptr) {
      slot.trace->SetCategoryEnabled("tick", ambient.trace->CategoryEnabled("tick"));
    }
    // An ambient flight recorder sets the sampling grid; every shard then
    // records its own snapshot stream on that grid. Shards never run a
    // watchdog or flush Prometheus - alerting and exposition happen once,
    // against the merged stream.
    if (ambient.recorder != nullptr) slot.recorder.emplace(ambient.recorder->options());
    // Each shard observes its own registry and log (merged below in shard
    // order); only shard 0 may keep the operator heartbeat, so an N-way
    // run does not interleave N pulses on stderr.
    const obs::ScopedObsBinding bind(
        {.metrics = &slot.metrics,
         .trace = &*slot.trace,
         .recorder = slot.recorder.has_value() ? &*slot.recorder : nullptr,
         .shard_id = shard,
         .heartbeat = ambient.heartbeat && shard == 0});
    // Fuse the shard chain: the shard-id validation still happens in the
    // ShardNamespaceSink constructor, but delivery goes through the fused
    // sink - the namespace shift is applied to the IP column once and the
    // characterizer is reached without interior virtual hops.
    trace::ShardNamespaceSink namespaced(static_cast<std::uint32_t>(shard), *slot.partial);
    const std::unique_ptr<trace::FusedChain> fused = trace::FuseChain(namespaced);
    auto run = RunServerTrace(server, *fused);
    slot.stats = run.stats;
    slot.players = std::move(run.players);
  });

  // Reduce in shard order on this thread: the only floating-point additions
  // whose order could depend on scheduling happen here, in a fixed order.
  Characterizer merged = std::move(*slots[0].partial);
  stats::TimeSeries total_players = std::move(slots[0].players);
  for (std::size_t i = 1; i < slots.size(); ++i) {
    merged.Merge(std::move(*slots[i].partial));
    total_players.Merge(slots[i].players);
  }

  FleetResult result{.report = merged.Finish(config.server.trace_duration),
                     .shards = {},
                     .total_players = std::move(total_players),
                     .total_packets = 0,
                     .threads_used = ResolveWorkerCount(config.shards, config.threads)};
  result.shards.reserve(slots.size());
  for (std::size_t i = 0; i < slots.size(); ++i) {
    result.shards.push_back(ShardOutcome{static_cast<int>(i), slots[i].seed, slots[i].stats});
    result.total_packets += slots[i].stats.packets_emitted;
    result.metrics.Merge(slots[i].metrics);
    result.trace_log.Merge(std::move(*slots[i].trace));
    if (slots[i].recorder.has_value()) result.recorder.Merge(*slots[i].recorder);
  }
  // Bounded-buffer trace loss would otherwise be invisible in the merged
  // registry: the per-shard drop counts only live inside the TraceLog.
  result.metrics.counter("obs.trace.dropped_events").Add(result.trace_log.dropped());
  // Flow into the caller's ambient context too, so a bound --metrics-out /
  // --trace-out export sees the fleet without extra plumbing.
  if (ambient.metrics != nullptr) ambient.metrics->Merge(result.metrics);
  if (ambient.trace != nullptr) {
    obs::TraceLog copy = result.trace_log;
    ambient.trace->Merge(std::move(copy));
  }
  if (ambient.recorder != nullptr) {
    ambient.recorder->Merge(result.recorder);
    // Alert once, over the merged deterministic stream.
    if (ambient.watchdog != nullptr) ambient.watchdog->CatchUp(*ambient.recorder);
  }
  return result;
}

}  // namespace gametrace::core
