#include "core/fleet.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <exception>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include "core/thread_annotations.h"
#include "game/client.h"
#include "obs/obs.h"
#include "obs/prof.h"
#include "obs/watchdog.h"
#include "sim/rng.h"
#include "trace/capture.h"
#include "trace/fused_chain.h"

#include "core/check.h"

namespace gametrace::core {
namespace {

// Everything one shard produces, parked until the merge cursor reaches it.
struct ServerResult {
  std::uint64_t seed = 0;
  game::CsServer::Stats stats;
  stats::TimeSeries players{0.0, 60.0};
  std::optional<Characterizer> partial;
  obs::MetricsRegistry metrics;
  std::optional<obs::TraceLog> trace;
  std::optional<obs::FlightRecorder> recorder;
};

// A contiguous run of shards executed as one schedulable task. Per-server
// results are kept separate (not pre-folded) so the master reduction can
// fold in strictly increasing server order whatever the unit size - the
// merge operators on floating accumulators are deterministic for a fixed
// fold order but not associative in bits, so grouping must never reach
// the fold.
struct UnitResult {
  int first_server = 0;
  std::vector<ServerResult> servers;
};

// Per-worker scheduler telemetry, written by exactly one worker thread and
// read after the join. The _ns components are disjoint slices of the
// worker's lifetime (span_ns); BuildSchedReport derives the residual idle
// term, so the decomposition always sums to the measured span exactly.
struct WorkerTelemetry {
  std::uint64_t steals = 0;
  std::uint64_t work_ns = 0;   // executing unit shards
  std::uint64_t steal_ns = 0;  // scanning peer queues (hit or miss)
  std::uint64_t stall_ns = 0;  // blocked on the reduction admission window
  std::uint64_t merge_ns = 0;  // inside Commit (parking + cursor folds)
  std::uint64_t span_ns = 0;   // worker start to worker exit
  std::uint64_t shards_run = 0;
  std::uint64_t units_run = 0;
  std::vector<std::uint64_t> steal_hits;     // per-victim successful steals
  std::vector<obs::SchedUnitSample> units;   // one record per executed unit
};

// Wall-clock for the scheduler's diagnostic channel. steady_clock by
// contract: spans must be monotone within a worker track, and the
// diagnostic channel is exempt from the determinism lint that bans clocks
// in merge paths (nothing here ever reaches a merged surface).
using SchedClock = std::chrono::steady_clock;

std::uint64_t NsBetween(SchedClock::time_point t0, SchedClock::time_point t1) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

// One work-stealing deque. Units are dealt round-robin, so every queue
// holds an ascending sequence and queue k's front is the lowest unclaimed
// unit of worker k. Own pops take the front, steals take the back of the
// fullest victim: together with FIFO pops this keeps the globally lowest
// unclaimed unit at some queue front, which is what makes the admission
// window deadlock-free (the worker owning that front is never blocked on a
// higher unit than the one it will claim next).
struct WorkerQueue {
  core::Mutex m;
  std::deque<int> q GT_GUARDED_BY(m);
};

// The streaming ordered reduction. Completed-but-unmerged units park in a
// bounded ring; in-flight units always lie in [cursor, cursor + window),
// so indexing by unit % window is collision-free and the ring is the whole
// memory bound. Every piece of cross-worker state is a member here, with
// its locking contract in the type: the master accumulators and the
// cursor/ring under m_, the first-error slot under error_m_, and the
// failure flag an atomic whose publication protocol is documented at its
// store site.
class StreamingReduction {
 public:
  StreamingReduction(int servers, int window_units)
      : window_units_(window_units),
        parked_(static_cast<std::size_t>(window_units)),
        shard_outcomes_(static_cast<std::size_t>(servers)) {}

  // Fast-path check for worker loops. memory_order_acquire pairs with the
  // release store in Poison(): a worker that observes the flag also
  // observes every write the failing worker published before raising it
  // (the error itself is additionally ordered by error_m_, so acquire here
  // is belt-and-braces for the flag's own consumers, not a correctness
  // requirement).
  [[nodiscard]] bool Failed() const noexcept {
    return failed_.load(std::memory_order_acquire);
  }

  // Admission: holds the *claimed* unit until it fits the live window.
  // Waiting here (not before claiming) is what bounds memory - the unit's
  // results do not exist yet. Returns false if the run failed while
  // waiting; accumulates any blocked time into `stall_ns`.
  [[nodiscard]] bool Admit(int unit, std::uint64_t& stall_ns) GT_EXCLUDES(m_) {
    const core::MutexLock lock(m_);
    if (unit >= cursor_ + window_units_ && !failed_.load(std::memory_order_relaxed)) {
      const auto wait_start = SchedClock::now();
      // Guarded predicate spelled as an explicit loop: a wait lambda would
      // read cursor_ outside any annotated scope (see CondVar::Wait note).
      while (!failed_.load(std::memory_order_relaxed) && unit >= cursor_ + window_units_) {
        admission_cv_.Wait(m_);
      }
      stall_ns += NsBetween(wait_start, SchedClock::now());
    }
    if (failed_.load(std::memory_order_relaxed)) return false;
    ++live_units_;
    peak_live_units_ = std::max(peak_live_units_, live_units_);
    return true;
  }

  // Parks the completed unit, then drains every consecutive ready unit
  // starting at the cursor. Whichever worker completes the missing unit
  // performs the whole run of merges; the fold order is the unit order
  // (hence the server order), never the completion order. Returns how
  // many units this call folded (0 = parked only), for the merge span's
  // label and the reconciliation tests.
  int Commit(int unit, UnitResult&& result) GT_EXCLUDES(m_) {
    const core::MutexLock lock(m_);
    parked_[static_cast<std::size_t>(unit % window_units_)] = std::move(result);
    int folded = 0;
    while (parked_[static_cast<std::size_t>(cursor_ % window_units_)].has_value()) {
      UnitResult ready =
          std::move(*parked_[static_cast<std::size_t>(cursor_ % window_units_)]);
      parked_[static_cast<std::size_t>(cursor_ % window_units_)].reset();
      Absorb(std::move(ready));
      ++cursor_;
      --live_units_;
      ++merged_units_;
      ++folded;
    }
    admission_cv_.NotifyAll();
    return folded;
  }

  // Records the first error and poisons the admission window.
  void Poison(std::exception_ptr error) GT_EXCLUDES(m_, error_m_) {
    {
      const core::MutexLock lock(error_m_);
      if (!error_) error_ = std::move(error);
    }
    {
      // The release store must happen under m_: a peer that just evaluated
      // the admission predicate (saw failed_ == false) but has not yet
      // blocked would otherwise miss this notify and sleep forever once
      // this worker - the last possible notifier - exits.
      const core::MutexLock lock(m_);
      failed_.store(true, std::memory_order_release);
    }
    admission_cv_.NotifyAll();
  }

  // Post-join: rethrows the first recorded error on the calling thread.
  void RethrowIfFailed() GT_EXCLUDES(error_m_) {
    std::exception_ptr error;
    {
      const core::MutexLock lock(error_m_);
      error = std::move(error_);
    }
    if (error) std::rethrow_exception(error);
  }

  // Post-join: moves the master accumulators out. Locking is uncontended
  // here (workers are joined) but keeps the contract uniform - no member
  // is ever touched without its capability.
  struct Harvest {
    std::optional<Characterizer> master;
    std::optional<stats::TimeSeries> total_players;
    std::vector<ShardOutcome> shard_outcomes;
    std::uint64_t total_packets = 0;
    obs::MetricsRegistry metrics;
    obs::TraceLog trace;
    obs::FlightRecorder recorder;
    std::uint64_t merged_units = 0;
    int peak_live_units = 0;
  };
  [[nodiscard]] Harvest TakeResults() GT_EXCLUDES(m_) {
    const core::MutexLock lock(m_);
    Harvest h;
    h.master = std::move(master_);
    h.total_players = std::move(total_players_);
    h.shard_outcomes = std::move(shard_outcomes_);
    h.total_packets = total_packets_;
    h.metrics = std::move(merged_metrics_);
    h.trace = std::move(merged_trace_);
    h.recorder = std::move(merged_recorder_);
    h.merged_units = merged_units_;
    h.peak_live_units = peak_live_units_;
    return h;
  }

 private:
  // Master fold, strictly in server order.
  void Absorb(UnitResult&& unit) GT_REQUIRES(m_) {
    GT_PROF_SCOPE("core.fleet.merge");
    int server = unit.first_server;
    for (ServerResult& r : unit.servers) {
      if (!master_.has_value()) {
        master_.emplace(std::move(*r.partial));
        total_players_.emplace(std::move(r.players));
      } else {
        master_->Merge(std::move(*r.partial));
        total_players_->Merge(r.players);
      }
      shard_outcomes_[static_cast<std::size_t>(server)] =
          ShardOutcome{server, r.seed, r.stats};
      total_packets_ += r.stats.packets_emitted;
      merged_metrics_.Merge(r.metrics);
      merged_trace_.Merge(std::move(*r.trace));
      if (r.recorder.has_value()) merged_recorder_.Merge(*r.recorder);
      ++server;
    }
  }

  const int window_units_;

  core::Mutex m_;
  core::CondVar admission_cv_;
  int cursor_ GT_GUARDED_BY(m_) = 0;  // next unit index the master fold will absorb
  int live_units_ GT_GUARDED_BY(m_) = 0;
  int peak_live_units_ GT_GUARDED_BY(m_) = 0;
  std::uint64_t merged_units_ GT_GUARDED_BY(m_) = 0;
  std::vector<std::optional<UnitResult>> parked_ GT_GUARDED_BY(m_);

  std::optional<Characterizer> master_ GT_GUARDED_BY(m_);
  std::optional<stats::TimeSeries> total_players_ GT_GUARDED_BY(m_);
  std::vector<ShardOutcome> shard_outcomes_ GT_GUARDED_BY(m_);
  std::uint64_t total_packets_ GT_GUARDED_BY(m_) = 0;
  obs::MetricsRegistry merged_metrics_ GT_GUARDED_BY(m_);
  obs::TraceLog merged_trace_ GT_GUARDED_BY(m_);
  obs::FlightRecorder merged_recorder_ GT_GUARDED_BY(m_);

  // Written once (false -> true) under m_ with release; read with acquire
  // outside m_ on worker fast paths and relaxed under m_ in the admission
  // predicate, where the mutex already orders it.
  std::atomic<bool> failed_{false};
  core::Mutex error_m_;
  std::exception_ptr error_ GT_GUARDED_BY(error_m_);
};

void PinThreadToCore(int index) {
#if defined(__linux__)
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<unsigned>(index) % cores, &set);
  (void)pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
#else
  (void)index;
#endif
}

}  // namespace

FleetConfig FleetConfig::Scaled(int shards, double duration) {
  FleetConfig config;
  config.shards = shards;
  config.server = game::GameConfig::ScaledDefaults(duration);
  return config;
}

int ResolveWorkerCount(int n, int threads) noexcept {
  int workers = threads > 0 ? threads : static_cast<int>(std::thread::hardware_concurrency());
  return std::clamp(workers, 1, std::max(n, 1));
}

void ParallelFor(int n, int threads, FunctionRef<void(int)> fn) {
  if (n <= 0) return;
  const int workers = ResolveWorkerCount(n, threads);
  if (workers == 1) {
    for (int i = 0; i < n; ++i) fn(i);
    return;
  }

  // First-error slot, with its locking contract in the type.
  struct ErrorSlot {
    core::Mutex m;
    std::exception_ptr error GT_GUARDED_BY(m);
  } slot;
  // relaxed everywhere: the flag only curtails the claim loop; the error
  // object itself is published via slot.m, and thread join orders
  // everything before the rethrow.
  std::atomic<int> next{0};
  std::atomic<bool> failed{false};
  auto worker = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const int i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        fn(i);
      } catch (...) {
        {
          const core::MutexLock lock(slot.m);
          if (!slot.error) slot.error = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  {
    const core::MutexLock lock(slot.m);
    if (slot.error) std::rethrow_exception(slot.error);
  }
}

FleetResult RunFleet(const FleetConfig& config) {
  GT_CHECK_GT(config.shards, 0) << "RunFleet: shards must be positive";
  const std::size_t population = config.server.sessions.population;
  GT_CHECK_LE(static_cast<std::size_t>(config.shards), game::MaxDisjointServers(population))
      << "RunFleet: shard count exceeds the disjoint IP namespace at population "
      << population;

  const int servers = config.shards;
  int unit_size = config.schedule.unit_size;
  if (unit_size <= 0) unit_size = std::max(1, servers / 256);
  unit_size = std::min(unit_size, servers);
  const int units = (servers + unit_size - 1) / unit_size;
  const int workers = ResolveWorkerCount(units, config.threads);
  const int window_units =
      std::max(1, workers * std::max(1, config.schedule.max_live_units_per_worker));

  // Category defaults of the ambient trace log (when one is bound) carry
  // over to the shard logs, so e.g. enabling "tick" upstream enables it in
  // every shard.
  const obs::ObsContext ambient = obs::Current();

  // ---- Scheduler state ---------------------------------------------------
  std::vector<WorkerQueue> queues(static_cast<std::size_t>(workers));
  for (int u = 0; u < units; ++u) {
    WorkerQueue& queue = queues[static_cast<std::size_t>(u % workers)];
    const core::MutexLock lock(queue.m);  // uncontended: workers not started
    queue.q.push_back(u);
  }

  StreamingReduction reduction(servers, window_units);

  std::vector<WorkerTelemetry> telemetry(static_cast<std::size_t>(workers));

  // ---- Scheduler timeline (diagnostic channel) ---------------------------
  // One bounded track per worker, pid = worker index. Each worker writes
  // only its own track (no locking, like telemetry), and all spans share
  // one epoch so the tracks line up on a common wall-clock axis. Nothing
  // recorded here ever reaches the merged surfaces.
  const bool sched_tracing = config.schedule.trace;
  const SchedClock::time_point sched_epoch = SchedClock::now();
  std::vector<obs::TraceLog> sched_tracks;
  if (sched_tracing) {
    sched_tracks.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      sched_tracks.emplace_back(/*pid=*/w, config.schedule.trace_max_events_per_worker);
    }
  }
  const auto sched_s = [sched_epoch](SchedClock::time_point t) {
    return std::chrono::duration<double>(t - sched_epoch).count();
  };

  // ---- One shard, exactly as a standalone run would execute it -----------
  auto run_server = [&](int server) {
    ServerResult r;
    game::GameConfig server_config = config.server;
    server_config.seed =
        sim::SubstreamSeed(config.base_seed, static_cast<std::uint64_t>(server));
    if (config.configure_shard) config.configure_shard(server, server_config);
    GT_CHECK_LE(server_config.sessions.population, population)
        << "RunFleet: configure_shard grew shard " << server
        << "'s identity pool beyond the template's - the IP namespaces would collide";
    r.seed = server_config.seed;
    r.partial.emplace(config.analysis);
    r.trace.emplace(/*pid=*/server, config.trace_max_events);
    if (ambient.trace != nullptr) {
      r.trace->SetCategoryEnabled("tick", ambient.trace->CategoryEnabled("tick"));
    }
    // An ambient flight recorder sets the sampling grid; every shard then
    // records its own snapshot stream on that grid. Shards never run a
    // watchdog or flush Prometheus - alerting and exposition happen once,
    // against the merged stream.
    if (ambient.recorder != nullptr) r.recorder.emplace(ambient.recorder->options());
    // Each shard observes its own registry and log (folded below in shard
    // order); only shard 0 may keep the operator heartbeat, so an N-way
    // run does not interleave N pulses on stderr.
    const obs::ScopedObsBinding bind(
        {.metrics = &r.metrics,
         .trace = &*r.trace,
         .recorder = r.recorder.has_value() ? &*r.recorder : nullptr,
         .shard_id = server,
         .heartbeat = ambient.heartbeat && server == 0});
    // Fuse the shard chain: the namespace shift is applied to the IP
    // column once and the characterizer is reached without interior
    // virtual hops. The shift packs this server into the host bits the
    // identity pool leaves unused, so thousands of shards stay disjoint.
    trace::ShardNamespaceSink namespaced(
        trace::ShardNamespaceSink::ExplicitShift{
            game::ShardIpShift(static_cast<std::uint32_t>(server), population)},
        *r.partial);
    const std::unique_ptr<trace::FusedChain> fused = trace::FuseChain(namespaced);
    auto run = RunServerTrace(server_config, *fused);
    r.stats = run.stats;
    r.players = std::move(run.players);
    return r;
  };

  auto worker_loop = [&](int w, WorkerTelemetry& tele, obs::TraceLog* track) {
    WorkerQueue& own = queues[static_cast<std::size_t>(w)];
    for (;;) {
      if (reduction.Failed()) return;

      // Claim: own front first, then steal from the back of the fullest
      // peer. Queues only drain, so finding every queue empty means every
      // unit is claimed and this worker is done.
      int unit = -1;
      {
        const core::MutexLock lock(own.m);
        if (!own.q.empty()) {
          unit = own.q.front();
          own.q.pop_front();
        }
      }
      if (unit < 0 && config.schedule.steal && workers > 1) {
        GT_PROF_SCOPE("core.fleet.steal");
        const auto scan_start = SchedClock::now();
        int victim_hit = -1;
        for (;;) {
          int victim = -1;
          std::size_t victim_backlog = 0;
          for (int v = 0; v < workers; ++v) {
            if (v == w) continue;
            WorkerQueue& peer = queues[static_cast<std::size_t>(v)];
            const core::MutexLock lock(peer.m);
            if (peer.q.size() > victim_backlog) {
              victim_backlog = peer.q.size();
              victim = v;
            }
          }
          if (victim < 0) break;
          WorkerQueue& chosen = queues[static_cast<std::size_t>(victim)];
          const core::MutexLock lock(chosen.m);
          if (chosen.q.empty()) continue;  // raced with the victim; rescan
          unit = chosen.q.back();
          chosen.q.pop_back();
          ++tele.steals;
          ++tele.steal_hits[static_cast<std::size_t>(victim)];
          victim_hit = victim;
          break;
        }
        const auto scan_end = SchedClock::now();
        tele.steal_ns += NsBetween(scan_start, scan_end);
        if (track != nullptr) {
          track->Complete(victim_hit >= 0 ? "steal hit w" + std::to_string(victim_hit)
                                          : std::string("steal miss"),
                          "steal", sched_s(scan_start), sched_s(scan_end));
        }
      }
      if (unit < 0) return;

      {
        const auto admit_start = SchedClock::now();
        const std::uint64_t stall_before = tele.stall_ns;
        const bool admitted = reduction.Admit(unit, tele.stall_ns);
        // Only a *blocked* admission gets a span; an uncontended Admit is
        // a lock acquisition, not a schedulable interval.
        if (track != nullptr && tele.stall_ns > stall_before) {
          track->Complete("admit " + std::to_string(unit), "admit", sched_s(admit_start),
                          sched_s(SchedClock::now()));
        }
        if (!admitted) return;
      }

      // Run every shard of the unit sequentially on this worker.
      UnitResult unit_result;
      unit_result.first_server = unit * unit_size;
      const int last_server = std::min(servers, unit_result.first_server + unit_size);
      const auto unit_start = SchedClock::now();
      try {
        unit_result.servers.reserve(
            static_cast<std::size_t>(last_server - unit_result.first_server));
        for (int s = unit_result.first_server; s < last_server; ++s) {
          unit_result.servers.push_back(run_server(s));
          ++tele.shards_run;
        }
      } catch (...) {
        reduction.Poison(std::current_exception());
        return;
      }
      const auto unit_end = SchedClock::now();
      const std::uint64_t unit_ns = NsBetween(unit_start, unit_end);
      tele.work_ns += unit_ns;
      ++tele.units_run;
      tele.units.push_back(obs::SchedUnitSample{
          .unit = unit,
          .worker = w,
          .first_shard = unit_result.first_server,
          .shard_count = last_server - unit_result.first_server,
          .dur_ns = unit_ns,
      });
      if (track != nullptr) {
        track->Complete("unit " + std::to_string(unit) + " [" +
                            std::to_string(unit_result.first_server) + "," +
                            std::to_string(last_server) + ")",
                        "unit", sched_s(unit_start), sched_s(unit_end));
      }

      const auto commit_start = SchedClock::now();
      const int folded = reduction.Commit(unit, std::move(unit_result));
      const auto commit_end = SchedClock::now();
      tele.merge_ns += NsBetween(commit_start, commit_end);
      if (track != nullptr) {
        track->Complete("merge x" + std::to_string(folded), "merge", sched_s(commit_start),
                        sched_s(commit_end));
      }
    }
  };

  auto worker_main = [&](int w) {
    if (config.schedule.pin_threads) PinThreadToCore(w);
    WorkerTelemetry& tele = telemetry[static_cast<std::size_t>(w)];
    tele.steal_hits.assign(static_cast<std::size_t>(workers), 0);
    obs::TraceLog* track =
        sched_tracing ? &sched_tracks[static_cast<std::size_t>(w)] : nullptr;
    const auto start = SchedClock::now();
    worker_loop(w, tele, track);
    const auto end = SchedClock::now();
    tele.span_ns = NsBetween(start, end);
    // The lifetime span is recorded last; a track saturated by inner spans
    // would drop it, which the merged dropped count makes visible.
    if (track != nullptr) {
      track->Complete("worker " + std::to_string(w), "worker", sched_s(start), sched_s(end));
    }
  };

  if (workers == 1) {
    worker_main(0);
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) pool.emplace_back(worker_main, w);
    for (auto& t : pool) t.join();
  }
  reduction.RethrowIfFailed();
  StreamingReduction::Harvest harvest = reduction.TakeResults();
  GT_CHECK_EQ(harvest.merged_units, static_cast<std::uint64_t>(units))
      << "RunFleet: scheduler lost work units (internal bug)";

  FleetResult result{.report = harvest.master->Finish(config.server.trace_duration),
                     .shards = std::move(harvest.shard_outcomes),
                     .total_players = std::move(*harvest.total_players),
                     .total_packets = harvest.total_packets,
                     .threads_used = workers,
                     .metrics = std::move(harvest.metrics),
                     .trace_log = std::move(harvest.trace),
                     .recorder = std::move(harvest.recorder),
                     .scheduler_metrics = {},
                     .sched_report = {},
                     .sched_trace = obs::TraceLog()};
  // Bounded-buffer trace loss would otherwise be invisible in the merged
  // registry: the per-shard drop counts only live inside the TraceLog.
  result.metrics.counter("obs.trace.dropped_events").Add(result.trace_log.dropped());

  // Scheduler telemetry is worker-count-dependent by construction, so it
  // goes in its own registry - result.metrics, the flight stream and the
  // ambient context keep the bit-identical-across-workers contract.
  obs::MetricsRegistry& sched = result.scheduler_metrics;
  sched.gauge("fleet.scheduler.workers").Set(static_cast<double>(workers));
  sched.gauge("fleet.scheduler.units").Set(static_cast<double>(units));
  sched.gauge("fleet.scheduler.unit_size").Set(static_cast<double>(unit_size));
  sched.gauge("fleet.scheduler.window_units").Set(static_cast<double>(window_units));
  sched.gauge("fleet.scheduler.peak_live_units", obs::Gauge::MergeMode::kMax)
      .Set(static_cast<double>(harvest.peak_live_units));
  sched.counter("fleet.scheduler.merged_units").Add(harvest.merged_units);

  // Critical-path attribution: fold the per-worker measurements and unit
  // records into the report, then mirror them as fleet.worker.<w> counters
  // (idle_ns is the report's residual term, so the per-worker counters sum
  // to span_ns exactly).
  std::vector<obs::SchedWorkerSample> worker_samples;
  worker_samples.reserve(static_cast<std::size_t>(workers));
  std::vector<obs::SchedUnitSample> unit_samples;
  unit_samples.reserve(static_cast<std::size_t>(units));
  for (const WorkerTelemetry& tele : telemetry) {
    worker_samples.push_back(obs::SchedWorkerSample{
        .span_ns = tele.span_ns,
        .work_ns = tele.work_ns,
        .steal_ns = tele.steal_ns,
        .stall_ns = tele.stall_ns,
        .merge_ns = tele.merge_ns,
        .units = tele.units_run,
        .shards = tele.shards_run,
        .steals = tele.steals,
        .steal_hits = tele.steal_hits,
    });
    unit_samples.insert(unit_samples.end(), tele.units.begin(), tele.units.end());
  }
  result.sched_report = obs::BuildSchedReport(worker_samples, unit_samples);
  result.sched_report.DumpInto(sched);
  for (const obs::SchedReport::Worker& w : result.sched_report.per_worker) {
    const std::string prefix = "fleet.worker." + std::to_string(w.worker);
    sched.counter(prefix + ".steals").Add(w.steals);
    sched.counter(prefix + ".work_ns").Add(w.work_ns);
    sched.counter(prefix + ".steal_ns").Add(w.steal_ns);
    sched.counter(prefix + ".admission_stall_ns").Add(w.stall_ns);
    sched.counter(prefix + ".merge_ns").Add(w.merge_ns);
    sched.counter(prefix + ".idle_ns").Add(w.idle_ns);
    sched.counter(prefix + ".span_ns").Add(w.span_ns);
    sched.counter(prefix + ".shards_run").Add(w.shards);
    sched.counter(prefix + ".units_run").Add(w.units);
  }

  // The worker timeline: per-worker tracks merged into one log, each
  // event keeping its worker as the pid, so Perfetto renders one lane per
  // worker. Bounded end to end - the merged cap is the sum of the
  // per-worker caps, so Merge itself never drops.
  if (sched_tracing) {
    result.sched_trace = obs::TraceLog(
        /*pid=*/0, config.schedule.trace_max_events_per_worker *
                           static_cast<std::size_t>(workers) +
                       static_cast<std::size_t>(workers));
    for (obs::TraceLog& track : sched_tracks) {
      result.sched_trace.Merge(std::move(track));
    }
  }

  // Flow into the caller's ambient context too, so a bound --metrics-out /
  // --trace-out export sees the fleet without extra plumbing.
  if (ambient.metrics != nullptr) ambient.metrics->Merge(result.metrics);
  if (ambient.trace != nullptr) {
    obs::TraceLog copy = result.trace_log;
    ambient.trace->Merge(std::move(copy));
  }
  if (ambient.recorder != nullptr) {
    ambient.recorder->Merge(result.recorder);
    // Alert once, over the merged deterministic stream.
    if (ambient.watchdog != nullptr) ambient.watchdog->CatchUp(*ambient.recorder);
  }
  return result;
}

}  // namespace gametrace::core
