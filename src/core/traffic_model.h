// Fitted source models of game traffic (paper section IV-B: "the trace
// itself can be used to more accurately develop source models for
// simulation", after Borella's "Source Models of Network Game Traffic").
//
// TrafficModelFitter learns, per direction, the aggregate packet
// interarrival process (mean + coefficient of variation) and the empirical
// payload-size distribution. TrafficModelGenerator replays a statistically
// equivalent stream without simulating any game logic - the cheap stand-in
// for capacity studies.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "net/packet.h"
#include "sim/rng.h"
#include "stats/empirical_distribution.h"
#include "stats/histogram.h"
#include "stats/running_stats.h"
#include "trace/capture.h"

namespace gametrace::core {

struct DirectionModel {
  double packet_rate = 0.0;        // packets/sec
  double interarrival_mean = 0.0;  // seconds
  double interarrival_cv = 0.0;    // stddev / mean
  stats::EmpiricalDistribution sizes;
};

struct TrafficModel {
  DirectionModel inbound;
  DirectionModel outbound;
  double fitted_over_seconds = 0.0;
};

class TrafficModelFitter final : public trace::CaptureSink {
 public:
  // Capture timestamps may be mildly out of order (the game simulator
  // pre-dates client sends inside a tick window); packets are re-sorted
  // through a small reorder buffer before interarrival gaps are taken.
  // `reorder_horizon` must exceed the worst-case disorder (one tick).
  explicit TrafficModelFitter(double reorder_horizon = 0.25);

  void OnPacket(const net::PacketRecord& record) override;

  // Drains the reorder buffers and fits. Requires at least two packets in
  // each direction. The fitter is spent afterwards.
  [[nodiscard]] TrafficModel Fit();

 private:
  struct DirectionState {
    stats::RunningStats gaps;
    std::priority_queue<double, std::vector<double>, std::greater<>> pending;
    double last = -1.0;

    void Release(double up_to);
    void Drain();
  };

  double horizon_;
  DirectionState in_;
  DirectionState out_;
  stats::Histogram sizes_in_;
  stats::Histogram sizes_out_;
  double first_time_ = -1.0;
  double last_time_ = 0.0;
};

class TrafficModelGenerator {
 public:
  TrafficModelGenerator(TrafficModel model, std::uint64_t seed);

  // Emits a synthetic stream over [0, duration) into `sink`. Interarrivals
  // are lognormal with the fitted mean/cv (degenerating to deterministic
  // when cv is ~0); sizes are drawn from the fitted empirical distribution.
  // Returns the number of packets emitted.
  std::uint64_t Generate(double duration, trace::CaptureSink& sink);

 private:
  TrafficModel model_;
  sim::Rng rng_;
};

}  // namespace gametrace::core
