// Sharded parallel simulation engine: a fleet of independent servers.
//
// The paper's single-server analysis scopes itself carefully (§IV-B): the
// *aggregate* traffic of the whole collection of Counter-Strike servers
// smooths out and inherits its scaling from the user population. To study
// fleet-scale populations without being wall-clock-bound to one thread,
// this engine runs N independent 22-slot server shards concurrently and
// reduces their analyses with the exact Merge operations of the
// stats/trace/core layers.
//
// Scheduling (DESIGN.md "Fleet scheduling"): servers are grouped into
// contiguous *work units* (shards-of-shards) distributed round-robin over
// per-worker queues; a worker that drains its own queue steals from the
// back of the fullest peer, so uneven shards never idle workers. Shard
// results are *streamed* into the master accumulators as units complete -
// an admission window bounds the in-flight set to
// workers * max_live_units_per_worker units, so peak memory is O(live
// shards per worker), never O(total shards).
//
// Determinism invariant: the merged CharacterizationReport is a pure
// function of (config, base_seed) - bit-identical for any worker-thread
// count, unit size, window, steal policy or completion order - because
// each shard is a deterministic single-threaded simulation seeded from its
// own SplitMix64 substream (sim::SubstreamSeed), and the streaming
// reduction folds per-server results in strictly increasing server order
// regardless of which worker finished first (completed units park in a
// bounded ring until the merge cursor reaches them).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "core/function_ref.h"
#include "game/config.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/sched_report.h"
#include "obs/trace_log.h"

namespace gametrace::core {

// Scheduler knobs. Every field changes wall-clock and memory only, never
// the merged result (the unit partition is a pure function of the server
// count and unit_size, and the merge order is always server order).
struct FleetSchedule {
  // Servers per work unit; 0 = auto (shards/256, clamped to >= 1), chosen
  // so a large fleet presents a few hundred steal-able units. Must not
  // depend on the worker count, or the unit partition would too.
  int unit_size = 0;
  // Admission window: at most workers * this many units may be in flight
  // (running or parked awaiting their merge turn) at once. This is the
  // memory bound - each in-flight unit holds its servers' analysis
  // partials until the streaming reduction absorbs them.
  int max_live_units_per_worker = 2;
  // Scan other workers' queues when ours drains (from the back, so the
  // victim's front - the next unit the merge cursor wants - stays put).
  bool steal = true;
  // Pin worker w to CPU w % hardware_concurrency (Linux only; elsewhere a
  // no-op). Off by default: helps dedicated boxes, hurts shared CI.
  bool pin_threads = false;
  // Scheduler timeline tracing: record every unit execution (with its
  // shard range), steal scan (victim + hit/miss), admission-window wait
  // and merge-cursor fold as wall-clock spans, one TraceLog track per
  // worker (FleetResult::sched_trace, pid = worker index) - a fleet run
  // opens in Perfetto as a worker timeline. Diagnostic channel: spans are
  // wall-clock- and worker-count-dependent and never touch the merged
  // surfaces. Off by default; the per-worker counters and the
  // critical-path report are measured either way.
  bool trace = false;
  // Per-worker event cap for the scheduler timeline; past it the track
  // counts drops (TraceLog::dropped) instead of growing.
  std::size_t trace_max_events_per_worker = 1u << 16;
};

struct FleetConfig {
  // Number of independent server shards. Each shard's clients live in
  // their own IP namespace (game::ShardIpShift packs servers into the
  // host bits the identity pool leaves unused), so thousands of shards -
  // up to game::MaxDisjointServers(population), 251,904 at the default
  // 9000-identity pool - stay exactly mergeable.
  int shards = 4;
  // Worker threads; 0 = one per hardware core, always capped at the work
  // unit count. Changes wall-clock only, never the result.
  int threads = 0;
  // Shard s simulates with seed sim::SubstreamSeed(base_seed, s).
  std::uint64_t base_seed = 42;
  // Template server configuration; `seed` is overridden per shard and
  // `trace_duration` is the simulated window of every shard.
  game::GameConfig server;
  // Optional per-shard specialisation, applied after the substream seed
  // is assigned: heterogeneous fleets (mixed slot caps, rates, genres)
  // and deliberately uneven test workloads. Must be a pure function of
  // the shard index and thread-safe (it runs on worker threads in any
  // order), and must leave trace_duration and the analysis geometry
  // alone so shard results stay mergeable on one grid.
  std::function<void(int shard, game::GameConfig&)> configure_shard;
  CharacterizationOptions analysis;
  FleetSchedule schedule;
  // Per-shard trace-log capacity. The default matches a standalone run;
  // tests shrink it to exercise bounded-buffer drop accounting.
  std::size_t trace_max_events = obs::TraceLog::kDefaultMaxEvents;

  // A fleet of `shards` calibrated servers each simulating `duration`
  // seconds (rates and shapes untouched, as in GameConfig::ScaledDefaults).
  [[nodiscard]] static FleetConfig Scaled(int shards, double duration);
};

struct ShardOutcome {
  int shard_id = 0;
  std::uint64_t seed = 0;
  game::CsServer::Stats stats;
};

struct FleetResult {
  // Exact merge of every shard's analysis, finished against the common
  // simulated window.
  CharacterizationReport report;
  std::vector<ShardOutcome> shards;
  // Fleet-wide concurrent player count (sum of per-shard gauge series).
  stats::TimeSeries total_players{0.0, 60.0};
  std::uint64_t total_packets = 0;
  int threads_used = 0;
  // Per-shard observability, reduced in shard order: the merged registry is
  // bit-identical for any worker-thread count, and the trace log keeps each
  // event's originating shard as its pid. Both also flow into the caller's
  // ambient obs context, when one is bound.
  obs::MetricsRegistry metrics;
  obs::TraceLog trace_log;
  // Shard flight recorders merged snapshot-by-snapshot in shard order;
  // empty unless the ambient context binds a recorder (which sets the
  // sampling grid every shard follows). Byte-identical JSONL at any worker
  // count, like `metrics`.
  obs::FlightRecorder recorder;
  // Scheduler telemetry: fleet.worker.<i>.{steals,work_ns,steal_ns,
  // admission_stall_ns,merge_ns,span_ns,idle_ns,shards_run,units_run}
  // counters, fleet.scheduler.{units,unit_size,window,workers,
  // merged_units,peak_live_units}, and the fleet.critpath.* gauges the
  // sched report dumps. Worker-count-DEPENDENT by nature, so it lives
  // here - never in `metrics`, the flight stream or the ambient context,
  // which stay bit-identical across worker counts (the diagnostic-channel
  // exemption DESIGN.md "Fleet scheduling" documents).
  obs::MetricsRegistry scheduler_metrics;
  // Critical-path attribution built from the same measurements: per-worker
  // work/steal/stall/merge/idle decomposition (components sum to each
  // worker's span exactly), top-k straggler units, steal matrix,
  // imbalance ratio and scheduler SLO alerts. Always populated.
  obs::SchedReport sched_report;
  // The worker timeline (empty unless schedule.trace): per-worker span
  // tracks on the wall-clock axis, pid = worker index, Perfetto-openable
  // via TraceLog::WriteJson. Same diagnostic channel as the above.
  obs::TraceLog sched_trace;
};

// Runs every shard's RunServerTrace on the work-stealing worker pool and
// streams the per-shard partials into the master accumulators in shard
// order as units complete.
[[nodiscard]] FleetResult RunFleet(const FleetConfig& config);

// Resolved worker count for `n` work items: `threads` if positive, else one
// per hardware core; always clamped to [1, n].
[[nodiscard]] int ResolveWorkerCount(int n, int threads) noexcept;

// Runs fn(0), ..., fn(n-1) across `threads` workers (resolved as above) and
// blocks until all complete. Items are claimed dynamically; fn must only
// write state owned by its own index. The first exception thrown by any
// fn is rethrown on the calling thread after the pool drains. Takes a
// FunctionRef, so the dispatch path never allocates: the callable is
// borrowed for the duration of the call, which joins before returning.
void ParallelFor(int n, int threads, FunctionRef<void(int)> fn);

}  // namespace gametrace::core
