// Sharded parallel simulation engine: a fleet of independent servers.
//
// The paper's single-server analysis scopes itself carefully (§IV-B): the
// *aggregate* traffic of the whole collection of Counter-Strike servers
// smooths out and inherits its scaling from the user population. To study
// fleet-scale populations without being wall-clock-bound to one thread,
// this engine runs N independent server shards concurrently on a worker
// pool and reduces their analyses with the exact Merge operations of the
// stats/trace/core layers.
//
// Determinism invariant: the merged CharacterizationReport is a pure
// function of (config, base_seed) - bit-identical for any worker-thread
// count - because each shard is a deterministic single-threaded simulation
// seeded from its own SplitMix64 substream (sim::SubstreamSeed) and the
// reduction always runs in shard order on the calling thread.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/characterizer.h"
#include "core/experiment.h"
#include "game/config.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace_log.h"

namespace gametrace::core {

struct FleetConfig {
  // Number of independent server shards. Each shard's clients live in
  // their own IP namespace (trace::ShardNamespaceSink), so at most 245
  // shards fit above the 10/8 identity pool.
  int shards = 4;
  // Worker threads; 0 = one per hardware core, always capped at `shards`.
  // Changes wall-clock only, never the result.
  int threads = 0;
  // Shard s simulates with seed sim::SubstreamSeed(base_seed, s).
  std::uint64_t base_seed = 42;
  // Template server configuration; `seed` is overridden per shard and
  // `trace_duration` is the simulated window of every shard.
  game::GameConfig server;
  CharacterizationOptions analysis;
  // Per-shard trace-log capacity. The default matches a standalone run;
  // tests shrink it to exercise bounded-buffer drop accounting.
  std::size_t trace_max_events = obs::TraceLog::kDefaultMaxEvents;

  // A fleet of `shards` calibrated servers each simulating `duration`
  // seconds (rates and shapes untouched, as in GameConfig::ScaledDefaults).
  [[nodiscard]] static FleetConfig Scaled(int shards, double duration);
};

struct ShardOutcome {
  int shard_id = 0;
  std::uint64_t seed = 0;
  game::CsServer::Stats stats;
};

struct FleetResult {
  // Exact merge of every shard's analysis, finished against the common
  // simulated window.
  CharacterizationReport report;
  std::vector<ShardOutcome> shards;
  // Fleet-wide concurrent player count (sum of per-shard gauge series).
  stats::TimeSeries total_players{0.0, 60.0};
  std::uint64_t total_packets = 0;
  int threads_used = 0;
  // Per-shard observability, reduced in shard order: the merged registry is
  // bit-identical for any worker-thread count, and the trace log keeps each
  // event's originating shard as its pid. Both also flow into the caller's
  // ambient obs context, when one is bound.
  obs::MetricsRegistry metrics;
  obs::TraceLog trace_log;
  // Shard flight recorders merged snapshot-by-snapshot in shard order;
  // empty unless the ambient context binds a recorder (which sets the
  // sampling grid every shard follows). Byte-identical JSONL at any worker
  // count, like `metrics`.
  obs::FlightRecorder recorder;
};

// Runs every shard's RunServerTrace on the worker pool and reduces the
// per-shard partial characterizers in shard order.
[[nodiscard]] FleetResult RunFleet(const FleetConfig& config);

// Resolved worker count for `n` work items: `threads` if positive, else one
// per hardware core; always clamped to [1, n].
[[nodiscard]] int ResolveWorkerCount(int n, int threads) noexcept;

// Runs fn(0), ..., fn(n-1) across `threads` workers (resolved as above) and
// blocks until all complete. Items are claimed dynamically; fn must only
// write state owned by its own index. The first exception thrown by any
// fn is rethrown on the calling thread after the pool drains.
void ParallelFor(int n, int threads, const std::function<void(int)>& fn);

}  // namespace gametrace::core
