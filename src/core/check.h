// Contract-checking macros for the whole library.
//
//   GT_CHECK(cond) << "context";          // always on, in every build type
//   GT_CHECK_EQ(a, b) << "context";       // EQ NE LT LE GT GE, prints operands
//   GT_DCHECK(cond);                      // compiled out when NDEBUG (no eval)
//   GT_DCHECK_EQ(a, b);                   // EQ NE LT LE GT GE
//   GT_UNREACHABLE();                     // [[noreturn]] contract failure
//
// Policy (see DESIGN.md "Correctness tooling"):
//  - GT_CHECK guards API preconditions and cross-object compatibility
//    (merge geometry, shard ids, file-format sanity). A violation is a bug
//    in the caller; it must fail identically in Release.
//  - GT_DCHECK guards per-element hot-path invariants (bin indices inside a
//    batch, queue occupancy) where the enclosing GT_CHECK already validated
//    the batch. DCHECKs vanish from Release codegen, so they are free on the
//    paths BENCH_hotpath.json measures, and are re-enabled wholesale under
//    the asan-ubsan / tsan presets (GAMETRACE_ENABLE_DCHECKS=1).
//
// Failures route through a pluggable process-wide handler. The default
// prints file:line, the failed condition, captured operand values and the
// streamed message, then aborts. Tests install ThrowingContractHandler
// (see tests/gt_test_main.cc) so a violation becomes a catchable
// ContractViolation - death-style coverage without ASSERT_DEATH's
// fork-per-assertion overhead.
//
// Header-only on purpose: every subsystem library (stats, sim, net, ...)
// uses it, including ones below gametrace_core in the link graph.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>

// GT_DCHECK compiles to nothing (operands type-checked, never evaluated)
// unless GAMETRACE_ENABLE_DCHECKS is 1. Default: on in debug builds, off
// under NDEBUG. Sanitizer presets force it to 1 from the command line.
#ifndef GAMETRACE_ENABLE_DCHECKS
#ifdef NDEBUG
#define GAMETRACE_ENABLE_DCHECKS 0
#else
#define GAMETRACE_ENABLE_DCHECKS 1
#endif
#endif

namespace gametrace {

// Everything the failure site knows, handed to the handler.
struct ContractFailure {
  const char* file;
  int line;
  // "GT_CHECK(x > 0) failed" or "GT_CHECK_EQ(a, b) failed (3 vs 5)".
  std::string condition;
  // Whatever the call site streamed after the macro; empty if nothing.
  std::string message;

  [[nodiscard]] std::string ToString() const {
    std::string out = std::string(file) + ":" + std::to_string(line) + ": " + condition;
    if (!message.empty()) out += ": " + message;
    return out;
  }
};

// Thrown by ThrowingContractHandler. Derives from std::logic_error: a
// contract violation is by definition a bug in the calling code.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const ContractFailure& failure)
      : std::logic_error(failure.ToString()), file_(failure.file), line_(failure.line) {}

  [[nodiscard]] const char* file() const noexcept { return file_; }
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  const char* file_;
  int line_;
};

// Handlers must not return; if one does, the failure site aborts anyway.
using ContractHandler = void (*)(const ContractFailure&);

[[noreturn]] inline void AbortContractHandler(const ContractFailure& failure) {
  std::fputs(failure.ToString().c_str(), stderr);
  std::fputc('\n', stderr);
  std::fflush(stderr);
  std::abort();
}

[[noreturn]] inline void ThrowingContractHandler(const ContractFailure& failure) {
  throw ContractViolation(failure);
}

namespace internal {

// seq_cst (the defaults below) on purpose: the slot holds a lone function
// pointer with no associated payload to publish, so no weaker ordering
// buys anything, and installs are rare (test setup, ScopedFlightDump)
// while failure-path loads are never hot. Handlers that need shared state
// must synchronize it themselves (obs::ScopedFlightDump uses a mutex).
inline std::atomic<ContractHandler>& ContractHandlerSlot() {
  static std::atomic<ContractHandler> slot{&AbortContractHandler};
  return slot;
}

}  // namespace internal

// Installs `handler` process-wide and returns the previous one. Passing
// nullptr restores the default aborting handler.
inline ContractHandler SetContractHandler(ContractHandler handler) {
  return internal::ContractHandlerSlot().exchange(handler ? handler : &AbortContractHandler);
}

[[nodiscard]] inline ContractHandler GetContractHandler() {
  return internal::ContractHandlerSlot().load();
}

// RAII override, for tests that need a non-default handler in one scope.
class ScopedContractHandler {
 public:
  explicit ScopedContractHandler(ContractHandler handler)
      : previous_(SetContractHandler(handler)) {}
  ~ScopedContractHandler() { SetContractHandler(previous_); }
  ScopedContractHandler(const ScopedContractHandler&) = delete;
  ScopedContractHandler& operator=(const ScopedContractHandler&) = delete;

 private:
  ContractHandler previous_;
};

namespace internal {

[[noreturn]] inline void FailContract(const char* file, int line, std::string condition,
                                      std::string message) {
  ContractFailure failure{file, line, std::move(condition), std::move(message)};
  GetContractHandler()(failure);
  std::abort();  // handler returned: enforce noreturn
}

// Prints one operand of a GT_CHECK_OP into the failure message. Narrow
// character types print as integers (a stray 0x03 byte is not useful as a
// glyph); anything without operator<< prints a placeholder so GT_CHECK_EQ
// still works on opaque types.
template <typename T>
concept Streamable = requires(std::ostream& os, const T& value) { os << value; };

template <typename T>
void PrintOperand(std::ostream& os, const T& value) {
  if constexpr (std::is_same_v<T, bool>) {
    os << (value ? "true" : "false");
  } else if constexpr (std::is_same_v<T, char> || std::is_same_v<T, signed char> ||
                       std::is_same_v<T, unsigned char>) {
    os << static_cast<int>(value);
  } else if constexpr (std::is_enum_v<T>) {
    os << static_cast<std::underlying_type_t<T>>(value);
  } else if constexpr (Streamable<T>) {
    os << value;
  } else {
    os << "<unprintable>";
  }
}

template <typename A, typename B>
std::unique_ptr<std::string> MakeCheckOpString(const A& a, const B& b, const char* expr) {
  std::ostringstream os;
  os << expr << " (";
  PrintOperand(os, a);
  os << " vs ";
  PrintOperand(os, b);
  os << ")";
  return std::make_unique<std::string>(os.str());
}

// One CheckOp<name> per comparison; returns null on success, the formatted
// condition text on failure. Operands are evaluated exactly once.
#define GT_INTERNAL_DEFINE_CHECK_OP(opname, op)                                            \
  template <typename A, typename B>                                                        \
  std::unique_ptr<std::string> CheckOp##opname(const A& a, const B& b, const char* expr) { \
    if (a op b) [[likely]]                                                                 \
      return nullptr;                                                                      \
    return MakeCheckOpString(a, b, expr);                                                  \
  }

GT_INTERNAL_DEFINE_CHECK_OP(EQ, ==)
GT_INTERNAL_DEFINE_CHECK_OP(NE, !=)
GT_INTERNAL_DEFINE_CHECK_OP(LT, <)
GT_INTERNAL_DEFINE_CHECK_OP(LE, <=)
GT_INTERNAL_DEFINE_CHECK_OP(GT, >)
GT_INTERNAL_DEFINE_CHECK_OP(GE, >=)
#undef GT_INTERNAL_DEFINE_CHECK_OP

// Collects the `<< "context"` stream; its destructor fires the handler.
// noexcept(false): ThrowingContractHandler legitimately throws out of it.
class CheckFailStream {
 public:
  CheckFailStream(const char* file, int line, std::string condition)
      : file_(file), line_(line), condition_(std::move(condition)) {}

  CheckFailStream(const CheckFailStream&) = delete;
  CheckFailStream& operator=(const CheckFailStream&) = delete;

  template <typename T>
  CheckFailStream& operator<<(const T& value) {
    message_ << value;
    return *this;
  }

  ~CheckFailStream() noexcept(false) {
    FailContract(file_, line_, std::move(condition_), message_.str());
  }

 private:
  const char* file_;
  int line_;
  std::string condition_;
  std::ostringstream message_;
};

// Swallows the CheckFailStream expression so the ternary in GT_CHECK has
// void type on both arms. `&` binds looser than `<<`.
struct Voidify {
  void operator&(CheckFailStream&) const noexcept {}
  void operator&(CheckFailStream&&) const noexcept {}
};

}  // namespace internal
}  // namespace gametrace

#define GT_CHECK(cond)                                 \
  (cond) ? (void)0                                     \
         : ::gametrace::internal::Voidify() &          \
               ::gametrace::internal::CheckFailStream( \
                   __FILE__, __LINE__, "GT_CHECK(" #cond ") failed")

#define GT_INTERNAL_CHECK_OP(opname, a, b)                                          \
  while (std::unique_ptr<std::string> gt_internal_result =                          \
             ::gametrace::internal::CheckOp##opname(                                \
                 (a), (b), "GT_CHECK_" #opname "(" #a ", " #b ") failed"))          \
  ::gametrace::internal::Voidify() &                                                \
      ::gametrace::internal::CheckFailStream(__FILE__, __LINE__,                    \
                                             std::move(*gt_internal_result))

#define GT_CHECK_EQ(a, b) GT_INTERNAL_CHECK_OP(EQ, a, b)
#define GT_CHECK_NE(a, b) GT_INTERNAL_CHECK_OP(NE, a, b)
#define GT_CHECK_LT(a, b) GT_INTERNAL_CHECK_OP(LT, a, b)
#define GT_CHECK_LE(a, b) GT_INTERNAL_CHECK_OP(LE, a, b)
#define GT_CHECK_GT(a, b) GT_INTERNAL_CHECK_OP(GT, a, b)
#define GT_CHECK_GE(a, b) GT_INTERNAL_CHECK_OP(GE, a, b)

// Always fatal: marks states the surrounding logic must make impossible
// (exhaustive switches, unreachable fallthroughs).
#define GT_UNREACHABLE()                       \
  ::gametrace::internal::FailContract(         \
      __FILE__, __LINE__, "GT_UNREACHABLE() reached", std::string())

#if GAMETRACE_ENABLE_DCHECKS
#define GT_DCHECK(cond) GT_CHECK(cond)
#define GT_DCHECK_EQ(a, b) GT_CHECK_EQ(a, b)
#define GT_DCHECK_NE(a, b) GT_CHECK_NE(a, b)
#define GT_DCHECK_LT(a, b) GT_CHECK_LT(a, b)
#define GT_DCHECK_LE(a, b) GT_CHECK_LE(a, b)
#define GT_DCHECK_GT(a, b) GT_CHECK_GT(a, b)
#define GT_DCHECK_GE(a, b) GT_CHECK_GE(a, b)
#else
// `while (false)` keeps operands type-checked (no unused-variable warnings)
// but guarantees they are never evaluated in Release.
#define GT_DCHECK(cond) \
  while (false) GT_CHECK(cond)
#define GT_DCHECK_EQ(a, b) \
  while (false) GT_CHECK_EQ(a, b)
#define GT_DCHECK_NE(a, b) \
  while (false) GT_CHECK_NE(a, b)
#define GT_DCHECK_LT(a, b) \
  while (false) GT_CHECK_LT(a, b)
#define GT_DCHECK_LE(a, b) \
  while (false) GT_CHECK_LE(a, b)
#define GT_DCHECK_GT(a, b) \
  while (false) GT_CHECK_GT(a, b)
#define GT_DCHECK_GE(a, b) \
  while (false) GT_CHECK_GE(a, b)
#endif
