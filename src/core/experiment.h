// Shared experiment harness for the bench binaries.
//
// Every bench runs a scaled workload by default (seconds of wall clock) and
// honours two environment variables:
//   GAMETRACE_FULL=1        - run the paper's full 626,477 s week
//   GAMETRACE_DURATION=<s>  - run an explicit simulated duration
// Scaling shortens the simulated window only; per-second and per-packet
// statistics are unaffected (see DESIGN.md section 4).
#pragma once

#include <span>

#include "game/cs_server.h"
#include "game/config.h"
#include "game/qoe.h"
#include "router/nat_device.h"
#include "stats/time_series.h"
#include "trace/capture.h"

namespace gametrace::core {

struct ExperimentScale {
  double duration = 0.0;  // simulated seconds
  bool full = false;

  // Resolves the effective duration for a bench whose default simulated
  // window is `default_duration`.
  [[nodiscard]] static ExperimentScale FromEnv(double default_duration);
};

struct ServerTraceResult {
  game::CsServer::Stats stats;
  stats::TimeSeries players{0.0, 60.0};
};

// Runs a full CsServer capture of config.trace_duration seconds, streaming
// every packet into each sink.
ServerTraceResult RunServerTrace(const game::GameConfig& config,
                                 std::span<trace::CaptureSink* const> sinks);

// Convenience overload for a single sink.
ServerTraceResult RunServerTrace(const game::GameConfig& config, trace::CaptureSink& sink);

// ---------------------------------------------------------------------------
// The NAT experiment (paper section IV-A, Table IV, Figures 14-15): a busy
// single-map server behind a COTS NAT device, with the game-freeze feedback
// loop (inbound loss bursts briefly freeze the server's broadcast).
// ---------------------------------------------------------------------------

struct NatExperimentConfig {
  double duration = 1800.0;  // "we traced a single, 30 min map"
  game::GameConfig game;
  router::NatDevice::Config device;

  // Feedback: if `freeze_threshold` inbound packets are lost within
  // `freeze_window` seconds, the server freezes for `freeze_duration`.
  double freeze_window = 0.50;
  int freeze_threshold = 150;
  double freeze_duration = 0.50;

  // The paper's self-tuning loss claim (section IV-A): when enabled,
  // players observe their own loss and quit above tolerance, pulling the
  // offered load down until loss sits at the tolerable 1-2%.
  bool enable_qoe = false;
  game::QoeMonitor::Config qoe;

  [[nodiscard]] static NatExperimentConfig Defaults();
};

struct NatExperimentResult {
  router::DeviceStats device;
  game::CsServer::Stats server;
  int livelock_episodes = 0;
  std::size_t nat_table_size = 0;
  int server_freezes = 0;
  std::uint64_t qoe_quits = 0;
  // Player count sampled per minute (shows QoE load shedding).
  stats::TimeSeries players{0.0, 60.0};
};

[[nodiscard]] NatExperimentResult RunNatExperiment(const NatExperimentConfig& config);

}  // namespace gametrace::core
