// Multi-server aggregation and population-driven self-similarity.
//
// The paper is careful to scope its "no fractal behaviour" finding:
// "it is expected that active user populations will not, in general,
// exhibit the predictability of the server studied in this paper and that
// the global usage pattern itself may exhibit a high degree of
// self-similarity ... Self-similarity in aggregate game traffic in this
// case will be directly dependent on the self-similarity of user
// populations" (sections III-A and IV-B, citing Henderson).
//
// This module demonstrates exactly that: aggregate the load of many
// servers whose player populations are modulated by heavy-tailed (Pareto)
// ON/OFF interest processes, and the coarse-scale Hurst parameter rises
// well above 1/2; pin the populations (no modulation) and it stays at ~1/2
// - because per-server traffic is linear in players, the aggregate
// inherits whatever scaling the population process has.
#pragma once

#include <cstdint>

#include "obs/metrics.h"
#include "stats/time_series.h"
#include "stats/variance_time.h"

namespace gametrace::core {

struct PopulationConfig {
  int servers = 16;
  double duration = 28800.0;  // 8 h of 1 s samples by default
  double interval = 1.0;
  int max_players = 22;

  // Per-server session dynamics (coarse M/G/c/c approximation of the full
  // game model - per-second resolution is all the aggregate analysis
  // needs).
  double mean_session = 715.0;
  double base_attempt_rate = 0.0315;  // attempts/sec at multiplier 1

  // Interest modulation: each server's arrival rate switches between
  // on_multiplier and off_multiplier with Pareto-distributed sojourns.
  // alpha < 2 gives the sojourns infinite variance - the classic
  // ON/OFF-source construction of self-similar traffic.
  bool modulate_interest = true;
  double on_multiplier = 1.7;
  double off_multiplier = 0.25;
  double pareto_alpha = 1.4;
  double mean_sojourn = 900.0;

  // Per-player demand used to map players -> load (paper: ~44 pps).
  double pps_per_player = 44.2;

  std::uint64_t seed = 1;

  // Worker threads for the per-server population simulations (0 = one per
  // hardware core). Servers are independent processes with pre-split RNG
  // streams reduced in server order, so the result is bit-identical for
  // any thread count.
  int threads = 0;
};

struct AggregateResult {
  stats::TimeSeries total_players;   // per-interval sum across servers
  stats::TimeSeries total_load_pps;  // players * per-player pps
  // Hurst over coarse scales - from twice the session time constant (the
  // occupancy process is trivially persistent below its own relaxation
  // time) up to duration/8. A fixed-interest population decorrelates there
  // (H -> 1/2); heavy-tailed interest keeps H high.
  double coarse_hurst = 0.0;
  stats::VarianceTimePlot variance_time;
  // Population accounting, reduced from per-server registries in server
  // order: counters "aggregate.arrivals" / "aggregate.blocked" /
  // "aggregate.departures" and the occupancy-sample histogram
  // "aggregate.occupancy". Bit-identical for any worker-thread count.
  obs::MetricsRegistry metrics;
};

// Simulates the population processes and returns the aggregate series and
// its scaling analysis.
[[nodiscard]] AggregateResult SimulateAggregatePopulation(const PopulationConfig& config);

}  // namespace gametrace::core
