#include "core/provisioning.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "net/units.h"

#include "core/check.h"

namespace gametrace::core {

PerPlayerDemand PerPlayerDemand::PaperCalibrated() noexcept {
  PerPlayerDemand d;
  // Table II means divided by the ~18 players the server averaged.
  d.pps_in = 437.12 / 18.05;
  d.pps_out = 360.99 / 18.05;
  d.bps_in = 341e3 / 18.05;
  d.bps_out = 542e3 / 18.05;
  return d;
}

stats::LineFit FitLoadVsPlayers(const stats::TimeSeries& players,
                                const stats::TimeSeries& load) {
  GT_CHECK(players.interval() == load.interval() && players.start_time() == load.start_time())
      << "FitLoadVsPlayers: series not aligned";
  const std::size_t n = std::min(players.size(), load.size());
  std::vector<double> xs;
  std::vector<double> ys;
  xs.reserve(n);
  ys.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Skip idle bins (map changes, outages): they are not steady-state
    // samples of the players->load relationship.
    if (load[i] <= 0.0) continue;
    xs.push_back(players[i]);
    ys.push_back(load[i] / load.interval());  // per-second load
  }
  return stats::FitLine(xs, ys);
}

PerPlayerDemand FitDemand(const stats::TimeSeries& players, const stats::TimeSeries& packets_in,
                          const stats::TimeSeries& packets_out,
                          const stats::TimeSeries& bytes_in,
                          const stats::TimeSeries& bytes_out) {
  PerPlayerDemand d;
  d.pps_in = FitLoadVsPlayers(players, packets_in).slope;
  d.pps_out = FitLoadVsPlayers(players, packets_out).slope;
  d.bps_in = FitLoadVsPlayers(players, bytes_in).slope * 8.0;
  d.bps_out = FitLoadVsPlayers(players, bytes_out).slope * 8.0;
  return d;
}

ServerDemand DemandFor(const PerPlayerDemand& per_player, int players, double tick_interval,
                       double server_link_bps) {
  GT_CHECK_GE(players, 0) << "DemandFor: negative players";
  ServerDemand demand;
  demand.pps = per_player.pps_total() * players;
  demand.bps = per_player.bps_total() * players;
  demand.burst_packets = per_player.pps_out * players * tick_interval;
  const double mean_out_wire_bits =
      players > 0 ? per_player.bps_out / per_player.pps_out : 0.0;
  demand.burst_span_seconds = demand.burst_packets * mean_out_wire_bits / server_link_bps;
  return demand;
}

double CapacityPlanner::BurstLossFraction(double burst_packets, const Device& device) {
  if (burst_packets <= 0.0) return 0.0;
  const double absorbed = 1.0 + static_cast<double>(device.buffer_packets);
  return std::max(0.0, burst_packets - absorbed) / burst_packets;
}

int CapacityPlanner::MaxServers(const ServerDemand& demand, const Device& device,
                                double max_utilization) {
  if (demand.pps <= 0.0) return 0;
  int servers = 0;
  while (true) {
    const int candidate = servers + 1;
    const double utilization = demand.pps * candidate / device.capacity_pps;
    const double burst = demand.burst_packets * candidate;
    if (utilization > max_utilization || BurstLossFraction(burst, device) > 0.0) break;
    servers = candidate;
    if (servers > 10000) break;  // defensive: effectively unlimited
  }
  return servers;
}

double CapacityPlanner::BurstTailDelay(double burst_packets, const Device& device) {
  if (burst_packets <= 0.0) return 0.0;
  const double in_queue = std::min(burst_packets - 1.0,
                                   static_cast<double>(device.buffer_packets));
  return std::max(0.0, in_queue) / device.capacity_pps;
}

}  // namespace gametrace::core
