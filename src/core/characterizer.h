// One-pass implementation of the paper's entire analysis pipeline.
//
// Feed it a packet stream (simulated, .gtr or pcap) and Finish() returns
// everything the evaluation section reports: trace summary (Tables I-III),
// per-minute load series (Figs 1-4), variance-time plot and per-region
// Hurst estimates (Fig 5), fine-grained load series (Figs 6-10 are
// re-aggregations of the base series), per-session bandwidth histogram
// (Fig 11) and packet-size PDFs/CDFs (Figs 12-13).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "net/packet.h"
#include "stats/histogram.h"
#include "stats/time_series.h"
#include "stats/variance_time.h"
#include "trace/aggregator.h"
#include "trace/capture.h"
#include "trace/session_tracker.h"
#include "trace/summary.h"

namespace gametrace::core {

struct CharacterizationOptions {
  double minute_interval = 60.0;
  // Base interval of the variance-time series (the paper uses m = 10 ms).
  double vt_base_interval = 0.010;
  // The fine-grained series is kept only for this long - 6 h of 10 ms bins
  // is ~17 MB and spans every time scale of interest (50 ms ... > 30 min).
  double vt_window = 21600.0;
  double session_idle_timeout = 30.0;
  double session_min_duration = 30.0;   // Fig 11 considers sessions > 30 s
  double session_bw_histogram_max = 160000.0;  // bits/sec
  std::size_t session_bw_bins = 64;
  double size_histogram_max = 500.0;    // the paper truncates at 500 B
  std::uint32_t wire_overhead = net::kWireOverheadBytes;

  // Merging two characterizers requires identical analysis geometry.
  friend bool operator==(const CharacterizationOptions&,
                         const CharacterizationOptions&) = default;
};

struct CharacterizationReport {
  trace::TraceSummary summary;
  // Per-minute packet counts / wire bytes by direction (divide by interval
  // for rates; Figures 1-4).
  stats::TimeSeries minute_packets_in;
  stats::TimeSeries minute_packets_out;
  stats::TimeSeries minute_bytes_in;
  stats::TimeSeries minute_bytes_out;
  // The base fine-grained packet-count series and its variance-time
  // analysis (Figures 5-10).
  stats::TimeSeries vt_base_packets;
  stats::VarianceTimePlot variance_time;
  stats::HurstRegions hurst;
  // Sessions and the Figure 11 histogram.
  std::vector<trace::Session> sessions;
  stats::Histogram session_bandwidth;
  // Packet-size histograms at 1-byte resolution (Figures 12-13).
  stats::Histogram size_total;
  stats::Histogram size_in;
  stats::Histogram size_out;
};

class Characterizer final : public trace::CaptureSink {
 public:
  explicit Characterizer(CharacterizationOptions options = {});

  void OnPacket(const net::PacketRecord& record) override;

  // Feeds every constituent analysis its batch fast path; produces exactly
  // the same report as the per-packet path.
  void OnBatch(std::span<const net::PacketRecord> batch) override;

  // Columnar fast path: each constituent analysis consumes the raw columns
  // through its AccumulateColumns/AddColumn kernel - no record
  // materialisation anywhere in the pipeline. Same report, bit-identical.
  void OnColumns(const net::PacketBatch& batch) override;

  // Absorbs another (un-finished) characterizer: every accumulator is
  // combined with its exact merge operation, so Merge-then-Finish over N
  // per-shard partials equals one characterizer fed the interleaved stream.
  // `other` is spent. Shards must namespace their flow identifiers
  // (trace::ShardNamespaceSink) so sessions never collide. Throws
  // std::invalid_argument if the analysis options differ.
  void Merge(Characterizer&& other);

  // Completes the analysis. `trace_duration` pins the rate denominators
  // (pass the configured capture window; <= 0 uses the observed span).
  // The characterizer is spent afterwards.
  [[nodiscard]] CharacterizationReport Finish(double trace_duration = -1.0);

  [[nodiscard]] const CharacterizationOptions& options() const noexcept { return options_; }

 private:
  CharacterizationOptions options_;
  trace::TraceSummary summary_;
  trace::LoadAggregator minute_agg_;
  stats::TimeSeries vt_packets_;
  trace::SessionTracker sessions_;
  stats::Histogram size_total_;
  stats::Histogram size_in_;
  stats::Histogram size_out_;
  std::vector<double> scratch_times_;  // reused per batch by OnBatch
};

// Reduces finished per-shard reports into one fleet-wide report: summaries,
// load series, histograms and session lists merge exactly; the
// variance-time plot and Hurst regions are recomputed from the merged base
// series (they are nonlinear in the input, so they cannot be merged
// point-wise). Equivalent to Characterizer::Merge before Finish. Throws
// std::invalid_argument when `reports` is empty or geometries differ.
[[nodiscard]] CharacterizationReport MergeReports(std::vector<CharacterizationReport> reports);

}  // namespace gametrace::core
