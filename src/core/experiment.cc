#include "core/experiment.h"

#include <cstdlib>
#include <string>

#include "sim/simulator.h"

namespace gametrace::core {

ExperimentScale ExperimentScale::FromEnv(double default_duration) {
  ExperimentScale scale;
  scale.duration = default_duration;
  if (const char* env = std::getenv("GAMETRACE_DURATION"); env != nullptr) {
    const double parsed = std::strtod(env, nullptr);
    if (parsed > 0.0) scale.duration = parsed;
    return scale;
  }
  if (const char* env = std::getenv("GAMETRACE_FULL"); env != nullptr) {
    const std::string value(env);
    if (!value.empty() && value != "0") {
      scale.full = true;
      scale.duration = game::GameConfig{}.trace_duration;  // 626,477 s
    }
  }
  return scale;
}

ServerTraceResult RunServerTrace(const game::GameConfig& config,
                                 std::span<trace::CaptureSink* const> sinks) {
  sim::Simulator simulator;
  trace::TeeSink tee;
  for (trace::CaptureSink* sink : sinks) tee.Attach(*sink);
  game::CsServer server(simulator, config, tee);
  server.Run();
  ServerTraceResult result;
  result.stats = server.stats();
  result.players = server.player_series();
  return result;
}

ServerTraceResult RunServerTrace(const game::GameConfig& config, trace::CaptureSink& sink) {
  trace::CaptureSink* sinks[] = {&sink};
  return RunServerTrace(config, sinks);
}

NatExperimentConfig NatExperimentConfig::Defaults() {
  NatExperimentConfig cfg;
  cfg.game = game::GameConfig::PaperDefaults();
  cfg.game.trace_duration = cfg.duration;
  // One uninterrupted 30-min map, packed server (the experiment was run on
  // the same very popular community server).
  cfg.game.maps.map_duration = cfg.duration + 60.0;
  cfg.game.sessions.initial_players = 20;
  cfg.game.outages.times.clear();
  return cfg;
}

NatExperimentResult RunNatExperiment(const NatExperimentConfig& config) {
  sim::Simulator simulator;
  router::NatDevice nat(simulator, config.device);
  game::CsServer server(simulator, config.game, nat.injector());

  // QoE self-tuning: players watch their own delivery/loss and quit above
  // tolerance (paper section IV-A).
  std::unique_ptr<game::QoeMonitor> qoe;
  if (config.enable_qoe) {
    qoe = std::make_unique<game::QoeMonitor>(
        simulator, config.qoe, sim::Rng(config.game.seed ^ 0x51edu),
        [&server](net::Ipv4Address ip, std::uint16_t port) {
          server.DisconnectByEndpoint(ip, port, /*orderly=*/true);
        });
    nat.SetDeliverCallback([&](const net::PacketRecord& record, router::Segment) {
      qoe->OnDelivered(record);
    });
  }

  // Game-freeze feedback: a burst of lost inbound updates freezes the
  // server's world state, and with it the outbound broadcast.
  int freezes = 0;
  double window_start = -1.0;
  int window_losses = 0;
  nat.SetLossCallback([&](const net::PacketRecord& record, router::Segment segment) {
    if (qoe) qoe->OnLost(record);
    if (segment != router::Segment::kClientsToNat) return;
    const double now = simulator.Now();
    if (window_start < 0.0 || now - window_start > config.freeze_window) {
      window_start = now;
      window_losses = 0;
    }
    if (++window_losses >= config.freeze_threshold) {
      server.InduceStall(config.freeze_duration);
      ++freezes;
      window_start = -1.0;
    }
  });

  nat.Start();
  server.Start();
  if (qoe) qoe->Start();
  simulator.RunUntil(config.duration);

  NatExperimentResult result{.device = nat.stats(),
                             .server = server.stats(),
                             .livelock_episodes = nat.livelock_episodes(),
                             .nat_table_size = nat.nat_table_size(),
                             .server_freezes = freezes,
                             .qoe_quits = qoe ? qoe->quits_triggered() : 0,
                             .players = server.player_series()};
  return result;
}

}  // namespace gametrace::core
