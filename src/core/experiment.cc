#include "core/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <utility>

#include "obs/exporter.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/prom.h"
#include "obs/trace_log.h"
#include "obs/watchdog.h"
#include "sim/simulator.h"

namespace gametrace::core {

namespace {

// Heartbeat policy: GAMETRACE_HEARTBEAT=<wall seconds> forces an interval
// (0 disables); unset, runs of an hour-plus of simulated time get a pulse
// every 10 wall seconds and short runs stay silent. The ambient obs
// context can veto it (fleet shards > 0 do).
double ResolveHeartbeatInterval(double trace_duration) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at run setup, before workers exist
  if (const char* env = std::getenv("GAMETRACE_HEARTBEAT"); env != nullptr) {
    const double parsed = std::strtod(env, nullptr);
    return parsed > 0.0 ? parsed : 0.0;
  }
  return trace_duration >= 3600.0 ? 10.0 : 0.0;
}

// Refreshes the --prom-out file with the ambient registry's current
// contents; called from the wall-clock heartbeat so a scrape pipeline sees
// a live view during long runs. Quiet on write failure by design - the
// final ExportSession write reports loudly.
void FlushPrometheus(const char* prom_path, const obs::MetricsRegistry& metrics) {
  std::ofstream out(prom_path);
  if (out) obs::WritePrometheusText(metrics, out);
}

// Installs the stderr progress printer on `simulator`. `server` is
// borrowed; the heartbeat dies with the simulator at the end of the run.
void InstallHeartbeat(sim::Simulator& simulator, const game::CsServer& server,
                      double duration, double interval) {
  const obs::ObsContext& ctx = obs::Current();
  const char* prom_path = ctx.metrics != nullptr ? ctx.prom_path : nullptr;
  const obs::MetricsRegistry* metrics = ctx.metrics;
  simulator.SetHeartbeat(
      interval,
      [&server, duration, prom_path, metrics](const sim::Simulator::HeartbeatStatus& s) {
        if (prom_path != nullptr) FlushPrometheus(prom_path, *metrics);
        const double rate = s.sim_seconds_per_second;
        const double remaining = duration - s.sim_now;
        const std::uint64_t packets = server.stats().packets_emitted;
        const double pps = s.sim_now > 0.0 ? static_cast<double>(packets) / s.sim_now : 0.0;
        std::fprintf(stderr,
                     "[gametrace] sim %.0fs/%.0fs (%.1f%%)  players %d  pps %.0f  "
                     "events/s %.2e  queue hw %zu  eta %s\n",
                     s.sim_now, duration, 100.0 * s.sim_now / duration,
                     server.active_players(), pps, s.events_per_second,
                     s.queue_high_water,
                     rate > 0.0
                         ? (std::to_string(static_cast<long>(remaining / rate)) + "s").c_str()
                         : "?");
      });
}

// Schedules the flight-recorder sampling pulse: every sampling period the
// ambient registry (refreshed with the simulator's queue high-water mark)
// is snapshotted into the recorder and the watchdog catches up on the new
// snapshot. `extra` (may be null) is merged on top of the ambient registry
// first - the NAT experiment's device registry only reaches the ambient
// export at the end of the run, but its packet counters drive the
// meltdown rule and must be visible per snapshot.
void InstallFlightSampling(sim::Simulator& simulator, const obs::ObsContext& ctx,
                           const obs::MetricsRegistry* extra) {
  if (ctx.recorder == nullptr || ctx.metrics == nullptr) return;
  const double period = ctx.recorder->options().sample_period_seconds;
  simulator.Every(period, period,
                  [&simulator, metrics = ctx.metrics, recorder = ctx.recorder,
                   watchdog = ctx.watchdog, extra](double t) {
                    metrics->gauge("sim.queue.high_water", obs::Gauge::MergeMode::kMax)
                        .SetMax(static_cast<double>(simulator.queue_high_water()));
                    // Align ring instruments on the sampling grid so shard
                    // snapshots at the same t merge (TieredRing::Merge
                    // requires lockstep advancement). Keep the sample
                    // period a multiple of the server tick for this.
                    metrics->AdvanceRingsTo(t);
                    obs::MetricsRegistry view = *metrics;
                    if (extra != nullptr) view.Merge(*extra);
                    recorder->Sample(t, std::move(view));
                    if (watchdog != nullptr) watchdog->CatchUp(*recorder);
                  });
}

}  // namespace

ExperimentScale ExperimentScale::FromEnv(double default_duration) {
  ExperimentScale scale;
  scale.duration = default_duration;
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at run setup, before workers exist
  if (const char* env = std::getenv("GAMETRACE_DURATION"); env != nullptr) {
    const double parsed = std::strtod(env, nullptr);
    if (parsed > 0.0) scale.duration = parsed;
    return scale;
  }
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once at run setup, before workers exist
  if (const char* env = std::getenv("GAMETRACE_FULL"); env != nullptr) {
    const std::string value(env);
    if (!value.empty() && value != "0") {
      scale.full = true;
      scale.duration = game::GameConfig{}.trace_duration;  // 626,477 s
    }
  }
  return scale;
}

ServerTraceResult RunServerTrace(const game::GameConfig& config,
                                 std::span<trace::CaptureSink* const> sinks) {
  const obs::ObsContext& ctx = obs::Current();
  sim::Simulator simulator;
  trace::TeeSink tee;
  for (trace::CaptureSink* sink : sinks) tee.Attach(*sink);

  // Give the trace log a sim clock for the duration of the run, so RAII
  // spans (and anything else that asks for "now") read simulator time.
  if (ctx.trace != nullptr) {
    ctx.trace->SetClock([&simulator] { return simulator.Now(); });
  }

  game::CsServer server(simulator, config, tee);
  if (ctx.heartbeat) {
    const double interval = ResolveHeartbeatInterval(config.trace_duration);
    if (interval > 0.0) InstallHeartbeat(simulator, server, config.trace_duration, interval);
  }
  InstallFlightSampling(simulator, ctx, /*extra=*/nullptr);
  {
    const obs::ScopedSpan run_span(ctx.trace, "server_trace", "run");
    server.Run();
  }
  if (ctx.trace != nullptr) ctx.trace->SetClock(nullptr);

  // Simulator-level accounting for the metrics export.
  if (ctx.metrics != nullptr) {
    ctx.metrics->counter("sim.events_executed").Add(simulator.events_executed());
    ctx.metrics->gauge("sim.queue.high_water", obs::Gauge::MergeMode::kMax)
        .SetMax(static_cast<double>(simulator.queue_high_water()));
    // Canonical end-of-run grid position for every ring: the last tick
    // fires at exactly trace_duration and may stamp packets up to one tick
    // later, so advance one tick past the end. Identical across shards,
    // which is what the fleet's registry merge requires.
    ctx.metrics->AdvanceRingsTo(config.trace_duration + config.tick_interval);
  }

  ServerTraceResult result;
  result.stats = server.stats();
  result.players = server.player_series();
  return result;
}

ServerTraceResult RunServerTrace(const game::GameConfig& config, trace::CaptureSink& sink) {
  trace::CaptureSink* sinks[] = {&sink};
  return RunServerTrace(config, sinks);
}

NatExperimentConfig NatExperimentConfig::Defaults() {
  NatExperimentConfig cfg;
  cfg.game = game::GameConfig::PaperDefaults();
  cfg.game.trace_duration = cfg.duration;
  // One uninterrupted 30-min map, packed server (the experiment was run on
  // the same very popular community server).
  cfg.game.maps.map_duration = cfg.duration + 60.0;
  cfg.game.sessions.initial_players = 20;
  cfg.game.outages.times.clear();
  return cfg;
}

NatExperimentResult RunNatExperiment(const NatExperimentConfig& config) {
  const obs::ObsContext& ctx = obs::Current();
  sim::Simulator simulator;
  if (ctx.trace != nullptr) {
    ctx.trace->SetClock([&simulator] { return simulator.Now(); });
  }
  router::NatDevice nat(simulator, config.device);
  game::CsServer server(simulator, config.game, nat.injector());

  // QoE self-tuning: players watch their own delivery/loss and quit above
  // tolerance (paper section IV-A).
  std::unique_ptr<game::QoeMonitor> qoe;
  if (config.enable_qoe) {
    qoe = std::make_unique<game::QoeMonitor>(
        simulator, config.qoe, sim::Rng(config.game.seed ^ 0x51edu),
        [&server](net::Ipv4Address ip, std::uint16_t port) {
          server.DisconnectByEndpoint(ip, port, /*orderly=*/true);
        });
    nat.SetDeliverCallback([&](const net::PacketRecord& record, router::Segment) {
      qoe->OnDelivered(record);
    });
  }

  // Game-freeze feedback: a burst of lost inbound updates freezes the
  // server's world state, and with it the outbound broadcast.
  int freezes = 0;
  double window_start = -1.0;
  int window_losses = 0;
  nat.SetLossCallback([&](const net::PacketRecord& record, router::Segment segment) {
    if (qoe) qoe->OnLost(record);
    if (segment != router::Segment::kClientsToNat) return;
    const double now = simulator.Now();
    if (window_start < 0.0 || now - window_start > config.freeze_window) {
      window_start = now;
      window_losses = 0;
    }
    if (++window_losses >= config.freeze_threshold) {
      server.InduceStall(config.freeze_duration);
      ++freezes;
      window_start = -1.0;
    }
  });

  nat.Start();
  server.Start();
  if (qoe) qoe->Start();
  if (ctx.heartbeat) {
    const double interval = ResolveHeartbeatInterval(config.duration);
    if (interval > 0.0) InstallHeartbeat(simulator, server, config.duration, interval);
  }
  InstallFlightSampling(simulator, ctx, &nat.stats().metrics());
  {
    const obs::ScopedSpan run_span(ctx.trace, "nat_experiment", "run");
    simulator.RunUntil(config.duration);
  }
  if (ctx.trace != nullptr) ctx.trace->SetClock(nullptr);

  if (ctx.metrics != nullptr) {
    // The device's embedded registry (segment + queue accounting) joins
    // the ambient export alongside the simulator-level counters.
    ctx.metrics->Merge(nat.stats().metrics());
    ctx.metrics->counter("sim.events_executed").Add(simulator.events_executed());
    ctx.metrics->gauge("sim.queue.high_water", obs::Gauge::MergeMode::kMax)
        .SetMax(static_cast<double>(simulator.queue_high_water()));
    ctx.metrics->AdvanceRingsTo(config.duration + config.game.tick_interval);
  }

  NatExperimentResult result{.device = nat.stats(),
                             .server = server.stats(),
                             .livelock_episodes = nat.livelock_episodes(),
                             .nat_table_size = nat.nat_table_size(),
                             .server_freezes = freezes,
                             .qoe_quits = qoe ? qoe->quits_triggered() : 0,
                             .players = server.player_series()};
  return result;
}

}  // namespace gametrace::core
