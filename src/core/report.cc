#include "core/report.h"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace gametrace::core {

TableReport::TableReport(std::string title) : title_(std::move(title)) {}

void TableReport::AddRow(std::string label, std::string value) {
  rows_.emplace_back(std::move(label), std::move(value));
}

void TableReport::AddCount(std::string label, std::uint64_t count) {
  AddRow(std::move(label), FormatCount(count));
}

void TableReport::AddValue(std::string label, double value, std::string_view unit,
                           int precision) {
  std::string text = FormatDouble(value, precision);
  if (!unit.empty()) {
    text += ' ';
    text += unit;
  }
  AddRow(std::move(label), std::move(text));
}

void TableReport::Print(std::ostream& out) const {
  std::size_t label_width = 0;
  std::size_t value_width = 0;
  for (const auto& [label, value] : rows_) {
    label_width = std::max(label_width, label.size());
    value_width = std::max(value_width, value.size());
  }
  const std::size_t total = label_width + value_width + 5;
  out << '\n' << title_ << '\n' << std::string(total, '-') << '\n';
  for (const auto& [label, value] : rows_) {
    out << "  " << std::left << std::setw(static_cast<int>(label_width)) << label << " : "
        << std::right << std::setw(static_cast<int>(value_width)) << value << '\n';
  }
  out << std::string(total, '-') << '\n';
}

void PrintSeries(std::ostream& out, const stats::TimeSeries& series, std::string_view name,
                 std::size_t max_points) {
  out << "\n# series: " << name << "  (interval " << series.interval() << " s, "
      << series.size() << " bins)\n";
  if (series.empty()) return;
  const std::size_t stride =
      max_points > 0 && series.size() > max_points ? series.size() / max_points : 1;
  if (stride > 1) out << "# downsampled: every " << stride << "th bin of " << series.size() << "\n";
  for (std::size_t i = 0; i < series.size(); i += stride) {
    out << series.bin_time(i) << ' ' << series[i] << '\n';
  }
}

void PrintHistogram(std::ostream& out, const stats::Histogram& histogram, std::string_view name,
                    bool cdf, bool normalized) {
  out << "\n# histogram: " << name << "  (" << histogram.bin_count() << " bins, "
      << FormatCount(histogram.total()) << " samples";
  if (histogram.overflow() > 0) out << ", " << histogram.overflow() << " above range";
  if (histogram.underflow() > 0) out << ", " << histogram.underflow() << " below range";
  out << ")\n";
  if (cdf) {
    const auto values = histogram.Cdf();
    for (std::size_t i = 0; i < values.size(); ++i) {
      out << histogram.bin_center(i) << ' ' << values[i] << '\n';
    }
    return;
  }
  if (normalized) {
    const auto values = histogram.Pdf();
    for (std::size_t i = 0; i < values.size(); ++i) {
      out << histogram.bin_center(i) << ' ' << values[i] << '\n';
    }
    return;
  }
  for (std::size_t i = 0; i < histogram.bin_count(); ++i) {
    out << histogram.bin_center(i) << ' ' << histogram.count(i) << '\n';
  }
}

std::string FormatCount(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter > 0 && counter % 3 == 0) out += ',';
    out += *it;
    ++counter;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string FormatDuration(double seconds) {
  const auto total = static_cast<std::uint64_t>(std::llround(seconds));
  const std::uint64_t days = total / 86400;
  const std::uint64_t hours = (total % 86400) / 3600;
  const std::uint64_t minutes = (total % 3600) / 60;
  const std::uint64_t secs = total % 60;
  std::ostringstream out;
  out << days << " d, " << hours << " h, " << minutes << " m, " << secs << " s";
  return out.str();
}

std::string FormatGigabytes(std::uint64_t bytes) {
  return FormatDouble(static_cast<double>(bytes) / 1e9, 2) + " GB";
}

std::string FormatDouble(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

}  // namespace gametrace::core
