// FunctionRef: a non-owning, trivially copyable reference to a callable.
//
// std::function on the ParallelFor dispatch path costs a type-erasure
// allocation (or SBO copy) per call site, and the indirection defeats
// inlining of the claim loop. A FunctionRef is two words - the callable's
// address and a thunk - so handing a lambda to the worker pool is free.
// The referenced callable must outlive every invocation; ParallelFor and
// the fleet scheduler satisfy this trivially because they join their
// workers before returning.
#pragma once

#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "core/check.h"

namespace gametrace::core {

template <typename Signature>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  // Implicit by design, mirroring std::function_ref (P0792): call sites
  // pass lambdas directly.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef> &&
                !std::is_function_v<std::remove_reference_t<F>> &&
                std::is_invocable_r_v<R, F&, Args...>>>
  // NOLINTNEXTLINE(google-explicit-constructor)
  FunctionRef(F&& f) noexcept
      : obj_(const_cast<void*>(static_cast<const void*>(std::addressof(f)))),
        call_([](void* obj, Args... args) -> R {
          return std::invoke(*static_cast<std::remove_reference_t<F>*>(obj),
                             std::forward<Args>(args)...);
        }) {}

  // Free (or static member) functions take this overload: a function
  // pointer cannot be static_cast to void*, so it is stored by value in
  // the object word instead (reinterpret_cast between function and object
  // pointers is conditionally-supported, and round-trips on every
  // platform this project targets). Contract: the pointer must be
  // non-null - a FunctionRef has no empty state.
  // NOLINTNEXTLINE(google-explicit-constructor)
  FunctionRef(R (*fn)(Args...))
      : obj_(reinterpret_cast<void*>(fn)),
        call_([](void* obj, Args... args) -> R {
          return reinterpret_cast<R (*)(Args...)>(obj)(std::forward<Args>(args)...);
        }) {
    GT_CHECK(fn != nullptr) << "FunctionRef: null function pointer (no empty state)";
  }

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace gametrace::core
