// Random variate generation on top of sim::Rng.
//
// Only the distributions the workload and device models actually need;
// all take the Rng by reference so streams stay caller-owned.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/rng.h"

namespace gametrace::sim {

// U[lo, hi)
[[nodiscard]] double Uniform(Rng& rng, double lo, double hi) noexcept;

// Exponential with the given mean (= 1/rate). mean must be > 0.
[[nodiscard]] double Exponential(Rng& rng, double mean);

// Standard normal via Box-Muller (single-value form; no cached state so the
// generator stays stateless with respect to the distribution).
[[nodiscard]] double StandardNormal(Rng& rng) noexcept;

[[nodiscard]] double Normal(Rng& rng, double mean, double stddev) noexcept;

// Lognormal parameterised by the mean/stddev of the *resulting* variable
// (more convenient for calibration than mu/sigma of the underlying normal).
[[nodiscard]] double LognormalFromMoments(Rng& rng, double mean, double stddev);

// Pareto with scale x_m > 0 and shape alpha > 0 (heavy-tailed durations).
[[nodiscard]] double Pareto(Rng& rng, double x_m, double alpha);

[[nodiscard]] bool Bernoulli(Rng& rng, double p) noexcept;

// Poisson-distributed count with the given mean (Knuth for small means,
// normal approximation above 64 - fine for workload generation).
[[nodiscard]] std::uint64_t Poisson(Rng& rng, double mean);

// Draws an index with probability proportional to weights[i].
// Sum of weights must be > 0.
[[nodiscard]] std::size_t Discrete(Rng& rng, std::span<const double> weights);

// Zipf-like popularity sampler over [0, n): P(i) proportional to
// 1/(i+1)^s. Precomputes the CDF once; used for the client-identity pool
// (a few regulars account for most sessions - paper Table I: 16,030
// sessions from 5,886 unique clients).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t Sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gametrace::sim
