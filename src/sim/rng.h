// Deterministic, seedable random number generator (xoshiro256**).
//
// Every stochastic component of the simulator takes an explicit Rng (or a
// stream split from one) so that whole-week traces are bit-reproducible
// from a single seed - a requirement for regression-testing the
// calibration targets in DESIGN.md section 3.
#pragma once

#include <array>
#include <cstdint>

namespace gametrace::sim {

// Derives the seed of substream `stream` of `base_seed`: the SplitMix64
// output at position `stream + 1` of the sequence seeded with `base_seed`.
// Distinct (base_seed, stream) pairs give statistically independent,
// well-mixed seeds, so a fleet of shards can each run Rng(SubstreamSeed(
// base_seed, shard_id)) with no coordination and no overlap - and, unlike
// Rng::Split(), the derivation is position-independent: shard k's stream
// does not depend on how many other shards exist or in what order they are
// created.
[[nodiscard]] std::uint64_t SubstreamSeed(std::uint64_t base_seed,
                                          std::uint64_t stream) noexcept;

// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64 so that any
// 64-bit seed - including 0 - produces a well-mixed state.
// Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept;

  // Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double NextDouble() noexcept;

  // Uniform integer in [0, bound) without modulo bias (Lemire's method).
  [[nodiscard]] std::uint64_t NextBelow(std::uint64_t bound) noexcept;

  // Derives an independent generator; streams split from distinct calls are
  // statistically independent. Used to give each simulated client its own
  // stream so adding a client never perturbs another client's randomness.
  [[nodiscard]] Rng Split() noexcept;

  // Independent generator for substream `stream` of `base_seed` (see
  // SubstreamSeed). Stateless convenience for sharded engines.
  [[nodiscard]] static Rng ForSubstream(std::uint64_t base_seed,
                                        std::uint64_t stream) noexcept {
    return Rng(SubstreamSeed(base_seed, stream));
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace gametrace::sim
