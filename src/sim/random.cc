#include "sim/random.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::sim {

double Uniform(Rng& rng, double lo, double hi) noexcept {
  return lo + (hi - lo) * rng.NextDouble();
}

double Exponential(Rng& rng, double mean) {
  GT_CHECK(mean > 0.0) << "Exponential: mean must be > 0";
  // 1 - u is in (0, 1], so the log is finite.
  return -mean * std::log(1.0 - rng.NextDouble());
}

double StandardNormal(Rng& rng) noexcept {
  // Box-Muller; u1 in (0,1] to keep log finite.
  const double u1 = 1.0 - rng.NextDouble();
  const double u2 = rng.NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Normal(Rng& rng, double mean, double stddev) noexcept {
  return mean + stddev * StandardNormal(rng);
}

double LognormalFromMoments(Rng& rng, double mean, double stddev) {
  GT_CHECK(mean > 0.0) << "LognormalFromMoments: mean must be > 0";
  GT_CHECK(stddev >= 0.0) << "LognormalFromMoments: stddev must be >= 0";
  if (stddev == 0.0) return mean;
  const double variance_ratio = (stddev * stddev) / (mean * mean);
  const double sigma2 = std::log(1.0 + variance_ratio);
  const double mu = std::log(mean) - sigma2 / 2.0;
  return std::exp(mu + std::sqrt(sigma2) * StandardNormal(rng));
}

double Pareto(Rng& rng, double x_m, double alpha) {
  GT_CHECK(x_m > 0.0 && alpha > 0.0) << "Pareto: bad parameters";
  const double u = 1.0 - rng.NextDouble();  // (0, 1]
  return x_m / std::pow(u, 1.0 / alpha);
}

bool Bernoulli(Rng& rng, double p) noexcept { return rng.NextDouble() < p; }

std::uint64_t Poisson(Rng& rng, double mean) {
  GT_CHECK(mean >= 0.0) << "Poisson: mean must be >= 0";
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation with continuity correction.
    const double draw = Normal(rng, mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  std::uint64_t k = 0;
  double product = rng.NextDouble();
  while (product > limit) {
    ++k;
    product *= rng.NextDouble();
  }
  return k;
}

std::size_t Discrete(Rng& rng, std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    GT_CHECK_GE(w, 0.0) << "Discrete: negative weight";
    total += w;
  }
  GT_CHECK(total > 0.0) << "Discrete: weights sum to zero";
  double target = rng.NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  GT_CHECK_NE(n, 0) << "ZipfSampler: n must be > 0";
  cdf_.resize(n);
  double running = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    running += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = running;
  }
  for (auto& v : cdf_) v /= running;
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it == cdf_.end() ? cdf_.size() - 1 : it - cdf_.begin());
}

}  // namespace gametrace::sim
