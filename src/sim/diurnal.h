// Time-of-day rate modulation.
//
// The studied server drew "connections arriving from all parts of the world
// irrespective of the time of day" (paper section III-A), i.e. a *mild*
// diurnal cycle around a high base rate. DiurnalCurve models an arbitrary
// 24-hour piecewise-linear multiplier so session arrivals can reproduce the
// short-term variation of Figure 3 while staying near capacity.
#pragma once

#include <vector>

namespace gametrace::sim {

class DiurnalCurve {
 public:
  // Control points are (hour in [0, 24), multiplier >= 0); interpolation is
  // piecewise linear and wraps around midnight. An empty list means a
  // constant multiplier of 1.
  struct ControlPoint {
    double hour;
    double multiplier;
  };

  DiurnalCurve() = default;
  explicit DiurnalCurve(std::vector<ControlPoint> points);

  // Multiplier at absolute time t (seconds); day 0 starts at t = 0 plus the
  // configured phase offset (seconds past midnight at t = 0).
  [[nodiscard]] double At(double t_seconds) const noexcept;

  void set_phase_offset(double seconds_past_midnight_at_t0) noexcept {
    phase_offset_ = seconds_past_midnight_at_t0;
  }

  // The curve used by the default calibration: gentle evening peak (x1.15)
  // and a shallow early-morning trough (x0.8) - "busy at all hours".
  static DiurnalCurve BusyServerDefault();

  // Mean multiplier over 24 h (used to keep calibrated mean rates invariant
  // under modulation).
  [[nodiscard]] double MeanMultiplier() const noexcept;

 private:
  std::vector<ControlPoint> points_;  // sorted by hour
  double phase_offset_ = 0.0;
};

}  // namespace gametrace::sim
