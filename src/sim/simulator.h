// Discrete-event simulator: a clock plus an event queue.
//
// The whole reproduction is event-driven: game server ticks, client send
// times, session arrivals/departures, map rotations, NAT service
// completions are all events against one Simulator instance.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"

namespace gametrace::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime Now() const noexcept { return now_; }

  // Schedules at an absolute time; must not be in the past.
  std::uint64_t At(SimTime t, EventQueue::Handler fn);

  // Schedules `delay` seconds from now; delay must be >= 0.
  std::uint64_t After(SimTime delay, EventQueue::Handler fn);

  // Schedules `fn` at first_at, then every `interval` seconds after each
  // firing, without re-scheduling a fresh closure per firing. The handler
  // may take the firing time (`[](double t) { ... }`). Runs until
  // Cancel()led.
  std::uint64_t Every(SimTime first_at, SimTime interval, EventQueue::Handler fn);

  bool Cancel(std::uint64_t id) { return queue_.Cancel(id); }

  // Runs events until the queue empties or the clock passes `t_end`.
  // Events scheduled exactly at t_end are executed. Returns the number of
  // events executed.
  std::uint64_t RunUntil(SimTime t_end);

  // Runs until the queue is empty.
  std::uint64_t RunAll();

  // Requests that the run loop stop after the current event.
  void Stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  // Most events ever pending at once (see EventQueue::high_water).
  [[nodiscard]] std::size_t queue_high_water() const noexcept {
    return queue_.high_water();
  }

  // ---- Wall-clock heartbeat ------------------------------------------
  //
  // A long run (the paper's full week is ~500 M events) is silent for
  // minutes at a time; the heartbeat gives the operator a pulse without
  // touching simulation behaviour. The run loop checks the wall clock only
  // once per `kHeartbeatStride` events, so an installed-but-quiet
  // heartbeat costs a countdown decrement per event.
  //
  // The callback fires on the simulation thread; it must not schedule or
  // cancel events. RunServerTrace installs a printer that knows the target
  // end time (for the ETA) and the server's player/packet counters.

  struct HeartbeatStatus {
    SimTime sim_now = 0.0;                // simulation clock, seconds
    std::uint64_t events_executed = 0;    // lifetime total for this simulator
    std::size_t pending = 0;              // events currently queued
    std::size_t queue_high_water = 0;     // max ever pending
    double wall_elapsed_seconds = 0.0;    // since the run loop started
    double events_per_second = 0.0;       // wall-clock rate since last beat
    double sim_seconds_per_second = 0.0;  // sim-time advance rate since last beat
  };
  using HeartbeatFn = std::function<void(const HeartbeatStatus&)>;

  // Installs (or, with an empty fn, removes) the heartbeat. The interval is
  // wall-clock seconds and must be > 0 when a callback is given.
  void SetHeartbeat(double wall_interval_seconds, HeartbeatFn fn);
  void ClearHeartbeat() noexcept;
  [[nodiscard]] bool has_heartbeat() const noexcept {
    return static_cast<bool>(heartbeat_fn_);
  }

 private:
  // Events between wall-clock checks; small enough to beat within ~a second
  // of the deadline at realistic dispatch rates, large enough that the
  // check itself never shows up in a profile.
  static constexpr std::uint64_t kHeartbeatStride = 4096;

  void MaybeBeat();

  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;

  HeartbeatFn heartbeat_fn_;
  double heartbeat_interval_ = 0.0;  // wall seconds
  std::uint64_t heartbeat_countdown_ = 0;
  // Wall-clock anchors, in steady_clock seconds (stored as doubles to keep
  // <chrono> out of this header).
  double run_start_wall_ = 0.0;
  double last_beat_wall_ = 0.0;
  SimTime last_beat_sim_ = 0.0;
  std::uint64_t last_beat_executed_ = 0;
};

}  // namespace gametrace::sim
