// Discrete-event simulator: a clock plus an event queue.
//
// The whole reproduction is event-driven: game server ticks, client send
// times, session arrivals/departures, map rotations, NAT service
// completions are all events against one Simulator instance.
#pragma once

#include <cstdint>

#include "sim/event_queue.h"

namespace gametrace::sim {

class Simulator {
 public:
  [[nodiscard]] SimTime Now() const noexcept { return now_; }

  // Schedules at an absolute time; must not be in the past.
  std::uint64_t At(SimTime t, EventQueue::Handler fn);

  // Schedules `delay` seconds from now; delay must be >= 0.
  std::uint64_t After(SimTime delay, EventQueue::Handler fn);

  // Schedules `fn` at first_at, then every `interval` seconds after each
  // firing, without re-scheduling a fresh closure per firing. The handler
  // may take the firing time (`[](double t) { ... }`). Runs until
  // Cancel()led.
  std::uint64_t Every(SimTime first_at, SimTime interval, EventQueue::Handler fn);

  bool Cancel(std::uint64_t id) { return queue_.Cancel(id); }

  // Runs events until the queue empties or the clock passes `t_end`.
  // Events scheduled exactly at t_end are executed. Returns the number of
  // events executed.
  std::uint64_t RunUntil(SimTime t_end);

  // Runs until the queue is empty.
  std::uint64_t RunAll();

  // Requests that the run loop stop after the current event.
  void Stop() noexcept { stop_requested_ = true; }

  [[nodiscard]] std::uint64_t events_executed() const noexcept { return executed_; }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace gametrace::sim
