// Future event list for the discrete-event simulator.
//
// A binary heap keyed by (time, sequence). The sequence number makes
// ordering of simultaneous events deterministic (FIFO in scheduling order),
// which keeps whole-trace reproducibility independent of heap tie-breaking.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace gametrace::sim {

using SimTime = double;  // seconds since trace start

class EventQueue {
 public:
  using Handler = std::function<void()>;

  // Schedules `fn` at absolute time `t`. Returns an id usable with Cancel().
  std::uint64_t Schedule(SimTime t, Handler fn);

  // Lazily cancels a scheduled event; the entry is discarded when popped.
  // Returns false if the id was never issued or already executed/cancelled.
  bool Cancel(std::uint64_t id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  // Time of the next (non-cancelled) event. Queue must not be empty.
  [[nodiscard]] SimTime NextTime() const;

  // Pops and returns the next event's handler, advancing past cancelled
  // entries. Queue must not be empty.
  struct PoppedEvent {
    SimTime time;
    Handler handler;
  };
  PoppedEvent Pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint64_t id;
    // Heap is a max-heap by default; invert for earliest-first, with seq as
    // the deterministic tie-break.
    bool operator<(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  void SkipCancelled() const;

  mutable std::priority_queue<Entry> heap_;
  std::vector<Handler> handlers_;        // id -> handler (empty when done)
  std::vector<bool> cancelled_;          // id -> cancelled flag
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace gametrace::sim
