// Future event list for the discrete-event simulator.
//
// A binary heap keyed by (time, sequence). The sequence number makes
// ordering of simultaneous events deterministic (FIFO in scheduling order),
// which keeps whole-trace reproducibility independent of heap tie-breaking.
//
// Hot-path design:
//  - Handlers are stored in InlineHandler slots (small-buffer optimized),
//    so scheduling a capturing lambda performs no heap allocation.
//  - Slots are recycled through a free list the moment an event executes
//    or is cancelled; memory is bounded by the high-water mark of pending
//    events, not by the number of events ever scheduled. Ids carry a
//    generation counter so a recycled slot can never be cancelled (or run)
//    through a stale id.
//  - Periodic events (SchedulePeriodic) re-arm in place: one slot and one
//    handler for the lifetime of the timer, no per-firing closure.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/inline_function.h"

namespace gametrace::sim {

using SimTime = double;  // seconds since trace start

class EventQueue {
 public:
  using Handler = InlineHandler;

  // Schedules `fn` at absolute time `t`. Returns an id usable with Cancel().
  std::uint64_t Schedule(SimTime t, Handler fn);

  // Schedules `fn` at `first`, then again every `interval` seconds after
  // each firing, re-using the same handler slot (no per-firing allocation
  // or re-scheduling closure). The handler may accept the firing time
  // (`[](double t) { ... }`). Runs until Cancel()led; interval must be > 0.
  std::uint64_t SchedulePeriodic(SimTime first, SimTime interval, Handler fn);

  // Cancels a scheduled or periodic event; its slot is reclaimed
  // immediately. Returns false if the id was never issued or already
  // executed/cancelled.
  bool Cancel(std::uint64_t id);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  // Number of allocated handler slots - bounded by the high-water mark of
  // concurrently pending events (free-list reuse), exposed so tests can
  // assert the bound.
  [[nodiscard]] std::size_t slot_count() const noexcept { return slots_.size(); }

  // Most events ever pending at once; the "sim.queue.high_water" gauge and
  // the heartbeat report this as the memory-pressure proxy.
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

  // Time of the next (non-cancelled) event. Queue must not be empty.
  [[nodiscard]] SimTime NextTime() const;

  // Pops the next event and invokes its handler with the event time.
  // One-shot events release their slot before the handler runs (the handler
  // may schedule freely); periodic events re-arm at time + interval unless
  // cancelled from within the handler. Returns the event time. Queue must
  // not be empty.
  SimTime RunNext();

  // Pops and returns the next one-shot event's handler without invoking it.
  // Throws std::logic_error if the next event is periodic (periodic events
  // cannot be moved out of their slot; use RunNext). Queue must not be
  // empty.
  struct PoppedEvent {
    SimTime time;
    Handler handler;
  };
  PoppedEvent Pop();

 private:
  struct Entry {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
    // Heap is a max-heap by default; invert for earliest-first, with seq as
    // the deterministic tie-break.
    bool operator<(const Entry& other) const noexcept {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };

  struct Slot {
    Handler handler;
    SimTime interval = 0.0;  // > 0 -> periodic
    std::uint32_t gen = 0;   // bumped on every release; stale heap entries/ids mismatch
  };

  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t index);
  std::uint64_t Arm(SimTime t, SimTime interval, Handler fn);
  void SkipStale() const;

  mutable std::priority_queue<Entry> heap_;
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace gametrace::sim
