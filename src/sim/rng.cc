#include "sim/rng.h"

namespace gametrace::sim {

namespace {

constexpr std::uint64_t RotL(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

// SplitMix64: used only for seeding / stream splitting.
constexpr std::uint64_t SplitMix64(std::uint64_t& s) noexcept {
  s += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t SubstreamSeed(std::uint64_t base_seed, std::uint64_t stream) noexcept {
  // Jump the SplitMix64 sequence straight to position stream + 1: the state
  // after n increments is base_seed + n * gamma, so no loop is needed.
  std::uint64_t s = base_seed + (stream + 1) * 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(s);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Rng::NextDouble() noexcept {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

Rng Rng::Split() noexcept {
  // Use two outputs of this generator as the seed of the child stream.
  const std::uint64_t a = (*this)();
  const std::uint64_t b = (*this)();
  return Rng(a ^ RotL(b, 31));
}

}  // namespace gametrace::sim
