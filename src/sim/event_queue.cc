#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

#include "core/check.h"
#include "obs/prof.h"

namespace gametrace::sim {

std::uint32_t EventQueue::AcquireSlot() {
  if (!free_.empty()) {
    const std::uint32_t index = free_.back();
    free_.pop_back();
    GT_DCHECK_LT(index, slots_.size()) << "EventQueue free list holds an out-of-range slot";
    GT_DCHECK(!slots_[index].handler) << "EventQueue free list holds a live slot";
    return index;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::ReleaseSlot(std::uint32_t index) {
  GT_DCHECK_LT(index, slots_.size()) << "EventQueue::ReleaseSlot: out-of-range slot";
  Slot& slot = slots_[index];
  slot.handler = nullptr;
  slot.interval = 0.0;
  ++slot.gen;  // invalidates any heap entry or outstanding id for this arming
  free_.push_back(index);
}

std::uint64_t EventQueue::Arm(SimTime t, SimTime interval, Handler fn) {
  const std::uint32_t index = AcquireSlot();
  Slot& slot = slots_[index];
  slot.handler = std::move(fn);
  slot.interval = interval;
  heap_.push(Entry{t, next_seq_++, index, slot.gen});
  ++live_count_;
  if (live_count_ > high_water_) high_water_ = live_count_;
  return (std::uint64_t{index} << 32) | slot.gen;
}

std::uint64_t EventQueue::Schedule(SimTime t, Handler fn) {
  GT_CHECK(fn) << "EventQueue::Schedule: empty handler";
  return Arm(t, 0.0, std::move(fn));
}

std::uint64_t EventQueue::SchedulePeriodic(SimTime first, SimTime interval, Handler fn) {
  GT_CHECK(fn) << "EventQueue::SchedulePeriodic: empty handler";
  GT_CHECK(interval > 0.0) << "EventQueue::SchedulePeriodic: interval must be positive";
  return Arm(first, interval, std::move(fn));
}

bool EventQueue::Cancel(std::uint64_t id) {
  const auto index = static_cast<std::uint32_t>(id >> 32);
  const auto gen = static_cast<std::uint32_t>(id);
  if (index >= slots_.size()) return false;
  if (slots_[index].gen != gen) return false;  // already executed/cancelled/recycled
  ReleaseSlot(index);
  --live_count_;
  return true;
}

void EventQueue::SkipStale() const {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    GT_DCHECK_LT(top.slot, slots_.size()) << "EventQueue heap entry points past the slot table";
    if (slots_[top.slot].gen == top.gen) break;
    heap_.pop();
  }
}

bool EventQueue::empty() const noexcept {
  SkipStale();
  return heap_.empty();
}

SimTime EventQueue::NextTime() const {
  SkipStale();
  GT_CHECK(!heap_.empty()) << "EventQueue::NextTime: empty queue";
  return heap_.top().time;
}

SimTime EventQueue::RunNext() {
  GT_PROF_SCOPE("sim.event_queue.run_next");
  SkipStale();
  GT_CHECK(!heap_.empty()) << "EventQueue::RunNext: empty queue";
  const Entry top = heap_.top();
  heap_.pop();
  Slot& slot = slots_[top.slot];
  GT_DCHECK(slot.handler) << "EventQueue::RunNext: live heap entry with an empty handler";
  if (slot.interval > 0.0) {
    const SimTime interval = slot.interval;
    // Run out of a local so a handler that schedules (growing slots_) or
    // cancels itself cannot invalidate the callable mid-invocation.
    Handler handler = std::move(slot.handler);
    handler(top.time);
    Slot& current = slots_[top.slot];  // re-fetch: slots_ may have grown
    if (current.gen == top.gen) {      // not cancelled during the firing
      current.handler = std::move(handler);
      heap_.push(Entry{top.time + interval, next_seq_++, top.slot, top.gen});
    }
  } else {
    Handler handler = std::move(slot.handler);
    ReleaseSlot(top.slot);
    --live_count_;
    handler(top.time);
  }
  return top.time;
}

EventQueue::PoppedEvent EventQueue::Pop() {
  SkipStale();
  GT_CHECK(!heap_.empty()) << "EventQueue::Pop: empty queue";
  const Entry top = heap_.top();
  Slot& slot = slots_[top.slot];
  GT_CHECK_LE(slot.interval, 0.0) << "EventQueue::Pop: periodic event; use RunNext()";
  GT_DCHECK(slot.handler) << "EventQueue::Pop: live heap entry with an empty handler";
  heap_.pop();
  PoppedEvent out{top.time, std::move(slot.handler)};
  ReleaseSlot(top.slot);
  --live_count_;
  return out;
}

}  // namespace gametrace::sim
