#include "sim/event_queue.h"

#include <stdexcept>
#include <utility>

namespace gametrace::sim {

std::uint64_t EventQueue::Schedule(SimTime t, Handler fn) {
  if (!fn) throw std::invalid_argument("EventQueue::Schedule: empty handler");
  const std::uint64_t id = handlers_.size();
  handlers_.push_back(std::move(fn));
  cancelled_.push_back(false);
  heap_.push(Entry{t, next_seq_++, id});
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(std::uint64_t id) {
  if (id >= handlers_.size()) return false;
  if (cancelled_[id] || !handlers_[id]) return false;
  cancelled_[id] = true;
  handlers_[id] = nullptr;
  --live_count_;
  return true;
}

void EventQueue::SkipCancelled() const {
  while (!heap_.empty() && cancelled_[heap_.top().id]) heap_.pop();
}

bool EventQueue::empty() const noexcept {
  SkipCancelled();
  return heap_.empty();
}

SimTime EventQueue::NextTime() const {
  SkipCancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::NextTime: empty queue");
  return heap_.top().time;
}

EventQueue::PoppedEvent EventQueue::Pop() {
  SkipCancelled();
  if (heap_.empty()) throw std::logic_error("EventQueue::Pop: empty queue");
  const Entry top = heap_.top();
  heap_.pop();
  PoppedEvent out{top.time, std::move(handlers_[top.id])};
  handlers_[top.id] = nullptr;
  --live_count_;
  return out;
}

}  // namespace gametrace::sim
