#include "sim/diurnal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/check.h"

namespace gametrace::sim {

namespace {
constexpr double kDaySeconds = 86400.0;
}

DiurnalCurve::DiurnalCurve(std::vector<ControlPoint> points) : points_(std::move(points)) {
  for (const auto& p : points_) {
    GT_CHECK(p.hour >= 0.0 && p.hour < 24.0) << "DiurnalCurve: hour outside [0,24)";
    GT_CHECK_GE(p.multiplier, 0.0) << "DiurnalCurve: negative multiplier";
  }
  std::sort(points_.begin(), points_.end(),
            [](const ControlPoint& a, const ControlPoint& b) { return a.hour < b.hour; });
}

double DiurnalCurve::At(double t_seconds) const noexcept {
  if (points_.empty()) return 1.0;
  if (points_.size() == 1) return points_.front().multiplier;

  double day_pos = std::fmod(t_seconds + phase_offset_, kDaySeconds);
  if (day_pos < 0.0) day_pos += kDaySeconds;
  const double hour = day_pos / 3600.0;

  // Find the segment [prev, next] containing `hour`, wrapping at midnight.
  const auto next_it = std::upper_bound(
      points_.begin(), points_.end(), hour,
      [](double h, const ControlPoint& p) { return h < p.hour; });
  const ControlPoint& next = next_it == points_.end() ? points_.front() : *next_it;
  const ControlPoint& prev = next_it == points_.begin() ? points_.back() : *(next_it - 1);

  double span = next.hour - prev.hour;
  double offset = hour - prev.hour;
  if (span <= 0.0) span += 24.0;     // wrapped segment
  if (offset < 0.0) offset += 24.0;  // hour before first control point
  const double frac = span > 0.0 ? offset / span : 0.0;
  return prev.multiplier + frac * (next.multiplier - prev.multiplier);
}

DiurnalCurve DiurnalCurve::BusyServerDefault() {
  // Connections arrive "irrespective of the time of day": the cycle is
  // deliberately mild (a strong daily swing would put long-range variance
  // into the >30 min band, contradicting the paper's Figure 5 where
  // H ~ 1/2 above the map period). Full-server refusal episodes come from
  // group arrivals instead (SessionConfig::group_mean_extra).
  return DiurnalCurve({{4.0, 0.82}, {10.0, 1.00}, {16.0, 1.06}, {20.0, 1.18}, {23.0, 0.97}});
}

double DiurnalCurve::MeanMultiplier() const noexcept {
  // Trapezoidal integration at 1-minute resolution is plenty for a
  // piecewise-linear curve.
  constexpr int kSteps = 24 * 60;
  double acc = 0.0;
  for (int i = 0; i < kSteps; ++i) {
    acc += At(static_cast<double>(i) * 60.0);
  }
  return acc / kSteps;
}

}  // namespace gametrace::sim
