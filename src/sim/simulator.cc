#include "sim/simulator.h"

#include <limits>
#include <stdexcept>
#include <utility>

#include "core/check.h"

namespace gametrace::sim {

std::uint64_t Simulator::At(SimTime t, EventQueue::Handler fn) {
  GT_CHECK_GE(t, now_) << "Simulator::At: time is in the past";
  return queue_.Schedule(t, std::move(fn));
}

std::uint64_t Simulator::After(SimTime delay, EventQueue::Handler fn) {
  GT_CHECK_GE(delay, 0.0) << "Simulator::After: negative delay";
  return queue_.Schedule(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::Every(SimTime first_at, SimTime interval, EventQueue::Handler fn) {
  GT_CHECK_GE(first_at, now_) << "Simulator::Every: time is in the past";
  return queue_.SchedulePeriodic(first_at, interval, std::move(fn));
}

std::uint64_t Simulator::RunUntil(SimTime t_end) {
  stop_requested_ = false;
  std::uint64_t ran = 0;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime t = queue_.NextTime();
    if (t > t_end) break;
    now_ = t;
    queue_.RunNext();
    ++ran;
    ++executed_;
  }
  // The clock reaches t_end even if the queue drained earlier, so rate
  // computations over [0, t_end] see the idle tail.
  if (now_ < t_end && !stop_requested_) now_ = t_end;
  return ran;
}

std::uint64_t Simulator::RunAll() {
  return RunUntil(std::numeric_limits<SimTime>::infinity());
}

}  // namespace gametrace::sim
