#include "sim/simulator.h"

#include <limits>
#include <stdexcept>
#include <utility>

namespace gametrace::sim {

std::uint64_t Simulator::At(SimTime t, EventQueue::Handler fn) {
  if (t < now_) throw std::invalid_argument("Simulator::At: time is in the past");
  return queue_.Schedule(t, std::move(fn));
}

std::uint64_t Simulator::After(SimTime delay, EventQueue::Handler fn) {
  if (delay < 0.0) throw std::invalid_argument("Simulator::After: negative delay");
  return queue_.Schedule(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::RunUntil(SimTime t_end) {
  stop_requested_ = false;
  std::uint64_t ran = 0;
  while (!queue_.empty() && !stop_requested_) {
    if (queue_.NextTime() > t_end) break;
    auto [time, handler] = queue_.Pop();
    now_ = time;
    handler();
    ++ran;
    ++executed_;
  }
  // The clock reaches t_end even if the queue drained earlier, so rate
  // computations over [0, t_end] see the idle tail.
  if (now_ < t_end && !stop_requested_) now_ = t_end;
  return ran;
}

std::uint64_t Simulator::RunAll() {
  return RunUntil(std::numeric_limits<SimTime>::infinity());
}

}  // namespace gametrace::sim
