#include "sim/simulator.h"

#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/check.h"

namespace gametrace::sim {

namespace {

double WallSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::uint64_t Simulator::At(SimTime t, EventQueue::Handler fn) {
  GT_CHECK_GE(t, now_) << "Simulator::At: time is in the past";
  return queue_.Schedule(t, std::move(fn));
}

std::uint64_t Simulator::After(SimTime delay, EventQueue::Handler fn) {
  GT_CHECK_GE(delay, 0.0) << "Simulator::After: negative delay";
  return queue_.Schedule(now_ + delay, std::move(fn));
}

std::uint64_t Simulator::Every(SimTime first_at, SimTime interval, EventQueue::Handler fn) {
  GT_CHECK_GE(first_at, now_) << "Simulator::Every: time is in the past";
  return queue_.SchedulePeriodic(first_at, interval, std::move(fn));
}

void Simulator::SetHeartbeat(double wall_interval_seconds, HeartbeatFn fn) {
  if (!fn) {
    ClearHeartbeat();
    return;
  }
  GT_CHECK(wall_interval_seconds > 0.0)
      << "Simulator::SetHeartbeat: interval must be positive";
  heartbeat_fn_ = std::move(fn);
  heartbeat_interval_ = wall_interval_seconds;
  heartbeat_countdown_ = kHeartbeatStride;
  run_start_wall_ = 0.0;  // re-anchored by the next RunUntil
}

void Simulator::ClearHeartbeat() noexcept {
  heartbeat_fn_ = nullptr;
  heartbeat_interval_ = 0.0;
  heartbeat_countdown_ = 0;
}

void Simulator::MaybeBeat() {
  heartbeat_countdown_ = kHeartbeatStride;
  const double wall = WallSeconds();
  if (wall - last_beat_wall_ < heartbeat_interval_) return;

  const double dt_wall = wall - last_beat_wall_;
  HeartbeatStatus status;
  status.sim_now = now_;
  status.events_executed = executed_;
  status.pending = queue_.size();
  status.queue_high_water = queue_.high_water();
  status.wall_elapsed_seconds = wall - run_start_wall_;
  status.events_per_second =
      dt_wall > 0.0 ? static_cast<double>(executed_ - last_beat_executed_) / dt_wall : 0.0;
  status.sim_seconds_per_second = dt_wall > 0.0 ? (now_ - last_beat_sim_) / dt_wall : 0.0;

  last_beat_wall_ = wall;
  last_beat_sim_ = now_;
  last_beat_executed_ = executed_;
  heartbeat_fn_(status);
}

std::uint64_t Simulator::RunUntil(SimTime t_end) {
  stop_requested_ = false;
  if (heartbeat_fn_ && run_start_wall_ == 0.0) {
    run_start_wall_ = WallSeconds();
    last_beat_wall_ = run_start_wall_;
    last_beat_sim_ = now_;
    last_beat_executed_ = executed_;
  }
  std::uint64_t ran = 0;
  while (!queue_.empty() && !stop_requested_) {
    const SimTime t = queue_.NextTime();
    if (t > t_end) break;
    now_ = t;
    queue_.RunNext();
    ++ran;
    ++executed_;
    if (heartbeat_fn_ && --heartbeat_countdown_ == 0) MaybeBeat();
  }
  // The clock reaches t_end even if the queue drained earlier, so rate
  // computations over [0, t_end] see the idle tail.
  if (now_ < t_end && !stop_requested_) now_ = t_end;
  return ran;
}

std::uint64_t Simulator::RunAll() {
  return RunUntil(std::numeric_limits<SimTime>::infinity());
}

}  // namespace gametrace::sim
