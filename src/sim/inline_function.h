// Small-buffer-optimized event handler.
//
// std::function<void()> heap-allocates for captures beyond ~16 bytes, which
// puts one malloc/free pair on every scheduled event - the dominant cost of
// the simulation hot path at millions of events per second. InlineHandler
// stores any callable up to kInlineCapacity bytes directly inside the
// object (larger ones fall back to the heap) and dispatches through a
// single static ops table, so scheduling an event is a memcpy, not an
// allocation.
//
// The callable may take the event time (`f(double t)`) or nothing (`f()`);
// the wrapper dispatches to whichever signature the callable supports.
// This lets one handler type serve both plain one-shot events and periodic
// events that want the firing time.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace gametrace::sim {

class InlineHandler {
 public:
  // Sized so every capturing lambda in the library (typically `this` plus a
  // few doubles/ids) stays inline; measured against the simulator's own
  // call sites.
  static constexpr std::size_t kInlineCapacity = 48;

  InlineHandler() noexcept = default;
  InlineHandler(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineHandler> &&
                (std::is_invocable_v<std::decay_t<F>&> ||
                 std::is_invocable_v<std::decay_t<F>&, double>)>>
  InlineHandler(F&& f) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    constexpr bool fits_inline = sizeof(D) <= kInlineCapacity &&
                                 alignof(D) <= alignof(std::max_align_t) &&
                                 std::is_nothrow_move_constructible_v<D>;
    if constexpr (fits_inline) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      static constexpr Ops ops{&InvokeInline<D>, &MoveInline<D>, &DestroyInline<D>};
      ops_ = &ops;
    } else {
      *reinterpret_cast<D**>(storage_) = new D(std::forward<F>(f));
      static constexpr Ops ops{&InvokeHeap<D>, &MoveHeap, &DestroyHeap<D>};
      ops_ = &ops;
    }
  }

  InlineHandler(InlineHandler&& other) noexcept { MoveFrom(other); }
  InlineHandler& operator=(InlineHandler&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  InlineHandler& operator=(std::nullptr_t) noexcept {
    Reset();
    return *this;
  }

  InlineHandler(const InlineHandler&) = delete;
  InlineHandler& operator=(const InlineHandler&) = delete;

  ~InlineHandler() { Reset(); }

  [[nodiscard]] explicit operator bool() const noexcept { return ops_ != nullptr; }

  // Invokes the callable; `t` is forwarded if the callable accepts it.
  void operator()(double t = 0.0) { ops_->invoke(storage_, t); }

 private:
  struct Ops {
    void (*invoke)(void*, double);
    void (*move)(void* dst, void* src) noexcept;  // move-construct dst from src
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static void InvokeInline(void* p, double t) {
    D& f = *std::launder(reinterpret_cast<D*>(p));
    if constexpr (std::is_invocable_v<D&, double>) {
      f(t);
    } else {
      f();
    }
  }
  template <typename D>
  static void MoveInline(void* dst, void* src) noexcept {
    ::new (dst) D(std::move(*std::launder(reinterpret_cast<D*>(src))));
    std::launder(reinterpret_cast<D*>(src))->~D();
  }
  template <typename D>
  static void DestroyInline(void* p) noexcept {
    std::launder(reinterpret_cast<D*>(p))->~D();
  }

  template <typename D>
  static void InvokeHeap(void* p, double t) {
    D& f = **reinterpret_cast<D**>(p);
    if constexpr (std::is_invocable_v<D&, double>) {
      f(t);
    } else {
      f();
    }
  }
  static void MoveHeap(void* dst, void* src) noexcept {
    *reinterpret_cast<void**>(dst) = *reinterpret_cast<void**>(src);
  }
  template <typename D>
  static void DestroyHeap(void* p) noexcept {
    delete *reinterpret_cast<D**>(p);
  }

  void MoveFrom(InlineHandler& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->move(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }
  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineCapacity];
  const Ops* ops_ = nullptr;
};

}  // namespace gametrace::sim
