// Sequence-gap loss estimation from an endpoint trace.
//
// The measurement-study workhorse: given only the packets that *arrived*
// (e.g. a capture behind a lossy NAT), per-flow netchannel sequence gaps
// reveal how many packets never made it - without any access to the
// device. Validated against NatDevice ground truth in the tests.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/packet.h"
#include "trace/capture.h"

namespace gametrace::trace {

class SeqGapLossEstimator final : public CaptureSink {
 public:
  struct DirectionEstimate {
    std::uint64_t received = 0;  // sequenced packets observed
    std::uint64_t expected = 0;  // sum over flows of (max_seq - min_seq + 1)
    std::uint64_t flows = 0;

    [[nodiscard]] std::uint64_t lost() const noexcept {
      return expected > received ? expected - received : 0;
    }
    [[nodiscard]] double loss_rate() const noexcept {
      return expected > 0 ? static_cast<double>(lost()) / static_cast<double>(expected) : 0.0;
    }
  };

  void OnPacket(const net::PacketRecord& record) override;

  // Aggregated estimates (finalised lazily; cheap to call repeatedly).
  [[nodiscard]] DirectionEstimate Estimate(net::Direction direction) const;

  [[nodiscard]] std::uint64_t unsequenced_packets() const noexcept { return unsequenced_; }

 private:
  struct FlowState {
    std::uint32_t min_seq = 0;
    std::uint32_t max_seq = 0;
    std::uint64_t received = 0;
  };

  static std::uint64_t Key(const net::PacketRecord& r) noexcept {
    return (std::uint64_t{r.client_ip.value()} << 17) | (std::uint64_t{r.client_port} << 1) |
           static_cast<std::uint64_t>(r.direction);
  }

  std::unordered_map<std::uint64_t, FlowState> flows_;
  std::uint64_t unsequenced_ = 0;
};

}  // namespace gametrace::trace
