#include "trace/summary.h"

#include <algorithm>
#include <stdexcept>

#include "core/check.h"
#include "obs/prof.h"

namespace gametrace::trace {

TraceSummary::TraceSummary(std::uint32_t wire_overhead_bytes) : overhead_(wire_overhead_bytes) {}

void TraceSummary::OnPacket(const net::PacketRecord& record) {
  if (first_time_ < 0.0) first_time_ = record.timestamp;
  last_time_ = record.timestamp;

  if (record.direction == net::Direction::kClientToServer) {
    ++packets_in_;
    app_bytes_in_ += record.app_bytes;
    size_in_.Add(record.app_bytes);
  } else {
    ++packets_out_;
    app_bytes_out_ += record.app_bytes;
    size_out_.Add(record.app_bytes);
  }

  switch (record.kind) {
    case net::PacketKind::kConnectRequest:
      ++attempts_;
      attempting_clients_.insert(record.client_ip.value());
      break;
    case net::PacketKind::kConnectAccept:
      ++established_;
      establishing_clients_.insert(record.client_ip.value());
      break;
    case net::PacketKind::kConnectReject:
      ++refused_;
      break;
    default:
      break;
  }
}

void TraceSummary::OnBatch(std::span<const net::PacketRecord> batch) {
  GT_PROF_SCOPE("trace.summary.on_batch");
  if (batch.empty()) return;
  if (first_time_ < 0.0) first_time_ = batch.front().timestamp;
  last_time_ = batch.back().timestamp;

  // Three specialised sweeps instead of one heavy loop: each direction pass
  // keeps only its own Welford recurrence and two counters live (the fused
  // loop spills), and the handshake pass is a predictable not-taken branch
  // for game traffic. Per-direction record order - all that the sequential
  // moments depend on - is preserved, so results stay bit-identical.
  std::uint64_t pkts_in = 0;
  std::uint64_t bytes_in = 0;
  for (const net::PacketRecord& record : batch) {
    if (record.direction != net::Direction::kClientToServer) continue;
    ++pkts_in;
    bytes_in += record.app_bytes;
    size_in_.Add(record.app_bytes);
  }
  std::uint64_t pkts_out = 0;
  std::uint64_t bytes_out = 0;
  for (const net::PacketRecord& record : batch) {
    if (record.direction != net::Direction::kServerToClient) continue;
    ++pkts_out;
    bytes_out += record.app_bytes;
    size_out_.Add(record.app_bytes);
  }
  for (const net::PacketRecord& record : batch) {
    if (record.kind < net::PacketKind::kConnectRequest ||
        record.kind > net::PacketKind::kConnectReject) {
      continue;  // game/chat/download traffic: no handshake bookkeeping
    }
    switch (record.kind) {
      case net::PacketKind::kConnectRequest:
        ++attempts_;
        attempting_clients_.insert(record.client_ip.value());
        break;
      case net::PacketKind::kConnectAccept:
        ++established_;
        establishing_clients_.insert(record.client_ip.value());
        break;
      default:
        ++refused_;
        break;
    }
  }
  packets_in_ += pkts_in;
  packets_out_ += pkts_out;
  app_bytes_in_ += bytes_in;
  app_bytes_out_ += bytes_out;
}

void TraceSummary::OnColumns(const net::PacketBatch& batch) {
  GT_PROF_SCOPE("trace.summary.on_columns");
  AccumulateColumns(batch);
}

void TraceSummary::AccumulateColumns(const net::PacketBatch& batch) {
  const std::size_t n = batch.count;
  if (n == 0) return;
  const double* ts = batch.timestamps;
  if (first_time_ < 0.0) first_time_ = ts[0];
  last_time_ = ts[n - 1];

  // One interleaved pass over the raw u8/u16 columns. Unlike the AoS
  // OnBatch (where splitting by direction pays for itself by avoiding
  // 24-byte record strides), the columnar loads are already dense, and
  // keeping the two directions interleaved lets the out-of-order core
  // overlap the two serial Welford division chains - the kernel's actual
  // latency bound. Record order equals scalar order, so bit-identity is
  // by construction.
  const std::uint8_t* dirs = batch.directions;
  const std::uint16_t* sizes = batch.app_bytes;
  const std::uint8_t* kinds = batch.kinds;
  const std::uint32_t* ips = batch.client_ips;
  constexpr auto kIn = static_cast<std::uint8_t>(net::Direction::kClientToServer);
  constexpr auto kReq = static_cast<std::uint8_t>(net::PacketKind::kConnectRequest);
  constexpr auto kAccept = static_cast<std::uint8_t>(net::PacketKind::kConnectAccept);
  constexpr auto kReject = static_cast<std::uint8_t>(net::PacketKind::kConnectReject);
  std::uint64_t pkts_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t pkts_out = 0;
  std::uint64_t bytes_out = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint16_t size = sizes[i];
    if (dirs[i] == kIn) {
      ++pkts_in;
      bytes_in += size;
      size_in_.Add(size);
    } else {
      ++pkts_out;
      bytes_out += size;
      size_out_.Add(size);
    }
    if (kinds[i] >= kReq && kinds[i] <= kReject) [[unlikely]] {
      switch (kinds[i]) {
        case kReq:
          ++attempts_;
          attempting_clients_.insert(ips[i]);
          break;
        case kAccept:
          ++established_;
          establishing_clients_.insert(ips[i]);
          break;
        default:
          ++refused_;
          break;
      }
    }
  }
  packets_in_ += pkts_in;
  packets_out_ += pkts_out;
  app_bytes_in_ += bytes_in;
  app_bytes_out_ += bytes_out;
}

void TraceSummary::Merge(const TraceSummary& other) {
  GT_CHECK_EQ(other.overhead_, overhead_) << "TraceSummary::Merge: wire-overhead mismatch";
  packets_in_ += other.packets_in_;
  packets_out_ += other.packets_out_;
  app_bytes_in_ += other.app_bytes_in_;
  app_bytes_out_ += other.app_bytes_out_;
  size_in_.Merge(other.size_in_);
  size_out_.Merge(other.size_out_);
  attempts_ += other.attempts_;
  established_ += other.established_;
  refused_ += other.refused_;
  // gt-lint: allow(nondet-iteration) set-union insert; the resulting set is order-independent
  attempting_clients_.insert(other.attempting_clients_.begin(),
                             other.attempting_clients_.end());
  // gt-lint: allow(nondet-iteration) set-union insert; the resulting set is order-independent
  establishing_clients_.insert(other.establishing_clients_.begin(),
                               other.establishing_clients_.end());
  if (other.first_time_ >= 0.0) {
    first_time_ = first_time_ < 0.0 ? other.first_time_
                                    : std::min(first_time_, other.first_time_);
    last_time_ = std::max(last_time_, other.last_time_);
  }
  duration_override_ = std::max(duration_override_, other.duration_override_);
}

std::uint64_t TraceSummary::wire_bytes_in() const noexcept {
  return app_bytes_in_ + packets_in_ * overhead_;
}

std::uint64_t TraceSummary::wire_bytes_out() const noexcept {
  return app_bytes_out_ + packets_out_ * overhead_;
}

std::uint64_t TraceSummary::wire_bytes_total() const noexcept {
  return wire_bytes_in() + wire_bytes_out();
}

double TraceSummary::duration() const noexcept {
  if (duration_override_ > 0.0) return duration_override_;
  if (first_time_ < 0.0) return 0.0;
  return last_time_ - first_time_;
}

double TraceSummary::mean_packet_load() const noexcept {
  const double d = duration();
  return d > 0.0 ? static_cast<double>(total_packets()) / d : 0.0;
}

double TraceSummary::mean_packet_load_in() const noexcept {
  const double d = duration();
  return d > 0.0 ? static_cast<double>(packets_in_) / d : 0.0;
}

double TraceSummary::mean_packet_load_out() const noexcept {
  const double d = duration();
  return d > 0.0 ? static_cast<double>(packets_out_) / d : 0.0;
}

double TraceSummary::mean_bandwidth_bps() const noexcept {
  return net::BitsPerSecond(static_cast<double>(wire_bytes_total()), duration());
}

double TraceSummary::mean_bandwidth_in_bps() const noexcept {
  return net::BitsPerSecond(static_cast<double>(wire_bytes_in()), duration());
}

double TraceSummary::mean_bandwidth_out_bps() const noexcept {
  return net::BitsPerSecond(static_cast<double>(wire_bytes_out()), duration());
}

double TraceSummary::mean_packet_size() const noexcept {
  const std::uint64_t n = total_packets();
  return n > 0 ? static_cast<double>(app_bytes_total()) / static_cast<double>(n) : 0.0;
}

double TraceSummary::mean_packet_size_in() const noexcept { return size_in_.mean(); }

double TraceSummary::mean_packet_size_out() const noexcept { return size_out_.mean(); }

}  // namespace gametrace::trace
