// Session reconstruction from the packet stream alone.
//
// Like the paper's analysis, sessions are inferred from packet timing: a
// client endpoint that goes quiet for longer than `idle_timeout` has left
// (Counter-Strike clients and servers disconnect "after not hearing from
// each other over a period of several seconds"). Produces the per-session
// bandwidth population behind Figure 11 and the session counts of Table I.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "stats/histogram.h"
#include "trace/capture.h"

namespace gametrace::trace {

struct Session {
  net::Ipv4Address client_ip;
  std::uint16_t client_port = 0;
  double start = 0.0;
  double end = 0.0;
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t app_bytes_in = 0;
  std::uint64_t app_bytes_out = 0;

  [[nodiscard]] double duration() const noexcept { return end - start; }
  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_in + packets_out; }

  // Mean bandwidth over the session including wire overhead, bits/sec -
  // "the bandwidth measured at the server will be quite close to what is
  // sent across the last hop" (paper section III-B).
  [[nodiscard]] double mean_bandwidth_bps(
      std::uint32_t overhead = net::kWireOverheadBytes) const noexcept;
};

class SessionTracker final : public CaptureSink {
 public:
  explicit SessionTracker(double idle_timeout_seconds = 30.0);

  void OnPacket(const net::PacketRecord& record) override;

  // One virtual call per batch; repeated packets from the same endpoint
  // (the common case inside a tick burst) skip the hash lookup entirely.
  void OnBatch(std::span<const net::PacketRecord> batch) override;

  void OnColumns(const net::PacketBatch& batch) override;

  // Columnar kernel (non-virtual: FusedChain calls it directly). Session
  // tracking is hash-bound per record, but the columnar form reads only the
  // five fields it needs and skips rejects via the dense kind column.
  void AccumulateColumns(const net::PacketBatch& batch);

  // Absorbs another tracker's sessions (closed and still-open). Exact when
  // the two trackers saw disjoint client endpoints - the fleet engine
  // guarantees this by namespacing each shard's flow identifiers (see
  // ShardNamespaceSink); an endpoint open on both sides is combined into
  // one session spanning both. Throws std::invalid_argument if the idle
  // timeouts differ.
  void Merge(SessionTracker&& other);

  // Closes all still-open sessions as of the last packet seen and returns
  // the full session list (sorted by start time). Call once, at the end.
  [[nodiscard]] std::vector<Session> Finish();

  [[nodiscard]] std::size_t open_sessions() const noexcept { return live_; }
  [[nodiscard]] std::size_t closed_sessions() const noexcept { return closed_.size(); }

  // Number of distinct client IPs seen across all sessions so far.
  [[nodiscard]] std::uint64_t unique_clients() const noexcept { return unique_ips_.size(); }

  // Builds the Figure 11 histogram: mean session bandwidth, sessions longer
  // than `min_duration` only.
  [[nodiscard]] static stats::Histogram BandwidthHistogram(
      const std::vector<Session>& sessions, double min_duration = 30.0,
      double max_bps = 160000.0, std::size_t bins = 64);

 private:
  // Open sessions live in a flat open-addressing table keyed by the 48-bit
  // (ip, port) endpoint. std::unordered_map cost one modulo-by-prime plus a
  // node dereference per lookup - measurably the whole session-tracking
  // budget on the hot path. Here the probe is one multiply (Fibonacci
  // hashing, which scatters the near-sequential endpoint keys well), a
  // power-of-two mask and a scan over a dense key array; the Session
  // payloads sit in a parallel vector so probing never drags 56-byte
  // records through the cache. Idle-timeout closes leave tombstones
  // (state kDead); the table rehashes when full + dead slots pass ~70%.
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kLive = 1;
  static constexpr std::uint8_t kDead = 2;
  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  [[nodiscard]] static std::uint64_t FlowKey(std::uint32_t ip, std::uint16_t port) noexcept {
    return (std::uint64_t{ip} << 16) | port;
  }
  [[nodiscard]] std::size_t HomeSlot(std::uint64_t key) const noexcept {
    // Fibonacci hashing: the top bits of key * 2^64/phi, masked to capacity.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ULL) >> 32) & (keys_.size() - 1);
  }

  void Ingest(const net::PacketRecord& record);
  void IngestFields(double t, std::uint32_t ip, std::uint16_t port, bool inbound,
                    std::uint16_t bytes);
  // Finds the live slot for `key`, or kNoSlot. `insert_slot` receives the
  // slot an insertion of `key` must use (first tombstone on the probe path,
  // else the terminating empty slot).
  [[nodiscard]] std::size_t FindSlot(std::uint64_t key, std::size_t& insert_slot) const noexcept;
  // Claims `slot` for a fresh session of `key`, growing (and re-homing
  // `slot`) if the table is too full. Returns the claimed slot.
  std::size_t ClaimSlot(std::uint64_t key, std::size_t slot);
  void Rehash(std::size_t new_capacity);

  double idle_timeout_;
  std::vector<std::uint64_t> keys_;    // capacity-sized, power of two
  std::vector<std::uint8_t> states_;   // kEmpty / kLive / kDead
  std::vector<Session> sessions_;     // parallel payloads for kLive slots
  std::size_t live_ = 0;
  std::size_t dead_ = 0;
  std::vector<Session> closed_;
  std::unordered_map<std::uint32_t, std::uint32_t> unique_ips_;  // ip -> session count
  // Memoized last-touched open slot (invalidated by rehash and Merge).
  std::uint64_t cached_key_ = 0;
  std::size_t cached_slot_ = kNoSlot;
};

}  // namespace gametrace::trace
