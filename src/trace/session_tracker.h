// Session reconstruction from the packet stream alone.
//
// Like the paper's analysis, sessions are inferred from packet timing: a
// client endpoint that goes quiet for longer than `idle_timeout` has left
// (Counter-Strike clients and servers disconnect "after not hearing from
// each other over a period of several seconds"). Produces the per-session
// bandwidth population behind Figure 11 and the session counts of Table I.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/packet.h"
#include "stats/histogram.h"
#include "trace/capture.h"

namespace gametrace::trace {

struct Session {
  net::Ipv4Address client_ip;
  std::uint16_t client_port = 0;
  double start = 0.0;
  double end = 0.0;
  std::uint64_t packets_in = 0;
  std::uint64_t packets_out = 0;
  std::uint64_t app_bytes_in = 0;
  std::uint64_t app_bytes_out = 0;

  [[nodiscard]] double duration() const noexcept { return end - start; }
  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_in + packets_out; }

  // Mean bandwidth over the session including wire overhead, bits/sec -
  // "the bandwidth measured at the server will be quite close to what is
  // sent across the last hop" (paper section III-B).
  [[nodiscard]] double mean_bandwidth_bps(
      std::uint32_t overhead = net::kWireOverheadBytes) const noexcept;
};

class SessionTracker final : public CaptureSink {
 public:
  explicit SessionTracker(double idle_timeout_seconds = 30.0);

  void OnPacket(const net::PacketRecord& record) override;

  // One virtual call per batch; repeated packets from the same endpoint
  // (the common case inside a tick burst) skip the hash lookup entirely.
  void OnBatch(std::span<const net::PacketRecord> batch) override;

  // Absorbs another tracker's sessions (closed and still-open). Exact when
  // the two trackers saw disjoint client endpoints - the fleet engine
  // guarantees this by namespacing each shard's flow identifiers (see
  // ShardNamespaceSink); an endpoint open on both sides is combined into
  // one session spanning both. Throws std::invalid_argument if the idle
  // timeouts differ.
  void Merge(SessionTracker&& other);

  // Closes all still-open sessions as of the last packet seen and returns
  // the full session list (sorted by start time). Call once, at the end.
  [[nodiscard]] std::vector<Session> Finish();

  [[nodiscard]] std::size_t open_sessions() const noexcept { return open_.size(); }
  [[nodiscard]] std::size_t closed_sessions() const noexcept { return closed_.size(); }

  // Number of distinct client IPs seen across all sessions so far.
  [[nodiscard]] std::uint64_t unique_clients() const noexcept { return unique_ips_.size(); }

  // Builds the Figure 11 histogram: mean session bandwidth, sessions longer
  // than `min_duration` only.
  [[nodiscard]] static stats::Histogram BandwidthHistogram(
      const std::vector<Session>& sessions, double min_duration = 30.0,
      double max_bps = 160000.0, std::size_t bins = 64);

 private:
  struct Key {
    std::uint32_t ip;
    std::uint16_t port;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      return std::hash<std::uint64_t>{}((std::uint64_t{k.ip} << 16) | k.port);
    }
  };

  void Close(const Key& key, Session&& session);
  void Ingest(const net::PacketRecord& record);

  double idle_timeout_;
  std::unordered_map<Key, Session, KeyHash> open_;
  std::vector<Session> closed_;
  std::unordered_map<std::uint32_t, std::uint32_t> unique_ips_;  // ip -> session count
  // Memoized last-touched open session (node pointers are stable across
  // rehash; reset whenever the element could have been erased).
  Key cached_key_{};
  Session* cached_session_ = nullptr;
};

}  // namespace gametrace::trace
