// Streaming trace summary: everything in the paper's Tables I-III that can
// be derived from the packet stream.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_set>

#include "net/packet.h"
#include "stats/running_stats.h"
#include "trace/capture.h"

namespace gametrace::trace {

// Accumulates totals, per-direction byte/packet counts, packet-size moments
// and connection-handshake counts in one pass, O(1) memory apart from the
// unique-client sets.
class TraceSummary final : public CaptureSink {
 public:
  explicit TraceSummary(std::uint32_t wire_overhead_bytes = net::kWireOverheadBytes);

  void OnPacket(const net::PacketRecord& record) override;

  // Accumulates the whole batch with register-resident counters; identical
  // result to the per-packet path (Welford moments stay sequential).
  void OnBatch(std::span<const net::PacketRecord> batch) override;

  void OnColumns(const net::PacketBatch& batch) override;

  // Columnar kernel (non-virtual: FusedChain calls it directly): the same
  // per-direction sweeps as OnBatch over raw u8/u16 columns. Per-direction
  // order - all the sequential Welford moments depend on - is preserved, so
  // results stay bit-identical.
  void AccumulateColumns(const net::PacketBatch& batch);

  // Combines another summary into this one, as if every packet fed to
  // `other` had been fed to *this. Exact: counters and moments add (Chan
  // parallel combine), unique-client sets union, the time span widens to
  // cover both. Shard reduction path of the fleet engine. Throws
  // std::invalid_argument if the wire-overhead settings differ.
  void Merge(const TraceSummary& other);

  // ---- Table II: network usage --------------------------------------
  [[nodiscard]] std::uint64_t total_packets() const noexcept { return packets_in_ + packets_out_; }
  [[nodiscard]] std::uint64_t packets_in() const noexcept { return packets_in_; }
  [[nodiscard]] std::uint64_t packets_out() const noexcept { return packets_out_; }
  [[nodiscard]] std::uint64_t wire_bytes_total() const noexcept;
  [[nodiscard]] std::uint64_t wire_bytes_in() const noexcept;
  [[nodiscard]] std::uint64_t wire_bytes_out() const noexcept;
  [[nodiscard]] double mean_packet_load() const noexcept;      // pkts/sec
  [[nodiscard]] double mean_packet_load_in() const noexcept;
  [[nodiscard]] double mean_packet_load_out() const noexcept;
  [[nodiscard]] double mean_bandwidth_bps() const noexcept;    // wire bits/sec
  [[nodiscard]] double mean_bandwidth_in_bps() const noexcept;
  [[nodiscard]] double mean_bandwidth_out_bps() const noexcept;

  // ---- Table III: application payload --------------------------------
  [[nodiscard]] std::uint64_t app_bytes_total() const noexcept { return app_bytes_in_ + app_bytes_out_; }
  [[nodiscard]] std::uint64_t app_bytes_in() const noexcept { return app_bytes_in_; }
  [[nodiscard]] std::uint64_t app_bytes_out() const noexcept { return app_bytes_out_; }
  [[nodiscard]] double mean_packet_size() const noexcept;
  [[nodiscard]] double mean_packet_size_in() const noexcept;
  [[nodiscard]] double mean_packet_size_out() const noexcept;
  [[nodiscard]] const stats::RunningStats& size_stats_in() const noexcept { return size_in_; }
  [[nodiscard]] const stats::RunningStats& size_stats_out() const noexcept { return size_out_; }

  // ---- Table I: connection counts (from handshake packets) -----------
  [[nodiscard]] std::uint64_t attempted_connections() const noexcept { return attempts_; }
  [[nodiscard]] std::uint64_t established_connections() const noexcept { return established_; }
  [[nodiscard]] std::uint64_t refused_connections() const noexcept { return refused_; }
  [[nodiscard]] std::uint64_t unique_clients_attempting() const noexcept {
    return attempting_clients_.size();
  }
  [[nodiscard]] std::uint64_t unique_clients_establishing() const noexcept {
    return establishing_clients_.size();
  }

  // ---- Timing ---------------------------------------------------------
  [[nodiscard]] double first_packet_time() const noexcept { return first_time_; }
  [[nodiscard]] double last_packet_time() const noexcept { return last_time_; }
  [[nodiscard]] double duration() const noexcept;
  // Denominator for the mean rates; defaults to the observed packet span but
  // can be pinned to the configured capture window (idle head/tail counted).
  void set_duration_override(double seconds) noexcept { duration_override_ = seconds; }

 private:
  std::uint32_t overhead_;
  std::uint64_t packets_in_ = 0;
  std::uint64_t packets_out_ = 0;
  std::uint64_t app_bytes_in_ = 0;
  std::uint64_t app_bytes_out_ = 0;
  stats::RunningStats size_in_;
  stats::RunningStats size_out_;
  std::uint64_t attempts_ = 0;
  std::uint64_t established_ = 0;
  std::uint64_t refused_ = 0;
  std::unordered_set<std::uint32_t> attempting_clients_;
  std::unordered_set<std::uint32_t> establishing_clients_;
  double first_time_ = -1.0;
  double last_time_ = 0.0;
  double duration_override_ = -1.0;
};

}  // namespace gametrace::trace
