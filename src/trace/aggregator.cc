#include "trace/aggregator.h"

#include <stdexcept>

#include "core/check.h"
#include "obs/prof.h"

namespace gametrace::trace {

LoadAggregator::LoadAggregator(double interval, double start_time,
                               std::uint32_t wire_overhead_bytes)
    : overhead_(wire_overhead_bytes),
      pkts_in_(start_time, interval),
      pkts_out_(start_time, interval),
      bytes_in_(start_time, interval),
      bytes_out_(start_time, interval) {}

void LoadAggregator::OnPacket(const net::PacketRecord& record) {
  const double wire = static_cast<double>(record.wire_bytes(overhead_));
  if (record.direction == net::Direction::kClientToServer) {
    pkts_in_.Add(record.timestamp, 1.0);
    bytes_in_.Add(record.timestamp, wire);
  } else {
    pkts_out_.Add(record.timestamp, 1.0);
    bytes_out_.Add(record.timestamp, wire);
  }
}

void LoadAggregator::OnBatch(std::span<const net::PacketRecord> batch) {
  GT_PROF_SCOPE("trace.load_agg.on_batch");
  // A tick burst is a long run of same-direction packets whose timestamps
  // land in the same bin; aggregate each run and pay two series updates per
  // run instead of two per packet. Bin membership is decided by the same
  // BinIndex the scalar path uses, and counts/wire bytes are integral, so
  // the run sums are bit-identical to the per-packet loop.
  const double start = pkts_in_.start_time();
  std::size_t i = 0;
  const std::size_t n = batch.size();
  while (i < n) {
    const net::PacketRecord& first = batch[i];
    if (first.timestamp < start) {  // before-start samples only bump dropped_
      OnPacket(first);
      ++i;
      continue;
    }
    const net::Direction dir = first.direction;
    const std::size_t bin = pkts_in_.BinIndex(first.timestamp);
    double count = 0.0;
    double wire = 0.0;
    do {
      const net::PacketRecord& r = batch[i];
      if (r.direction != dir || r.timestamp < start || pkts_in_.BinIndex(r.timestamp) != bin) {
        break;
      }
      count += 1.0;
      wire += static_cast<double>(r.wire_bytes(overhead_));
      ++i;
    } while (i < n);
    if (dir == net::Direction::kClientToServer) {
      pkts_in_.AddAtBin(bin, count);
      bytes_in_.AddAtBin(bin, wire);
    } else {
      pkts_out_.AddAtBin(bin, count);
      bytes_out_.AddAtBin(bin, wire);
    }
  }
}

void LoadAggregator::OnColumns(const net::PacketBatch& batch) {
  GT_PROF_SCOPE("trace.load_agg.on_columns");
  AccumulateColumns(batch);
}

void LoadAggregator::AccumulateColumns(const net::PacketBatch& batch) {
  // Same run aggregation as OnBatch, but run detection scans the dense
  // timestamp and direction columns (16 hot bytes per packet instead of a
  // 24-byte record) and the wire-byte sum reads the u16 size column.
  const double start = pkts_in_.start_time();
  const double* ts = batch.timestamps;
  const std::uint8_t* dirs = batch.directions;
  const std::uint16_t* sizes = batch.app_bytes;
  constexpr auto kIn = static_cast<std::uint8_t>(net::Direction::kClientToServer);
  std::size_t i = 0;
  const std::size_t n = batch.count;
  while (i < n) {
    if (ts[i] < start) {  // before-start samples only bump dropped_
      OnPacket(batch.RecordAt(i));
      ++i;
      continue;
    }
    const std::uint8_t dir = dirs[i];
    const std::size_t bin = pkts_in_.BinIndex(ts[i]);
    double count = 1.0;
    double wire = static_cast<double>(net::WireBytes(sizes[i], overhead_));
    ++i;
    // Extend the run while direction and bin hold: exactly one BinIndex
    // division per record (the scalar path pays two Adds, each dividing).
    while (i < n && dirs[i] == dir && ts[i] >= start && pkts_in_.BinIndex(ts[i]) == bin) {
      count += 1.0;
      wire += static_cast<double>(net::WireBytes(sizes[i], overhead_));
      ++i;
    }
    if (dir == kIn) {
      pkts_in_.AddAtBin(bin, count);
      bytes_in_.AddAtBin(bin, wire);
    } else {
      pkts_out_.AddAtBin(bin, count);
      bytes_out_.AddAtBin(bin, wire);
    }
  }
}

void LoadAggregator::ExtendTo(double t_end) {
  pkts_in_.ExtendTo(t_end);
  pkts_out_.ExtendTo(t_end);
  bytes_in_.ExtendTo(t_end);
  bytes_out_.ExtendTo(t_end);
}

void LoadAggregator::Merge(const LoadAggregator& other) {
  GT_CHECK_EQ(other.overhead_, overhead_) << "LoadAggregator::Merge: wire-overhead mismatch";
  pkts_in_.Merge(other.pkts_in_);
  pkts_out_.Merge(other.pkts_out_);
  bytes_in_.Merge(other.bytes_in_);
  bytes_out_.Merge(other.bytes_out_);
}

stats::TimeSeries LoadAggregator::packets_total() const { return pkts_in_.Plus(pkts_out_); }

stats::TimeSeries LoadAggregator::wire_bytes_total() const { return bytes_in_.Plus(bytes_out_); }

stats::TimeSeries LoadAggregator::packet_rate_total() const { return packets_total().Rate(); }

stats::TimeSeries LoadAggregator::packet_rate_in() const { return pkts_in_.Rate(); }

stats::TimeSeries LoadAggregator::packet_rate_out() const { return pkts_out_.Rate(); }

stats::TimeSeries LoadAggregator::bandwidth_total_bps() const {
  return wire_bytes_total().Rate().Scaled(8.0);
}

stats::TimeSeries LoadAggregator::bandwidth_in_bps() const { return bytes_in_.Rate().Scaled(8.0); }

stats::TimeSeries LoadAggregator::bandwidth_out_bps() const {
  return bytes_out_.Rate().Scaled(8.0);
}

}  // namespace gametrace::trace
