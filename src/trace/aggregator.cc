#include "trace/aggregator.h"

#include <stdexcept>

namespace gametrace::trace {

LoadAggregator::LoadAggregator(double interval, double start_time,
                               std::uint32_t wire_overhead_bytes)
    : overhead_(wire_overhead_bytes),
      pkts_in_(start_time, interval),
      pkts_out_(start_time, interval),
      bytes_in_(start_time, interval),
      bytes_out_(start_time, interval) {}

void LoadAggregator::OnPacket(const net::PacketRecord& record) {
  const double wire = static_cast<double>(record.wire_bytes(overhead_));
  if (record.direction == net::Direction::kClientToServer) {
    pkts_in_.Add(record.timestamp, 1.0);
    bytes_in_.Add(record.timestamp, wire);
  } else {
    pkts_out_.Add(record.timestamp, 1.0);
    bytes_out_.Add(record.timestamp, wire);
  }
}

void LoadAggregator::ExtendTo(double t_end) {
  pkts_in_.ExtendTo(t_end);
  pkts_out_.ExtendTo(t_end);
  bytes_in_.ExtendTo(t_end);
  bytes_out_.ExtendTo(t_end);
}

void LoadAggregator::Merge(const LoadAggregator& other) {
  if (other.overhead_ != overhead_) {
    throw std::invalid_argument("LoadAggregator::Merge: wire-overhead mismatch");
  }
  pkts_in_.Merge(other.pkts_in_);
  pkts_out_.Merge(other.pkts_out_);
  bytes_in_.Merge(other.bytes_in_);
  bytes_out_.Merge(other.bytes_out_);
}

stats::TimeSeries LoadAggregator::packets_total() const { return pkts_in_.Plus(pkts_out_); }

stats::TimeSeries LoadAggregator::wire_bytes_total() const { return bytes_in_.Plus(bytes_out_); }

stats::TimeSeries LoadAggregator::packet_rate_total() const { return packets_total().Rate(); }

stats::TimeSeries LoadAggregator::packet_rate_in() const { return pkts_in_.Rate(); }

stats::TimeSeries LoadAggregator::packet_rate_out() const { return pkts_out_.Rate(); }

stats::TimeSeries LoadAggregator::bandwidth_total_bps() const {
  return wire_bytes_total().Rate().Scaled(8.0);
}

stats::TimeSeries LoadAggregator::bandwidth_in_bps() const { return bytes_in_.Rate().Scaled(8.0); }

stats::TimeSeries LoadAggregator::bandwidth_out_bps() const {
  return bytes_out_.Rate().Scaled(8.0);
}

}  // namespace gametrace::trace
