// Capture sinks: where simulated (or replayed) packets go.
//
// Everything downstream of the workload generator - summaries, aggregators,
// trace files, the NAT device - consumes packets through CaptureSink, so a
// single simulation run can feed any combination of analyses via TeeSink
// without materialising 500 M records in memory.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/packet.h"

namespace gametrace::trace {

class CaptureSink {
 public:
  virtual ~CaptureSink() = default;
  virtual void OnPacket(const net::PacketRecord& record) = 0;
};

// Forwards every packet to each attached sink, in attachment order.
class TeeSink final : public CaptureSink {
 public:
  // Attached sinks are borrowed; they must outlive the tee.
  void Attach(CaptureSink& sink) { sinks_.push_back(&sink); }

  void OnPacket(const net::PacketRecord& record) override {
    for (CaptureSink* sink : sinks_) sink->OnPacket(record);
  }

  [[nodiscard]] std::size_t sink_count() const noexcept { return sinks_.size(); }

 private:
  std::vector<CaptureSink*> sinks_;
};

// Counts packets and bytes by direction; the cheapest possible sink.
class CountingSink final : public CaptureSink {
 public:
  void OnPacket(const net::PacketRecord& record) override {
    ++packets_;
    app_bytes_ += record.app_bytes;
    if (record.direction == net::Direction::kClientToServer) {
      ++packets_in_;
    } else {
      ++packets_out_;
    }
  }

  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_; }
  [[nodiscard]] std::uint64_t packets_in() const noexcept { return packets_in_; }
  [[nodiscard]] std::uint64_t packets_out() const noexcept { return packets_out_; }
  [[nodiscard]] std::uint64_t app_bytes() const noexcept { return app_bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t packets_in_ = 0;
  std::uint64_t packets_out_ = 0;
  std::uint64_t app_bytes_ = 0;
};

// Stores every record; only for tests and short runs.
class VectorSink final : public CaptureSink {
 public:
  void OnPacket(const net::PacketRecord& record) override { records_.push_back(record); }

  [[nodiscard]] const std::vector<net::PacketRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::vector<net::PacketRecord> TakeRecords() noexcept {
    return std::move(records_);
  }

 private:
  std::vector<net::PacketRecord> records_;
};

// Rewrites each record's client address into a per-shard namespace before
// forwarding: identity IPs live in 10/8 (game::IdentityIp), so bumping the
// top octet by the shard id moves shard k's clients into (10+k)/8. Flows
// from distinct shards then can never collide in any downstream keyed
// structure (session tracker, flow tables), which is what makes per-shard
// analyses exactly mergeable. Supports up to 245 shards.
class ShardNamespaceSink final : public CaptureSink {
 public:
  ShardNamespaceSink(std::uint32_t shard_id, CaptureSink& downstream)
      : shift_(shard_id << 24), downstream_(&downstream) {}

  void OnPacket(const net::PacketRecord& record) override {
    net::PacketRecord shifted = record;
    shifted.client_ip = net::Ipv4Address(record.client_ip.value() + shift_);
    downstream_->OnPacket(shifted);
  }

 private:
  std::uint32_t shift_;
  CaptureSink* downstream_;
};

// Adapts a callable into a sink.
class CallbackSink final : public CaptureSink {
 public:
  using Callback = std::function<void(const net::PacketRecord&)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}

  void OnPacket(const net::PacketRecord& record) override { cb_(record); }

 private:
  Callback cb_;
};

// Replays a stored record vector into a sink (records must be time-ordered
// if the sink cares about ordering; all library sinks do).
void Replay(const std::vector<net::PacketRecord>& records, CaptureSink& sink);

}  // namespace gametrace::trace
