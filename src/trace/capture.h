// Capture sinks: where simulated (or replayed) packets go.
//
// Everything downstream of the workload generator - summaries, aggregators,
// trace files, the NAT device - consumes packets through CaptureSink, so a
// single simulation run can feed any combination of analyses via TeeSink
// without materialising 500 M records in memory.
//
// Batched delivery: producers that naturally emit runs of packets (the
// game server's per-tick broadcast burst, trace-file readers) hand them
// over through OnBatch(), one virtual call per run instead of one per
// packet. The contract: a batch is a contiguous slice of the stream in
// emission order (per-flow sequence order preserved) and never spans a
// server tick. The default OnBatch loops over OnPacket, so every sink
// observes exactly the same record sequence whether it is fed packet by
// packet or in batches - reports are bit-identical either way.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/check.h"
#include "net/packet.h"
#include "obs/prof.h"

namespace gametrace::trace {

namespace internal {
// Batch-contract probe: a batch is a contiguous slice of the stream in
// emission order with *per-flow* ordering preserved - globally the tick
// batch interleaves independent client clocks, so only timestamps within
// one (client, direction) flow must be non-decreasing. Allocates, so only
// ever used behind GT_DCHECK.
inline bool BatchPreservesPerFlowOrder(std::span<const net::PacketRecord> batch) {
  std::unordered_map<std::uint64_t, double> last_time;
  for (const net::PacketRecord& r : batch) {
    const std::uint64_t flow = (std::uint64_t{r.client_ip.value()} << 17) |
                               (std::uint64_t{r.client_port} << 1) |
                               std::uint64_t{r.direction == net::Direction::kClientToServer};
    auto [it, inserted] = last_time.try_emplace(flow, r.timestamp);
    if (!inserted) {
      if (r.timestamp < it->second) return false;
      it->second = r.timestamp;
    }
  }
  return true;
}
}  // namespace internal

class CaptureSink {
 public:
  virtual ~CaptureSink() = default;
  virtual void OnPacket(const net::PacketRecord& record) = 0;

  // Receives a contiguous run of records (see the batch contract above).
  // Overrides must be equivalent to the default per-packet loop.
  virtual void OnBatch(std::span<const net::PacketRecord> batch) {
    GT_DCHECK(internal::BatchPreservesPerFlowOrder(batch))
        << "CaptureSink::OnBatch: batch violates per-flow emission-order contract";
    for (const net::PacketRecord& record : batch) OnPacket(record);
  }
};

// Forwards every packet to each attached sink, in attachment order.
class TeeSink final : public CaptureSink {
 public:
  // Attached sinks are borrowed; they must outlive the tee.
  void Attach(CaptureSink& sink) { sinks_.push_back(&sink); }

  void OnPacket(const net::PacketRecord& record) override {
    for (CaptureSink* sink : sinks_) sink->OnPacket(record);
  }

  void OnBatch(std::span<const net::PacketRecord> batch) override {
    GT_PROF_SCOPE("trace.tee.on_batch");
    for (CaptureSink* sink : sinks_) sink->OnBatch(batch);
  }

  [[nodiscard]] std::size_t sink_count() const noexcept { return sinks_.size(); }

 private:
  std::vector<CaptureSink*> sinks_;
};

// Counts packets and bytes by direction; the cheapest possible sink.
class CountingSink final : public CaptureSink {
 public:
  void OnPacket(const net::PacketRecord& record) override {
    ++packets_;
    app_bytes_ += record.app_bytes;
    if (record.direction == net::Direction::kClientToServer) {
      ++packets_in_;
    } else {
      ++packets_out_;
    }
  }

  // Two-way unrolled with independent accumulators: the 24-byte record
  // stride defeats auto-vectorization, and a single accumulator chain
  // serialises on the add latency. Both sums are integral, so regrouping
  // them is exact.
  void OnBatch(std::span<const net::PacketRecord> batch) override {
    GT_PROF_SCOPE("trace.counting.on_batch");
    const net::PacketRecord* r = batch.data();
    const std::size_t n = batch.size();
    std::uint64_t in0 = 0;
    std::uint64_t in1 = 0;
    std::uint64_t bytes0 = 0;
    std::uint64_t bytes1 = 0;
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
      bytes0 += r[k].app_bytes;
      in0 += r[k].direction == net::Direction::kClientToServer ? 1 : 0;
      bytes1 += r[k + 1].app_bytes;
      in1 += r[k + 1].direction == net::Direction::kClientToServer ? 1 : 0;
    }
    for (; k < n; ++k) {
      bytes0 += r[k].app_bytes;
      in0 += r[k].direction == net::Direction::kClientToServer ? 1 : 0;
    }
    const std::uint64_t in = in0 + in1;
    packets_ += n;
    packets_in_ += in;
    packets_out_ += n - in;
    app_bytes_ += bytes0 + bytes1;
  }

  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_; }
  [[nodiscard]] std::uint64_t packets_in() const noexcept { return packets_in_; }
  [[nodiscard]] std::uint64_t packets_out() const noexcept { return packets_out_; }
  [[nodiscard]] std::uint64_t app_bytes() const noexcept { return app_bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t packets_in_ = 0;
  std::uint64_t packets_out_ = 0;
  std::uint64_t app_bytes_ = 0;
};

// Stores every record; only for tests and short runs.
class VectorSink final : public CaptureSink {
 public:
  void OnPacket(const net::PacketRecord& record) override { records_.push_back(record); }

  void OnBatch(std::span<const net::PacketRecord> batch) override {
    GT_PROF_SCOPE("trace.vector.on_batch");
    records_.insert(records_.end(), batch.begin(), batch.end());
  }

  [[nodiscard]] const std::vector<net::PacketRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::vector<net::PacketRecord> TakeRecords() noexcept {
    return std::move(records_);
  }

 private:
  std::vector<net::PacketRecord> records_;
};

// Rewrites each record's client address into a per-shard namespace before
// forwarding: identity IPs live in 10/8 (game::IdentityIp), so bumping the
// top octet by the shard id moves shard k's clients into (10+k)/8. Flows
// from distinct shards then can never collide in any downstream keyed
// structure (session tracker, flow tables), which is what makes per-shard
// analyses exactly mergeable. Supports up to 245 shards (10 + 245 = 255
// exhausts the top octet); larger ids are rejected at construction.
class ShardNamespaceSink final : public CaptureSink {
 public:
  static constexpr std::uint32_t kMaxShardId = 245;

  ShardNamespaceSink(std::uint32_t shard_id, CaptureSink& downstream)
      : shift_(shard_id << 24), downstream_(&downstream) {
    GT_CHECK_LE(shard_id, kMaxShardId)
        << "ShardNamespaceSink: shard_id exceeds the 245-shard IP namespace";
  }

  void OnPacket(const net::PacketRecord& record) override {
    net::PacketRecord shifted = record;
    shifted.client_ip = net::Ipv4Address(record.client_ip.value() + shift_);
    downstream_->OnPacket(shifted);
  }

  // Rewrites the whole batch in a reused scratch buffer and forwards it as
  // one batch: no per-record virtual call and, after warm-up, no
  // allocation. Bulk copy first, then a shift pass over the single buffer -
  // a fused copy+shift loop defeats vectorization (the compiler must assume
  // the source and scratch alias) and benches ~4x slower.
  void OnBatch(std::span<const net::PacketRecord> batch) override {
    GT_PROF_SCOPE("trace.shard_namespace.on_batch");
    GT_DCHECK(internal::BatchPreservesPerFlowOrder(batch))
        << "ShardNamespaceSink::OnBatch: batch violates per-flow emission-order contract";
    scratch_.assign(batch.begin(), batch.end());
    for (net::PacketRecord& record : scratch_) {
      record.client_ip = net::Ipv4Address(record.client_ip.value() + shift_);
    }
    downstream_->OnBatch(scratch_);
  }

 private:
  std::uint32_t shift_;
  CaptureSink* downstream_;
  std::vector<net::PacketRecord> scratch_;
};

// Adapts a callable into a sink.
class CallbackSink final : public CaptureSink {
 public:
  using Callback = std::function<void(const net::PacketRecord&)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}

  void OnPacket(const net::PacketRecord& record) override { cb_(record); }

 private:
  Callback cb_;
};

// Replays a stored record vector into a sink (records must be time-ordered
// if the sink cares about ordering; all library sinks do). Delivered as one
// batch; equivalent to the per-packet loop for every conforming sink.
void Replay(const std::vector<net::PacketRecord>& records, CaptureSink& sink);

}  // namespace gametrace::trace
