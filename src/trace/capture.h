// Capture sinks: where simulated (or replayed) packets go.
//
// Everything downstream of the workload generator - summaries, aggregators,
// trace files, the NAT device - consumes packets through CaptureSink, so a
// single simulation run can feed any combination of analyses via TeeSink
// without materialising 500 M records in memory.
//
// Delivery tiers, cheapest first:
//  * OnColumns() - columnar batches (net::PacketBatch): one contiguous
//    array per field, built once per tick by the producer. Sinks with a
//    columnar kernel consume raw columns (auto-vectorisable loops, no
//    24-byte record stride); the default bridges to OnBatch through a
//    reusable materialisation scratch, so every sink stays correct.
//  * OnBatch() - a contiguous AoS slice, one virtual call per run.
//  * OnPacket() - the scalar path, one virtual call per packet.
// The contract for both batch forms: a batch is a contiguous slice of the
// stream in emission order (per-flow sequence order preserved) and never
// spans a server tick. Every tier observes exactly the same record
// sequence - reports are bit-identical whichever entry point feeds a sink.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/check.h"
#include "net/packet.h"
#include "net/packet_batch.h"
#include "obs/prof.h"

namespace gametrace::trace {

namespace internal {

// Batch-contract probe: a batch is a contiguous slice of the stream in
// emission order with *per-flow* ordering preserved - globally the tick
// batch interleaves independent client clocks, so only timestamps within
// one (client, direction) flow must be non-decreasing.
//
// Reusable flat scratch (open addressing, epoch-tagged slots) so the probe
// allocates only up to the high-water batch size per thread: DCHECK builds
// stay usable at paper-week scale instead of building a fresh unordered_map
// per batch. Only ever used behind GT_DCHECK.
class FlowOrderScratch {
 public:
  bool CheckBatch(std::span<const net::PacketRecord> batch) {
    BeginBatch(batch.size());
    for (const net::PacketRecord& r : batch) {
      if (!Observe(FlowKeyOf(r.client_ip.value(), r.client_port,
                             r.direction == net::Direction::kClientToServer),
                   r.timestamp)) {
        return false;
      }
    }
    return true;
  }

  bool CheckColumns(const net::PacketBatch& batch) {
    BeginBatch(batch.count);
    for (std::size_t i = 0; i < batch.count; ++i) {
      if (!Observe(FlowKeyOf(batch.client_ips[i], batch.client_ports[i],
                             batch.directions[i] ==
                                 static_cast<std::uint8_t>(net::Direction::kClientToServer)),
                   batch.timestamps[i])) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Slot {
    std::uint64_t flow = 0;
    double last = 0.0;
    std::uint32_t epoch = 0;
  };

  static std::uint64_t FlowKeyOf(std::uint32_t ip, std::uint16_t port, bool inbound) noexcept {
    return (std::uint64_t{ip} << 17) | (std::uint64_t{port} << 1) | std::uint64_t{inbound};
  }

  void BeginBatch(std::size_t n) {
    std::size_t want = 16;
    while (want < 2 * n) want *= 2;  // load factor <= 0.5
    if (slots_.size() < want) {
      slots_.assign(want, Slot{});
      epoch_ = 0;
    }
    if (++epoch_ == 0) {  // epoch counter wrapped: invalidate stale tags
      for (Slot& s : slots_) s.epoch = 0;
      epoch_ = 1;
    }
  }

  bool Observe(std::uint64_t flow, double t) noexcept {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = static_cast<std::size_t>(flow * 0x9E3779B97F4A7C15ULL) & mask;
    for (;;) {
      Slot& slot = slots_[i];
      if (slot.epoch != epoch_) {  // free this batch: claim it
        slot.flow = flow;
        slot.last = t;
        slot.epoch = epoch_;
        return true;
      }
      if (slot.flow == flow) {
        if (t < slot.last) return false;
        slot.last = t;
        return true;
      }
      i = (i + 1) & mask;
    }
  }

  std::vector<Slot> slots_;
  std::uint32_t epoch_ = 0;
};

inline FlowOrderScratch& FlowOrderProbe() {
  thread_local FlowOrderScratch scratch;
  return scratch;
}

inline bool BatchPreservesPerFlowOrder(std::span<const net::PacketRecord> batch) {
  return FlowOrderProbe().CheckBatch(batch);
}

inline bool ColumnsPreservePerFlowOrder(const net::PacketBatch& batch) {
  return FlowOrderProbe().CheckColumns(batch);
}

}  // namespace internal

class CaptureSink {
 public:
  virtual ~CaptureSink() = default;
  virtual void OnPacket(const net::PacketRecord& record) = 0;

  // Receives a contiguous run of records (see the batch contract above).
  // Overrides must be equivalent to the default per-packet loop.
  virtual void OnBatch(std::span<const net::PacketRecord> batch) {
    GT_DCHECK(internal::BatchPreservesPerFlowOrder(batch))
        << "CaptureSink::OnBatch: batch violates per-flow emission-order contract";
    for (const net::PacketRecord& record : batch) OnPacket(record);
  }

  // Receives the same run as a columnar view. Overrides must be equivalent
  // to the default bridge, which materialises the records into a reusable
  // scratch and forwards them down the OnBatch/OnPacket path.
  virtual void OnColumns(const net::PacketBatch& batch) {
    GT_DCHECK(internal::ColumnsPreservePerFlowOrder(batch))
        << "CaptureSink::OnColumns: batch violates per-flow emission-order contract";
    bridge_scratch_.clear();
    batch.MaterializeInto(bridge_scratch_);
    OnBatch(bridge_scratch_);
  }

 private:
  // Owned by the base so the AoS bridge is allocation-free after warm-up
  // for every sink that has no columnar kernel of its own.
  std::vector<net::PacketRecord> bridge_scratch_;
};

// Forwards every packet to each attached sink, in attachment order.
class TeeSink final : public CaptureSink {
 public:
  // Attached sinks are borrowed; they must outlive the tee.
  void Attach(CaptureSink& sink) { sinks_.push_back(&sink); }

  void OnPacket(const net::PacketRecord& record) override {
    for (CaptureSink* sink : sinks_) sink->OnPacket(record);
  }

  void OnBatch(std::span<const net::PacketRecord> batch) override {
    GT_PROF_SCOPE("trace.tee.on_batch");
    for (CaptureSink* sink : sinks_) sink->OnBatch(batch);
  }

  void OnColumns(const net::PacketBatch& batch) override {
    GT_PROF_SCOPE("trace.tee.on_columns");
    for (CaptureSink* sink : sinks_) sink->OnColumns(batch);
  }

  [[nodiscard]] std::size_t sink_count() const noexcept { return sinks_.size(); }
  [[nodiscard]] const std::vector<CaptureSink*>& sinks() const noexcept { return sinks_; }

 private:
  std::vector<CaptureSink*> sinks_;
};

// Counts packets and bytes by direction; the cheapest possible sink.
class CountingSink final : public CaptureSink {
 public:
  void OnPacket(const net::PacketRecord& record) override {
    ++packets_;
    app_bytes_ += record.app_bytes;
    if (record.direction == net::Direction::kClientToServer) {
      ++packets_in_;
    } else {
      ++packets_out_;
    }
  }

  // Two-way unrolled with independent accumulators: the 24-byte record
  // stride defeats auto-vectorization, and a single accumulator chain
  // serialises on the add latency. Both sums are integral, so regrouping
  // them is exact.
  void OnBatch(std::span<const net::PacketRecord> batch) override {
    GT_PROF_SCOPE("trace.counting.on_batch");
    const net::PacketRecord* r = batch.data();
    const std::size_t n = batch.size();
    std::uint64_t in0 = 0;
    std::uint64_t in1 = 0;
    std::uint64_t bytes0 = 0;
    std::uint64_t bytes1 = 0;
    std::size_t k = 0;
    for (; k + 2 <= n; k += 2) {
      bytes0 += r[k].app_bytes;
      in0 += r[k].direction == net::Direction::kClientToServer ? 1 : 0;
      bytes1 += r[k + 1].app_bytes;
      in1 += r[k + 1].direction == net::Direction::kClientToServer ? 1 : 0;
    }
    for (; k < n; ++k) {
      bytes0 += r[k].app_bytes;
      in0 += r[k].direction == net::Direction::kClientToServer ? 1 : 0;
    }
    const std::uint64_t in = in0 + in1;
    packets_ += n;
    packets_in_ += in;
    packets_out_ += n - in;
    app_bytes_ += bytes0 + bytes1;
  }

  void OnColumns(const net::PacketBatch& batch) override {
    GT_PROF_SCOPE("trace.counting.on_columns");
    AccumulateColumns(batch);
  }

  // Columnar kernel (non-virtual: FusedChain calls it directly). Dense u16
  // size and u8 direction columns auto-vectorise; integral sums regroup
  // exactly.
  void AccumulateColumns(const net::PacketBatch& batch) noexcept {
    const std::uint16_t* bytes = batch.app_bytes;
    const std::uint8_t* dirs = batch.directions;
    const std::size_t n = batch.count;
    std::uint64_t in = 0;
    std::uint64_t sum = 0;
    constexpr auto kIn = static_cast<std::uint8_t>(net::Direction::kClientToServer);
    for (std::size_t i = 0; i < n; ++i) {
      sum += bytes[i];
      in += dirs[i] == kIn ? 1 : 0;
    }
    packets_ += n;
    packets_in_ += in;
    packets_out_ += n - in;
    app_bytes_ += sum;
  }

  [[nodiscard]] std::uint64_t packets() const noexcept { return packets_; }
  [[nodiscard]] std::uint64_t packets_in() const noexcept { return packets_in_; }
  [[nodiscard]] std::uint64_t packets_out() const noexcept { return packets_out_; }
  [[nodiscard]] std::uint64_t app_bytes() const noexcept { return app_bytes_; }

 private:
  std::uint64_t packets_ = 0;
  std::uint64_t packets_in_ = 0;
  std::uint64_t packets_out_ = 0;
  std::uint64_t app_bytes_ = 0;
};

// Stores every record; only for tests and short runs.
class VectorSink final : public CaptureSink {
 public:
  void OnPacket(const net::PacketRecord& record) override { records_.push_back(record); }

  void OnBatch(std::span<const net::PacketRecord> batch) override {
    GT_PROF_SCOPE("trace.vector.on_batch");
    records_.insert(records_.end(), batch.begin(), batch.end());
  }

  void OnColumns(const net::PacketBatch& batch) override {
    GT_PROF_SCOPE("trace.vector.on_columns");
    batch.MaterializeInto(records_);
  }

  [[nodiscard]] const std::vector<net::PacketRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] std::vector<net::PacketRecord> TakeRecords() noexcept {
    return std::move(records_);
  }

 private:
  std::vector<net::PacketRecord> records_;
};

// Rewrites each record's client address into a per-shard namespace before
// forwarding: identity IPs live in 10/8 (game::IdentityIp), so bumping the
// top octet by the shard id moves shard k's clients into (10+k)/8. Flows
// from distinct shards then can never collide in any downstream keyed
// structure (session tracker, flow tables), which is what makes per-shard
// analyses exactly mergeable. The shard-id constructor supports up to 245
// shards (10 + 245 = 255 exhausts the top octet); fleets beyond that pass
// an ExplicitShift computed by game::ShardIpShift, which packs additional
// servers into the host bits the identity pool leaves unused (thousands
// of disjoint namespaces at the default population).
class ShardNamespaceSink final : public CaptureSink {
 public:
  static constexpr std::uint32_t kMaxShardId = 245;

  // A pre-computed additive IP shift. The caller vouches for namespace
  // disjointness (game::ShardIpShift GT_CHECKs it from the population).
  struct ExplicitShift {
    std::uint32_t value = 0;
  };

  ShardNamespaceSink(std::uint32_t shard_id, CaptureSink& downstream)
      : shift_(shard_id << 24), downstream_(&downstream) {
    GT_CHECK_LE(shard_id, kMaxShardId)
        << "ShardNamespaceSink: shard_id exceeds the 245-shard IP namespace";
  }

  ShardNamespaceSink(ExplicitShift shift, CaptureSink& downstream)
      : shift_(shift.value), downstream_(&downstream) {}

  void OnPacket(const net::PacketRecord& record) override {
    net::PacketRecord shifted = record;
    shifted.client_ip = net::Ipv4Address(record.client_ip.value() + shift_);
    downstream_->OnPacket(shifted);
  }

  // An interior rewrite must materialise a private copy of the batch
  // anyway, so build that copy *columnar*: the namespace shift then touches
  // one dense 4-byte lane instead of a field inside every 24-byte record,
  // and the batch continues downstream on the columnar tier where every
  // library sink has its fastest kernel. Equivalent per the delivery-tier
  // contract (reports are bit-identical whichever tier feeds a sink).
  void OnBatch(std::span<const net::PacketRecord> batch) override {
    GT_PROF_SCOPE("trace.shard_namespace.on_batch");
    GT_DCHECK(internal::BatchPreservesPerFlowOrder(batch))
        << "ShardNamespaceSink::OnBatch: batch violates per-flow emission-order contract";
    column_scratch_.Clear();
    column_scratch_.AppendWithIpShift(batch, shift_);
    downstream_->OnColumns(column_scratch_.View());
  }

  // The columnar payoff: the rewrite touches exactly one column. Copy+shift
  // the 4-byte IP lane into a reused scratch and re-point the view; the
  // other six columns are forwarded untouched.
  void OnColumns(const net::PacketBatch& batch) override {
    GT_PROF_SCOPE("trace.shard_namespace.on_columns");
    GT_DCHECK(internal::ColumnsPreservePerFlowOrder(batch))
        << "ShardNamespaceSink::OnColumns: batch violates per-flow emission-order contract";
    ip_scratch_.resize(batch.count);
    const std::uint32_t* src = batch.client_ips;
    std::uint32_t* dst = ip_scratch_.data();
    const std::uint32_t shift = shift_;
    for (std::size_t i = 0; i < batch.count; ++i) dst[i] = src[i] + shift;
    downstream_->OnColumns(batch.WithClientIps(dst));
  }

  [[nodiscard]] std::uint32_t shard_shift() const noexcept { return shift_; }
  [[nodiscard]] CaptureSink& downstream() const noexcept { return *downstream_; }

 private:
  std::uint32_t shift_;
  CaptureSink* downstream_;
  net::ColumnarBatch column_scratch_;
  std::vector<std::uint32_t> ip_scratch_;
};

// Adapts a callable into a sink.
class CallbackSink final : public CaptureSink {
 public:
  using Callback = std::function<void(const net::PacketRecord&)>;
  explicit CallbackSink(Callback cb) : cb_(std::move(cb)) {}

  void OnPacket(const net::PacketRecord& record) override { cb_(record); }

 private:
  Callback cb_;
};

// Replays a stored record vector into a sink (records must be time-ordered
// if the sink cares about ordering; all library sinks do). Columnised in
// bounded chunks and delivered via OnColumns; equivalent to the per-packet
// loop for every conforming sink.
void Replay(const std::vector<net::PacketRecord>& records, CaptureSink& sink);

}  // namespace gametrace::trace
