#include "trace/filter.h"

#include <stdexcept>
#include <utility>

#include "core/check.h"
#include "obs/prof.h"

namespace gametrace::trace {

FilterSink::FilterSink(Predicate predicate, CaptureSink& next)
    : predicate_(std::move(predicate)), next_(&next) {
  GT_CHECK(predicate_) << "FilterSink: empty predicate";
}

void FilterSink::OnPacket(const net::PacketRecord& record) {
  if (predicate_(record)) {
    ++passed_;
    next_->OnPacket(record);
  } else {
    ++dropped_;
  }
}

void FilterSink::OnBatch(std::span<const net::PacketRecord> batch) {
  GT_PROF_SCOPE("trace.filter.on_batch");
  scratch_.clear();
  for (const net::PacketRecord& record : batch) {
    if (predicate_(record)) {
      scratch_.push_back(record);
    } else {
      ++dropped_;
    }
  }
  passed_ += scratch_.size();
  if (!scratch_.empty()) next_->OnBatch(scratch_);
}

void FilterSink::OnColumns(const net::PacketBatch& batch) {
  GT_PROF_SCOPE("trace.filter.on_columns");
  // The predicate sees full records (it is an arbitrary std::function over
  // PacketRecord), so each candidate is reconstructed from the columns; the
  // survivors are compacted column-wise and forwarded as columns so the
  // downstream fast path is preserved.
  column_scratch_.Clear();
  const std::size_t n = batch.count;
  for (std::size_t i = 0; i < n; ++i) {
    if (predicate_(batch.RecordAt(i))) {
      column_scratch_.PushFrom(batch, i);
    } else {
      ++dropped_;
    }
  }
  passed_ += column_scratch_.size();
  if (!column_scratch_.empty()) next_->OnColumns(column_scratch_.View());
}

FilterSink::Predicate DirectionIs(net::Direction d) {
  return [d](const net::PacketRecord& r) { return r.direction == d; };
}

FilterSink::Predicate KindIs(net::PacketKind k) {
  return [k](const net::PacketRecord& r) { return r.kind == k; };
}

FilterSink::Predicate TimeWindow(double t_begin, double t_end) {
  return [t_begin, t_end](const net::PacketRecord& r) {
    return r.timestamp >= t_begin && r.timestamp < t_end;
  };
}

FilterSink::Predicate ClientIs(net::Ipv4Address ip) {
  return [ip](const net::PacketRecord& r) { return r.client_ip == ip; };
}

FilterSink::Predicate And(FilterSink::Predicate a, FilterSink::Predicate b) {
  return [a = std::move(a), b = std::move(b)](const net::PacketRecord& r) {
    return a(r) && b(r);
  };
}

}  // namespace gametrace::trace
