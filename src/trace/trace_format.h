// Compact binary trace format (.gtr): 22 bytes per packet record.
//
// The pcap exporter (net/pcap.h) produces interoperable captures but costs
// ~90 B per game packet; week-long simulated traces use this format instead
// (little-endian, fixed layout, versioned header) at 5x less disk.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "trace/capture.h"

namespace gametrace::trace {

struct TraceHeader {
  static constexpr std::uint32_t kMagic = 0x47545231;  // "GTR1"
  std::uint32_t magic = kMagic;
  std::uint32_t version = 2;  // v2 added the 32-bit netchannel sequence
  net::ServerEndpoint server;
};

class TraceWriter final : public CaptureSink {
 public:
  TraceWriter(const std::string& path, const net::ServerEndpoint& server);

  void OnPacket(const net::PacketRecord& record) override;

  [[nodiscard]] std::uint64_t packets_written() const noexcept { return packets_; }

  void Flush();

 private:
  std::ofstream out_;
  std::uint64_t packets_ = 0;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  [[nodiscard]] const net::ServerEndpoint& server() const noexcept { return server_; }

  // Next record, or nullopt at EOF. Throws on a corrupt file.
  std::optional<net::PacketRecord> Next();

  // Streams all remaining records into `sink`; returns the count.
  std::uint64_t Drain(CaptureSink& sink);

  std::vector<net::PacketRecord> ReadAll();

 private:
  std::ifstream in_;
  net::ServerEndpoint server_;
};

}  // namespace gametrace::trace
