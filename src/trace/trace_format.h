// Compact binary trace format (.gtr): 22 bytes per packet record.
//
// The pcap exporter (net/pcap.h) produces interoperable captures but costs
// ~90 B per game packet; week-long simulated traces use this format instead
// (little-endian, fixed layout, versioned header) at 5x less disk.
#pragma once

#include <cstdint>
#include <fstream>
#include <istream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/packet.h"
#include "trace/capture.h"

namespace gametrace::trace {

// Corrupt or truncated .gtr input (environmental error, not a contract
// violation): unknown magic, unsupported version, torn trailing record.
class TraceError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct TraceHeader {
  static constexpr std::uint32_t kMagic = 0x47545231;  // "GTR1"
  std::uint32_t magic = kMagic;
  std::uint32_t version = 2;  // v2 added the 32-bit netchannel sequence
  net::ServerEndpoint server;
};

class TraceWriter final : public CaptureSink {
 public:
  TraceWriter(const std::string& path, const net::ServerEndpoint& server);

  void OnPacket(const net::PacketRecord& record) override;

  [[nodiscard]] std::uint64_t packets_written() const noexcept { return packets_; }

  void Flush();

 private:
  std::ofstream out_;
  std::uint64_t packets_ = 0;
};

class TraceReader {
 public:
  explicit TraceReader(const std::string& path);

  // Reads from an arbitrary stream (in-memory parsing, fuzz harnesses).
  explicit TraceReader(std::unique_ptr<std::istream> in);

  [[nodiscard]] const net::ServerEndpoint& server() const noexcept { return server_; }

  // Next record, or nullopt at EOF. Throws TraceError on a corrupt file.
  std::optional<net::PacketRecord> Next();

  // Streams all remaining records into `sink`; returns the count.
  std::uint64_t Drain(CaptureSink& sink);

  std::vector<net::PacketRecord> ReadAll();

 private:
  void ReadHeader();

  std::unique_ptr<std::istream> in_;
  net::ServerEndpoint server_;
};

}  // namespace gametrace::trace
