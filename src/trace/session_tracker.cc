#include "trace/session_tracker.h"

#include <algorithm>
#include <stdexcept>

#include "core/check.h"
#include "obs/prof.h"

namespace gametrace::trace {

double Session::mean_bandwidth_bps(std::uint32_t overhead) const noexcept {
  const double d = duration();
  if (d <= 0.0) return 0.0;
  const std::uint64_t wire =
      app_bytes_in + app_bytes_out + packets() * static_cast<std::uint64_t>(overhead);
  return net::BitsPerSecond(static_cast<double>(wire), d);
}

SessionTracker::SessionTracker(double idle_timeout_seconds) : idle_timeout_(idle_timeout_seconds) {
  GT_CHECK(idle_timeout_seconds > 0.0) << "SessionTracker: idle timeout must be positive";
}

void SessionTracker::OnPacket(const net::PacketRecord& record) { Ingest(record); }

void SessionTracker::OnBatch(std::span<const net::PacketRecord> batch) {
  GT_PROF_SCOPE("trace.sessions.on_batch");
  for (const net::PacketRecord& record : batch) Ingest(record);
}

void SessionTracker::OnColumns(const net::PacketBatch& batch) {
  GT_PROF_SCOPE("trace.sessions.on_columns");
  AccumulateColumns(batch);
}

void SessionTracker::AccumulateColumns(const net::PacketBatch& batch) {
  constexpr auto kReject = static_cast<std::uint8_t>(net::PacketKind::kConnectReject);
  constexpr auto kIn = static_cast<std::uint8_t>(net::Direction::kClientToServer);
  const std::size_t n = batch.count;
  for (std::size_t i = 0; i < n; ++i) {
    if (batch.kinds[i] == kReject) continue;
    IngestFields(batch.timestamps[i], batch.client_ips[i], batch.client_ports[i],
                 batch.directions[i] == kIn, batch.app_bytes[i]);
  }
}

void SessionTracker::Ingest(const net::PacketRecord& record) {
  // Handshake-refusal traffic is not a session: a rejected client exchanged
  // two packets but never played. Counting those would flood the session
  // list with zero-length entries.
  if (record.kind == net::PacketKind::kConnectReject) return;
  IngestFields(record.timestamp, record.client_ip.value(), record.client_port,
               record.direction == net::Direction::kClientToServer, record.app_bytes);
}

std::size_t SessionTracker::FindSlot(std::uint64_t key, std::size_t& insert_slot) const noexcept {
  const std::size_t mask = keys_.size() - 1;
  std::size_t i = HomeSlot(key);
  insert_slot = kNoSlot;
  while (true) {
    const std::uint8_t state = states_[i];
    if (state == kEmpty) {
      if (insert_slot == kNoSlot) insert_slot = i;
      return kNoSlot;
    }
    if (state == kLive && keys_[i] == key) return i;
    if (state == kDead && insert_slot == kNoSlot) insert_slot = i;
    i = (i + 1) & mask;
  }
}

std::size_t SessionTracker::ClaimSlot(std::uint64_t key, std::size_t slot) {
  if (keys_.empty() || (live_ + dead_ + 1) * 10 >= keys_.size() * 7) {
    // Rehashing drops tombstones; double only when the live population
    // itself needs the room.
    const std::size_t cap = std::max<std::size_t>(64, keys_.size());
    Rehash((live_ + 1) * 10 >= cap * 7 ? cap * 2 : cap);
    std::size_t insert_slot = kNoSlot;
    (void)FindSlot(key, insert_slot);  // key is absent: yields the fresh home
    slot = insert_slot;
  } else if (states_[slot] == kDead) {
    --dead_;
  }
  keys_[slot] = key;
  states_[slot] = kLive;
  ++live_;
  return slot;
}

void SessionTracker::Rehash(std::size_t new_capacity) {
  std::vector<std::uint64_t> old_keys = std::move(keys_);
  std::vector<std::uint8_t> old_states = std::move(states_);
  std::vector<Session> old_sessions = std::move(sessions_);
  keys_.assign(new_capacity, 0);
  states_.assign(new_capacity, kEmpty);
  sessions_.assign(new_capacity, Session{});
  dead_ = 0;
  cached_slot_ = kNoSlot;  // slots re-home
  const std::size_t mask = new_capacity - 1;
  for (std::size_t i = 0; i < old_keys.size(); ++i) {
    if (old_states[i] != kLive) continue;
    std::size_t j = HomeSlot(old_keys[i]);
    while (states_[j] != kEmpty) j = (j + 1) & mask;
    keys_[j] = old_keys[i];
    states_[j] = kLive;
    sessions_[j] = old_sessions[i];
  }
}

void SessionTracker::IngestFields(double t, std::uint32_t ip, std::uint16_t port, bool inbound,
                                  std::uint16_t bytes) {
  const std::uint64_t key = FlowKey(ip, port);
  std::size_t slot = cached_slot_;
  if (slot == kNoSlot || cached_key_ != key || t - sessions_[slot].end > idle_timeout_) {
    std::size_t insert_slot = kNoSlot;
    slot = keys_.empty() ? kNoSlot : FindSlot(key, insert_slot);
    if (slot != kNoSlot && t - sessions_[slot].end > idle_timeout_) {
      // Idle-expired: the endpoint left and came back. Close the old
      // session and start a fresh one - same key, so the slot is reused
      // in place (no occupancy change, no growth to consider).
      closed_.push_back(sessions_[slot]);
      Session& s = sessions_[slot];
      s = Session{};
      s.client_ip = net::Ipv4Address{ip};
      s.client_port = port;
      s.start = t;
      s.end = t;
      ++unique_ips_[ip];
    } else if (slot == kNoSlot) {
      slot = ClaimSlot(key, insert_slot);
      Session& s = sessions_[slot];
      s = Session{};
      s.client_ip = net::Ipv4Address{ip};
      s.client_port = port;
      s.start = t;
      s.end = t;
      ++unique_ips_[ip];
    }
    cached_key_ = key;
    cached_slot_ = slot;
  }

  Session& s = sessions_[slot];
  // The capture may be mildly out of order within a tick window; a session
  // never shrinks.
  s.end = std::max(s.end, t);
  if (inbound) {
    ++s.packets_in;
    s.app_bytes_in += bytes;
  } else {
    ++s.packets_out;
    s.app_bytes_out += bytes;
  }
}

void SessionTracker::Merge(SessionTracker&& other) {
  GT_CHECK_EQ(other.idle_timeout_, idle_timeout_) << "SessionTracker::Merge: idle-timeout mismatch";
  closed_.insert(closed_.end(), std::make_move_iterator(other.closed_.begin()),
                 std::make_move_iterator(other.closed_.end()));
  for (std::size_t i = 0; i < other.keys_.size(); ++i) {
    if (other.states_[i] != kLive) continue;
    const std::uint64_t key = other.keys_[i];
    const Session& session = other.sessions_[i];
    std::size_t insert_slot = kNoSlot;
    std::size_t slot = keys_.empty() ? kNoSlot : FindSlot(key, insert_slot);
    if (slot == kNoSlot) {
      slot = ClaimSlot(key, insert_slot);
      sessions_[slot] = session;
    } else {
      // Same endpoint active in both trackers (only possible without shard
      // namespacing): fold into one session covering both observations.
      Session& mine = sessions_[slot];
      mine.start = std::min(mine.start, session.start);
      mine.end = std::max(mine.end, session.end);
      mine.packets_in += session.packets_in;
      mine.packets_out += session.packets_out;
      mine.app_bytes_in += session.app_bytes_in;
      mine.app_bytes_out += session.app_bytes_out;
    }
  }
  // gt-lint: allow(nondet-iteration) key-addressed `+=` into a map; visit order cannot affect the result
  for (const auto& [ip, count] : other.unique_ips_) unique_ips_[ip] += count;
  other.keys_.clear();
  other.states_.clear();
  other.sessions_.clear();
  other.live_ = 0;
  other.dead_ = 0;
  other.closed_.clear();
  other.unique_ips_.clear();
  other.cached_slot_ = kNoSlot;
  cached_slot_ = kNoSlot;  // ClaimSlot may have rehashed
}

std::vector<Session> SessionTracker::Finish() {
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    if (states_[i] == kLive) closed_.push_back(sessions_[i]);
  }
  keys_.clear();
  states_.clear();
  sessions_.clear();
  live_ = 0;
  dead_ = 0;
  cached_slot_ = kNoSlot;
  std::sort(closed_.begin(), closed_.end(),
            [](const Session& a, const Session& b) { return a.start < b.start; });
  return std::move(closed_);
}

stats::Histogram SessionTracker::BandwidthHistogram(const std::vector<Session>& sessions,
                                                    double min_duration, double max_bps,
                                                    std::size_t bins) {
  stats::Histogram h(0.0, max_bps, bins);
  for (const Session& s : sessions) {
    if (s.duration() > min_duration) h.Add(s.mean_bandwidth_bps());
  }
  return h;
}

}  // namespace gametrace::trace
