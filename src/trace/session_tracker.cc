#include "trace/session_tracker.h"

#include <algorithm>
#include <stdexcept>

#include "core/check.h"
#include "obs/prof.h"

namespace gametrace::trace {

double Session::mean_bandwidth_bps(std::uint32_t overhead) const noexcept {
  const double d = duration();
  if (d <= 0.0) return 0.0;
  const std::uint64_t wire =
      app_bytes_in + app_bytes_out + packets() * static_cast<std::uint64_t>(overhead);
  return net::BitsPerSecond(static_cast<double>(wire), d);
}

SessionTracker::SessionTracker(double idle_timeout_seconds) : idle_timeout_(idle_timeout_seconds) {
  GT_CHECK(idle_timeout_seconds > 0.0) << "SessionTracker: idle timeout must be positive";
}

void SessionTracker::OnPacket(const net::PacketRecord& record) { Ingest(record); }

void SessionTracker::OnBatch(std::span<const net::PacketRecord> batch) {
  GT_PROF_SCOPE("trace.sessions.on_batch");
  for (const net::PacketRecord& record : batch) Ingest(record);
}

void SessionTracker::Ingest(const net::PacketRecord& record) {
  // Handshake-refusal traffic is not a session: a rejected client exchanged
  // two packets but never played. Counting those would flood the session
  // list with zero-length entries.
  if (record.kind == net::PacketKind::kConnectReject) return;

  const Key key{record.client_ip.value(), record.client_port};
  Session* session = nullptr;
  if (cached_session_ != nullptr && key == cached_key_ &&
      record.timestamp - cached_session_->end <= idle_timeout_) {
    // Same endpoint as the previous packet and within the idle window: the
    // slow path below would find this exact session and not close it.
    session = cached_session_;
  } else {
    auto it = open_.find(key);
    if (it != open_.end() && record.timestamp - it->second.end > idle_timeout_) {
      Close(key, std::move(it->second));
      open_.erase(it);
      it = open_.end();
      cached_session_ = nullptr;  // the erased node may be the cached one
    }
    if (it == open_.end()) {
      Session s;
      s.client_ip = record.client_ip;
      s.client_port = record.client_port;
      s.start = record.timestamp;
      s.end = record.timestamp;
      it = open_.emplace(key, s).first;
      ++unique_ips_[key.ip];
    }
    session = &it->second;
    cached_key_ = key;
    cached_session_ = session;
  }

  Session& s = *session;
  // The capture may be mildly out of order within a tick window; a session
  // never shrinks.
  s.end = std::max(s.end, record.timestamp);
  if (record.direction == net::Direction::kClientToServer) {
    ++s.packets_in;
    s.app_bytes_in += record.app_bytes;
  } else {
    ++s.packets_out;
    s.app_bytes_out += record.app_bytes;
  }
}

void SessionTracker::Merge(SessionTracker&& other) {
  GT_CHECK_EQ(other.idle_timeout_, idle_timeout_) << "SessionTracker::Merge: idle-timeout mismatch";
  closed_.insert(closed_.end(), std::make_move_iterator(other.closed_.begin()),
                 std::make_move_iterator(other.closed_.end()));
  for (auto& [key, session] : other.open_) {
    auto [it, inserted] = open_.try_emplace(key, session);
    if (!inserted) {
      // Same endpoint active in both trackers (only possible without shard
      // namespacing): fold into one session covering both observations.
      Session& mine = it->second;
      mine.start = std::min(mine.start, session.start);
      mine.end = std::max(mine.end, session.end);
      mine.packets_in += session.packets_in;
      mine.packets_out += session.packets_out;
      mine.app_bytes_in += session.app_bytes_in;
      mine.app_bytes_out += session.app_bytes_out;
    }
  }
  for (const auto& [ip, count] : other.unique_ips_) unique_ips_[ip] += count;
  other.open_.clear();
  other.closed_.clear();
  other.unique_ips_.clear();
  other.cached_session_ = nullptr;
}

void SessionTracker::Close(const Key& /*key*/, Session&& session) {
  closed_.push_back(std::move(session));
}

std::vector<Session> SessionTracker::Finish() {
  for (auto& [key, session] : open_) closed_.push_back(session);
  open_.clear();
  cached_session_ = nullptr;
  std::sort(closed_.begin(), closed_.end(),
            [](const Session& a, const Session& b) { return a.start < b.start; });
  return std::move(closed_);
}

stats::Histogram SessionTracker::BandwidthHistogram(const std::vector<Session>& sessions,
                                                    double min_duration, double max_bps,
                                                    std::size_t bins) {
  stats::Histogram h(0.0, max_bps, bins);
  for (const Session& s : sessions) {
    if (s.duration() > min_duration) h.Add(s.mean_bandwidth_bps());
  }
  return h;
}

}  // namespace gametrace::trace
