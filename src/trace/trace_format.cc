#include "trace/trace_format.h"

#include <array>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "core/check.h"

namespace gametrace::trace {

namespace {

// On-disk record layout (little-endian), format version 2:
//   offset 0  : double  timestamp
//   offset 8  : u32     client_ip
//   offset 12 : u16     client_port
//   offset 14 : u16     app_bytes
//   offset 16 : u8      direction
//   offset 17 : u8      kind
//   offset 18 : u32     seq (netchannel sequence; 0 = connectionless)
constexpr std::size_t kRecordBytes = 22;

std::array<std::uint8_t, kRecordBytes> Encode(const net::PacketRecord& r) {
  std::array<std::uint8_t, kRecordBytes> buf{};
  std::memcpy(buf.data(), &r.timestamp, sizeof(double));
  const std::uint32_t ip = r.client_ip.value();
  std::memcpy(buf.data() + 8, &ip, sizeof(ip));
  std::memcpy(buf.data() + 12, &r.client_port, sizeof(r.client_port));
  std::memcpy(buf.data() + 14, &r.app_bytes, sizeof(r.app_bytes));
  buf[16] = static_cast<std::uint8_t>(r.direction);
  buf[17] = static_cast<std::uint8_t>(r.kind);
  std::memcpy(buf.data() + 18, &r.seq, sizeof(r.seq));
  return buf;
}

net::PacketRecord Decode(const std::array<std::uint8_t, kRecordBytes>& buf) {
  net::PacketRecord r;
  std::memcpy(&r.timestamp, buf.data(), sizeof(double));
  std::uint32_t ip = 0;
  std::memcpy(&ip, buf.data() + 8, sizeof(ip));
  r.client_ip = net::Ipv4Address(ip);
  std::memcpy(&r.client_port, buf.data() + 12, sizeof(r.client_port));
  std::memcpy(&r.app_bytes, buf.data() + 14, sizeof(r.app_bytes));
  r.direction = static_cast<net::Direction>(buf[16]);
  r.kind = static_cast<net::PacketKind>(buf[17]);
  std::memcpy(&r.seq, buf.data() + 18, sizeof(r.seq));
  return r;
}

}  // namespace

TraceWriter::TraceWriter(const std::string& path, const net::ServerEndpoint& server)
    : out_(path, std::ios::binary | std::ios::trunc) {
  if (!out_) throw TraceError("TraceWriter: cannot open " + path);
  TraceHeader header;
  header.server = server;
  out_.write(reinterpret_cast<const char*>(&header.magic), sizeof(header.magic));
  out_.write(reinterpret_cast<const char*>(&header.version), sizeof(header.version));
  const std::uint32_t ip = server.ip.value();
  out_.write(reinterpret_cast<const char*>(&ip), sizeof(ip));
  out_.write(reinterpret_cast<const char*>(&server.port), sizeof(server.port));
}

void TraceWriter::OnPacket(const net::PacketRecord& record) {
  const auto buf = Encode(record);
  out_.write(reinterpret_cast<const char*>(buf.data()), buf.size());
  ++packets_;
}

void TraceWriter::Flush() { out_.flush(); }

TraceReader::TraceReader(const std::string& path)
    : in_(std::make_unique<std::ifstream>(path, std::ios::binary)) {
  if (!*in_) throw TraceError("TraceReader: cannot open " + path);
  ReadHeader();
}

TraceReader::TraceReader(std::unique_ptr<std::istream> in) : in_(std::move(in)) {
  GT_CHECK(in_ != nullptr) << "TraceReader: null stream";
  ReadHeader();
}

void TraceReader::ReadHeader() {
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint32_t ip = 0;
  std::uint16_t port = 0;
  in_->read(reinterpret_cast<char*>(&magic), sizeof(magic));
  in_->read(reinterpret_cast<char*>(&version), sizeof(version));
  in_->read(reinterpret_cast<char*>(&ip), sizeof(ip));
  in_->read(reinterpret_cast<char*>(&port), sizeof(port));
  if (!*in_ || magic != TraceHeader::kMagic) {
    throw TraceError("TraceReader: not a gametrace file");
  }
  if (version != 2) throw TraceError("TraceReader: unsupported version");
  server_.ip = net::Ipv4Address(ip);
  server_.port = port;
}

std::optional<net::PacketRecord> TraceReader::Next() {
  std::array<std::uint8_t, kRecordBytes> buf{};
  in_->read(reinterpret_cast<char*>(buf.data()), buf.size());
  if (in_->gcount() == 0) return std::nullopt;  // clean EOF
  if (static_cast<std::size_t>(in_->gcount()) != buf.size()) {
    throw TraceError("TraceReader: truncated record");
  }
  return Decode(buf);
}

std::uint64_t TraceReader::Drain(CaptureSink& sink) {
  // Decode straight into columnar chunks and deliver via OnColumns: the
  // per-record virtual dispatch disappears, columnar sinks consume the
  // columns directly, and memory stays O(1).
  constexpr std::size_t kBatchRecords = 1024;
  net::ColumnarBatch batch;
  batch.Reserve(kBatchRecords);
  std::uint64_t n = 0;
  while (auto record = Next()) {
    batch.PushRecord(*record);
    if (batch.size() == kBatchRecords) {
      sink.OnColumns(batch.View());
      n += batch.size();
      batch.Clear();
    }
  }
  if (!batch.empty()) {
    sink.OnColumns(batch.View());
    n += batch.size();
  }
  return n;
}

std::vector<net::PacketRecord> TraceReader::ReadAll() {
  std::vector<net::PacketRecord> out;
  while (auto record = Next()) out.push_back(*record);
  return out;
}

}  // namespace gametrace::trace
