#include "trace/fused_chain.h"

#include "obs/prof.h"
#include "trace/aggregator.h"
#include "trace/session_tracker.h"
#include "trace/summary.h"

namespace gametrace::trace {

namespace {

FusedChain::TerminalKind ClassifyTerminal(CaptureSink& sink) {
  if (dynamic_cast<CountingSink*>(&sink) != nullptr) return FusedChain::TerminalKind::kCounting;
  if (dynamic_cast<TraceSummary*>(&sink) != nullptr) return FusedChain::TerminalKind::kSummary;
  if (dynamic_cast<LoadAggregator*>(&sink) != nullptr) {
    return FusedChain::TerminalKind::kLoadAggregator;
  }
  if (dynamic_cast<SessionTracker*>(&sink) != nullptr) {
    return FusedChain::TerminalKind::kSessionTracker;
  }
  return FusedChain::TerminalKind::kGeneric;
}

}  // namespace

void FusedChain::Flatten(CaptureSink& node, std::uint32_t shift) {
  if (auto* ns = dynamic_cast<ShardNamespaceSink*>(&node)) {
    Flatten(ns->downstream(), shift + ns->shard_shift());
    return;
  }
  if (auto* tee = dynamic_cast<TeeSink*>(&node)) {
    for (CaptureSink* sink : tee->sinks()) Flatten(*sink, shift);
    return;
  }
  terminals_.push_back(Terminal{ClassifyTerminal(node), shift, &node});
}

std::unique_ptr<FusedChain> FuseChain(CaptureSink& head) {
  if (dynamic_cast<ShardNamespaceSink*>(&head) == nullptr &&
      dynamic_cast<TeeSink*>(&head) == nullptr) {
    return nullptr;
  }
  auto chain = std::unique_ptr<FusedChain>(new FusedChain());
  chain->Flatten(head, 0);
  return chain;
}

void FusedChain::OnPacket(const net::PacketRecord& record) {
  for (const Terminal& t : terminals_) {
    if (t.ip_shift == 0) {
      t.sink->OnPacket(record);
    } else {
      net::PacketRecord shifted = record;
      shifted.client_ip = net::Ipv4Address(record.client_ip.value() + t.ip_shift);
      t.sink->OnPacket(shifted);
    }
  }
}

void FusedChain::OnBatch(std::span<const net::PacketRecord> batch) {
  GT_PROF_SCOPE("trace.fused.on_batch");
  batch_scratch_.Clear();
  batch_scratch_.Append(batch);
  OnColumns(batch_scratch_.View());
}

void FusedChain::OnColumns(const net::PacketBatch& batch) {
  GT_PROF_SCOPE("trace.fused.on_columns");
  GT_DCHECK(internal::ColumnsPreservePerFlowOrder(batch))
      << "FusedChain::OnColumns: batch violates per-flow emission-order contract";
  // Terminals are in DFS order, so equal shifts are adjacent: the shifted IP
  // column is computed once per distinct shift and the view re-pointed.
  net::PacketBatch view = batch;
  std::uint32_t view_shift = 0;
  for (const Terminal& t : terminals_) {
    if (t.ip_shift != view_shift) {
      if (t.ip_shift == 0) {
        view = batch;
      } else {
        ip_scratch_.resize(batch.count);
        const std::uint32_t* src = batch.client_ips;
        std::uint32_t* dst = ip_scratch_.data();
        const std::uint32_t shift = t.ip_shift;
        for (std::size_t i = 0; i < batch.count; ++i) dst[i] = src[i] + shift;
        view = batch.WithClientIps(dst);
      }
      view_shift = t.ip_shift;
    }
    switch (t.kind) {
      case TerminalKind::kCounting:
        static_cast<CountingSink*>(t.sink)->AccumulateColumns(view);
        break;
      case TerminalKind::kSummary:
        static_cast<TraceSummary*>(t.sink)->AccumulateColumns(view);
        break;
      case TerminalKind::kLoadAggregator:
        static_cast<LoadAggregator*>(t.sink)->AccumulateColumns(view);
        break;
      case TerminalKind::kSessionTracker:
        static_cast<SessionTracker*>(t.sink)->AccumulateColumns(view);
        break;
      case TerminalKind::kGeneric:
        t.sink->OnColumns(view);
        break;
    }
  }
}

}  // namespace gametrace::trace
