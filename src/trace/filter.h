// Composable stream filters: forward a subset of packets to a wrapped sink.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "net/packet.h"
#include "trace/capture.h"

namespace gametrace::trace {

// Forwards packets matching an arbitrary predicate.
class FilterSink final : public CaptureSink {
 public:
  using Predicate = std::function<bool(const net::PacketRecord&)>;

  // `next` is borrowed and must outlive the filter.
  FilterSink(Predicate predicate, CaptureSink& next);

  void OnPacket(const net::PacketRecord& record) override;

  // Compacts the passing records into a reused scratch buffer and forwards
  // them as one batch (order preserved).
  void OnBatch(std::span<const net::PacketRecord> batch) override;

  // Compacts column-wise into a reused columnar scratch (order preserved),
  // so the columnar fast path survives the filter.
  void OnColumns(const net::PacketBatch& batch) override;

  [[nodiscard]] std::uint64_t passed() const noexcept { return passed_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  Predicate predicate_;
  CaptureSink* next_;
  std::uint64_t passed_ = 0;
  std::uint64_t dropped_ = 0;
  std::vector<net::PacketRecord> scratch_;
  net::ColumnarBatch column_scratch_;
};

// Common predicates.
[[nodiscard]] FilterSink::Predicate DirectionIs(net::Direction d);
[[nodiscard]] FilterSink::Predicate KindIs(net::PacketKind k);
[[nodiscard]] FilterSink::Predicate TimeWindow(double t_begin, double t_end);
[[nodiscard]] FilterSink::Predicate ClientIs(net::Ipv4Address ip);
[[nodiscard]] FilterSink::Predicate And(FilterSink::Predicate a, FilterSink::Predicate b);

}  // namespace gametrace::trace
