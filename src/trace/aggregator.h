// Packet stream -> time series (packets and bytes per interval, by
// direction). Backs every load/bandwidth figure in the paper (Figs 1-4,
// 6-10, 14-15).
#pragma once

#include <cstdint>
#include <span>

#include "net/packet.h"
#include "stats/time_series.h"
#include "trace/capture.h"

namespace gametrace::trace {

class LoadAggregator final : public CaptureSink {
 public:
  // Bins of `interval` seconds starting at `start_time`.
  LoadAggregator(double interval, double start_time = 0.0,
                 std::uint32_t wire_overhead_bytes = net::kWireOverheadBytes);

  void OnPacket(const net::PacketRecord& record) override;

  // One virtual call per tick batch; the per-record binning runs as a
  // tight inlined loop.
  void OnBatch(std::span<const net::PacketRecord> batch) override;

  void OnColumns(const net::PacketBatch& batch) override;

  // Columnar kernel (non-virtual: FusedChain calls it directly): the same
  // run-aggregated binning as OnBatch, reading the dense timestamp,
  // direction and size columns instead of striding through records.
  void AccumulateColumns(const net::PacketBatch& batch);

  // Pads all series with zero bins up to `t_end` so trailing idle time is
  // represented (important when computing means over a fixed window).
  void ExtendTo(double t_end);

  // Bin-wise add of another aggregator over the same clock: the merged
  // series equal a single aggregator fed both packet streams. Throws
  // std::invalid_argument on overhead or bin-geometry mismatch.
  void Merge(const LoadAggregator& other);

  // Raw per-bin counts/bytes.
  [[nodiscard]] const stats::TimeSeries& packets_in() const noexcept { return pkts_in_; }
  [[nodiscard]] const stats::TimeSeries& packets_out() const noexcept { return pkts_out_; }
  [[nodiscard]] const stats::TimeSeries& wire_bytes_in() const noexcept { return bytes_in_; }
  [[nodiscard]] const stats::TimeSeries& wire_bytes_out() const noexcept { return bytes_out_; }

  // Derived series (computed on demand).
  [[nodiscard]] stats::TimeSeries packets_total() const;
  [[nodiscard]] stats::TimeSeries wire_bytes_total() const;
  [[nodiscard]] stats::TimeSeries packet_rate_total() const;      // pkts/sec
  [[nodiscard]] stats::TimeSeries packet_rate_in() const;
  [[nodiscard]] stats::TimeSeries packet_rate_out() const;
  [[nodiscard]] stats::TimeSeries bandwidth_total_bps() const;    // bits/sec
  [[nodiscard]] stats::TimeSeries bandwidth_in_bps() const;
  [[nodiscard]] stats::TimeSeries bandwidth_out_bps() const;

 private:
  std::uint32_t overhead_;
  stats::TimeSeries pkts_in_;
  stats::TimeSeries pkts_out_;
  stats::TimeSeries bytes_in_;
  stats::TimeSeries bytes_out_;
};

}  // namespace gametrace::trace
