// Chain fusion: collapse a ShardNamespaceSink/TeeSink composition into one
// sink that dispatches each batch straight to the terminal kernels.
//
// The unfused chain pays one virtual OnColumns hop per interior node per
// batch, and every ShardNamespaceSink in the path re-copies the IP column.
// FuseChain() walks the chain once at construction time (via the
// shard_shift()/downstream()/sinks() accessors), flattens it into an ordered
// terminal list with each terminal's accumulated IP shift, and the resulting
// FusedChain delivers a batch by:
//  * shifting the IP column at most once per distinct shift (adjacent
//    terminals share the shifted scratch), and
//  * calling each known terminal's non-virtual AccumulateColumns kernel
//    directly - the per-batch loop sees no virtual dispatch at all.
// Terminals the compiler does not recognise fall back to one virtual
// OnColumns call per batch, so any CaptureSink composes (core::Characterizer
// reaches its own columnar kernels through that virtual hop without a
// trace->core dependency).
//
// Reports are bit-identical to the unfused chain: the shift is the same
// integer add, terminal order is the Tee attachment order (DFS), and the
// kernels are the very ones the unfused sinks run.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/packet_batch.h"
#include "trace/capture.h"

namespace gametrace::trace {

class FusedChain final : public CaptureSink {
 public:
  // How a terminal is driven: known types get their AccumulateColumns kernel
  // called directly, everything else goes through virtual OnColumns.
  enum class TerminalKind : std::uint8_t {
    kCounting,
    kSummary,
    kLoadAggregator,
    kSessionTracker,
    kGeneric,
  };

  struct Terminal {
    TerminalKind kind;
    std::uint32_t ip_shift;  // accumulated shard-namespace shift on this path
    CaptureSink* sink;       // borrowed; must outlive the chain
  };

  void OnPacket(const net::PacketRecord& record) override;

  // Columnises the slice into a reused scratch and delivers it as columns:
  // per the capture contract every tier is report-equivalent, and this keeps
  // one fused implementation instead of three.
  void OnBatch(std::span<const net::PacketRecord> batch) override;

  void OnColumns(const net::PacketBatch& batch) override;

  [[nodiscard]] const std::vector<Terminal>& terminals() const noexcept { return terminals_; }

 private:
  friend std::unique_ptr<FusedChain> FuseChain(CaptureSink& head);

  void Flatten(CaptureSink& node, std::uint32_t shift);

  std::vector<Terminal> terminals_;
  std::vector<std::uint32_t> ip_scratch_;  // shifted IP column, reused
  net::ColumnarBatch batch_scratch_;       // AoS->SoA staging for OnBatch
};

// Compiles the chain rooted at `head` into a FusedChain. Returns nullptr if
// `head` is neither a ShardNamespaceSink nor a TeeSink (a bare terminal
// gains nothing from fusion - drive it directly). All sinks reachable from
// `head` are borrowed and must outlive the returned chain.
[[nodiscard]] std::unique_ptr<FusedChain> FuseChain(CaptureSink& head);

}  // namespace gametrace::trace
