#include "trace/capture.h"

namespace gametrace::trace {

void Replay(const std::vector<net::PacketRecord>& records, CaptureSink& sink) {
  sink.OnBatch(records);
}

}  // namespace gametrace::trace
