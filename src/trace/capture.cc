#include "trace/capture.h"

#include <algorithm>

namespace gametrace::trace {

void Replay(const std::vector<net::PacketRecord>& records, CaptureSink& sink) {
  // Transpose into bounded columnar chunks: memory stays O(chunk) while
  // every sink gets the columnar fast path. 4096 records keep all seven
  // columns (~96 KB) comfortably inside L2.
  constexpr std::size_t kChunk = 4096;
  net::ColumnarBatch columns;
  const std::span<const net::PacketRecord> all(records);
  for (std::size_t i = 0; i < all.size(); i += kChunk) {
    columns.Clear();
    columns.Append(all.subspan(i, std::min(kChunk, all.size() - i)));
    sink.OnColumns(columns.View());
  }
}

}  // namespace gametrace::trace
