#include "trace/capture.h"

namespace gametrace::trace {

void Replay(const std::vector<net::PacketRecord>& records, CaptureSink& sink) {
  for (const auto& record : records) sink.OnPacket(record);
}

}  // namespace gametrace::trace
