#include "trace/loss_estimator.h"

#include <algorithm>

namespace gametrace::trace {

void SeqGapLossEstimator::OnPacket(const net::PacketRecord& record) {
  if (record.seq == 0) {
    ++unsequenced_;  // connectionless control traffic carries no sequence
    return;
  }
  FlowState& flow = flows_[Key(record)];
  if (flow.received == 0) {
    flow.min_seq = record.seq;
    flow.max_seq = record.seq;
  } else {
    flow.min_seq = std::min(flow.min_seq, record.seq);
    flow.max_seq = std::max(flow.max_seq, record.seq);
  }
  ++flow.received;
}

SeqGapLossEstimator::DirectionEstimate SeqGapLossEstimator::Estimate(
    net::Direction direction) const {
  DirectionEstimate estimate;
  // gt-lint: allow(nondet-iteration) commutative integer sums; visit order cannot affect the fold
  for (const auto& [key, flow] : flows_) {
    if (static_cast<net::Direction>(key & 1) != direction) continue;
    ++estimate.flows;
    estimate.received += flow.received;
    estimate.expected += static_cast<std::uint64_t>(flow.max_seq - flow.min_seq) + 1;
  }
  return estimate;
}

}  // namespace gametrace::trace
