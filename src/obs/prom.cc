#include "obs/prom.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "stats/histogram.h"

namespace gametrace::obs {

namespace {

void AppendPromNumber(std::string& out, double value) {
  if (std::isnan(value)) {
    out += "NaN";
    return;
  }
  if (std::isinf(value)) {
    out += value > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buffer[64];
  const auto result = std::to_chars(buffer, buffer + sizeof(buffer), value);
  out.append(buffer, result.ptr);
}

void AppendHeader(std::string& out, const std::string& prom_name, std::string_view source_name,
                  const char* type) {
  out += "# HELP " + prom_name + " gametrace instrument ";
  out += source_name;
  out += "\n# TYPE " + prom_name + " ";
  out += type;
  out += '\n';
}

// "fleet.worker.<w>.<rest>" -> family "fleet.<rest>" plus a worker label,
// so every worker's instrument lands in ONE gametrace_fleet_* family
// (e.g. gametrace_fleet_steals{worker="3"}) instead of a per-worker
// metric name, which is what Prometheus can aggregate across.
bool SplitWorkerMetric(std::string_view name, int& worker, std::string& family) {
  constexpr std::string_view kPrefix = "fleet.worker.";
  if (!name.starts_with(kPrefix)) return false;
  const std::string_view rest = name.substr(kPrefix.size());
  const std::size_t dot = rest.find('.');
  if (dot == 0 || dot == std::string_view::npos || dot + 1 >= rest.size()) return false;
  const std::string_view index = rest.substr(0, dot);
  int value = 0;
  for (const char c : index) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + (c - '0');
  }
  worker = value;
  family = "fleet.";
  family += rest.substr(dot + 1);
  return true;
}

// One worker-labeled family, samples sorted by worker index (name-sorted
// input interleaves "10" between "1" and "2").
template <typename Value, typename AppendValue>
void AppendWorkerFamilies(
    std::string& out, const std::map<std::string, std::vector<std::pair<int, Value>>>& families,
    const char* type, const AppendValue& append_value) {
  for (const auto& [family, samples] : families) {
    const std::string prom = PrometheusMetricName(family);
    AppendHeader(out, prom, family, type);
    std::vector<std::pair<int, Value>> sorted = samples;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [worker, value] : sorted) {
      out += prom + "{worker=\"" + std::to_string(worker) + "\"} ";
      append_value(out, value);
      out += '\n';
    }
  }
}

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  std::string out = "gametrace_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
    out += keep ? c : '_';
  }
  return out;
}

std::string ToPrometheusText(const MetricsRegistry& registry) {
  std::string out;
  // Worker-labeled samples are collected first and emitted per family
  // after the plain instruments: the registry iterates name-sorted, which
  // interleaves workers within a family, and the exposition format wants
  // all samples of one metric contiguous.
  std::map<std::string, std::vector<std::pair<int, std::uint64_t>>> worker_counters;
  std::map<std::string, std::vector<std::pair<int, double>>> worker_gauges;
  registry.ForEachCounter([&](std::string_view name, const Counter& counter) {
    int worker = 0;
    std::string family;
    if (SplitWorkerMetric(name, worker, family)) {
      worker_counters[family].emplace_back(worker, counter.value());
      return;
    }
    const std::string prom = PrometheusMetricName(name);
    AppendHeader(out, prom, name, "counter");
    out += prom + " " + std::to_string(counter.value()) + "\n";
  });
  AppendWorkerFamilies(out, worker_counters, "counter",
                       [](std::string& text, std::uint64_t value) {
                         text += std::to_string(value);
                       });
  registry.ForEachGauge([&](std::string_view name, const Gauge& gauge) {
    int worker = 0;
    std::string family;
    if (SplitWorkerMetric(name, worker, family)) {
      worker_gauges[family].emplace_back(worker, gauge.value());
      return;
    }
    const std::string prom = PrometheusMetricName(name);
    AppendHeader(out, prom, name, "gauge");
    out += prom + " ";
    AppendPromNumber(out, gauge.value());
    out += '\n';
  });
  AppendWorkerFamilies(out, worker_gauges, "gauge",
                       [](std::string& text, double value) { AppendPromNumber(text, value); });
  registry.ForEachHistogram([&out](std::string_view name, const stats::Histogram& hist) {
    const std::string prom = PrometheusMetricName(name);
    AppendHeader(out, prom, name, "histogram");
    // Buckets are cumulative; underflow mass sits below every bin's right
    // edge, overflow only below +Inf.
    std::uint64_t cumulative = hist.underflow();
    for (std::size_t i = 0; i < hist.bin_count(); ++i) {
      cumulative += hist.count(i);
      out += prom + "_bucket{le=\"";
      const double right_edge =
          i + 1 == hist.bin_count() ? hist.hi() : hist.bin_left(i) + hist.bin_width();
      AppendPromNumber(out, right_edge);
      out += "\"} " + std::to_string(cumulative) + "\n";
    }
    out += prom + "_bucket{le=\"+Inf\"} " + std::to_string(hist.total()) + "\n";
    // The fixed-bin histogram keeps no exact sample sum; reconstruct one
    // from bin centers, with underflow priced at lo and overflow at hi.
    double approx_sum = static_cast<double>(hist.underflow()) * hist.lo() +
                        static_cast<double>(hist.overflow()) * hist.hi();
    for (std::size_t i = 0; i < hist.bin_count(); ++i) {
      approx_sum += static_cast<double>(hist.count(i)) * hist.bin_center(i);
    }
    out += prom + "_sum ";
    AppendPromNumber(out, approx_sum);
    out += '\n';
    out += prom + "_count " + std::to_string(hist.total()) + "\n";
  });
  registry.ForEachSketch([&out](std::string_view name, const stats::QuantileSketch& sketch) {
    const std::string prom = PrometheusMetricName(name);
    AppendHeader(out, prom, name, "summary");
    for (const double q : {0.5, 0.9, 0.99}) {
      out += prom + "{quantile=\"";
      AppendPromNumber(out, q);
      out += "\"} ";
      AppendPromNumber(out, sketch.Quantile(q));
      out += '\n';
    }
    out += prom + "_sum ";
    AppendPromNumber(out, sketch.sum());
    out += '\n';
    out += prom + "_count " + std::to_string(sketch.count()) + "\n";
  });
  registry.ForEachRing([&out](std::string_view name, const stats::TieredRing& ring) {
    const std::string prom = PrometheusMetricName(name);
    AppendHeader(out, prom + "_tier_mean", name, "gauge");
    for (std::size_t tier = 0; tier < ring.tier_count(); ++tier) {
      out += prom + "_tier_mean{interval=\"";
      AppendPromNumber(out, ring.tier_interval(tier));
      out += "\"} ";
      AppendPromNumber(out, ring.Stats(tier).mean);
      out += '\n';
    }
    AppendHeader(out, prom + "_tier_peak", name, "gauge");
    for (std::size_t tier = 0; tier < ring.tier_count(); ++tier) {
      out += prom + "_tier_peak{interval=\"";
      AppendPromNumber(out, ring.tier_interval(tier));
      out += "\"} ";
      AppendPromNumber(out, ring.Stats(tier).peak);
      out += '\n';
    }
    AppendHeader(out, prom + "_dropped_late", name, "counter");
    out += prom + "_dropped_late " + std::to_string(ring.dropped_late()) + "\n";
    if (const stats::OnlineHurst* hurst = ring.hurst()) {
      AppendHeader(out, prom + "_hurst", name, "gauge");
      out += prom + "_hurst ";
      // NaN until enough scales resolve - idiomatic Prometheus "no data".
      AppendPromNumber(out, hurst->CanEstimate(0.050, 1800.0)
                                ? hurst->HurstEstimate(0.050, 1800.0)
                                : std::nan(""));
      out += '\n';
    }
  });
  return out;
}

void WritePrometheusText(const MetricsRegistry& registry, std::ostream& out) {
  out << ToPrometheusText(registry);
}

}  // namespace gametrace::obs
