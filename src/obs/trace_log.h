// Sim-time trace spans exported as Chrome trace_event JSON.
//
// Every macroscopic thing the simulation does - server ticks, map
// rotations, rounds, outages, connection churn, NAT drops - can be
// recorded against *simulator* time and opened in Perfetto / chrome://
// tracing: the exported file is the JSON array flavour of the Chrome
// trace-event format ({"traceEvents": [...]}), with the simulation clock
// mapped onto the `ts` microsecond axis and fleet shards mapped onto
// `pid`.
//
// Span taxonomy (categories): "run" (whole captures), "map", "outage",
// "session" (connect/refuse/disconnect instants), "nat" (drop instants),
// "tick" (one span per 50 ms server tick - disabled by default because a
// paper-scale week is 12.5 M ticks; enable it for short runs via
// SetCategoryEnabled("tick", true)).
//
// Memory is bounded: past `max_events` the log counts drops instead of
// growing, and the count is exported in the JSON ("otherData") so a
// truncated trace is never mistaken for a complete one.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace gametrace::obs {

class TraceLog {
 public:
  static constexpr std::size_t kDefaultMaxEvents = 1u << 20;

  struct Event {
    std::string name;
    const char* cat;  // must be a string literal (stored, not copied)
    char ph;          // 'X' complete, 'i' instant, 'C' counter sample
    double ts_us;     // simulator time, microseconds
    double dur_us;    // 'X' only
    int pid;          // fleet shard id
    double value;     // 'C' only
  };

  explicit TraceLog(int pid = 0, std::size_t max_events = kDefaultMaxEvents);

  // A span covering sim-time [t0, t1] seconds.
  void Complete(const char* name, const char* cat, double t0_seconds, double t1_seconds);
  void Complete(std::string name, const char* cat, double t0_seconds, double t1_seconds);
  // A zero-duration marker at sim-time t.
  void Instant(const char* name, const char* cat, double t_seconds);
  void Instant(std::string name, const char* cat, double t_seconds);
  // A sampled counter track (renders as a graph row in Perfetto).
  void CounterSample(const char* name, const char* cat, double t_seconds, double value);

  // Category gate, checked by producers before building event names.
  // Unknown categories default to enabled; "tick" starts disabled (see the
  // taxonomy note above).
  [[nodiscard]] bool CategoryEnabled(std::string_view cat) const noexcept;
  void SetCategoryEnabled(std::string_view cat, bool enabled);

  // Optional clock for ScopedSpan; producers that know their own sim time
  // (event handlers receive it) pass explicit times instead. The callable
  // must outlive its use - RunServerTrace installs the simulator clock on
  // entry and removes it before returning.
  void SetClock(std::function<double()> now_seconds);
  [[nodiscard]] bool has_clock() const noexcept { return static_cast<bool>(clock_); }
  [[nodiscard]] double NowSeconds() const { return clock_ ? clock_() : 0.0; }

  // Appends another log's events (fleet shard reduction; each event keeps
  // the pid it was recorded under). `other` is spent.
  void Merge(TraceLog&& other);

  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] int pid() const noexcept { return pid_; }
  [[nodiscard]] const std::vector<Event>& events() const noexcept { return events_; }

  // Chrome trace_event JSON: {"traceEvents": [...], "displayTimeUnit":
  // "ms", "otherData": {...}}. Events are emitted in stable ts order.
  void WriteJson(std::ostream& out) const;
  [[nodiscard]] std::string ToJson() const;

 private:
  void Push(Event event);

  int pid_;
  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
  std::map<std::string, bool, std::less<>> category_enabled_;
  std::function<double()> clock_;
};

// RAII span against the log's installed clock: records a Complete event
// from construction to destruction in sim time. A null log (or a log with
// no clock) makes the guard a no-op.
class ScopedSpan {
 public:
  ScopedSpan(TraceLog* log, const char* name, const char* cat) noexcept
      : log_(log != nullptr && log->has_clock() && log->CategoryEnabled(cat) ? log : nullptr),
        name_(name),
        cat_(cat),
        t0_(log_ != nullptr ? log_->NowSeconds() : 0.0) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (log_ != nullptr) log_->Complete(name_, cat_, t0_, log_->NowSeconds());
  }

 private:
  TraceLog* log_;
  const char* name_;
  const char* cat_;
  double t0_;
};

}  // namespace gametrace::obs
