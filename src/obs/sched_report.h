// SchedReport: critical-path attribution for one fleet scheduler run.
//
// The fleet engine (core/fleet) measures, per worker, where the
// wall-clock went - executing shards, scanning peers for steals, blocked
// on the reduction admission window, folding the merge cursor - and hands
// the raw samples here. BuildSchedReport decomposes each worker's
// lifetime into those components (plus a residual idle term, so the
// components always sum to the measured span exactly), names the top-k
// straggler units, computes the utilization-imbalance ratio that tells a
// "scaling is sublinear" result *why*, and evaluates the scheduler SLO
// rules (WatchdogEngine::SchedulerRules) against the result.
//
// Channel contract: everything in this report is wall-clock- and
// worker-count-DEPENDENT. It belongs to the diagnostic channel
// (FleetResult::scheduler_metrics / sched_trace / sched_report) and must
// never be folded into the merged analysis surfaces, which stay
// bit-identical across worker counts (DESIGN.md "Fleet scheduling").
//
// Determinism within the channel: BuildSchedReport is a pure function of
// its samples (no clocks, no unordered iteration), so a report, its JSON
// and its fleet.critpath.* metrics are reproducible from a recorded run.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/watchdog.h"

namespace gametrace::obs {

class MetricsRegistry;

// One worker's measured wall-clock decomposition, indexed by position
// (sample i describes worker i). All _ns components are disjoint
// intervals of the worker's lifetime except span_ns, which covers it.
struct SchedWorkerSample {
  std::uint64_t span_ns = 0;   // worker start to worker exit
  std::uint64_t work_ns = 0;   // executing unit shards
  std::uint64_t steal_ns = 0;  // scanning peer queues (hit or miss)
  std::uint64_t stall_ns = 0;  // blocked on the reduction admission window
  std::uint64_t merge_ns = 0;  // inside Commit (parking + cursor folds)
  std::uint64_t units = 0;
  std::uint64_t shards = 0;
  std::uint64_t steals = 0;  // successful steals (hits only)
  // steal_hits[v] = units this worker stole from worker v; size = workers.
  std::vector<std::uint64_t> steal_hits;
};

// One executed work unit: which worker ran it, which shard range, and for
// how long. Straggler attribution sorts these by duration.
struct SchedUnitSample {
  int unit = 0;
  int worker = 0;
  int first_shard = 0;
  int shard_count = 0;
  std::uint64_t dur_ns = 0;
};

struct SchedReport {
  // How many straggler units BuildSchedReport keeps by default.
  static constexpr int kDefaultTopK = 5;

  struct Worker {
    int worker = 0;
    std::uint64_t span_ns = 0;
    std::uint64_t work_ns = 0;
    std::uint64_t steal_ns = 0;
    std::uint64_t stall_ns = 0;
    std::uint64_t merge_ns = 0;
    // Residual: span - (work + steal + stall + merge), clamped at 0, so
    // the five components sum to span_ns exactly. Queue-claim locking and
    // scheduling gaps land here.
    std::uint64_t idle_ns = 0;
    std::uint64_t units = 0;
    std::uint64_t shards = 0;
    std::uint64_t steals = 0;
    // Useful fraction of the lifetime: (work + merge) / span.
    double busy_ratio = 0.0;
  };

  int workers = 0;
  // Slowest worker's span: the run's measured makespan (workers start
  // together, so the last to exit sets the wall-clock).
  std::uint64_t makespan_ns = 0;
  std::vector<Worker> per_worker;
  // Top-k units by duration, longest first (ties broken by unit index).
  std::vector<SchedUnitSample> stragglers;
  // steal_matrix[thief][victim] = units thief stole from victim.
  std::vector<std::vector<std::uint64_t>> steal_matrix;
  // max(busy_ratio) / mean(busy_ratio): 1.0 is a perfectly balanced
  // fleet; the makespan of an imbalanced one is set by its stragglers.
  double imbalance_ratio = 0.0;
  // sum(stall_ns) / sum(span_ns): fraction of total worker-time blocked
  // on the admission window (widen max_live_units_per_worker to shrink).
  double admission_stall_fraction = 0.0;
  // Scheduler SLO alerts (WatchdogEngine::SchedulerRules) evaluated
  // against this report. Diagnostic-channel only: they never join the
  // deterministic --alerts-out stream.
  std::vector<Alert> alerts;

  [[nodiscard]] bool empty() const noexcept { return workers == 0; }

  // Exports the headline numbers as fleet.critpath.* instruments (kMax
  // gauges plus an alert counter) into the scheduler-metrics registry.
  void DumpInto(MetricsRegistry& registry) const;

  // Machine-readable JSON (one object; stable field order; no clocks).
  void WriteJson(std::ostream& out) const;
  [[nodiscard]] std::string ToJson() const;
};

// Builds the report from the scheduler's measured samples: derives the
// residual idle term, busy ratios, imbalance and stall fractions, sorts
// out the top_k stragglers and the steal matrix, then evaluates the
// scheduler watchdog rules. `units` may arrive in any order.
[[nodiscard]] SchedReport BuildSchedReport(const std::vector<SchedWorkerSample>& workers,
                                           const std::vector<SchedUnitSample>& units,
                                           int top_k = SchedReport::kDefaultTopK);

}  // namespace gametrace::obs
