#include "obs/obs.h"

namespace gametrace::obs {

namespace {

thread_local ObsContext t_current{};

}  // namespace

const ObsContext& Current() noexcept { return t_current; }

ScopedObsBinding::ScopedObsBinding(ObsContext context) noexcept : previous_(t_current) {
  t_current = context;
}

ScopedObsBinding::~ScopedObsBinding() { t_current = previous_; }

}  // namespace gametrace::obs
