// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// The paper is a measurement study - every figure is the output of
// observing a running server - and this registry is how the simulator
// observes *itself*: each subsystem registers named instruments, fleet
// shards own one registry apiece, and per-shard registries reduce with
// Merge() exactly like the stats/trace accumulators, so an N-thread run
// reports bit-identical aggregate metrics to a 1-thread run.
//
// Determinism contract:
//  - Counters are exact uint64 sums; merging sums them.
//  - Gauges carry a merge mode chosen at registration: kSum (fleet player
//    totals) or kMax (queue high-water marks). Both are order-independent.
//  - Histograms are stats::Histogram (integer bin counts); merging requires
//    identical geometry and is exact.
//  - Snapshots (WriteJson / ToJson) iterate name-sorted maps, so two
//    registries with equal contents serialize byte-identically.
//
// Hot-path use: counter(name) / gauge(name) return references with stable
// addresses for the registry's lifetime; instrumented components look the
// instrument up once at construction and pay a single add per update.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "stats/histogram.h"

namespace gametrace::obs {

class MetricsRegistry;

// Monotone event count (packets emitted, connections refused, drops).
class Counter {
 public:
  void Add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
};

// Point-in-time level (players online, queue high-water).
class Gauge {
 public:
  // How two shards' values combine under MetricsRegistry::Merge.
  enum class MergeMode : std::uint8_t { kSum = 0, kMax = 1 };

  void Set(double v) noexcept { value_ = v; }
  void Add(double d) noexcept { value_ += d; }
  void SetMax(double v) noexcept {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] MergeMode merge_mode() const noexcept { return merge_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
  MergeMode merge_ = MergeMode::kSum;
};

class MetricsRegistry {
 public:
  // Returns the instrument registered under `name`, creating it on first
  // use. References stay valid for the registry's lifetime (node-based
  // storage), so hot paths cache them once.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name, Gauge::MergeMode mode = Gauge::MergeMode::kSum);
  stats::Histogram& histogram(std::string_view name, double lo, double hi, std::size_t bins);

  // Read-side conveniences for tests and thin accessors; a missing counter
  // reads as 0, a missing gauge as 0.0.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;
  [[nodiscard]] double gauge_value(std::string_view name) const noexcept;
  [[nodiscard]] const stats::Histogram* find_histogram(std::string_view name) const noexcept;

  [[nodiscard]] std::size_t counter_count() const noexcept { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const noexcept { return gauges_.size(); }
  [[nodiscard]] std::size_t histogram_count() const noexcept { return histograms_.size(); }

  // Absorbs another registry: counters and kSum gauges add, kMax gauges
  // take the max, histograms merge bin-wise. Instruments present on only
  // one side are copied through. GT_CHECK fails on a gauge merge-mode or
  // histogram geometry conflict - that is a naming bug, not data.
  void Merge(const MetricsRegistry& other);

  // Name-ordered visitation, for exporters (Prometheus text, flight
  // recorder JSONL) that need to walk the instruments without owning them.
  void ForEachCounter(const std::function<void(std::string_view, const Counter&)>& fn) const;
  void ForEachGauge(const std::function<void(std::string_view, const Gauge&)>& fn) const;
  void ForEachHistogram(
      const std::function<void(std::string_view, const stats::Histogram&)>& fn) const;

  // Deterministic JSON snapshot: name-sorted counters, gauges and
  // histograms. Two registries with equal contents produce byte-identical
  // output, which is what the fleet bit-identity tests compare.
  void WriteJson(std::ostream& out) const;
  [[nodiscard]] std::string ToJson() const;

  // Single-line form of ToJson (same content, no indentation or trailing
  // newline) - one flight-recorder snapshot per JSONL line.
  void AppendCompactJson(std::string& out) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, stats::Histogram, std::less<>> histograms_;
};

// Formats a double for JSON output (shortest round-trip form; "0" for
// zero, no exponent unless needed). Shared by metrics and trace export so
// snapshots are reproducible across writers.
void AppendJsonNumber(std::string& out, double value);

// Appends `text` as a JSON string literal (quoted, escaped).
void AppendJsonString(std::string& out, std::string_view text);

}  // namespace gametrace::obs
