// MetricsRegistry: named counters, gauges and fixed-bucket histograms.
//
// The paper is a measurement study - every figure is the output of
// observing a running server - and this registry is how the simulator
// observes *itself*: each subsystem registers named instruments, fleet
// shards own one registry apiece, and per-shard registries reduce with
// Merge() exactly like the stats/trace accumulators, so an N-thread run
// reports bit-identical aggregate metrics to a 1-thread run.
//
// Determinism contract:
//  - Counters are exact uint64 sums; merging sums them.
//  - Gauges carry a merge mode chosen at registration: kSum (fleet player
//    totals) or kMax (queue high-water marks). Both are order-independent.
//  - Histograms are stats::Histogram (integer bin counts); merging requires
//    identical geometry and is exact.
//  - Sketches are stats::QuantileSketch (bounded relative-error quantile
//    stores); merging adds bucket counts key-wise and is independent of
//    merge order. Quantiles are derived at serialization time from merged
//    state, never merged themselves.
//  - Rings are stats::TieredRing (multi-resolution bounded time series,
//    optionally carrying an OnlineHurst); merging requires identical
//    schedule and advancement and adds bins component-wise.
//  - Snapshots (WriteJson / ToJson) iterate name-sorted maps, so two
//    registries with equal contents serialize byte-identically.
//
// Hot-path use: counter(name) / gauge(name) return references with stable
// addresses for the registry's lifetime; instrumented components look the
// instrument up once at construction and pay a single add per update.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>

#include "stats/histogram.h"
#include "stats/quantile_sketch.h"
#include "stats/tiered_ring.h"

namespace gametrace::obs {

class MetricsRegistry;

// Monotone event count (packets emitted, connections refused, drops).
class Counter {
 public:
  void Add(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  friend class MetricsRegistry;
  std::uint64_t value_ = 0;
};

// Point-in-time level (players online, queue high-water).
class Gauge {
 public:
  // How two shards' values combine under MetricsRegistry::Merge.
  enum class MergeMode : std::uint8_t { kSum = 0, kMax = 1 };

  void Set(double v) noexcept { value_ = v; }
  void Add(double d) noexcept { value_ += d; }
  void SetMax(double v) noexcept {
    if (v > value_) value_ = v;
  }
  [[nodiscard]] double value() const noexcept { return value_; }
  [[nodiscard]] MergeMode merge_mode() const noexcept { return merge_; }

 private:
  friend class MetricsRegistry;
  double value_ = 0.0;
  MergeMode merge_ = MergeMode::kSum;
};

class MetricsRegistry {
 public:
  // Returns the instrument registered under `name`, creating it on first
  // use. References stay valid for the registry's lifetime (node-based
  // storage), so hot paths cache them once.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name, Gauge::MergeMode mode = Gauge::MergeMode::kSum);
  stats::Histogram& histogram(std::string_view name, double lo, double hi, std::size_t bins);
  stats::QuantileSketch& sketch(std::string_view name, double alpha = 0.01,
                                std::size_t max_buckets = 1024);
  stats::TieredRing& ring(std::string_view name,
                          stats::TieredRing::Options options =
                              stats::TieredRing::Options::PaperSchedule());

  // Read-side conveniences for tests and thin accessors; a missing counter
  // reads as 0, a missing gauge as 0.0.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const noexcept;
  [[nodiscard]] double gauge_value(std::string_view name) const noexcept;
  [[nodiscard]] const stats::Histogram* find_histogram(std::string_view name) const noexcept;
  [[nodiscard]] const stats::QuantileSketch* find_sketch(std::string_view name) const noexcept;
  [[nodiscard]] const stats::TieredRing* find_ring(std::string_view name) const noexcept;

  [[nodiscard]] std::size_t counter_count() const noexcept { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const noexcept { return gauges_.size(); }
  [[nodiscard]] std::size_t histogram_count() const noexcept { return histograms_.size(); }
  [[nodiscard]] std::size_t sketch_count() const noexcept { return sketches_.size(); }
  [[nodiscard]] std::size_t ring_count() const noexcept { return rings_.size(); }

  // Advances every ring instrument to time t (see TieredRing::AdvanceTo).
  // Shards call this on a common grid - at each flight sample and once at
  // end of run - so their rings satisfy Merge's lockstep precondition.
  void AdvanceRingsTo(double t);

  // Absorbs another registry: counters and kSum gauges add, kMax gauges
  // take the max, histograms merge bin-wise, sketches bucket-wise and
  // rings bin-wise. Instruments present on only one side are copied
  // through. GT_CHECK fails on a gauge merge-mode or histogram / sketch /
  // ring geometry conflict - that is a naming bug, not data.
  void Merge(const MetricsRegistry& other);

  // Name-ordered visitation, for exporters (Prometheus text, flight
  // recorder JSONL) that need to walk the instruments without owning them.
  void ForEachCounter(const std::function<void(std::string_view, const Counter&)>& fn) const;
  void ForEachGauge(const std::function<void(std::string_view, const Gauge&)>& fn) const;
  void ForEachHistogram(
      const std::function<void(std::string_view, const stats::Histogram&)>& fn) const;
  void ForEachSketch(
      const std::function<void(std::string_view, const stats::QuantileSketch&)>& fn) const;
  void ForEachRing(
      const std::function<void(std::string_view, const stats::TieredRing&)>& fn) const;

  // Deterministic JSON snapshot: name-sorted counters, gauges, histograms,
  // sketches and rings. Two registries with equal contents produce
  // byte-identical output, which is what the fleet bit-identity tests
  // compare. Sketch sections carry derived p50/p90/p99 next to the raw
  // bucket store; ring sections carry per-tier lifetime stats and the held
  // window (full form) or a bounded recent tail (compact form).
  void WriteJson(std::ostream& out) const;
  [[nodiscard]] std::string ToJson() const;

  // Single-line form of ToJson (same content, no indentation or trailing
  // newline) - one flight-recorder snapshot per JSONL line.
  void AppendCompactJson(std::string& out) const;

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, stats::Histogram, std::less<>> histograms_;
  std::map<std::string, stats::QuantileSketch, std::less<>> sketches_;
  std::map<std::string, stats::TieredRing, std::less<>> rings_;
};

// Formats a double for JSON output (shortest round-trip form; "0" for
// zero, no exponent unless needed). Shared by metrics and trace export so
// snapshots are reproducible across writers.
void AppendJsonNumber(std::string& out, double value);

// Appends `text` as a JSON string literal (quoted, escaped).
void AppendJsonString(std::string& out, std::string_view text);

}  // namespace gametrace::obs
