// FlightRecorder: a bounded sim-time ring of MetricsRegistry snapshots.
//
// The paper's provisioning findings are threshold *events* - last-mile
// saturation near 40 kbps/player (Fig 11), refusals against the 22-slot
// cap (Table III), the NAT device melting at ~850 pps (Table IV) - and a
// terminal metrics dump cannot say *when* a run crossed one. The flight
// recorder samples the full registry on a sim-time period (default one
// sim-minute) into a bounded ring, giving every run a time-series view
// that the WatchdogEngine evaluates and tools/flight_view.py renders.
//
// Determinism contract (mirrors MetricsRegistry):
//  - Shards sample on the same sim-time grid, so shard recorders hold
//    snapshots with pairwise-equal timestamps; Merge() reduces them
//    snapshot-by-snapshot via MetricsRegistry::Merge in shard order.
//  - ToJsonl() serializes name-sorted registries with a stable per-line
//    layout, so an N-worker fleet run exports a byte-identical snapshot
//    stream to a 1-worker run (tests/core/flight_fleet_test.cc).
//
// Black box: ScopedFlightDump installs a chaining ContractHandler so any
// GT_CHECK violation writes flight_dump.json - the last snapshots, the
// trace tail and the profiling counters - before the previous handler
// (abort or throw) takes over. CsServer calls DumpFlightNow() when an
// injected outage begins, so provisioning failures leave the same trail.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace gametrace {
struct ContractFailure;
}

namespace gametrace::obs {

class TraceLog;

class FlightRecorder {
 public:
  struct Options {
    // Sim-time seconds between samples; front-ends expose --flight-sample.
    double sample_period_seconds = 60.0;
    // Ring capacity. 4096 one-minute snapshots cover ~2.8 sim-days before
    // eviction starts; evicted() reports how many fell off the front.
    std::size_t max_snapshots = 4096;
  };

  struct Snapshot {
    double t_seconds = 0.0;
    MetricsRegistry metrics;
  };

  FlightRecorder() = default;
  // GT_CHECKs that the period is positive and the ring holds >= 1 snapshot.
  explicit FlightRecorder(Options options);

  [[nodiscard]] const Options& options() const noexcept { return options_; }

  // Records `metrics` (a copy the caller built, taken by value so merged
  // views can be moved in) as the sample at sim-time `t_seconds`, evicting
  // the oldest snapshot once the ring is full. Timestamps normally arrive
  // in increasing order but are not required to - a front-end replaying
  // several runs into one recorder restarts the clock.
  void Sample(double t_seconds, MetricsRegistry metrics);

  // Snapshots currently held (<= max_snapshots).
  [[nodiscard]] std::size_t size() const noexcept { return snapshots_.size(); }
  [[nodiscard]] bool empty() const noexcept { return snapshots_.empty(); }
  // Samples ever taken, including evicted ones.
  [[nodiscard]] std::uint64_t total_samples() const noexcept { return total_samples_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept {
    return total_samples_ - snapshots_.size();
  }
  // The global sequence number of held snapshot `i` (stable across
  // eviction; what "seq" means in the JSONL stream).
  [[nodiscard]] std::uint64_t sequence_of(std::size_t i) const noexcept {
    return evicted() + i;
  }

  [[nodiscard]] const Snapshot& at(std::size_t i) const { return snapshots_.at(i); }
  [[nodiscard]] const Snapshot& latest() const { return snapshots_.back(); }

  // Shard-order reduction: snapshot i of `other` merges into snapshot i of
  // this recorder via MetricsRegistry::Merge. Both sides must have sampled
  // the same sim-time grid (GT_CHECK enforced) - shards of one fleet run
  // always do. An empty side adopts the other wholesale.
  void Merge(const FlightRecorder& other);

  // One JSON object per line:
  //   {"t": <seconds>, "seq": <global index>, "metrics": {...}}
  // with the registry in AppendCompactJson form. Byte-identical for equal
  // recorders - the fleet bit-identity tests compare these strings.
  void WriteJsonl(std::ostream& out) const;
  [[nodiscard]] std::string ToJsonl() const;

  // Appends the single-line JSON object for held snapshot `i` (no
  // trailing newline). Shared by WriteJsonl and the flight dump.
  void AppendSnapshotJson(std::string& out, std::size_t i) const;

 private:
  Options options_;
  std::deque<Snapshot> snapshots_;
  std::uint64_t total_samples_ = 0;
};

struct FlightDumpOptions {
  std::size_t last_snapshots = 16;
  std::size_t last_trace_events = 256;
};

// Writes the black-box document: the dump reason, the contract failure (if
// any), the most recent snapshots, the sim-time trace tail and the current
// GT_PROF_SCOPE profiling counters. Null recorder/trace are allowed and
// produce empty sections - a dump is best-effort by design.
void WriteFlightDump(std::ostream& out, std::string_view reason, const FlightRecorder* recorder,
                     const TraceLog* trace, const ContractFailure* failure,
                     const FlightDumpOptions& options = {});

// Installs a process-wide contract handler that writes the black box for
// the calling thread's ambient ObsContext to `path`, then chains to the
// previously installed handler (which aborts or throws; contract handlers
// never return). One guard may be active at a time; the destructor
// restores the previous handler.
class ScopedFlightDump {
 public:
  explicit ScopedFlightDump(std::string path, FlightDumpOptions options = {});
  ~ScopedFlightDump();

  ScopedFlightDump(const ScopedFlightDump&) = delete;
  ScopedFlightDump& operator=(const ScopedFlightDump&) = delete;
};

// Writes the black box for the calling thread's ambient ObsContext to the
// active ScopedFlightDump's path without failing the process - used by
// injected-outage paths that are survivable but worth a post-mortem.
// Returns false (and does nothing) when no guard is active or the file
// cannot be written.
bool DumpFlightNow(std::string_view reason);

}  // namespace gametrace::obs
