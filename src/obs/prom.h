// Prometheus text exposition (format 0.0.4) for a MetricsRegistry.
//
// Front-ends write this alongside the JSON snapshot (--prom-out) so a real
// scrape pipeline - node_exporter textfile collector, Pushgateway, or just
// promtool - can ingest a run without a translation step, and the
// heartbeat refreshes the file periodically during long runs so the
// "live" view is never staler than one heartbeat interval.
//
// Mapping:
//  - Instrument names sanitize to [a-zA-Z0-9_] and gain a "gametrace_"
//    prefix: "server.packets_emitted" -> "gametrace_server_packets_emitted".
//  - Counters and gauges map directly (counter / gauge types).
//  - stats::Histogram maps to a Prometheus histogram: cumulative _bucket
//    lines at each bin's right edge plus +Inf, an exact _count, and an
//    approximate _sum reconstructed from bin centers (underflow counted at
//    lo, overflow at hi) - the fixed-bin histogram does not keep an exact
//    sample sum, and the approximation error is bounded by half a bin
//    width per sample.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace gametrace::obs {

class MetricsRegistry;

// "server.packets_emitted" -> "gametrace_server_packets_emitted".
[[nodiscard]] std::string PrometheusMetricName(std::string_view name);

void WritePrometheusText(const MetricsRegistry& registry, std::ostream& out);
[[nodiscard]] std::string ToPrometheusText(const MetricsRegistry& registry);

}  // namespace gametrace::obs
