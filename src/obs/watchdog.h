// WatchdogEngine: declarative SLO rules evaluated over flight snapshots.
//
// Each rule names a metric, a way of reading it (level, delta, or rate
// between consecutive snapshots), an optional normalizing gauge and a
// threshold. The built-in rules encode the paper's provisioning limits:
//
//   client.bandwidth.saturation  per-client downstream bits/s above the
//                                56k modem ceiling (Fig 11: healthy play
//                                sits near 33-40 kbps/player)
//   nat.meltdown                 offered pps into the COTS NAT device
//                                above ~850 pps (Table IV, Figs 14-15)
//   server.refusals.spike        connection refusals/s against the
//                                22-slot cap (Table III)
//   sim.queue.growth             event-queue high-water growth, the
//                                simulator's own "falling behind" signal
//   client.bandwidth.p99         p99 of the per-client kbps sketch above
//                                the 56 kbps ceiling - the tail version of
//                                client.bandwidth.saturation (Fig 11)
//   server.load.selfsimilar      mid-scale Hurst of the server load ring
//                                above 0.9: burstier long-range dependence
//                                than the paper's trace (Fig 5)
//
// Determinism: rules are pure functions of snapshot pairs, and the merged
// fleet snapshot stream is bit-identical at any worker count, so the alert
// sequence is too. Alerts surface three ways, all at export time so the
// deterministic merge never sees them: "alert.<rule>" counters
// (DumpInto(MetricsRegistry&)), TraceLog instants in the "alert" category
// (DumpInto(TraceLog&)), and one JSON object per alert (WriteJsonl).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"

namespace gametrace::obs {

class TraceLog;

struct SloRule {
  // How the rule reads its metric from a snapshot pair.
  enum class Signal : std::uint8_t {
    kGaugeValue = 0,            // current gauge level
    kGaugeDelta = 1,            // gauge level change since previous snapshot
    kCounterDelta = 2,          // counter increase since previous snapshot
    kCounterRatePerSecond = 3,  // counter increase / elapsed sim seconds
    kSketchQuantile = 4,        // quantile `quantile` of a sketch instrument
    kRingHurstMid = 5           // mid-scale Hurst of a ring's online estimator
  };
  enum class Direction : std::uint8_t { kAbove = 0, kBelow = 1 };

  std::string name;    // alert identity; exported as counter "alert.<name>"
  std::string metric;  // registry instrument the signal reads
  Signal signal = Signal::kGaugeValue;
  Direction direction = Direction::kAbove;
  double threshold = 0.0;
  // Which quantile a kSketchQuantile rule reads; ignored by other signals.
  double quantile = 0.99;
  // Applied to the signal before comparison (e.g. 8.0 turns a bytes/s rate
  // into bits/s).
  double scale = 1.0;
  // When non-empty, the scaled signal divides by this gauge's current
  // value (e.g. per-client normalization by "server.active_players"). A
  // zero or negative denominator skips the rule for that snapshot.
  std::string divide_by_gauge;
  std::string description;
};

struct Alert {
  double t_seconds = 0.0;
  std::string rule;
  double value = 0.0;      // the scaled/normalized signal that tripped
  double threshold = 0.0;  // copied from the rule for self-contained logs
  std::string description;
};

class WatchdogEngine {
 public:
  // Starts with no rules; a default-constructed engine never alerts.
  WatchdogEngine() = default;
  explicit WatchdogEngine(std::vector<SloRule> rules) : rules_(std::move(rules)) {}

  void AddRule(SloRule rule) { rules_.push_back(std::move(rule)); }
  [[nodiscard]] const std::vector<SloRule>& rules() const noexcept { return rules_; }

  // The paper-threshold rule set described in the header comment.
  [[nodiscard]] static std::vector<SloRule> BuiltinRules();

  // Scheduler-health rules for the fleet's diagnostic channel. They read
  // the fleet.critpath.* gauges a SchedReport dumps, so they only ever
  // fire when evaluated against scheduler metrics (BuildSchedReport runs
  // them; the deterministic flight stream never carries those gauges):
  //
  //   fleet.worker.imbalance   peak worker busy-ratio > 1.5x the mean -
  //                            the makespan is set by stragglers, not by
  //                            total work (retune unit_size)
  //   fleet.admission.stall    > 25% of summed worker wall-clock blocked
  //                            on the reduction admission window (widen
  //                            max_live_units_per_worker)
  [[nodiscard]] static std::vector<SloRule> SchedulerRules();

  // Evaluates every rule against one snapshot transition. A null
  // `previous` means "start of history": delta and rate signals use a
  // zero-valued registry at t = 0 as the baseline, which is exact for a
  // simulation that begins with zeroed instruments.
  void Observe(const FlightRecorder::Snapshot* previous, const FlightRecorder::Snapshot& current);

  // Evaluates all recorder snapshots this engine has not seen yet (by
  // global sequence number), so interleaving live CatchUp calls during a
  // run with one final CatchUp after a fleet merge never double-counts.
  void CatchUp(const FlightRecorder& recorder);

  [[nodiscard]] const std::vector<Alert>& alerts() const noexcept { return alerts_; }

  // Export-time surfaces; see the header comment. Counters land as
  // "alert.<rule>" with the number of snapshots that tripped the rule.
  void DumpInto(MetricsRegistry& registry) const;
  void DumpInto(TraceLog& trace) const;

  // One JSON object per alert:
  //   {"t": ..., "rule": ..., "value": ..., "threshold": ..., "description": ...}
  void WriteJsonl(std::ostream& out) const;
  [[nodiscard]] std::string ToJsonl() const;

 private:
  std::vector<SloRule> rules_;
  std::vector<Alert> alerts_;
  // Global sequence number (FlightRecorder::sequence_of) of the next
  // snapshot CatchUp should evaluate.
  std::uint64_t cursor_ = 0;
};

}  // namespace gametrace::obs
