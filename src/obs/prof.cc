#include "obs/prof.h"

#include <algorithm>

#include "core/thread_annotations.h"
#include "obs/metrics.h"

namespace gametrace::obs {

namespace {

// Head of the intrusive list of sites that have ever fired. Sites are
// function-local statics, so they live until process exit; the list only
// ever grows (one node per GT_PROF_SCOPE site in the binary).
core::Mutex g_sites_mutex;
ProfSite* g_sites_head GT_GUARDED_BY(g_sites_mutex) = nullptr;

}  // namespace

void EnableProfiling(bool enabled) noexcept {
  // relaxed: flipping the switch is documented as not a synchronization
  // point (prof.h) - callers enable it strictly before the measured
  // region, and a scope that reads a stale value merely skips or takes
  // one extra sample.
  g_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

void RegisterProfSite(ProfSite& site) {
  const core::MutexLock lock(g_sites_mutex);
  // relaxed: g_sites_mutex already orders this read against every other
  // registration; the flag exists so the second check is cheap.
  if (site.registered.load(std::memory_order_relaxed)) return;
  site.next = g_sites_head;
  g_sites_head = &site;
  // release: a thread whose relaxed fast-path load (ProfScope dtor) sees
  // `true` must also see the site.next link above as written - it will
  // never take g_sites_mutex again for this site.
  site.registered.store(true, std::memory_order_release);
}

std::vector<ProfSample> ProfilingSnapshot() {
  std::vector<ProfSample> samples;
  {
    const core::MutexLock lock(g_sites_mutex);
    for (ProfSite* site = g_sites_head; site != nullptr; site = site->next) {
      samples.push_back(ProfSample{
          .name = site->name,
          .calls = site->calls.load(std::memory_order_relaxed),
          .nanos = site->nanos.load(std::memory_order_relaxed)});
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const ProfSample& a, const ProfSample& b) { return a.name < b.name; });
  return samples;
}

void ResetProfiling() noexcept {
  const core::MutexLock lock(g_sites_mutex);
  for (ProfSite* site = g_sites_head; site != nullptr; site = site->next) {
    site->calls.store(0, std::memory_order_relaxed);
    site->nanos.store(0, std::memory_order_relaxed);
  }
}

void DumpProfilingInto(MetricsRegistry& registry) {
  for (const ProfSample& sample : ProfilingSnapshot()) {
    registry.counter("prof." + sample.name + ".calls").Add(sample.calls);
    registry.counter("prof." + sample.name + ".ns").Add(sample.nanos);
  }
}

}  // namespace gametrace::obs
