#include "obs/prof.h"

#include <algorithm>
#include <mutex>

#include "obs/metrics.h"

namespace gametrace::obs {

namespace {

// Head of the intrusive list of sites that have ever fired. Sites are
// function-local statics, so they live until process exit; the list only
// ever grows (one node per GT_PROF_SCOPE site in the binary).
std::mutex g_sites_mutex;
ProfSite* g_sites_head = nullptr;

}  // namespace

void EnableProfiling(bool enabled) noexcept {
  g_profiling_enabled.store(enabled, std::memory_order_relaxed);
}

void RegisterProfSite(ProfSite& site) {
  const std::lock_guard<std::mutex> lock(g_sites_mutex);
  if (site.registered.load(std::memory_order_relaxed)) return;
  site.next = g_sites_head;
  g_sites_head = &site;
  site.registered.store(true, std::memory_order_release);
}

std::vector<ProfSample> ProfilingSnapshot() {
  std::vector<ProfSample> samples;
  {
    const std::lock_guard<std::mutex> lock(g_sites_mutex);
    for (ProfSite* site = g_sites_head; site != nullptr; site = site->next) {
      samples.push_back(ProfSample{
          .name = site->name,
          .calls = site->calls.load(std::memory_order_relaxed),
          .nanos = site->nanos.load(std::memory_order_relaxed)});
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const ProfSample& a, const ProfSample& b) { return a.name < b.name; });
  return samples;
}

void ResetProfiling() noexcept {
  const std::lock_guard<std::mutex> lock(g_sites_mutex);
  for (ProfSite* site = g_sites_head; site != nullptr; site = site->next) {
    site->calls.store(0, std::memory_order_relaxed);
    site->nanos.store(0, std::memory_order_relaxed);
  }
}

void DumpProfilingInto(MetricsRegistry& registry) {
  for (const ProfSample& sample : ProfilingSnapshot()) {
    registry.counter("prof." + sample.name + ".calls").Add(sample.calls);
    registry.counter("prof." + sample.name + ".ns").Add(sample.nanos);
  }
}

}  // namespace gametrace::obs
