#include "obs/sched_report.h"

#include <algorithm>
#include <ostream>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace gametrace::obs {

namespace {

void AppendWorkerJson(std::string& out, const SchedReport::Worker& w) {
  out += "{\"worker\": " + std::to_string(w.worker);
  out += ", \"span_ns\": " + std::to_string(w.span_ns);
  out += ", \"work_ns\": " + std::to_string(w.work_ns);
  out += ", \"steal_ns\": " + std::to_string(w.steal_ns);
  out += ", \"stall_ns\": " + std::to_string(w.stall_ns);
  out += ", \"merge_ns\": " + std::to_string(w.merge_ns);
  out += ", \"idle_ns\": " + std::to_string(w.idle_ns);
  out += ", \"units\": " + std::to_string(w.units);
  out += ", \"shards\": " + std::to_string(w.shards);
  out += ", \"steals\": " + std::to_string(w.steals);
  out += ", \"busy_ratio\": ";
  AppendJsonNumber(out, w.busy_ratio);
  out += '}';
}

void AppendStragglerJson(std::string& out, const SchedUnitSample& unit) {
  out += "{\"unit\": " + std::to_string(unit.unit);
  out += ", \"worker\": " + std::to_string(unit.worker);
  out += ", \"first_shard\": " + std::to_string(unit.first_shard);
  out += ", \"shard_count\": " + std::to_string(unit.shard_count);
  out += ", \"dur_ns\": " + std::to_string(unit.dur_ns);
  out += '}';
}

void AppendAlertJson(std::string& out, const Alert& alert) {
  out += "{\"t\": ";
  AppendJsonNumber(out, alert.t_seconds);
  out += ", \"rule\": ";
  AppendJsonString(out, alert.rule);
  out += ", \"value\": ";
  AppendJsonNumber(out, alert.value);
  out += ", \"threshold\": ";
  AppendJsonNumber(out, alert.threshold);
  out += ", \"description\": ";
  AppendJsonString(out, alert.description);
  out += '}';
}

}  // namespace

void SchedReport::DumpInto(MetricsRegistry& registry) const {
  registry.gauge("fleet.critpath.makespan_ns", Gauge::MergeMode::kMax)
      .Set(static_cast<double>(makespan_ns));
  registry.gauge("fleet.critpath.imbalance_ratio", Gauge::MergeMode::kMax).Set(imbalance_ratio);
  registry.gauge("fleet.critpath.admission_stall_fraction", Gauge::MergeMode::kMax)
      .Set(admission_stall_fraction);
  if (!stragglers.empty()) {
    registry.gauge("fleet.critpath.straggler_ns", Gauge::MergeMode::kMax)
        .Set(static_cast<double>(stragglers.front().dur_ns));
  }
  for (const Worker& w : per_worker) {
    registry.gauge("fleet.critpath.worker." + std::to_string(w.worker) + ".busy_ratio",
                   Gauge::MergeMode::kMax)
        .Set(w.busy_ratio);
  }
  if (!alerts.empty()) registry.counter("fleet.critpath.alerts").Add(alerts.size());
}

void SchedReport::WriteJson(std::ostream& out) const { out << ToJson(); }

std::string SchedReport::ToJson() const {
  std::string out = "{\n  \"workers\": " + std::to_string(workers);
  out += ",\n  \"makespan_ns\": " + std::to_string(makespan_ns);
  out += ",\n  \"imbalance_ratio\": ";
  AppendJsonNumber(out, imbalance_ratio);
  out += ",\n  \"admission_stall_fraction\": ";
  AppendJsonNumber(out, admission_stall_fraction);
  out += ",\n  \"per_worker\": [";
  for (std::size_t i = 0; i < per_worker.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendWorkerJson(out, per_worker[i]);
  }
  out += "\n  ],\n  \"stragglers\": [";
  for (std::size_t i = 0; i < stragglers.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendStragglerJson(out, stragglers[i]);
  }
  out += "\n  ],\n  \"steal_matrix\": [";
  for (std::size_t thief = 0; thief < steal_matrix.size(); ++thief) {
    out += thief == 0 ? "\n    [" : ",\n    [";
    for (std::size_t victim = 0; victim < steal_matrix[thief].size(); ++victim) {
      if (victim > 0) out += ", ";
      out += std::to_string(steal_matrix[thief][victim]);
    }
    out += ']';
  }
  out += "\n  ],\n  \"alerts\": [";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    out += i == 0 ? "\n    " : ",\n    ";
    AppendAlertJson(out, alerts[i]);
  }
  out += "\n  ]\n}\n";
  return out;
}

SchedReport BuildSchedReport(const std::vector<SchedWorkerSample>& workers,
                             const std::vector<SchedUnitSample>& units, int top_k) {
  SchedReport report;
  report.workers = static_cast<int>(workers.size());
  if (workers.empty()) return report;

  report.per_worker.reserve(workers.size());
  report.steal_matrix.assign(workers.size(), std::vector<std::uint64_t>(workers.size(), 0));
  double busy_sum = 0.0;
  double busy_max = 0.0;
  std::uint64_t span_sum = 0;
  std::uint64_t stall_sum = 0;
  for (std::size_t i = 0; i < workers.size(); ++i) {
    const SchedWorkerSample& sample = workers[i];
    SchedReport::Worker w;
    w.worker = static_cast<int>(i);
    w.span_ns = sample.span_ns;
    w.work_ns = sample.work_ns;
    w.steal_ns = sample.steal_ns;
    w.stall_ns = sample.stall_ns;
    w.merge_ns = sample.merge_ns;
    const std::uint64_t accounted =
        sample.work_ns + sample.steal_ns + sample.stall_ns + sample.merge_ns;
    w.idle_ns = sample.span_ns > accounted ? sample.span_ns - accounted : 0;
    w.units = sample.units;
    w.shards = sample.shards;
    w.steals = sample.steals;
    w.busy_ratio = sample.span_ns > 0
                       ? static_cast<double>(sample.work_ns + sample.merge_ns) /
                             static_cast<double>(sample.span_ns)
                       : 0.0;
    busy_sum += w.busy_ratio;
    busy_max = std::max(busy_max, w.busy_ratio);
    span_sum += w.span_ns;
    stall_sum += w.stall_ns;
    report.makespan_ns = std::max(report.makespan_ns, w.span_ns);
    for (std::size_t v = 0; v < sample.steal_hits.size() && v < workers.size(); ++v) {
      report.steal_matrix[i][v] = sample.steal_hits[v];
    }
    report.per_worker.push_back(w);
  }
  const double busy_mean = busy_sum / static_cast<double>(workers.size());
  report.imbalance_ratio = busy_mean > 0.0 ? busy_max / busy_mean : 0.0;
  report.admission_stall_fraction =
      span_sum > 0 ? static_cast<double>(stall_sum) / static_cast<double>(span_sum) : 0.0;

  // Top-k stragglers: longest units first; the unit index breaks duration
  // ties so equal-cost units report in a stable order.
  report.stragglers = units;
  std::sort(report.stragglers.begin(), report.stragglers.end(),
            [](const SchedUnitSample& a, const SchedUnitSample& b) {
              if (a.dur_ns != b.dur_ns) return a.dur_ns > b.dur_ns;
              return a.unit < b.unit;
            });
  if (top_k >= 0 && report.stragglers.size() > static_cast<std::size_t>(top_k)) {
    report.stragglers.resize(static_cast<std::size_t>(top_k));
  }

  // Scheduler SLO pass: wrap the headline gauges in one synthetic
  // snapshot (t = makespan) and run the scheduler rules over it. Alerts
  // stay inside the report - the diagnostic channel - never the
  // deterministic alert stream.
  FlightRecorder::Snapshot snapshot;
  snapshot.t_seconds = static_cast<double>(report.makespan_ns) * 1e-9;
  report.DumpInto(snapshot.metrics);
  WatchdogEngine engine(WatchdogEngine::SchedulerRules());
  engine.Observe(nullptr, snapshot);
  report.alerts = engine.alerts();
  return report;
}

}  // namespace gametrace::obs
