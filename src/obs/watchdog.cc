#include "obs/watchdog.h"

#include <algorithm>
#include <ostream>

#include "obs/trace_log.h"

namespace gametrace::obs {

std::vector<SloRule> WatchdogEngine::BuiltinRules() {
  std::vector<SloRule> rules;
  rules.push_back(SloRule{
      .name = "client.bandwidth.saturation",
      .metric = "server.bytes_to_clients",
      .signal = SloRule::Signal::kCounterRatePerSecond,
      .direction = SloRule::Direction::kAbove,
      .threshold = 56000.0,
      .scale = 8.0,  // bytes/s -> bits/s
      .divide_by_gauge = "server.active_players",
      .description = "per-client downstream bandwidth above the 56k modem ceiling "
                     "(Fig 11 puts healthy play at 33-40 kbps/player)",
  });
  rules.push_back(SloRule{
      .name = "nat.meltdown",
      .metric = "nat.device.packets",
      .signal = SloRule::Signal::kCounterRatePerSecond,
      .direction = SloRule::Direction::kAbove,
      .threshold = 850.0,
      .description = "offered load into the NAT device above the ~850 pps meltdown "
                     "threshold (Table IV)",
  });
  rules.push_back(SloRule{
      .name = "server.refusals.spike",
      .metric = "server.connections.refused",
      .signal = SloRule::Signal::kCounterRatePerSecond,
      .direction = SloRule::Direction::kAbove,
      .threshold = 0.25,
      .description = "connection refusals against the 22-slot cap arriving faster "
                     "than one per four seconds (Table III)",
  });
  rules.push_back(SloRule{
      .name = "sim.queue.growth",
      .metric = "sim.queue.high_water",
      .signal = SloRule::Signal::kGaugeDelta,
      .direction = SloRule::Direction::kAbove,
      .threshold = 1024.0,
      .description = "event-queue high-water mark grew by more than 1024 entries "
                     "in one sampling period",
  });
  rules.push_back(SloRule{
      .name = "client.bandwidth.p99",
      .metric = "client.bandwidth.kbps",
      .signal = SloRule::Signal::kSketchQuantile,
      .direction = SloRule::Direction::kAbove,
      .threshold = 56.0,
      .quantile = 0.99,
      .description = "p99 per-client downstream bandwidth (per-minute windows) "
                     "above the 56 kbps modem ceiling (Fig 11) - the mean can sit "
                     "at 33-40 kbps while the tail saturates",
  });
  rules.push_back(SloRule{
      .name = "server.load.selfsimilar",
      .metric = "server.load.pps",
      .signal = SloRule::Signal::kRingHurstMid,
      .direction = SloRule::Direction::kAbove,
      .threshold = 0.9,
      .description = "mid-scale Hurst estimate of the server packet-load ring "
                     "above 0.9: long-range dependence stronger than the paper's "
                     "trace, so mean-based provisioning will underestimate bursts "
                     "(Fig 5)",
  });
  return rules;
}

std::vector<SloRule> WatchdogEngine::SchedulerRules() {
  std::vector<SloRule> rules;
  rules.push_back(SloRule{
      .name = "fleet.worker.imbalance",
      .metric = "fleet.critpath.imbalance_ratio",
      .signal = SloRule::Signal::kGaugeValue,
      .direction = SloRule::Direction::kAbove,
      .threshold = 1.5,
      .description = "peak worker busy-ratio more than 1.5x the fleet mean: the "
                     "makespan is set by straggler units, not total work - retune "
                     "FleetSchedule::unit_size or check shard skew",
  });
  rules.push_back(SloRule{
      .name = "fleet.admission.stall",
      .metric = "fleet.critpath.admission_stall_fraction",
      .signal = SloRule::Signal::kGaugeValue,
      .direction = SloRule::Direction::kAbove,
      .threshold = 0.25,
      .description = "more than 25% of summed worker wall-clock spent blocked on "
                     "the reduction admission window - widen "
                     "FleetSchedule::max_live_units_per_worker",
  });
  return rules;
}

void WatchdogEngine::Observe(const FlightRecorder::Snapshot* previous,
                             const FlightRecorder::Snapshot& current) {
  const double previous_t = previous != nullptr ? previous->t_seconds : 0.0;
  for (const SloRule& rule : rules_) {
    double value = 0.0;
    switch (rule.signal) {
      case SloRule::Signal::kGaugeValue:
        value = current.metrics.gauge_value(rule.metric);
        break;
      case SloRule::Signal::kGaugeDelta:
        value = current.metrics.gauge_value(rule.metric) -
                (previous != nullptr ? previous->metrics.gauge_value(rule.metric) : 0.0);
        break;
      case SloRule::Signal::kCounterDelta:
      case SloRule::Signal::kCounterRatePerSecond: {
        const std::uint64_t now = current.metrics.counter_value(rule.metric);
        const std::uint64_t before =
            previous != nullptr ? previous->metrics.counter_value(rule.metric) : 0;
        // A counter can only shrink across snapshots if the stream mixes
        // unrelated runs; read that as "no progress" rather than alerting
        // on a huge unsigned wraparound.
        const double delta = now >= before ? static_cast<double>(now - before) : 0.0;
        if (rule.signal == SloRule::Signal::kCounterDelta) {
          value = delta;
        } else {
          const double dt = current.t_seconds - previous_t;
          if (dt <= 0.0) continue;  // no elapsed sim time: rate undefined
          value = delta / dt;
        }
        break;
      }
      case SloRule::Signal::kSketchQuantile: {
        const stats::QuantileSketch* sketch = current.metrics.find_sketch(rule.metric);
        if (sketch == nullptr || sketch->empty()) continue;
        value = sketch->Quantile(rule.quantile);
        break;
      }
      case SloRule::Signal::kRingHurstMid: {
        const stats::TieredRing* ring = current.metrics.find_ring(rule.metric);
        const stats::OnlineHurst* hurst = ring != nullptr ? ring->hurst() : nullptr;
        // Stay silent until enough scales have resolved; the 0.5 fallback
        // would make a kBelow rule fire on an empty ring.
        if (hurst == nullptr || !hurst->CanEstimate(0.050, 1800.0)) continue;
        value = hurst->HurstEstimate(0.050, 1800.0);
        break;
      }
    }
    value *= rule.scale;
    if (!rule.divide_by_gauge.empty()) {
      const double denominator = current.metrics.gauge_value(rule.divide_by_gauge);
      if (denominator <= 0.0) continue;  // nothing to normalize by (e.g. zero players)
      value /= denominator;
    }
    const bool fired = rule.direction == SloRule::Direction::kAbove ? value > rule.threshold
                                                                    : value < rule.threshold;
    if (!fired) continue;
    alerts_.push_back(Alert{
        .t_seconds = current.t_seconds,
        .rule = rule.name,
        .value = value,
        .threshold = rule.threshold,
        .description = rule.description,
    });
  }
}

void WatchdogEngine::CatchUp(const FlightRecorder& recorder) {
  const std::uint64_t total = recorder.total_samples();
  if (cursor_ >= total) return;
  const std::uint64_t first_held = recorder.evicted();
  // Snapshots evicted before we ever saw them are gone for good; resume at
  // the oldest one still held.
  std::uint64_t sequence = std::max(cursor_, first_held);
  for (; sequence < total; ++sequence) {
    const std::size_t index = static_cast<std::size_t>(sequence - first_held);
    // The previous snapshot may itself have been evicted (sequence ==
    // first_held > 0); fall back to the zero baseline, which delta rules
    // tolerate by design.
    const FlightRecorder::Snapshot* previous =
        index > 0 ? &recorder.at(index - 1) : nullptr;
    Observe(previous, recorder.at(index));
  }
  cursor_ = total;
}

void WatchdogEngine::DumpInto(MetricsRegistry& registry) const {
  for (const Alert& alert : alerts_) {
    registry.counter("alert." + alert.rule).Add();
  }
}

void WatchdogEngine::DumpInto(TraceLog& trace) const {
  for (const Alert& alert : alerts_) {
    trace.Instant("alert." + alert.rule, "alert", alert.t_seconds);
  }
}

std::string WatchdogEngine::ToJsonl() const {
  std::string out;
  for (const Alert& alert : alerts_) {
    out += "{\"t\": ";
    AppendJsonNumber(out, alert.t_seconds);
    out += ", \"rule\": ";
    AppendJsonString(out, alert.rule);
    out += ", \"value\": ";
    AppendJsonNumber(out, alert.value);
    out += ", \"threshold\": ";
    AppendJsonNumber(out, alert.threshold);
    out += ", \"description\": ";
    AppendJsonString(out, alert.description);
    out += "}\n";
  }
  return out;
}

void WatchdogEngine::WriteJsonl(std::ostream& out) const { out << ToJsonl(); }

}  // namespace gametrace::obs
